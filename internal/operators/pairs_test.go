package operators

import (
	"testing"

	"pga/internal/core"
	"pga/internal/rng"
)

// TestSUSIntoMatchesSUS is the dynamic proof for the SUS/SUSInto
// equivalence pair declared in DrawPairs(): same-seeded streams, both
// directions, degenerate (flat-fitness) and spread populations — the
// chosen indices and the RNG draw sequences must match exactly.
func TestSUSIntoMatchesSUS(t *testing.T) {
	pops := map[string]*core.Population{
		"spread": popWithFitness(3, 1, 4, 1, 5, 9, 2, 6),
		"flat":   popWithFitness(2, 2, 2, 2, 2),
		"single": popWithFitness(7),
	}
	for name, pop := range pops {
		for _, d := range []core.Direction{core.Maximize, core.Minimize} {
			for _, count := range []int{1, 3, pop.Len(), 2 * pop.Len()} {
				for seed := uint64(1); seed <= 5; seed++ {
					r1 := rng.New(seed * 31)
					want := SUS(pop, d, count, r1)

					r2 := rng.New(seed * 31)
					got := SUSInto(make([]int, count), pop, d, r2)

					if len(got) != len(want) {
						t.Fatalf("%s d=%v count=%d seed=%d: SUSInto returned %d indices, SUS %d",
							name, d, count, seed, len(got), len(want))
					}
					for i := range want {
						if got[i] != want[i] {
							t.Fatalf("%s d=%v count=%d seed=%d: index %d is %d, SUS chose %d",
								name, d, count, seed, i, got[i], want[i])
						}
					}
					if r1.Uint64() != r2.Uint64() {
						t.Fatalf("%s d=%v count=%d seed=%d: RNG streams diverge after selection",
							name, d, count, seed)
					}
				}
			}
		}
	}
}

// TestRegisteredOperatorsComplete guards the operator registry: every
// Selector/Crossover/Mutator type in this package (compile-time checked
// elsewhere via the interface assertion blocks) must appear exactly once,
// and names must be unique — tracecover keys scenarios by these names.
func TestRegisteredOperatorsComplete(t *testing.T) {
	seen := map[string]bool{}
	for _, op := range RegisteredOperators() {
		name := OperatorTypeName(op)
		if name == "" {
			t.Errorf("operator %T renders an empty type name", op)
		}
		if seen[name] {
			t.Errorf("operator %s registered twice", name)
		}
		seen[name] = true
	}
	for _, want := range []string{"Tournament", "KPoint", "ERX", "UniformWord", "BlockFlip", "Truncation"} {
		if !seen[want] {
			t.Errorf("operator %s missing from RegisteredOperators", want)
		}
	}
}
