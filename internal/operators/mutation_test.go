package operators

import (
	"testing"
	"testing/quick"

	"pga/internal/genome"
	"pga/internal/rng"
)

func TestBitFlipRate(t *testing.T) {
	r := rng.New(1)
	b := genome.NewBitString(10000)
	(BitFlip{P: 0.1}).Mutate(b, r)
	ones := b.OnesCount()
	if ones < 800 || ones > 1200 {
		t.Fatalf("bitflip(0.1) flipped %d/10000", ones)
	}
}

func TestBitFlipDefaultRateFlipsAboutOne(t *testing.T) {
	r := rng.New(2)
	total := 0
	const trials = 2000
	for i := 0; i < trials; i++ {
		b := genome.NewBitString(100)
		(BitFlip{}).Mutate(b, r)
		total += b.OnesCount()
	}
	avg := float64(total) / trials
	if avg < 0.8 || avg > 1.2 {
		t.Fatalf("default bitflip flips %.2f bits on average, want ~1", avg)
	}
}

func TestBitFlipPanicsOnWrongType(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	(BitFlip{}).Mutate(genome.NewRealVector(4, 0, 1), rng.New(1))
}

func TestGaussianStaysInBounds(t *testing.T) {
	r := rng.New(3)
	for trial := 0; trial < 200; trial++ {
		v := genome.RandomRealVector(10, -1, 1, r)
		(Gaussian{P: 1, Sigma: 5}).Mutate(v, r)
		if !v.InBounds() {
			t.Fatal("gaussian mutation escaped bounds")
		}
	}
}

func TestGaussianPerturbsRoughlyPFraction(t *testing.T) {
	r := rng.New(4)
	const n = 10000
	v := genome.NewRealVector(n, -10, 10)
	(Gaussian{P: 0.25, Sigma: 0.1}).Mutate(v, r)
	changed := 0
	for _, g := range v.Genes {
		if g != 0 {
			changed++
		}
	}
	if changed < 2200 || changed > 2800 {
		t.Fatalf("gaussian(0.25) changed %d/10000 genes", changed)
	}
}

func TestGaussianDefaultSigmaScalesWithRange(t *testing.T) {
	r := rng.New(5)
	v := genome.NewRealVector(10000, -100, 100)
	(Gaussian{P: 1}).Mutate(v, r)
	// default sigma = 20; sample std should be near 20 (clamping negligible).
	var sum, sumsq float64
	for _, g := range v.Genes {
		sum += g
		sumsq += g * g
	}
	n := float64(len(v.Genes))
	std := sumsq/n - (sum/n)*(sum/n)
	if std < 300 || std > 500 { // variance ≈ 400
		t.Fatalf("default sigma variance = %v, want ≈400", std)
	}
}

func TestPolynomialStaysInBoundsAndPerturbs(t *testing.T) {
	r := rng.New(6)
	v := genome.RandomRealVector(1000, -3, 3, r)
	before := v.Clone().(*genome.RealVector)
	(Polynomial{P: 1, Eta: 20}).Mutate(v, r)
	if !v.InBounds() {
		t.Fatal("polynomial escaped bounds")
	}
	changed := 0
	for i := range v.Genes {
		if v.Genes[i] != before.Genes[i] {
			changed++
		}
	}
	if changed < 900 {
		t.Fatalf("polynomial(p=1) changed only %d/1000", changed)
	}
}

func TestPolynomialEtaDefault(t *testing.T) {
	if (Polynomial{}).eta() != 20 {
		t.Fatal("eta default wrong")
	}
}

func TestUniformResetReal(t *testing.T) {
	r := rng.New(7)
	v := genome.NewRealVector(10000, 5, 6) // all genes 0 → out of [5,6]
	(UniformReset{P: 0.5}).Mutate(v, r)
	reset := 0
	for _, g := range v.Genes {
		if g >= 5 && g <= 6 {
			reset++
		}
	}
	if reset < 4700 || reset > 5300 {
		t.Fatalf("reset(0.5) reset %d/10000", reset)
	}
}

func TestUniformResetInt(t *testing.T) {
	r := rng.New(8)
	v := genome.NewIntVector(10000, 9)
	for i := range v.Genes {
		v.Genes[i] = 3
	}
	(UniformReset{P: 1}).Mutate(v, r)
	if !v.Valid() {
		t.Fatal("reset produced invalid int vector")
	}
	moved := 0
	for _, g := range v.Genes {
		if g != 3 {
			moved++
		}
	}
	// With card 9, ~8/9 of resets land on a different value.
	if moved < 8400 || moved > 9300 {
		t.Fatalf("reset(1) moved %d/10000 genes", moved)
	}
}

func TestUniformResetPanicsOnPermutation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	(UniformReset{}).Mutate(genome.IdentityPermutation(4), rng.New(1))
}

func TestSwapPreservesPermutation(t *testing.T) {
	r := rng.New(9)
	check := func(seed uint16) bool {
		rr := rng.New(uint64(seed) + 1)
		p := genome.RandomPermutation(int(seed%20)+2, rr)
		(Swap{}).Mutate(p, r)
		return p.Valid()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSwapChangesExactlyTwoPositions(t *testing.T) {
	r := rng.New(10)
	p := genome.IdentityPermutation(10)
	(Swap{}).Mutate(p, r)
	diff := 0
	for i, v := range p.Perm {
		if v != i {
			diff++
		}
	}
	if diff != 2 {
		t.Fatalf("swap changed %d positions, want 2", diff)
	}
}

func TestSwapWorksOnAllGenomeTypes(t *testing.T) {
	r := rng.New(11)
	(Swap{}).Mutate(genome.RandomBitString(8, r), r)
	(Swap{}).Mutate(genome.RandomIntVector(8, 3, r), r)
	(Swap{}).Mutate(genome.RandomRealVector(8, 0, 1, r), r)
	(Swap{}).Mutate(genome.RandomPermutation(8, r), r)
	// 1-gene genomes are a no-op, not a crash.
	(Swap{}).Mutate(genome.NewBitString(1), r)
}

func TestInversionPreservesPermutation(t *testing.T) {
	r := rng.New(12)
	check := func(seed uint16) bool {
		rr := rng.New(uint64(seed) + 7)
		p := genome.RandomPermutation(int(seed%20)+2, rr)
		(Inversion{}).Mutate(p, r)
		return p.Valid()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestInversionReversesSegment(t *testing.T) {
	// With a deterministic seed, verify the multiset is intact and the
	// permutation differs (statistically) from identity after mutation.
	r := rng.New(13)
	changedAtLeastOnce := false
	for i := 0; i < 50; i++ {
		p := genome.IdentityPermutation(10)
		(Inversion{}).Mutate(p, r)
		if !p.Valid() {
			t.Fatal("inversion broke permutation")
		}
		for j, v := range p.Perm {
			if v != j {
				changedAtLeastOnce = true
			}
		}
	}
	if !changedAtLeastOnce {
		t.Fatal("inversion never changed anything in 50 trials")
	}
}

func TestScramblePreservesPermutation(t *testing.T) {
	r := rng.New(14)
	check := func(seed uint16) bool {
		rr := rng.New(uint64(seed) + 3)
		p := genome.RandomPermutation(int(seed%20)+2, rr)
		(Scramble{}).Mutate(p, r)
		return p.Valid()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestInsertionPreservesPermutation(t *testing.T) {
	r := rng.New(15)
	check := func(seed uint16) bool {
		rr := rng.New(uint64(seed) + 5)
		p := genome.RandomPermutation(int(seed%20)+2, rr)
		(Insertion{}).Mutate(p, r)
		return p.Valid()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestInsertionMovesItem(t *testing.T) {
	r := rng.New(16)
	moved := false
	for i := 0; i < 50; i++ {
		p := genome.IdentityPermutation(8)
		(Insertion{}).Mutate(p, r)
		if !p.Valid() {
			t.Fatal("insertion broke permutation")
		}
		for j, v := range p.Perm {
			if v != j {
				moved = true
			}
		}
	}
	if !moved {
		t.Fatal("insertion never moved anything")
	}
}

func TestPermMutatorsPanicOnWrongType(t *testing.T) {
	for _, m := range []Mutator{Inversion{}, Scramble{}, Insertion{}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", m.Name())
				}
			}()
			m.Mutate(genome.NewBitString(4), rng.New(1))
		}()
	}
}

func TestChain(t *testing.T) {
	r := rng.New(17)
	p := genome.RandomPermutation(10, r)
	c := Chain{Swap{}, Inversion{}}
	c.Mutate(p, r)
	if !p.Valid() {
		t.Fatal("chain broke permutation")
	}
	if c.Name() != "chain(swap,inversion)" {
		t.Fatalf("chain name = %q", c.Name())
	}
}

func TestWithProbability(t *testing.T) {
	r := rng.New(18)
	fired := 0
	const trials = 10000
	for i := 0; i < trials; i++ {
		p := genome.IdentityPermutation(6)
		(WithProbability{P: 0.2, M: Swap{}}).Mutate(p, r)
		for j, v := range p.Perm {
			if v != j {
				fired++
				break
			}
		}
	}
	if fired < 1700 || fired > 2300 {
		t.Fatalf("WithProbability(0.2) fired %d/10000", fired)
	}
}

func TestMutatorNames(t *testing.T) {
	for _, m := range []Mutator{BitFlip{}, Gaussian{}, Polynomial{}, UniformReset{},
		Swap{}, Inversion{}, Scramble{}, Insertion{}, Chain{}, WithProbability{M: Swap{}}} {
		if m.Name() == "" {
			t.Fatalf("%T has empty name", m)
		}
	}
}
