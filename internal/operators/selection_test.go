package operators

import (
	"math"
	"testing"

	"pga/internal/core"
	"pga/internal/genome"
	"pga/internal/rng"
)

// popWithFitness builds an evaluated population whose member i has the
// given fitness (genome content irrelevant).
func popWithFitness(fs ...float64) *core.Population {
	pop := core.NewPopulation(len(fs))
	for _, f := range fs {
		ind := core.NewIndividual(genome.NewBitString(4))
		ind.Fitness, ind.Evaluated = f, true
		pop.Members = append(pop.Members, ind)
	}
	return pop
}

func selectionRates(t *testing.T, s Selector, pop *core.Population, d core.Direction, draws int) []float64 {
	t.Helper()
	r := rng.New(12345)
	counts := make([]int, pop.Len())
	for i := 0; i < draws; i++ {
		idx := s.Select(pop, d, r)
		if idx < 0 || idx >= pop.Len() {
			t.Fatalf("%s returned out-of-range index %d", s.Name(), idx)
		}
		counts[idx]++
	}
	rates := make([]float64, len(counts))
	for i, c := range counts {
		rates[i] = float64(c) / float64(draws)
	}
	return rates
}

func TestTournamentPrefersBetter(t *testing.T) {
	pop := popWithFitness(1, 2, 3, 4, 5)
	rates := selectionRates(t, Tournament{K: 3}, pop, core.Maximize, 20000)
	for i := 1; i < len(rates); i++ {
		if rates[i] <= rates[i-1] {
			t.Fatalf("tournament rates not increasing with fitness: %v", rates)
		}
	}
}

func TestTournamentMinimize(t *testing.T) {
	pop := popWithFitness(1, 2, 3, 4, 5)
	rates := selectionRates(t, Tournament{K: 3}, pop, core.Minimize, 20000)
	for i := 1; i < len(rates); i++ {
		if rates[i] >= rates[i-1] {
			t.Fatalf("tournament(minimize) rates not decreasing: %v", rates)
		}
	}
}

func TestTournamentPressureGrowsWithK(t *testing.T) {
	pop := popWithFitness(1, 2, 3, 4, 5)
	r2 := selectionRates(t, Tournament{K: 2}, pop, core.Maximize, 30000)
	r5 := selectionRates(t, Tournament{K: 5}, pop, core.Maximize, 30000)
	if r5[4] <= r2[4] {
		t.Fatalf("K=5 best-rate %v not above K=2 %v", r5[4], r2[4])
	}
}

func TestTournamentDefaultK(t *testing.T) {
	pop := popWithFitness(1, 5)
	// K < 1 falls back to 2; just verify it works and prefers better.
	rates := selectionRates(t, Tournament{K: 0}, pop, core.Maximize, 10000)
	if rates[1] <= rates[0] {
		t.Fatalf("default-K tournament has no pressure: %v", rates)
	}
}

func TestRoulettePrefersBetter(t *testing.T) {
	pop := popWithFitness(1, 2, 3, 4, 10)
	rates := selectionRates(t, Roulette{}, pop, core.Maximize, 30000)
	if rates[4] <= rates[0] {
		t.Fatalf("roulette ignores fitness: %v", rates)
	}
}

func TestRouletteHandlesNegativeFitness(t *testing.T) {
	pop := popWithFitness(-10, -5, -1)
	rates := selectionRates(t, Roulette{}, pop, core.Maximize, 30000)
	if rates[2] <= rates[0] {
		t.Fatalf("roulette with negatives: %v", rates)
	}
}

func TestRouletteMinimize(t *testing.T) {
	pop := popWithFitness(1, 5, 10)
	rates := selectionRates(t, Roulette{}, pop, core.Minimize, 30000)
	if rates[0] <= rates[2] {
		t.Fatalf("roulette(minimize): %v", rates)
	}
}

func TestRouletteUniformWhenEqual(t *testing.T) {
	pop := popWithFitness(3, 3, 3, 3)
	rates := selectionRates(t, Roulette{}, pop, core.Maximize, 40000)
	for _, r := range rates {
		if math.Abs(r-0.25) > 0.02 {
			t.Fatalf("roulette not uniform on equal fitness: %v", rates)
		}
	}
}

func TestLinearRankDistribution(t *testing.T) {
	pop := popWithFitness(10, 20, 30, 40)
	rates := selectionRates(t, LinearRank{SP: 2}, pop, core.Maximize, 40000)
	// With SP=2 and n=4, expected probabilities are (0, 1/6, 2/6, 3/6)/... :
	// weight(rank)=2-2+2*1*rank/3 = 2rank/3; sum = 4; P = rank/6.
	want := []float64{0, 1.0 / 6, 2.0 / 6, 3.0 / 6}
	for i := range want {
		if math.Abs(rates[i]-want[i]) > 0.02 {
			t.Fatalf("rank rates %v, want ≈%v", rates, want)
		}
	}
}

func TestLinearRankSingleton(t *testing.T) {
	pop := popWithFitness(7)
	if idx := (LinearRank{}).Select(pop, core.Maximize, rng.New(1)); idx != 0 {
		t.Fatalf("singleton rank select = %d", idx)
	}
}

func TestLinearRankDefaultSP(t *testing.T) {
	if (LinearRank{SP: 0}).sp() != 1.5 || (LinearRank{SP: 3}).sp() != 1.5 {
		t.Fatal("SP default wrong")
	}
	if (LinearRank{SP: 1.2}).sp() != 1.2 {
		t.Fatal("valid SP overridden")
	}
}

func TestTruncationOnlySelectsTopFraction(t *testing.T) {
	pop := popWithFitness(1, 2, 3, 4, 5, 6, 7, 8, 9, 10)
	r := rng.New(7)
	s := Truncation{Frac: 0.3}
	for i := 0; i < 5000; i++ {
		idx := s.Select(pop, core.Maximize, r)
		if pop.Members[idx].Fitness < 8 {
			t.Fatalf("truncation(0.3) selected fitness %v", pop.Members[idx].Fitness)
		}
	}
	// Minimize: only fitness <= 3 should appear.
	for i := 0; i < 5000; i++ {
		idx := s.Select(pop, core.Minimize, r)
		if pop.Members[idx].Fitness > 3 {
			t.Fatalf("truncation(0.3,min) selected fitness %v", pop.Members[idx].Fitness)
		}
	}
}

func TestTruncationDefaults(t *testing.T) {
	if (Truncation{}).frac() != 0.5 || (Truncation{Frac: 2}).frac() != 0.5 {
		t.Fatal("Truncation default frac wrong")
	}
}

func TestRandomSelectorUniform(t *testing.T) {
	pop := popWithFitness(1, 100, 1, 100)
	rates := selectionRates(t, Random{}, pop, core.Maximize, 40000)
	for _, r := range rates {
		if math.Abs(r-0.25) > 0.02 {
			t.Fatalf("random selector biased: %v", rates)
		}
	}
}

func TestBestSelector(t *testing.T) {
	pop := popWithFitness(3, 9, 1)
	if idx := (Best{}).Select(pop, core.Maximize, rng.New(1)); idx != 1 {
		t.Fatalf("Best(max)=%d", idx)
	}
	if idx := (Best{}).Select(pop, core.Minimize, rng.New(1)); idx != 2 {
		t.Fatalf("Best(min)=%d", idx)
	}
}

func TestSUSCountAndSpread(t *testing.T) {
	pop := popWithFitness(1, 1, 1, 1, 100)
	r := rng.New(9)
	picks := SUS(pop, core.Maximize, 10, r)
	if len(picks) != 10 {
		t.Fatalf("SUS returned %d picks, want 10", len(picks))
	}
	bestCount := 0
	for _, p := range picks {
		if p < 0 || p >= pop.Len() {
			t.Fatalf("SUS pick out of range: %d", p)
		}
		if p == 4 {
			bestCount++
		}
	}
	if bestCount < 5 {
		t.Fatalf("SUS gave best individual only %d/10 slots", bestCount)
	}
}

func TestSUSEqualFitnessIsFair(t *testing.T) {
	pop := popWithFitness(2, 2, 2, 2)
	r := rng.New(10)
	counts := make([]int, 4)
	for trial := 0; trial < 1000; trial++ {
		for _, p := range SUS(pop, core.Maximize, 4, r) {
			counts[p]++
		}
	}
	for i, c := range counts {
		if c != 1000 {
			t.Fatalf("SUS unfair on equal fitness: member %d got %d/1000", i, c)
		}
	}
}

func TestSUSMinimize(t *testing.T) {
	pop := popWithFitness(1, 50, 50, 50)
	r := rng.New(11)
	count0 := 0
	for trial := 0; trial < 200; trial++ {
		for _, p := range SUS(pop, core.Minimize, 4, r) {
			if p == 0 {
				count0++
			}
		}
	}
	if count0 < 300 { // member 0 should take far more than 1/4 of 800 slots
		t.Fatalf("SUS(minimize) under-selected best: %d/800", count0)
	}
}

func TestSelectorNames(t *testing.T) {
	for _, s := range []Selector{Tournament{K: 2}, Roulette{}, LinearRank{}, Truncation{}, Random{}, Best{}} {
		if s.Name() == "" {
			t.Fatalf("%T has empty name", s)
		}
	}
}

func TestRankIndicesOrder(t *testing.T) {
	pop := popWithFitness(5, 1, 9, 3)
	idx := rankIndices(pop, core.Maximize)
	want := []int{1, 3, 0, 2} // worst → best
	for i := range want {
		if idx[i] != want[i] {
			t.Fatalf("rankIndices = %v, want %v", idx, want)
		}
	}
}
