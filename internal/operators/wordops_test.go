package operators

import (
	"math"
	"testing"

	"pga/internal/genome"
	"pga/internal/rng"
)

// tailBitsClean reports whether every storage bit beyond b.Len() is zero
// — the packed-layout invariant the word operators must preserve.
func tailBitsClean(b *genome.BitString) bool {
	if b.N == 0 {
		return true
	}
	return b.Words[len(b.Words)-1]&^genome.TailMask(b.N) == 0
}

func TestUniformWordExchangesPositions(t *testing.T) {
	// Per position, the child pair must hold exactly the parent pair's
	// values — uniform crossover permutes within columns, never across.
	r := rng.New(1)
	a := genome.RandomBitString(130, r)
	b := genome.RandomBitString(130, r)
	ga, gb := UniformWord{}.Cross(a, b, r)
	ca, cb := ga.(*genome.BitString), gb.(*genome.BitString)
	for i := 0; i < 130; i++ {
		okA := ca.Get(i) == a.Get(i) || ca.Get(i) == b.Get(i)
		if !okA || (ca.Get(i) == a.Get(i)) != (cb.Get(i) == b.Get(i)) && a.Get(i) != b.Get(i) {
			t.Fatalf("position %d not a pairwise exchange", i)
		}
	}
	if !tailBitsClean(ca) || !tailBitsClean(cb) {
		t.Fatal("UniformWord dirtied tail bits")
	}
}

func TestUniformWordExchangeRate(t *testing.T) {
	// All-ones vs all-zeros parents: each child-1 zero marks an exchange;
	// the rate over many positions must be near 1/2.
	n := 4096
	a := genome.NewBitString(n)
	for i := 0; i < n; i++ {
		a.Set(i, true)
	}
	b := genome.NewBitString(n)
	ga, gb := UniformWord{}.Cross(a, b, rng.New(2))
	ca, cb := ga.(*genome.BitString), gb.(*genome.BitString)
	swapped := n - ca.OnesCount()
	if swapped < n*4/10 || swapped > n*6/10 {
		t.Fatalf("exchange rate %d/%d far from 1/2", swapped, n)
	}
	if ca.OnesCount()+cb.OnesCount() != n {
		t.Fatal("exchange not complementary")
	}
}

func TestKPointWordMatchesBitKPointStructure(t *testing.T) {
	// All-ones vs all-zeros parents: child 1 must consist of at most K+1
	// maximal runs (the segments), i.e. at most K transitions.
	for _, k := range []int{1, 2, 3, 5} {
		n := 131
		a := genome.NewBitString(n)
		for i := 0; i < n; i++ {
			a.Set(i, true)
		}
		b := genome.NewBitString(n)
		ga, gb := KPointWord{K: k}.Cross(a, b, rng.New(uint64(3+k)))
		ca, cb := ga.(*genome.BitString), gb.(*genome.BitString)
		transitions := 0
		for i := 1; i < n; i++ {
			if ca.Get(i) != ca.Get(i-1) {
				transitions++
			}
		}
		if transitions > k {
			t.Fatalf("K=%d: %d transitions in child", k, transitions)
		}
		for i := 0; i < n; i++ {
			if ca.Get(i) == cb.Get(i) {
				t.Fatalf("K=%d: children agree at %d (should be complementary)", k, i)
			}
		}
		if !tailBitsClean(ca) || !tailBitsClean(cb) {
			t.Fatalf("K=%d: tail bits dirtied", k)
		}
	}
}

func TestKPointWordCrossIntoMatchesCross(t *testing.T) {
	// Cross and CrossInto draw identically (Sample vs SampleInto), so from
	// equal RNG states they must produce identical children.
	for _, n := range []int{2, 63, 64, 65, 200} {
		init := rng.New(uint64(20 + n))
		a := genome.RandomBitString(n, init)
		b := genome.RandomBitString(n, init)
		op := KPointWord{K: 3}

		r1 := rng.New(99)
		ga, gb := op.Cross(a, b, r1)

		r2 := rng.New(99)
		c1, c2 := genome.NewBitString(n), genome.NewBitString(n)
		op.CrossInto(a, b, c1, c2, r2, &Scratch{})

		if !c1.Equal(ga.(*genome.BitString)) || !c2.Equal(gb.(*genome.BitString)) {
			t.Fatalf("n=%d: CrossInto diverged from Cross", n)
		}
		if r1.Uint64() != r2.Uint64() {
			t.Fatalf("n=%d: Cross and CrossInto consumed different draw counts", n)
		}
	}
}

func TestUniformWordCrossIntoMatchesCross(t *testing.T) {
	init := rng.New(30)
	a := genome.RandomBitString(100, init)
	b := genome.RandomBitString(100, init)

	r1 := rng.New(7)
	ga, gb := UniformWord{}.Cross(a, b, r1)

	r2 := rng.New(7)
	c1, c2 := genome.NewBitString(100), genome.NewBitString(100)
	UniformWord{}.CrossInto(a, b, c1, c2, r2, &Scratch{})

	if !c1.Equal(ga.(*genome.BitString)) || !c2.Equal(gb.(*genome.BitString)) {
		t.Fatal("CrossInto diverged from Cross")
	}
	if r1.Uint64() != r2.Uint64() {
		t.Fatal("Cross and CrossInto consumed different draw counts")
	}
}

func TestWordCrossoversPreserveParents(t *testing.T) {
	r := rng.New(40)
	a := genome.RandomBitString(100, r)
	b := genome.RandomBitString(100, r)
	ac, bc := a.Clone().(*genome.BitString), b.Clone().(*genome.BitString)
	UniformWord{}.Cross(a, b, r)
	KPointWord{K: 2}.Cross(a, b, r)
	if !a.Equal(ac) || !b.Equal(bc) {
		t.Fatal("word crossover mutated a parent")
	}
}

func TestBlockFlipRate(t *testing.T) {
	// Over many genes the flip rate must approximate 2^-K.
	for _, k := range []int{1, 3, 6} {
		n := 1 << 16
		b := genome.NewBitString(n)
		BlockFlip{K: k}.Mutate(b, rng.New(uint64(50+k)))
		got := float64(b.OnesCount()) / float64(n)
		want := math.Pow(2, -float64(k))
		if math.Abs(got-want) > want/2+0.002 {
			t.Fatalf("K=%d: flip rate %v, want ~%v", k, got, want)
		}
	}
}

func TestBlockFlipTailAndEdgeCases(t *testing.T) {
	// Odd length: tail bits must stay zero through many mutations.
	b := genome.NewBitString(70)
	r := rng.New(60)
	for i := 0; i < 50; i++ {
		BlockFlip{}.Mutate(b, r)
		if !tailBitsClean(b) {
			t.Fatalf("iteration %d: tail bits set", i)
		}
	}
	// Zero-length genome is a no-op, not a panic.
	BlockFlip{}.Mutate(genome.NewBitString(0), r)
}

func TestBlockFlipDrawCountIndependentOfContent(t *testing.T) {
	// The mask draws must not depend on genome content, or lockstep
	// engines (cellular sweeps) would diverge by individual.
	r1, r2 := rng.New(70), rng.New(70)
	zero := genome.NewBitString(100)
	ones := genome.NewBitString(100)
	for i := 0; i < 100; i++ {
		ones.Set(i, true)
	}
	BlockFlip{}.Mutate(zero, r1)
	BlockFlip{}.Mutate(ones, r2)
	if r1.Uint64() != r2.Uint64() {
		t.Fatal("draw count depends on genome content")
	}
}

func TestWordOperatorTypePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on non-BitString operand")
		}
	}()
	BlockFlip{}.Mutate(genome.NewRealVector(4, 0, 1), rng.New(1))
}
