package operators

import (
	"testing"
	"testing/quick"

	"pga/internal/core"
	"pga/internal/genome"
	"pga/internal/rng"
)

func TestKPointPreservesMultiset(t *testing.T) {
	// Every child position holds a gene from one of the parents at the
	// same position.
	r := rng.New(1)
	for _, k := range []int{1, 2, 3, 7} {
		a := genome.RandomBitString(32, r)
		b := genome.RandomBitString(32, r)
		ca, cb := (KPoint{K: k}).Cross(a, b, r)
		ga, gb := ca.(*genome.BitString), cb.(*genome.BitString)
		for i := 0; i < 32; i++ {
			okA := ga.Get(i) == a.Get(i) || ga.Get(i) == b.Get(i)
			okB := gb.Get(i) == a.Get(i) || gb.Get(i) == b.Get(i)
			if !okA || !okB {
				t.Fatalf("k=%d: child gene %d not from either parent", k, i)
			}
			// Children are complementary: together they hold both parent genes.
			if (ga.Get(i) == a.Get(i)) != (gb.Get(i) == b.Get(i)) && a.Get(i) != b.Get(i) {
				t.Fatalf("k=%d: children not complementary at %d", k, i)
			}
		}
	}
}

func TestOnePointSingleBoundary(t *testing.T) {
	r := rng.New(2)
	a := genome.NewBitString(16) // all zero
	b := genome.NewBitString(16)
	for i := 0; i < b.Len(); i++ {
		b.Set(i, true) // all one
	}
	for trial := 0; trial < 100; trial++ {
		ca, _ := (OnePoint{}).Cross(a, b, r)
		g := ca.(*genome.BitString)
		// Child must be 0^i 1^j or have exactly one transition.
		transitions := 0
		for i := 1; i < 16; i++ {
			if g.Get(i) != g.Get(i-1) {
				transitions++
			}
		}
		if transitions != 1 {
			t.Fatalf("1-point child has %d transitions: %v", transitions, g)
		}
	}
}

func TestTwoPointTransitions(t *testing.T) {
	r := rng.New(3)
	a := genome.NewBitString(16)
	b := genome.NewBitString(16)
	for i := 0; i < b.Len(); i++ {
		b.Set(i, true)
	}
	for trial := 0; trial < 100; trial++ {
		ca, _ := (TwoPoint{}).Cross(a, b, r)
		g := ca.(*genome.BitString)
		transitions := 0
		for i := 1; i < 16; i++ {
			if g.Get(i) != g.Get(i-1) {
				transitions++
			}
		}
		if transitions > 2 {
			t.Fatalf("2-point child has %d transitions", transitions)
		}
	}
}

func TestKPointDoesNotModifyParents(t *testing.T) {
	r := rng.New(4)
	a := genome.RandomBitString(20, r)
	b := genome.RandomBitString(20, r)
	ac := a.Clone().(*genome.BitString)
	bc := b.Clone().(*genome.BitString)
	(KPoint{K: 3}).Cross(a, b, r)
	if !a.Equal(ac) || !b.Equal(bc) {
		t.Fatal("crossover modified a parent")
	}
}

func TestKPointTinyGenomes(t *testing.T) {
	r := rng.New(5)
	a := genome.NewBitString(1)
	b := genome.NewBitString(1)
	b.Set(0, true)
	ca, cb := (KPoint{K: 3}).Cross(a, b, r)
	if ca.Len() != 1 || cb.Len() != 1 {
		t.Fatal("length changed on 1-gene crossover")
	}
}

func TestKPointLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on length mismatch")
		}
	}()
	r := rng.New(6)
	(OnePoint{}).Cross(genome.NewBitString(4), genome.NewBitString(5), r)
}

func TestKPointWorksOnIntAndRealVectors(t *testing.T) {
	r := rng.New(7)
	ia := genome.RandomIntVector(10, 5, r)
	ib := genome.RandomIntVector(10, 5, r)
	ca, cb := (TwoPoint{}).Cross(ia, ib, r)
	if !ca.(*genome.IntVector).Valid() || !cb.(*genome.IntVector).Valid() {
		t.Fatal("int-vector children invalid")
	}
	ra := genome.RandomRealVector(10, -1, 1, r)
	rb := genome.RandomRealVector(10, -1, 1, r)
	cra, crb := (OnePoint{}).Cross(ra, rb, r)
	if !cra.(*genome.RealVector).InBounds() || !crb.(*genome.RealVector).InBounds() {
		t.Fatal("real-vector children out of bounds")
	}
}

func TestUniformExchangesRoughlyP(t *testing.T) {
	r := rng.New(8)
	n := 1000
	a := genome.NewBitString(n)
	b := genome.NewBitString(n)
	for i := 0; i < b.Len(); i++ {
		b.Set(i, true)
	}
	ca, _ := (Uniform{P: 0.3}).Cross(a, b, r)
	ones := ca.(*genome.BitString).OnesCount()
	if ones < 230 || ones > 370 {
		t.Fatalf("uniform(0.3) exchanged %d/1000 genes", ones)
	}
}

func TestUniformComplementary(t *testing.T) {
	r := rng.New(9)
	a := genome.RandomBitString(64, r)
	b := genome.RandomBitString(64, r)
	ca, cb := (Uniform{}).Cross(a, b, r)
	ga, gb := ca.(*genome.BitString), cb.(*genome.BitString)
	for i := 0; i < 64; i++ {
		if a.Get(i) == b.Get(i) {
			continue
		}
		if ga.Get(i) == gb.Get(i) {
			t.Fatalf("uniform children not complementary at %d", i)
		}
	}
}

func TestArithmeticChildrenWithinSegment(t *testing.T) {
	r := rng.New(10)
	a := genome.RandomRealVector(8, -5, 5, r)
	b := genome.RandomRealVector(8, -5, 5, r)
	ca, cb := (Arithmetic{}).Cross(a, b, r)
	ga, gb := ca.(*genome.RealVector), cb.(*genome.RealVector)
	for i := 0; i < 8; i++ {
		lo, hi := a.Genes[i], b.Genes[i]
		if lo > hi {
			lo, hi = hi, lo
		}
		if ga.Genes[i] < lo-1e-12 || ga.Genes[i] > hi+1e-12 {
			t.Fatalf("arithmetic child outside parent segment at %d", i)
		}
		// Children sum equals parents sum (convexity with shared alpha).
		if s, w := ga.Genes[i]+gb.Genes[i], a.Genes[i]+b.Genes[i]; s < w-1e-9 || s > w+1e-9 {
			t.Fatalf("arithmetic children don't conserve sum at %d", i)
		}
	}
}

func TestBLXWithinExpandedIntervalAndBounds(t *testing.T) {
	r := rng.New(11)
	a := genome.RandomRealVector(10, 0, 1, r)
	b := genome.RandomRealVector(10, 0, 1, r)
	ca, cb := (BLX{Alpha: 0.5}).Cross(a, b, r)
	for _, c := range []*genome.RealVector{ca.(*genome.RealVector), cb.(*genome.RealVector)} {
		if !c.InBounds() {
			t.Fatal("BLX child out of bounds")
		}
		for i := range c.Genes {
			lo, hi := a.Genes[i], b.Genes[i]
			if lo > hi {
				lo, hi = hi, lo
			}
			d := hi - lo
			if c.Genes[i] < lo-0.5*d-1e-12 || c.Genes[i] > hi+0.5*d+1e-12 {
				t.Fatalf("BLX child outside expanded interval at %d", i)
			}
		}
	}
}

func TestSBXChildrenMeanEqualsParentsMean(t *testing.T) {
	r := rng.New(12)
	a := genome.RandomRealVector(6, -100, 100, r)
	b := genome.RandomRealVector(6, -100, 100, r)
	ca, cb := (SBX{Eta: 15}).Cross(a, b, r)
	ga, gb := ca.(*genome.RealVector), cb.(*genome.RealVector)
	for i := 0; i < 6; i++ {
		pm := (a.Genes[i] + b.Genes[i]) / 2
		cm := (ga.Genes[i] + gb.Genes[i]) / 2
		if d := pm - cm; d > 1e-9 || d < -1e-9 {
			t.Fatalf("SBX mean not conserved at %d: %v vs %v", i, pm, cm)
		}
	}
	if !ga.InBounds() || !gb.InBounds() {
		t.Fatal("SBX child out of bounds")
	}
}

func TestRealCrossoverPanicsOnWrongType(t *testing.T) {
	for _, c := range []Crossover{Arithmetic{}, BLX{}, SBX{}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic on bitstring", c.Name())
				}
			}()
			c.Cross(genome.NewBitString(4), genome.NewBitString(4), rng.New(1))
		}()
	}
}

func permClosureCheck(t *testing.T, c Crossover) {
	t.Helper()
	r := rng.New(99)
	check := func(seed uint16) bool {
		rr := rng.New(uint64(seed))
		n := int(seed%29) + 2
		a := genome.RandomPermutation(n, rr)
		b := genome.RandomPermutation(n, rr)
		ca, cb := c.Cross(a, b, r)
		return ca.(*genome.Permutation).Valid() && cb.(*genome.Permutation).Valid() &&
			a.Valid() && b.Valid()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatalf("%s closure violated: %v", c.Name(), err)
	}
}

func TestOXClosure(t *testing.T)  { permClosureCheck(t, OX{}) }
func TestPMXClosure(t *testing.T) { permClosureCheck(t, PMX{}) }
func TestCXClosure(t *testing.T)  { permClosureCheck(t, CX{}) }

func TestCXGenesComeFromParentsAtSamePosition(t *testing.T) {
	r := rng.New(13)
	a := genome.RandomPermutation(12, r)
	b := genome.RandomPermutation(12, r)
	ca, cb := (CX{}).Cross(a, b, r)
	ga, gb := ca.(*genome.Permutation), cb.(*genome.Permutation)
	for i := 0; i < 12; i++ {
		if ga.Perm[i] != a.Perm[i] && ga.Perm[i] != b.Perm[i] {
			t.Fatalf("CX child gene %d from neither parent", i)
		}
		if gb.Perm[i] != a.Perm[i] && gb.Perm[i] != b.Perm[i] {
			t.Fatalf("CX child2 gene %d from neither parent", i)
		}
	}
}

func TestCXIdenticalParents(t *testing.T) {
	r := rng.New(14)
	a := genome.RandomPermutation(8, r)
	ca, cb := (CX{}).Cross(a, a.Clone(), r)
	for i, v := range a.Perm {
		if ca.(*genome.Permutation).Perm[i] != v || cb.(*genome.Permutation).Perm[i] != v {
			t.Fatal("CX of identical parents changed genes")
		}
	}
}

func TestPermCrossoverTinyGenomes(t *testing.T) {
	r := rng.New(15)
	a := genome.IdentityPermutation(1)
	b := genome.IdentityPermutation(1)
	for _, c := range []Crossover{OX{}, PMX{}} {
		ca, cb := c.Cross(a, b, r)
		if ca.Len() != 1 || cb.Len() != 1 {
			t.Fatalf("%s broke length-1 permutation", c.Name())
		}
	}
}

func TestPermCrossoverPanicsOnWrongType(t *testing.T) {
	for _, c := range []Crossover{OX{}, PMX{}, CX{}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic on bitstring", c.Name())
				}
			}()
			c.Cross(genome.NewBitString(4), genome.NewBitString(4), rng.New(1))
		}()
	}
}

func TestCrossoverNames(t *testing.T) {
	for _, c := range []Crossover{OnePoint{}, TwoPoint{}, KPoint{K: 3}, Uniform{},
		Arithmetic{}, BLX{}, SBX{}, OX{}, PMX{}, CX{}, ERX{}} {
		if c.Name() == "" {
			t.Fatalf("%T has empty name", c)
		}
	}
}

func TestCrossoverDeterministicWithSameSeed(t *testing.T) {
	mk := func() core.Genome {
		r := rng.New(77)
		a := genome.RandomPermutation(20, r)
		b := genome.RandomPermutation(20, r)
		ca, _ := (PMX{}).Cross(a, b, r)
		return ca
	}
	x := mk().(*genome.Permutation)
	y := mk().(*genome.Permutation)
	for i := range x.Perm {
		if x.Perm[i] != y.Perm[i] {
			t.Fatal("crossover not reproducible with same seed")
		}
	}
}
