package operators

// Word-wise operators for packed BitString genomes.
//
// The bit-wise operators (Uniform, KPoint, BitFlip) kept their historical
// one-draw-per-gene RNG sequences when BitString moved to the packed
// []uint64 layout, so the pre-existing golden traces stayed byte-identical.
// The operators in this file are the other half of that bargain: they
// exploit the packed layout directly — one RNG word per 64 genes, segment
// swaps as masked XORs — and therefore consume deliberately different draw
// sequences. They are pinned by their own golden traces (internal/equiv),
// never by the bit-wise ones.
//
// Every whole-word write ANDs its mask with genome.TailMask so the
// tail-mask invariant (bits at positions >= N stay zero) survives; the
// XOR-swap forms get that for free because the parents' tails are zero.

import (
	"fmt"

	"pga/internal/core"
	"pga/internal/genome"
	"pga/internal/rng"
)

// Compile-time checks: the word-wise crossovers are in-place capable like
// every other library crossover.
var (
	_ InPlaceCrossover = UniformWord{}
	_ InPlaceCrossover = KPointWord{}
	_ Mutator          = BlockFlip{}
)

// mustBits asserts a packed BitString operand.
func mustBits(g core.Genome) *genome.BitString {
	b, ok := g.(*genome.BitString)
	if !ok {
		panic(fmt.Sprintf("operators: word-wise operator applied to %T", g))
	}
	return b
}

// UniformWord is word-granular uniform crossover: one RNG word per 64
// genes serves as the exchange mask (per-gene exchange probability 1/2,
// the canonical uniform crossover), replacing 64 per-gene Chance draws.
type UniformWord struct{}

// Name implements Crossover.
func (UniformWord) Name() string { return "uniform-word" }

// Cross implements Crossover.
func (UniformWord) Cross(a, b core.Genome, r *rng.Source) (core.Genome, core.Genome) {
	ba, bb := mustBits(a), mustBits(b)
	if ba.N != bb.N {
		panic("operators: UniformWord parents of different lengths")
	}
	ca := ba.Clone().(*genome.BitString)
	cb := bb.Clone().(*genome.BitString)
	uniformWords(ca, cb, r)
	return ca, cb
}

// CrossInto implements InPlaceCrossover.
func (UniformWord) CrossInto(a, b, c1, c2 core.Genome, r *rng.Source, s *Scratch) {
	ba, bb := mustBits(a), mustBits(b)
	if ba.N != bb.N {
		panic("operators: UniformWord parents of different lengths")
	}
	ca, cb := mustBits(c1), mustBits(c2)
	ca.CopyFrom(ba)
	cb.CopyFrom(bb)
	uniformWords(ca, cb, r)
}

// uniformWords exchanges masked bits between two equal-length children:
// one Uint64 draw per word, shared by Cross and CrossInto. The XOR of
// two tail-invariant genomes has a zero tail, so the swap preserves the
// invariant without masking.
func uniformWords(ca, cb *genome.BitString, r *rng.Source) {
	for w := range ca.Words {
		x := (ca.Words[w] ^ cb.Words[w]) & r.Uint64()
		ca.Words[w] ^= x
		cb.Words[w] ^= x
	}
}

// KPointWord is k-point crossover executed as word-granular segment
// swaps: the cut points are drawn exactly like KPoint's, but alternating
// segments are exchanged with masked XORs over whole words instead of a
// per-gene swap loop.
type KPointWord struct {
	// K is the number of cut points; it is capped at Len-1.
	K int
}

// Name implements Crossover.
func (k KPointWord) Name() string { return fmt.Sprintf("%d-point-word", k.K) }

func (k KPointWord) clamp(n int) int {
	kk := k.K
	if kk < 1 {
		kk = 1
	}
	if kk > n-1 {
		kk = n - 1
	}
	return kk
}

// Cross implements Crossover.
func (k KPointWord) Cross(a, b core.Genome, r *rng.Source) (core.Genome, core.Genome) {
	ba, bb := mustBits(a), mustBits(b)
	n := ba.N
	if bb.N != n {
		panic("operators: KPointWord parents of different lengths")
	}
	ca := ba.Clone().(*genome.BitString)
	cb := bb.Clone().(*genome.BitString)
	if n < 2 {
		return ca, cb
	}
	cuts := r.Sample(n-1, k.clamp(n))
	kpointWordSwap(ca, cb, cuts)
	return ca, cb
}

// CrossInto implements InPlaceCrossover.
func (k KPointWord) CrossInto(a, b, c1, c2 core.Genome, r *rng.Source, s *Scratch) {
	ba, bb := mustBits(a), mustBits(b)
	n := ba.N
	if bb.N != n {
		panic("operators: KPointWord parents of different lengths")
	}
	ca, cb := mustBits(c1), mustBits(c2)
	ca.CopyFrom(ba)
	cb.CopyFrom(bb)
	if n < 2 {
		return
	}
	cuts := r.SampleInto(s.ints(n-1), k.clamp(n))
	kpointWordSwap(ca, cb, cuts)
}

// kpointWordSwap exchanges the alternating segments delimited by the cut
// draws (each cut c means a boundary before gene c+1, as in KPoint).
// cuts is reordered in place; the swap touches each word at most
// ceil(k/2)+1 times via swapBitRange's masked XORs.
func kpointWordSwap(ca, cb *genome.BitString, cuts []int) {
	// Cut draws are distinct but unordered; a tiny insertion sort keeps
	// this allocation-free for CrossInto (k is small).
	for i := 1; i < len(cuts); i++ {
		for j := i; j > 0 && cuts[j] < cuts[j-1]; j-- {
			cuts[j], cuts[j-1] = cuts[j-1], cuts[j]
		}
	}
	for i := 0; i+1 < len(cuts); i += 2 {
		swapBitRange(ca, cb, cuts[i]+1, cuts[i+1]+1)
	}
	if len(cuts)%2 == 1 {
		swapBitRange(ca, cb, cuts[len(cuts)-1]+1, ca.N)
	}
}

// swapBitRange exchanges genes [lo, hi) between two equal-length
// genomes: masked XORs on the boundary words, straight word swaps in
// between.
func swapBitRange(ca, cb *genome.BitString, lo, hi int) {
	if lo >= hi {
		return
	}
	fw, lw := lo>>6, (hi-1)>>6
	first := ^uint64(0) << (uint(lo) & 63)
	last := ^uint64(0) >> (63 - uint(hi-1)&63)
	if fw == lw {
		x := (ca.Words[fw] ^ cb.Words[fw]) & first & last
		ca.Words[fw] ^= x
		cb.Words[fw] ^= x
		return
	}
	x := (ca.Words[fw] ^ cb.Words[fw]) & first
	ca.Words[fw] ^= x
	cb.Words[fw] ^= x
	for w := fw + 1; w < lw; w++ {
		ca.Words[w], cb.Words[w] = cb.Words[w], ca.Words[w]
	}
	x = (ca.Words[lw] ^ cb.Words[lw]) & last
	ca.Words[lw] ^= x
	cb.Words[lw] ^= x
}

// BlockFlip is a word-granular bit-flip mutator: for each 64-gene word
// it ANDs K fresh RNG words into a flip mask, giving every gene an
// independent flip probability of 2^-K — K draws per word instead of 64
// per-gene Chance draws. The default K=6 approximates the canonical
// 1/Len rate for 64-gene genomes (2^-6 = 1/64).
type BlockFlip struct {
	// K is the number of AND-ed mask draws per word (flip probability
	// 2^-K per gene); <= 0 selects 6.
	K int
}

func (m BlockFlip) k() int {
	if m.K <= 0 {
		return 6
	}
	return m.K
}

// Name implements Mutator.
func (m BlockFlip) Name() string { return fmt.Sprintf("blockflip(2^-%d)", m.k()) }

// Mutate implements Mutator.
func (m BlockFlip) Mutate(g core.Genome, r *rng.Source) {
	b := mustBits(g)
	if b.N == 0 {
		return
	}
	k := m.k()
	tail := genome.TailMask(b.N)
	last := len(b.Words) - 1
	for w := range b.Words {
		mask := r.Uint64()
		for i := 1; i < k; i++ {
			mask &= r.Uint64()
		}
		if w == last {
			mask &= tail
		}
		b.Words[w] ^= mask
	}
}
