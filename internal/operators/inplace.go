package operators

// In-place operator variants for the zero-allocation generation hot path.
//
// The allocating Crossover.Cross API clones both parents per call, which
// made GC pressure — not the GA — dominate wall time on single-core
// builds. Every crossover here can instead write its offspring into
// caller-provided genomes (the engine's double-buffered next generation),
// drawing exactly the same RNG sequence as its allocating twin, so seeded
// trajectories are bit-for-bit identical either way. Working memory that
// the allocating forms rebuilt per call (cut-point tables, used-flags,
// ranked indices, SUS wheels) lives in a per-engine Scratch instead.

import (
	"math"
	"sort"

	"pga/internal/core"
	"pga/internal/genome"
	"pga/internal/rng"
)

// Scratch is reusable per-engine working memory for the in-place operator
// variants: index tables, flag vectors and the ranked-order buffer of
// rank-based selection. It grows to the largest size requested and is then
// allocation-free. A Scratch is NOT safe for concurrent use — give each
// engine (and each worker of a shared-memory engine) its own, exactly like
// an *rng.Source.
type Scratch struct {
	table  []int
	table2 []int
	flags  []bool
	rank   rankSorter
	sus    []int

	// ERX working memory: the union adjacency of two closed tours is at
	// most four neighbours per city, so the edge table is a flat n×4
	// array with per-city counts — no per-call maps.
	erxEdges  []int // city v's neighbours at [4v : 4v+erxCnt[v]], ascending
	erxCnt    []int // neighbour count per city
	erxRem    []int // remaining-degree, reset per child
	erxCand   []int // minimum-degree candidate buffer (≤ 4)
	erxUnused []int // dead-end restart buffer
}

// ints returns a length-n int buffer (contents undefined).
func (s *Scratch) ints(n int) []int {
	if cap(s.table) < n {
		s.table = make([]int, n)
	}
	return s.table[:n]
}

// ints2 returns a second, independent length-n int buffer.
func (s *Scratch) ints2(n int) []int {
	if cap(s.table2) < n {
		s.table2 = make([]int, n)
	}
	return s.table2[:n]
}

// bools returns a length-n flag buffer cleared to false.
func (s *Scratch) bools(n int) []bool {
	if cap(s.flags) < n {
		s.flags = make([]bool, n)
	}
	f := s.flags[:n]
	for i := range f {
		f[i] = false
	}
	return f
}

// rankSorter sorts an index buffer worst → best under a direction without
// allocating (sort.Stable over a pointer receiver, unlike
// sort.SliceStable, performs no per-call allocation).
type rankSorter struct {
	idx []int
	pop *core.Population
	d   core.Direction
}

func (s *rankSorter) Len() int      { return len(s.idx) }
func (s *rankSorter) Swap(i, j int) { s.idx[i], s.idx[j] = s.idx[j], s.idx[i] }
func (s *rankSorter) Less(a, b int) bool {
	// worst first — identical comparator to the allocating rankIndices.
	return s.d.Better(s.pop.Members[s.idx[b]].Fitness, s.pop.Members[s.idx[a]].Fitness)
}

// rankIndicesInto returns population indices ordered worst → best under d,
// reusing the scratch rank buffer. The ordering is identical to
// rankIndices (both sorts are stable with the same comparator).
func rankIndicesInto(s *Scratch, pop *core.Population, d core.Direction) []int {
	n := pop.Len()
	if cap(s.rank.idx) < n {
		s.rank.idx = make([]int, n)
	}
	s.rank.idx = s.rank.idx[:n]
	for i := range s.rank.idx {
		s.rank.idx[i] = i
	}
	s.rank.pop, s.rank.d = pop, d
	sort.Stable(&s.rank)
	s.rank.pop = nil // do not pin the population between calls
	return s.rank.idx
}

// ScratchSelector is implemented by selectors whose per-call working
// memory (ranked index buffers) can live in an engine-owned Scratch.
type ScratchSelector interface {
	Selector
	// SelectScratch is Select with caller-provided scratch; the RNG draw
	// sequence and the chosen index are identical to Select.
	SelectScratch(pop *core.Population, d core.Direction, r *rng.Source, s *Scratch) int
}

// SelectWith invokes sel reusing scratch when both sides support it — the
// engines' hot-path entry point for parent selection. With a nil scratch
// or a plain Selector it degrades to sel.Select.
func SelectWith(sel Selector, pop *core.Population, d core.Direction, r *rng.Source, s *Scratch) int {
	if ss, ok := sel.(ScratchSelector); ok && s != nil {
		return ss.SelectScratch(pop, d, r, s)
	}
	return sel.Select(pop, d, r)
}

// SelectScratch implements ScratchSelector.
func (sel LinearRank) SelectScratch(pop *core.Population, d core.Direction, r *rng.Source, s *Scratch) int {
	n := pop.Len()
	ranked := rankIndicesInto(s, pop, d)
	sp := sel.sp()
	if n == 1 {
		return 0
	}
	total := float64(n) // weights sum to n by construction
	x := r.Float64() * total
	acc := 0.0
	for rank := 0; rank < n; rank++ {
		w := 2 - sp + 2*(sp-1)*float64(rank)/float64(n-1)
		acc += w
		if x < acc {
			return ranked[rank]
		}
	}
	return ranked[n-1]
}

// SelectScratch implements ScratchSelector.
func (sel Truncation) SelectScratch(pop *core.Population, d core.Direction, r *rng.Source, s *Scratch) int {
	n := pop.Len()
	k := int(float64(n) * sel.frac())
	if k < 1 {
		k = 1
	}
	ranked := rankIndicesInto(s, pop, d) // worst → best
	return ranked[n-k+r.Intn(k)]
}

// SUSInto is SUS writing the chosen indices into dst (len(dst) == count),
// allocation-free. The RNG draw sequence and results are identical to SUS.
func SUSInto(dst []int, pop *core.Population, d core.Direction, r *rng.Source) []int {
	count := len(dst)
	n := pop.Len()
	min, max := pop.Members[0].Fitness, pop.Members[0].Fitness
	for _, ind := range pop.Members {
		if ind.Fitness < min {
			min = ind.Fitness
		}
		if ind.Fitness > max {
			max = ind.Fitness
		}
	}
	const eps = 0.01
	span := max - min
	weight := func(f float64) float64 {
		if span == 0 {
			return 1
		}
		if d == core.Maximize {
			return (f-min)/span + eps
		}
		return (max-f)/span + eps
	}
	total := 0.0
	for _, ind := range pop.Members {
		total += weight(ind.Fitness)
	}
	step := total / float64(count)
	x := r.Float64() * step
	out := 0
	acc := 0.0
	i := 0
	for out < count {
		for acc+weight(pop.Members[i].Fitness) < x {
			acc += weight(pop.Members[i].Fitness)
			i++
			if i >= n { // numeric safety net
				i = n - 1
				break
			}
		}
		dst[out] = i
		out++
		x += step
	}
	return dst
}

// InPlaceCrossover is implemented by crossovers that can write their
// offspring into caller-provided genomes without allocating. c1 and c2
// must share concrete type and length with a and b and must not alias
// them (or each other); Scratch supplies working memory.
type InPlaceCrossover interface {
	Crossover
	// CrossInto recombines a and b into c1 and c2 with the exact RNG draw
	// sequence of Cross.
	CrossInto(a, b, c1, c2 core.Genome, r *rng.Source, s *Scratch)
}

// Compile-time checks: every library crossover has an in-place variant
// (ERX's per-call edge maps are replaced by a flat scratch-owned
// adjacency table).
var (
	_ InPlaceCrossover = OnePoint{}
	_ InPlaceCrossover = TwoPoint{}
	_ InPlaceCrossover = KPoint{}
	_ InPlaceCrossover = Uniform{}
	_ InPlaceCrossover = Arithmetic{}
	_ InPlaceCrossover = BLX{}
	_ InPlaceCrossover = SBX{}
	_ InPlaceCrossover = OX{}
	_ InPlaceCrossover = PMX{}
	_ InPlaceCrossover = CX{}
	_ InPlaceCrossover = ERX{}
)

// CrossInto recombines parents a and b into the two child individuals'
// existing genomes, in place when the crossover and the child genomes
// support it, falling back to the allocating Cross otherwise. Either way
// the RNG draw sequence is identical, the children never alias the
// parents, and the children's fitness is left untouched (callers
// invalidate). This is the engines' hot-path entry point for
// recombination.
func CrossInto(c Crossover, a, b core.Genome, ch1, ch2 *core.Individual, r *rng.Source, s *Scratch) {
	if ip, ok := c.(InPlaceCrossover); ok && s != nil &&
		reusable(ch1.Genome, a) && reusable(ch2.Genome, b) {
		ip.CrossInto(a, b, ch1.Genome, ch2.Genome, r, s)
		return
	}
	ch1.Genome, ch2.Genome = c.Cross(a, b, r)
}

// reusable reports whether dst can be overwritten in place with src's
// genes: an InPlace genome of the same concrete type and length.
func reusable(dst, src core.Genome) bool {
	if dst == nil {
		return false
	}
	if _, ok := dst.(core.InPlace); !ok {
		return false
	}
	return sameConcrete(dst, src) && dst.Len() == src.Len()
}

// sameConcrete reports whether two genomes share a concrete type, without
// reflection (the four library representations are enumerated; unknown
// types conservatively report false and take the allocating path).
func sameConcrete(x, y core.Genome) bool {
	switch x.(type) {
	case *genome.BitString:
		_, ok := y.(*genome.BitString)
		return ok
	case *genome.RealVector:
		_, ok := y.(*genome.RealVector)
		return ok
	case *genome.IntVector:
		_, ok := y.(*genome.IntVector)
		return ok
	case *genome.Permutation:
		_, ok := y.(*genome.Permutation)
		return ok
	}
	return false
}

// CrossInto implements InPlaceCrossover.
func (OnePoint) CrossInto(a, b, c1, c2 core.Genome, r *rng.Source, s *Scratch) {
	KPoint{K: 1}.CrossInto(a, b, c1, c2, r, s)
}

// CrossInto implements InPlaceCrossover.
func (TwoPoint) CrossInto(a, b, c1, c2 core.Genome, r *rng.Source, s *Scratch) {
	KPoint{K: 2}.CrossInto(a, b, c1, c2, r, s)
}

// CrossInto implements InPlaceCrossover.
func (k KPoint) CrossInto(a, b, c1, c2 core.Genome, r *rng.Source, s *Scratch) {
	n := a.Len()
	if b.Len() != n {
		panic("operators: KPoint parents of different lengths")
	}
	c1.(core.InPlace).CopyFrom(a)
	c2.(core.InPlace).CopyFrom(b)
	if n < 2 {
		return
	}
	kk := k.K
	if kk < 1 {
		kk = 1
	}
	if kk > n-1 {
		kk = n - 1
	}
	// Choose kk distinct cut points in [1, n-1].
	cutIdx := r.SampleInto(s.ints(n-1), kk)
	cuts := s.bools(n)
	for _, c := range cutIdx {
		cuts[c+1] = true
	}
	swap := false
	for i := 0; i < n; i++ {
		if cuts[i] {
			swap = !swap
		}
		if swap {
			swapGene(c1, c2, i)
		}
	}
}

// CrossInto implements InPlaceCrossover.
func (u Uniform) CrossInto(a, b, c1, c2 core.Genome, r *rng.Source, s *Scratch) {
	n := a.Len()
	if b.Len() != n {
		panic("operators: Uniform parents of different lengths")
	}
	c1.(core.InPlace).CopyFrom(a)
	c2.(core.InPlace).CopyFrom(b)
	p := u.p()
	for i := 0; i < n; i++ {
		if r.Chance(p) {
			swapGene(c1, c2, i)
		}
	}
}

// CrossInto implements InPlaceCrossover.
func (Arithmetic) CrossInto(a, b, c1, c2 core.Genome, r *rng.Source, s *Scratch) {
	va, vb := mustReal(a), mustReal(b)
	ca, cb := mustReal(c1), mustReal(c2)
	ca.Lo, ca.Hi = va.Lo, va.Hi // bounds shared, as in Clone
	cb.Lo, cb.Hi = vb.Lo, vb.Hi
	alpha := r.Float64()
	for i := range ca.Genes {
		x, y := va.Genes[i], vb.Genes[i]
		ca.Genes[i] = alpha*x + (1-alpha)*y
		cb.Genes[i] = (1-alpha)*x + alpha*y
	}
}

// CrossInto implements InPlaceCrossover.
func (c BLX) CrossInto(a, b, c1, c2 core.Genome, r *rng.Source, s *Scratch) {
	va, vb := mustReal(a), mustReal(b)
	ca, cb := mustReal(c1), mustReal(c2)
	ca.Lo, ca.Hi = va.Lo, va.Hi
	cb.Lo, cb.Hi = vb.Lo, vb.Hi
	alpha := c.alpha()
	for i := range ca.Genes {
		lo, hi := va.Genes[i], vb.Genes[i]
		if lo > hi {
			lo, hi = hi, lo
		}
		d := hi - lo
		l, h := lo-alpha*d, hi+alpha*d
		ca.Genes[i] = r.Range(l, h)
		cb.Genes[i] = r.Range(l, h)
	}
	ca.Clamp()
	cb.Clamp()
}

// CrossInto implements InPlaceCrossover.
func (c SBX) CrossInto(a, b, c1, c2 core.Genome, r *rng.Source, s *Scratch) {
	va, vb := mustReal(a), mustReal(b)
	ca, cb := mustReal(c1), mustReal(c2)
	ca.Lo, ca.Hi = va.Lo, va.Hi
	cb.Lo, cb.Hi = vb.Lo, vb.Hi
	eta := c.eta()
	for i := range ca.Genes {
		u := r.Float64()
		var beta float64
		if u <= 0.5 {
			beta = math.Pow(2*u, 1/(eta+1))
		} else {
			beta = math.Pow(1/(2*(1-u)), 1/(eta+1))
		}
		x, y := va.Genes[i], vb.Genes[i]
		ca.Genes[i] = 0.5 * ((1+beta)*x + (1-beta)*y)
		cb.Genes[i] = 0.5 * ((1-beta)*x + (1+beta)*y)
	}
	ca.Clamp()
	cb.Clamp()
}

// CrossInto implements InPlaceCrossover.
func (OX) CrossInto(a, b, c1, c2 core.Genome, r *rng.Source, s *Scratch) {
	pa, pb := mustPerm(a), mustPerm(b)
	ca, cb := mustPerm(c1), mustPerm(c2)
	n := pa.Len()
	if n < 2 {
		ca.CopyFrom(pa)
		cb.CopyFrom(pb)
		return
	}
	i := r.Intn(n)
	j := r.Intn(n)
	if i > j {
		i, j = j, i
	}
	oxChildInto(ca, pa, pb, i, j, s)
	oxChildInto(cb, pb, pa, i, j, s)
}

// oxChildInto is oxChild writing into child's existing Perm.
func oxChildInto(child, keep, other *genome.Permutation, i, j int, s *Scratch) {
	n := keep.Len()
	used := s.bools(n)
	for k := i; k <= j; k++ {
		child.Perm[k] = keep.Perm[k]
		used[keep.Perm[k]] = true
	}
	pos := (j + 1) % n
	for k := 0; k < n; k++ {
		v := other.Perm[(j+1+k)%n]
		if used[v] {
			continue
		}
		child.Perm[pos] = v
		used[v] = true
		pos = (pos + 1) % n
	}
}

// CrossInto implements InPlaceCrossover.
func (PMX) CrossInto(a, b, c1, c2 core.Genome, r *rng.Source, s *Scratch) {
	pa, pb := mustPerm(a), mustPerm(b)
	ca, cb := mustPerm(c1), mustPerm(c2)
	n := pa.Len()
	if n < 2 {
		ca.CopyFrom(pa)
		cb.CopyFrom(pb)
		return
	}
	i := r.Intn(n)
	j := r.Intn(n)
	if i > j {
		i, j = j, i
	}
	pmxChildInto(ca, pa, pb, i, j, s)
	pmxChildInto(cb, pb, pa, i, j, s)
}

// pmxChildInto is pmxChild writing into child's existing Perm.
func pmxChildInto(child, donor, filler *genome.Permutation, i, j int, s *Scratch) {
	n := donor.Len()
	inSeg := s.bools(n) // value → lies in donor segment
	posOf := s.ints2(n) // value → its position in donor segment mapping
	for k := range posOf {
		posOf[k] = -1
	}
	for k := i; k <= j; k++ {
		child.Perm[k] = donor.Perm[k]
		inSeg[donor.Perm[k]] = true
		posOf[donor.Perm[k]] = k
	}
	for k := 0; k < n; k++ {
		if k >= i && k <= j {
			continue
		}
		v := filler.Perm[k]
		// Follow the mapping chain until v is not in the donor segment.
		for inSeg[v] {
			v = filler.Perm[posOf[v]]
		}
		child.Perm[k] = v
	}
}

// CrossInto implements InPlaceCrossover.
func (CX) CrossInto(a, b, c1, c2 core.Genome, r *rng.Source, s *Scratch) {
	pa, pb := mustPerm(a), mustPerm(b)
	ca, cb := mustPerm(c1), mustPerm(c2)
	n := pa.Len()
	posInA := s.ints(n) // value → position in pa
	for i, v := range pa.Perm {
		posInA[v] = i
	}
	assigned := s.bools(n)
	fromA := true
	for start := 0; start < n; start++ {
		if assigned[start] {
			continue
		}
		// Trace the cycle containing position start.
		k := start
		for !assigned[k] {
			assigned[k] = true
			if fromA {
				ca.Perm[k], cb.Perm[k] = pa.Perm[k], pb.Perm[k]
			} else {
				ca.Perm[k], cb.Perm[k] = pb.Perm[k], pa.Perm[k]
			}
			k = posInA[pb.Perm[k]]
		}
		fromA = !fromA
	}
}

// CrossInto implements InPlaceCrossover.
func (ERX) CrossInto(a, b, c1, c2 core.Genome, r *rng.Source, s *Scratch) {
	pa, pb := mustPerm(a), mustPerm(b)
	ca, cb := mustPerm(c1), mustPerm(c2)
	n := pa.Len()
	if n < 2 {
		ca.CopyFrom(pa)
		cb.CopyFrom(pb)
		return
	}
	erxEdgesInto(s, pa.Perm, pb.Perm)
	erxChildInto(ca, pa.Perm[0], n, r, s)
	erxChildInto(cb, pb.Perm[0], n, r, s)
}

// erxEdgesInto fills the scratch adjacency table with each city's
// neighbour set over both parent tours (closed tours: first and last are
// adjacent). Per-city lists are kept ascending by sorted insertion, which
// is what buildEdgeMap's post-sort produces — the candidate scan order,
// and therefore the RNG draw sequence, is identical to erxChild's.
func erxEdgesInto(s *Scratch, pa, pb []int) {
	n := len(pa)
	if cap(s.erxEdges) < 4*n {
		s.erxEdges = make([]int, 4*n)
		s.erxCnt = make([]int, n)
		s.erxRem = make([]int, n)
		s.erxCand = make([]int, 4)
		s.erxUnused = make([]int, n)
	}
	edges, cnt := s.erxEdges[:4*n], s.erxCnt[:n]
	for i := range cnt {
		cnt[i] = 0
	}
	add := func(v, u int) {
		base := 4 * v
		k := 0
		for ; k < cnt[v]; k++ {
			if edges[base+k] == u {
				return
			}
			if edges[base+k] > u {
				break
			}
		}
		for j := cnt[v]; j > k; j-- {
			edges[base+j] = edges[base+j-1]
		}
		edges[base+k] = u
		cnt[v]++
	}
	addTour := func(p []int) {
		for i, v := range p {
			add(v, p[(i+n-1)%n])
			add(v, p[(i+1)%n])
		}
	}
	addTour(pa)
	addTour(pb)
}

// erxChildInto is erxChild writing into child's existing Perm, reading
// the adjacency table prepared by erxEdgesInto. The greedy walk, the
// tie-break draws and the dead-end restart draws mirror erxChild exactly.
func erxChildInto(child *genome.Permutation, start, n int, r *rng.Source, s *Scratch) {
	edges, cnt := s.erxEdges, s.erxCnt
	rem := s.erxRem[:n]
	copy(rem, cnt)
	used := s.bools(n)
	cur := start
	filled := 0
	for {
		child.Perm[filled] = cur
		filled++
		used[cur] = true
		if filled == n {
			break
		}
		// Decrease the remaining-degree of cur's neighbours.
		base := 4 * cur
		for k := 0; k < cnt[cur]; k++ {
			if u := edges[base+k]; !used[u] {
				rem[u]--
			}
		}
		// Next: unused neighbour with the fewest remaining edges; ties
		// broken uniformly at random. Indexed writes, not append: the
		// buffers are scratch-owned and exactly sized.
		cand := s.erxCand[:4]
		candN := 0
		bestDeg := 1 << 30
		for k := 0; k < cnt[cur]; k++ {
			u := edges[base+k]
			if used[u] {
				continue
			}
			switch {
			case rem[u] < bestDeg:
				bestDeg = rem[u]
				cand[0] = u
				candN = 1
			case rem[u] == bestDeg:
				cand[candN] = u
				candN++
			}
		}
		if candN == 0 {
			// Dead end: restart from a uniformly random unused city
			// (ascending scan, exactly like erxChild's unused slice).
			unused := s.erxUnused[:n]
			un := 0
			for v := 0; v < n; v++ {
				if !used[v] {
					unused[un] = v
					un++
				}
			}
			cur = unused[r.Intn(un)]
			continue
		}
		cur = cand[r.Intn(candN)]
	}
}
