package operators

import (
	"testing"

	"pga/internal/genome"
	"pga/internal/rng"
)

func TestERXClosure(t *testing.T) { permClosureCheck(t, ERX{}) }

func TestERXPreservesSharedAdjacency(t *testing.T) {
	// When both parents are the same tour, the child must reproduce it
	// (up to rotation/reversal) because every edge has degree ≤ 2.
	r := rng.New(7)
	p := genome.RandomPermutation(12, r)
	c1, _ := (ERX{}).Cross(p, p.Clone(), r)
	child := c1.(*genome.Permutation)
	// Check adjacency preservation: every consecutive child pair must be
	// adjacent in the parent tour.
	pos := make([]int, 12)
	for i, v := range p.Perm {
		pos[v] = i
	}
	adjacent := func(a, b int) bool {
		d := pos[a] - pos[b]
		if d < 0 {
			d = -d
		}
		return d == 1 || d == 11
	}
	for i := 0; i < 12; i++ {
		a, b := child.Perm[i], child.Perm[(i+1)%12]
		if !adjacent(a, b) {
			t.Fatalf("child edge (%d,%d) not in identical parents", a, b)
		}
	}
}

func TestERXInheritsMostEdgesFromParents(t *testing.T) {
	r := rng.New(8)
	inherited, total := 0, 0
	for trial := 0; trial < 50; trial++ {
		a := genome.RandomPermutation(16, r)
		b := genome.RandomPermutation(16, r)
		edgeSet := map[[2]int]bool{}
		add := func(p *genome.Permutation) {
			n := p.Len()
			for i, v := range p.Perm {
				u := p.Perm[(i+1)%n]
				lo, hi := v, u
				if lo > hi {
					lo, hi = hi, lo
				}
				edgeSet[[2]int{lo, hi}] = true
			}
		}
		add(a)
		add(b)
		c, _ := (ERX{}).Cross(a, b, r)
		child := c.(*genome.Permutation)
		for i, v := range child.Perm {
			u := child.Perm[(i+1)%16]
			lo, hi := v, u
			if lo > hi {
				lo, hi = hi, lo
			}
			total++
			if edgeSet[[2]int{lo, hi}] {
				inherited++
			}
		}
	}
	frac := float64(inherited) / float64(total)
	if frac < 0.85 {
		t.Fatalf("ERX inherited only %.2f of edges from parents", frac)
	}
}

func TestERXTiny(t *testing.T) {
	r := rng.New(9)
	a := genome.IdentityPermutation(1)
	c1, c2 := (ERX{}).Cross(a, a.Clone(), r)
	if c1.Len() != 1 || c2.Len() != 1 {
		t.Fatal("1-city ERX broken")
	}
}

func TestERXDeterministicPerSeed(t *testing.T) {
	run := func() []int {
		r := rng.New(10)
		a := genome.RandomPermutation(14, r)
		b := genome.RandomPermutation(14, r)
		c, _ := (ERX{}).Cross(a, b, r)
		return c.(*genome.Permutation).Perm
	}
	x, y := run(), run()
	for i := range x {
		if x[i] != y[i] {
			t.Fatal("ERX not deterministic")
		}
	}
}
