package operators

import (
	"testing"

	"pga/internal/genome"
	"pga/internal/rng"
)

func TestERXClosure(t *testing.T) { permClosureCheck(t, ERX{}) }

func TestERXPreservesSharedAdjacency(t *testing.T) {
	// When both parents are the same tour, the child must reproduce it
	// (up to rotation/reversal) because every edge has degree ≤ 2.
	r := rng.New(7)
	p := genome.RandomPermutation(12, r)
	c1, _ := (ERX{}).Cross(p, p.Clone(), r)
	child := c1.(*genome.Permutation)
	// Check adjacency preservation: every consecutive child pair must be
	// adjacent in the parent tour.
	pos := make([]int, 12)
	for i, v := range p.Perm {
		pos[v] = i
	}
	adjacent := func(a, b int) bool {
		d := pos[a] - pos[b]
		if d < 0 {
			d = -d
		}
		return d == 1 || d == 11
	}
	for i := 0; i < 12; i++ {
		a, b := child.Perm[i], child.Perm[(i+1)%12]
		if !adjacent(a, b) {
			t.Fatalf("child edge (%d,%d) not in identical parents", a, b)
		}
	}
}

func TestERXInheritsMostEdgesFromParents(t *testing.T) {
	r := rng.New(8)
	inherited, total := 0, 0
	for trial := 0; trial < 50; trial++ {
		a := genome.RandomPermutation(16, r)
		b := genome.RandomPermutation(16, r)
		edgeSet := map[[2]int]bool{}
		add := func(p *genome.Permutation) {
			n := p.Len()
			for i, v := range p.Perm {
				u := p.Perm[(i+1)%n]
				lo, hi := v, u
				if lo > hi {
					lo, hi = hi, lo
				}
				edgeSet[[2]int{lo, hi}] = true
			}
		}
		add(a)
		add(b)
		c, _ := (ERX{}).Cross(a, b, r)
		child := c.(*genome.Permutation)
		for i, v := range child.Perm {
			u := child.Perm[(i+1)%16]
			lo, hi := v, u
			if lo > hi {
				lo, hi = hi, lo
			}
			total++
			if edgeSet[[2]int{lo, hi}] {
				inherited++
			}
		}
	}
	frac := float64(inherited) / float64(total)
	if frac < 0.85 {
		t.Fatalf("ERX inherited only %.2f of edges from parents", frac)
	}
}

func TestERXTiny(t *testing.T) {
	r := rng.New(9)
	a := genome.IdentityPermutation(1)
	c1, c2 := (ERX{}).Cross(a, a.Clone(), r)
	if c1.Len() != 1 || c2.Len() != 1 {
		t.Fatal("1-city ERX broken")
	}
}

func TestERXDeterministicPerSeed(t *testing.T) {
	run := func() []int {
		r := rng.New(10)
		a := genome.RandomPermutation(14, r)
		b := genome.RandomPermutation(14, r)
		c, _ := (ERX{}).Cross(a, b, r)
		return c.(*genome.Permutation).Perm
	}
	x, y := run(), run()
	for i := range x {
		if x[i] != y[i] {
			t.Fatal("ERX not deterministic")
		}
	}
}

// TestERXCrossIntoMatchesCross proves the in-place variant is
// draw-identical to the allocating form: same parents and seed produce
// the same children AND leave the RNG stream in the same state (checked
// by comparing the next draw), across sizes that exercise the tie-break
// and dead-end restart paths.
func TestERXCrossIntoMatchesCross(t *testing.T) {
	for _, n := range []int{2, 3, 8, 17, 40} {
		for seed := uint64(1); seed <= 8; seed++ {
			setup := rng.New(seed)
			a := genome.RandomPermutation(n, setup)
			b := genome.RandomPermutation(n, setup)

			r1 := rng.New(seed * 101)
			c1, c2 := (ERX{}).Cross(a, b, r1)

			r2 := rng.New(seed * 101)
			s := &Scratch{}
			d1 := &genome.Permutation{Perm: make([]int, n)}
			d2 := &genome.Permutation{Perm: make([]int, n)}
			(ERX{}).CrossInto(a, b, d1, d2, r2, s)

			p1, p2 := c1.(*genome.Permutation), c2.(*genome.Permutation)
			for i := 0; i < n; i++ {
				if p1.Perm[i] != d1.Perm[i] || p2.Perm[i] != d2.Perm[i] {
					t.Fatalf("n=%d seed=%d: CrossInto children diverge from Cross at %d", n, seed, i)
				}
			}
			if r1.Uint64() != r2.Uint64() {
				t.Fatalf("n=%d seed=%d: RNG streams diverge after crossover", n, seed)
			}
		}
	}
}

// TestERXCrossIntoAllocFree gates the point of the in-place variant:
// after the scratch warms up, a CrossInto performs zero heap allocations.
func TestERXCrossIntoAllocFree(t *testing.T) {
	r := rng.New(5)
	a := genome.RandomPermutation(32, r)
	b := genome.RandomPermutation(32, r)
	c1 := &genome.Permutation{Perm: make([]int, 32)}
	c2 := &genome.Permutation{Perm: make([]int, 32)}
	s := &Scratch{}
	avg := testing.AllocsPerRun(50, func() {
		(ERX{}).CrossInto(a, b, c1, c2, r, s)
	})
	if avg != 0 {
		t.Errorf("ERX.CrossInto: %.1f allocs per call, want 0", avg)
	}
}
