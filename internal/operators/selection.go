// Package operators implements the genetic operators of the library:
// parent selection, crossover and mutation, for all four genome
// representations in internal/genome.
//
// All operators draw randomness exclusively from the *rng.Source passed to
// them, so engines that hold per-deme sources stay deterministic under
// parallel execution.
package operators

import (
	"fmt"
	"sort"

	"pga/internal/core"
	"pga/internal/rng"
)

// Selector picks the index of one parent from a population.
type Selector interface {
	// Name identifies the selector in tables and logs.
	Name() string
	// Select returns the index of the chosen individual. The population
	// must be non-empty and fully evaluated.
	Select(pop *core.Population, d core.Direction, r *rng.Source) int
}

// Tournament is k-tournament selection: draw K individuals uniformly with
// replacement and return the best.
type Tournament struct {
	// K is the tournament size; larger K means higher selection pressure.
	K int
}

// Name implements Selector.
func (t Tournament) Name() string { return fmt.Sprintf("tournament(%d)", t.K) }

// Select implements Selector.
func (t Tournament) Select(pop *core.Population, d core.Direction, r *rng.Source) int {
	k := t.K
	if k < 1 {
		k = 2
	}
	best := r.Intn(pop.Len())
	for i := 1; i < k; i++ {
		c := r.Intn(pop.Len())
		if d.Better(pop.Members[c].Fitness, pop.Members[best].Fitness) {
			best = c
		}
	}
	return best
}

// Roulette is fitness-proportionate selection. Fitness values are shifted
// so the worst member has a small positive weight; minimisation problems
// are handled by inverting the scale. This is the classic Goldberg wheel
// with windowing, robust to negative fitness.
type Roulette struct{}

// Name implements Selector.
func (Roulette) Name() string { return "roulette" }

// Select implements Selector.
func (Roulette) Select(pop *core.Population, d core.Direction, r *rng.Source) int {
	n := pop.Len()
	// Find min and max fitness.
	min, max := pop.Members[0].Fitness, pop.Members[0].Fitness
	for _, ind := range pop.Members {
		if ind.Fitness < min {
			min = ind.Fitness
		}
		if ind.Fitness > max {
			max = ind.Fitness
		}
	}
	span := max - min
	if span == 0 {
		return r.Intn(n) // uniform when all equal
	}
	// Weight in [eps, 1+eps], oriented so better fitness → larger weight.
	const eps = 0.01
	total := 0.0
	weight := func(f float64) float64 {
		if d == core.Maximize {
			return (f-min)/span + eps
		}
		return (max-f)/span + eps
	}
	for _, ind := range pop.Members {
		total += weight(ind.Fitness)
	}
	x := r.Float64() * total
	acc := 0.0
	for i, ind := range pop.Members {
		acc += weight(ind.Fitness)
		if x < acc {
			return i
		}
	}
	return n - 1
}

// LinearRank is linear ranking selection with selective pressure SP in
// [1, 2]: the best individual is sampled SP times as often as average.
type LinearRank struct {
	// SP is the selection pressure; the canonical default is 1.5.
	SP float64
}

// Name implements Selector.
func (s LinearRank) Name() string { return fmt.Sprintf("rank(%.2g)", s.sp()) }

func (s LinearRank) sp() float64 {
	if s.SP < 1 || s.SP > 2 {
		return 1.5
	}
	return s.SP
}

// Select implements Selector.
func (s LinearRank) Select(pop *core.Population, d core.Direction, r *rng.Source) int {
	n := pop.Len()
	ranked := rankIndices(pop, d)
	// rank 0 = worst … n-1 = best; weight(rank) = 2-SP + 2(SP-1)rank/(n-1).
	sp := s.sp()
	if n == 1 {
		return 0
	}
	total := float64(n) // weights sum to n by construction
	x := r.Float64() * total
	acc := 0.0
	for rank := 0; rank < n; rank++ {
		w := 2 - sp + 2*(sp-1)*float64(rank)/float64(n-1)
		acc += w
		if x < acc {
			return ranked[rank]
		}
	}
	return ranked[n-1]
}

// rankIndices returns population indices ordered worst → best under d.
func rankIndices(pop *core.Population, d core.Direction) []int {
	idx := make([]int, pop.Len())
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		// worst first
		return d.Better(pop.Members[idx[b]].Fitness, pop.Members[idx[a]].Fitness)
	})
	return idx
}

// Truncation selects uniformly among the best Frac fraction of the
// population (at least one individual).
type Truncation struct {
	// Frac in (0, 1]; the canonical default is 0.5.
	Frac float64
}

// Name implements Selector.
func (s Truncation) Name() string { return fmt.Sprintf("truncation(%.2g)", s.frac()) }

func (s Truncation) frac() float64 {
	if s.Frac <= 0 || s.Frac > 1 {
		return 0.5
	}
	return s.Frac
}

// Select implements Selector.
func (s Truncation) Select(pop *core.Population, d core.Direction, r *rng.Source) int {
	n := pop.Len()
	k := int(float64(n) * s.frac())
	if k < 1 {
		k = 1
	}
	ranked := rankIndices(pop, d) // worst → best
	return ranked[n-k+r.Intn(k)]
}

// Random selects uniformly, ignoring fitness (no selection pressure; the
// control arm of selection-pressure experiments).
type Random struct{}

// Name implements Selector.
func (Random) Name() string { return "random" }

// Select implements Selector.
func (Random) Select(pop *core.Population, d core.Direction, r *rng.Source) int {
	return r.Intn(pop.Len())
}

// Best deterministically selects the population's best member (maximum
// pressure; used in takeover-time experiments).
type Best struct{}

// Name implements Selector.
func (Best) Name() string { return "best" }

// Select implements Selector.
func (Best) Select(pop *core.Population, d core.Direction, r *rng.Source) int {
	return pop.Best(d)
}

// SUS performs stochastic universal sampling: it draws count parents in a
// single spin with evenly spaced pointers, guaranteeing each individual's
// sample count is within 1 of its expectation. It is exposed as a function
// because it selects a whole batch at once.
func SUS(pop *core.Population, d core.Direction, count int, r *rng.Source) []int {
	n := pop.Len()
	min, max := pop.Members[0].Fitness, pop.Members[0].Fitness
	for _, ind := range pop.Members {
		if ind.Fitness < min {
			min = ind.Fitness
		}
		if ind.Fitness > max {
			max = ind.Fitness
		}
	}
	const eps = 0.01
	span := max - min
	weight := func(f float64) float64 {
		if span == 0 {
			return 1
		}
		if d == core.Maximize {
			return (f-min)/span + eps
		}
		return (max-f)/span + eps
	}
	total := 0.0
	for _, ind := range pop.Members {
		total += weight(ind.Fitness)
	}
	step := total / float64(count)
	x := r.Float64() * step
	out := make([]int, 0, count)
	acc := 0.0
	i := 0
	for len(out) < count {
		for acc+weight(pop.Members[i].Fitness) < x {
			acc += weight(pop.Members[i].Fitness)
			i++
			if i >= n { // numeric safety net
				i = n - 1
				break
			}
		}
		out = append(out, i)
		x += step
	}
	return out
}
