package operators

import "pga/internal/core"

// DrawPairs returns this package's RNG-draw equivalence pairs: every
// allocating operator and its in-place variant (see core.DrawPair). The
// engines pick between the members at runtime (CrossInto/SelectWith
// dispatch), so the pairs must consume identical draw sequences —
// statically proven by pgalint's drawparity rule, dynamically pinned by
// the golden traces `pgalint -tracecover` audits against.
func DrawPairs() []core.DrawPair {
	const ops = "pga/internal/operators."
	var pairs []core.DrawPair
	for _, c := range []struct {
		op   string
		test string
	}{
		{op: "OnePoint"},
		{op: "TwoPoint"},
		{op: "KPoint"},
		{op: "Uniform"},
		{op: "Arithmetic"},
		{op: "BLX"},
		{op: "SBX"},
		{op: "OX"},
		{op: "PMX"},
		{op: "CX"},
		{op: "ERX", test: "TestERXCrossIntoMatchesCross"},
		{op: "UniformWord", test: "TestUniformWordCrossIntoMatchesCross"},
		{op: "KPointWord", test: "TestKPointWordCrossIntoMatchesCross"},
	} {
		pairs = append(pairs, core.DrawPair{
			A:    ops + c.op + ".Cross",
			B:    ops + c.op + ".CrossInto",
			Op:   c.op,
			Test: c.test,
			Why:  "operators.CrossInto substitutes the in-place variant whenever the child genomes are reusable",
		})
	}
	pairs = append(pairs,
		core.DrawPair{
			A:   ops + "LinearRank.Select",
			B:   ops + "LinearRank.SelectScratch",
			Op:  "LinearRank",
			Why: "SelectWith substitutes the scratch variant whenever the engine owns a Scratch",
		},
		core.DrawPair{
			A:   ops + "Truncation.Select",
			B:   ops + "Truncation.SelectScratch",
			Op:  "Truncation",
			Why: "SelectWith substitutes the scratch variant whenever the engine owns a Scratch",
		},
		core.DrawPair{
			A:    ops + "SUS",
			B:    ops + "SUSInto",
			Test: "TestSUSIntoMatchesSUS",
			Why:  "SUSInto is the allocation-free batch selection path; callers switch on scratch availability",
		},
	)
	return pairs
}
