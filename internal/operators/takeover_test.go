package operators

import "testing"

func TestTakeoverCompletes(t *testing.T) {
	for _, sel := range []Selector{Tournament{K: 2}, Tournament{K: 5}, LinearRank{SP: 2}, Truncation{Frac: 0.5}} {
		tt := TakeoverTime(sel, 50, 5, 500, 1)
		if tt <= 0 || tt >= 500 {
			t.Fatalf("%s takeover time %v implausible", sel.Name(), tt)
		}
	}
}

func TestTakeoverPressureOrdering(t *testing.T) {
	// Classic Goldberg & Deb ordering: higher tournament size and harder
	// truncation take over faster.
	t2 := TakeoverTime(Tournament{K: 2}, 64, 10, 1000, 2)
	t5 := TakeoverTime(Tournament{K: 5}, 64, 10, 1000, 2)
	if t5 >= t2 {
		t.Fatalf("tournament(5)=%v not faster than tournament(2)=%v", t5, t2)
	}
	trHard := TakeoverTime(Truncation{Frac: 0.2}, 64, 10, 1000, 2)
	trSoft := TakeoverTime(Truncation{Frac: 0.8}, 64, 10, 1000, 2)
	if trHard >= trSoft {
		t.Fatalf("truncation(0.2)=%v not faster than truncation(0.8)=%v", trHard, trSoft)
	}
}

func TestTakeoverRandomNeverCompletes(t *testing.T) {
	// Random selection has no pressure: expect the cap (drift could
	// complete occasionally, but not reliably fast).
	tt := TakeoverTime(Random{}, 64, 3, 60, 3)
	if tt < 50 {
		t.Fatalf("random selection took over suspiciously fast: %v", tt)
	}
}

func TestTakeoverCurveMonotoneStart(t *testing.T) {
	curve := TakeoverCurve(Tournament{K: 2}, 100, 500, 4)
	if curve[0] != 0.01 {
		t.Fatalf("initial proportion %v", curve[0])
	}
	if curve[len(curve)-1] != 1 {
		t.Fatalf("curve did not reach takeover: %v", curve[len(curve)-1])
	}
	// Proportion can dip by drift but must broadly grow; check the end is
	// above the middle.
	if curve[len(curve)/2] >= 1 {
		t.Fatal("takeover finished implausibly early")
	}
}

func TestTakeoverBestSelectorInstant(t *testing.T) {
	// Best always picks the single best: full takeover in one generation.
	tt := TakeoverTime(Best{}, 32, 3, 10, 5)
	if tt != 1 {
		t.Fatalf("Best selector takeover %v, want 1", tt)
	}
}
