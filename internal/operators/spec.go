package operators

import "sort"

// This file is the operator half of the run-specification vocabulary:
// every concrete operator the library ships is constructible from a
// stable string key plus a flat map of numeric parameters. The
// declarative layer (internal/spec) resolves OperatorSpec values through
// this registry, and the completeness test in spec_keys_test.go pins the
// invariant that no operator is constructible-but-unspeccable: each
// entry of RegisteredOperators has exactly one key here and vice versa.

// Operator kinds of the spec vocabulary.
const (
	KindSelector  = "selector"
	KindCrossover = "crossover"
	KindMutator   = "mutator"
)

// SpecParam documents one tunable numeric parameter of a keyed operator.
// A parameter left out of the map keeps the operator's canonical default
// (the zero value, whose defaulting each operator documents itself).
type SpecParam struct {
	// Name is the key in OperatorSpec.Params.
	Name string
	// Doc is a one-line description for -list output and docs.
	Doc string
}

// SpecEntry is one entry of the operator vocabulary: a stable key, the
// operator kind, its accepted parameters and a constructor from a sparse
// parameter map. Build must accept an empty map (canonical defaults) and
// must ignore keys it does not document — parameter-name validation is
// the spec layer's job, via Params.
type SpecEntry struct {
	Key    string
	Kind   string
	Params []SpecParam
	// Genomes lists the genome classes ("bits", "real", "int", "perm")
	// the operator is closed over; empty means any class. The spec layer
	// rejects operator/problem pairings outside this set at validation
	// time instead of panicking at the first Step.
	Genomes []string
	Build   func(params map[string]float64) any
}

// Accepts reports whether name is a documented parameter of the entry.
func (e SpecEntry) Accepts(name string) bool {
	for _, p := range e.Params {
		if p.Name == name {
			return true
		}
	}
	return false
}

// specRegistry holds the vocabulary in presentation order (selectors,
// then crossovers, then mutators, each alphabetical-ish by family).
var specRegistry = []SpecEntry{
	// Selectors.
	{Key: "tournament", Kind: KindSelector,
		Params: []SpecParam{{Name: "k", Doc: "tournament size (default 2)"}},
		Build:  func(p map[string]float64) any { return Tournament{K: int(p["k"])} }},
	{Key: "roulette", Kind: KindSelector,
		Build: func(map[string]float64) any { return Roulette{} }},
	{Key: "rank", Kind: KindSelector,
		Params: []SpecParam{{Name: "sp", Doc: "selection pressure in [1,2] (default 1.5)"}},
		Build:  func(p map[string]float64) any { return LinearRank{SP: p["sp"]} }},
	{Key: "truncation", Kind: KindSelector,
		Params: []SpecParam{{Name: "frac", Doc: "surviving fraction in (0,1] (default 0.5)"}},
		Build:  func(p map[string]float64) any { return Truncation{Frac: p["frac"]} }},
	{Key: "random", Kind: KindSelector,
		Build: func(map[string]float64) any { return Random{} }},
	{Key: "best", Kind: KindSelector,
		Build: func(map[string]float64) any { return Best{} }},

	// Crossovers.
	{Key: "onepoint", Genomes: []string{"bits", "real", "int"}, Kind: KindCrossover,
		Build: func(map[string]float64) any { return OnePoint{} }},
	{Key: "twopoint", Genomes: []string{"bits", "real", "int"}, Kind: KindCrossover,
		Build: func(map[string]float64) any { return TwoPoint{} }},
	{Key: "kpoint", Genomes: []string{"bits", "real", "int"}, Kind: KindCrossover,
		Params: []SpecParam{{Name: "k", Doc: "number of cut points (default 1)"}},
		Build:  func(p map[string]float64) any { return KPoint{K: int(p["k"])} }},
	{Key: "uniform", Genomes: []string{"bits", "real", "int"}, Kind: KindCrossover,
		Params: []SpecParam{{Name: "p", Doc: "per-gene exchange probability (default 0.5)"}},
		Build:  func(p map[string]float64) any { return Uniform{P: p["p"]} }},
	{Key: "arithmetic", Genomes: []string{"real"}, Kind: KindCrossover,
		Build: func(map[string]float64) any { return Arithmetic{} }},
	{Key: "blx", Genomes: []string{"real"}, Kind: KindCrossover,
		Params: []SpecParam{{Name: "alpha", Doc: "interval extension factor (default 0.5)"}},
		Build:  func(p map[string]float64) any { return BLX{Alpha: p["alpha"]} }},
	{Key: "sbx", Genomes: []string{"real"}, Kind: KindCrossover,
		Params: []SpecParam{{Name: "eta", Doc: "distribution index (default 15)"}},
		Build:  func(p map[string]float64) any { return SBX{Eta: p["eta"]} }},
	{Key: "ox", Genomes: []string{"perm"}, Kind: KindCrossover,
		Build: func(map[string]float64) any { return OX{} }},
	{Key: "pmx", Genomes: []string{"perm"}, Kind: KindCrossover,
		Build: func(map[string]float64) any { return PMX{} }},
	{Key: "cx", Genomes: []string{"perm"}, Kind: KindCrossover,
		Build: func(map[string]float64) any { return CX{} }},
	{Key: "erx", Genomes: []string{"perm"}, Kind: KindCrossover,
		Build: func(map[string]float64) any { return ERX{} }},
	{Key: "uniformword", Genomes: []string{"bits"}, Kind: KindCrossover,
		Build: func(map[string]float64) any { return UniformWord{} }},
	{Key: "kpointword", Genomes: []string{"bits"}, Kind: KindCrossover,
		Params: []SpecParam{{Name: "k", Doc: "number of cut points (default 1)"}},
		Build:  func(p map[string]float64) any { return KPointWord{K: int(p["k"])} }},

	// Mutators.
	{Key: "bitflip", Genomes: []string{"bits"}, Kind: KindMutator,
		Params: []SpecParam{{Name: "p", Doc: "per-bit flip probability (default 1/len)"}},
		Build:  func(p map[string]float64) any { return BitFlip{P: p["p"]} }},
	{Key: "gaussian", Genomes: []string{"real"}, Kind: KindMutator,
		Params: []SpecParam{
			{Name: "p", Doc: "per-gene perturbation probability (default 1/len)"},
			{Name: "sigma", Doc: "perturbation std-dev (default 10% of range)"}},
		Build: func(p map[string]float64) any { return Gaussian{P: p["p"], Sigma: p["sigma"]} }},
	{Key: "polynomial", Genomes: []string{"real"}, Kind: KindMutator,
		Params: []SpecParam{
			{Name: "p", Doc: "per-gene mutation probability (default 1/len)"},
			{Name: "eta", Doc: "distribution index (default 20)"}},
		Build: func(p map[string]float64) any { return Polynomial{P: p["p"], Eta: p["eta"]} }},
	{Key: "reset", Genomes: []string{"real", "int"}, Kind: KindMutator,
		Params: []SpecParam{{Name: "p", Doc: "per-gene reset probability (default 1/len)"}},
		Build:  func(p map[string]float64) any { return UniformReset{P: p["p"]} }},
	{Key: "swap", Kind: KindMutator,
		Build: func(map[string]float64) any { return Swap{} }},
	{Key: "inversion", Genomes: []string{"perm"}, Kind: KindMutator,
		Build: func(map[string]float64) any { return Inversion{} }},
	{Key: "scramble", Genomes: []string{"perm"}, Kind: KindMutator,
		Build: func(map[string]float64) any { return Scramble{} }},
	{Key: "insertion", Genomes: []string{"perm"}, Kind: KindMutator,
		Build: func(map[string]float64) any { return Insertion{} }},
	{Key: "blockflip", Genomes: []string{"bits"}, Kind: KindMutator,
		Params: []SpecParam{{Name: "k", Doc: "AND-ed mask draws per word, flip prob 2^-k (default 6)"}},
		Build:  func(p map[string]float64) any { return BlockFlip{K: int(p["k"])} }},
}

// specByKey indexes the registry; built once at init.
var specByKey = func() map[string]SpecEntry {
	m := make(map[string]SpecEntry, len(specRegistry))
	for _, e := range specRegistry {
		m[e.Key] = e
	}
	return m
}()

// SpecEntries returns the operator vocabulary in presentation order.
func SpecEntries() []SpecEntry {
	return append([]SpecEntry(nil), specRegistry...)
}

// LookupSpec returns the vocabulary entry registered under key.
func LookupSpec(key string) (SpecEntry, bool) {
	e, ok := specByKey[key]
	return e, ok
}

// SpecKeys returns the sorted keys of the given kind ("" = all kinds).
func SpecKeys(kind string) []string {
	var out []string
	for _, e := range specRegistry {
		if kind == "" || e.Kind == kind {
			out = append(out, e.Key)
		}
	}
	sort.Strings(out)
	return out
}
