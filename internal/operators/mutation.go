package operators

import (
	"fmt"
	"math"

	"pga/internal/core"
	"pga/internal/genome"
	"pga/internal/rng"
)

// Mutator modifies a genome in place. Callers are responsible for
// invalidating the owning individual's fitness.
type Mutator interface {
	// Name identifies the mutator in tables and logs.
	Name() string
	// Mutate modifies g in place. It panics if the genome type is
	// unsupported.
	Mutate(g core.Genome, r *rng.Source)
}

// BitFlip flips each bit independently with probability P. With P <= 0 the
// canonical 1/Len rate is used.
type BitFlip struct {
	// P is the per-bit flip probability; <= 0 selects 1/Len.
	P float64
}

// Name implements Mutator.
func (m BitFlip) Name() string { return fmt.Sprintf("bitflip(%.3g)", m.P) }

// Mutate implements Mutator.
func (m BitFlip) Mutate(g core.Genome, r *rng.Source) {
	b, ok := g.(*genome.BitString)
	if !ok {
		panic(fmt.Sprintf("operators: BitFlip applied to %T", g))
	}
	p := m.P
	if p <= 0 {
		p = 1 / float64(b.N)
	}
	// One Chance draw per gene, exactly as before the packed layout —
	// the draw sequence is pinned by the equiv golden traces.
	for i := 0; i < b.N; i++ {
		if r.Chance(p) {
			b.Flip(i)
		}
	}
}

// Gaussian perturbs each real gene with probability P by N(0, Sigma),
// clamping the result to the gene's bounds.
type Gaussian struct {
	// P is the per-gene mutation probability; <= 0 selects 1/Len.
	P float64
	// Sigma is the perturbation standard deviation; <= 0 selects 10% of
	// the gene's range.
	Sigma float64
}

// Name implements Mutator.
func (m Gaussian) Name() string { return fmt.Sprintf("gauss(p=%.3g,σ=%.3g)", m.P, m.Sigma) }

// Mutate implements Mutator.
func (m Gaussian) Mutate(g core.Genome, r *rng.Source) {
	v, ok := g.(*genome.RealVector)
	if !ok {
		panic(fmt.Sprintf("operators: Gaussian applied to %T", g))
	}
	p := m.P
	if p <= 0 {
		p = 1 / float64(len(v.Genes))
	}
	for i := range v.Genes {
		if !r.Chance(p) {
			continue
		}
		sigma := m.Sigma
		if sigma <= 0 {
			sigma = 0.1 * (v.Hi[i] - v.Lo[i])
		}
		v.Genes[i] += sigma * r.NormFloat64()
	}
	v.Clamp()
}

// Polynomial is polynomial mutation (Deb) for real vectors, the standard
// companion of SBX crossover.
type Polynomial struct {
	// P is the per-gene mutation probability; <= 0 selects 1/Len.
	P float64
	// Eta is the distribution index; larger values mean smaller
	// perturbations. The canonical default is 20.
	Eta float64
}

// Name implements Mutator.
func (m Polynomial) Name() string { return fmt.Sprintf("poly(p=%.3g,η=%.3g)", m.P, m.eta()) }

func (m Polynomial) eta() float64 {
	if m.Eta <= 0 {
		return 20
	}
	return m.Eta
}

// Mutate implements Mutator.
func (m Polynomial) Mutate(g core.Genome, r *rng.Source) {
	v, ok := g.(*genome.RealVector)
	if !ok {
		panic(fmt.Sprintf("operators: Polynomial applied to %T", g))
	}
	p := m.P
	if p <= 0 {
		p = 1 / float64(len(v.Genes))
	}
	eta := m.eta()
	for i := range v.Genes {
		if !r.Chance(p) {
			continue
		}
		lo, hi := v.Lo[i], v.Hi[i]
		span := hi - lo
		if span <= 0 {
			continue
		}
		u := r.Float64()
		var delta float64
		if u < 0.5 {
			delta = math.Pow(2*u, 1/(eta+1)) - 1
		} else {
			delta = 1 - math.Pow(2*(1-u), 1/(eta+1))
		}
		v.Genes[i] += delta * span
	}
	v.Clamp()
}

// UniformReset resets each gene independently with probability P to a
// uniformly random value in its domain (real and integer vectors).
type UniformReset struct {
	// P is the per-gene reset probability; <= 0 selects 1/Len.
	P float64
}

// Name implements Mutator.
func (m UniformReset) Name() string { return fmt.Sprintf("reset(%.3g)", m.P) }

// Mutate implements Mutator.
func (m UniformReset) Mutate(g core.Genome, r *rng.Source) {
	switch v := g.(type) {
	case *genome.RealVector:
		p := m.P
		if p <= 0 {
			p = 1 / float64(len(v.Genes))
		}
		for i := range v.Genes {
			if r.Chance(p) {
				v.Genes[i] = r.Range(v.Lo[i], v.Hi[i])
			}
		}
	case *genome.IntVector:
		p := m.P
		if p <= 0 {
			p = 1 / float64(len(v.Genes))
		}
		for i := range v.Genes {
			if r.Chance(p) {
				v.Genes[i] = r.Intn(v.Card)
			}
		}
	default:
		panic(fmt.Sprintf("operators: UniformReset applied to %T", g))
	}
}

// Swap exchanges two distinct random positions; valid for any vector-like
// genome and closed over permutations.
type Swap struct{}

// Name implements Mutator.
func (Swap) Name() string { return "swap" }

// Mutate implements Mutator.
func (Swap) Mutate(g core.Genome, r *rng.Source) {
	n := g.Len()
	if n < 2 {
		return
	}
	i := r.Intn(n)
	j := r.Intn(n - 1)
	if j >= i {
		j++
	}
	switch v := g.(type) {
	case *genome.Permutation:
		v.Perm[i], v.Perm[j] = v.Perm[j], v.Perm[i]
	case *genome.IntVector:
		v.Genes[i], v.Genes[j] = v.Genes[j], v.Genes[i]
	case *genome.RealVector:
		v.Genes[i], v.Genes[j] = v.Genes[j], v.Genes[i]
	case *genome.BitString:
		bi, bj := v.Get(i), v.Get(j)
		v.Set(i, bj)
		v.Set(j, bi)
	default:
		panic(fmt.Sprintf("operators: Swap applied to %T", g))
	}
}

// Inversion reverses a random slice of a permutation (2-opt style move,
// the classic TSP mutation).
type Inversion struct{}

// Name implements Mutator.
func (Inversion) Name() string { return "inversion" }

// Mutate implements Mutator.
func (Inversion) Mutate(g core.Genome, r *rng.Source) {
	p := mustPerm(g)
	n := p.Len()
	if n < 2 {
		return
	}
	i, j := r.Intn(n), r.Intn(n)
	if i > j {
		i, j = j, i
	}
	for i < j {
		p.Perm[i], p.Perm[j] = p.Perm[j], p.Perm[i]
		i++
		j--
	}
}

// Scramble shuffles a random slice of a permutation.
type Scramble struct{}

// Name implements Mutator.
func (Scramble) Name() string { return "scramble" }

// Mutate implements Mutator.
func (Scramble) Mutate(g core.Genome, r *rng.Source) {
	p := mustPerm(g)
	n := p.Len()
	if n < 2 {
		return
	}
	i, j := r.Intn(n), r.Intn(n)
	if i > j {
		i, j = j, i
	}
	seg := p.Perm[i : j+1]
	r.ShuffleInts(seg)
}

// Insertion removes a random item and reinserts it at a random position
// (the "or-opt" move for permutations).
type Insertion struct{}

// Name implements Mutator.
func (Insertion) Name() string { return "insertion" }

// Mutate implements Mutator.
func (Insertion) Mutate(g core.Genome, r *rng.Source) {
	p := mustPerm(g)
	n := p.Len()
	if n < 2 {
		return
	}
	from := r.Intn(n)
	to := r.Intn(n)
	if from == to {
		return
	}
	v := p.Perm[from]
	if from < to {
		copy(p.Perm[from:to], p.Perm[from+1:to+1])
	} else {
		copy(p.Perm[to+1:from+1], p.Perm[to:from])
	}
	p.Perm[to] = v
}

// Chain applies several mutators in sequence (e.g. swap then inversion).
type Chain []Mutator

// Name implements Mutator.
func (c Chain) Name() string {
	s := "chain("
	for i, m := range c {
		if i > 0 {
			s += ","
		}
		s += m.Name()
	}
	return s + ")"
}

// Mutate implements Mutator.
func (c Chain) Mutate(g core.Genome, r *rng.Source) {
	for _, m := range c {
		m.Mutate(g, r)
	}
}

// WithProbability wraps a mutator so that it fires with probability P per
// call (individual-level mutation rate, as opposed to gene-level).
type WithProbability struct {
	P float64
	M Mutator
}

// Name implements Mutator.
func (w WithProbability) Name() string { return fmt.Sprintf("p=%.2g·%s", w.P, w.M.Name()) }

// Mutate implements Mutator.
func (w WithProbability) Mutate(g core.Genome, r *rng.Source) {
	if r.Chance(w.P) {
		w.M.Mutate(g, r)
	}
}
