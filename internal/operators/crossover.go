package operators

import (
	"fmt"
	"math"

	"pga/internal/core"
	"pga/internal/genome"
	"pga/internal/rng"
)

// Crossover recombines two parent genomes into two children. Parents are
// never modified; children are fresh genomes.
type Crossover interface {
	// Name identifies the crossover in tables and logs.
	Name() string
	// Cross returns two offspring of a and b. It panics if the genome type
	// is unsupported (a programming error, not a runtime condition).
	Cross(a, b core.Genome, r *rng.Source) (core.Genome, core.Genome)
}

// OnePoint is classic single-point crossover for bit strings, integer
// vectors and real vectors.
type OnePoint struct{}

// Name implements Crossover.
func (OnePoint) Name() string { return "1-point" }

// Cross implements Crossover.
func (OnePoint) Cross(a, b core.Genome, r *rng.Source) (core.Genome, core.Genome) {
	return KPoint{K: 1}.Cross(a, b, r)
}

// TwoPoint is two-point crossover.
type TwoPoint struct{}

// Name implements Crossover.
func (TwoPoint) Name() string { return "2-point" }

// Cross implements Crossover.
func (TwoPoint) Cross(a, b core.Genome, r *rng.Source) (core.Genome, core.Genome) {
	return KPoint{K: 2}.Cross(a, b, r)
}

// KPoint is k-point crossover: the genomes are cut at K distinct interior
// points and alternating segments are exchanged.
type KPoint struct {
	// K is the number of cut points; it is capped at Len-1.
	K int
}

// Name implements Crossover.
func (k KPoint) Name() string { return fmt.Sprintf("%d-point", k.K) }

// Cross implements Crossover.
func (k KPoint) Cross(a, b core.Genome, r *rng.Source) (core.Genome, core.Genome) {
	n := a.Len()
	if b.Len() != n {
		panic("operators: KPoint parents of different lengths")
	}
	ca, cb := a.Clone(), b.Clone()
	if n < 2 {
		return ca, cb
	}
	kk := k.K
	if kk < 1 {
		kk = 1
	}
	if kk > n-1 {
		kk = n - 1
	}
	// Choose kk distinct cut points in [1, n-1].
	cutIdx := r.Sample(n-1, kk)
	cuts := make([]bool, n)
	for _, c := range cutIdx {
		cuts[c+1] = true
	}
	swap := false
	for i := 0; i < n; i++ {
		if cuts[i] {
			swap = !swap
		}
		if swap {
			swapGene(ca, cb, i)
		}
	}
	return ca, cb
}

// Uniform is uniform crossover: each gene is exchanged independently with
// probability P.
type Uniform struct {
	// P is the per-gene exchange probability; the canonical default is 0.5.
	P float64
}

// Name implements Crossover.
func (u Uniform) Name() string { return fmt.Sprintf("uniform(%.2g)", u.p()) }

func (u Uniform) p() float64 {
	if u.P <= 0 || u.P > 1 {
		return 0.5
	}
	return u.P
}

// Cross implements Crossover.
func (u Uniform) Cross(a, b core.Genome, r *rng.Source) (core.Genome, core.Genome) {
	n := a.Len()
	if b.Len() != n {
		panic("operators: Uniform parents of different lengths")
	}
	ca, cb := a.Clone(), b.Clone()
	p := u.p()
	for i := 0; i < n; i++ {
		if r.Chance(p) {
			swapGene(ca, cb, i)
		}
	}
	return ca, cb
}

// swapGene exchanges gene i between two genomes of the same concrete type.
func swapGene(a, b core.Genome, i int) {
	switch ga := a.(type) {
	case *genome.BitString:
		gb := b.(*genome.BitString)
		bi, bj := ga.Get(i), gb.Get(i)
		ga.Set(i, bj)
		gb.Set(i, bi)
	case *genome.IntVector:
		gb := b.(*genome.IntVector)
		ga.Genes[i], gb.Genes[i] = gb.Genes[i], ga.Genes[i]
	case *genome.RealVector:
		gb := b.(*genome.RealVector)
		ga.Genes[i], gb.Genes[i] = gb.Genes[i], ga.Genes[i]
	default:
		panic(fmt.Sprintf("operators: gene-wise crossover unsupported for %T", a))
	}
}

// Arithmetic is whole-arithmetic crossover for real vectors:
// child1 = α·a + (1-α)·b with a fresh α per call.
type Arithmetic struct{}

// Name implements Crossover.
func (Arithmetic) Name() string { return "arithmetic" }

// Cross implements Crossover.
func (Arithmetic) Cross(a, b core.Genome, r *rng.Source) (core.Genome, core.Genome) {
	va, vb := mustReal(a), mustReal(b)
	alpha := r.Float64()
	ca := va.Clone().(*genome.RealVector)
	cb := vb.Clone().(*genome.RealVector)
	for i := range ca.Genes {
		x, y := va.Genes[i], vb.Genes[i]
		ca.Genes[i] = alpha*x + (1-alpha)*y
		cb.Genes[i] = (1-alpha)*x + alpha*y
	}
	return ca, cb
}

// BLX is blend crossover BLX-α for real vectors: each child gene is drawn
// uniformly from the parents' interval extended by α on both sides, then
// clamped to bounds.
type BLX struct {
	// Alpha is the interval extension factor; the canonical default is 0.5.
	Alpha float64
}

// Name implements Crossover.
func (c BLX) Name() string { return fmt.Sprintf("blx(%.2g)", c.alpha()) }

func (c BLX) alpha() float64 {
	if c.Alpha <= 0 {
		return 0.5
	}
	return c.Alpha
}

// Cross implements Crossover.
func (c BLX) Cross(a, b core.Genome, r *rng.Source) (core.Genome, core.Genome) {
	va, vb := mustReal(a), mustReal(b)
	alpha := c.alpha()
	ca := va.Clone().(*genome.RealVector)
	cb := vb.Clone().(*genome.RealVector)
	for i := range ca.Genes {
		lo, hi := va.Genes[i], vb.Genes[i]
		if lo > hi {
			lo, hi = hi, lo
		}
		d := hi - lo
		l, h := lo-alpha*d, hi+alpha*d
		ca.Genes[i] = r.Range(l, h)
		cb.Genes[i] = r.Range(l, h)
	}
	ca.Clamp()
	cb.Clamp()
	return ca, cb
}

// SBX is simulated binary crossover (Deb & Agrawal) for real vectors,
// the standard recombination of real-coded GAs.
type SBX struct {
	// Eta is the distribution index; larger values keep children closer to
	// parents. The canonical default is 15.
	Eta float64
}

// Name implements Crossover.
func (c SBX) Name() string { return fmt.Sprintf("sbx(%.3g)", c.eta()) }

func (c SBX) eta() float64 {
	if c.Eta <= 0 {
		return 15
	}
	return c.Eta
}

// Cross implements Crossover.
func (c SBX) Cross(a, b core.Genome, r *rng.Source) (core.Genome, core.Genome) {
	va, vb := mustReal(a), mustReal(b)
	eta := c.eta()
	ca := va.Clone().(*genome.RealVector)
	cb := vb.Clone().(*genome.RealVector)
	for i := range ca.Genes {
		u := r.Float64()
		var beta float64
		if u <= 0.5 {
			beta = math.Pow(2*u, 1/(eta+1))
		} else {
			beta = math.Pow(1/(2*(1-u)), 1/(eta+1))
		}
		x, y := va.Genes[i], vb.Genes[i]
		ca.Genes[i] = 0.5 * ((1+beta)*x + (1-beta)*y)
		cb.Genes[i] = 0.5 * ((1-beta)*x + (1+beta)*y)
	}
	ca.Clamp()
	cb.Clamp()
	return ca, cb
}

func mustReal(g core.Genome) *genome.RealVector {
	v, ok := g.(*genome.RealVector)
	if !ok {
		panic(fmt.Sprintf("operators: real-vector crossover applied to %T", g))
	}
	return v
}

func mustPerm(g core.Genome) *genome.Permutation {
	p, ok := g.(*genome.Permutation)
	if !ok {
		panic(fmt.Sprintf("operators: permutation crossover applied to %T", g))
	}
	return p
}

// OX is order crossover for permutations: a random slice of one parent is
// kept, the remaining positions are filled with the other parent's items in
// their relative order.
type OX struct{}

// Name implements Crossover.
func (OX) Name() string { return "ox" }

// Cross implements Crossover.
func (OX) Cross(a, b core.Genome, r *rng.Source) (core.Genome, core.Genome) {
	pa, pb := mustPerm(a), mustPerm(b)
	n := pa.Len()
	if n < 2 {
		return pa.Clone(), pb.Clone()
	}
	i := r.Intn(n)
	j := r.Intn(n)
	if i > j {
		i, j = j, i
	}
	return oxChild(pa, pb, i, j), oxChild(pb, pa, i, j)
}

// oxChild keeps keep[i..j] and fills the rest from other in order.
func oxChild(keep, other *genome.Permutation, i, j int) *genome.Permutation {
	n := keep.Len()
	child := &genome.Permutation{Perm: make([]int, n)}
	used := make([]bool, n)
	for k := i; k <= j; k++ {
		child.Perm[k] = keep.Perm[k]
		used[keep.Perm[k]] = true
	}
	pos := (j + 1) % n
	for k := 0; k < n; k++ {
		v := other.Perm[(j+1+k)%n]
		if used[v] {
			continue
		}
		child.Perm[pos] = v
		used[v] = true
		pos = (pos + 1) % n
	}
	return child
}

// PMX is partially mapped crossover for permutations.
type PMX struct{}

// Name implements Crossover.
func (PMX) Name() string { return "pmx" }

// Cross implements Crossover.
func (PMX) Cross(a, b core.Genome, r *rng.Source) (core.Genome, core.Genome) {
	pa, pb := mustPerm(a), mustPerm(b)
	n := pa.Len()
	if n < 2 {
		return pa.Clone(), pb.Clone()
	}
	i := r.Intn(n)
	j := r.Intn(n)
	if i > j {
		i, j = j, i
	}
	return pmxChild(pa, pb, i, j), pmxChild(pb, pa, i, j)
}

// pmxChild builds a child that takes segment [i,j] from donor and maps the
// rest from filler through the segment's mapping.
func pmxChild(donor, filler *genome.Permutation, i, j int) *genome.Permutation {
	n := donor.Len()
	child := &genome.Permutation{Perm: make([]int, n)}
	inSeg := make([]bool, n) // value → lies in donor segment
	posOf := make([]int, n)  // value → its position in donor segment mapping
	for k := range posOf {
		posOf[k] = -1
	}
	for k := i; k <= j; k++ {
		child.Perm[k] = donor.Perm[k]
		inSeg[donor.Perm[k]] = true
		posOf[donor.Perm[k]] = k
	}
	for k := 0; k < n; k++ {
		if k >= i && k <= j {
			continue
		}
		v := filler.Perm[k]
		// Follow the mapping chain until v is not in the donor segment.
		for inSeg[v] {
			v = filler.Perm[posOf[v]]
		}
		child.Perm[k] = v
	}
	return child
}

// ERX is edge recombination crossover for permutations: the child is
// built greedily from the union of both parents' adjacency (edge) lists,
// always moving to the current city's neighbour with the fewest remaining
// edges. It preserves parental adjacency better than OX/PMX, which is
// what matters for tour-length problems. This implementation produces one
// distinct child per parent ordering (the second child starts from the
// second parent's first city).
type ERX struct{}

// Name implements Crossover.
func (ERX) Name() string { return "erx" }

// Cross implements Crossover.
func (ERX) Cross(a, b core.Genome, r *rng.Source) (core.Genome, core.Genome) {
	pa, pb := mustPerm(a), mustPerm(b)
	n := pa.Len()
	if n < 2 {
		return pa.Clone(), pb.Clone()
	}
	edges := buildEdgeMap(pa.Perm, pb.Perm)
	c1 := erxChild(edges, pa.Perm[0], n, r)
	c2 := erxChild(edges, pb.Perm[0], n, r)
	return c1, c2
}

// buildEdgeMap returns each city's neighbour set over both parent tours
// (closed tours: first and last are adjacent).
func buildEdgeMap(pa, pb []int) [][]int {
	n := len(pa)
	sets := make([]map[int]bool, n)
	for i := range sets {
		sets[i] = make(map[int]bool, 4)
	}
	addTour := func(p []int) {
		for i, v := range p {
			prev := p[(i+n-1)%n]
			next := p[(i+1)%n]
			sets[v][prev] = true
			sets[v][next] = true
		}
	}
	addTour(pa)
	addTour(pb)
	out := make([][]int, n)
	for v, s := range sets {
		for u := range s {
			out[v] = append(out[v], u)
		}
		// Sort for determinism (map iteration order is random).
		for i := 1; i < len(out[v]); i++ {
			for j := i; j > 0 && out[v][j] < out[v][j-1]; j-- {
				out[v][j], out[v][j-1] = out[v][j-1], out[v][j]
			}
		}
	}
	return out
}

// erxChild builds one child tour starting from start.
func erxChild(edges [][]int, start, n int, r *rng.Source) *genome.Permutation {
	used := make([]bool, n)
	remaining := make([]int, n) // remaining edge count per city
	for v := range edges {
		remaining[v] = len(edges[v])
	}
	child := make([]int, 0, n)
	cur := start
	for {
		child = append(child, cur)
		used[cur] = true
		if len(child) == n {
			break
		}
		// Decrease the remaining-degree of cur's neighbours.
		for _, u := range edges[cur] {
			if !used[u] {
				remaining[u]--
			}
		}
		// Next: unused neighbour with the fewest remaining edges; ties
		// broken uniformly at random.
		var cand []int
		bestDeg := 1 << 30
		for _, u := range edges[cur] {
			if used[u] {
				continue
			}
			switch {
			case remaining[u] < bestDeg:
				bestDeg = remaining[u]
				cand = cand[:0]
				cand = append(cand, u)
			case remaining[u] == bestDeg:
				cand = append(cand, u)
			}
		}
		if len(cand) == 0 {
			// Dead end: restart from a uniformly random unused city.
			var unused []int
			for v := 0; v < n; v++ {
				if !used[v] {
					unused = append(unused, v)
				}
			}
			cur = unused[r.Intn(len(unused))]
			continue
		}
		cur = cand[r.Intn(len(cand))]
	}
	return &genome.Permutation{Perm: child}
}

// CX is cycle crossover for permutations: children are composed of
// alternating cycles of the two parents, so every gene comes from one
// parent at the same position.
type CX struct{}

// Name implements Crossover.
func (CX) Name() string { return "cx" }

// Cross implements Crossover.
func (CX) Cross(a, b core.Genome, r *rng.Source) (core.Genome, core.Genome) {
	pa, pb := mustPerm(a), mustPerm(b)
	n := pa.Len()
	ca := &genome.Permutation{Perm: make([]int, n)}
	cb := &genome.Permutation{Perm: make([]int, n)}
	posInA := make([]int, n) // value → position in pa
	for i, v := range pa.Perm {
		posInA[v] = i
	}
	assigned := make([]bool, n)
	fromA := true
	for start := 0; start < n; start++ {
		if assigned[start] {
			continue
		}
		// Trace the cycle containing position start.
		k := start
		for !assigned[k] {
			assigned[k] = true
			if fromA {
				ca.Perm[k], cb.Perm[k] = pa.Perm[k], pb.Perm[k]
			} else {
				ca.Perm[k], cb.Perm[k] = pb.Perm[k], pa.Perm[k]
			}
			k = posInA[pb.Perm[k]]
		}
		fromA = !fromA
	}
	return ca, cb
}
