package operators

import (
	"pga/internal/core"
	"pga/internal/genome"
	"pga/internal/rng"
)

// TakeoverTime measures the selection intensity of a panmictic selector
// the standard way (Goldberg & Deb; the panmictic counterpart of the
// cellular takeover experiment in internal/cellular): a population of
// popSize individuals starts with exactly one copy of the best fitness
// (1.0, all others 0.5 — a bounded ratio, so proportionate selection is
// measured in its intended regime rather than its divide-by-zero
// pathology); each generation a new population is formed by selection
// alone — no variation — until the best fitness occupies the whole
// population. As in the deterministic growth models of the literature,
// the best is guarded against drift extinction (one copy is re-seeded if
// selection loses it), so the measurement reflects pressure, not drift
// luck. Returns the mean generations over the given runs, or maxGens when
// takeover never completes (e.g. for the Random selector).
func TakeoverTime(sel Selector, popSize, runs, maxGens int, seed uint64) float64 {
	total := 0.0
	for run := 0; run < runs; run++ {
		r := rng.New(seed + uint64(run)*7919)
		pop := takeoverPopulation(popSize)
		gens := 0
		for ; gens < maxGens; gens++ {
			if countBest(pop) == popSize {
				break
			}
			pop = takeoverStep(sel, pop, r)
		}
		total += float64(gens)
	}
	return total / float64(runs)
}

// takeoverStep forms the next selection-only generation with the
// extinction guard applied.
func takeoverStep(sel Selector, pop *core.Population, r *rng.Source) *core.Population {
	n := pop.Len()
	next := core.NewPopulation(n)
	for i := 0; i < n; i++ {
		pick := sel.Select(pop, core.Maximize, r)
		next.Members = append(next.Members, pop.Members[pick].Clone())
	}
	if countBest(next) == 0 {
		next.Members[0] = &core.Individual{Genome: genome.NewBitString(1), Fitness: 1, Evaluated: true}
	}
	return next
}

// TakeoverCurve returns the best-fitness proportion after each generation
// of a single selection-only run (index 0 = initial state).
func TakeoverCurve(sel Selector, popSize, maxGens int, seed uint64) []float64 {
	r := rng.New(seed)
	pop := takeoverPopulation(popSize)
	curve := []float64{float64(countBest(pop)) / float64(popSize)}
	for g := 0; g < maxGens && countBest(pop) < popSize; g++ {
		pop = takeoverStep(sel, pop, r)
		curve = append(curve, float64(countBest(pop))/float64(popSize))
	}
	return curve
}

// takeoverPopulation builds the canonical initial state: one individual
// of fitness 1, the rest fitness 0.5 (genomes are irrelevant
// placeholders).
func takeoverPopulation(popSize int) *core.Population {
	pop := core.NewPopulation(popSize)
	for i := 0; i < popSize; i++ {
		ind := core.NewIndividual(genome.NewBitString(1))
		ind.Evaluated = true
		ind.Fitness = 0.5
		if i == 0 {
			ind.Fitness = 1
		}
		pop.Members = append(pop.Members, ind)
	}
	return pop
}

// countBest counts individuals carrying the best fitness.
func countBest(pop *core.Population) int {
	n := 0
	for _, ind := range pop.Members {
		if ind.Fitness == 1 {
			n++
		}
	}
	return n
}
