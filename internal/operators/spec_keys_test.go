package operators

import (
	"reflect"
	"testing"
)

// TestSpecVocabularyComplete pins the two-way completeness invariant
// between the operator registry (RegisteredOperators, the trace-coverage
// ground truth) and the spec vocabulary (SpecEntries, what config files
// can name): every registered operator type has exactly one key, and
// every key builds a registered operator type. A new operator cannot be
// merged constructible-but-unspeccable.
func TestSpecVocabularyComplete(t *testing.T) {
	registered := map[string]bool{}
	for _, op := range RegisteredOperators() {
		registered[OperatorTypeName(op)] = true
	}

	built := map[string]string{} // type name -> spec key
	for _, e := range SpecEntries() {
		op := e.Build(map[string]float64{})
		if op == nil {
			t.Fatalf("%s: Build returned nil", e.Key)
		}
		name := OperatorTypeName(op)
		if !registered[name] {
			t.Errorf("%s builds %s, which is not in RegisteredOperators", e.Key, name)
		}
		if prev, dup := built[name]; dup {
			t.Errorf("operator %s reachable from two keys: %s and %s", name, prev, e.Key)
		}
		built[name] = e.Key
	}
	for name := range registered {
		if _, ok := built[name]; !ok {
			t.Errorf("registered operator %s has no spec key (constructible but unspeccable)", name)
		}
	}
}

// TestSpecBuildAppliesParams checks parameters reach the struct fields
// and that an empty map yields the canonical zero value.
func TestSpecBuildAppliesParams(t *testing.T) {
	cases := []struct {
		key    string
		params map[string]float64
		want   any
	}{
		{"tournament", map[string]float64{"k": 3}, Tournament{K: 3}},
		{"tournament", nil, Tournament{}},
		{"rank", map[string]float64{"sp": 1.8}, LinearRank{SP: 1.8}},
		{"truncation", map[string]float64{"frac": 0.25}, Truncation{Frac: 0.25}},
		{"kpoint", map[string]float64{"k": 4}, KPoint{K: 4}},
		{"kpointword", map[string]float64{"k": 2}, KPointWord{K: 2}},
		{"uniform", map[string]float64{"p": 0.3}, Uniform{P: 0.3}},
		{"blx", map[string]float64{"alpha": 0.7}, BLX{Alpha: 0.7}},
		{"sbx", map[string]float64{"eta": 10}, SBX{Eta: 10}},
		{"bitflip", map[string]float64{"p": 0.01}, BitFlip{P: 0.01}},
		{"gaussian", map[string]float64{"p": 0.1, "sigma": 0.2}, Gaussian{P: 0.1, Sigma: 0.2}},
		{"polynomial", map[string]float64{"eta": 25}, Polynomial{Eta: 25}},
		{"reset", map[string]float64{"p": 0.05}, UniformReset{P: 0.05}},
		{"blockflip", map[string]float64{"k": 5}, BlockFlip{K: 5}},
	}
	for _, c := range cases {
		e, ok := LookupSpec(c.key)
		if !ok {
			t.Fatalf("key %s missing", c.key)
		}
		p := c.params
		if p == nil {
			p = map[string]float64{}
		}
		got := e.Build(p)
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("%s with %v = %#v, want %#v", c.key, c.params, got, c.want)
		}
	}
}

// TestSpecKeysAndAccepts covers the query helpers.
func TestSpecKeysAndAccepts(t *testing.T) {
	if _, ok := LookupSpec("nope"); ok {
		t.Fatal("LookupSpec accepted an unknown key")
	}
	sel := SpecKeys(KindSelector)
	if len(sel) != 6 {
		t.Fatalf("got %d selector keys: %v", len(sel), sel)
	}
	all := SpecKeys("")
	if len(all) != len(SpecEntries()) {
		t.Fatalf("SpecKeys(\"\") returned %d keys, registry has %d", len(all), len(SpecEntries()))
	}
	e, _ := LookupSpec("tournament")
	if !e.Accepts("k") || e.Accepts("p") {
		t.Fatal("Accepts wrong for tournament")
	}
}
