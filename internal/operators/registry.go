package operators

import (
	"fmt"
	"strings"
)

// RegisteredOperators returns one canonical zero value of every concrete
// library operator. `pgalint -tracecover` derives type names from these
// to audit which operators the golden traces in internal/equiv exercise;
// experiments and examples may also range over it. The combinators
// (Chain, WithProbability) are excluded: their draw behaviour is their
// wrapped mutators' plus their own gate, so no trace pins them directly.
func RegisteredOperators() []any {
	return []any{
		// Selection.
		Tournament{}, Roulette{}, LinearRank{}, Truncation{}, Random{}, Best{},
		// Crossover (bit/real/permutation, then word-granular).
		OnePoint{}, TwoPoint{}, KPoint{}, Uniform{}, Arithmetic{}, BLX{},
		SBX{}, OX{}, PMX{}, CX{}, ERX{}, UniformWord{}, KPointWord{},
		// Mutation.
		BitFlip{}, Gaussian{}, Polynomial{}, UniformReset{}, Swap{},
		Inversion{}, Scramble{}, Insertion{}, BlockFlip{},
	}
}

// OperatorTypeName renders an operator's bare type name ("KPoint" for
// operators.KPoint or *operators.KPoint) — the identity golden scenarios
// and the tracecover audit agree on.
func OperatorTypeName(op any) string {
	name := strings.TrimPrefix(fmt.Sprintf("%T", op), "*")
	if i := strings.LastIndexByte(name, '.'); i >= 0 {
		name = name[i+1:]
	}
	return name
}
