package transport

import (
	"net"
	"runtime"
	"sync"
	"testing"
	"time"
)

// newTCPPair builds two connected TCP endpoints on ephemeral loopback
// ports and registers cleanup.
func newTCPPair(t *testing.T, cfg func(*TCPConfig)) (*TCP, *TCP) {
	t.Helper()
	// Bind a first to fix its address, then b pointing at a, then
	// rebuild a on its own (now known) address pointing at b.
	a := newTCPAt(t, 0, nil, cfg)
	addrA := a.Addr().String()
	b := newTCPAt(t, 1, map[int]string{0: addrA}, cfg)
	a.Close()
	var a2 *TCP
	waitUntil(t, 5*time.Second, func() bool {
		c := TCPConfig{Self: 0, Listen: addrA, Peers: map[int]string{1: b.Addr().String()}, Seed: 1}
		if cfg != nil {
			cfg(&c)
		}
		ep, err := NewTCP(c)
		if err != nil {
			return false
		}
		a2 = ep
		return true
	}, "rebinding endpoint 0")
	t.Cleanup(func() { a2.Close() })
	return a2, b
}

// newTCPAt builds one endpoint on an ephemeral port.
func newTCPAt(t *testing.T, self int, peers map[int]string, cfg func(*TCPConfig)) *TCP {
	t.Helper()
	c := TCPConfig{
		Self:   self,
		Listen: "127.0.0.1:0",
		Peers:  peers,
		Seed:   uint64(self) + 1,
	}
	if cfg != nil {
		cfg(&c)
	}
	ep, err := NewTCP(c)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ep.Close() })
	return ep
}

// waitUntil polls cond until it holds or the deadline expires.
func waitUntil(t *testing.T, within time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(within)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("timed out waiting for " + msg)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// waitForGoroutines polls until the goroutine count returns to the
// baseline (sender goroutines may be finishing a backoff sleep).
func waitForGoroutines(t *testing.T, baseline int, within time.Duration) {
	t.Helper()
	deadline := time.Now().Add(within)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= baseline {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("goroutine leak: %d > baseline %d\n%s", n, baseline, buf)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestTCPDeliversBatches(t *testing.T) {
	a, b := newTCPPair(t, nil)
	if !a.Send(1, testBatch(2, 8)) {
		t.Fatal("send refused")
	}
	waitUntil(t, 3*time.Second, func() bool {
		_, ok := b.Recv()
		return ok
	}, "batch delivery over TCP")
	if s := b.Stats(); s.Received != 1 || s.Delivered != 1 {
		t.Fatalf("receiver stats = %+v", s)
	}
}

// TestTCPNoGoroutineLeak: a full exchange, then Close, must return the
// process to its goroutine baseline — accept loop, per-peer senders
// and per-connection readers all join.
func TestTCPNoGoroutineLeak(t *testing.T) {
	baseline := runtime.NumGoroutine()
	a, b := newTCPPair(t, nil)
	a.Send(1, testBatch(1, 8))
	b.Send(0, testBatch(1, 8))
	waitUntil(t, 3*time.Second, func() bool {
		sa, sb := a.Stats(), b.Stats()
		return sa.Delivered == 1 && sb.Delivered == 1
	}, "cross delivery")
	a.Close()
	b.Close()
	waitForGoroutines(t, baseline, 3*time.Second)
}

// TestTCPConnectStormShutdown: an endpoint whose peers are all
// unreachable piles every sender into dial-retry backoff; Close must
// interrupt all of them promptly and leak nothing.
func TestTCPConnectStormShutdown(t *testing.T) {
	baseline := runtime.NumGoroutine()
	peers := make(map[int]string, 16)
	for i := 1; i <= 16; i++ {
		// Reserve a real ephemeral port, then close it: connection refused.
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addr := ln.Addr().String()
		ln.Close()
		peers[i] = addr
	}
	ep := newTCPAt(t, 0, peers, func(c *TCPConfig) {
		c.DialTimeout = 50 * time.Millisecond
		c.BackoffMax = 50 * time.Millisecond
		c.DownAfter = 2
	})
	for i := 1; i <= 16; i++ {
		ep.Send(i, testBatch(1, 8))
	}
	// Let the dial storm develop, then slam the door.
	waitUntil(t, 5*time.Second, func() bool { return ep.Stats().PeerDowns >= 4 }, "peers reported down")
	ep.Close()
	waitForGoroutines(t, baseline, 3*time.Second)
	s := ep.Stats()
	// Every batch died with the endpoint and is accounted for.
	if s.Dropped != s.Sent {
		t.Fatalf("stats = %+v: %d batches unaccounted", s, s.Sent-s.Dropped)
	}
}

// TestTCPPeerDeathMidFrame: a connection that dies after a partial
// frame poisons only itself — the receiver drops the stream and decodes
// the next connection's frames cleanly.
func TestTCPPeerDeathMidFrame(t *testing.T) {
	ep := newTCPAt(t, 0, nil, nil)

	// A rogue "peer" writes half a frame and vanishes.
	good, err := encodeBatch(1, 1, testBatch(1, 8))
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", ep.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(good[:len(good)/2]); err != nil {
		t.Fatal(err)
	}
	conn.Close()

	// A healthy peer connects next and must get through.
	conn2, err := net.Dial("tcp", ep.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	if _, err := conn2.Write(good); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, 3*time.Second, func() bool {
		_, ok := ep.Recv()
		return ok
	}, "delivery after poisoned stream")
}

// TestTCPDoubleClose: Close is idempotent, including concurrently, and
// Send/Recv on a closed endpoint refuse politely.
func TestTCPDoubleClose(t *testing.T) {
	a, _ := newTCPPair(t, nil)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := a.Close(); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if a.Send(1, testBatch(1, 8)) {
		t.Fatal("send on closed endpoint accepted")
	}
	if _, ok := a.Recv(); ok {
		t.Fatal("recv on closed endpoint returned a batch")
	}
}

// TestTCPReconnectAndLiveness: killing a peer marks it down (after
// DownAfter failed dials) and dead-letters traffic to it; restarting it
// on the same address reconnects, marks it back up and delivers again.
func TestTCPReconnectAndLiveness(t *testing.T) {
	fast := func(c *TCPConfig) {
		c.DialTimeout = 100 * time.Millisecond
		c.BackoffMin = 5 * time.Millisecond
		c.BackoffMax = 25 * time.Millisecond
		c.DownAfter = 2
	}
	b := newTCPAt(t, 1, nil, fast)
	addrB := b.Addr().String()
	a := newTCPAt(t, 0, map[int]string{1: addrB}, fast)

	var mu sync.Mutex
	var transitions []bool
	a.SetPeerStateHook(func(peer int, up bool) {
		mu.Lock()
		transitions = append(transitions, up)
		mu.Unlock()
	})

	a.Send(1, testBatch(1, 8))
	waitUntil(t, 3*time.Second, func() bool { return b.Stats().Delivered == 1 }, "first delivery")

	// Kill the peer. Writes now fail; dials fail; the peer goes down.
	b.Close()
	waitUntil(t, 5*time.Second, func() bool {
		a.Send(1, testBatch(1, 8))
		return a.Stats().PeerDowns >= 1
	}, "peer reported down")

	// Resurrect it on the same address (retry briefly: the OS may lag
	// releasing the port even with the listener closed).
	var b2 *TCP
	waitUntil(t, 5*time.Second, func() bool {
		ep, err := NewTCP(TCPConfig{Self: 1, Listen: addrB, Seed: 2})
		if err != nil {
			return false
		}
		b2 = ep
		return true
	}, "rebinding the peer address")
	defer b2.Close()

	waitUntil(t, 5*time.Second, func() bool {
		a.Send(1, testBatch(1, 8))
		return b2.Stats().Delivered >= 1
	}, "delivery after reconnect")
	if s := a.Stats(); s.Reconnects < 1 {
		t.Fatalf("stats = %+v: reconnect not counted", s)
	}
	mu.Lock()
	defer mu.Unlock()
	sawDown, sawUp := false, false
	for _, up := range transitions {
		if up && sawDown {
			sawUp = true
		}
		if !up {
			sawDown = true
		}
	}
	if !sawDown || !sawUp {
		t.Fatalf("liveness transitions = %v: want down then up", transitions)
	}
}
