// Wire format: length-prefixed gob frames.
//
// Every message on a TCP migration link is one frame:
//
//	+----------------+----------------------------------------+
//	| length (4B BE) | gob(frame{Version, From, Seq, Payload}) |
//	+----------------+----------------------------------------+
//
// The length prefix is a big-endian uint32 counting the gob bytes that
// follow; frames above maxFrameBytes are rejected before allocation (a
// corrupt prefix must not become a multi-gigabyte make). Each frame is
// encoded with a fresh gob encoder, so frames are self-contained: a
// receiver that joins mid-stream after a reconnect decodes the next
// frame without any prior stream state, and a truncated frame (peer
// died mid-write) poisons only its own connection.
//
// The payload is the persist package's population JSON — the exact
// codec checkpoints use — so every genome representation the library
// supports crosses the wire unchanged, and a corrupt payload is
// detected by the same validation (e.g. permutation integrity) that
// guards checkpoint restores.

package transport

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"

	"pga/internal/core"
	"pga/internal/persist"
)

const (
	// wireVersion is bumped on incompatible frame changes; receivers
	// reject frames from other versions.
	wireVersion = 1
	// maxFrameBytes bounds accepted frame sizes (16 MiB): larger
	// prefixes are treated as stream corruption.
	maxFrameBytes = 16 << 20
)

// frame is the unit of the wire protocol.
type frame struct {
	// Version is wireVersion.
	Version uint8
	// From is the sending island's id.
	From int32
	// Seq is the sender's frame sequence number (monotonic per
	// endpoint; used for logging and fault-schedule attribution).
	Seq uint64
	// Payload is a persist population document holding the batch.
	Payload []byte
}

// encodeBatch serialises a migrant batch into a framed []byte ready to
// be written to a connection.
func encodeBatch(from int, seq uint64, migrants []*core.Individual) ([]byte, error) {
	payload, err := persist.MarshalPopulation(&core.Population{Members: migrants})
	if err != nil {
		return nil, fmt.Errorf("transport: encode batch: %w", err)
	}
	var buf bytes.Buffer
	buf.Write(make([]byte, 4)) // length placeholder
	if err := gob.NewEncoder(&buf).Encode(frame{
		Version: wireVersion,
		From:    int32(from),
		Seq:     seq,
		Payload: payload,
	}); err != nil {
		return nil, fmt.Errorf("transport: encode frame: %w", err)
	}
	b := buf.Bytes()
	n := len(b) - 4
	if n > maxFrameBytes {
		return nil, fmt.Errorf("transport: frame of %d bytes exceeds the %d-byte limit", n, maxFrameBytes)
	}
	binary.BigEndian.PutUint32(b[:4], uint32(n))
	return b, nil
}

// readFrame reads and decodes one frame from r, returning the sender
// id and the migrant batch. Any framing, version, gob or payload error
// is returned to the caller, which must treat the stream as poisoned
// (close the connection and wait for a reconnect).
func readFrame(r io.Reader) (from int, migrants []*core.Individual, err error) {
	var prefix [4]byte
	if _, err := io.ReadFull(r, prefix[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(prefix[:])
	if n == 0 || n > maxFrameBytes {
		return 0, nil, fmt.Errorf("transport: bad frame length %d", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return 0, nil, fmt.Errorf("transport: truncated frame: %w", err)
	}
	var f frame
	if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&f); err != nil {
		return 0, nil, fmt.Errorf("transport: decode frame: %w", err)
	}
	if f.Version != wireVersion {
		return 0, nil, fmt.Errorf("transport: wire version %d, want %d", f.Version, wireVersion)
	}
	pop, err := persist.UnmarshalPopulation(f.Payload)
	if err != nil {
		return 0, nil, fmt.Errorf("transport: decode payload: %w", err)
	}
	return int(f.From), pop.Members, nil
}
