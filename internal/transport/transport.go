// Package transport is the wire layer of the island model: it carries
// migrant batches between islands that may live in the same process
// (Loopback), in separate OS processes connected by TCP sockets (TCP),
// or behind a deterministic fault injector (Faulty).
//
// The survey's distributed-PGA perspective (§4) and the frameworks it
// reviews (DREAM, ParadisEO, the Hadoop-GA line) all run islands over a
// real network where messages are lost, delayed, duplicated and peers
// die. This package is designed around that: failure is the normal
// case, and every primitive is best-effort —
//
//   - Send never blocks. A batch that cannot be delivered right now is
//     queued in a bounded per-peer queue; when the queue is full the
//     OLDEST batch is dropped (migration carries the current population's
//     genes — a stale batch is the least valuable one).
//   - Evolution never waits on the network. A peer that is down costs
//     dropped batches, not progress: the island keeps evolving solo and
//     rejoins when the link heals.
//   - Every loss is counted. Stats (core.NetStats) accounts for each
//     batch that was dropped, by whom and never silently.
//
// The deterministic half of the repository's contract extends here
// through Faulty: injected drops, delays, duplicates, reorders,
// partitions and peer crashes are driven by a seeded rng.Source and a
// logical clock, so the same seed replays the same fault schedule
// byte-for-byte (see FaultSpec and the schedule property test).
package transport

import (
	"sync/atomic"

	"pga/internal/core"
)

// Endpoint is one island's attachment to the migration medium. An
// Endpoint is used by a single island goroutine (Send/Recv are not safe
// for concurrent use with each other); Stats and Close may be called
// from other goroutines after the island's loop has finished.
type Endpoint interface {
	// Self returns this endpoint's island id.
	Self() int
	// Send offers one migrant batch to island dest. It is best-effort
	// and non-blocking: ownership of migrants passes to the endpoint,
	// and a false return means the batch was refused locally (unknown
	// or dead peer, full loopback inbox, closed endpoint) — the batch
	// is already accounted as dropped. A true return means the batch
	// entered the delivery path; it may still be lost later (and then
	// counted in Stats().Dropped).
	Send(dest int, migrants []*core.Individual) bool
	// Recv dequeues one pending inbound batch without blocking; ok is
	// false when nothing is pending.
	Recv() (migrants []*core.Individual, ok bool)
	// Stats returns a snapshot of the endpoint's delivery accounting.
	Stats() core.NetStats
	// Close releases the endpoint's resources (sockets, goroutines).
	// It is idempotent; Send/Recv on a closed endpoint refuse politely.
	Close() error
}

// LivenessReporter is implemented by transports that track peer link
// health (TCP). The hook fires from transport goroutines when a peer
// transitions down (after repeated connection failures) or back up
// (successful reconnect); implementations of the hook must be
// concurrency-safe and fast. Faulty forwards to its inner endpoint.
type LivenessReporter interface {
	SetPeerStateHook(func(peer int, up bool))
}

// netCounters is the shared atomic implementation of endpoint stats.
type netCounters struct {
	sent, delivered, received, dropped, reconnects, peerDowns atomic.Int64
}

// snapshot returns the counters as a core.NetStats value.
func (c *netCounters) snapshot() core.NetStats {
	return core.NetStats{
		Sent:       c.sent.Load(),
		Delivered:  c.delivered.Load(),
		Received:   c.received.Load(),
		Dropped:    c.dropped.Load(),
		Reconnects: c.reconnects.Load(),
		PeerDowns:  c.peerDowns.Load(),
	}
}

// Loopback is the in-process implementation: the endpoints of one
// NewLoopback call share bounded channels, reproducing the island
// model's historical inbox semantics (bounded non-blocking buffers; a
// full inbox refuses the batch). It is the default medium of
// island.RunParallel's asynchronous modes.
type Loopback struct {
	self    int
	inboxes []chan []*core.Individual
	closed  atomic.Bool
	netCounters
}

var _ Endpoint = (*Loopback)(nil)

// NewLoopback builds n connected in-process endpoints whose inboxes
// hold buffer batches each (buffer < 1 is raised to 1).
func NewLoopback(n, buffer int) []*Loopback {
	if buffer < 1 {
		buffer = 1
	}
	inboxes := make([]chan []*core.Individual, n)
	for i := range inboxes {
		inboxes[i] = make(chan []*core.Individual, buffer)
	}
	eps := make([]*Loopback, n)
	for i := range eps {
		eps[i] = &Loopback{self: i, inboxes: inboxes}
	}
	return eps
}

// Self implements Endpoint.
func (l *Loopback) Self() int { return l.self }

// Send implements Endpoint: a non-blocking offer into the destination
// inbox. A full inbox refuses the batch (the caller may retry on a
// later epoch — the supervised runtime's retry/dead-letter loop — or
// drop it, the unsupervised bounded-staleness model).
func (l *Loopback) Send(dest int, migrants []*core.Individual) bool {
	l.sent.Add(1)
	if l.closed.Load() || dest < 0 || dest >= len(l.inboxes) || dest == l.self {
		l.dropped.Add(1)
		return false
	}
	select {
	case l.inboxes[dest] <- migrants:
		l.delivered.Add(1)
		return true
	default:
		l.dropped.Add(1)
		return false
	}
}

// Recv implements Endpoint.
func (l *Loopback) Recv() ([]*core.Individual, bool) {
	select {
	case batch := <-l.inboxes[l.self]:
		l.received.Add(1)
		return batch, true
	default:
		return nil, false
	}
}

// Stats implements Endpoint.
func (l *Loopback) Stats() core.NetStats { return l.snapshot() }

// Close implements Endpoint. The shared channels are left open (peer
// endpoints may still be draining); a closed endpoint refuses sends.
func (l *Loopback) Close() error {
	l.closed.Store(true)
	return nil
}
