// Faulty: a deterministic fault-injecting Endpoint wrapper.
//
// Faulty sits between an island and any inner Endpoint (Loopback for
// tests, TCP for multi-process runs) and misbehaves on a schedule that
// is a pure function of (seed, operation sequence): drop, delay,
// duplicate, reorder, partition and peer crash. Time is logical — one
// tick per Send — and every random decision is drawn from a seeded
// rng.Source in a fixed order, so the same seed against the same call
// sequence reproduces the same fault schedule byte-for-byte (the
// property the schedule test asserts). That extends the repository's
// determinism contract to injected *network* faults, the same way
// supervise.FaultPlan extends it to deme crashes and hangs.
//
// The stochastic half of the model (loss + jitter) is LinkFaults — the
// same model the virtual cluster's simulated links draw from
// (cluster.Send), so the simulated and real paths share one fault
// model and one draw discipline.

package transport

import (
	"fmt"
	"strings"

	"pga/internal/core"
	"pga/internal/rng"
)

// LinkFaults is the shared stochastic fault model of a lossy link: the
// loss/jitter half of cluster.LinkSpec, extracted so the simulated
// cluster and the real transport draw faults from one model.
type LinkFaults struct {
	// LossProb is the probability a message is silently dropped.
	LossProb float64
	// Jitter is the maximum extra uniform random delay per message. For
	// the virtual cluster it is seconds; Faulty maps it onto logical
	// delay ticks (see FaultSpec.MaxDelay).
	Jitter float64
}

// Roll draws this link's fate for one message from r: whether it is
// dropped and, for survivors, the extra jitter delay in [0, Jitter).
// The draw order — loss first, jitter only for survivors, no draw at
// all when the knob is zero — is part of the determinism contract:
// cluster.Send has always drawn in exactly this order, and Faulty
// draws through the same method, so seeded fault streams are
// bit-identical across the simulated and real paths.
func (l LinkFaults) Roll(r *rng.Source) (drop bool, jitter float64) {
	if l.LossProb > 0 && r.Chance(l.LossProb) {
		return true, 0
	}
	if l.Jitter > 0 {
		jitter = r.Float64() * l.Jitter
	}
	return false, jitter
}

// Partition cuts the listed peers off from everyone else during the
// logical-tick window [From, Until): a batch whose sender and receiver
// sit on opposite sides of the cut is dropped. Until 0 means forever.
type Partition struct {
	From, Until uint64
	Peers       []int
}

// active reports whether the partition severs the (a, b) link at tick.
func (p Partition) active(tick uint64, a, b int) bool {
	if tick < p.From || (p.Until != 0 && tick >= p.Until) {
		return false
	}
	return p.contains(a) != p.contains(b)
}

func (p Partition) contains(id int) bool {
	for _, q := range p.Peers {
		if q == id {
			return true
		}
	}
	return false
}

// Crash marks a peer dead during [At, Until): batches to it — or, when
// the wrapped endpoint itself is named, from it — are dropped. Until 0
// means the peer never comes back.
type Crash struct {
	Peer      int
	At, Until uint64
}

// active reports whether the crash holds at tick.
func (c Crash) active(tick uint64) bool {
	return tick >= c.At && (c.Until == 0 || tick < c.Until)
}

// FaultSpec scripts a Faulty wrapper. The zero value injects nothing.
type FaultSpec struct {
	// Link is the stochastic loss/jitter model, shared with the
	// simulated cluster links.
	Link LinkFaults
	// MaxDelay is the maximum hold, in logical ticks, for a
	// jitter-delayed batch; default 3 when Link.Jitter > 0. The
	// continuous jitter draw maps uniformly onto [1, MaxDelay] ticks.
	MaxDelay int
	// DupProb is the probability a surviving batch is delivered twice.
	DupProb float64
	// ReorderProb is the probability an undelayed surviving batch is
	// held one tick — overtaken by the next send.
	ReorderProb float64
	// Partitions are scripted network cuts.
	Partitions []Partition
	// Crashes are scripted peer deaths.
	Crashes []Crash
}

// withDefaults returns a copy of s with defaults applied.
func (s FaultSpec) withDefaults() FaultSpec {
	if s.MaxDelay <= 0 {
		s.MaxDelay = 3
	}
	return s
}

// FaultsFromLink folds a simulated link's loss/jitter preset (e.g. the
// cluster package's Internet preset) into a FaultSpec, so a scenario
// tuned against the virtual cluster runs with the same fault model on
// the real wire.
func FaultsFromLink(l LinkFaults) FaultSpec { return FaultSpec{Link: l} }

// heldBatch is a delayed batch awaiting release. Insertion order is
// positional in Faulty.held, which breaks due ties deterministically.
type heldBatch struct {
	due      uint64
	dest     int
	migrants []*core.Individual
	dup      bool
}

// Faulty wraps an inner Endpoint with deterministic fault injection.
// Like every Endpoint it is owned by a single island goroutine;
// Schedule and Stats are for after the run.
type Faulty struct {
	inner Endpoint
	spec  FaultSpec
	r     *rng.Source

	tick uint64
	seq  uint64
	// held is a fixed-capacity queue allocated once at construction: each
	// logical tick holds at most one new batch and releaseDue drains
	// everything due at the top of every Send, so at most MaxDelay batches
	// survive a release plus the one this tick may add. heldLen is the
	// live prefix; slots beyond it are zeroed so migrant batches are not
	// retained past release.
	held    []heldBatch
	heldLen int
	events  strings.Builder

	sent, dropped int64
}

var (
	_ Endpoint         = (*Faulty)(nil)
	_ LivenessReporter = (*Faulty)(nil)
)

// NewFaulty wraps inner with spec, drawing every stochastic decision
// from a stream seeded with seed.
func NewFaulty(inner Endpoint, spec FaultSpec, seed uint64) *Faulty {
	spec = spec.withDefaults()
	return &Faulty{
		inner: inner, spec: spec, r: rng.New(seed),
		held: make([]heldBatch, spec.MaxDelay+1),
	}
}

// Self implements Endpoint.
func (f *Faulty) Self() int { return f.inner.Self() }

// SetPeerStateHook implements LivenessReporter by forwarding to the
// inner endpoint when it reports liveness; otherwise it is a no-op.
func (f *Faulty) SetPeerStateHook(h func(peer int, up bool)) {
	if lr, ok := f.inner.(LivenessReporter); ok {
		lr.SetPeerStateHook(h)
	}
}

// event appends one line to the fault schedule. The format is stable:
// it is the byte-identical artifact the determinism test compares.
func (f *Faulty) event(format string, args ...any) {
	fmt.Fprintf(&f.events, format, args...)
	f.events.WriteByte('\n')
}

// crashed reports whether id is scripted dead at the current tick.
func (f *Faulty) crashed(id int) bool {
	for _, c := range f.spec.Crashes {
		if c.Peer == id && c.active(f.tick) {
			return true
		}
	}
	return false
}

// partitioned reports whether the self↔dest link is scripted cut.
func (f *Faulty) partitioned(dest int) bool {
	for _, p := range f.spec.Partitions {
		if p.active(f.tick, f.inner.Self(), dest) {
			return true
		}
	}
	return false
}

// Send implements Endpoint: advance the logical clock, release any due
// held batches, then roll this batch's fate in fixed draw order
// (loss+jitter first, then duplicate, then reorder).
func (f *Faulty) Send(dest int, migrants []*core.Individual) bool {
	f.tick++
	f.seq++
	f.releaseDue()
	f.sent++
	switch {
	case f.crashed(f.inner.Self()), f.crashed(dest):
		f.dropped++
		f.event("%06d crash-drop dst=%d seq=%d", f.tick, dest, f.seq)
		return false
	case f.partitioned(dest):
		f.dropped++
		f.event("%06d partition-drop dst=%d seq=%d", f.tick, dest, f.seq)
		return false
	}
	drop, jit := f.spec.Link.Roll(f.r)
	if drop {
		f.dropped++
		f.event("%06d drop dst=%d seq=%d", f.tick, dest, f.seq)
		return false
	}
	dup := f.spec.DupProb > 0 && f.r.Chance(f.spec.DupProb)
	delay := 0
	if jit > 0 {
		// Map the continuous jitter draw uniformly onto [1, MaxDelay].
		delay = 1 + int(jit/f.spec.Link.Jitter*float64(f.spec.MaxDelay))
		if delay > f.spec.MaxDelay {
			delay = f.spec.MaxDelay
		}
	} else if f.spec.ReorderProb > 0 && f.r.Chance(f.spec.ReorderProb) {
		delay = 1
		f.event("%06d reorder dst=%d seq=%d", f.tick, dest, f.seq)
	}
	if delay > 0 {
		if jit > 0 {
			f.event("%06d delay=%d dst=%d seq=%d dup=%v", f.tick, delay, dest, f.seq, dup)
		}
		// Indexed write into the fixed queue: releaseDue just drained
		// everything due, so at most MaxDelay earlier batches remain and
		// this slot always exists (an overflow would be an invariant
		// breach worth the panic).
		f.held[f.heldLen] = heldBatch{
			due:  f.tick + uint64(delay),
			dest: dest, migrants: migrants, dup: dup,
		}
		f.heldLen++
		return true
	}
	f.event("%06d deliver dst=%d seq=%d dup=%v", f.tick, dest, f.seq, dup)
	ok := f.forward(dest, migrants, dup)
	return ok
}

// forward hands a batch (and its duplicate, if rolled) to the inner
// endpoint, counting inner refusals as drops of the injected copy only.
func (f *Faulty) forward(dest int, migrants []*core.Individual, dup bool) bool {
	ok := f.inner.Send(dest, migrants)
	if dup {
		// The duplicate must carry its own clones: the originals' owner
		// is now the receiving population.
		copies := make([]*core.Individual, len(migrants))
		for i, ind := range migrants {
			copies[i] = ind.Clone()
		}
		_ = f.inner.Send(dest, copies)
	}
	return ok
}

// releaseDue forwards held batches whose due tick has arrived, in
// insertion order, compacting the queue in place (kept batches emit no
// events, so the released-event sequence is identical to a two-pass
// filter). Crash and partition windows are re-checked at release time:
// a batch delayed into a partition dies in it.
func (f *Faulty) releaseDue() {
	if f.heldLen == 0 {
		return
	}
	w := 0
	for i := 0; i < f.heldLen; i++ {
		h := f.held[i]
		if h.due > f.tick {
			f.held[w] = h
			w++
			continue
		}
		if f.crashed(f.inner.Self()) || f.crashed(h.dest) || f.partitioned(h.dest) {
			f.dropped++
			f.event("%06d release-drop dst=%d", f.tick, h.dest)
			continue
		}
		f.event("%06d release dst=%d dup=%v", f.tick, h.dest, h.dup)
		f.forward(h.dest, h.migrants, h.dup)
	}
	for i := w; i < f.heldLen; i++ {
		f.held[i] = heldBatch{}
	}
	f.heldLen = w
}

// Recv implements Endpoint: releases due held batches (without
// advancing the clock or drawing randomness — receive is fault-free by
// design, every injected fault is attributed to the sending side) and
// passes through.
func (f *Faulty) Recv() ([]*core.Individual, bool) {
	f.releaseDue()
	return f.inner.Recv()
}

// Stats implements Endpoint: the inner endpoint's accounting plus the
// batches this wrapper injected away. Sent is the wrapper's own offer
// count (batches the island actually attempted).
func (f *Faulty) Stats() core.NetStats {
	s := f.inner.Stats()
	s.Sent = f.sent
	s.Dropped += f.dropped
	return s
}

// Schedule returns the fault-event log: one line per decision, in
// order. Two Faulty wrappers with the same seed, spec and operation
// sequence produce byte-identical schedules.
func (f *Faulty) Schedule() []byte { return []byte(f.events.String()) }

// Close implements Endpoint: undelivered held batches are dropped and
// counted, then the inner endpoint closes.
func (f *Faulty) Close() error {
	f.dropped += int64(f.heldLen)
	for i := 0; i < f.heldLen; i++ {
		f.held[i] = heldBatch{}
	}
	f.heldLen = 0
	return f.inner.Close()
}
