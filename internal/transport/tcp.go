// TCP endpoint: real sockets between island processes.
//
// Robustness semantics (DESIGN §10):
//
//   - Per-peer bounded send queues with drop-oldest backpressure: Send
//     encodes the batch and offers it to the peer's queue; a full queue
//     evicts its oldest batch first. Evolution never blocks on the wire.
//   - Connections are established lazily by each peer's sender
//     goroutine, with a connect timeout and exponential backoff plus
//     seeded jitter between attempts. Write failures close the
//     connection; the next batch triggers a reconnect.
//   - Frames are never retransmitted. Migration is best-effort: a batch
//     lost to a dead peer or a failed write is counted dropped, and the
//     sender moves on (the next epoch carries fresher genes anyway).
//   - Peer liveness is reported through SetPeerStateHook: DownAfter
//     consecutive connect failures mark a peer down, a successful dial
//     marks it back up. The island layer feeds these transitions into a
//     supervise.Router so migration reroutes around the partition and
//     heals on rejoin.

package transport

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"pga/internal/core"
	"pga/internal/rng"
)

// TCPConfig configures a TCP endpoint. Zero fields select the
// documented defaults.
type TCPConfig struct {
	// Self is this island's id (required to be a key of no Peers entry
	// pointing elsewhere; a Peers[Self] entry is ignored).
	Self int
	// Listen is the local accept address (e.g. "127.0.0.1:7100" or
	// "127.0.0.1:0"; required unless Listener is set). The bound
	// address is available from Addr after New.
	Listen string
	// Listener, when non-nil, is an already-bound listener the endpoint
	// adopts instead of binding Listen. This lets a process bind ":0"
	// early, publish the resolved address to its peers, and only then
	// construct the endpoint — no close-and-rebind race. The endpoint
	// owns the listener from here on and closes it on Close.
	Listener net.Listener
	// Peers maps island id → dial address for every other island.
	Peers map[int]string
	// QueueLen bounds each peer's outbound batch queue; default 8.
	// When full, the oldest queued batch is dropped to make room.
	QueueLen int
	// InboxLen bounds the inbound batch buffer; default 64. Arrivals
	// beyond it are dropped and counted.
	InboxLen int
	// DialTimeout bounds one connection attempt; default 500ms.
	DialTimeout time.Duration
	// WriteTimeout bounds one frame write; default 2s.
	WriteTimeout time.Duration
	// BackoffMin is the first reconnect delay; default 10ms. It doubles
	// per consecutive failure up to BackoffMax (default 1s), plus a
	// uniform jitter of up to BackoffMin drawn from the seeded stream.
	BackoffMin time.Duration
	// BackoffMax caps the reconnect backoff; default 1s.
	BackoffMax time.Duration
	// DownAfter is the number of consecutive connect failures after
	// which a peer is reported down; default 3.
	DownAfter int
	// Seed seeds the backoff-jitter streams (one split per peer).
	Seed uint64
}

// withDefaults returns a copy of c with zero fields defaulted.
func (c TCPConfig) withDefaults() TCPConfig {
	if c.QueueLen <= 0 {
		c.QueueLen = 8
	}
	if c.InboxLen <= 0 {
		c.InboxLen = 64
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 500 * time.Millisecond
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 2 * time.Second
	}
	if c.BackoffMin <= 0 {
		c.BackoffMin = 10 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = time.Second
	}
	if c.DownAfter <= 0 {
		c.DownAfter = 3
	}
	return c
}

// tcpPeer is the sender-side state of one outbound link, owned by its
// sender goroutine (except queue, which Send feeds).
type tcpPeer struct {
	id    int
	addr  string
	queue chan []byte
	// jitter is this link's private backoff-jitter stream (drawn only
	// on the sender goroutine).
	jitter *rng.Source
}

// TCP is the socket-backed Endpoint. See the file comment for its
// failure semantics.
type TCP struct {
	cfg   TCPConfig
	self  int
	ln    net.Listener
	inbox chan []*core.Individual
	peers map[int]*tcpPeer
	seq   atomic.Uint64

	done      chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup

	// mu guards conns, the set of accepted inbound connections that
	// Close must unblock.
	mu    sync.Mutex
	conns map[net.Conn]struct{}

	// hook is the peer-liveness callback (SetPeerStateHook).
	hook atomic.Pointer[func(peer int, up bool)]

	netCounters
}

var (
	_ Endpoint         = (*TCP)(nil)
	_ LivenessReporter = (*TCP)(nil)
)

// NewTCP binds the listen address (or adopts cfg.Listener) and starts
// the accept loop and one sender goroutine per peer. Connections to
// peers are established lazily on first send.
func NewTCP(cfg TCPConfig) (*TCP, error) {
	cfg = cfg.withDefaults()
	ln := cfg.Listener
	if ln == nil {
		var err error
		ln, err = net.Listen("tcp", cfg.Listen)
		if err != nil {
			return nil, fmt.Errorf("transport: listen %s: %w", cfg.Listen, err)
		}
	}
	t := &TCP{
		cfg:   cfg,
		self:  cfg.Self,
		ln:    ln,
		inbox: make(chan []*core.Individual, cfg.InboxLen),
		peers: make(map[int]*tcpPeer, len(cfg.Peers)),
		done:  make(chan struct{}),
		conns: make(map[net.Conn]struct{}),
	}
	master := rng.New(cfg.Seed)
	for id, addr := range cfg.Peers {
		if id == cfg.Self {
			continue
		}
		p := &tcpPeer{id: id, addr: addr, queue: make(chan []byte, cfg.QueueLen), jitter: master.Split()}
		t.peers[id] = p
		t.wg.Add(1)
		go t.runSender(p)
	}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Addr returns the bound listen address (useful with "…:0").
func (t *TCP) Addr() net.Addr { return t.ln.Addr() }

// Self implements Endpoint.
func (t *TCP) Self() int { return t.self }

// SetPeerStateHook implements LivenessReporter.
func (t *TCP) SetPeerStateHook(f func(peer int, up bool)) { t.hook.Store(&f) }

// reportPeer fires the liveness hook, if any.
func (t *TCP) reportPeer(peer int, up bool) {
	if f := t.hook.Load(); f != nil {
		(*f)(peer, up)
	}
}

// Send implements Endpoint: encode now (the caller's goroutine owns the
// migrants), then offer to the peer's bounded queue, evicting the
// oldest queued batch under backpressure.
func (t *TCP) Send(dest int, migrants []*core.Individual) bool {
	t.sent.Add(1)
	p, ok := t.peers[dest]
	if !ok {
		t.dropped.Add(1)
		return false
	}
	select {
	case <-t.done:
		t.dropped.Add(1)
		return false
	default:
	}
	data, err := encodeBatch(t.self, t.seq.Add(1), migrants)
	if err != nil {
		t.dropped.Add(1)
		return false
	}
	select {
	case p.queue <- data:
		return true
	default:
	}
	// Queue full: drop the oldest queued batch — stale migrants are the
	// least valuable — and retry once. A racing sender goroutine may
	// have drained the queue meanwhile; both selects stay non-blocking.
	select {
	case <-p.queue:
		t.dropped.Add(1)
	default:
	}
	select {
	case p.queue <- data:
		return true
	default:
		t.dropped.Add(1)
		return false
	}
}

// Recv implements Endpoint.
func (t *TCP) Recv() ([]*core.Individual, bool) {
	select {
	case batch := <-t.inbox:
		t.received.Add(1)
		return batch, true
	default:
		return nil, false
	}
}

// Stats implements Endpoint.
func (t *TCP) Stats() core.NetStats { return t.snapshot() }

// Close implements Endpoint: stops the accept loop and senders, closes
// every connection and joins all transport goroutines. Batches still
// queued for a peer are traffic that never made it — they are counted
// dropped so Stats accounts for every batch Send accepted. Idempotent.
func (t *TCP) Close() error {
	t.closeOnce.Do(func() {
		close(t.done)
		_ = t.ln.Close()
		t.mu.Lock()
		for c := range t.conns {
			_ = c.Close()
		}
		t.mu.Unlock()
		t.wg.Wait()
		for _, p := range t.peers {
			for drained := false; !drained; {
				select {
				case <-p.queue:
					t.dropped.Add(1)
				default:
					drained = true
				}
			}
		}
	})
	return nil
}

// track registers an inbound connection for Close, returning false if
// the endpoint is already closing.
func (t *TCP) track(c net.Conn) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	select {
	case <-t.done:
		return false
	default:
	}
	t.conns[c] = struct{}{}
	return true
}

// untrack removes a finished inbound connection.
func (t *TCP) untrack(c net.Conn) {
	t.mu.Lock()
	delete(t.conns, c)
	t.mu.Unlock()
}

// acceptLoop accepts inbound peer connections until Close. It is
// joined by Close via the endpoint WaitGroup and unblocked by closing
// the listener.
func (t *TCP) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			select {
			case <-t.done:
				return
			default:
			}
			// Transient accept failure (e.g. EMFILE): brief pause, go on.
			if !sleepInterruptible(t.done, 10*time.Millisecond) {
				return
			}
			continue
		}
		if !t.track(conn) {
			_ = conn.Close()
			return
		}
		//pgalint:ignore waitgroup Add runs inside acceptLoop, which is itself wg-registered before spawn, so the counter is >=1 whenever this executes and Wait cannot have returned
		t.wg.Add(1)
		go t.serveConn(conn)
	}
}

// serveConn decodes frames from one inbound connection into the inbox
// until the stream errors (EOF, peer death mid-frame, corrupt frame) or
// the endpoint closes. A poisoned stream costs only its own connection:
// the peer's sender will reconnect and the next frame decodes cleanly.
func (t *TCP) serveConn(conn net.Conn) {
	defer t.wg.Done()
	defer t.untrack(conn)
	defer conn.Close()
	for {
		select {
		case <-t.done:
			return
		default:
		}
		_, migrants, err := readFrame(conn)
		if err != nil {
			return
		}
		select {
		case t.inbox <- migrants:
			t.delivered.Add(1)
		default:
			// Inbox full: receiver-side backpressure drops the arrival.
			t.dropped.Add(1)
		}
	}
}

// runSender owns one peer link: it drains the peer's queue, dialing on
// demand with timeout, backoff and jitter, and writes frames with a
// write deadline. Failures are counted and reported; nothing blocks.
func (t *TCP) runSender(p *tcpPeer) {
	defer t.wg.Done()
	var conn net.Conn
	defer func() {
		if conn != nil {
			_ = conn.Close()
		}
	}()
	failures := 0 // consecutive connect failures
	everConnected := false
	down := false
	for {
		var data []byte
		select {
		case <-t.done:
			return
		case data = <-p.queue:
		}
		// Establish the link if needed. One attempt per queued batch:
		// between attempts the backoff sleep runs, and the batch is
		// retained so the reconnect delivers it (rejoin-with-news).
		for conn == nil {
			c, err := net.DialTimeout("tcp", p.addr, t.cfg.DialTimeout)
			if err == nil {
				conn = c
				if everConnected || failures > 0 {
					t.reconnects.Add(1)
				}
				everConnected = true
				failures = 0
				if down {
					down = false
					t.reportPeer(p.id, true)
				}
				break
			}
			failures++
			if !down && failures >= t.cfg.DownAfter {
				down = true
				t.peerDowns.Add(1)
				t.reportPeer(p.id, false)
			}
			if !sleepInterruptible(t.done, t.backoff(p, failures)) {
				t.dropped.Add(1) // the retained batch dies with the endpoint
				return
			}
			// While backing off, prefer the freshest batch: if newer
			// batches queued up meanwhile, the retained one is the
			// oldest — replace it and count the eviction.
			select {
			case newer := <-p.queue:
				data = newer
				t.dropped.Add(1)
			default:
			}
		}
		_ = conn.SetWriteDeadline(time.Now().Add(t.cfg.WriteTimeout))
		if _, err := conn.Write(data); err != nil {
			// Best-effort: the batch may be partially on the wire; count
			// it dropped, poison the link and reconnect on the next batch.
			t.dropped.Add(1)
			_ = conn.Close()
			conn = nil
			continue
		}
	}
}

// backoff returns the delay before connect attempt failures+1 to p:
// BackoffMin × 2^(failures-1) capped at BackoffMax, plus a uniform
// jitter of up to BackoffMin from the link's seeded stream (decorrelates
// reconnect storms across islands without wall-clock randomness).
func (t *TCP) backoff(p *tcpPeer, failures int) time.Duration {
	shift := failures - 1
	if shift > 16 {
		shift = 16
	}
	d := t.cfg.BackoffMin << uint(shift)
	if d > t.cfg.BackoffMax || d <= 0 {
		d = t.cfg.BackoffMax
	}
	return d + time.Duration(p.jitter.Float64()*float64(t.cfg.BackoffMin))
}

// sleepInterruptible sleeps for d unless done closes first, reporting
// whether the sleep completed (false: the endpoint is closing).
func sleepInterruptible(done <-chan struct{}, d time.Duration) bool {
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-done:
		return false
	case <-timer.C:
		return true
	}
}
