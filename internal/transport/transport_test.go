package transport

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"testing"

	"pga/internal/core"
	"pga/internal/genome"
)

// testBatch builds a batch of evaluated bit-string individuals with
// recognisable fitness values.
func testBatch(n, bits int) []*core.Individual {
	out := make([]*core.Individual, n)
	for i := range out {
		g := genome.NewBitString(bits)
		for j := 0; j <= i && j < bits; j++ {
			g.Set(j, true)
		}
		out[i] = &core.Individual{Genome: g, Fitness: float64(i + 1), Evaluated: true}
	}
	return out
}

func TestLoopbackDeliversBetweenEndpoints(t *testing.T) {
	eps := NewLoopback(3, 4)
	batch := testBatch(2, 8)
	if !eps[0].Send(1, batch) {
		t.Fatal("Send to live peer refused")
	}
	got, ok := eps[1].Recv()
	if !ok || len(got) != 2 {
		t.Fatalf("Recv = %v, %v; want 2 individuals", got, ok)
	}
	if got[0].Fitness != 1 || got[1].Fitness != 2 {
		t.Fatalf("batch arrived reordered or corrupted: %v", got)
	}
	if _, ok := eps[1].Recv(); ok {
		t.Fatal("second Recv should find an empty inbox")
	}
	s := eps[0].Stats()
	if s.Sent != 1 || s.Delivered != 1 || s.Dropped != 0 {
		t.Fatalf("sender stats = %+v", s)
	}
	if r := eps[1].Stats(); r.Received != 1 {
		t.Fatalf("receiver stats = %+v", r)
	}
}

func TestLoopbackRefusals(t *testing.T) {
	eps := NewLoopback(2, 1)
	if eps[0].Send(0, testBatch(1, 4)) {
		t.Fatal("self-send should be refused")
	}
	if eps[0].Send(7, testBatch(1, 4)) {
		t.Fatal("out-of-range dest should be refused")
	}
	if !eps[0].Send(1, testBatch(1, 4)) {
		t.Fatal("first send should fill the inbox")
	}
	if eps[0].Send(1, testBatch(1, 4)) {
		t.Fatal("full inbox should refuse")
	}
	if err := eps[0].Close(); err != nil {
		t.Fatal(err)
	}
	if eps[0].Send(1, testBatch(1, 4)) {
		t.Fatal("closed endpoint should refuse")
	}
	s := eps[0].Stats()
	if s.Sent != 5 || s.Delivered != 1 || s.Dropped != 4 {
		t.Fatalf("stats = %+v; want 5 sent, 1 delivered, 4 dropped", s)
	}
	// The peer can still drain after our close: channels stay open.
	if _, ok := eps[1].Recv(); !ok {
		t.Fatal("peer could not drain after sender close")
	}
}

func TestWireRoundTrip(t *testing.T) {
	batch := testBatch(3, 16)
	data, err := encodeBatch(5, 42, batch)
	if err != nil {
		t.Fatal(err)
	}
	from, got, err := readFrame(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if from != 5 {
		t.Fatalf("from = %d, want 5", from)
	}
	if len(got) != 3 {
		t.Fatalf("decoded %d individuals, want 3", len(got))
	}
	for i, ind := range got {
		if ind.Fitness != batch[i].Fitness || !ind.Evaluated {
			t.Fatalf("individual %d: %+v, want fitness %g", i, ind, batch[i].Fitness)
		}
		g := ind.Genome.(*genome.BitString)
		w := batch[i].Genome.(*genome.BitString)
		for j := 0; j < w.Len(); j++ {
			if g.Get(j) != w.Get(j) {
				t.Fatalf("individual %d bit %d flipped in transit", i, j)
			}
		}
	}
}

func TestWireRejectsCorruptFrames(t *testing.T) {
	good, err := encodeBatch(0, 1, testBatch(1, 8))
	if err != nil {
		t.Fatal(err)
	}

	t.Run("oversized length prefix", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		binary.BigEndian.PutUint32(bad[:4], maxFrameBytes+1)
		if _, _, err := readFrame(bytes.NewReader(bad)); err == nil {
			t.Fatal("oversized prefix accepted")
		}
	})
	t.Run("zero length prefix", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		binary.BigEndian.PutUint32(bad[:4], 0)
		if _, _, err := readFrame(bytes.NewReader(bad)); err == nil {
			t.Fatal("zero prefix accepted")
		}
	})
	t.Run("truncated body", func(t *testing.T) {
		if _, _, err := readFrame(bytes.NewReader(good[:len(good)-3])); err == nil {
			t.Fatal("truncated frame accepted")
		}
	})
	t.Run("garbage gob", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		for i := 4; i < len(bad); i++ {
			bad[i] ^= 0xff
		}
		if _, _, err := readFrame(bytes.NewReader(bad)); err == nil {
			t.Fatal("corrupt gob accepted")
		}
	})
	t.Run("self-contained frames", func(t *testing.T) {
		// Two frames back to back must decode independently — the
		// reconnect-mid-stream property.
		second, err := encodeBatch(1, 2, testBatch(2, 8))
		if err != nil {
			t.Fatal(err)
		}
		r := bytes.NewReader(append(append([]byte(nil), good...), second...))
		if _, _, err := readFrame(r); err != nil {
			t.Fatal(err)
		}
		from, got, err := readFrame(r)
		if err != nil {
			t.Fatal(err)
		}
		if from != 1 || len(got) != 2 {
			t.Fatalf("second frame = from %d, %d individuals", from, len(got))
		}
	})
}

func TestWireVersionMismatchRejected(t *testing.T) {
	data, err := encodeBatch(0, 1, testBatch(1, 8))
	if err != nil {
		t.Fatal(err)
	}
	// Decode the good frame, bump the version, re-frame and re-read.
	var f frame
	if err := gob.NewDecoder(bytes.NewReader(data[4:])).Decode(&f); err != nil {
		t.Fatal(err)
	}
	f.Version = wireVersion + 1
	var buf bytes.Buffer
	buf.Write(make([]byte, 4))
	if err := gob.NewEncoder(&buf).Encode(f); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	binary.BigEndian.PutUint32(b[:4], uint32(len(b)-4))
	if _, _, err := readFrame(bytes.NewReader(b)); err == nil {
		t.Fatal("future wire version accepted")
	}
}

// TestWireRoundTripBoundaryLengths sends packed genomes of word-boundary
// lengths through the full gob frame codec: the packed layout must never
// leak into the wire format, and the decoded copies must be bit-exact
// with clean tails.
func TestWireRoundTripBoundaryLengths(t *testing.T) {
	rng := uint64(0x9e3779b97f4a7c15)
	var batch []*core.Individual
	for _, n := range []int{1, 63, 64, 65, 130} {
		g := genome.NewBitString(n)
		for j := 0; j < n; j++ {
			rng ^= rng << 13
			rng ^= rng >> 7
			rng ^= rng << 17
			g.Set(j, rng&1 == 1)
		}
		batch = append(batch, &core.Individual{Genome: g, Fitness: float64(n), Evaluated: true})
	}
	data, err := encodeBatch(2, 7, batch)
	if err != nil {
		t.Fatal(err)
	}
	_, got, err := readFrame(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(batch) {
		t.Fatalf("got %d migrants, want %d", len(got), len(batch))
	}
	for i, ind := range got {
		w := batch[i].Genome.(*genome.BitString)
		g := ind.Genome.(*genome.BitString)
		if !g.Equal(w) {
			t.Fatalf("migrant %d (len %d): bits corrupted in transit", i, w.Len())
		}
		if g.Words[len(g.Words)-1]&^genome.TailMask(g.N) != 0 {
			t.Fatalf("migrant %d: decoded genome has dirty tail bits", i)
		}
	}
}
