package transport

import (
	"bytes"
	"testing"
)

// driveFaulty runs a fixed Send/Recv sequence against a fresh Faulty
// over a fresh Loopback pair and returns the wrapper.
func driveFaulty(spec FaultSpec, seed uint64, sends int) *Faulty {
	eps := NewLoopback(2, 64)
	f := NewFaulty(eps[0], spec, seed)
	for i := 0; i < sends; i++ {
		f.Send(1, testBatch(1, 8))
		if i%3 == 0 {
			f.Recv()
		}
	}
	_ = f.Close()
	return f
}

// TestFaultySchedulePropertyDeterministic is the schedule property the
// package doc promises: same (seed, spec, operation sequence) → a
// byte-identical fault schedule; a different seed diverges.
func TestFaultySchedulePropertyDeterministic(t *testing.T) {
	spec := FaultSpec{
		Link:        LinkFaults{LossProb: 0.2, Jitter: 0.05},
		MaxDelay:    4,
		DupProb:     0.15,
		ReorderProb: 0.1,
		Partitions:  []Partition{{From: 20, Until: 35, Peers: []int{1}}},
		Crashes:     []Crash{{Peer: 1, At: 50, Until: 60}},
	}
	for _, seed := range []uint64{1, 7, 12345} {
		a := driveFaulty(spec, seed, 100)
		b := driveFaulty(spec, seed, 100)
		if !bytes.Equal(a.Schedule(), b.Schedule()) {
			t.Fatalf("seed %d: schedules diverge:\n--- a ---\n%s--- b ---\n%s",
				seed, a.Schedule(), b.Schedule())
		}
		if len(a.Schedule()) == 0 {
			t.Fatalf("seed %d: no fault events recorded over 100 sends", seed)
		}
		sa, sb := a.Stats(), b.Stats()
		if sa != sb {
			t.Fatalf("seed %d: stats diverge: %+v vs %+v", seed, sa, sb)
		}
	}
	a := driveFaulty(spec, 1, 100)
	c := driveFaulty(spec, 2, 100)
	if bytes.Equal(a.Schedule(), c.Schedule()) {
		t.Fatal("different seeds produced identical 100-send schedules")
	}
}

func TestFaultyZeroSpecIsTransparent(t *testing.T) {
	eps := NewLoopback(2, 8)
	f := NewFaulty(eps[0], FaultSpec{}, 1)
	for i := 0; i < 5; i++ {
		if !f.Send(1, testBatch(1, 8)) {
			t.Fatalf("send %d refused under zero fault spec", i)
		}
	}
	got := 0
	for {
		if _, ok := eps[1].Recv(); !ok {
			break
		}
		got++
	}
	if got != 5 {
		t.Fatalf("delivered %d of 5 batches", got)
	}
	if len(f.Schedule()) == 0 {
		t.Fatal("transparent wrapper should still log deliveries")
	}
	if s := f.Stats(); s.Sent != 5 || s.Dropped != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestFaultyPartitionWindowDropsDeterministically(t *testing.T) {
	spec := FaultSpec{Partitions: []Partition{{From: 3, Until: 6, Peers: []int{1}}}}
	eps := NewLoopback(2, 64)
	f := NewFaulty(eps[0], spec, 9)
	var results []bool
	for i := 0; i < 8; i++ {
		results = append(results, f.Send(1, testBatch(1, 8)))
	}
	// Ticks 1..8; the [3,6) window must drop sends 3, 4 and 5 exactly.
	want := []bool{true, true, false, false, false, true, true, true}
	for i, ok := range results {
		if ok != want[i] {
			t.Fatalf("send at tick %d: delivered=%v, want %v (results %v)", i+1, ok, want[i], results)
		}
	}
	if s := f.Stats(); s.Dropped != 3 {
		t.Fatalf("dropped = %d, want 3", s.Dropped)
	}
}

func TestFaultyCrashWindowDropsBothDirections(t *testing.T) {
	// Crash of the wrapped endpoint itself: everything it sends dies.
	specSelf := FaultSpec{Crashes: []Crash{{Peer: 0, At: 1, Until: 3}}}
	eps := NewLoopback(2, 8)
	f := NewFaulty(eps[0], specSelf, 1)
	if f.Send(1, testBatch(1, 8)) {
		t.Fatal("send from crashed self delivered")
	}
	if f.Send(1, testBatch(1, 8)) {
		t.Fatal("send from crashed self delivered at tick 2")
	}
	if !f.Send(1, testBatch(1, 8)) {
		t.Fatal("send after crash window refused")
	}

	// Crash of the destination: sends to it die, others pass.
	specPeer := FaultSpec{Crashes: []Crash{{Peer: 1, At: 0, Until: 0}}}
	eps3 := NewLoopback(3, 8)
	g := NewFaulty(eps3[0], specPeer, 1)
	if g.Send(1, testBatch(1, 8)) {
		t.Fatal("send to permanently crashed peer delivered")
	}
	if !g.Send(2, testBatch(1, 8)) {
		t.Fatal("send to live peer refused")
	}
}

func TestFaultyDuplicateDeliversClones(t *testing.T) {
	spec := FaultSpec{DupProb: 1}
	eps := NewLoopback(2, 8)
	f := NewFaulty(eps[0], spec, 1)
	if !f.Send(1, testBatch(1, 8)) {
		t.Fatal("send refused")
	}
	first, ok1 := eps[1].Recv()
	second, ok2 := eps[1].Recv()
	if !ok1 || !ok2 {
		t.Fatalf("want two deliveries, got %v %v", ok1, ok2)
	}
	if first[0] == second[0] || first[0].Genome == second[0].Genome {
		t.Fatal("duplicate delivery aliases the original batch")
	}
}

// TestFaultyPartitionCatchesInFlightDelayedBatch: a batch delayed into
// a partition window must die at release time (release-drop), not slip
// through because its fate was rolled before the cut opened — the
// analogue of a reconnect attempt in flight when the partition lands.
// The whole interaction must be byte-reproducible.
func TestFaultyPartitionCatchesInFlightDelayedBatch(t *testing.T) {
	spec := FaultSpec{
		Link:       LinkFaults{Jitter: 1}, // every survivor is held ≥1 tick
		MaxDelay:   2,
		Partitions: []Partition{{From: 2, Until: 10, Peers: []int{1}}},
	}
	run := func() (*Faulty, int) {
		eps := NewLoopback(2, 64)
		f := NewFaulty(eps[0], spec, 21)
		// Tick 1: pre-partition send, delayed to tick 2 or 3 — due inside
		// the window. Ticks 2..5: sends into the cut (partition-drop) whose
		// clock advances release the held batch into the partition.
		for i := 0; i < 5; i++ {
			f.Send(1, testBatch(1, 8))
		}
		got := 0
		for {
			if _, ok := eps[1].Recv(); !ok {
				break
			}
			got++
		}
		return f, got
	}
	a, gotA := run()
	b, gotB := run()
	if !bytes.Equal(a.Schedule(), b.Schedule()) {
		t.Fatalf("schedules diverge:\n--- a ---\n%s--- b ---\n%s", a.Schedule(), b.Schedule())
	}
	if gotA != 0 || gotB != 0 {
		t.Fatalf("delivered %d/%d batches through the partition, want 0", gotA, gotB)
	}
	if !bytes.Contains(a.Schedule(), []byte("release-drop")) {
		t.Fatalf("delayed batch was not release-dropped in the partition:\n%s", a.Schedule())
	}
	if s := a.Stats(); s.Dropped != 5 {
		t.Fatalf("dropped = %d, want all 5 (1 released into the cut + 4 sent into it)", s.Dropped)
	}
}

// TestFaultyCrashAtDuplicateTickDropsBoth: with DupProb=1 every
// surviving send delivers twice, but a crash scheduled at the same
// logical tick wins — the batch crash-drops before the duplicate roll,
// consuming no randomness, so the post-crash stream (and the schedule
// bytes) are unperturbed and reproducible.
func TestFaultyCrashAtDuplicateTickDropsBoth(t *testing.T) {
	spec := FaultSpec{
		DupProb: 1,
		Crashes: []Crash{{Peer: 1, At: 2, Until: 3}},
	}
	run := func() (*Faulty, int) {
		eps := NewLoopback(2, 64)
		f := NewFaulty(eps[0], spec, 5)
		for i := 0; i < 3; i++ { // ticks 1 (live), 2 (crashed), 3 (live again)
			f.Send(1, testBatch(1, 8))
		}
		got := 0
		for {
			if _, ok := eps[1].Recv(); !ok {
				break
			}
			got++
		}
		return f, got
	}
	a, gotA := run()
	b, gotB := run()
	if !bytes.Equal(a.Schedule(), b.Schedule()) {
		t.Fatalf("schedules diverge:\n--- a ---\n%s--- b ---\n%s", a.Schedule(), b.Schedule())
	}
	// Ticks 1 and 3 deliver original + duplicate; tick 2 delivers
	// neither copy — the crash outranks the guaranteed duplicate.
	if gotA != 4 || gotB != 4 {
		t.Fatalf("delivered %d/%d batches, want 4 (2 doubled sends, crashed tick drops both copies)", gotA, gotB)
	}
	if n := bytes.Count(a.Schedule(), []byte("crash-drop")); n != 1 {
		t.Fatalf("crash-drop events = %d, want exactly 1:\n%s", n, a.Schedule())
	}
	if s := a.Stats(); s.Dropped != 1 {
		t.Fatalf("dropped = %d, want 1 (the injected duplicate of a dropped batch is never counted)", s.Dropped)
	}
}

func TestFaultyDelayHoldsUntilDue(t *testing.T) {
	spec := FaultSpec{Link: LinkFaults{Jitter: 1}, MaxDelay: 2}
	eps := NewLoopback(2, 64)
	f := NewFaulty(eps[0], spec, 3)
	delivered := func() int {
		n := 0
		for {
			if _, ok := eps[1].Recv(); !ok {
				return n
			}
			n++
		}
	}
	total := 0
	for i := 0; i < 10; i++ {
		f.Send(1, testBatch(1, 8))
		total += delivered()
	}
	// With Jitter > 0 every surviving batch is held ≥1 tick, so the
	// last sends are still in flight — but earlier ones must have been
	// released as their due ticks passed.
	if total == 0 {
		t.Fatal("no delayed batch was ever released")
	}
	if total >= 10 {
		t.Fatalf("delivered %d of 10 with mandatory delay — nothing was held", total)
	}
	before := f.Stats().Dropped
	_ = f.Close()
	if after := f.Stats().Dropped; after-before != int64(10-total) {
		t.Fatalf("close accounted %d held batches as dropped, want %d", after-before, 10-total)
	}
}
