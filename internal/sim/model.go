package sim

import (
	"fmt"

	"pga/internal/core"
	"pga/internal/engine"
	"pga/internal/ga"
	"pga/internal/genome"
	"pga/internal/operators"
	"pga/internal/rng"
)

// genes extracts the real gene slice of the unit-hypercube genomes used by
// this package's problems.
func genes(g core.Genome) []float64 { return g.(*genome.RealVector).Genes }

// randomUnitVector returns a RealVector on [0,1]^n.
func randomUnitVector(n int, r *rng.Source) core.Genome {
	return genome.RandomRealVector(n, 0, 1, r)
}

// Scenario enumerates the seven SIM configurations compared in the
// original paper: they vary the number of sub-EAs, whether each sub-EA
// specialises on one objective or optimises all of them, and the
// communication topology between the sub-EAs.
type Scenario int

const (
	// S1 is the non-parallel baseline: one island optimising the weighted
	// sum of all objectives.
	S1 Scenario = iota + 1
	// S2 is k generalist islands with no communication.
	S2
	// S3 is k generalist islands on a migration ring.
	S3
	// S4 is one specialist island per objective, no communication.
	S4
	// S5 is one specialist island per objective on a migration ring.
	S5
	// S6 is the specialists plus one generalist hub (star topology).
	S6
	// S7 is one specialist per objective, fully connected.
	S7
)

// String implements fmt.Stringer.
func (s Scenario) String() string {
	switch s {
	case S1:
		return "S1 single generalist"
	case S2:
		return "S2 generalists, isolated"
	case S3:
		return "S3 generalists, ring"
	case S4:
		return "S4 specialists, isolated"
	case S5:
		return "S5 specialists, ring"
	case S6:
		return "S6 specialists + hub"
	case S7:
		return "S7 specialists, complete"
	}
	return fmt.Sprintf("S?%d", int(s))
}

// Scenarios lists all seven in order.
func Scenarios() []Scenario { return []Scenario{S1, S2, S3, S4, S5, S6, S7} }

// scalarProblem adapts a MultiObjective to core.Problem through an
// objective-weight vector, feeding every evaluation into a shared archive.
type scalarProblem struct {
	mo      MultiObjective
	weights []float64
	archive *Archive
	evals   *int64
}

func (p *scalarProblem) Name() string                        { return p.mo.Name() }
func (p *scalarProblem) Direction() core.Direction           { return core.Minimize }
func (p *scalarProblem) NewGenome(r *rng.Source) core.Genome { return p.mo.NewGenome(r) }

//pgalint:ignore purity archive-feeding adapter: the SIM scenarios run demes sequentially, and Archive.Add is the documented side channel for Pareto collection
func (p *scalarProblem) Evaluate(g core.Genome) float64 {
	objs := p.mo.Objectives(g)
	*p.evals++
	p.archive.Add(g, objs)
	s := 0.0
	for i, o := range objs {
		s += p.weights[i] * o
	}
	return s
}

// Config describes a SIM run.
type Config struct {
	// Problem is the multi-objective problem (required).
	Problem MultiObjective
	// Scenario selects one of the seven configurations.
	Scenario Scenario
	// DemeSize is the population per island; default 40.
	DemeSize int
	// Generations per island; default 60.
	Generations int
	// MigrationInterval between exchanges; default 5.
	MigrationInterval int
	// ArchiveCap bounds the Pareto archive; default 100.
	ArchiveCap int
	// HVRef is the hypervolume reference point for bi-objective problems.
	// The default (11, 11) counts broad coverage; a tight reference such
	// as (1.1, 1.1) counts only near-front points and discriminates the
	// scenarios much more sharply.
	HVRef [2]float64
	// Seed seeds the master stream.
	Seed uint64
}

// Result summarises a SIM run. The embedded core.RunStats holds the
// accounting common to every runtime; BestFitness is the best
// scalarised fitness across sub-EAs, each member scored under its own
// island's objective weights (the archive, not BestFitness, is the
// multi-objective quality measure — see DESIGN §9), and one evaluation
// is one Objectives() call (scalarisation is free).
type Result struct {
	core.RunStats
	// Scenario that produced the result.
	Scenario Scenario
	// Archive is the final non-dominated set.
	Archive *Archive
	// Hypervolume is the 2-D hypervolume of the archive (bi-objective
	// problems; 0 otherwise), reference point (1.1, 1.1)·scale.
	Hypervolume float64
	// Islands is the number of sub-EAs used.
	Islands int
}

// islandSpec is one sub-EA's configuration.
type islandSpec struct {
	weights   []float64
	neighbors []int
}

// buildScenario returns the islands and their links for the scenario.
func buildScenario(s Scenario, nObj int) []islandSpec {
	uniform := make([]float64, nObj)
	for i := range uniform {
		uniform[i] = 1 / float64(nObj)
	}
	oneHot := func(k int) []float64 {
		w := make([]float64, nObj)
		w[k] = 1
		return w
	}
	ring := func(n int) [][]int {
		out := make([][]int, n)
		for i := range out {
			out[i] = []int{(i + 1) % n}
		}
		return out
	}
	none := func(n int) [][]int { return make([][]int, n) }
	complete := func(n int) [][]int {
		out := make([][]int, n)
		for i := range out {
			for j := 0; j < n; j++ {
				if j != i {
					out[i] = append(out[i], j)
				}
			}
		}
		return out
	}

	mk := func(weights [][]float64, links [][]int) []islandSpec {
		specs := make([]islandSpec, len(weights))
		for i := range specs {
			specs[i] = islandSpec{weights: weights[i], neighbors: links[i]}
		}
		return specs
	}

	switch s {
	case S1:
		return mk([][]float64{uniform}, none(1))
	case S2, S3:
		ws := make([][]float64, nObj) // as many generalists as objectives, for parity
		for i := range ws {
			ws[i] = uniform
		}
		if s == S2 {
			return mk(ws, none(nObj))
		}
		return mk(ws, ring(nObj))
	case S4, S5, S7:
		ws := make([][]float64, nObj)
		for i := range ws {
			ws[i] = oneHot(i)
		}
		switch s {
		case S4:
			return mk(ws, none(nObj))
		case S5:
			return mk(ws, ring(nObj))
		default:
			return mk(ws, complete(nObj))
		}
	case S6:
		ws := make([][]float64, 0, nObj+1)
		ws = append(ws, uniform) // hub generalist = island 0
		for i := 0; i < nObj; i++ {
			ws = append(ws, oneHot(i))
		}
		links := make([][]int, nObj+1)
		for i := 1; i <= nObj; i++ {
			links[0] = append(links[0], i)
			links[i] = []int{0}
		}
		return mk(ws, links)
	}
	panic(fmt.Sprintf("sim: unknown scenario %d", int(s)))
}

// Run executes the scenario and returns its result. The run is fully
// deterministic for a given Config.
func Run(cfg Config) *Result {
	if cfg.Problem == nil {
		panic("sim: Config.Problem is required")
	}
	if cfg.DemeSize == 0 {
		cfg.DemeSize = 40
	}
	if cfg.Generations == 0 {
		cfg.Generations = 60
	}
	if cfg.MigrationInterval == 0 {
		cfg.MigrationInterval = 5
	}
	if cfg.ArchiveCap == 0 {
		cfg.ArchiveCap = 100
	}
	if cfg.HVRef == [2]float64{} {
		cfg.HVRef = [2]float64{11, 11}
	}

	nObj := cfg.Problem.NObjectives()
	specs := buildScenario(cfg.Scenario, nObj)
	archive := NewArchive(cfg.ArchiveCap)
	var evals int64

	master := rng.New(cfg.Seed)
	migRNG := master.Split()
	engines := make([]ga.Engine, len(specs))
	scalars := make([]*scalarProblem, len(specs))
	for i, spec := range specs {
		scalars[i] = &scalarProblem{mo: cfg.Problem, weights: spec.weights, archive: archive, evals: &evals}
		engines[i] = ga.NewGenerational(ga.Config{
			Problem:   scalars[i],
			PopSize:   cfg.DemeSize,
			Selector:  operators.Tournament{K: 2},
			Crossover: operators.SBX{},
			Mutator:   operators.Polynomial{},
			RNG:       master.Split(),
		})
	}

	res := &Result{
		Scenario: cfg.Scenario,
		Archive:  archive,
		Islands:  len(specs),
	}
	st := &scenarioStepper{
		engines: engines, scalars: scalars, specs: specs,
		migRNG: migRNG, evals: &evals, interval: cfg.MigrationInterval,
	}
	engine.Loop(st, engine.Options{
		Stop: core.MaxGenerations(cfg.Generations),
	}, &res.RunStats)
	if nObj == 2 {
		pts := make([][]float64, 0, archive.Len())
		for _, it := range archive.Items() {
			pts = append(pts, it.Objectives)
		}
		res.Hypervolume = Hypervolume2D(pts, cfg.HVRef)
	}
	return res
}

// scenarioStepper is the SIM runtime's engine.Stepper: one generation
// steps every sub-EA, then migrates on schedule. Best() is the best
// scalarised fitness across islands, each member scored under its own
// island's weights.
type scenarioStepper struct {
	engines  []ga.Engine
	scalars  []*scalarProblem
	specs    []islandSpec
	migRNG   *rng.Source
	evals    *int64
	interval int
}

// Step implements engine.Stepper.
func (s *scenarioStepper) Step(gen int) engine.StepInfo {
	for _, e := range s.engines {
		e.Step()
	}
	if gen%s.interval == 0 {
		migrate(s.engines, s.scalars, s.specs, s.migRNG, s.evals)
	}
	return engine.StepInfo{}
}

// Best implements engine.Stepper.
func (s *scenarioStepper) Best() (*core.Individual, float64) {
	bestFit := core.Minimize.Worst()
	var best *core.Individual
	for _, e := range s.engines {
		pop := e.Population()
		if b := pop.Best(core.Minimize); b >= 0 && core.Minimize.Better(pop.Members[b].Fitness, bestFit) {
			bestFit = pop.Members[b].Fitness
			best = pop.Members[b]
		}
	}
	return best, bestFit
}

// Evaluations implements engine.Stepper.
func (s *scenarioStepper) Evaluations() int64 { return *s.evals }

// Direction implements engine.Stepper.
func (s *scenarioStepper) Direction() core.Direction { return core.Minimize }

// migrate sends each island's best to its neighbours; the migrant is
// re-evaluated under the receiver's objective weights (the defining SIM
// mechanic: a solution good for objective i seeds the search for
// objective j).
func migrate(engines []ga.Engine, scalars []*scalarProblem, specs []islandSpec, r *rng.Source, evals *int64) {
	dir := core.Minimize
	type migrant struct {
		to int
		g  core.Genome
	}
	var outbox []migrant
	for i, e := range engines {
		if len(specs[i].neighbors) == 0 {
			continue
		}
		pop := e.Population()
		if b := pop.Best(dir); b >= 0 {
			for _, nbr := range specs[i].neighbors {
				outbox = append(outbox, migrant{to: nbr, g: pop.Members[b].Genome.Clone()})
			}
		}
	}
	sbx := operators.SBX{}
	for _, m := range outbox {
		pop := engines[m.to].Population()
		// A raw cross-specialist migrant scores poorly on the receiver's
		// objective and is discarded by the next generational step before
		// selection can exploit it. Integrate by recombination instead:
		// cross the immigrant with the receiver's best, so its genes enter
		// the gene pool in hybrids that can compete locally — the
		// cross-specialist seeding that makes SIM cover the front.
		b := pop.Best(dir)
		if b < 0 {
			continue
		}
		c1, c2 := sbx.Cross(m.g, pop.Members[b].Genome, r)
		for _, g := range []core.Genome{m.g, c1, c2} {
			ind := core.NewIndividual(g)
			ind.Fitness = scalars[m.to].Evaluate(ind.Genome)
			ind.Evaluated = true
			if w := pop.Worst(dir); w >= 0 {
				pop.Replace(w, ind)
			}
		}
	}
}
