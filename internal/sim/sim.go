// Package sim implements the Specialized Island Model (SIM) of Xiao &
// Armstrong (2003), reviewed in §2 of the survey: a multi-objective
// evolutionary algorithm split into sub-EAs, each responsible for
// optimising a subset of the objectives, exchanging individuals over a
// communication topology. The original paper tested seven scenarios
// varying the number of sub-EAs, their specialisation and the topology;
// experiment E9 reproduces that seven-scenario comparison.
package sim

import (
	"fmt"
	"math"

	"pga/internal/core"
	"pga/internal/rng"
)

// MultiObjective is a problem with several minimised objectives.
type MultiObjective interface {
	// Name identifies the problem.
	Name() string
	// NObjectives returns the number of objectives.
	NObjectives() int
	// NewGenome returns a fresh random genome.
	NewGenome(r *rng.Source) core.Genome
	// Objectives returns all objective values of g (all minimised).
	Objectives(g core.Genome) []float64
}

// Dominates reports whether objective vector a Pareto-dominates b
// (minimisation: a is no worse everywhere and strictly better somewhere).
func Dominates(a, b []float64) bool {
	if len(a) != len(b) {
		panic("sim: objective vectors of different lengths")
	}
	strictly := false
	for i := range a {
		if a[i] > b[i] {
			return false
		}
		if a[i] < b[i] {
			strictly = true
		}
	}
	return strictly
}

// ArchiveItem is a non-dominated solution with its objective vector.
type ArchiveItem struct {
	Genome     core.Genome
	Objectives []float64
}

// Archive maintains a bounded set of mutually non-dominated solutions.
type Archive struct {
	items []ArchiveItem
	cap   int
}

// NewArchive returns an archive holding at most cap items (0 = unbounded).
func NewArchive(cap int) *Archive { return &Archive{cap: cap} }

// Len returns the archive size.
func (a *Archive) Len() int { return len(a.items) }

// Items returns the archived solutions (not a copy; treat as read-only).
func (a *Archive) Items() []ArchiveItem { return a.items }

// Add inserts the solution if it is not dominated by any archived item,
// evicting items it dominates. Returns true if inserted. When the archive
// is full, the new item replaces its nearest neighbour in objective space
// (a simple crowding rule).
func (a *Archive) Add(g core.Genome, objs []float64) bool {
	for _, it := range a.items {
		if Dominates(it.Objectives, objs) || equalObjs(it.Objectives, objs) {
			return false
		}
	}
	// Evict dominated items.
	kept := a.items[:0]
	for _, it := range a.items {
		if !Dominates(objs, it.Objectives) {
			kept = append(kept, it)
		}
	}
	a.items = kept
	item := ArchiveItem{Genome: g.Clone(), Objectives: append([]float64(nil), objs...)}
	if a.cap > 0 && len(a.items) >= a.cap {
		// Replace the archived item closest to the newcomer (crowding).
		nearest, bestD := -1, math.Inf(1)
		for i, it := range a.items {
			d := sqDist(it.Objectives, objs)
			if d < bestD {
				nearest, bestD = i, d
			}
		}
		a.items[nearest] = item
		return true
	}
	a.items = append(a.items, item)
	return true
}

func equalObjs(a, b []float64) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func sqDist(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// Hypervolume2D returns the hypervolume (area) dominated by the given
// bi-objective points relative to the reference point (minimisation;
// points beyond the reference contribute nothing). The standard
// quality indicator for two-objective fronts.
func Hypervolume2D(points [][]float64, ref [2]float64) float64 {
	// Filter to points strictly dominating the reference.
	var ps [][]float64
	for _, p := range points {
		if len(p) != 2 {
			panic("sim: Hypervolume2D requires 2-objective points")
		}
		if p[0] < ref[0] && p[1] < ref[1] {
			ps = append(ps, p)
		}
	}
	if len(ps) == 0 {
		return 0
	}
	// Sort by f1 ascending; sweep accumulating rectangles.
	for i := 1; i < len(ps); i++ {
		for j := i; j > 0 && ps[j][0] < ps[j-1][0]; j-- {
			ps[j], ps[j-1] = ps[j-1], ps[j]
		}
	}
	hv := 0.0
	prevF2 := ref[1]
	for _, p := range ps {
		if p[1] < prevF2 {
			hv += (ref[0] - p[0]) * (prevF2 - p[1])
			prevF2 = p[1]
		}
	}
	return hv
}

// ZDT1 is the classic bi-objective benchmark: f1 = x0,
// f2 = g·(1−√(f1/g)) with g = 1 + 9·mean(x1..). Pareto front: g = 1.
type ZDT1 struct {
	// Dim is the number of decision variables (≥ 2); classically 30.
	Dim int
}

// Name implements MultiObjective.
func (z ZDT1) Name() string { return fmt.Sprintf("zdt1(%d)", z.Dim) }

// NObjectives implements MultiObjective.
func (ZDT1) NObjectives() int { return 2 }

// NewGenome implements MultiObjective.
func (z ZDT1) NewGenome(r *rng.Source) core.Genome {
	return randomUnitVector(z.Dim, r)
}

// Objectives implements MultiObjective.
func (z ZDT1) Objectives(gen core.Genome) []float64 {
	x := genes(gen)
	f1 := x[0]
	g := 0.0
	for _, v := range x[1:] {
		g += v
	}
	g = 1 + 9*g/float64(len(x)-1)
	f2 := g * (1 - math.Sqrt(f1/g))
	return []float64{f1, f2}
}

// Schaffer is Schaffer's single-variable bi-objective problem:
// f1 = x², f2 = (x−2)²; Pareto set is x ∈ [0, 2]. Genes are scaled from
// [0,1] to [-4, 6].
type Schaffer struct{}

// Name implements MultiObjective.
func (Schaffer) Name() string { return "schaffer" }

// NObjectives implements MultiObjective.
func (Schaffer) NObjectives() int { return 2 }

// NewGenome implements MultiObjective.
func (Schaffer) NewGenome(r *rng.Source) core.Genome { return randomUnitVector(1, r) }

// Objectives implements MultiObjective.
func (Schaffer) Objectives(gen core.Genome) []float64 {
	x := genes(gen)[0]*10 - 4
	return []float64{x * x, (x - 2) * (x - 2)}
}
