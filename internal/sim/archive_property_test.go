package sim

import (
	"testing"
	"testing/quick"

	"pga/internal/genome"
	"pga/internal/rng"
)

// TestArchiveMutualNonDominanceProperty: after any sequence of random
// insertions, no archived item dominates another and the size never
// exceeds the cap — the defining invariants of a Pareto archive.
func TestArchiveMutualNonDominanceProperty(t *testing.T) {
	check := func(seed uint16, nAdds uint8, capRaw uint8) bool {
		r := rng.New(uint64(seed) + 17)
		cap := int(capRaw%20) + 1
		a := NewArchive(cap)
		adds := int(nAdds%60) + 1
		for i := 0; i < adds; i++ {
			g := genome.RandomRealVector(1, 0, 1, r)
			objs := []float64{r.Range(0, 10), r.Range(0, 10)}
			a.Add(g, objs)
		}
		if a.Len() > cap {
			return false
		}
		items := a.Items()
		for i := range items {
			for j := range items {
				if i != j && Dominates(items[i].Objectives, items[j].Objectives) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestHypervolumeMonotoneProperty: adding a non-dominated point never
// decreases the hypervolume.
func TestHypervolumeMonotoneProperty(t *testing.T) {
	check := func(seed uint16) bool {
		r := rng.New(uint64(seed) + 23)
		ref := [2]float64{10, 10}
		var pts [][]float64
		prev := 0.0
		for i := 0; i < 20; i++ {
			pts = append(pts, []float64{r.Range(0, 10), r.Range(0, 10)})
			hv := Hypervolume2D(pts, ref)
			if hv < prev-1e-12 {
				return false
			}
			prev = hv
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
