package sim

import (
	"math"
	"testing"

	"pga/internal/genome"
)

func TestDominates(t *testing.T) {
	if !Dominates([]float64{1, 2}, []float64{2, 3}) {
		t.Fatal("clear domination missed")
	}
	if !Dominates([]float64{1, 3}, []float64{2, 3}) {
		t.Fatal("weak domination missed")
	}
	if Dominates([]float64{1, 3}, []float64{1, 3}) {
		t.Fatal("equal vectors dominate")
	}
	if Dominates([]float64{1, 4}, []float64{2, 3}) {
		t.Fatal("incomparable vectors dominate")
	}
}

func TestDominatesPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Dominates([]float64{1}, []float64{1, 2})
}

func g1(v float64) *genome.RealVector {
	g := genome.NewRealVector(1, 0, 1)
	g.Genes[0] = v
	return g
}

func TestArchiveBasics(t *testing.T) {
	a := NewArchive(10)
	if !a.Add(g1(0.1), []float64{1, 5}) {
		t.Fatal("first insert rejected")
	}
	if !a.Add(g1(0.2), []float64{5, 1}) {
		t.Fatal("incomparable insert rejected")
	}
	if a.Add(g1(0.3), []float64{6, 2}) {
		t.Fatal("dominated insert accepted")
	}
	if a.Len() != 2 {
		t.Fatalf("archive size %d", a.Len())
	}
	// A dominating point evicts both.
	if !a.Add(g1(0.4), []float64{0.5, 0.5}) {
		t.Fatal("dominating insert rejected")
	}
	if a.Len() != 1 {
		t.Fatalf("archive size after eviction %d", a.Len())
	}
}

func TestArchiveRejectsDuplicates(t *testing.T) {
	a := NewArchive(10)
	a.Add(g1(0.1), []float64{1, 2})
	if a.Add(g1(0.9), []float64{1, 2}) {
		t.Fatal("duplicate objectives accepted")
	}
}

func TestArchiveCapCrowding(t *testing.T) {
	a := NewArchive(3)
	// Non-dominated staircase.
	a.Add(g1(0.1), []float64{1, 10})
	a.Add(g1(0.2), []float64{5, 5})
	a.Add(g1(0.3), []float64{10, 1})
	if !a.Add(g1(0.4), []float64{5.1, 4.8}) {
		t.Fatal("full archive rejected a non-dominated point")
	}
	if a.Len() != 3 {
		t.Fatalf("cap violated: %d", a.Len())
	}
}

func TestArchiveClonesGenomes(t *testing.T) {
	a := NewArchive(5)
	g := g1(0.5)
	a.Add(g, []float64{1, 1})
	g.Genes[0] = 0.9
	if a.Items()[0].Genome.(*genome.RealVector).Genes[0] != 0.5 {
		t.Fatal("archive aliases inserted genome")
	}
}

func TestHypervolume2D(t *testing.T) {
	// Single point (1,1) with ref (3,3): rectangle 2x2 = 4.
	hv := Hypervolume2D([][]float64{{1, 1}}, [2]float64{3, 3})
	if hv != 4 {
		t.Fatalf("hv %v, want 4", hv)
	}
	// Staircase: (1,2) and (2,1) with ref (3,3): 2+1+... compute: sorted
	// by f1: (1,2): (3-1)*(3-2)=2; (2,1): (3-2)*(2-1)=1; total 3.
	hv = Hypervolume2D([][]float64{{2, 1}, {1, 2}}, [2]float64{3, 3})
	if hv != 3 {
		t.Fatalf("staircase hv %v, want 3", hv)
	}
	// Dominated point adds nothing.
	hv2 := Hypervolume2D([][]float64{{2, 1}, {1, 2}, {2.5, 2.5}}, [2]float64{3, 3})
	if hv2 != 3 {
		t.Fatalf("dominated point changed hv: %v", hv2)
	}
	// Points beyond the reference contribute nothing.
	if Hypervolume2D([][]float64{{5, 5}}, [2]float64{3, 3}) != 0 {
		t.Fatal("out-of-ref point contributed")
	}
}

func TestHypervolumeMoreFrontIsBigger(t *testing.T) {
	few := Hypervolume2D([][]float64{{1, 9}, {9, 1}}, [2]float64{10, 10})
	many := Hypervolume2D([][]float64{{1, 9}, {5, 5}, {9, 1}}, [2]float64{10, 10})
	if many <= few {
		t.Fatal("denser front did not increase hypervolume")
	}
}

func TestZDT1Objectives(t *testing.T) {
	z := ZDT1{Dim: 30}
	g := genome.NewRealVector(30, 0, 1) // all zeros: on the Pareto front
	objs := z.Objectives(g)
	if objs[0] != 0 || math.Abs(objs[1]-1) > 1e-12 {
		t.Fatalf("zdt1(0)=%v, want [0,1]", objs)
	}
	// x0=1, rest 0: f1=1, f2=0 — the other end of the front.
	g.Genes[0] = 1
	objs = z.Objectives(g)
	if objs[0] != 1 || math.Abs(objs[1]) > 1e-12 {
		t.Fatalf("zdt1 end=%v, want [1,0]", objs)
	}
	if z.NObjectives() != 2 || z.Name() == "" {
		t.Fatal("metadata wrong")
	}
}

func TestSchafferObjectives(t *testing.T) {
	s := Schaffer{}
	g := genome.NewRealVector(1, 0, 1)
	g.Genes[0] = 0.4 // x = 0
	objs := s.Objectives(g)
	if objs[0] != 0 || objs[1] != 4 {
		t.Fatalf("schaffer(0)=%v", objs)
	}
	g.Genes[0] = 0.6 // x = 2
	objs = s.Objectives(g)
	if objs[0] != 4 || objs[1] != 0 {
		t.Fatalf("schaffer(2)=%v", objs)
	}
}

func TestBuildScenarioShapes(t *testing.T) {
	for _, s := range Scenarios() {
		specs := buildScenario(s, 2)
		switch s {
		case S1:
			if len(specs) != 1 {
				t.Fatalf("%s: %d islands", s, len(specs))
			}
		case S6:
			if len(specs) != 3 {
				t.Fatalf("%s: %d islands, want 3", s, len(specs))
			}
			if len(specs[0].neighbors) != 2 {
				t.Fatalf("%s: hub degree %d", s, len(specs[0].neighbors))
			}
		default:
			if len(specs) != 2 {
				t.Fatalf("%s: %d islands, want 2", s, len(specs))
			}
		}
		if s.String() == "" {
			t.Fatal("empty scenario name")
		}
	}
}

func TestScenarioSpecialistsAreOneHot(t *testing.T) {
	specs := buildScenario(S5, 3)
	for i, sp := range specs {
		ones := 0
		for _, w := range sp.weights {
			if w == 1 {
				ones++
			} else if w != 0 {
				t.Fatalf("specialist %d has weight %v", i, w)
			}
		}
		if ones != 1 {
			t.Fatalf("specialist %d not one-hot", i)
		}
	}
}

func TestRunAllScenarios(t *testing.T) {
	for _, s := range Scenarios() {
		res := Run(Config{
			Problem:     ZDT1{Dim: 10},
			Scenario:    s,
			DemeSize:    20,
			Generations: 20,
			Seed:        1,
		})
		if res.Archive.Len() == 0 {
			t.Fatalf("%s: empty archive", s)
		}
		if res.Hypervolume <= 0 {
			t.Fatalf("%s: hypervolume %v", s, res.Hypervolume)
		}
		if res.Evaluations == 0 {
			t.Fatalf("%s: no evaluations", s)
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	run := func() float64 {
		return Run(Config{Problem: ZDT1{Dim: 8}, Scenario: S5, DemeSize: 16, Generations: 15, Seed: 7}).Hypervolume
	}
	if run() != run() {
		t.Fatal("SIM run not deterministic")
	}
}

func TestCommunicatingSpecialistsBeatIsolated(t *testing.T) {
	// The SIM paper's qualitative finding: specialists that exchange
	// individuals cover the front better than isolated specialists,
	// which cling to the objective extremes. Averaged over seeds, scored
	// with a tight hypervolume reference so only near-front points count.
	avg := func(s Scenario) float64 {
		sum := 0.0
		for seed := uint64(0); seed < 5; seed++ {
			sum += Run(Config{
				Problem: ZDT1{Dim: 10}, Scenario: s, DemeSize: 24,
				Generations: 40, HVRef: [2]float64{1.1, 1.1}, Seed: seed,
			}).Hypervolume
		}
		return sum / 5
	}
	isolated := avg(S4)
	ring := avg(S5)
	hub := avg(S6)
	if ring <= isolated {
		t.Fatalf("communicating specialists (%v) not better than isolated (%v)", ring, isolated)
	}
	if hub <= isolated {
		t.Fatalf("hub scenario (%v) not better than isolated (%v)", hub, isolated)
	}
}

func TestRunValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic without problem")
		}
	}()
	Run(Config{Scenario: S1})
}
