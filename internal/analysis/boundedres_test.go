package analysis

import "testing"

func TestBoundedRes(t *testing.T) {
	for _, fixture := range []string{
		"boundedres_bad.go",
		"boundedres_ok.go",
		"boundedres_x.go",
	} {
		t.Run(fixture, func(t *testing.T) {
			checkRule(t, BoundedRes(), fixture)
		})
	}
}

// TestBoundedResScope: the same seeded violations are silent outside the
// scoped communication packages.
func TestBoundedResScope(t *testing.T) {
	pkg := loadFixtureAs(t, "boundedres_bad.go", "pga/internal/operators")
	diags := RunAnalyzers("", []*Package{pkg}, []*Analyzer{BoundedRes()})
	if len(diags) != 0 {
		t.Fatalf("boundedres fired outside its scope: %v", diags)
	}
}
