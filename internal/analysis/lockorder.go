package analysis

// lockorder: deadlock-free mutex discipline.
//
// Two families of findings, both anchored at the acquisition site:
//
//  1. Lock-order cycles. Every function's lexical lock walk yields
//     same-body edges (B acquired while A held); on top of that, for
//     every call made while holding locks, the callee's propagated
//     Acquires set (with call-site argument substitution, so a helper
//     locking its *sync.Mutex parameter binds to the caller's concrete
//     lock) contributes interprocedural edges. A cycle in the resulting
//     global acquisition-order graph — including a self-loop, since Go
//     mutexes are not reentrant — is a potential deadlock: two
//     goroutines walking the cycle from different entry points can each
//     hold the lock the other wants.
//
//  2. Unlock-path discipline. Within one body, an acquisition with no
//     matching release (and no deferred release) never unlocks; a
//     return or panic lexically between an acquisition and its first
//     matching release can leave the critical section locked on an
//     early exit.
//
// The lock identity abstraction is shared with chantopo's channels: a
// named variable or a struct field, so all instances of a type share a
// field's lock in the order graph — exactly the granularity a
// per-instance mutex protects. The lexical walk under-approximates
// branches (linter optimism: no invented held locks), and unresolved
// callees contribute nothing.

import (
	"fmt"
	"go/token"
	"go/types"
	"sort"
)

// LockOrder builds the lockorder analyzer.
func LockOrder() *Analyzer {
	// The acquisition-order graph is global; compute once per Facts and
	// let whichever pass owns a position emit it, so findings land in
	// helper packages too.
	var cachedFacts *Facts
	var pending []chanDiag
	return &Analyzer{
		Name: "lockorder",
		Doc: "builds the global mutex acquisition-order graph from per-function " +
			"lock walks plus interprocedural held-set propagation, reporting " +
			"order cycles (potential deadlocks), re-acquisition self-loops, and " +
			"Lock-without-Unlock paths (early returns, panics) at the acquisition site",
		Run: func(pass *Pass) {
			if pass.Facts == nil {
				return
			}
			if pass.Facts != cachedFacts {
				cachedFacts = pass.Facts
				pending = computeLockOrder(pass.Facts)
			}
			for _, d := range pending {
				for _, f := range pass.Files {
					if f.FileStart <= d.pos && d.pos <= f.FileEnd {
						pass.Reportf(d.pos, "lockorder", "%s", d.msg)
						break
					}
				}
			}
		},
	}
}

// computeLockOrder produces the module-wide lockorder findings.
func computeLockOrder(facts *Facts) []chanDiag {
	var diags []chanDiag

	// Unlock-path discipline is purely body-local.
	for _, n := range facts.Graph.Nodes {
		if d := facts.Direct(n); d != nil {
			diags = append(diags, lockPathDiags(d.lockEvents)...)
		}
	}

	// Acquisition-order graph over lock identities.
	ids := map[types.Object]int{}
	var locks []types.Object
	idOf := func(o types.Object) int {
		if i, ok := ids[o]; ok {
			return i
		}
		ids[o] = len(locks)
		locks = append(locks, o)
		return len(locks) - 1
	}
	type orderSite struct {
		pos      token.Pos
		from, to types.Object
	}
	edgeSites := map[chanEdgeKey][]orderSite{}
	var keys []chanEdgeKey
	addEdge := func(from, to types.Object, pos token.Pos) {
		k := chanEdgeKey{from: idOf(from), to: idOf(to)}
		if _, ok := edgeSites[k]; !ok {
			keys = append(keys, k)
		}
		edgeSites[k] = append(edgeSites[k], orderSite{pos: pos, from: from, to: to})
	}
	for _, n := range facts.Graph.Nodes {
		d := facts.Direct(n)
		if d == nil {
			continue
		}
		for _, le := range d.lockEdges {
			addEdge(le.from, le.to, le.pos)
		}
		if d.heldAtCall == nil {
			continue
		}
		info := infoOf(n)
		for _, e := range n.Out {
			if e.Kind == EdgeSpawn || e.Site == nil {
				continue
			}
			held := d.heldAtCall[e.Site]
			if len(held) == 0 {
				continue
			}
			cs := facts.Summary(e.Callee)
			if cs == nil {
				continue
			}
			for _, acq := range cs.Acquires {
				obj := acq.Obj
				if acq.Param >= 0 {
					arg := calleeArg(e, cs, acq.Param)
					if arg == nil {
						continue
					}
					obj = refIdentOf(info, arg)
				}
				if obj == nil {
					continue
				}
				for _, h := range held {
					addEdge(h, obj, acq.Pos)
				}
			}
		}
	}

	comp := chanSCC(len(locks), keys)
	sizes := make([]int, len(locks))
	for _, c := range comp {
		sizes[c]++
	}
	seen := map[token.Pos]bool{}
	for _, k := range keys {
		if comp[k.from] != comp[k.to] {
			continue
		}
		if k.from != k.to && sizes[comp[k.from]] < 2 {
			continue
		}
		for _, st := range edgeSites[k] {
			if seen[st.pos] {
				continue
			}
			seen[st.pos] = true
			if k.from == k.to {
				diags = append(diags, chanDiag{pos: st.pos, msg: fmt.Sprintf(
					"lock %q is acquired while a path already holds it "+
						"(Go mutexes are not reentrant: this self-deadlocks)",
					st.to.Name())})
				continue
			}
			diags = append(diags, chanDiag{pos: st.pos, msg: fmt.Sprintf(
				"acquiring %q while holding %q closes a lock-order cycle "+
					"(potential deadlock); acquire locks in one global order",
				st.to.Name(), st.from.Name())})
		}
	}
	sort.Slice(diags, func(i, j int) bool { return diags[i].pos < diags[j].pos })
	return diags
}

// lockPathDiags checks one body's lock trace for acquisitions that can
// escape their critical section locked.
func lockPathDiags(events []lockEvent) []chanDiag {
	var out []chanDiag
	for i, ev := range events {
		if ev.kind != evAcquire {
			continue
		}
		deferred := false
		for _, e2 := range events {
			if e2.kind == evDeferRelease && e2.obj == ev.obj && e2.read == ev.read {
				deferred = true
				break
			}
		}
		if deferred {
			continue
		}
		verb := "Lock"
		if ev.read {
			verb = "RLock"
		}
		relPos := token.NoPos
		for _, e2 := range events[i+1:] {
			if e2.kind == evRelease && e2.obj == ev.obj && e2.read == ev.read {
				relPos = e2.pos
				break
			}
		}
		if relPos == token.NoPos {
			out = append(out, chanDiag{pos: ev.pos, msg: fmt.Sprintf(
				"%s of %q is never released in this function; unlock it or defer the unlock",
				verb, ev.obj.Name())})
			continue
		}
		for _, e2 := range events[i+1:] {
			if e2.pos >= relPos {
				break
			}
			if e2.kind == evReturn || e2.kind == evPanic {
				what := "a return"
				if e2.kind == evPanic {
					what = "a panic"
				}
				out = append(out, chanDiag{pos: ev.pos, msg: fmt.Sprintf(
					"%s between this %s of %q and its unlock leaves the lock held; defer the unlock",
					what, verb, ev.obj.Name())})
				break
			}
		}
	}
	return out
}
