package analysis

import "testing"

func TestNoRawRand(t *testing.T) {
	tests := []struct {
		name    string
		fixture string
	}{
		{"flags raw rand imports and uses", "norawrand_bad.go"},
		{"silent on seeded streams", "norawrand_ok.go"},
		{"flags cross-package taint chains", "norawrand_chain.go"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			checkRule(t, NoRawRand(), tc.fixture)
		})
	}
}

func TestNoRawRandExemptsRNGPackage(t *testing.T) {
	// The same violating file is legal inside internal/rng: that package
	// owns generator internals.
	pkg := loadFixtureAs(t, "norawrand_bad.go", "pga/internal/rng")
	diags := RunAnalyzers("", []*Package{pkg}, []*Analyzer{NoRawRand()})
	if len(diags) != 0 {
		t.Fatalf("exempt package still reported: %v", diags)
	}
}
