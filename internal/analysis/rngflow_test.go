package analysis

import "testing"

func TestRngFlowBad(t *testing.T) { checkRule(t, RngFlow(), "rngflow_bad.go") }
func TestRngFlowOk(t *testing.T)  { checkRule(t, RngFlow(), "rngflow_ok.go") }

// TestRngFlowBeyondSharedRNG pins the reason the rule exists: every
// violation in rngflow_bad.go hides behind a named function or a helper
// chain, so the local closure-capture rule sees none of them.
func TestRngFlowBeyondSharedRNG(t *testing.T) {
	diags := runFixture(t, SharedRNG(), "rngflow_bad.go")
	if len(diags) != 0 {
		t.Errorf("sharedrng unexpectedly caught %d of rngflow_bad.go's violations: %v",
			len(diags), diags)
	}
}
