package analysis

// sharedrng: one goroutine, one stream.
//
// internal/rng.Source is deliberately not synchronized: the whole point
// of splittable streams is that deme i's stream is private to deme i's
// goroutine, making parallel runs reproducible regardless of scheduling.
// A *rng.Source (or *math/rand.Rand) captured by a `go func` closure AND
// also used outside that goroutine is a data race that `go test -race`
// only catches when the schedules actually collide — and even when it
// doesn't crash, interleaved draws destroy replayability silently. The
// fix is always the same: Split() a child stream and move it into the
// goroutine, or pass the stream as a call argument evaluated at spawn.

import (
	"go/ast"
	"go/types"
)

// SharedRNG builds the sharedrng analyzer.
func SharedRNG() *Analyzer {
	return &Analyzer{
		Name: "sharedrng",
		Doc: "flags an *rng.Source or *rand.Rand captured by a go-closure while also " +
			"referenced outside it — a data race -race only catches when schedules " +
			"collide, and a silent determinism break even when it does not",
		Run: runSharedRNG,
	}
}

func runSharedRNG(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			fd, ok := n.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				return true
			}
			checkFuncForSharedRNG(pass, fd)
			return true
		})
	}
}

// rngCapture is one RNG-typed variable captured by one go-closure.
type rngCapture struct {
	obj *types.Var
	lit *ast.FuncLit
	id  *ast.Ident // first capturing identifier, for reporting
}

// checkFuncForSharedRNG inspects one function body: collects RNG streams
// captured by `go func(){...}()` closures, then reports any that are
// also referenced outside their goroutine.
func checkFuncForSharedRNG(pass *Pass, fd *ast.FuncDecl) {
	var captures []rngCapture
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		lit, ok := g.Call.Fun.(*ast.FuncLit)
		if !ok {
			return true
		}
		seen := map[*types.Var]bool{}
		ast.Inspect(lit.Body, func(m ast.Node) bool {
			id, ok := m.(*ast.Ident)
			if !ok {
				return true
			}
			obj, ok := pass.Info.Uses[id].(*types.Var)
			if !ok || obj.IsField() || seen[obj] {
				return true
			}
			// Captured = declared outside the closure.
			if obj.Pos() >= lit.Pos() && obj.Pos() <= lit.End() {
				return true
			}
			if !isRNGStream(obj.Type()) {
				return true
			}
			seen[obj] = true
			captures = append(captures, rngCapture{obj: obj, lit: lit, id: id})
			return true
		})
		return true
	})

	for _, cap := range captures {
		if usedOutsideClosure(pass, fd, cap) {
			pass.Reportf(cap.id.Pos(), "sharedrng",
				"rng stream %q is captured by this goroutine and also used outside it; "+
					"Split() a child stream per goroutine (or pass it as a call argument)",
				cap.obj.Name())
		}
	}
}

// usedOutsideClosure reports whether cap.obj is referenced anywhere in fd
// outside cap.lit. The defining identifier does not count (info.Defs, not
// Uses), so the canonical `child := r.Split(); go func(){ child... }()`
// ownership transfer stays clean.
func usedOutsideClosure(pass *Pass, fd *ast.FuncDecl, cap rngCapture) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		if n == ast.Node(cap.lit) {
			return false // skip the goroutine's own body
		}
		if id, ok := n.(*ast.Ident); ok && pass.Info.Uses[id] == types.Object(cap.obj) {
			found = true
		}
		return true
	})
	return found
}

// isRNGStream reports whether t is a pointer to an unsynchronized random
// stream: internal/rng's Source or math/rand's Rand (either version).
func isRNGStream(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	switch {
	case obj.Name() == "Source" && obj.Pkg().Name() == "rng":
		return true
	case obj.Name() == "Rand" && obj.Pkg().Name() == "rand":
		return true
	}
	return false
}
