package analysis

// waitgroup: sync.WaitGroup counter discipline.
//
// Two misuse patterns, both races on the counter:
//
//   - Add inside the spawned goroutine. wg.Add must happen-before the
//     wg.Wait that reaps the goroutine; an Add executed on the spawned
//     side races Wait — if Wait runs first it sees a zero counter and
//     returns while the worker is still alive. The check is
//     interprocedural: a spawned function's propagated WGAdds facts
//     (with spawn-site argument substitution, so a helper Adding to its
//     *sync.WaitGroup parameter is charged correctly) flag the Add site.
//   - Add after Wait in the same body. Reusing a WaitGroup before the
//     previous Wait has returned is documented as a race; lexically
//     Adding below a Wait on the same counter is the static shadow of
//     that mistake.
//
// The WaitGroup identity abstraction is the same var/field/param one the
// channel and lock facts use. A spawned goroutine that is itself
// WaitGroup-registered before the spawn (transport's accept loop) is a
// deliberate pattern the rule cannot see is safe — such sites carry a
// justified //pgalint:ignore.

import (
	"go/token"
	"sort"
)

// WaitGroupMisuse builds the waitgroup analyzer.
func WaitGroupMisuse() *Analyzer {
	var cachedFacts *Facts
	var pending []chanDiag
	return &Analyzer{
		Name: "waitgroup",
		Doc: "detects WaitGroup counter races: Add executed inside a spawned " +
			"goroutine (races the reaping Wait; found interprocedurally via " +
			"summary WGAdds facts) and Add lexically after Wait on the same " +
			"counter in one body",
		Run: func(pass *Pass) {
			if pass.Facts == nil {
				return
			}
			if pass.Facts != cachedFacts {
				cachedFacts = pass.Facts
				pending = computeWaitGroup(pass.Facts)
			}
			for _, d := range pending {
				for _, f := range pass.Files {
					if f.FileStart <= d.pos && d.pos <= f.FileEnd {
						pass.Reportf(d.pos, "waitgroup", "%s", d.msg)
						break
					}
				}
			}
		},
	}
}

// computeWaitGroup produces the module-wide waitgroup findings.
func computeWaitGroup(facts *Facts) []chanDiag {
	seen := map[token.Pos]bool{}
	var diags []chanDiag
	add := func(pos token.Pos, msg string) {
		if pos == token.NoPos || seen[pos] {
			return
		}
		seen[pos] = true
		diags = append(diags, chanDiag{pos: pos, msg: msg})
	}
	for _, n := range facts.Graph.Nodes {
		// Adds reached through a spawn edge execute on the spawned side.
		for _, e := range n.Out {
			if e.Kind != EdgeSpawn {
				continue
			}
			cs := facts.Summary(e.Callee)
			if cs == nil {
				continue
			}
			for _, w := range cs.WGAdds {
				// Confirm the fact binds to a real counter at this spawn
				// site; an unbindable parameter fact is dropped (optimism).
				if w.Param >= 0 {
					arg := calleeArg(e, cs, w.Param)
					if arg == nil || refIdentOf(infoOf(n), arg) == nil {
						continue
					}
				}
				add(w.Pos, "WaitGroup.Add executed inside a spawned goroutine "+
					"races the reaping Wait (a Wait that runs first sees a zero "+
					"counter); Add on the spawning side, before the go statement")
			}
		}
		// Add lexically after Wait on the same counter, same body.
		d := facts.Direct(n)
		if d == nil || len(d.wgWaits) == 0 {
			continue
		}
		for _, a := range d.WGAdds {
			for _, w := range d.wgWaits {
				if a.Param == w.Param && a.Obj == w.Obj && w.Pos < a.Pos {
					add(a.Pos, "WaitGroup.Add after Wait on the same counter "+
						"reuses the WaitGroup before the previous Wait returns "+
						"(documented race); use a fresh WaitGroup per batch")
					break
				}
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool { return diags[i].pos < diags[j].pos })
	return diags
}
