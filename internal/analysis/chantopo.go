package analysis

// chantopo: static deadlock detection over the channel topology.
//
// blockingsend polices the form of each send; chantopo polices the shape
// they compose into. The communication runtimes wire goroutines into a
// message topology (ring/star/grid migration, farm dispatch, gossip).
// Even when individual sends look harmless, a *cycle* of unconditionally
// blocking sends can deadlock the whole topology once buffers fill: the
// classic ring where every deme blocks sending to its successor while
// its own inbox is full.
//
// The model: a channel is identified by the variable or struct field
// that carries it (field-level abstraction — all instances of a type
// share the field's identity; elements of a channel slice share the
// collection's). Each goroutine body contributes edges recv→send: if it
// receives from A and may block sending to B (classified exactly like
// blockingsend — only a select with a default or escape case is
// non-blocking), then draining A requires progress on B. A strongly
// connected component of that graph — a cycle, or a self-loop — means
// the topology can reach a state where every participant waits on the
// next; each blocking send on the cycle is reported.
//
// Goroutine bodies come from the summary engine: every function of a
// scoped package (with helper-call chains already folded in by
// propagation, wherever the helpers live), plus every function spawned
// via `go` from scoped code, with channel arguments substituted at the
// spawn site. Summaries do not carry channel facts across spawn edges,
// so each goroutine's endpoint set is exactly its own.

import (
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// ChanTopoConfig configures the chantopo analyzer.
type ChanTopoConfig struct {
	// ScopePaths are the package patterns whose functions and spawned
	// goroutines form the modelled topology.
	ScopePaths []string
}

// DefaultChanTopoConfig returns the repository's communication runtimes
// (the blockingsend scope).
func DefaultChanTopoConfig() ChanTopoConfig {
	return ChanTopoConfig{ScopePaths: DefaultBlockingSendConfig().ScopePaths}
}

// ChanTopo builds the chantopo analyzer with the default configuration.
func ChanTopo() *Analyzer { return ChanTopoWith(DefaultChanTopoConfig()) }

// chanDiag is one pending report (emitted by whichever pass owns the
// position, so findings land in helper packages too).
type chanDiag struct {
	pos token.Pos
	msg string
}

// ChanTopoWith builds the chantopo analyzer with cfg (test hook).
func ChanTopoWith(cfg ChanTopoConfig) *Analyzer {
	// The topology is global; compute once per Facts and filter reports
	// per pass.
	var cachedFacts *Facts
	var pending []chanDiag
	return &Analyzer{
		Name: "chantopo",
		Doc: "models the static channel graph of the communication runtimes " +
			"(channels as variables/struct fields, goroutines as graph edges " +
			"recv→blocking-send) and reports cycles of unconditionally blocking " +
			"sends as potential topology deadlocks",
		Run: func(pass *Pass) {
			if pass.Facts == nil {
				return
			}
			if pass.Facts != cachedFacts {
				cachedFacts = pass.Facts
				pending = computeChanTopo(pass.Facts, cfg)
			}
			for _, d := range pending {
				for _, f := range pass.Files {
					if f.FileStart <= d.pos && d.pos <= f.FileEnd {
						pass.Reportf(d.pos, "chantopo", "%s", d.msg)
						break
					}
				}
			}
		},
	}
}

// chanInstance is one modelled goroutine body with concrete endpoints.
type chanInstance struct {
	name  string
	sends []ChanFact
	recvs []ChanFact
}

// computeChanTopo builds the channel graph and returns the deadlock
// findings.
func computeChanTopo(facts *Facts, cfg ChanTopoConfig) []chanDiag {
	inScope := func(pkg *Package) bool {
		if pkg == nil {
			return false
		}
		for _, pattern := range cfg.ScopePaths {
			if pathMatch(pattern, pkg.Path) {
				return true
			}
		}
		return false
	}

	var instances []chanInstance
	concrete := func(facts []ChanFact) []ChanFact {
		var out []ChanFact
		for _, cf := range facts {
			if cf.Param < 0 && cf.Obj != nil {
				out = append(out, cf)
			}
		}
		return out
	}
	for _, n := range facts.Graph.Nodes {
		if inScope(n.Pkg) {
			s := facts.Summary(n)
			instances = append(instances, chanInstance{
				name:  n.Name,
				sends: concrete(s.Sends),
				recvs: concrete(s.Recvs),
			})
		}
		// Spawned out-of-scope functions join the topology with channel
		// arguments bound at the go statement.
		for _, e := range n.Out {
			if e.Kind != EdgeSpawn || !inScope(n.Pkg) || inScope(e.Callee.Pkg) {
				continue
			}
			src := facts.Summary(e.Callee)
			inst := chanInstance{name: e.Callee.Name + " (spawned by " + n.Name + ")"}
			bind := func(in []ChanFact) []ChanFact {
				var out []ChanFact
				for _, cf := range in {
					if cf.Param < 0 {
						if cf.Obj != nil {
							out = append(out, cf)
						}
						continue
					}
					arg := calleeArg(e, src, cf.Param)
					if arg == nil {
						continue
					}
					if obj := chanIdentOf(n.Pkg.Info, arg); obj != nil {
						out = append(out, ChanFact{Param: -1, Obj: obj, Pos: cf.Pos})
					}
				}
				return out
			}
			inst.sends = bind(src.Sends)
			inst.recvs = bind(src.Recvs)
			instances = append(instances, inst)
		}
	}

	// Channel graph: ids in first-seen order for determinism.
	ids := map[types.Object]int{}
	var chans []types.Object
	idOf := func(obj types.Object) int {
		if id, ok := ids[obj]; ok {
			return id
		}
		id := len(chans)
		ids[obj] = id
		chans = append(chans, obj)
		return id
	}
	type sendSite struct {
		pos  token.Pos
		inst string
	}
	edges := map[chanEdgeKey][]sendSite{}
	var keys []chanEdgeKey
	for _, inst := range instances {
		for _, r := range inst.recvs {
			for _, s := range inst.sends {
				k := chanEdgeKey{from: idOf(r.Obj), to: idOf(s.Obj)}
				if edges[k] == nil {
					keys = append(keys, k)
				}
				dup := false
				for _, have := range edges[k] {
					if have.pos == s.Pos {
						dup = true
						break
					}
				}
				if !dup {
					edges[k] = append(edges[k], sendSite{pos: s.Pos, inst: inst.name})
				}
			}
		}
	}

	scc := chanSCC(len(chans), keys)
	// Collect findings: edges inside a nontrivial SCC, or self-loops.
	sizes := map[int]int{}
	for _, comp := range scc {
		sizes[comp]++
	}
	seenPos := map[token.Pos]bool{}
	var diags []chanDiag
	for _, k := range keys {
		if scc[k.from] != scc[k.to] {
			continue
		}
		if sizes[scc[k.from]] < 2 && k.from != k.to {
			continue
		}
		cycle := cycleText(chans, scc, scc[k.from])
		for _, site := range edges[k] {
			if seenPos[site.pos] {
				continue
			}
			seenPos[site.pos] = true
			diags = append(diags, chanDiag{
				pos: site.pos,
				msg: "blocking send on channel \"" + chans[k.to].Name() + "\" (in " + site.inst +
					", which consumes from \"" + chans[k.from].Name() + "\") closes the channel cycle " +
					cycle + ": when buffers fill, every goroutine on the cycle waits on the " +
					"next — guard the send with a select holding a default or escape case",
			})
		}
	}
	sort.Slice(diags, func(i, j int) bool { return diags[i].pos < diags[j].pos })
	return diags
}

// cycleText renders the members of one channel SCC.
func cycleText(chans []types.Object, scc []int, comp int) string {
	var names []string
	for i, c := range scc {
		if c == comp {
			names = append(names, chans[i].Name())
		}
	}
	sort.Strings(names)
	if len(names) == 1 {
		return names[0] + " → " + names[0]
	}
	return strings.Join(names, " → ") + " → " + names[0]
}

// chanEdgeKey is one recv→send edge of the channel graph.
type chanEdgeKey struct{ from, to int }

// chanSCC computes strongly connected components (Tarjan) over the
// channel graph, returning each node's component id.
func chanSCC(n int, keys []chanEdgeKey) []int {
	adj := make([][]int, n)
	for _, k := range keys {
		adj[k.from] = append(adj[k.from], k.to)
	}
	comp := make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	var stack []int
	next := 1
	comps := 0
	var visit func(v int)
	visit = func(v int) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if index[w] == 0 {
				visit(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp[w] = comps
				if w == v {
					break
				}
			}
			comps++
		}
	}
	for v := 0; v < n; v++ {
		if index[v] == 0 {
			visit(v)
		}
	}
	return comp
}
