// Package analysis implements pgalint, the framework-specific static
// analysis suite behind cmd/pgalint.
//
// The library's reproducibility story rests on two invariants that the Go
// compiler cannot check:
//
//  1. Determinism — every stochastic choice must be drawn from a seeded,
//     splittable *rng.Source stream (internal/rng), and no evolution path
//     may observe the wall clock. This is what lets experiments E1–E15
//     replay bit-for-bit for a given seed.
//  2. Non-blocking communication — inter-deme messaging must never be able
//     to deadlock: channel sends in the communication runtimes happen
//     under select with an escape, goroutines are WaitGroup-registered or
//     cancellable, and per-goroutine RNG streams are never shared.
//
// PR 1 added the runtime half of this contract (internal/supervise); this
// package is the compile-time half. It type-checks every package of the
// module using only the standard library (go/parser, go/ast, go/types —
// the module stays zero-dependency) and runs a registry of analyzers,
// each reporting "file:line: [rule] message" diagnostics with optional
// machine-readable JSON output.
//
// Diagnostics are suppressed per line with a directive comment:
//
//	//pgalint:ignore rule1,rule2 justification
//
// placed either on the offending line or on the line immediately above
// it. The justification is mandatory and machine-checked: a directive
// whose rule list is not followed by a non-empty justification is itself
// reported (rule name "ignore"), and that finding cannot be suppressed —
// an ignore asserts the pattern is provably safe, and the assertion is
// worthless without the argument.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// Diagnostic is one finding of one rule. File is relative to the module
// root so output (and the JSON golden files) are stable across machines.
type Diagnostic struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
}

// String renders the canonical "file:line:col: [rule] message" form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.File, d.Line, d.Col, d.Rule, d.Message)
}

// Pass is the per-package unit of work handed to each analyzer.
type Pass struct {
	// Fset maps token positions for every file of the package.
	Fset *token.FileSet
	// Files are the package's non-test source files. pgalint analyzes
	// production code only; _test.go files may intentionally use time,
	// goroutine and randomness patterns the rules forbid.
	Files []*ast.File
	// PkgPath is the import path (e.g. "pga/internal/island").
	PkgPath string
	// Pkg is the type-checked package; nil if type checking failed hard.
	Pkg *types.Package
	// Info holds type information for the files. Always non-nil, but
	// possibly partial when the package had type errors — analyzers must
	// tolerate missing entries.
	Info *types.Info
	// Facts is the interprocedural layer (call graph + summaries),
	// computed once per RunAnalyzers call over every analyzed package and
	// shared by all passes. Never nil under RunAnalyzers; may be nil when
	// a rule is driven manually.
	Facts *Facts

	report func(pos token.Pos, rule, msg string)
}

// Reportf records a diagnostic for the given position.
func (p *Pass) Reportf(pos token.Pos, rule, format string, args ...any) {
	p.report(pos, rule, fmt.Sprintf(format, args...))
}

// Analyzer is one named rule.
type Analyzer struct {
	// Name is the rule identifier used in output and ignore directives.
	Name string
	// Doc is a one-paragraph description of the invariant the rule
	// protects.
	Doc string
	// Run inspects one package and reports findings via pass.Reportf.
	Run func(pass *Pass)
}

// Registry returns the default analyzer suite with default configuration.
func Registry() []*Analyzer {
	return []*Analyzer{
		NoRawRand(),
		NoWallClock(),
		BlockingSend(),
		SharedRNG(),
		GoroLeak(),
		HiddenAlloc(),
		RngFlow(),
		Purity(),
		ChanTopo(),
		LockOrder(),
		BoundedRes(),
		WaitGroupMisuse(),
		DrawShapeRule(),
		DrawParityRule(),
	}
}

// ruleAliases maps retired rule names to their successors: a directive
// naming the retired rule keeps suppressing the successor's findings, so
// existing //pgalint:ignore comments survive rule renames (ctxleak was
// subsumed by goroleak in PR 7).
var ruleAliases = map[string]string{"ctxleak": "goroleak"}

// ignoreDirective is the comment prefix of a suppression.
const ignoreDirective = "pgalint:ignore"

// ignoreIndex maps file → line → set of suppressed rule names ("all"
// suppresses every rule).
type ignoreIndex map[string]map[int]map[string]bool

// buildIgnoreIndex scans the files' comments for //pgalint:ignore
// directives. A directive suppresses its rules on the directive's own
// line and on the line immediately below, so it can sit either at the end
// of the offending line or on its own line above it.
func buildIgnoreIndex(fset *token.FileSet, files []*ast.File) ignoreIndex {
	idx := ignoreIndex{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, ignoreDirective) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, ignoreDirective))
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				m := idx[pos.Filename]
				if m == nil {
					m = map[int]map[string]bool{}
					idx[pos.Filename] = m
				}
				for _, line := range []int{pos.Line, pos.Line + 1} {
					set := m[line]
					if set == nil {
						set = map[string]bool{}
						m[line] = set
					}
					for _, r := range strings.Split(fields[0], ",") {
						if r = strings.TrimSpace(r); r != "" {
							set[r] = true
						}
					}
				}
			}
		}
	}
	return idx
}

// suppressed reports whether rule is ignored at the given position,
// honoring retired-rule aliases.
func (idx ignoreIndex) suppressed(pos token.Position, rule string) bool {
	m := idx[pos.Filename]
	if m == nil {
		return false
	}
	set := m[pos.Line]
	if set == nil {
		return false
	}
	if set[rule] || set["all"] {
		return true
	}
	for retired, successor := range ruleAliases {
		if successor == rule && set[retired] {
			return true
		}
	}
	return false
}

// RunAnalyzers executes every analyzer over every package and returns the
// surviving (non-suppressed) diagnostics sorted by file, line, column and
// rule. File paths are reported relative to root when possible.
func RunAnalyzers(root string, pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	diags, _ := RunAnalyzersTimed(root, pkgs, analyzers, nil)
	return diags
}

// RuleTiming records one rule's total wall time across all packages.
type RuleTiming struct {
	// Rule is the rule name; the synthetic "(summaries)" entry covers
	// call-graph and summary construction, shared by every rule.
	Rule string
	// Nanos is the elapsed wall time in nanoseconds.
	Nanos int64
}

// RunAnalyzersTimed is RunAnalyzers with per-rule timing. The clock is
// injected (monotonic nanoseconds, e.g. time.Now().UnixNano from the
// caller) because this package is itself subject to the nowallclock
// contract; a nil now skips timing.
func RunAnalyzersTimed(root string, pkgs []*Package, analyzers []*Analyzer, now func() int64) ([]Diagnostic, []RuleTiming) {
	var diags []Diagnostic
	var timings []RuleTiming
	clock := func() int64 {
		if now == nil {
			return 0
		}
		return now()
	}

	start := clock()
	facts := ComputeFacts(pkgs)
	ignores := make([]ignoreIndex, len(pkgs))
	passes := make([]*Pass, len(pkgs))
	for i, pkg := range pkgs {
		ignores[i] = buildIgnoreIndex(pkg.Fset, pkg.Files)
		passes[i] = &Pass{
			Fset:    pkg.Fset,
			Files:   pkg.Files,
			PkgPath: pkg.Path,
			Pkg:     pkg.Types,
			Info:    pkg.Info,
			Facts:   facts,
		}
		// The justification check is part of the core contract, not a
		// registry rule, and deliberately bypasses suppression: an ignore
		// cannot ignore its own missing justification.
		diags = append(diags, checkIgnoreJustifications(root, pkg)...)
	}
	if now != nil {
		timings = append(timings, RuleTiming{Rule: "(summaries)", Nanos: clock() - start})
	}

	for _, a := range analyzers {
		ruleStart := clock()
		for i, pkg := range pkgs {
			pass := passes[i]
			idx := ignores[i]
			pass.report = func(pos token.Pos, rule, msg string) {
				p := pkg.Fset.Position(pos)
				if idx.suppressed(p, rule) {
					return
				}
				diags = append(diags, Diagnostic{
					File:    relPath(root, p.Filename),
					Line:    p.Line,
					Col:     p.Column,
					Rule:    rule,
					Message: msg,
				})
			}
			a.Run(pass)
		}
		if now != nil {
			timings = append(timings, RuleTiming{Rule: a.Name, Nanos: clock() - ruleStart})
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Rule < b.Rule
	})
	return diags, timings
}

// checkIgnoreJustifications reports every //pgalint:ignore directive in
// pkg whose rule list is not followed by a non-empty justification.
func checkIgnoreJustifications(root string, pkg *Package) []Diagnostic {
	var diags []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, ignoreDirective) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, ignoreDirective))
				fields := strings.Fields(rest)
				msg := ""
				switch {
				case len(fields) == 0:
					msg = "pgalint:ignore directive names no rules; write " +
						"//pgalint:ignore rule1,rule2 <justification>"
				case len(fields) == 1:
					msg = "pgalint:ignore directive has no justification; an ignore " +
						"asserts the pattern is provably safe — state why"
				}
				if msg == "" {
					continue
				}
				p := pkg.Fset.Position(c.Pos())
				diags = append(diags, Diagnostic{
					File:    relPath(root, p.Filename),
					Line:    p.Line,
					Col:     p.Column,
					Rule:    "ignore",
					Message: msg,
				})
			}
		}
	}
	return diags
}

// CountIgnoreDirectives counts the //pgalint:ignore directives across
// pkgs — the metric behind the suppression ratchet (`pgalint -baseline`):
// the count may only grow by touching the checked-in baseline in review.
func CountIgnoreDirectives(pkgs []*Package) int {
	count := 0
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
					if strings.HasPrefix(text, ignoreDirective) {
						count++
					}
				}
			}
		}
	}
	return count
}

// relPath makes path relative to root, falling back to the original.
func relPath(root, path string) string {
	if root == "" {
		return path
	}
	rel, err := filepath.Rel(root, path)
	if err != nil || strings.HasPrefix(rel, "..") {
		return path
	}
	return filepath.ToSlash(rel)
}

// pathMatch reports whether pkgPath matches pattern: an exact import path,
// or a "prefix/..." wildcard covering the prefix and everything below it.
func pathMatch(pattern, pkgPath string) bool {
	if strings.HasSuffix(pattern, "/...") {
		prefix := strings.TrimSuffix(pattern, "/...")
		return pkgPath == prefix || strings.HasPrefix(pkgPath, prefix+"/")
	}
	return pkgPath == pattern
}

// enclosingFunc returns the FuncDecl of file that contains pos, or nil.
func enclosingFunc(file *ast.File, pos token.Pos) *ast.FuncDecl {
	for _, decl := range file.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok && fd.Pos() <= pos && pos <= fd.End() {
			return fd
		}
	}
	return nil
}

// usedPackage resolves an identifier to the package it names (import
// alias), or nil.
func usedPackage(info *types.Info, id *ast.Ident) *types.Package {
	if info == nil {
		return nil
	}
	if pn, ok := info.Uses[id].(*types.PkgName); ok {
		return pn.Imported()
	}
	return nil
}
