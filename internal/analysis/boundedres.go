package analysis

// boundedres: the communication hot paths must run in bounded memory.
//
// PR 6's transport established the contract: per-peer queues are
// fixed-capacity with drop-oldest, channels that cross goroutines are
// buffered, and nothing on the steady-state path grows without bound.
// This rule enforces two halves of that contract inside the scoped
// packages (transport, supervise, island):
//
//   - no unbuffered channels: make(chan T) without a capacity is a
//     rendezvous — a send blocks until a receiver arrives, which is
//     exactly the coupling the pump design avoids. Pure signal channels
//     (chan struct{}, closed rather than sent to) are exempt.
//   - no unbounded growth: an append without a reserving make whose
//     target is a struct field or package-level variable accumulates
//     across calls — a per-peer queue that outlives the statement. The
//     growth facts come off the interprocedural summaries, so a helper
//     growing its *[]T parameter is charged to the hot caller's slice.
//
// Cold paths (setup, scripted fault plans, failure bookkeeping bounded
// elsewhere) are exempted by package-qualified function name, mirroring
// hiddenalloc's Hot/Cold idiom.

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// BoundedResConfig scopes the rule and lists its cold-path exemptions.
type BoundedResConfig struct {
	// ScopePaths are the packages whose hot paths the bound applies to
	// (exact path or prefix/...).
	ScopePaths []string
	// Cold lists package-qualified functions ("pkg/path.Func" or
	// "pkg/path.Type.Method") whose growth is bounded by construction
	// and exempt from the append check.
	Cold []string
}

// DefaultBoundedResConfig scopes boundedres to the communication layers.
func DefaultBoundedResConfig() BoundedResConfig {
	return BoundedResConfig{
		ScopePaths: []string{
			"pga/internal/transport",
			"pga/internal/supervise",
			"pga/internal/island",
		},
		Cold: []string{
			// Fault plans are scripted before the run starts stepping.
			"pga/internal/supervise.FaultPlan.Add",
			// Failure-path bookkeeping, bounded by the per-deme restart
			// budget (MaxRestarts), not by the statement.
			"pga/internal/supervise.Supervisor.Restart",
		},
	}
}

// BoundedRes builds the boundedres analyzer with default configuration.
func BoundedRes() *Analyzer { return BoundedResWith(DefaultBoundedResConfig()) }

// BoundedResWith builds the boundedres analyzer with cfg (test hook).
func BoundedResWith(cfg BoundedResConfig) *Analyzer {
	var cachedFacts *Facts
	var pending []chanDiag
	return &Analyzer{
		Name: "boundedres",
		Doc: "requires statically bounded resources on the transport/supervise/" +
			"island hot paths: no unbuffered channels (rendezvous coupling the " +
			"pumps forbid; chan struct{} signals exempt) and no unbounded append " +
			"growth on struct fields or globals (per-peer queues must be " +
			"fixed-capacity drop-oldest)",
		Run: func(pass *Pass) {
			if pass.Facts == nil {
				return
			}
			if pass.Facts != cachedFacts {
				cachedFacts = pass.Facts
				pending = computeBoundedRes(pass.Facts, cfg)
			}
			for _, d := range pending {
				for _, f := range pass.Files {
					if f.FileStart <= d.pos && d.pos <= f.FileEnd {
						pass.Reportf(d.pos, "boundedres", "%s", d.msg)
						break
					}
				}
			}
			if inBoundedScope(cfg, pass.PkgPath) {
				checkUnbufferedChans(pass)
			}
		},
	}
}

// inBoundedScope reports whether pkgPath falls under cfg.ScopePaths.
func inBoundedScope(cfg BoundedResConfig, pkgPath string) bool {
	for _, p := range cfg.ScopePaths {
		if pathMatch(p, pkgPath) {
			return true
		}
	}
	return false
}

// computeBoundedRes collects the unbounded-growth findings from the
// propagated summaries of every scoped function.
func computeBoundedRes(facts *Facts, cfg BoundedResConfig) []chanDiag {
	// Cold functions exempt every growth site lexically inside them, so
	// facts propagated out of a cold body stay exempt wherever observed.
	type posRange struct{ lo, hi token.Pos }
	var cold []posRange
	coldSet := map[string]bool{}
	for _, name := range cfg.Cold {
		coldSet[name] = true
	}
	for _, n := range facts.Graph.Nodes {
		if coldSet[n.Name] { // Node.Name is already package-qualified
			cold = append(cold, posRange{lo: n.Pos(), hi: n.End()})
		}
	}
	inCold := func(pos token.Pos) bool {
		for _, r := range cold {
			if r.lo <= pos && pos <= r.hi {
				return true
			}
		}
		return false
	}

	seen := map[token.Pos]bool{}
	var diags []chanDiag
	for _, n := range facts.Graph.Nodes {
		if n.Pkg == nil || !inBoundedScope(cfg, n.Pkg.Path) {
			continue
		}
		s := facts.Summary(n)
		if s == nil {
			continue
		}
		for _, g := range s.Grows {
			if g.Param >= 0 || g.Obj == nil {
				continue // parameter growth is charged at a binding call site
			}
			v, ok := g.Obj.(*types.Var)
			if !ok || !(v.IsField() || isGlobalVar(v)) {
				continue
			}
			// The grown state must itself belong to a scoped package:
			// reaching an out-of-scope accumulator (engine traces, persist
			// snapshots) through a call chain is that package's business.
			if v.Pkg() == nil || !inBoundedScope(cfg, v.Pkg().Path()) {
				continue
			}
			if seen[g.Pos] || inCold(g.Pos) {
				continue
			}
			seen[g.Pos] = true
			kind := "struct field"
			if !v.IsField() {
				kind = "package-level slice"
			}
			diags = append(diags, chanDiag{pos: g.Pos,
				msg: "append grows " + kind + " \"" + v.Name() + "\" without a " +
					"static capacity bound on a hot communication path; use a " +
					"fixed-capacity ring or drop-oldest queue"})
		}
	}
	sort.Slice(diags, func(i, j int) bool { return diags[i].pos < diags[j].pos })
	return diags
}

// checkUnbufferedChans flags rendezvous channels created in scoped
// packages: make(chan T) with no capacity and a non-struct{} element.
func checkUnbufferedChans(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := unparen(call.Fun).(*ast.Ident)
			if !ok || id.Name != "make" || len(call.Args) != 1 {
				return true
			}
			if pass.Info != nil {
				if obj, ok := pass.Info.Uses[id]; ok {
					if _, builtin := obj.(*types.Builtin); !builtin {
						return true
					}
				}
			}
			tv, ok := pass.Info.Types[call.Args[0]]
			if !ok || tv.Type == nil {
				return true
			}
			ch, ok := tv.Type.Underlying().(*types.Chan)
			if !ok {
				return true
			}
			if st, ok := ch.Elem().Underlying().(*types.Struct); ok && st.NumFields() == 0 {
				return true // close-only signal channel
			}
			pass.Reportf(call.Pos(), "boundedres",
				"unbuffered channel on a hot communication path: a send is a "+
					"rendezvous that blocks until a receiver arrives; give it an "+
					"explicit capacity (or use chan struct{} for pure signals)")
			return true
		})
	}
}
