package analysis

// ctxleak: every goroutine must be joinable or cancellable.
//
// PR 1 added goroutine-leak tests to the runtimes; this rule is the
// static counterpart. A `go` statement whose function neither registers
// with a sync.WaitGroup (so somebody joins it) nor receives from a
// done/ctx channel (so somebody can stop it) is a goroutine that can
// outlive its run — holding engine state alive, double-stepping a deme
// after a supervisor restart, or deadlocking process shutdown. The
// supervised runtimes abandon exactly one goroutine by design (the
// heartbeat-supervised step), and that site carries an explicit
// pgalint:ignore with its safety argument.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// CtxLeak builds the ctxleak analyzer.
func CtxLeak() *Analyzer {
	return &Analyzer{
		Name: "ctxleak",
		Doc: "flags go statements whose function body is neither WaitGroup-registered " +
			"nor receives from a done/ctx channel; such goroutines can leak past the " +
			"run that spawned them",
		Run: runCtxLeak,
	}
}

func runCtxLeak(pass *Pass) {
	decls := localFuncDecls(pass)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			body := goBody(pass, decls, g)
			if body == nil {
				// Cross-package or dynamic target: not verifiable here.
				return true
			}
			if !isSupervisedBody(pass, body) {
				pass.Reportf(g.Pos(), "ctxleak",
					"goroutine is neither WaitGroup-registered nor receives from a "+
						"done/ctx channel; it can leak past the run that spawned it "+
						"(join it with a WaitGroup or give it a cancellation channel)")
			}
			return true
		})
	}
}

// localFuncDecls indexes this package's function declarations by their
// type object, so `go step()` targets can be resolved to a body.
func localFuncDecls(pass *Pass) map[*types.Func]*ast.FuncDecl {
	decls := map[*types.Func]*ast.FuncDecl{}
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
				decls[fn] = fd
			}
		}
	}
	return decls
}

// goBody resolves the body of the function a go statement spawns:
// a literal closure directly, or a same-package named function/method.
func goBody(pass *Pass, decls map[*types.Func]*ast.FuncDecl, g *ast.GoStmt) *ast.BlockStmt {
	switch fun := g.Call.Fun.(type) {
	case *ast.FuncLit:
		return fun.Body
	case *ast.Ident:
		if fn, ok := pass.Info.Uses[fun].(*types.Func); ok {
			if fd := decls[fn]; fd != nil {
				return fd.Body
			}
		}
	case *ast.SelectorExpr:
		if fn, ok := pass.Info.Uses[fun.Sel].(*types.Func); ok {
			if fd := decls[fn]; fd != nil {
				return fd.Body
			}
		}
	}
	return nil
}

// isSupervisedBody reports whether body contains evidence the goroutine
// is joinable or cancellable: a (*sync.WaitGroup).Done call, any channel
// receive (done-channel discipline), a range over a channel, a select
// statement, or a close of a done channel (the close-to-join idiom —
// `go func() { defer close(done); ... }(); <-done`). A bare channel
// *send* is deliberately not evidence: sending into a full or abandoned
// buffer is itself the leak-and-deadlock vector.
func isSupervisedBody(pass *Pass, body *ast.BlockStmt) bool {
	supervised := false
	ast.Inspect(body, func(n ast.Node) bool {
		if supervised {
			return false
		}
		switch e := n.(type) {
		case *ast.CallExpr:
			if isWaitGroupDone(pass, e) || isBuiltinClose(pass, e) {
				supervised = true
			}
		case *ast.UnaryExpr:
			if e.Op == token.ARROW {
				supervised = true
			}
		case *ast.RangeStmt:
			if isChannelType(pass, e.X) {
				supervised = true
			}
		case *ast.SelectStmt:
			supervised = true
		}
		return !supervised
	})
	return supervised
}

// isWaitGroupDone reports whether call is wg.Done() on a sync.WaitGroup.
func isWaitGroupDone(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Done" {
		return false
	}
	selection, ok := pass.Info.Selections[sel]
	if !ok {
		// Partial type info: accept the syntactic wg.Done() convention.
		id, isIdent := sel.X.(*ast.Ident)
		return isIdent && (id.Name == "wg" || id.Name == "group")
	}
	recv := selection.Recv()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Name() == "WaitGroup" && obj.Pkg() != nil && obj.Pkg().Path() == "sync"
}

// isBuiltinClose reports whether call is the builtin close(ch).
func isBuiltinClose(pass *Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "close" {
		return false
	}
	if obj, ok := pass.Info.Uses[id]; ok {
		_, isBuiltin := obj.(*types.Builtin)
		return isBuiltin
	}
	// Partial type info: trust the name.
	return true
}

// isChannelType reports whether expr has channel type.
func isChannelType(pass *Pass, expr ast.Expr) bool {
	tv, ok := pass.Info.Types[expr]
	if !ok || tv.Type == nil {
		return false
	}
	_, isChan := tv.Type.Underlying().(*types.Chan)
	return isChan
}
