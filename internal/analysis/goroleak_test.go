package analysis

import "testing"

func TestGoroLeak(t *testing.T) {
	for _, fixture := range []string{
		"ctxleak_bad.go", // historical ctxleak fixtures, inherited by goroleak
		"ctxleak_ok.go",
		"goroleak_x.go",
	} {
		t.Run(fixture, func(t *testing.T) {
			checkRule(t, GoroLeak(), fixture)
		})
	}
}

// TestGoroLeakCtxLeakParity pins the subsumption contract: every finding
// the retired local-only ctxleak rule reported on its fixtures must
// still be reported by goroleak at the same lines, and ctxleak's clean
// fixture must stay clean. The line numbers are the ones ctxleak's own
// test asserted before its retirement.
func TestGoroLeakCtxLeakParity(t *testing.T) {
	historical := map[string]map[int]bool{
		"ctxleak_bad.go": {9: true, 21: true},
		"ctxleak_ok.go":  {},
	}
	for fixture, lines := range historical {
		got := map[int]bool{}
		for _, d := range runFixture(t, GoroLeak(), fixture) {
			got[d.Line] = true
		}
		for line := range lines {
			if !got[line] {
				t.Errorf("%s:%d: ctxleak reported here; goroleak does not (subsumption broken)", fixture, line)
			}
		}
		for line := range got {
			if !lines[line] {
				t.Errorf("%s:%d: goroleak reports where ctxleak did not", fixture, line)
			}
		}
	}
}

// TestGoroLeakAliasSuppression: a legacy //pgalint:ignore ctxleak
// directive keeps suppressing goroleak findings via the alias table.
func TestGoroLeakAliasSuppression(t *testing.T) {
	diags := runFixture(t, GoroLeak(), "goroleak_alias.go")
	if len(diags) != 0 {
		t.Fatalf("legacy ctxleak ignore no longer suppresses goroleak: %v", diags)
	}
}
