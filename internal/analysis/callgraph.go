package analysis

// Module-wide call graph for the interprocedural rules (rngflow, purity,
// chantopo) and the summary-aware retrofits of norawrand, nowallclock and
// hiddenalloc.
//
// Nodes are function *bodies*: every FuncDecl and every FuncLit gets its
// own node, because a closure spawned with `go` runs on a different
// goroutine than its lexical parent — the distinction the RNG-flow and
// channel-topology rules exist to track. Edges carry the relationship:
//
//   - EdgeCall:  ordinary (or deferred) call, same goroutine.
//   - EdgeSpawn: the call of a `go` statement — effects of the callee
//     happen on a freshly spawned goroutine.
//   - EdgeRef:   the function is referenced as a value (passed, stored,
//     or a closure is defined without being immediately invoked). The
//     body may run later on an unknown goroutine; rules treat Ref
//     conservatively as "may be called synchronously".
//
// Resolution is purely static and optimistic: calls through interfaces,
// function-typed variables and out-of-module functions produce no edge.
// pgalint is a linter, not a verifier — missing edges can only suppress
// findings, never invent them, which keeps the false-positive contract of
// the suite intact (DESIGN §7).

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// EdgeKind classifies a call-graph edge.
type EdgeKind int

const (
	// EdgeCall is a synchronous call (including defer).
	EdgeCall EdgeKind = iota
	// EdgeSpawn is the call of a go statement.
	EdgeSpawn
	// EdgeRef is a reference to the function as a value.
	EdgeRef
)

// String implements fmt.Stringer.
func (k EdgeKind) String() string {
	switch k {
	case EdgeCall:
		return "call"
	case EdgeSpawn:
		return "spawn"
	default:
		return "ref"
	}
}

// Node is one function body: a declared function/method or a closure.
type Node struct {
	// ID is the node's index in Graph.Nodes (deterministic: package topo
	// order, then file order, then syntax order).
	ID int
	// Name is the qualified display name: "pga/internal/ga.Step" for
	// declarations, "pga/internal/ga.Step$1" for the first closure inside
	// Step (nested closures extend the chain: "...Step$1$2").
	Name string
	// Pkg is the package the body lives in.
	Pkg *Package
	// Decl is the declaration (nil for closures).
	Decl *ast.FuncDecl
	// Lit is the closure literal (nil for declarations).
	Lit *ast.FuncLit
	// Obj is the declared function object (nil for closures).
	Obj *types.Func
	// Out and In are the edges leaving and entering this node, in
	// construction order.
	Out []*Edge
	In  []*Edge
}

// Pos returns the position of the function body's syntax.
func (n *Node) Pos() token.Pos {
	if n.Decl != nil {
		return n.Decl.Pos()
	}
	return n.Lit.Pos()
}

// End returns the end of the function body's syntax.
func (n *Node) End() token.Pos {
	if n.Decl != nil {
		return n.Decl.End()
	}
	return n.Lit.End()
}

// Body returns the function body block (possibly nil for bodyless decls).
func (n *Node) Body() *ast.BlockStmt {
	if n.Decl != nil {
		return n.Decl.Body
	}
	return n.Lit.Body
}

// Edge is one caller→callee relationship.
type Edge struct {
	Caller *Node
	Callee *Node
	Kind   EdgeKind
	// Site is the call expression (nil for EdgeRef).
	Site *ast.CallExpr
	// Pos is the position of the call or reference.
	Pos token.Pos
}

// Graph is the module-wide call graph.
type Graph struct {
	// Nodes in deterministic creation order.
	Nodes []*Node

	byObj  map[*types.Func]*Node
	byDecl map[*ast.FuncDecl]*Node
	byLit  map[*ast.FuncLit]*Node
	byName map[string]*Node // declared nodes by qualified name; lazy

	sccs [][]*Node // bottom-up (callee-first) order; built lazily
}

// NodeOf returns the node for a declared function, or nil.
func (g *Graph) NodeOf(fd *ast.FuncDecl) *Node { return g.byDecl[fd] }

// NodeOfLit returns the node for a closure literal, or nil.
func (g *Graph) NodeOfLit(lit *ast.FuncLit) *Node { return g.byLit[lit] }

// NodeByName returns the declared function/method node with the given
// qualified display name ("pga/internal/operators.KPoint.Cross"), or nil.
// The index is built lazily; closures are excluded (their $n names are
// positional, not stable identities).
func (g *Graph) NodeByName(name string) *Node {
	if g.byName == nil {
		g.byName = make(map[string]*Node, len(g.Nodes))
		for _, n := range g.Nodes {
			if n.Decl != nil {
				g.byName[n.Name] = n
			}
		}
	}
	return g.byName[name]
}

// BuildGraph constructs the call graph over pkgs (normally a full module
// in topological order, or a handful of fixture packages in tests).
func BuildGraph(pkgs []*Package) *Graph {
	g := &Graph{
		byObj:  map[*types.Func]*Node{},
		byDecl: map[*ast.FuncDecl]*Node{},
		byLit:  map[*ast.FuncLit]*Node{},
	}
	// Pass 1: nodes for every declaration, so forward and cross-package
	// references resolve during the edge walk.
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				n := &Node{
					ID:   len(g.Nodes),
					Name: pkg.Path + "." + declName(fd),
					Pkg:  pkg,
					Decl: fd,
				}
				if pkg.Info != nil {
					if obj, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
						n.Obj = obj
						g.byObj[obj] = n
					}
				}
				g.byDecl[fd] = n
				g.Nodes = append(g.Nodes, n)
			}
		}
	}
	// Pass 2: closure nodes and edges, in one deterministic walk.
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			g.walkFile(pkg, file)
		}
	}
	return g
}

// declName renders "Recv.Method" or "Func" for a declaration.
func declName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
			continue
		case *ast.ParenExpr:
			t = x.X
			continue
		case *ast.IndexExpr: // generic receiver
			t = x.X
			continue
		case *ast.Ident:
			return x.Name + "." + fd.Name.Name
		default:
			return fd.Name.Name
		}
	}
}

// walkFile adds closure nodes and all edges contributed by one file.
func (g *Graph) walkFile(pkg *Package, file *ast.File) {
	var stack []ast.Node
	// consumed marks expressions already handled as the callee of a
	// processed CallExpr, so the generic Ident/SelectorExpr cases below do
	// not double-count them as value references.
	consumed := map[ast.Node]bool{}
	closureSeq := map[*Node]int{}

	ast.Inspect(file, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		switch x := n.(type) {
		case *ast.FuncLit:
			parent := g.enclosing(stack[:len(stack)-1])
			if parent == nil {
				return true // package-level initializer expression
			}
			closureSeq[parent]++
			node := &Node{
				ID:   len(g.Nodes),
				Name: fmt.Sprintf("%s$%d", parent.Name, closureSeq[parent]),
				Pkg:  pkg,
				Lit:  x,
			}
			g.byLit[x] = node
			g.Nodes = append(g.Nodes, node)
			kind, site := litRelation(stack)
			g.addEdge(parent, node, kind, site, x.Pos())
		case *ast.CallExpr:
			fun := unparen(x.Fun)
			if _, isLit := fun.(*ast.FuncLit); isLit {
				return true // handled by the FuncLit case
			}
			callee := g.resolveCallee(pkg.Info, fun)
			if callee == nil {
				return true
			}
			consumed[fun] = true
			if caller := g.enclosing(stack[:len(stack)-1]); caller != nil {
				kind := EdgeCall
				if isGoCall(stack) {
					kind = EdgeSpawn
				}
				g.addEdge(caller, callee, kind, x, x.Pos())
			}
		case *ast.SelectorExpr:
			if consumed[n] {
				// Consumed as a callee: keep walking x.X (it may contain
				// further calls), but the Sel ident is part of the call, not
				// a value reference.
				consumed[x.Sel] = true
				return true
			}
			if callee := g.resolveCallee(pkg.Info, x); callee != nil {
				consumed[x.Sel] = true
				if caller := g.enclosing(stack[:len(stack)-1]); caller != nil {
					g.addEdge(caller, callee, EdgeRef, nil, x.Pos())
				}
			}
		case *ast.Ident:
			if consumed[n] {
				return true
			}
			if pkg.Info == nil {
				return true
			}
			obj, ok := pkg.Info.Uses[x].(*types.Func)
			if !ok {
				return true
			}
			if callee := g.byObj[obj]; callee != nil {
				if caller := g.enclosing(stack[:len(stack)-1]); caller != nil {
					g.addEdge(caller, callee, EdgeRef, nil, x.Pos())
				}
			}
		}
		return true
	})
}

// enclosing returns the node of the innermost FuncLit/FuncDecl on stack.
func (g *Graph) enclosing(stack []ast.Node) *Node {
	for i := len(stack) - 1; i >= 0; i-- {
		switch x := stack[i].(type) {
		case *ast.FuncLit:
			if n := g.byLit[x]; n != nil {
				return n
			}
		case *ast.FuncDecl:
			return g.byDecl[x]
		}
	}
	return nil
}

// litRelation decides how a closure literal relates to its parent: the
// immediately-invoked `func(){...}()` form is a Call, `go func(){...}()`
// a Spawn, and everything else (assignment, argument, struct field) a
// Ref. stack's top is the literal itself.
func litRelation(stack []ast.Node) (EdgeKind, *ast.CallExpr) {
	if len(stack) < 2 {
		return EdgeRef, nil
	}
	call, ok := stack[len(stack)-2].(*ast.CallExpr)
	if !ok || unparen(call.Fun) != stack[len(stack)-1] {
		return EdgeRef, nil
	}
	if len(stack) >= 3 {
		if g, ok := stack[len(stack)-3].(*ast.GoStmt); ok && g.Call == call {
			return EdgeSpawn, call
		}
	}
	return EdgeCall, call
}

// isGoCall reports whether the CallExpr on top of stack is the call of a
// go statement.
func isGoCall(stack []ast.Node) bool {
	if len(stack) < 2 {
		return false
	}
	call, _ := stack[len(stack)-1].(*ast.CallExpr)
	g, ok := stack[len(stack)-2].(*ast.GoStmt)
	return ok && call != nil && g.Call == call
}

// resolveCallee maps a callee expression to a module-declared function
// node, or nil for dynamic, builtin and out-of-module targets.
func (g *Graph) resolveCallee(info *types.Info, fun ast.Expr) *Node {
	if info == nil {
		return nil
	}
	switch x := unparen(fun).(type) {
	case *ast.Ident:
		if obj, ok := info.Uses[x].(*types.Func); ok {
			return g.byObj[obj]
		}
	case *ast.SelectorExpr:
		if obj, ok := info.Uses[x.Sel].(*types.Func); ok {
			return g.byObj[obj]
		}
	}
	return nil
}

// addEdge links caller→callee.
func (g *Graph) addEdge(caller, callee *Node, kind EdgeKind, site *ast.CallExpr, pos token.Pos) {
	e := &Edge{Caller: caller, Callee: callee, Kind: kind, Site: site, Pos: pos}
	caller.Out = append(caller.Out, e)
	callee.In = append(callee.In, e)
}

// unparen strips parentheses.
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// SCCs returns the strongly connected components of the graph in
// bottom-up (callee-first) order: every edge leaving a component targets
// a component that appears earlier in the slice. Summary propagation and
// the rules' taint closures iterate this order so each function sees its
// callees' final facts, looping only within a component until fixpoint.
func (g *Graph) SCCs() [][]*Node {
	if g.sccs != nil {
		return g.sccs
	}
	// Iterative Tarjan. index/lowlink are 1-based so the zero value means
	// "unvisited".
	n := len(g.Nodes)
	index := make([]int, n)
	lowlink := make([]int, n)
	onStack := make([]bool, n)
	var sccStack []*Node
	next := 1

	type frame struct {
		node *Node
		edge int
	}
	var visit func(root *Node)
	visit = func(root *Node) {
		frames := []frame{{node: root}}
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			v := f.node
			if f.edge == 0 {
				index[v.ID] = next
				lowlink[v.ID] = next
				next++
				sccStack = append(sccStack, v)
				onStack[v.ID] = true
			}
			advanced := false
			for f.edge < len(v.Out) {
				w := v.Out[f.edge].Callee
				f.edge++
				if index[w.ID] == 0 {
					frames = append(frames, frame{node: w})
					advanced = true
					break
				}
				if onStack[w.ID] && index[w.ID] < lowlink[v.ID] {
					lowlink[v.ID] = index[w.ID]
				}
			}
			if advanced {
				continue
			}
			if lowlink[v.ID] == index[v.ID] {
				var scc []*Node
				for {
					w := sccStack[len(sccStack)-1]
					sccStack = sccStack[:len(sccStack)-1]
					onStack[w.ID] = false
					scc = append(scc, w)
					if w == v {
						break
					}
				}
				g.sccs = append(g.sccs, scc)
			}
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := frames[len(frames)-1].node
				if lowlink[v.ID] < lowlink[p.ID] {
					lowlink[p.ID] = lowlink[v.ID]
				}
			}
		}
	}
	for _, v := range g.Nodes {
		if index[v.ID] == 0 {
			visit(v)
		}
	}
	return g.sccs
}

// graphJSON is the -graph dump format: one entry per node in ID order,
// edges in construction order. Positions are root-relative so goldens are
// machine-independent.
type graphJSON struct {
	Functions []graphFuncJSON `json:"functions"`
}

type graphFuncJSON struct {
	Name    string          `json:"name"`
	Pos     string          `json:"pos"`
	Closure bool            `json:"closure,omitempty"`
	Edges   []graphEdgeJSON `json:"edges,omitempty"`
}

type graphEdgeJSON struct {
	To   string `json:"to"`
	Kind string `json:"kind"`
	Pos  string `json:"pos"`
}

// JSON renders the graph in the stable -graph dump format.
func (g *Graph) JSON(root string, fset *token.FileSet) ([]byte, error) {
	out := graphJSON{Functions: []graphFuncJSON{}}
	posOf := func(p token.Pos) string {
		pos := fset.Position(p)
		return fmt.Sprintf("%s:%d", relPath(root, pos.Filename), pos.Line)
	}
	for _, n := range g.Nodes {
		fn := graphFuncJSON{Name: n.Name, Pos: posOf(n.Pos()), Closure: n.Lit != nil}
		for _, e := range n.Out {
			fn.Edges = append(fn.Edges, graphEdgeJSON{
				To:   e.Callee.Name,
				Kind: e.Kind.String(),
				Pos:  posOf(e.Pos),
			})
		}
		out.Functions = append(out.Functions, fn)
	}
	return json.MarshalIndent(out, "", "  ")
}
