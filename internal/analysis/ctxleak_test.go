package analysis

import "testing"

func TestCtxLeak(t *testing.T) {
	tests := []struct {
		name    string
		fixture string
	}{
		{"flags unjoinable fire-and-forget goroutines", "ctxleak_bad.go"},
		{"silent on joined and cancellable goroutines", "ctxleak_ok.go"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			checkRule(t, CtxLeak(), tc.fixture)
		})
	}
}
