package analysis

import "testing"

func TestChanTopoBad(t *testing.T) { checkRule(t, ChanTopo(), "chantopo_bad.go") }
func TestChanTopoOk(t *testing.T)  { checkRule(t, ChanTopo(), "chantopo_ok.go") }

// TestChanTopoBeyondBlockingSend pins the division of labor: the cycle
// through chanutil.Pump is closed by binding channel arguments at the
// go statements in chantopo_bad.go, but every send chanutil makes is
// outside blockingsend's scope — the local rule cannot reach the
// deadlock at all.
func TestChanTopoBeyondBlockingSend(t *testing.T) {
	for _, d := range runFixture(t, BlockingSend(), "chantopo_bad.go") {
		if d.File == "testdata/auxchan.go" {
			t.Errorf("blockingsend unexpectedly reached the helper package: %s", d)
		}
	}
}
