package analysis

// SARIF output: the static-analysis interchange format GitHub code
// scanning ingests (upload-sarif). pgalint emits the minimal conforming
// subset of SARIF 2.1.0 — one run, one tool driver carrying the rule
// metadata, one result per diagnostic with a physical location relative
// to %SRCROOT% (the repository checkout root) — so findings annotate
// pull requests instead of living in CI logs.

import "encoding/json"

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string    `json:"id"`
	ShortDescription sarifText `json:"shortDescription"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifText       `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

// SARIF renders diagnostics as a SARIF 2.1.0 log. The rule table is the
// analyzer registry plus the always-on ignore-justification check, in
// registry order; results follow the diagnostic order (file, line).
func SARIF(diags []Diagnostic, analyzers []*Analyzer) ([]byte, error) {
	driver := sarifDriver{
		Name:           "pgalint",
		InformationURI: "https://github.com/pga/pga#pgalint",
		Rules:          []sarifRule{},
	}
	for _, a := range analyzers {
		driver.Rules = append(driver.Rules, sarifRule{
			ID:               a.Name,
			ShortDescription: sarifText{Text: a.Doc},
		})
	}
	driver.Rules = append(driver.Rules, sarifRule{
		ID: "ignore",
		ShortDescription: sarifText{Text: "every //pgalint:ignore directive must name " +
			"its rules and carry a justification; a bare ignore is itself a finding"},
	})

	results := []sarifResult{}
	for _, d := range diags {
		results = append(results, sarifResult{
			RuleID:  d.Rule,
			Level:   "error",
			Message: sarifText{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{
						URI:       d.File,
						URIBaseID: "%SRCROOT%",
					},
					Region: sarifRegion{
						StartLine:   d.Line,
						StartColumn: d.Col,
					},
				},
			}},
		})
	}

	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs:    []sarifRun{{Tool: sarifTool{Driver: driver}, Results: results}},
	}
	return json.MarshalIndent(log, "", "  ")
}
