package analysis

// Module loading for pgalint. The module is zero-dependency, so a full
// go/packages-style driver is unnecessary: we walk the module tree,
// group non-test files into packages, topologically sort them by their
// module-internal imports and type-check each one with go/types. Standard
// library imports are resolved from GOROOT source via the stdlib source
// importer (go/importer "source" mode), which needs no pre-compiled
// export data.

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Package is one loaded, type-checked package of the module.
type Package struct {
	// Path is the import path ("pga", "pga/internal/island", ...).
	Path string
	// Dir is the absolute directory.
	Dir string
	// Fset is shared by every package of one Load call.
	Fset *token.FileSet
	// Files are the parsed non-test files, in file-name order.
	Files []*ast.File
	// Types is the type-checked package object (possibly incomplete when
	// TypeErrors is non-empty).
	Types *types.Package
	// Info is the collected type information for Files.
	Info *types.Info
	// TypeErrors collects type-checker errors. pgalint tolerates them —
	// `go build` is the build gate; the linter still analyzes what it can.
	TypeErrors []error

	imports []string // module-internal import paths
}

// Module is the loaded module.
type Module struct {
	// Root is the absolute directory containing go.mod.
	Root string
	// Path is the module path from go.mod.
	Path string
	// Fset is the shared file set.
	Fset *token.FileSet
	// Pkgs are the module's packages in topological (dependency-first)
	// order.
	Pkgs []*Package
}

// FindModuleRoot walks up from dir to the nearest directory containing
// go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("analysis: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			mp := strings.TrimSpace(rest)
			if unq, err := strconv.Unquote(mp); err == nil {
				mp = unq
			}
			if mp != "" {
				return mp, nil
			}
		}
	}
	return "", fmt.Errorf("analysis: no module line in %s", gomod)
}

// LoadModule parses and type-checks every package under root (the
// directory holding go.mod). Directories named testdata or vendor,
// hidden directories and _-prefixed directories are skipped, as are
// _test.go files: pgalint lints production code only.
func LoadModule(root string) (*Module, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	mod := &Module{Root: root, Path: modPath, Fset: fset}

	byPath := map[string]*Package{}
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		dir := filepath.Dir(path)
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return err
		}
		pkgPath := modPath
		if rel != "." {
			pkgPath = modPath + "/" + filepath.ToSlash(rel)
		}
		pkg := byPath[pkgPath]
		if pkg == nil {
			pkg = &Package{Path: pkgPath, Dir: dir, Fset: fset}
			byPath[pkgPath] = pkg
		}
		file, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return fmt.Errorf("analysis: %w", err)
		}
		pkg.Files = append(pkg.Files, file)
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Record module-internal imports for topological ordering.
	for _, pkg := range byPath {
		seen := map[string]bool{}
		for _, f := range pkg.Files {
			for _, imp := range f.Imports {
				ip, err := strconv.Unquote(imp.Path.Value)
				if err != nil {
					continue
				}
				if (ip == modPath || strings.HasPrefix(ip, modPath+"/")) && !seen[ip] {
					seen[ip] = true
					pkg.imports = append(pkg.imports, ip)
				}
			}
		}
		sort.Strings(pkg.imports)
	}

	order, err := topoSort(byPath)
	if err != nil {
		return nil, err
	}

	std := importer.ForCompiler(fset, "source", nil)
	imp := &moduleImporter{std: std, mod: byPath}
	for _, pkg := range order {
		checkPackage(pkg, imp)
		mod.Pkgs = append(mod.Pkgs, pkg)
	}
	return mod, nil
}

// topoSort orders packages dependency-first; imports within the module
// form a DAG (the compiler rejects cycles), but a malformed tree still
// gets a clear error rather than an infinite loop.
func topoSort(byPath map[string]*Package) ([]*Package, error) {
	paths := make([]string, 0, len(byPath))
	for p := range byPath {
		paths = append(paths, p)
	}
	sort.Strings(paths)

	const (
		unvisited = 0
		visiting  = 1
		done      = 2
	)
	state := map[string]int{}
	var order []*Package
	var visit func(path string) error
	visit = func(path string) error {
		pkg := byPath[path]
		if pkg == nil {
			return nil // import of a module path with no source (shouldn't happen)
		}
		switch state[path] {
		case done:
			return nil
		case visiting:
			return fmt.Errorf("analysis: import cycle through %s", path)
		}
		state[path] = visiting
		for _, dep := range pkg.imports {
			if err := visit(dep); err != nil {
				return err
			}
		}
		state[path] = done
		order = append(order, pkg)
		return nil
	}
	for _, p := range paths {
		if err := visit(p); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// moduleImporter resolves module-internal imports from the loaded
// package graph and everything else through the stdlib source importer.
type moduleImporter struct {
	std types.Importer
	mod map[string]*Package
}

// Import implements types.Importer.
func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := m.mod[path]; ok {
		if pkg.Types == nil {
			return nil, fmt.Errorf("analysis: %s imported before it was checked", path)
		}
		return pkg.Types, nil
	}
	return m.std.Import(path)
}

// checkPackage type-checks pkg, filling Types and Info. Errors are
// collected, not fatal: analyzers run on partial information.
func checkPackage(pkg *Package, imp types.Importer) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	cfg := &types.Config{
		Importer: imp,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	// Deterministic file order for deterministic object resolution.
	sort.Slice(pkg.Files, func(i, j int) bool {
		return pkg.Fset.Position(pkg.Files[i].Pos()).Filename <
			pkg.Fset.Position(pkg.Files[j].Pos()).Filename
	})
	tpkg, err := cfg.Check(pkg.Path, pkg.Fset, pkg.Files, info)
	if err != nil && len(pkg.TypeErrors) == 0 {
		pkg.TypeErrors = append(pkg.TypeErrors, err)
	}
	pkg.Types = tpkg
	pkg.Info = info
}
