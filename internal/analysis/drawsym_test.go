package analysis

import (
	"strings"
	"testing"
)

// TestDrawShapeRule pins rule 13 on its fixtures: content-guarded draws
// in role methods, in a hot-listed function and behind a cross-package
// call are reported at the draw site (auxtail.go carries the marker for
// the cross-package case); structural and RNG-drawn guards stay silent.
func TestDrawShapeRule(t *testing.T) {
	checkRule(t, DrawShapeRule(), "drawshape_bad.go")
	checkRule(t, DrawShapeRule(), "drawshape_ok.go")
}

// TestDrawShapeCatchesWhatOthersMiss proves the seeded drawshape
// violations are invisible to every pre-existing rule: the full registry
// minus the two new rules reports nothing on the bad fixture group.
func TestDrawShapeCatchesWhatOthersMiss(t *testing.T) {
	var rest []*Analyzer
	for _, a := range Registry() {
		if a.Name != "drawshape" && a.Name != "drawparity" {
			rest = append(rest, a)
		}
	}
	diags := RunAnalyzers("", fixtureGroupPkgs(t, "drawshape_bad.go"), rest)
	for _, d := range diags {
		t.Errorf("pre-existing rule %s reports on drawshape_bad.go: %s", d.Rule, d)
	}
}

// TestDrawParityRule pins rule 14 on its fixtures via a config naming
// the fixture pairs: a desynced pair is reported at both members, a
// dangling pair at its surviving member, while equal-shaped and
// Incomplete (recursive) pairs stay silent.
func TestDrawParityRule(t *testing.T) {
	bad := DrawParityWith(DrawParityConfig{Pairs: []DrawPairSpec{
		{A: "pga/internal/pairfix.Cross", B: "pga/internal/pairfix.CrossInto"},
		{A: "pga/internal/pairfix.Spin", B: "pga/internal/pairfix.SpinInto"},
	}})
	checkRule(t, bad, "drawparity_bad.go")

	ok := DrawParityWith(DrawParityConfig{Pairs: []DrawPairSpec{
		{A: "pga/internal/pairfix2.Walk", B: "pga/internal/pairfix2.WalkInto"},
		{A: "pga/internal/pairfix2.Rec", B: "pga/internal/pairfix2.RecInto"},
		// Both members absent: skipped, optimistic.
		{A: "pga/internal/pairfix2.Gone", B: "pga/internal/pairfix2.GoneInto"},
	}})
	checkRule(t, ok, "drawparity_ok.go")
}

// TestDrawShapesSymbolic pins the symbolic summaries themselves: the
// rendered canonical shapes of the ok-fixture functions, including loop
// multipliers, cond markers and cross-spelling agreement.
func TestDrawShapesSymbolic(t *testing.T) {
	facts := ComputeFacts(fixtureGroupPkgs(t, "drawshape_ok.go"))
	shapes := map[string]string{
		"pga/internal/operators.OkMut.Mutate": "cond·n×Float64 + n×Float64",
		"pga/internal/operators.OkSel.Select": "cond×Intn",
		"pga/internal/operators.CrossInto":    "n×Uint64",
		"pga/internal/fixrng.Source.Intn":     "1×Uint64",
		"pga/internal/fixrng.Source.Float64":  "1×Uint64",
	}
	for name, want := range shapes {
		n := facts.Graph.NodeByName(name)
		if n == nil {
			t.Errorf("node %s not found", name)
			continue
		}
		if got := facts.DrawShape(n).String(); got != want {
			t.Errorf("%s: shape %q, want %q", name, got, want)
		}
	}
}

// TestDrawShapeContentDeps pins where content-dependence is recorded on
// the bad fixture: the cross-package TailSel.Select carries fixgen's
// draw position, and OkMut-style functions carry none.
func TestDrawShapeContentDeps(t *testing.T) {
	facts := ComputeFacts(fixtureGroupPkgs(t, "drawshape_bad.go"))
	deps := map[string]int{
		"pga/internal/operators.BadMut.Mutate":  1,
		"pga/internal/operators.BadSel.Select":  1,
		"pga/internal/operators.CrossInto":      1,
		"pga/internal/operators.TailSel.Select": 1,
		"pga/internal/fixgen.PickTail":          1,
		"pga/internal/fixgen.PickHead":          0,
	}
	for name, want := range deps {
		n := facts.Graph.NodeByName(name)
		if n == nil {
			t.Errorf("node %s not found", name)
			continue
		}
		if got := len(facts.DrawShape(n).ContentDep); got != want {
			t.Errorf("%s: %d content-dependent sites, want %d (shape %s)",
				name, got, want, facts.DrawShape(n))
		}
	}
}

// TestDrawShapeCanonicalization pins the term algebra: merge-by-key,
// zero-coefficient drop, cond collapse, deterministic order, rendering.
func TestDrawShapeCanonicalization(t *testing.T) {
	s := &DrawShape{Terms: []DrawTerm{
		{Coeff: 2, Mult: []string{"n", "cond", "cond"}, Kind: "Intn"},
		{Coeff: 1, Mult: []string{"cond", "n"}, Kind: "Intn"},
		{Coeff: 1, Mult: nil, Kind: "Sample"},
		{Coeff: 3, Mult: []string{"pop"}, Kind: "Float64"},
		{Coeff: -3, Mult: []string{"pop"}, Kind: "Float64"},
	}}
	s.canonicalize()
	want := "3·cond·n×Intn + 1×Sample"
	if got := s.String(); got != want {
		t.Errorf("canonicalized shape %q, want %q", got, want)
	}

	a := &DrawShape{Terms: []DrawTerm{{Coeff: 1, Mult: []string{"n"}, Kind: "Chance"}}}
	b := &DrawShape{Terms: []DrawTerm{{Coeff: 1, Mult: []string{"n"}, Kind: "Chance"}}}
	if !a.EqualTerms(b) {
		t.Error("identical shapes compare unequal")
	}
	b.Terms[0].Coeff = 2
	if a.EqualTerms(b) {
		t.Error("different coefficients compare equal")
	}
	var nilShape *DrawShape
	if got := nilShape.String(); got != "unknown" {
		t.Errorf("nil shape renders %q, want %q", got, "unknown")
	}
	empty := &DrawShape{}
	if got := empty.String(); got != "no draws" {
		t.Errorf("empty shape renders %q, want %q", got, "no draws")
	}
	empty.Incomplete = true
	if got := empty.String(); got != "no draws (incomplete)" {
		t.Errorf("incomplete empty shape renders %q, want %q", got, "no draws (incomplete)")
	}
}

// TestBuildTraceCover pins the audit transform: a pair is covered by a
// scenario exercising its operator or by a dedicated equivalence test;
// uncovered pairs gate, uncovered operators only inform.
func TestBuildTraceCover(t *testing.T) {
	pairs := []TracePair{
		{A: "a.Cross", B: "a.CrossInto", Op: "OnePoint"},
		{A: "a.SUS", B: "a.SUSInto", Op: "SUS", Test: "TestSUSIntoMatchesSUS"},
		{A: "a.X", B: "a.XInto", Op: "Ghost"},
	}
	operators := []string{"OnePoint", "Ghost", "Orphan"}
	scenarios := []TraceScenario{
		{Name: "rastrigin-1point", Ops: []string{"OnePoint", "Tournament"}},
	}
	rep := BuildTraceCover(pairs, operators, scenarios)
	if !rep.Failed() {
		t.Fatal("report with an uncovered pair does not fail")
	}
	if len(rep.UncoveredPairs) != 1 || rep.UncoveredPairs[0] != "a.X / a.XInto" {
		t.Errorf("uncovered pairs = %+v, want exactly the Ghost pair", rep.UncoveredPairs)
	}
	var covered int
	for _, pc := range rep.Pairs {
		if pc.Covered {
			covered++
		}
	}
	if covered != 2 {
		t.Errorf("covered pairs = %d, want 2 (scenario-covered and test-covered)", covered)
	}
	if len(rep.UncoveredOps) != 2 {
		t.Errorf("uncovered operators = %v, want Ghost and Orphan", rep.UncoveredOps)
	}
	md := rep.Markdown()
	if !strings.Contains(md, "GATE FAILED") || !strings.Contains(md, "Ghost") {
		t.Errorf("markdown report missing gate marker or uncovered pair:\n%s", md)
	}

	all := BuildTraceCover(pairs[:2], []string{"OnePoint"}, scenarios)
	if all.Failed() {
		t.Errorf("fully covered report fails: %+v", all.UncoveredPairs)
	}
	if strings.Contains(all.Markdown(), "GATE FAILED") {
		t.Error("clean markdown report contains the gate marker")
	}
}
