package analysis

// blockingsend: inter-deme communication must be non-blocking.
//
// The async island/cellular/p2p runtimes follow the bounded-staleness
// message-passing model: a migrant batch that cannot be delivered right
// now is dropped, retried later or dead-lettered — evolution never waits
// on a peer. A bare channel send is the exact deadlock vector the
// supervision layer (PR 1) exists to contain at runtime: if the receiver
// has died or its buffer is full, the sender blocks forever, the
// heartbeat fires, and a healthy deme gets restarted for another deme's
// failure. Every send in a communication package must therefore sit in a
// select that cannot block: one with a default case, or with a
// timeout/done/ctx escape case.

import (
	"go/ast"
	"go/token"
	"strings"
)

// BlockingSendConfig configures the blockingsend analyzer.
type BlockingSendConfig struct {
	// ScopePaths are the package patterns the rule applies to: the
	// communication runtimes. Pure-compute packages may use channels
	// however they like.
	ScopePaths []string
}

// DefaultBlockingSendConfig returns the repository's production policy.
func DefaultBlockingSendConfig() BlockingSendConfig {
	return BlockingSendConfig{ScopePaths: []string{
		"pga/internal/island",
		"pga/internal/migration",
		"pga/internal/cluster",
		"pga/internal/p2p",
		"pga/internal/masterslave",
		"pga/internal/cellular",
		"pga/internal/supervise",
		"pga/internal/transport",
	}}
}

// BlockingSend builds the blockingsend analyzer with the default
// configuration.
func BlockingSend() *Analyzer { return BlockingSendWith(DefaultBlockingSendConfig()) }

// BlockingSendWith builds the blockingsend analyzer with cfg (test hook).
func BlockingSendWith(cfg BlockingSendConfig) *Analyzer {
	return &Analyzer{
		Name: "blockingsend",
		Doc: "requires every channel send in the communication runtimes to occur " +
			"under a select with a default or timeout/done/ctx case; a bare send " +
			"is the deadlock vector bounded asynchronous migration exists to avoid",
		Run: func(pass *Pass) {
			inScope := false
			for _, pattern := range cfg.ScopePaths {
				if pathMatch(pattern, pass.PkgPath) {
					inScope = true
					break
				}
			}
			if !inScope {
				return
			}
			for _, file := range pass.Files {
				var stack []ast.Node
				ast.Inspect(file, func(n ast.Node) bool {
					if n == nil {
						stack = stack[:len(stack)-1]
						return true
					}
					stack = append(stack, n)
					send, ok := n.(*ast.SendStmt)
					if !ok {
						return true
					}
					switch classifySend(send, stack) {
					case sendSafe:
					case sendBare:
						pass.Reportf(send.Arrow, "blockingsend",
							"bare channel send can block forever if the receiver is full or dead; "+
								"wrap it in a select with a default or timeout/ctx case")
					case sendNoEscape:
						pass.Reportf(send.Arrow, "blockingsend",
							"channel send in a select with no default and no timeout/done/ctx case "+
								"can still block forever; add an escape case")
					}
					return true
				})
			}
		},
	}
}

type sendClass int

const (
	sendSafe sendClass = iota
	sendBare
	sendNoEscape
)

// classifySend decides whether the send (innermost node of stack) can
// block. A send is safe only when it is the communication of a select
// case and that select has a default or an escape receive.
func classifySend(send *ast.SendStmt, stack []ast.Node) sendClass {
	if len(stack) < 4 {
		return sendBare
	}
	clause, ok := stack[len(stack)-2].(*ast.CommClause)
	if !ok || clause.Comm != ast.Stmt(send) {
		// A send in a case *body* (not the comm) is an ordinary bare send.
		return sendBare
	}
	sel, ok := stack[len(stack)-4].(*ast.SelectStmt)
	if !ok {
		return sendBare
	}
	for _, c := range sel.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok || cc == clause {
			continue
		}
		if cc.Comm == nil {
			return sendSafe // default case: the select never blocks
		}
		if recv := commReceiveExpr(cc.Comm); recv != nil && isEscapeChannel(recv) {
			return sendSafe // timeout / done / ctx escape
		}
	}
	return sendNoEscape
}

// commReceiveExpr returns the channel expression of a receive comm
// statement (`<-ch`, `v := <-ch`, `v, ok := <-ch`), or nil for sends.
func commReceiveExpr(comm ast.Stmt) ast.Expr {
	var expr ast.Expr
	switch s := comm.(type) {
	case *ast.ExprStmt:
		expr = s.X
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			expr = s.Rhs[0]
		}
	}
	if u, ok := expr.(*ast.UnaryExpr); ok && u.Op == token.ARROW {
		return u.X
	}
	return nil
}

// isEscapeChannel reports whether the received-from expression looks like
// a cancellation or timeout source: ctx.Done(), a timer/ticker .C field,
// time.After(...), or a channel whose name signals shutdown intent.
func isEscapeChannel(expr ast.Expr) bool {
	switch e := expr.(type) {
	case *ast.CallExpr:
		if sel, ok := e.Fun.(*ast.SelectorExpr); ok {
			if sel.Sel.Name == "Done" {
				return true // ctx.Done() and done-factories
			}
			if id, ok := sel.X.(*ast.Ident); ok && id.Name == "time" && sel.Sel.Name == "After" {
				return true
			}
		}
		if id, ok := e.Fun.(*ast.Ident); ok {
			return escapeName(id.Name)
		}
	case *ast.SelectorExpr:
		if e.Sel.Name == "C" {
			return true // timer.C / ticker.C
		}
		return escapeName(e.Sel.Name)
	case *ast.Ident:
		return escapeName(e.Name)
	}
	return false
}

// escapeName matches identifiers conventionally carrying shutdown or
// deadline semantics.
func escapeName(name string) bool {
	n := strings.ToLower(name)
	for _, kw := range []string{"done", "stop", "quit", "cancel", "ctx", "timeout", "deadline"} {
		if strings.Contains(n, kw) {
			return true
		}
	}
	return false
}
