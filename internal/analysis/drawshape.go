package analysis

// Rule 13, drawshape: the static half of the PR 8 draw-compatibility
// contract. Every engine-registered operator/fitness role (the purity
// role shapes) and every function on the hiddenalloc hot list must have
// a *content-independent* RNG draw shape — no draw may execute under a
// branch whose condition reads genome or population content. A
// content-dependent draw count makes seeded runs diverge between
// otherwise-equivalent configurations (the property the golden traces
// pin dynamically, here proven over the whole call chain for every
// operator at once).
//
// Findings are reported at the offending draw site, which may live in a
// helper in another package — the caller's folded shape carries the
// position. Genuine, documented content-dependence (Roulette's
// degenerate-span fallback draws Intn instead of Float64) is exempted by
// configuration, not by suppression directives.

import "go/ast"

// DrawShapeConfig parameterizes drawshape.
type DrawShapeConfig struct {
	// Roles are the operator/fitness method shapes to check (the purity
	// roles).
	Roles []PurityRole
	// Hot lists additional "pkg/path.Func" entries to check (the
	// hiddenalloc hot list; receiver-insensitive like allowedFunc).
	Hot []string
	// Exempt lists fully qualified node names
	// ("pga/internal/operators.Roulette.Select" — receiver-sensitive,
	// unlike Hot) whose content-dependence is documented and accepted.
	Exempt []string
}

// DefaultDrawShapeConfig checks the purity roles plus the hiddenalloc
// hot list, with the one documented exemption.
func DefaultDrawShapeConfig() DrawShapeConfig {
	return DrawShapeConfig{
		Roles: DefaultPurityConfig().Roles,
		Hot:   DefaultHiddenAllocConfig().Hot,
		Exempt: []string{
			// Roulette wheel selection with a degenerate fitness span
			// falls back to a uniform Intn draw — a documented,
			// fitness-dependent draw-kind switch pinned by the golden
			// traces.
			"pga/internal/operators.Roulette.Select",
		},
	}
}

// DrawShapeRule returns the drawshape analyzer with the default config.
func DrawShapeRule() *Analyzer { return DrawShapeWith(DefaultDrawShapeConfig()) }

// DrawShapeWith returns a drawshape analyzer for cfg.
func DrawShapeWith(cfg DrawShapeConfig) *Analyzer {
	return &Analyzer{
		Name: "drawshape",
		Doc: "requires operator/fitness roles and hot-listed functions to have " +
			"content-independent RNG draw shapes: no draw (through any call chain) " +
			"may be guarded by genome or population content",
		Run: func(pass *Pass) {
			if pass.Facts == nil {
				return
			}
			for _, file := range pass.Files {
				for _, decl := range file.Decls {
					fd, ok := decl.(*ast.FuncDecl)
					if !ok || fd.Body == nil {
						continue
					}
					if !drawShapeChecked(pass, fd, &cfg) {
						continue
					}
					n := pass.Facts.Graph.NodeOf(fd)
					if n == nil {
						continue
					}
					if exemptNode(cfg.Exempt, n.Name) {
						continue
					}
					shape := pass.Facts.DrawShape(n)
					if shape == nil {
						continue
					}
					for _, pos := range shape.ContentDep {
						pass.Reportf(pos, "drawshape",
							"content-dependent RNG draw reachable from %s (shape %s): the draw executes only under a condition that reads genome/population content, so seeded runs diverge with population state",
							n.Name, shape)
					}
				}
			}
		},
	}
}

// drawShapeChecked reports whether fd is in the rule's scope: a purity
// role method or a hot-listed function.
func drawShapeChecked(pass *Pass, fd *ast.FuncDecl, cfg *DrawShapeConfig) bool {
	if allowedFunc(cfg.Hot, pass.PkgPath, fd.Name.Name) {
		return true
	}
	if fd.Recv == nil {
		return false
	}
	for i := range cfg.Roles {
		role := &cfg.Roles[i]
		if role.Method == fd.Name.Name && roleMatches(pass, fd, role) {
			return true
		}
	}
	return false
}

// exemptNode matches a qualified node name against the exemption list
// (exact, receiver-sensitive).
func exemptNode(exempt []string, name string) bool {
	for _, e := range exempt {
		if e == name {
			return true
		}
	}
	return false
}
