package analysis

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"
)

var update = flag.Bool("update", false, "rewrite testdata golden files")

// TestJSONGolden locks the -json output format: the full registry over
// every fixture, byte-for-byte. Regenerate with `go test -run JSONGolden
// -update ./internal/analysis`.
func TestJSONGolden(t *testing.T) {
	names := make([]string, 0, len(fixturePkgPaths))
	for n := range fixturePkgPaths {
		names = append(names, n)
	}
	sort.Strings(names)
	pkgs := make([]*Package, 0, len(names))
	for _, n := range names {
		pkgs = append(pkgs, loadFixture(t, n))
	}
	diags := RunAnalyzers("", pkgs, Registry())

	data, err := json.MarshalIndent(diags, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	data = append(data, '\n')

	golden := filepath.Join("testdata", "golden.json")
	if *update {
		if err := os.WriteFile(golden, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(data, want) {
		t.Errorf("JSON output drifted from golden file.\n-- got --\n%s\n-- want --\n%s", data, want)
	}

	// The JSON form must round-trip losslessly.
	var back []Diagnostic
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("round-trip unmarshal: %v", err)
	}
	if !reflect.DeepEqual(back, diags) {
		t.Error("diagnostics do not survive a JSON round trip")
	}
}
