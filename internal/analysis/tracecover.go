package analysis

// Golden-trace coverage audit (pgalint -tracecover): cross-references
// the declared equivalence pairs and the operator registry against the
// pinned golden-trace scenarios in internal/equiv and reports what the
// dynamic proof does not exercise. drawparity proves pairs *statically*;
// this audit answers the complementary question — which pairs and
// operators also have a byte-pinned trajectory (a scenario listing the
// operator, or a dedicated equivalence test) backing the static shapes
// with real draws.
//
// This file is a pure data transform: cmd/pgalint assembles the inputs
// from the product registries (core.DrawPairs, operators.DrawPairs,
// island.DrawPairs, operators.RegisteredOperators, equiv.Scenarios), so
// internal/analysis keeps its no-product-imports layering.

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// TracePair is one declared equivalence pair as the runtime registries
// describe it.
type TracePair struct {
	// A and B are the qualified member names (matching DrawPairSpec).
	A string `json:"a"`
	B string `json:"b"`
	// Op is the operator type name exercised by golden scenarios
	// ("KPoint"), empty for non-operator pairs.
	Op string `json:"op,omitempty"`
	// Test names a dedicated equivalence test pinning the pair, empty
	// when coverage must come from a golden scenario.
	Test string `json:"test,omitempty"`
	// Why documents what makes the two members interchangeable.
	Why string `json:"why,omitempty"`
}

// TraceScenario is one pinned golden trace and the operator type names
// it exercises.
type TraceScenario struct {
	Name string   `json:"name"`
	Ops  []string `json:"ops"`
}

// PairCoverage is the audit verdict for one pair.
type PairCoverage struct {
	Pair TracePair `json:"pair"`
	// Scenarios lists the golden scenarios exercising Pair.Op.
	Scenarios []string `json:"scenarios,omitempty"`
	// Covered is true when at least one scenario or a dedicated test
	// backs the pair.
	Covered bool `json:"covered"`
}

// TraceCoverReport is the full audit result.
type TraceCoverReport struct {
	Pairs []PairCoverage `json:"pairs"`
	// UncoveredPairs is the gate: equivalence pairs with neither a
	// golden scenario nor a dedicated test.
	UncoveredPairs []string `json:"uncovered_pairs"`
	// UncoveredOps lists registered operators no golden scenario
	// exercises — informational (not every operator is pair-backed).
	UncoveredOps []string `json:"uncovered_ops"`
	ScenarioN    int      `json:"scenarios"`
	OperatorN    int      `json:"operators"`
}

// Failed reports whether the audit gate fails: every declared
// equivalence pair must have golden coverage.
func (r *TraceCoverReport) Failed() bool { return len(r.UncoveredPairs) > 0 }

// BuildTraceCover computes the audit from the runtime registries.
// operators lists every registered operator type name; scenarios the
// pinned traces with their exercised operator names.
func BuildTraceCover(pairs []TracePair, operators []string, scenarios []TraceScenario) *TraceCoverReport {
	byOp := make(map[string][]string)
	for _, sc := range scenarios {
		for _, op := range sc.Ops {
			byOp[op] = append(byOp[op], sc.Name)
		}
	}
	rep := &TraceCoverReport{ScenarioN: len(scenarios), OperatorN: len(operators)}
	for _, p := range pairs {
		pc := PairCoverage{Pair: p}
		if p.Op != "" {
			pc.Scenarios = append([]string(nil), byOp[p.Op]...)
			sort.Strings(pc.Scenarios)
		}
		pc.Covered = len(pc.Scenarios) > 0 || p.Test != ""
		if !pc.Covered {
			rep.UncoveredPairs = append(rep.UncoveredPairs, p.A+" / "+p.B)
		}
		rep.Pairs = append(rep.Pairs, pc)
	}
	for _, op := range operators {
		if len(byOp[op]) == 0 {
			rep.UncoveredOps = append(rep.UncoveredOps, op)
		}
	}
	sort.Strings(rep.UncoveredPairs)
	sort.Strings(rep.UncoveredOps)
	return rep
}

// Markdown renders the report as the CI artifact table.
func (r *TraceCoverReport) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# pgalint -tracecover\n\n")
	fmt.Fprintf(&b, "%d equivalence pairs, %d registered operators, %d golden scenarios.\n\n",
		len(r.Pairs), r.OperatorN, r.ScenarioN)
	b.WriteString("| pair | coverage |\n|---|---|\n")
	for _, pc := range r.Pairs {
		cov := "**UNCOVERED**"
		switch {
		case len(pc.Scenarios) > 0 && pc.Pair.Test != "":
			cov = fmt.Sprintf("%d scenario(s), test %s", len(pc.Scenarios), pc.Pair.Test)
		case len(pc.Scenarios) > 0:
			cov = fmt.Sprintf("%d scenario(s): %s", len(pc.Scenarios), strings.Join(pc.Scenarios, ", "))
		case pc.Pair.Test != "":
			cov = "test " + pc.Pair.Test
		}
		fmt.Fprintf(&b, "| %s / %s | %s |\n", pc.Pair.A, pc.Pair.B, cov)
	}
	if len(r.UncoveredOps) > 0 {
		fmt.Fprintf(&b, "\nOperators with no golden scenario (informational): %s\n",
			strings.Join(r.UncoveredOps, ", "))
	}
	if r.Failed() {
		fmt.Fprintf(&b, "\nGATE FAILED: %d uncovered pair(s).\n", len(r.UncoveredPairs))
	} else {
		b.WriteString("\nAll equivalence pairs have golden coverage.\n")
	}
	return b.String()
}

// JSON renders the report for machine consumption.
func (r *TraceCoverReport) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}
