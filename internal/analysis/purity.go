package analysis

// purity: the operator/fitness contract, machine-checked.
//
// Every engine in the module assumes the pluggable pieces — Problem
// fitness functions, selection, crossover and mutation operators — are
// pure apart from their *documented* argument mutation: Mutate edits the
// genome it was handed, CrossInto fills the two child slots and its
// scratch, SelectScratch uses its scratch; nothing else. The assumption
// is what makes three things sound at once:
//
//   - determinism: a fitness function drawing from math/rand or the wall
//     clock silently breaks seeded replay (the survey's §2 contract);
//   - parallel evaluation: the master-slave farm and the parallel
//     reproduction engine call Evaluate concurrently on shared Problem
//     values, so hidden receiver/global mutation is a data race;
//   - engine pooling: the in-place operator layer reuses buffers across
//     births, so an operator mutating an undocumented argument corrupts
//     a neighbour's state.
//
// A local rule cannot check this: the side effect usually hides behind a
// helper call. The summary engine makes it a bitset comparison — a
// method matching a role's name and shape must have no effects beyond
// the role's allowance, no matter how deep the call chain that produces
// them. Role matching is by method name and parameter type names (the
// same name-based matching isRNGStream uses), so the contract follows
// the interfaces without needing fixtures to import the real packages.

import (
	"go/ast"
	"go/types"
	"strings"
)

// PurityRole describes one checked method shape and its effect allowance.
type PurityRole struct {
	// Method is the method name ("Evaluate", "Mutate", ...).
	Method string
	// Params are type-name patterns for the non-receiver parameters, in
	// order; "A|B" alternates, "*" matches anything. The method matches
	// only if the parameter count and every name agree.
	Params []string
	// Results is the required result count.
	Results int
	// Mutable lists unified parameter indices (0 = receiver) the role is
	// documented to mutate.
	Mutable []int
	// RNG lists unified indices of the stream the role may draw from (on
	// the calling goroutine only).
	RNG []int
}

// PurityConfig configures the purity analyzer.
type PurityConfig struct {
	// Roles are the checked contracts.
	Roles []PurityRole
	// Exempt lists package-qualified method names
	// ("pga/internal/core.Evaluate") excluded from role checking even when
	// their shape matches — for documented, deliberately stateful wrappers
	// whose synchronisation the purity summary cannot see. Matching is the
	// same pkgPath+"."+name rule the hiddenalloc hot list uses, so every
	// same-named method in the package is exempted together; keep such
	// packages small.
	Exempt []string
}

// DefaultPurityConfig returns the repository's operator contracts:
// Problem.Evaluate, Mutator.Mutate, Crossover.Cross, InPlaceCrossover.
// CrossInto, Selector.Select, ScratchSelector.SelectScratch and
// BatchProblem.EvaluateBatch.
func DefaultPurityConfig() PurityConfig {
	return PurityConfig{Roles: []PurityRole{
		{Method: "Evaluate", Params: []string{"Genome"}, Results: 1},
		{Method: "Mutate", Params: []string{"Genome", "Source|Rand"},
			Mutable: []int{1}, RNG: []int{2}},
		{Method: "Cross", Params: []string{"Genome", "Genome", "Source|Rand"},
			Results: 2, RNG: []int{3}},
		{Method: "CrossInto", Params: []string{"Genome", "Genome", "Genome", "Genome", "Source|Rand", "Scratch"},
			Mutable: []int{3, 4, 6}, RNG: []int{5}},
		{Method: "Select", Params: []string{"Population", "Direction", "Source|Rand"},
			Results: 1, RNG: []int{3}},
		{Method: "SelectScratch", Params: []string{"Population", "Direction", "Source|Rand", "Scratch"},
			Results: 1, Mutable: []int{4}, RNG: []int{3}},
		// Batched fitness: reads the genome slice, fills the output slice.
		// Slice parameters have no named element-type signature to match
		// on, so the shape is name + arity + the mutable output slot.
		{Method: "EvaluateBatch", Params: []string{"*", "*"},
			Mutable: []int{2}},
	}, Exempt: []string{
		// CachedProblem.Evaluate memoises fitness behind a mutex: the
		// receiver mutation is the documented point of the type, and the
		// lock restores the concurrent-Evaluate safety the rule protects.
		"pga/internal/core.Evaluate",
	}}
}

// Purity builds the purity analyzer with the default configuration.
func Purity() *Analyzer { return PurityWith(DefaultPurityConfig()) }

// PurityWith builds the purity analyzer with cfg (test hook).
func PurityWith(cfg PurityConfig) *Analyzer {
	return &Analyzer{
		Name: "purity",
		Doc: "requires fitness functions and operators (Evaluate/Mutate/Cross/" +
			"CrossInto/Select/SelectScratch shapes) to be effect-free apart from " +
			"their documented argument mutation: no receiver or global writes, no " +
			"wall clock, no math/rand, no undocumented RNG draws — through any call " +
			"chain",
		Run: func(pass *Pass) {
			if pass.Facts == nil {
				return
			}
			for _, file := range pass.Files {
				for _, decl := range file.Decls {
					fd, ok := decl.(*ast.FuncDecl)
					if !ok || fd.Recv == nil || fd.Body == nil {
						continue
					}
					if allowedFunc(cfg.Exempt, pass.PkgPath, fd.Name.Name) {
						continue
					}
					for i := range cfg.Roles {
						role := &cfg.Roles[i]
						if role.Method == fd.Name.Name && roleMatches(pass, fd, role) {
							checkPurity(pass, fd, role)
							break
						}
					}
				}
			}
		},
	}
}

// roleMatches reports whether fd's signature has the role's shape.
func roleMatches(pass *Pass, fd *ast.FuncDecl, role *PurityRole) bool {
	obj, ok := pass.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return false
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	if sig.Params().Len() != len(role.Params) || sig.Results().Len() != role.Results {
		return false
	}
	for i, pattern := range role.Params {
		if !typeNameMatches(pattern, sig.Params().At(i).Type()) {
			return false
		}
	}
	return true
}

// typeNameMatches checks a "A|B"/"*" pattern against the (pointer-
// unwrapped) named type of t.
func typeNameMatches(pattern string, t types.Type) bool {
	if pattern == "*" {
		return true
	}
	name := namedTypeName(t)
	for _, alt := range strings.Split(pattern, "|") {
		if alt == name {
			return true
		}
	}
	return false
}

// namedTypeName unwraps pointers and returns the named type's name, or
// "" for unnamed types.
func namedTypeName(t types.Type) string {
	for {
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
			continue
		}
		break
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// checkPurity compares the method's propagated summary against the
// role's allowance.
func checkPurity(pass *Pass, fd *ast.FuncDecl, role *PurityRole) {
	node := pass.Facts.Graph.NodeOf(fd)
	if node == nil {
		return
	}
	s := pass.Facts.Summary(node)
	if s == nil {
		return
	}
	paramName := func(i int) string {
		if v := s.ParamVar(i); v != nil {
			if i == 0 {
				return "its receiver"
			}
			return "parameter " + v.Name()
		}
		if i == 0 {
			return "its receiver"
		}
		return "an argument"
	}
	if bad := s.MutatesParam &^ maskOf(role.Mutable); bad != 0 {
		for i := 0; i < maxTrackedParams && bad != 0; i++ {
			if bad&(1<<uint(i)) == 0 {
				continue
			}
			bad &^= 1 << uint(i)
			pass.Reportf(fd.Name.Pos(), "purity",
				"%s mutates %s (directly or via a callee); the %s contract only "+
					"permits mutating %s",
				fd.Name.Name, paramName(i), role.Method, allowanceText(role, s))
		}
	}
	if s.WritesGlobal {
		pass.Reportf(fd.Name.Pos(), "purity",
			"%s writes package-level state (directly or via a callee); operators and "+
				"fitness functions must be pure so parallel evaluation and seeded "+
				"replay stay sound", fd.Name.Name)
	}
	if s.ReadsClock {
		pass.Reportf(fd.Name.Pos(), "purity",
			"%s observes the wall clock (directly or via a callee); evolution paths "+
				"must be schedule-independent", fd.Name.Name)
	}
	if s.RawRand {
		pass.Reportf(fd.Name.Pos(), "purity",
			"%s reaches math/rand or crypto/rand (directly or via a callee); draw "+
				"from the designated *rng.Source argument instead", fd.Name.Name)
	}
	if bad := s.DrawsParam &^ maskOf(role.RNG); bad != 0 {
		for i := 0; i < maxTrackedParams && bad != 0; i++ {
			if bad&(1<<uint(i)) == 0 {
				continue
			}
			bad &^= 1 << uint(i)
			pass.Reportf(fd.Name.Pos(), "purity",
				"%s draws from %s, which the %s contract does not designate as its "+
					"RNG stream", fd.Name.Name, paramName(i), role.Method)
		}
	}
	if s.SpawnDrawsParam != 0 {
		pass.Reportf(fd.Name.Pos(), "purity",
			"%s hands an RNG stream to a spawned goroutine that draws from it; "+
				"operators run synchronously inside the generation step", fd.Name.Name)
	}
}

// maskOf builds a bitset from unified indices.
func maskOf(indices []int) uint64 {
	var m uint64
	for _, i := range indices {
		if i >= 0 && i < maxTrackedParams {
			m |= 1 << uint(i)
		}
	}
	return m
}

// allowanceText renders the role's documented-mutable set for messages.
func allowanceText(role *PurityRole, s *Summary) string {
	if len(role.Mutable) == 0 {
		return "nothing"
	}
	var names []string
	for _, i := range role.Mutable {
		if v := s.ParamVar(i); v != nil {
			names = append(names, v.Name())
		}
	}
	if len(names) == 0 {
		return "its documented arguments"
	}
	return strings.Join(names, ", ")
}
