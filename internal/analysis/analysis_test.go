package analysis

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fixturePkgPaths assigns each fixture the import path it is checked
// under — the rules are path-sensitive (scopes, allowlists, exemptions).
var fixturePkgPaths = map[string]string{
	"norawrand_bad.go":    "pga/internal/operators",
	"norawrand_ok.go":     "pga/internal/operators",
	"norawrand_chain.go":  "pga/internal/operators",
	"nowallclock_bad.go":  "pga/internal/operators",
	"nowallclock_ok.go":   "pga/internal/hga",
	"blockingsend_bad.go": "pga/internal/p2p",
	"blockingsend_ok.go":  "pga/internal/supervise",
	"sharedrng_bad.go":    "pga/internal/rng",
	"sharedrng_ok.go":     "pga/internal/rng",
	"ctxleak_bad.go":      "pga/internal/cluster",
	"ctxleak_ok.go":       "pga/internal/cluster",
	"hiddenalloc_bad.go":  "pga/internal/ga",
	"hiddenalloc_ok.go":   "pga/internal/ga",
	"ignore.go":           "pga/internal/p2p",
	"rngflow_bad.go":      "pga/internal/rng",
	"rngflow_ok.go":       "pga/internal/rng",
	"purity_bad.go":       "pga/internal/operators",
	"purity_ok.go":        "pga/internal/operators",
	"purity_exempt.go":    "pga/internal/memo",
	"chantopo_bad.go":     "pga/internal/p2p",
	"chantopo_ok.go":      "pga/internal/island",
	"bareignore.go":       "pga/internal/ga",
	"goroleak_x.go":       "pga/internal/cluster",
	"goroleak_alias.go":   "pga/internal/cluster",
	"lockorder_bad.go":    "pga/internal/lockfix",
	"lockorder_ok.go":     "pga/internal/lockfix",
	"lockorder_x.go":      "pga/internal/lockfix",
	"boundedres_bad.go":   "pga/internal/transport",
	"boundedres_ok.go":    "pga/internal/transport",
	"boundedres_x.go":     "pga/internal/transport",
	"waitgroup_bad.go":    "pga/internal/farm",
	"waitgroup_ok.go":     "pga/internal/farm",
	"waitgroup_x.go":      "pga/internal/farm",
	"drawshape_bad.go":    "pga/internal/operators",
	"drawshape_ok.go":     "pga/internal/operators",
	"drawparity_bad.go":   "pga/internal/pairfix",
	"drawparity_ok.go":    "pga/internal/pairfix2",
	"auxrng.go":           "pga/internal/fixrng",
	"auxtail.go":          "pga/internal/fixgen",
	"auxchan.go":          "pga/internal/chanutil",
	"auxrand.go":          "pga/internal/jitter",
	"auxlock.go":          "pga/internal/lockutil",
	"auxgrow.go":          "pga/internal/growq",
	"auxwg.go":            "pga/internal/wgutil",
	"auxjoin.go":          "pga/internal/joinutil",
}

// fixtureGroups lists the aux fixtures a fixture imports; they are
// loaded first (so the fixture importer can resolve them), analyzed
// together, and their want markers checked alongside the main file —
// the interprocedural rules need real cross-package call chains.
var fixtureGroups = map[string][]string{
	"purity_bad.go":      {"auxrng.go"},
	"purity_ok.go":       {"auxrng.go"},
	"chantopo_bad.go":    {"auxchan.go"},
	"norawrand_chain.go": {"auxrand.go"},
	"goroleak_x.go":      {"auxjoin.go"},
	"lockorder_x.go":     {"auxlock.go"},
	"boundedres_x.go":    {"auxgrow.go"},
	"waitgroup_x.go":     {"auxwg.go"},
	"drawshape_bad.go":   {"auxrng.go", "auxtail.go"},
	"drawshape_ok.go":    {"auxrng.go"},
	"drawparity_bad.go":  {"auxrng.go"},
	"drawparity_ok.go":   {"auxrng.go"},
}

// The fixture loader shares one file set, one stdlib source importer and
// one parse cache across the test binary; stdlib packages are
// type-checked from source once.
var (
	fixtureFset  = token.NewFileSet()
	fixtureStd   = importer.ForCompiler(fixtureFset, "source", nil)
	parsedCache  = map[string]*ast.File{}
	checkedCache = map[string]*Package{}
	// fixtureTypes registers checked fixture packages by their fake
	// import path, so later fixtures can import earlier ones.
	fixtureTypes = map[string]*types.Package{}
)

// fixtureImporter resolves fixture-internal import paths from the
// already-checked fixtures and everything else from the stdlib source
// importer — the test-side analogue of moduleImporter.
type fixtureImporter struct{}

func (fixtureImporter) Import(path string) (*types.Package, error) {
	if p, ok := fixtureTypes[path]; ok {
		return p, nil
	}
	return fixtureStd.Import(path)
}

// parseFixture parses testdata/name once.
func parseFixture(t *testing.T, name string) *ast.File {
	t.Helper()
	if f, ok := parsedCache[name]; ok {
		return f
	}
	path := filepath.Join("testdata", name)
	f, err := parser.ParseFile(fixtureFset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse %s: %v", path, err)
	}
	parsedCache[name] = f
	return f
}

// loadFixtureAs type-checks testdata/name as a single-file package with
// the given import path.
func loadFixtureAs(t *testing.T, name, pkgPath string) *Package {
	t.Helper()
	key := name + "@" + pkgPath
	if p, ok := checkedCache[key]; ok {
		return p
	}
	pkg := &Package{
		Path:  pkgPath,
		Dir:   "testdata",
		Fset:  fixtureFset,
		Files: []*ast.File{parseFixture(t, name)},
	}
	checkPackage(pkg, fixtureImporter{})
	if len(pkg.TypeErrors) > 0 {
		t.Fatalf("fixture %s (%s): type errors: %v", name, pkgPath, pkg.TypeErrors)
	}
	checkedCache[key] = pkg
	fixtureTypes[pkgPath] = pkg.Types
	return pkg
}

// fixtureGroupPkgs loads a fixture together with its aux fixtures, aux
// packages first.
func fixtureGroupPkgs(t *testing.T, name string) []*Package {
	t.Helper()
	var pkgs []*Package
	for _, aux := range fixtureGroups[name] {
		pkgs = append(pkgs, loadFixture(t, aux))
	}
	return append(pkgs, loadFixture(t, name))
}

// loadFixture loads testdata/name under its default import path.
func loadFixture(t *testing.T, name string) *Package {
	t.Helper()
	pkgPath, ok := fixturePkgPaths[name]
	if !ok {
		t.Fatalf("fixture %s has no entry in fixturePkgPaths", name)
	}
	return loadFixtureAs(t, name, pkgPath)
}

// runFixture runs one analyzer over one fixture and its aux packages.
func runFixture(t *testing.T, a *Analyzer, name string) []Diagnostic {
	t.Helper()
	return RunAnalyzers("", fixtureGroupPkgs(t, name), []*Analyzer{a})
}

// wantLines scans a fixture for `// want rule1 rule2` markers and
// returns the line numbers expecting a finding of rule.
func wantLines(t *testing.T, name, rule string) map[int]bool {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatalf("read fixture %s: %v", name, err)
	}
	want := map[int]bool{}
	for i, line := range strings.Split(string(data), "\n") {
		_, marker, ok := strings.Cut(line, "// want ")
		if !ok {
			continue
		}
		for _, r := range strings.Fields(marker) {
			if r == rule {
				want[i+1] = true
			}
		}
	}
	return want
}

// checkRule asserts that analyzer a reports on exactly the lines marked
// `// want <rule>` across the fixture and its aux files — the seeded
// violations are caught and the corrected code stays silent.
func checkRule(t *testing.T, a *Analyzer, fixture string) {
	t.Helper()
	files := append(append([]string(nil), fixtureGroups[fixture]...), fixture)
	diags := runFixture(t, a, fixture)
	want := map[string]map[int]bool{}
	for _, f := range files {
		want[filepath.Join("testdata", f)] = wantLines(t, f, a.Name)
	}
	got := map[string]map[int]bool{}
	for _, d := range diags {
		if d.Rule != a.Name {
			t.Errorf("%s: diagnostic with rule %q from analyzer %q", fixture, d.Rule, a.Name)
		}
		if got[d.File] == nil {
			got[d.File] = map[int]bool{}
		}
		got[d.File][d.Line] = true
	}
	for file, lines := range want {
		for line := range lines {
			if !got[file][line] {
				t.Errorf("%s:%d: expected a %s finding, got none", file, line, a.Name)
			}
		}
	}
	for _, d := range diags {
		if !want[d.File][d.Line] {
			t.Errorf("%s:%d: unexpected finding: %s", d.File, d.Line, d)
		}
	}
}

// TestBareIgnores pins the ignore-justification check: every directive
// in bareignore.go whose rule list is not followed by a justification is
// reported under the unsuppressible "ignore" rule — including the one
// sitting directly under a justified `//pgalint:ignore ignore` attempt.
// Expectations are derived by scanning the fixture (a `// want` marker
// on a directive line would read as its justification).
func TestBareIgnores(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("testdata", "bareignore.go"))
	if err != nil {
		t.Fatal(err)
	}
	want := map[int]bool{}
	for i, line := range strings.Split(string(data), "\n") {
		_, rest, ok := strings.Cut(line, ignoreDirective)
		if !ok {
			continue
		}
		if len(strings.Fields(rest)) < 2 {
			want[i+1] = true
		}
	}
	if len(want) != 4 {
		t.Fatalf("fixture drifted: expected 4 bare directives, found %d", len(want))
	}
	diags := RunAnalyzers("", fixtureGroupPkgs(t, "bareignore.go"), nil)
	got := map[int]bool{}
	for _, d := range diags {
		if d.Rule != "ignore" {
			t.Errorf("unexpected rule %q in %s", d.Rule, d)
			continue
		}
		got[d.Line] = true
	}
	for line := range want {
		if !got[line] {
			t.Errorf("bareignore.go:%d: bare directive not reported", line)
		}
	}
	for line := range got {
		if !want[line] {
			t.Errorf("bareignore.go:%d: unexpected ignore finding", line)
		}
	}
}

func TestIgnoreDirectives(t *testing.T) {
	// ignore.go holds four bare sends: three suppressed (above-line,
	// same-line, "all"), one covered only by a misdirected ignore.
	checkRule(t, BlockingSend(), "ignore.go")
	diags := runFixture(t, BlockingSend(), "ignore.go")
	if len(diags) != 1 {
		t.Fatalf("ignore.go: want exactly 1 surviving finding, got %d: %v", len(diags), diags)
	}
}

func TestPathMatch(t *testing.T) {
	cases := []struct {
		pattern, path string
		want          bool
	}{
		{"pga/internal/rng", "pga/internal/rng", true},
		{"pga/internal/rng", "pga/internal/rng2", false},
		{"pga/cmd/...", "pga/cmd/pgalint", true},
		{"pga/cmd/...", "pga/cmd", true},
		{"pga/cmd/...", "pga/cmdx", false},
		{"pga/internal/...", "pga/internal/island", true},
	}
	for _, c := range cases {
		if got := pathMatch(c.pattern, c.path); got != c.want {
			t.Errorf("pathMatch(%q, %q) = %v, want %v", c.pattern, c.path, got, c.want)
		}
	}
}

// TestRepositoryIsClean is the same gate CI runs via `go run
// ./cmd/pgalint ./...`: the module itself must satisfy its own
// determinism and concurrency contracts (modulo justified ignores).
func TestRepositoryIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module type check in -short mode")
	}
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	mod, err := LoadModule(root)
	if err != nil {
		t.Fatal(err)
	}
	for _, pkg := range mod.Pkgs {
		for _, te := range pkg.TypeErrors {
			t.Errorf("%s: type error: %v", pkg.Path, te)
		}
	}
	diags := RunAnalyzers(mod.Root, mod.Pkgs, Registry())
	for _, d := range diags {
		t.Errorf("repository violation: %s", d)
	}
}

func TestLoadModuleShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module type check in -short mode")
	}
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	mod, err := LoadModule(root)
	if err != nil {
		t.Fatal(err)
	}
	if mod.Path != "pga" {
		t.Fatalf("module path = %q, want pga", mod.Path)
	}
	seen := map[string]int{}
	for i, pkg := range mod.Pkgs {
		seen[pkg.Path] = i
	}
	for _, path := range []string{"pga", "pga/internal/rng", "pga/internal/island", "pga/cmd/pgalint"} {
		if _, ok := seen[path]; !ok {
			t.Errorf("LoadModule missed package %s", path)
		}
	}
	// Dependency-first order: rng precedes island, which precedes pga.
	if !(seen["pga/internal/rng"] < seen["pga/internal/island"] && seen["pga/internal/island"] < seen["pga"]) {
		t.Errorf("packages not in dependency order: rng=%d island=%d pga=%d",
			seen["pga/internal/rng"], seen["pga/internal/island"], seen["pga"])
	}
}
