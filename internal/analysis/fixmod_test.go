package analysis

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// TestFixtureModuleLoads proves the loader and the interprocedural
// layer degrade gracefully: fixmod/broken does not type-check, yet
// LoadModule returns every package, the call graph is built from the
// partial information, and the analyzer suite runs to completion
// without findings (missing type info suppresses edges, never invents
// them).
func TestFixtureModuleLoads(t *testing.T) {
	mod, err := LoadModule(filepath.Join("testdata", "fixmod"))
	if err != nil {
		t.Fatal(err)
	}
	if mod.Path != "fixmod" {
		t.Fatalf("module path = %q, want fixmod", mod.Path)
	}
	byPath := map[string]*Package{}
	for _, pkg := range mod.Pkgs {
		byPath[pkg.Path] = pkg
	}
	for _, path := range []string{"fixmod/util", "fixmod/good", "fixmod/broken"} {
		if byPath[path] == nil {
			t.Fatalf("LoadModule missed package %s", path)
		}
	}
	if len(byPath["fixmod/broken"].TypeErrors) == 0 {
		t.Error("fixmod/broken should carry type errors")
	}
	for _, path := range []string{"fixmod/util", "fixmod/good"} {
		if n := len(byPath[path].TypeErrors); n != 0 {
			t.Errorf("%s: %d unexpected type errors: %v", path, n, byPath[path].TypeErrors)
		}
	}
	diags := RunAnalyzers(mod.Root, mod.Pkgs, Registry())
	if len(diags) != 0 {
		t.Errorf("fixmod should lint clean, got %v", diags)
	}
}

// TestGraphJSONGolden locks the -graph output format over the fixture
// module, byte-for-byte — node naming, closure numbering, edge kinds
// and root-relative positions. Regenerate with `go test -run
// GraphJSONGolden -update ./internal/analysis`.
func TestGraphJSONGolden(t *testing.T) {
	mod, err := LoadModule(filepath.Join("testdata", "fixmod"))
	if err != nil {
		t.Fatal(err)
	}
	data, err := BuildGraph(mod.Pkgs).JSON(mod.Root, mod.Fset)
	if err != nil {
		t.Fatal(err)
	}
	data = append(data, '\n')

	golden := filepath.Join("testdata", "fixmod_graph.json")
	if *update {
		if err := os.WriteFile(golden, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(data, want) {
		t.Errorf("graph JSON drifted from golden.\n-- got --\n%s\n-- want --\n%s", data, want)
	}
}
