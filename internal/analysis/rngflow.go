package analysis

// rngflow: the interprocedural generalization of sharedrng.
//
// sharedrng catches the syntactic form of cross-goroutine stream sharing
// — a go-closure capturing an *rng.Source that is also used outside. But
// the same determinism break survives any amount of indirection the
// local rule cannot see:
//
//	go worker(r)          // named function draws from r on its goroutine
//	helper(r)             // helper spawns a drawer internally
//	for i := ... {
//	    go worker(r)      // one stream, N goroutines
//	}
//
// Using the summary engine, every function knows — transitively, through
// any call chain — which of its RNG streams are drawn on the calling
// goroutine (Draws) and which escape to a spawned goroutine that draws
// (SpawnDraws). A violation is any stream with:
//
//  1. both spawned-goroutine and same-goroutine draw evidence, or
//  2. two distinct spawn sites drawing it (two goroutines, one stream), or
//  3. a single spawn-draw site inside a loop whose body does not also
//     declare the stream — the static site is one, the dynamic
//     goroutines are many. The sanctioned `ws := r.Split()` inside the
//     loop body stays clean: its stream is declared per iteration.
//
// The fix is the same as for sharedrng: Split() a child stream per
// goroutine, or restructure so each goroutine owns its stream.

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// RngFlow builds the rngflow analyzer.
func RngFlow() *Analyzer {
	return &Analyzer{
		Name: "rngflow",
		Doc: "flags an RNG stream drawn from two goroutines through any call chain: " +
			"spawned-goroutine draws combined with same-goroutine draws, multiple " +
			"spawn sites, or a spawn-draw in a loop that does not own the stream; " +
			"the interprocedural form of sharedrng",
		Run: runRngFlow,
	}
}

func runRngFlow(pass *Pass) {
	if pass.Facts == nil {
		return
	}
	for _, n := range pass.Facts.Graph.Nodes {
		// Package identity, not path: fixture harnesses check several
		// packages under one path, and each pass must own only its nodes.
		if n.Pkg == nil || pass.Pkg == nil || n.Pkg.Types != pass.Pkg {
			continue
		}
		checkNodeRngFlow(pass, n)
	}
}

func checkNodeRngFlow(pass *Pass, n *Node) {
	s := pass.Facts.Summary(n)
	if s == nil || len(s.SpawnDraws) == 0 {
		return
	}
	// Deterministic variable order: by declaration position.
	vars := make([]*types.Var, 0, len(s.SpawnDraws))
	for v := range s.SpawnDraws {
		vars = append(vars, v)
	}
	sort.Slice(vars, func(i, j int) bool { return vars[i].Pos() < vars[j].Pos() })

	for _, v := range vars {
		spawns := sortedPositions(s.SpawnDraws[v])
		syncs := sortedPositions(s.Draws[v])
		switch {
		case len(syncs) > 0:
			pass.Reportf(spawns[0], "rngflow",
				"rng stream %q is drawn on a goroutine spawned here and also on the "+
					"creating goroutine (%s); draws interleave nondeterministically — "+
					"Split() a child stream for the goroutine",
				v.Name(), pass.Fset.Position(syncs[0]))
		case len(spawns) > 1:
			pass.Reportf(spawns[1], "rngflow",
				"rng stream %q is drawn on a second spawned goroutine (first spawn at %s); "+
					"one stream may feed only one goroutine — Split() a child per spawn",
				v.Name(), pass.Fset.Position(spawns[0]))
		case spawnInForeignLoop(n, v, spawns[0]):
			pass.Reportf(spawns[0], "rngflow",
				"rng stream %q is handed to a goroutine spawned inside a loop but is "+
					"declared outside it: every iteration's goroutine draws from the same "+
					"stream — Split() a child inside the loop body",
				v.Name())
		}
	}
}

// sortedPositions returns a sorted copy.
func sortedPositions(ps []token.Pos) []token.Pos {
	out := append([]token.Pos(nil), ps...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// spawnInForeignLoop reports whether pos sits inside a for/range statement
// (within n's body) that does not also contain v's declaration — the
// one-static-site-many-goroutines case.
func spawnInForeignLoop(n *Node, v *types.Var, pos token.Pos) bool {
	body := n.Body()
	if body == nil {
		return false
	}
	found := false
	var visit func(ast.Node) bool
	visit = func(node ast.Node) bool {
		if found || node == nil {
			return false
		}
		var loopBody *ast.BlockStmt
		switch x := node.(type) {
		case *ast.ForStmt:
			loopBody = x.Body
		case *ast.RangeStmt:
			loopBody = x.Body
		}
		if loopBody != nil && loopBody.Pos() <= pos && pos <= loopBody.End() {
			if v.Pos() < loopBody.Pos() || v.Pos() > loopBody.End() {
				found = true
				return false
			}
		}
		return true
	}
	ast.Inspect(body, visit)
	return found
}
