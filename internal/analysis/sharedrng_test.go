package analysis

import "testing"

func TestSharedRNG(t *testing.T) {
	tests := []struct {
		name    string
		fixture string
	}{
		{"flags streams shared across goroutines", "sharedrng_bad.go"},
		{"silent on moved-in and argument streams", "sharedrng_ok.go"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			checkRule(t, SharedRNG(), tc.fixture)
		})
	}
}
