package analysis

// Symbolic RNG draw-shape summaries: for every call-graph node, a
// DrawShape describing how many internal/rng draws the function makes as
// a symbolic sum over loop bounds and parameters — `n×Chance + 1×Sample`
// for uniform crossover, `2×#1×Split` for the island seed-split loop —
// computed bottom-up over the same Tarjan SCC condensation the effect
// summaries use. The drawshape and drawparity rules are built on these:
// the first proves the PR 8 draw-compatibility contract (no draw may be
// guarded by genome/population *content*), the second proves declared
// equivalence pairs (allocating/in-place operators, scalar/batch
// evaluators, the New/WireStreams seed split) consume identical shapes.
//
// The abstraction is deliberately coarse and, like the rest of the suite,
// optimistic — a shape that cannot be resolved can only suppress findings,
// never invent them:
//
//   - A *draw site* is a method call on an identifier whose type is an
//     RNG stream (isRNGStream, shared with sharedrng). The term's kind is
//     the method name with the Into-variants normalized (SampleInto →
//     Sample, PermInto → Perm); argument values are not compared. A draw
//     site is never folded further, so rng.Intn's internal Uint64
//     rejection loop is not double-counted.
//   - Loops multiply the body's terms by a *bound symbol*: "n" for
//     X.Len() on a genome (or len of a Genes/Perm slice), "pop" for
//     Population lengths, "w" for packed words, "#k"/"len#k" for the
//     unified parameter at index k, a literal coefficient for constant
//     bounds, a struct-field name for config fields, and "?" when the
//     bound cannot be resolved. Additive constants in bounds are dropped
//     (n-1 ≈ n): equivalence pairs mirror each other's loop structure, so
//     the approximation cancels out in comparisons.
//   - Conditional draws gain a "cond" marker. If the condition mentions
//     genome/population content — a Fitness/Evaluated field, indexing
//     into Genes/Perm/Words/Members, a non-Len method on a genome-like
//     type, or a local already tainted by one of those (a per-body
//     fixpoint; taint does not cross calls or flow through parameters) —
//     the draw is additionally recorded as *content-dependent* with its
//     position. Len()/len() are structural, not content.
//   - Calls fold the callee's shape, multiplying by the surrounding
//     context; callee bound symbols are carried through unchanged (no
//     argument substitution). Calls into the same SCC, or bodies too
//     large to summarize, mark the shape Incomplete; rules skip
//     incomplete shapes.
//
// Known holes, accepted as documented approximations: draws inside
// closures invoked through variables, draws via method values, guards
// that merely *continue* past a draw, and content-dependent *trip counts*
// (ERX's adjacency walk) — the last surfaces as a "?" bound, and the
// golden traces in internal/equiv still pin those operators dynamically.

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strconv"
	"strings"
)

// maxDrawTerms bounds a canonical shape's term list; beyond it the shape
// is marked Incomplete rather than silently truncated.
const maxDrawTerms = 64

// maxContentDeps bounds the recorded content-dependent draw positions.
const maxContentDeps = 32

// maxSymbolDepth bounds the single-assignment chain walked when
// resolving a bound expression to a symbol.
const maxSymbolDepth = 4

// DrawTerm is one addend of a draw shape: Coeff × Mult… × Kind draws.
// Mult is a sorted multiset of bound symbols ("n", "pop", "w", "#1",
// "cond", "?", field names); an empty Mult means a straight-line count.
type DrawTerm struct {
	Coeff int
	Mult  []string
	Kind  string
}

// key is the canonical merge identity: kind plus the sorted multiset.
func (t DrawTerm) key() string { return t.Kind + "|" + strings.Join(t.Mult, "·") }

// String renders the term ("n×Chance", "2×Intn", "3·n×Uint64").
func (t DrawTerm) String() string {
	mult := strings.Join(t.Mult, "·")
	switch {
	case mult == "":
		return fmt.Sprintf("%d×%s", t.Coeff, t.Kind)
	case t.Coeff == 1:
		return mult + "×" + t.Kind
	default:
		return fmt.Sprintf("%d·%s×%s", t.Coeff, mult, t.Kind)
	}
}

// DrawShape is the symbolic draw summary of one function body, callees
// folded in.
type DrawShape struct {
	// Terms is the canonical sum, sorted by kind then multiplier.
	Terms []DrawTerm
	// ContentDep lists draw (or draw-carrying call) sites that execute
	// under a condition tainted by genome/population content.
	ContentDep []token.Pos
	// Incomplete marks shapes the engine could not fully resolve
	// (recursion, term blow-up); rules skip them.
	Incomplete bool
}

// String renders the canonical sum ("n×Chance + 1×Sample"), "no draws"
// for an empty shape, with an Incomplete marker when set.
func (s *DrawShape) String() string {
	if s == nil {
		return "unknown"
	}
	var parts []string
	for _, t := range s.Terms {
		parts = append(parts, t.String())
	}
	out := strings.Join(parts, " + ")
	if out == "" {
		out = "no draws"
	}
	if s.Incomplete {
		out += " (incomplete)"
	}
	return out
}

// EqualTerms reports whether two shapes have identical canonical terms
// (content flags and completeness are compared by the rules separately).
func (s *DrawShape) EqualTerms(o *DrawShape) bool {
	if len(s.Terms) != len(o.Terms) {
		return false
	}
	for i, t := range s.Terms {
		u := o.Terms[i]
		if t.Coeff != u.Coeff || t.Kind != u.Kind || len(t.Mult) != len(u.Mult) {
			return false
		}
		for j := range t.Mult {
			if t.Mult[j] != u.Mult[j] {
				return false
			}
		}
	}
	return true
}

// canonicalize sorts the multiplier multisets, merges equal terms, drops
// zero coefficients and orders the sum deterministically.
func (s *DrawShape) canonicalize() {
	merged := make(map[string]*DrawTerm, len(s.Terms))
	var order []string
	for i := range s.Terms {
		t := s.Terms[i]
		t.Mult = normalizeMult(t.Mult)
		k := t.key()
		if m, ok := merged[k]; ok {
			m.Coeff += t.Coeff
			continue
		}
		tc := t
		merged[k] = &tc
		order = append(order, k)
	}
	sort.Strings(order)
	s.Terms = s.Terms[:0]
	for _, k := range order {
		if m := merged[k]; m.Coeff != 0 {
			s.Terms = append(s.Terms, *m)
		}
	}
	if len(s.Terms) > maxDrawTerms {
		s.Terms = s.Terms[:maxDrawTerms]
		s.Incomplete = true
	}
}

// normalizeMult sorts a multiplier multiset and collapses repeated
// "cond" markers (nested conditions are still one condition).
func normalizeMult(mult []string) []string {
	if len(mult) == 0 {
		return nil
	}
	out := append([]string(nil), mult...)
	sort.Strings(out)
	w := 0
	for i, m := range out {
		if m == "cond" && i > 0 && out[i-1] == "cond" {
			continue
		}
		out[w] = m
		w++
	}
	return out[:w]
}

// normalizeDrawKind maps the Into-variants onto their allocating
// counterparts so equivalence pairs compare equal.
func normalizeDrawKind(name string) string {
	switch name {
	case "SampleInto":
		return "Sample"
	case "PermInto":
		return "Perm"
	}
	return name
}

// DrawShape returns the symbolic draw shape for n, computing all shapes
// on first use (lazily: only the drawshape/drawparity rules pay for it).
func (f *Facts) DrawShape(n *Node) *DrawShape {
	if f.drawShapes == nil {
		f.computeDrawShapes()
	}
	return f.drawShapes[n]
}

// computeDrawShapes walks the SCC condensation bottom-up so every
// resolved callee shape is final before its callers fold it in.
func (f *Facts) computeDrawShapes() {
	g := f.Graph
	f.drawShapes = make(map[*Node]*DrawShape, len(g.Nodes))
	sccOf := make(map[*Node]int, len(g.Nodes))
	for i, scc := range g.SCCs() {
		for _, n := range scc {
			sccOf[n] = i
		}
	}
	for _, scc := range g.SCCs() {
		for _, n := range scc {
			f.drawShapes[n] = f.drawShapeOf(n, sccOf)
		}
	}
}

// drawShapeOf computes one node's shape from its body plus the already
// final shapes of out-of-SCC callees.
func (f *Facts) drawShapeOf(n *Node, sccOf map[*Node]int) *DrawShape {
	shape := &DrawShape{}
	body := n.Body()
	info := infoOf(n)
	if body == nil || info == nil {
		return shape
	}
	w := &drawWalker{
		n:      n,
		info:   info,
		sum:    f.Summary(n),
		shapes: f.drawShapes,
		sccOf:  sccOf,
		edges:  make(map[*ast.CallExpr]*Edge),
		shape:  shape,
	}
	for _, e := range n.Out {
		if e.Kind == EdgeCall && e.Site != nil {
			w.edges[e.Site] = e
		}
	}
	w.collectLocals(body)
	w.scanStmt(body, drawCtx{coeff: 1})
	shape.canonicalize()
	return shape
}

// drawCtx is the multiplicative context of the walk: the loop symbols
// and constant coefficient enclosing the current statement, and whether
// a content-tainted condition guards it.
type drawCtx struct {
	mult    []string
	coeff   int
	tainted bool
}

// loop returns the context inside a loop with the given bound.
func (c drawCtx) loop(sym string, coeff int) drawCtx {
	out := c
	if coeff < 0 {
		coeff = 0
	}
	out.coeff *= coeff
	if sym != "" {
		out.mult = append(append([]string(nil), c.mult...), sym)
	}
	return out
}

// branch returns the context inside a conditional branch.
func (c drawCtx) branch(contentTainted bool) drawCtx {
	out := c
	out.mult = append(append([]string(nil), c.mult...), "cond")
	out.tainted = c.tainted || contentTainted
	return out
}

// drawWalker carries the per-body state of one shape computation.
type drawWalker struct {
	n      *Node
	info   *types.Info
	sum    *Summary
	shapes map[*Node]*DrawShape
	sccOf  map[*Node]int
	edges  map[*ast.CallExpr]*Edge

	// assigns maps single-assignment locals to their defining RHS; a nil
	// entry means the local is reassigned (unresolvable).
	assigns map[*types.Var]ast.Expr
	// tainted marks locals whose value derives from genome/population
	// content (per-body fixpoint).
	tainted map[*types.Var]bool

	shape *DrawShape
}

// collectLocals builds the single-assignment map and runs the content
// taint fixpoint over the whole body (closures included, conservatively:
// a closure reassigning an outer local disqualifies it).
func (w *drawWalker) collectLocals(body *ast.BlockStmt) {
	w.assigns = make(map[*types.Var]ast.Expr)
	w.tainted = make(map[*types.Var]bool)
	seen := make(map[*types.Var]bool)
	record := func(id *ast.Ident, rhs ast.Expr) {
		v := w.varOf(id)
		if v == nil {
			return
		}
		if seen[v] {
			w.assigns[v] = nil // reassigned: unresolvable
			return
		}
		seen[v] = true
		w.assigns[v] = rhs
	}
	ast.Inspect(body, func(nd ast.Node) bool {
		switch s := nd.(type) {
		case *ast.AssignStmt:
			aligned := len(s.Lhs) == len(s.Rhs)
			for i, lhs := range s.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				var rhs ast.Expr
				if aligned {
					rhs = s.Rhs[i]
				}
				record(id, rhs)
			}
		case *ast.RangeStmt:
			for _, kv := range []ast.Expr{s.Key, s.Value} {
				if id, ok := kv.(*ast.Ident); ok {
					record(id, nil)
				}
			}
		case *ast.IncDecStmt:
			if id, ok := unparen(s.X).(*ast.Ident); ok {
				record(id, nil)
			}
		}
		return true
	})

	// Content taint fixpoint: a local is tainted when any value assigned
	// to it (or the range operand it iterates) mentions content.
	for changed, rounds := true, 0; changed && rounds < 10; rounds++ {
		changed = false
		mark := func(id *ast.Ident, src ast.Expr) {
			v := w.varOf(id)
			if v == nil || w.tainted[v] || src == nil {
				return
			}
			if w.mentionsContent(src) {
				w.tainted[v] = true
				changed = true
			}
		}
		ast.Inspect(body, func(nd ast.Node) bool {
			switch s := nd.(type) {
			case *ast.AssignStmt:
				aligned := len(s.Lhs) == len(s.Rhs)
				for i, lhs := range s.Lhs {
					id, ok := lhs.(*ast.Ident)
					if !ok {
						continue
					}
					if aligned {
						mark(id, s.Rhs[i])
						continue
					}
					for _, rhs := range s.Rhs {
						mark(id, rhs)
					}
				}
			case *ast.RangeStmt:
				// Ranging over a content slice yields content elements
				// even though len() of the same slice is structural.
				content := w.mentionsContent(s.X)
				if sel, ok := unparen(s.X).(*ast.SelectorExpr); ok && contentSlices[sel.Sel.Name] {
					content = true
				}
				if content {
					for _, kv := range []ast.Expr{s.Key, s.Value} {
						if id, ok := kv.(*ast.Ident); ok {
							if v := w.varOf(id); v != nil && !w.tainted[v] {
								w.tainted[v] = true
								changed = true
							}
						}
					}
				}
			}
			return true
		})
	}
}

// varOf resolves an identifier to its variable object (definition or
// use), or nil.
func (w *drawWalker) varOf(id *ast.Ident) *types.Var {
	if v, ok := w.info.Defs[id].(*types.Var); ok {
		return v
	}
	if v, ok := w.info.Uses[id].(*types.Var); ok {
		return v
	}
	return nil
}

// contentFields are struct-field names whose read means genome or
// population content (as opposed to structure like N or Words length).
var contentFields = map[string]bool{
	"Fitness":   true,
	"Evaluated": true,
}

// contentSlices are field names whose *elements* are content; indexing
// or ranging over them taints, len() of them does not.
var contentSlices = map[string]bool{
	"Genes":   true,
	"Perm":    true,
	"Words":   true,
	"Members": true,
}

// contentTypes are the genome-like named types whose non-Len methods
// read content.
var contentTypes = map[string]bool{
	"Genome":      true,
	"BitString":   true,
	"RealVector":  true,
	"IntVector":   true,
	"Permutation": true,
	"Population":  true,
	"Individual":  true,
}

// mentionsContent reports whether e reads genome/population content:
// a content field, an element of a content slice, a non-Len method on a
// genome-like type, or a tainted local.
func (w *drawWalker) mentionsContent(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(nd ast.Node) bool {
		if found {
			return false
		}
		switch x := nd.(type) {
		case *ast.Ident:
			if v := w.varOf(x); v != nil && w.tainted[v] {
				found = true
			}
		case *ast.SelectorExpr:
			if contentFields[x.Sel.Name] {
				found = true
			}
		case *ast.IndexExpr:
			if sel, ok := unparen(x.X).(*ast.SelectorExpr); ok && contentSlices[sel.Sel.Name] {
				found = true
			}
		case *ast.CallExpr:
			if sel, ok := x.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name != "Len" {
				if t := w.info.TypeOf(sel.X); t != nil && contentTypes[namedTypeName(t)] {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// scanStmt walks one statement under ctx, pushing loop and branch
// contexts. Go statements and closure bodies are skipped: a spawned or
// stored closure draws on its own node's shape, not its parent's.
func (w *drawWalker) scanStmt(stmt ast.Stmt, ctx drawCtx) {
	switch s := stmt.(type) {
	case nil:
		return
	case *ast.BlockStmt:
		for _, st := range s.List {
			w.scanStmt(st, ctx)
		}
	case *ast.ExprStmt:
		w.scanExpr(s.X, ctx)
	case *ast.AssignStmt:
		for _, e := range s.Lhs {
			w.scanExpr(e, ctx)
		}
		for _, e := range s.Rhs {
			w.scanExpr(e, ctx)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						w.scanExpr(e, ctx)
					}
				}
			}
		}
	case *ast.IfStmt:
		// Init and Cond run unconditionally: `if r.Chance(p) {` draws
		// exactly once regardless of the branch taken.
		w.scanStmt(s.Init, ctx)
		w.scanExpr(s.Cond, ctx)
		inner := ctx.branch(w.mentionsContent(s.Cond))
		w.scanStmt(s.Body, inner)
		w.scanStmt(s.Else, inner)
	case *ast.ForStmt:
		w.scanStmt(s.Init, ctx)
		sym, coeff := w.loopBound(s)
		inner := ctx.loop(sym, coeff)
		w.scanExpr(s.Cond, inner)
		w.scanStmt(s.Post, inner)
		w.scanStmt(s.Body, inner)
	case *ast.RangeStmt:
		w.scanExpr(s.X, ctx)
		inner := ctx.loop(w.rangeBound(s.X), 1)
		w.scanStmt(s.Body, inner)
	case *ast.SwitchStmt:
		w.scanStmt(s.Init, ctx)
		w.scanExpr(s.Tag, ctx)
		tainted := s.Tag != nil && w.mentionsContent(s.Tag)
		for _, cc := range s.Body.List {
			clause := cc.(*ast.CaseClause)
			for _, e := range clause.List {
				w.scanExpr(e, ctx)
				tainted = tainted || w.mentionsContent(e)
			}
		}
		inner := ctx.branch(tainted)
		for _, cc := range s.Body.List {
			for _, st := range cc.(*ast.CaseClause).Body {
				w.scanStmt(st, inner)
			}
		}
	case *ast.TypeSwitchStmt:
		// Dispatch on concrete type is structural, not content.
		w.scanStmt(s.Init, ctx)
		inner := ctx.branch(false)
		for _, cc := range s.Body.List {
			for _, st := range cc.(*ast.CaseClause).Body {
				w.scanStmt(st, inner)
			}
		}
	case *ast.SelectStmt:
		for _, cc := range s.Body.List {
			clause := cc.(*ast.CommClause)
			inner := ctx.branch(false)
			w.scanStmt(clause.Comm, inner)
			for _, st := range clause.Body {
				w.scanStmt(st, inner)
			}
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.scanExpr(e, ctx)
		}
	case *ast.SendStmt:
		w.scanExpr(s.Chan, ctx)
		w.scanExpr(s.Value, ctx)
	case *ast.IncDecStmt:
		w.scanExpr(s.X, ctx)
	case *ast.DeferStmt:
		w.scanExpr(s.Call, ctx)
	case *ast.LabeledStmt:
		w.scanStmt(s.Stmt, ctx)
	case *ast.GoStmt:
		// Spawned draws belong to the goroutine's own shape.
	}
}

// scanExpr visits every call inside e (statements cannot nest in
// expressions except through closures, which are pruned).
func (w *drawWalker) scanExpr(e ast.Expr, ctx drawCtx) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(nd ast.Node) bool {
		switch x := nd.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			w.handleCall(x, ctx)
		}
		return true
	})
}

// handleCall records a draw site or folds a resolved callee's shape.
func (w *drawWalker) handleCall(call *ast.CallExpr, ctx drawCtx) {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if id, ok := unparen(sel.X).(*ast.Ident); ok {
			if v, ok := w.info.Uses[id].(*types.Var); ok && isRNGStream(v.Type()) {
				// A draw site terminates folding: rng methods that draw
				// internally (Intn's rejection loop) count once.
				w.addTerm(DrawTerm{
					Coeff: ctx.coeff,
					Mult:  ctx.mult,
					Kind:  normalizeDrawKind(sel.Sel.Name),
				})
				if ctx.tainted {
					w.addContentDep(call.Pos())
				}
				return
			}
		}
	}
	e := w.edges[call]
	if e == nil {
		return // unresolved (interface, func value, out of module): optimistic
	}
	if w.sccOf[e.Callee] == w.sccOf[w.n] {
		w.shape.Incomplete = true
		return
	}
	cs := w.shapes[e.Callee]
	if cs == nil {
		return
	}
	if cs.Incomplete {
		w.shape.Incomplete = true
	}
	for _, t := range cs.Terms {
		w.addTerm(DrawTerm{
			Coeff: ctx.coeff * t.Coeff,
			Mult:  append(append([]string(nil), ctx.mult...), t.Mult...),
			Kind:  t.Kind,
		})
	}
	if ctx.tainted && len(cs.Terms) > 0 {
		w.addContentDep(call.Pos())
	}
	for _, p := range cs.ContentDep {
		w.addContentDep(p)
	}
}

// addTerm appends a raw term (canonicalized at the end of the walk).
func (w *drawWalker) addTerm(t DrawTerm) {
	if t.Coeff == 0 {
		return
	}
	if len(w.shape.Terms) >= 4*maxDrawTerms {
		w.shape.Incomplete = true
		return
	}
	w.shape.Terms = append(w.shape.Terms, t)
}

// addContentDep records a content-dependent draw position, deduplicated.
func (w *drawWalker) addContentDep(pos token.Pos) {
	for _, p := range w.shape.ContentDep {
		if p == pos {
			return
		}
	}
	if len(w.shape.ContentDep) >= maxContentDeps {
		return
	}
	w.shape.ContentDep = append(w.shape.ContentDep, pos)
}

// loopBound resolves a for-loop's trip count to (symbol, coefficient):
// ("n", 1) for `i < n`, ("", 8) for a constant bound, ("?", 1) when the
// loop variable or bound cannot be identified.
func (w *drawWalker) loopBound(fs *ast.ForStmt) (string, int) {
	var loopVar *types.Var
	if as, ok := fs.Init.(*ast.AssignStmt); ok && len(as.Lhs) == 1 {
		if id, ok := as.Lhs[0].(*ast.Ident); ok {
			loopVar = w.varOf(id)
		}
	}
	if loopVar == nil {
		if inc, ok := fs.Post.(*ast.IncDecStmt); ok {
			if id, ok := unparen(inc.X).(*ast.Ident); ok {
				loopVar = w.varOf(id)
			}
		}
	}
	if fs.Cond == nil || loopVar == nil {
		return "?", 1
	}
	be, ok := unparen(fs.Cond).(*ast.BinaryExpr)
	if !ok {
		return "?", 1
	}
	var bound ast.Expr
	if w.isVar(be.X, loopVar) {
		bound = be.Y
	} else if w.isVar(be.Y, loopVar) {
		bound = be.X
	} else {
		return "?", 1
	}
	return w.symbolOf(bound, maxSymbolDepth)
}

// isVar reports whether e is an identifier for v.
func (w *drawWalker) isVar(e ast.Expr, v *types.Var) bool {
	id, ok := unparen(e).(*ast.Ident)
	return ok && w.varOf(id) == v
}

// rangeBound resolves a range operand to a bound symbol.
func (w *drawWalker) rangeBound(x ast.Expr) string {
	return w.rangeBoundDepth(x, maxSymbolDepth)
}

func (w *drawWalker) rangeBoundDepth(x ast.Expr, depth int) string {
	x = unparen(x)
	if depth == 0 {
		return "?"
	}
	// range over an integer (go 1.22): same resolution as a loop bound.
	if t := w.info.TypeOf(x); t != nil {
		if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsInteger != 0 {
			sym, coeff := w.symbolOf(x, depth)
			if sym == "" {
				return strconv.Itoa(coeff)
			}
			return sym
		}
	}
	switch e := x.(type) {
	case *ast.SelectorExpr:
		if s := sliceLenSymbol(e.Sel.Name); s != "" {
			return s
		}
		return "?"
	case *ast.Ident:
		v := w.varOf(e)
		if v == nil {
			return "?"
		}
		if w.sum != nil {
			if i := w.sum.ParamIndex(v); i >= 0 {
				return fmt.Sprintf("len#%d", i)
			}
		}
		if rhs, ok := w.assigns[v]; ok && rhs != nil {
			return w.rangeBoundDepth(rhs, depth-1)
		}
	}
	return "?"
}

// sliceLenSymbol maps well-known content-slice fields to their length
// symbols ("" for unknown fields).
func sliceLenSymbol(field string) string {
	switch field {
	case "Genes", "Perm":
		return "n"
	case "Words":
		return "w"
	case "Members":
		return "pop"
	}
	return ""
}

// symbolOf resolves a bound expression to (symbol, coefficient). An
// empty symbol means a pure constant; "?" means unresolvable. Additive
// constants are dropped; multiplicative constants fold into the
// coefficient.
func (w *drawWalker) symbolOf(e ast.Expr, depth int) (string, int) {
	if depth == 0 {
		return "?", 1
	}
	e = unparen(e)
	switch x := e.(type) {
	case *ast.BasicLit:
		if x.Kind == token.INT {
			if v, err := strconv.Atoi(x.Value); err == nil {
				return "", v
			}
		}
	case *ast.Ident:
		obj := w.info.Uses[x]
		if c, ok := obj.(*types.Const); ok {
			if v, ok := constant.Int64Val(constant.ToInt(c.Val())); ok {
				return "", int(v)
			}
		}
		if v, ok := obj.(*types.Var); ok {
			if w.sum != nil {
				if i := w.sum.ParamIndex(v); i >= 0 {
					return fmt.Sprintf("#%d", i), 1
				}
			}
			if rhs, ok := w.assigns[v]; ok && rhs != nil {
				return w.symbolOf(rhs, depth-1)
			}
		}
	case *ast.SelectorExpr:
		// A struct-field bound keeps its field name as the symbol: t.K
		// iterations render as "K×…"; the genome length field is "n".
		if x.Sel.Name == "N" {
			return "n", 1
		}
		if s := sliceLenSymbol(x.Sel.Name); s != "" {
			// A bare content-slice field as an int bound is unexpected;
			// treat it like its length.
			return s, 1
		}
		return x.Sel.Name, 1
	case *ast.CallExpr:
		if id, ok := unparen(x.Fun).(*ast.Ident); ok && (id.Name == "len" || id.Name == "cap") && len(x.Args) == 1 {
			return w.lenSymbol(x.Args[0], depth-1), 1
		}
		if sel, ok := x.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Len" && len(x.Args) == 0 {
			if t := w.info.TypeOf(sel.X); t != nil && namedTypeName(t) == "Population" {
				return "pop", 1
			}
			return "n", 1
		}
	case *ast.BinaryExpr:
		sx, cx := w.symbolOf(x.X, depth-1)
		sy, cy := w.symbolOf(x.Y, depth-1)
		switch {
		case sx == "" && sy == "":
			switch x.Op {
			case token.ADD:
				return "", cx + cy
			case token.SUB:
				return "", cx - cy
			case token.MUL:
				return "", cx * cy
			}
		case sx == "" && sy != "" && sy != "?":
			if x.Op == token.MUL {
				return sy, cx * cy
			}
			return sy, cy
		case sy == "" && sx != "" && sx != "?":
			if x.Op == token.MUL {
				return sx, cx * cy
			}
			return sx, cx
		}
	}
	return "?", 1
}

// lenSymbol resolves the operand of len()/cap() to a length symbol.
func (w *drawWalker) lenSymbol(e ast.Expr, depth int) string {
	e = unparen(e)
	switch x := e.(type) {
	case *ast.SelectorExpr:
		if s := sliceLenSymbol(x.Sel.Name); s != "" {
			return s
		}
		return "len(" + x.Sel.Name + ")"
	case *ast.Ident:
		v := w.varOf(x)
		if v == nil {
			return "?"
		}
		if w.sum != nil {
			if i := w.sum.ParamIndex(v); i >= 0 {
				return fmt.Sprintf("len#%d", i)
			}
		}
		if depth > 0 {
			if rhs, ok := w.assigns[v]; ok && rhs != nil {
				return w.lenSymbol(rhs, depth-1)
			}
		}
	}
	return "?"
}
