package fixture

// Cross-package fixture for boundedres: the per-peer queue grows through
// a helper in another package. Push's growth fact is parameter-indexed;
// the call-site substitution binds &b.pending to it, so the hot caller
// is charged and the diagnostic lands at the append inside growq.
// Checked as pga/internal/transport.

import growq "pga/internal/growq"

type batch struct {
	pending []int
}

func (b *batch) enqueue(v int) {
	growq.Push(&b.pending, v)
}
