// Package growq is a fixture helper: an innocent-looking push API whose
// append grows the caller's backing slice through a pointer parameter.
// growq itself is outside boundedres scope — the finding fires only when
// a scoped caller (boundedres_x.go) binds a hot struct field to dst, and
// it surfaces here at the real growth site. Checked as pga/internal/growq.
package growq

// Push appends v through the slice pointer.
func Push(dst *[]int, v int) {
	*dst = append(*dst, v) // want boundedres
}
