package fixture

// Seeded violation fixture for nowallclock: wall-clock reads inside
// generation-step and operator code (checked under a non-allowlisted
// package path such as pga/internal/operators).

import "time"

type individual struct {
	fitness float64
	stamp   time.Time
}

func step(pop []individual) {
	start := time.Now() // want nowallclock
	for i := range pop {
		pop[i].fitness++
	}
	_ = time.Since(start) // want nowallclock
}

func mutate(ind *individual) {
	time.Sleep(time.Millisecond) // want nowallclock
	ind.stamp = time.Time{}      // a time *value* is not a clock read
}

// helperLaundering never touches the time package itself: the clock
// read is two calls away, which only the summary engine can see. Every
// call edge into the tainted chain is flagged.
func helperLaundering(pop []individual) {
	stampAll(pop) // want nowallclock
}

func stampAll(pop []individual) {
	for i := range pop {
		pop[i].stamp = now() // want nowallclock
	}
}

func now() time.Time {
	return time.Now() // want nowallclock
}
