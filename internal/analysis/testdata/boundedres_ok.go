package fixture

// Corrected fixtures for boundedres: explicit channel capacity, a
// close-only signal channel, a reserving make before append, and a
// fixed-capacity ring that overwrites instead of growing. Checked as
// pga/internal/transport.

type ring struct {
	buf  []int
	head int
}

func newBuffered(depth int) chan int {
	return make(chan int, depth)
}

func newSignal() chan struct{} {
	return make(chan struct{}) // close-only signal channels are exempt
}

func gather(n int) []int {
	out := make([]int, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, i)
	}
	return out
}

func (r *ring) push(v int) {
	r.buf[r.head] = v
	r.head = (r.head + 1) % len(r.buf)
}
