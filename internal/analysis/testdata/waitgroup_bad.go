package fixture

// Seeded violations for waitgroup: Add executed on the spawned side
// (races the reaping Wait) and Add after Wait on the same counter.
// Checked as pga/internal/farm.

import "sync"

var work int

func addInside() {
	var wg sync.WaitGroup
	go func() {
		wg.Add(1) // want waitgroup
		defer wg.Done()
		work++
	}()
	wg.Wait()
}

func addAfterWait() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); work++ }()
	wg.Wait()
	wg.Add(1) // want waitgroup
	go func() { defer wg.Done(); work++ }()
	wg.Wait()
}
