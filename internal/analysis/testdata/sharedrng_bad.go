package fixture

// Seeded violation fixture for sharedrng: one unsynchronized stream
// drawn from by two goroutines at once. Uses *math/rand.Rand, which the
// rule treats like *rng.Source (checked as pga/internal/rng so the
// deliberate math/rand import stays out of norawrand's way).

import (
	"math/rand"
	"sync"
)

func raceOnParentStream(n int) int {
	r := rand.New(rand.NewSource(1))
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = r.Intn(n) // want sharedrng
	}()
	total := r.Intn(n) // the race: the parent draws concurrently
	<-done
	return total
}

func twoGoroutinesOneStream(n int) {
	r := rand.New(rand.NewSource(2))
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		_ = r.Intn(n) // want sharedrng
	}()
	go func() {
		defer wg.Done()
		_ = r.Intn(n) // want sharedrng
	}()
	wg.Wait()
}
