package fixture

// Interprocedural fixture for norawrand: this file is spotless — no
// forbidden import, no rand selector — yet perturb reaches math/rand
// two calls away through the jitter helper package (auxrand.go). The
// local import/use scan has nothing to say here; the summary engine
// flags the cross-package call into the tainted chain. Checked as
// pga/internal/operators.

import (
	jitter "pga/internal/jitter"
)

// perturb looks deterministic from this file alone.
func perturb(v int) int {
	return wobble(v)
}

// wobble is where the module's determinism actually leaks.
func wobble(v int) int {
	return jitter.Jitter(v) // want norawrand
}
