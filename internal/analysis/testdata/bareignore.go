package fixture

// Fixture for the ignore-justification check: a directive without a
// justification (or without a rule list) is itself a finding, and that
// finding cannot be suppressed. Checked as pga/internal/ga. This file
// carries no `// want` markers — the marker text on a directive line
// would read as its justification — so TestBareIgnores pins the
// expected lines explicitly.

func justified(out chan<- int) {
	//pgalint:ignore blockingsend fixture: receiver drained by construction
	out <- 1
}

func bare(out chan<- int) {
	//pgalint:ignore blockingsend
	out <- 2
}

func ruleless(out chan<- int) {
	//pgalint:ignore
	out <- 3
}

func bareSameLine(out chan<- int) {
	out <- 4 //pgalint:ignore blockingsend
}

func doubledDown(out chan<- int) {
	// A justified ignore naming the "ignore" rule must NOT silence the
	// check on the bare directive below it: the justification finding is
	// unsuppressible by design.
	//pgalint:ignore ignore fixture: attempting to suppress the ignore check itself
	//pgalint:ignore blockingsend
	out <- 5
}
