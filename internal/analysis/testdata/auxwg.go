// Package wgutil is a fixture helper: Register hides a WaitGroup.Add
// behind a call. Legitimate when invoked on the spawning side; the want
// marker fires only when a spawned goroutine (waitgroup_x.go) reaches
// it, via the parameter-indexed WGAdds fact bound at the spawn site.
// Checked as pga/internal/wgutil.
package wgutil

import "sync"

// Register adds one unit of work to wg.
func Register(wg *sync.WaitGroup) {
	wg.Add(1) // want waitgroup
}
