// Package fixgen is an aux fixture for drawshape's cross-package case:
// (file auxtail.go) a helper whose content-dependent draw is reported through a caller in
// another package (the caller's folded shape carries this position).
// Checked as pga/internal/fixgen.
package fixgen

import rng "pga/internal/fixrng"

// Item is a fixture individual with content.
type Item struct{ Fitness float64 }

// Queue is a fixture population.
type Queue struct{ Members []*Item }

// PickTail draws only when the fitness mass is degenerate — the draw
// count depends on population content.
func PickTail(q *Queue, r *rng.Source) int {
	total := 0.0
	for _, it := range q.Members {
		total += it.Fitness
	}
	if total <= 0 {
		return r.Intn(len(q.Members)) // want drawshape
	}
	return 0
}

// PickHead is the content-independent counterpart: the guard is
// structural (a length), so the draw always happens for non-empty
// queues of the same size regardless of fitness.
func PickHead(q *Queue, r *rng.Source) int {
	if len(q.Members) > 1 {
		return r.Intn(len(q.Members))
	}
	return 0
}
