// Fixture for drawparity (ok): pairs whose members spell their loops
// differently but consume identical draw shapes, and a recursive pair
// whose shapes are Incomplete — skipped optimistically rather than
// guessed at. Checked as pga/internal/pairfix2; the test wires these
// names in via a custom DrawParityConfig.
package fixture

import rng "pga/internal/fixrng"

// Vec is a fixture vector genome.
type Vec struct{ Genes []float64 }

// Walk draws once per gene with a three-clause loop: shape n×Float64.
func Walk(v *Vec, r *rng.Source) {
	for i := 0; i < len(v.Genes); i++ {
		if r.Float64() < 0.5 {
			v.Genes[i] = 0
		}
	}
}

// WalkInto draws once per gene with a range loop over a different
// parameter: same shape n×Float64, so the pair is clean.
func WalkInto(dst, v *Vec, r *rng.Source) {
	for i := range dst.Genes {
		if r.Float64() < 0.5 {
			dst.Genes[i] = v.Genes[i]
		}
	}
}

// Rec recurses; its shape is Incomplete (a draw count the summary
// cannot close over), so parity is skipped for the pair.
func Rec(n int, r *rng.Source) {
	if n > 0 {
		_ = r.Uint64()
		Rec(n-1, r)
	}
}

// RecInto recurses with a different draw kind; still Incomplete, still
// skipped — drawparity never reports on shapes it cannot prove.
func RecInto(n int, r *rng.Source) {
	if n > 0 {
		_ = r.Intn(n)
		RecInto(n-1, r)
	}
}
