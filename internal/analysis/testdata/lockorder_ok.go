package fixture

// Corrected fixtures for lockorder: one global acquisition order (held
// both directly and through a helper), deferred unlocks, an explicit
// unlock-before-return, and RWMutex reader/writer pairs. Checked as
// pga/internal/lockfix.

import "sync"

var (
	first  sync.Mutex
	second sync.Mutex
	rw     sync.RWMutex
	state  int
)

func bothDirect() {
	first.Lock()
	defer first.Unlock()
	second.Lock()
	defer second.Unlock()
	state++
}

// bothViaHelper takes the same first→second order, but the inner
// acquisition is a call away — the interprocedural edge must agree
// with bothDirect's, not conflict.
func bothViaHelper() {
	first.Lock()
	defer first.Unlock()
	underSecond()
}

func underSecond() {
	second.Lock()
	defer second.Unlock()
	state++
}

func unlockBeforeReturn(flag bool) {
	first.Lock()
	if flag {
		state++
		first.Unlock()
		return
	}
	first.Unlock()
}

func reader() int {
	rw.RLock()
	defer rw.RUnlock()
	return state
}

func writer() {
	rw.Lock()
	defer rw.Unlock()
	state++
}
