package fixture

// Cross-package fixture for waitgroup: the spawned goroutine's Add is
// two frames away inside wgutil.Register. The closure's propagated
// WGAdds carries the helper's parameter fact; spawn-site substitution
// binds it to this wg, and the finding lands at the Add inside wgutil.
// Checked as pga/internal/farm.

import (
	"sync"

	wgutil "pga/internal/wgutil"
)

var processed int

func spawnRegistering() {
	var wg sync.WaitGroup
	go func() {
		defer wg.Done()
		wgutil.Register(&wg)
		processed++
	}()
	wg.Wait()
}
