// Package lockutil is a fixture helper: two exported locks, an ordered
// pair helper and a single-lock helper. The want markers here fire only
// when a caller package (lockorder_x.go) seeds the reverse order — on
// its own this package is acyclic. Checked as pga/internal/lockutil.
package lockutil

import "sync"

var (
	MuA sync.Mutex
	MuB sync.Mutex
	N   int
)

// OrderedAB takes the canonical A→B order.
func OrderedAB() {
	MuA.Lock()
	defer MuA.Unlock()
	MuB.Lock() // want lockorder
	defer MuB.Unlock()
	N++
}

// LockA bumps N under MuA alone; it has no lock order of its own. The
// finding lands here when a caller holding MuB reaches this acquisition
// through the call chain.
func LockA() {
	MuA.Lock() // want lockorder
	defer MuA.Unlock()
	N++
}
