package fixture

// Cross-package fixture for goroleak: the spawned functions live in
// another package, so the local-only retired ctxleak could never judge
// them — joinability is read off the interprocedural summary. WaitFor
// receives (joinable); Busy has no termination evidence. A delegating
// wrapper shows the Joins bit propagating over a call edge. Checked as
// pga/internal/cluster.

import joinutil "pga/internal/joinutil"

func pumpViaHelper(done <-chan struct{}) {
	go joinutil.WaitFor(done)
}

func leakViaHelper() {
	go joinutil.Busy() // want goroleak
}

// delegate is joinable only through its callee.
func delegate(done <-chan struct{}) {
	joinutil.WaitFor(done)
}

func spawnDelegate(done <-chan struct{}) {
	go delegate(done)
}
