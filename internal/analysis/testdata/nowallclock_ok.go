package fixture

// Corrected fixture for nowallclock: timing confined to the allowlisted
// run-orchestration entry point (checked as pga/internal/hga, whose Run
// function is on the allowlist) plus clock-free duration arithmetic.

import "time"

const reportEvery = 5 * time.Millisecond

func Run(gens int) time.Duration {
	start := time.Now()
	total := 0
	for g := 0; g < gens; g++ {
		total += g
	}
	_ = total
	return time.Since(start)
}
