package fixture

// Corrected fixture for hiddenalloc: the pooled-buffer patterns the rule
// permits inside hot-path functions (checked under pga/internal/ga).

type gene struct{ bits []bool }

func (g *gene) copyFrom(src *gene) { copy(g.bits, src.bits) }

func (g *gene) clone() *gene {
	c := &gene{bits: make([]bool, len(g.bits))}
	copy(c.bits, g.bits)
	return c
}

type pooled struct {
	pop  []*gene
	next []*gene
}

// Step reuses the double buffer: in-place copies and a swap, no Clone and
// no growing append.
func (e *pooled) Step() {
	for i, g := range e.pop {
		e.next[i].copyFrom(g)
	}
	e.pop, e.next = e.next, e.pop

	// An append into a slice made with explicit capacity in this same
	// function stays within its reserved storage.
	batch := make([]*gene, 0, len(e.pop))
	for _, g := range e.pop {
		batch = append(batch, g)
	}
	_ = batch

	// A justified escape hatch is available for audited allocations.
	tmp := e.pop[0].clone() //pgalint:ignore hiddenalloc lowercase clone is a fixture helper, but demonstrate the directive
	_ = tmp

	// Calling a Cold-listed setup helper from a hot path is sanctioned:
	// the allocation taint stops at ensureBuffers even though its body
	// appends into a field.
	e.ensureBuffers()
}

// ensureBuffers is not a hot function: one-time pool construction clones
// and appends without findings.
func (e *pooled) ensureBuffers() {
	for _, g := range e.pop {
		e.next = append(e.next, g.clone())
	}
}
