package fixture

// Seeded violations for lockorder: an A→B / B→A acquisition-order cycle
// (the deadlock no other rule can see), unlock-path escapes, and a
// recursive re-lock. Checked as pga/internal/lockfix.

import "sync"

var (
	muA sync.Mutex
	muB sync.Mutex
	n   int
)

func lockAB() {
	muA.Lock()
	defer muA.Unlock()
	muB.Lock() // want lockorder
	defer muB.Unlock()
	n++
}

func lockBA() {
	muB.Lock()
	defer muB.Unlock()
	muA.Lock() // want lockorder
	defer muA.Unlock()
	n++
}

func neverReleased() {
	muA.Lock() // want lockorder
	n++
}

func earlyReturn(flag bool) {
	muA.Lock() // want lockorder
	if flag {
		n++
		return
	}
	muA.Unlock()
}

func panicEscape() {
	muB.Lock() // want lockorder
	if n > 0 {
		panic("bad state under lock")
	}
	muB.Unlock()
}

func relock() {
	muA.Lock()
	defer muA.Unlock()
	muA.Lock() // want lockorder
	defer muA.Unlock()
	n++
}
