package fixture

// Seeded violation fixture for blockingsend: sends in a communication
// package (checked as pga/internal/p2p) that can block forever.

func emigrate(out chan<- int, batch int) {
	out <- batch // want blockingsend
}

func relay(in <-chan int, out chan<- int) {
	for v := range in {
		select {
		case out <- v: // want blockingsend
		case out <- v + 1: // want blockingsend
		}
	}
}

func sendInCaseBody(trigger <-chan int, out chan<- int) {
	select {
	case v := <-trigger:
		out <- v // want blockingsend
	default:
	}
}
