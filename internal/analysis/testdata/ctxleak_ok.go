package fixture

// Corrected fixture for goroleak: goroutines that are joinable
// (WaitGroup) or cancellable (ctx/done channel, channel drain).

import (
	"context"
	"sync"
)

var observed int

func joined(n int) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		observed = n
	}()
	wg.Wait()
}

func cancellable(ctx context.Context, work <-chan int) {
	go func() {
		for {
			select {
			case v, ok := <-work:
				if !ok {
					return
				}
				observed = v
			case <-ctx.Done():
				return
			}
		}
	}()
}

func drainer(work <-chan int) {
	go func() {
		for v := range work { // exits when the producer closes work
			observed = v
		}
	}()
}

func closeToJoin(n int) {
	done := make(chan struct{})
	go func() {
		defer close(done) // the close-to-join idiom counts as joinable
		observed = n
	}()
	<-done
}

func waitDone(done <-chan struct{}) {
	<-done
	observed++
}

func pump(done <-chan struct{}) {
	go waitDone(done) // named same-package target, resolved and verified
}
