package fixture

// Cross-package fixture for lockorder: this file seeds the reverse of
// lockutil's canonical MuA→MuB order, once directly and once through a
// helper call — the second edge exists only interprocedurally, via the
// held set at the call site crossed with LockA's propagated Acquires.
// Checked as pga/internal/lockfix.

import lockutil "pga/internal/lockutil"

var counter int

func crossDirect() {
	lockutil.MuB.Lock()
	defer lockutil.MuB.Unlock()
	lockutil.MuA.Lock() // want lockorder
	defer lockutil.MuA.Unlock()
	counter++
}

// crossCall holds MuB and lets the helper take MuA: the B→A edge is
// invisible to any per-function walk, and the finding surfaces at the
// acquisition site inside lockutil.LockA.
func crossCall() {
	lockutil.MuB.Lock()
	defer lockutil.MuB.Unlock()
	lockutil.LockA()
	counter++
}
