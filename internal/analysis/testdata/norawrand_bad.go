package fixture

// Seeded violation fixture for norawrand: raw math/rand and crypto/rand
// use outside internal/rng.

import (
	crand "crypto/rand" // want norawrand
	"math/rand"         // want norawrand
)

func rollDice() int {
	r := rand.New(rand.NewSource(42)) // want norawrand
	return r.Intn(6)                  // (receiver call, not a package selector)
}

func globalDice() int {
	return rand.Intn(6) // want norawrand
}

func readNoise(buf []byte) {
	_, _ = crand.Read(buf) // want norawrand
}
