package fixture

// Suppression fixture: //pgalint:ignore semantics. Checked as
// pga/internal/p2p so blockingsend is in scope.

func suppressedAbove(out chan<- int) {
	//pgalint:ignore blockingsend fixture: receiver guaranteed ready in this test
	out <- 1
}

func suppressedSameLine(out chan<- int) {
	out <- 2 //pgalint:ignore blockingsend fixture: provably safe
}

func suppressedAll(out chan<- int) {
	//pgalint:ignore all fixture: everything suppressed on the next line
	out <- 3
}

func wrongRule(out chan<- int) {
	//pgalint:ignore ctxleak a misdirected suppression does not apply
	out <- 4 // want blockingsend
}
