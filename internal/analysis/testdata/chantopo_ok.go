package fixture

// Corrected counterparts for chantopo: the same communication shapes
// with an acyclic channel graph or an escape on the closing edge.
// Checked as pga/internal/island (a scoped communication runtime).

// stage is a pipeline hop: in→out with no path back, so the field
// graph is a chain, not a cycle. The bare send is an edge, but an
// acyclic one.
type stage struct {
	in  chan int
	out chan int
}

func (s *stage) forward() {
	for v := range s.in {
		s.out <- v
	}
}

// shedder closes the ring shape but sheds when the successor is full:
// the select with a default is non-blocking, so it contributes no
// recv→send edge and the cycle never forms.
func (s *stage) shedder() {
	for v := range s.out {
		select {
		case s.in <- v:
		default:
		}
	}
}

// fanOut distributes into per-worker channels and never receives: a
// send-only node contributes no edges at all.
func fanOut(outs []chan int, vs []int) {
	for i, v := range vs {
		select {
		case outs[i%len(outs)] <- v:
		default:
		}
	}
}
