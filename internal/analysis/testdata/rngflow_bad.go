package fixture

// Seeded violation fixtures for rngflow: one stream reaching two
// goroutines through indirection sharedrng cannot see — named-function
// spawns, helper chains, and loop spawns. Uses *math/rand.Rand, which
// the rules treat like *rng.Source (checked as pga/internal/rng so the
// deliberate math/rand import stays out of norawrand's way).

import (
	"math/rand"
	"sync"
)

// drawer draws from its stream on the calling goroutine.
func drawer(r *rand.Rand, n int) int { return r.Intn(n) }

// worker draws from its stream on whatever goroutine runs it.
func worker(r *rand.Rand, n int, wg *sync.WaitGroup) {
	defer wg.Done()
	_ = r.Intn(n)
}

// spawnDrawer hands its stream to exactly one goroutine that draws —
// legitimate on its own, the building block for the violations below.
func spawnDrawer(r *rand.Rand, n int, wg *sync.WaitGroup) {
	go worker(r, n, wg)
}

// mixedDraw draws synchronously (through a helper) and then hands the
// same stream to a spawned worker: draws interleave with the scheduler.
func mixedDraw(n int) int {
	r := rand.New(rand.NewSource(1))
	var wg sync.WaitGroup
	wg.Add(1)
	seed := drawer(r, n)
	go worker(r, n, &wg) // want rngflow
	wg.Wait()
	return seed
}

// twoSpawns hands one stream to two goroutines: no sync draw anywhere,
// still a race between the workers.
func twoSpawns(n int) {
	r := rand.New(rand.NewSource(2))
	var wg sync.WaitGroup
	wg.Add(2)
	go worker(r, n, &wg)
	go worker(r, n, &wg) // want rngflow
	wg.Wait()
}

// loopSpawn spawns from a single static site inside a loop while the
// stream is declared outside it: one site, n goroutines, one stream.
func loopSpawn(n int) {
	r := rand.New(rand.NewSource(3))
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go worker(r, n, &wg) // want rngflow
	}
	wg.Wait()
}

// launcher reaches the spawned draw through two layers of helpers; the
// creating goroutine also draws. No go statement is visible here at all.
func launcher(n int) int {
	r := rand.New(rand.NewSource(4))
	var wg sync.WaitGroup
	wg.Add(1)
	dispatch(r, n, &wg) // want rngflow
	v := drawer(r, n)
	wg.Wait()
	return v
}

// dispatch forwards to spawnDrawer: the spawn-draw fact crosses two
// call edges before surfacing in launcher.
func dispatch(r *rand.Rand, n int, wg *sync.WaitGroup) {
	spawnDrawer(r, n, wg)
}
