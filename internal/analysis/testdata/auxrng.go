// Package rng is a fixture stand-in for the module's stream package:
// isRNGStream matches by package and type name ("rng".Source), so
// fixture groups get module-style RNG streams — with real call edges
// for the summary engine to propagate through — without importing the
// production package. Checked as pga/internal/fixrng.
package rng

// Source is a minimal splittable LCG stream.
type Source struct{ state uint64 }

// New returns a stream seeded with seed.
func New(seed uint64) *Source { return &Source{state: seed} }

// Uint64 advances the stream.
func (s *Source) Uint64() uint64 {
	s.state = s.state*6364136223846793005 + 1442695040888963407
	return s.state
}

// Intn draws a value in [0, n).
func (s *Source) Intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(s.Uint64() % uint64(n))
}

// Float64 draws a value in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Split derives an independent child stream.
func (s *Source) Split() *Source { return &Source{state: s.Uint64()} }
