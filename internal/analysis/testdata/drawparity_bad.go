// Fixture for drawparity (bad): a desynced allocating/in-place pair —
// Cross draws once per gene while CrossInto draws once total — and a
// pair whose second member was deleted without updating the registry.
// Checked as pga/internal/pairfix; the test wires these names in via a
// custom DrawParityConfig.
package fixture

import rng "pga/internal/fixrng"

// Vec is a fixture vector genome.
type Vec struct{ Genes []float64 }

// Cross draws once per gene: shape n×Float64.
func Cross(a, b *Vec, r *rng.Source) *Vec { // want drawparity
	out := &Vec{Genes: make([]float64, len(a.Genes))}
	for i := range a.Genes {
		if r.Float64() < 0.5 {
			out.Genes[i] = a.Genes[i]
		} else {
			out.Genes[i] = b.Genes[i]
		}
	}
	return out
}

// CrossInto forgot the per-gene loop and draws once: shape 1×Float64,
// diverging from its declared partner.
func CrossInto(dst, a, b *Vec, r *rng.Source) { // want drawparity
	cut := r.Float64()
	for i := range dst.Genes {
		if float64(i) < cut*float64(len(dst.Genes)) {
			dst.Genes[i] = a.Genes[i]
		} else {
			dst.Genes[i] = b.Genes[i]
		}
	}
}

// Spin's declared partner SpinInto no longer exists: the dangling
// registry entry is reported at the surviving member.
func Spin(r *rng.Source, n int) int { // want drawparity
	return r.Intn(n)
}
