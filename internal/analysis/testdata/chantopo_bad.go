package fixture

// Seeded violation fixtures for chantopo: cycles of unconditionally
// blocking sends in the channel topology. Checked as pga/internal/p2p
// (a scoped communication runtime) with auxchan.go (pga/internal/
// chanutil) as the out-of-scope helper whose goroutines join the
// topology only via spawn-site binding.

import (
	chanutil "pga/internal/chanutil"
)

// ring wires two pumps head-to-tail: Pump(a,b) forwards a into b and
// Pump(b,a) forwards b into a, so once both buffers fill each pump
// blocks sending while the other blocks too. Neither goroutine body
// lives in a scoped package — the cycle exists only after binding the
// channel parameters at these go statements. The report lands on
// Pump's send in auxchan.go.
func ring() {
	a := make(chan int, 1)
	b := make(chan int, 1)
	go chanutil.Pump(a, b)
	go chanutil.Pump(b, a)
	a <- 0
}

// node holds a per-deme inbox; relay feeds its own inbox back to
// itself: a self-loop in the field-level channel graph.
type node struct{ inbox chan int }

func (n *node) relay() {
	for v := range n.inbox {
		n.inbox <- v + 1 // want chantopo
	}
}

// deme models the classic migration ring at the field level: run
// forwards in→out and pipe forwards out→in, so the two field channels
// form a cycle once buffers fill.
type deme struct {
	in  chan int
	out chan int
}

func (d *deme) run() {
	for v := range d.in {
		d.out <- v // want chantopo
	}
}

func pipe(dst *deme, src *deme) {
	for v := range src.out {
		dst.in <- v // want chantopo
	}
}
