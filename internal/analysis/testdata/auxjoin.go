// Package joinutil is a fixture helper for goroleak's interprocedural
// reach: WaitFor carries the joinability evidence (a channel receive)
// that a spawn site two packages away relies on; Busy has none. Checked
// as pga/internal/joinutil.
package joinutil

// N is the helper's observable side effect.
var N int

// WaitFor blocks until done closes — the joinable worker body.
func WaitFor(done <-chan struct{}) {
	<-done
	N++
}

// Busy spins with no exit evidence: no receive, select, Done or close.
func Busy() {
	for i := 0; i < 1000; i++ {
		N++
	}
}
