// Package util is the helper package of the loader fixture module.
package util

// Add sums its arguments.
func Add(a, b int) int { return a + b }

// Apply calls f on v.
func Apply(f func(int) int, v int) int { return f(v) }
