// Package good exercises every call-graph edge kind for the -graph
// golden: direct calls, method calls, named closures, an IIFE, a go
// spawn and a function reference passed as an argument.
package good

import "fixmod/util"

type counter struct{ n int }

func (c *counter) inc() { c.n++ }

// Run drives one of everything.
func Run(vs []int) int {
	c := &counter{}
	total := 0
	for _, v := range vs {
		total = util.Add(total, v)
	}
	double := func(x int) int { return util.Add(x, x) }
	total = util.Apply(double, total)
	total += func() int {
		c.inc()
		return c.n
	}()
	done := make(chan struct{})
	go func() {
		c.inc()
		close(done)
	}()
	<-done
	return total
}
