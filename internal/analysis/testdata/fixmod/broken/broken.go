// Package broken fails type checking on purpose: the loader must
// collect the error and keep going, and the call-graph/summary layer
// must degrade to partial information instead of panicking or
// inventing edges.
package broken

// Half calls a function that does not exist.
func Half(v int) int {
	return undefinedHelper(v) / 2
}
