package fixture

// Corrected fixture for sharedrng: each goroutine owns its stream — the
// split-and-move-in pattern and the pass-as-argument pattern.

import "math/rand"

func childStreamPerGoroutine(n int) int {
	parent := rand.New(rand.NewSource(1))
	done := make(chan struct{})
	child := rand.New(rand.NewSource(parent.Int63()))
	go func() {
		defer close(done)
		_ = child.Intn(n) // moved in: never referenced outside again
	}()
	total := parent.Intn(n) // parent stream stays with the parent
	<-done
	return total
}

func streamAsArgument(n int) {
	parent := rand.New(rand.NewSource(2))
	done := make(chan struct{})
	go func(r *rand.Rand) { // argument evaluated at spawn, in the parent
		defer close(done)
		_ = r.Intn(n)
	}(rand.New(rand.NewSource(parent.Int63())))
	_ = parent.Intn(n)
	<-done
}
