package fixture

// Fixture for PurityConfig.Exempt: a memoising fitness wrapper whose
// Evaluate matches the role shape and mutates its receiver — the
// violation the default config reports, and the exact pattern an Exempt
// entry ("pga/internal/memo.Evaluate") is meant to sanction. Checked as
// pga/internal/memo; TestPurityExemptList runs it both with and without
// the exemption, so this file carries no want markers.

// Genome stands in for core.Genome (role matching is by type name).
type Genome []int

// memoCache caches fitness by genome length — receiver mutation behind
// what would, in production, be a mutex.
type memoCache struct {
	memo map[int]float64
}

func (m *memoCache) Evaluate(g Genome) float64 {
	if f, ok := m.memo[len(g)]; ok {
		return f
	}
	f := float64(len(g))
	m.memo[len(g)] = f
	return f
}
