package fixture

// Seeded violation fixture for goroleak (historically ctxleak — the parity test pins these lines): fire-and-forget goroutines with
// no join and no cancellation path.

var sink int

func fireAndForget(n int) {
	go func() { // want goroleak
		sink = n
	}()
}

func spin() {
	for i := 0; i < 3; i++ {
		sink++
	}
}

func spawnNamed() {
	go spin() // want goroleak
}
