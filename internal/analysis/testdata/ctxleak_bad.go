package fixture

// Seeded violation fixture for ctxleak: fire-and-forget goroutines with
// no join and no cancellation path.

var sink int

func fireAndForget(n int) {
	go func() { // want ctxleak
		sink = n
	}()
}

func spin() {
	for i := 0; i < 3; i++ {
		sink++
	}
}

func spawnNamed() {
	go spin() // want ctxleak
}
