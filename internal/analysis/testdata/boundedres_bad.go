package fixture

// Seeded violations for boundedres: a rendezvous channel and unreserved
// append growth on a struct field and a package-level slice — the
// unbounded-buffering patterns the transport's drop-oldest contract
// forbids. Checked as pga/internal/transport.

type peerQueue struct {
	items []int
}

var backlog []string

func newRendezvous() chan int {
	return make(chan int) // want boundedres
}

func (q *peerQueue) push(v int) {
	q.items = append(q.items, v) // want boundedres
}

func record(ev string) {
	backlog = append(backlog, ev) // want boundedres
}
