package fixture

// Corrected fixtures for waitgroup: Add on the spawning side before the
// go statement, and a fresh WaitGroup per batch instead of reusing the
// counter across Waits. Checked as pga/internal/farm.

import "sync"

var done int

func addBeforeSpawn() {
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() { defer wg.Done(); done++ }()
	}
	wg.Wait()
}

func freshPerBatch(batches int) {
	for b := 0; b < batches; b++ {
		var wg sync.WaitGroup
		wg.Add(1)
		go func() { defer wg.Done(); done++ }()
		wg.Wait()
	}
}
