// Package chanutil is a fixture helper that lives OUTSIDE the chantopo
// scope (checked as pga/internal/chanutil): on its own it contributes
// nothing to the modelled topology, and blockingsend never looks at it.
// Its goroutine bodies join the channel graph only when scoped code
// spawns them, with the channel parameters bound to concrete endpoints
// at the go statement — the laundering gap a local rule cannot close.
package chanutil

// Pump forwards values from in to out; the send blocks once out's
// buffer fills, so draining in requires progress on out. Spawned twice
// head-to-tail from scoped code this closes a channel cycle.
func Pump(in <-chan int, out chan<- int) {
	for v := range in {
		out <- v // want chantopo
	}
}

// Drain consumes a channel without sending anywhere: an edge-free sink
// the OK fixtures use to terminate pipelines.
func Drain(in <-chan int) {
	for range in {
	}
}
