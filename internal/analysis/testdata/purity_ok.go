package fixture

// Corrected counterparts for purity: the same role shapes, effect-free
// apart from their documented argument mutation. Checked as
// pga/internal/operators with auxrng.go (pga/internal/fixrng).

import (
	rng "pga/internal/fixrng"
)

type OkGenome []int
type OkPopulation []OkGenome
type OkDirection int
type OkScratch struct{ buf []int }

// pureProblem reads its receiver and its argument, writes neither.
type pureProblem struct{ target int }

func (p *pureProblem) Evaluate(g OkGenome) float64 {
	return float64(genomeSum(g) - p.target)
}

func genomeSum(g OkGenome) int {
	s := 0
	for _, v := range g {
		s += v
	}
	return s
}

// swapMutate edits exactly the genome it was handed, drawing from the
// designated stream: both effects are the documented allowance.
type swapMutate struct{}

func (swapMutate) Mutate(g OkGenome, r *rng.Source) {
	i, j := r.Intn(len(g)), r.Intn(len(g))
	g[i], g[j] = g[j], g[i]
}

// cutCross fills the two child slots and its scratch — the CrossInto
// contract — leaving parents untouched.
type cutCross struct{}

func (cutCross) CrossInto(pa, pb, ca, cb OkGenome, r *rng.Source, s *OkScratch) {
	cut := r.Intn(len(pa) + 1)
	s.buf = s.buf[:0]
	copy(ca, pa[:cut])
	copy(ca[cut:], pb[cut:])
	copy(cb, pb[:cut])
	copy(cb[cut:], pa[cut:])
}

// batchSummer fills exactly the output slice — the documented
// EvaluateBatch allowance — reading the genomes without writing them.
type batchSummer struct{}

func (batchSummer) EvaluateBatch(genomes []OkGenome, out []float64) {
	for i, g := range genomes {
		out[i] = float64(genomeSum(g))
	}
}

// binaryTournament draws from its stream and returns a winner without
// touching the population.
type binaryTournament struct{}

func (binaryTournament) Select(p OkPopulation, d OkDirection, r *rng.Source) OkGenome {
	a := p[r.Intn(len(p))]
	b := p[r.Intn(len(p))]
	if (genomeSum(a) < genomeSum(b)) == (d == 0) {
		return a
	}
	return b
}
