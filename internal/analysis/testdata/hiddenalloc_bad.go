package fixture

// Seeded violation fixture for hiddenalloc: Clone calls and growing
// appends inside generation hot-path functions (checked under the
// pga/internal/ga import path, where Step and birth are on the hot list).

type cromo struct{ bits []bool }

func (g *cromo) Clone() *cromo {
	c := &cromo{bits: make([]bool, len(g.bits))}
	copy(c.bits, g.bits)
	return c
}

type motor struct {
	pop  []*cromo
	next []*cromo
}

// Step is the historical allocating generation loop: one clone per parent
// and a geometrically growing offspring slice.
func (e *motor) Step() {
	var offspring []*cromo
	for _, g := range e.pop {
		child := g.Clone()                   // want hiddenalloc
		offspring = append(offspring, child) // want hiddenalloc
	}
	sized := make([]*cromo, 0) // length only, no capacity: appends still grow
	for _, g := range offspring {
		sized = append(sized, g) // want hiddenalloc
	}
	e.pop = sized
	laundered := e.spawnChild(0) // want hiddenalloc
	_ = laundered
}

// spawnChild launders the per-birth clone through a helper: the local
// pattern scan sees nothing in Step's body, but spawnChild's summary
// carries the allocation up the call edge. spawnChild itself is not on
// the hot list, so its own body stays silent.
func (e *motor) spawnChild(i int) *cromo {
	return e.pop[i].Clone()
}

// birth appends to a field, which can never be proven pre-sized.
func (e *motor) birth() {
	e.next = append(e.next, e.pop[0].Clone()) // want hiddenalloc hiddenalloc
}

// warmPool is NOT on the hot list: one-time setup may clone and append
// freely.
func (e *motor) warmPool() {
	for _, g := range e.pop {
		e.next = append(e.next, g.Clone())
	}
}
