// Package jitter is a fixture helper that launders math/rand behind an
// innocent-looking API (checked as pga/internal/jitter, which is not on
// the norawrand exemption list). The import and the use are flagged
// here; the interprocedural half of norawrand flags the cross-package
// calls that reach it.
package jitter

import "math/rand" // want norawrand

// Jitter perturbs v by ±1 using the process-global source.
func Jitter(v int) int {
	return v + rand.Intn(3) - 1 // want norawrand
}
