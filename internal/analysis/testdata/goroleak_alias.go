package fixture

// Alias fixture: this legacy directive names the retired ctxleak rule
// and must keep suppressing its successor goroleak — the alias test
// asserts zero surviving diagnostics. Checked as pga/internal/cluster.

var background int

func legacySuppressed() {
	//pgalint:ignore ctxleak fire-and-forget telemetry bump; process exit reaps it
	go func() {
		background++
	}()
}
