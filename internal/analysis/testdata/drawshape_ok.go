// Fixture for drawshape (ok): role methods and a hot-listed function
// whose draws are unconditional, loop-scaled, or guarded only by
// structural conditions (lengths, parameters, other RNG draws) — all
// content-independent shapes. Checked as pga/internal/operators.
package fixture

import rng "pga/internal/fixrng"

// Genome carries content fields; none of the code below branches on
// them before drawing.
type Genome struct {
	Genes   []float64
	Fitness float64
}

// Individual and Population mirror the engine's shapes.
type Individual struct{ Fitness float64 }

// Population is a fixture population.
type Population struct{ Members []*Individual }

// Direction satisfies the Select role's second parameter.
type Direction int

// OkMut draws per gene; the per-gene draw is guarded by another RNG
// draw, which is random but not content-dependent.
type OkMut struct{ P float64 }

// Mutate matches the Mutate role: shape n×Float64 + n·cond×Float64.
func (m OkMut) Mutate(g Genome, r *rng.Source) {
	for i := range g.Genes {
		if r.Float64() < m.P {
			g.Genes[i] += r.Float64()
		}
	}
}

// OkSel draws exactly once regardless of fitness values; the guard is a
// structural length check.
type OkSel struct{}

// Select matches the Select role: shape 1×Intn behind len().
func (OkSel) Select(pop *Population, d Direction, r *rng.Source) int {
	if len(pop.Members) > 1 {
		return r.Intn(len(pop.Members))
	}
	return 0
}

// CrossInto is hot-listed; a parameter-scaled unconditional draw loop
// is content-independent (shape n×Uint64 with n = len of the gene
// slice).
func CrossInto(a, b Genome, r *rng.Source) float64 {
	acc := 0.0
	for i := 0; i < len(a.Genes); i++ {
		acc += float64(r.Uint64())
	}
	return acc
}
