package fixture

// Corrected fixture for blockingsend: every send sits in a select that
// cannot block — default case, ctx escape or timeout escape. Checked as
// pga/internal/supervise (in scope for blockingsend, allowlisted for
// nowallclock, whose timer use is legitimate there).

import (
	"context"
	"time"
)

func emigrateNonBlocking(out chan<- int, batch int) bool {
	select {
	case out <- batch:
		return true
	default:
		return false // receiver's buffer full: drop, never block evolution
	}
}

func emigrateCtx(ctx context.Context, out chan<- int, batch int) bool {
	select {
	case out <- batch:
		return true
	case <-ctx.Done():
		return false
	}
}

func emigrateTimeout(out chan<- int, batch int) bool {
	t := time.NewTimer(time.Millisecond)
	defer t.Stop()
	select {
	case out <- batch:
		return true
	case <-t.C:
		return false
	}
}
