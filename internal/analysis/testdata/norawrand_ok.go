package fixture

// Corrected fixture for norawrand: randomness flows through a seeded,
// splittable stream (stand-in for internal/rng.Source).

type stream struct{ state uint64 }

func newStream(seed uint64) *stream { return &stream{state: seed} }

func (s *stream) next() uint64 {
	s.state = s.state*6364136223846793005 + 1442695040888963407
	return s.state
}

func rollDiceSeeded(s *stream) int { return int(s.next() % 6) }
