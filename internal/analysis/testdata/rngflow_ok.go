package fixture

// Corrected counterparts for rngflow: per-goroutine stream ownership.
// Checked as pga/internal/rng (same reasoning as rngflow_bad.go).

import (
	"math/rand"
	"sync"
)

// okWorker draws from the stream it was handed.
func okWorker(r *rand.Rand, n int, wg *sync.WaitGroup) {
	defer wg.Done()
	_ = r.Intn(n)
}

// handOff transfers one stream to one goroutine and never draws again:
// single owner, no interleaving.
func handOff(n int) {
	r := rand.New(rand.NewSource(1))
	var wg sync.WaitGroup
	wg.Add(1)
	go okWorker(r, n, &wg)
	wg.Wait()
}

// childPerSpawn derives a child stream inside the loop body, so each
// iteration's goroutine owns its stream; the parent keeps the original.
// This is the sanctioned ws := r.Split() shape.
func childPerSpawn(n int) {
	r := rand.New(rand.NewSource(2))
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		ws := rand.New(rand.NewSource(r.Int63()))
		go okWorker(ws, n, &wg)
	}
	wg.Wait()
	_ = r.Intn(n + 1)
}

// syncFanIn draws only on the calling goroutine, even though helpers are
// involved: no spawn-draw evidence anywhere.
func syncFanIn(n int) int {
	r := rand.New(rand.NewSource(3))
	total := 0
	for i := 0; i < n; i++ {
		total += oneDraw(r, n)
	}
	return total
}

func oneDraw(r *rand.Rand, n int) int { return r.Intn(n) }
