package fixture

// Seeded violation fixtures for purity: operator- and fitness-shaped
// methods with effects beyond their documented allowance. Role matching
// is by method name and parameter type names, so the local Genome/
// Population/Direction/Scratch types and the fixture rng package
// (auxrng.go, imported as pga/internal/fixrng) stand in for the real
// interfaces. Checked as pga/internal/operators.

import (
	"time"

	rng "pga/internal/fixrng"
)

type Genome []int
type Population []Genome
type Direction int
type Scratch struct{ buf []int }

// counter hides an evaluation count behind the fitness method: a data
// race once the master-slave farm evaluates in parallel.
type counter struct{ evals int }

func (p *counter) Evaluate(g Genome) float64 { // want purity
	p.evals++
	return float64(len(g))
}

// fieldStream draws from a receiver-held stream. The draw happens two
// calls away inside the rng package; advancing the stream mutates
// receiver state, so concurrent Evaluate calls race.
type fieldStream struct{ src *rng.Source }

func (p *fieldStream) Evaluate(g Genome) float64 { // want purity
	return float64(p.src.Intn(len(g) + 1))
}

// clocked times its own fitness call: wall-clock nondeterminism on an
// evolution path.
type clocked struct{}

func (clocked) Evaluate(g Genome) float64 { // want purity
	start := time.Now()
	_ = start
	return float64(len(g))
}

// parentScribbler mutates a parent genome: Cross documents no mutable
// arguments — children are its return values.
type parentScribbler struct{}

func (parentScribbler) Cross(a, b Genome, r *rng.Source) (Genome, Genome) { // want purity
	a[0] = r.Intn(len(a))
	c := make(Genome, len(a), cap(a))
	d := make(Genome, len(b), cap(b))
	copy(c, a)
	copy(d, b)
	return c, d
}

// spawningMutate hands its stream to a goroutine: operators run
// synchronously inside the generation step.
type spawningMutate struct{}

func (spawningMutate) Mutate(g Genome, r *rng.Source) { // want purity
	done := make(chan struct{})
	go func() {
		g[0] = r.Intn(len(g))
		close(done)
	}()
	<-done
}

// batchCounter tallies batch sizes on its receiver: EvaluateBatch may
// fill its output slice, nothing else — shared Problem values are
// evaluated concurrently.
type batchCounter struct{ seen int }

func (b *batchCounter) EvaluateBatch(genomes []Genome, out []float64) { // want purity
	b.seen += len(genomes)
	for i, g := range genomes {
		out[i] = float64(len(g))
	}
}

// tally counts selections in package state through a helper: the write
// is invisible to a local scan of Select.
var tally int

type globalTally struct{}

func (globalTally) Select(p Population, d Direction, r *rng.Source) Genome { // want purity
	bump()
	return p[r.Intn(len(p))]
}

func bump() { tally++ }
