// Fixture for drawshape (bad): operator-role methods and a hot-listed
// function whose RNG draws execute only under conditions that read
// genome/population content. Checked as pga/internal/operators so the
// free CrossInto lands on the hiddenalloc hot list.
package fixture

import (
	rng "pga/internal/fixrng"

	fixgen "pga/internal/fixgen"
)

// Genome carries content fields so conditions over them taint.
type Genome struct {
	Genes   []float64
	Fitness float64
}

// Individual and Population mirror the engine's shapes.
type Individual struct{ Fitness float64 }

// Population is a fixture population.
type Population struct{ Members []*Individual }

// Direction satisfies the Select role's second parameter.
type Direction int

// BadMut draws only when the genome is already fit: the draw count
// depends on content, so seeded runs diverge with population state.
type BadMut struct{}

// Mutate matches the Mutate role.
func (BadMut) Mutate(g Genome, r *rng.Source) {
	if g.Fitness > 0 {
		i := r.Intn(len(g.Genes)) // want drawshape
		g.Genes[i] = 0
	}
}

// BadSel draws a fallback index only when the fitness mass is
// degenerate — the classic content-dependent draw-kind switch.
type BadSel struct{}

// Select matches the Select role.
func (BadSel) Select(pop *Population, d Direction, r *rng.Source) int {
	total := 0.0
	for _, m := range pop.Members {
		total += m.Fitness
	}
	if total == 0 {
		return r.Intn(len(pop.Members)) // want drawshape
	}
	return 0
}

// CrossInto is hot-listed (pga/internal/operators.CrossInto): a draw
// guarded by a fitness comparison is content-dependent even though the
// function matches no role shape.
func CrossInto(a, b Genome, r *rng.Source) float64 {
	if a.Fitness > b.Fitness {
		return float64(r.Uint64()) // want drawshape
	}
	return 0
}

// TailSel's content-dependent draw lives in another package: the folded
// shape carries fixgen.PickTail's draw position into this package's
// report (the marker sits in auxtail.go).
type TailSel struct{ Q *fixgen.Queue }

// Select matches the Select role and reaches the tainted draw through a
// cross-package call.
func (s TailSel) Select(pop *Population, d Direction, r *rng.Source) int {
	_ = pop
	return fixgen.PickTail(s.Q, r)
}
