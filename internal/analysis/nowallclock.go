package analysis

// nowallclock: evolution paths must not observe the wall clock.
//
// A time.Now (or timer, or sleep) inside a generation step, a genetic
// operator or a fitness function makes the trajectory depend on machine
// load and scheduling — the numbers stop replaying, and worse, they stop
// meaning anything when used for the speedup methodology of Alba & Luque
// (measuring parallel speedup requires the algorithm itself to be
// schedule-independent). Wall-clock access is legitimate only in run
// orchestration (measuring Elapsed around a run), in stats/experiment
// harness code, and in the supervision layer whose whole purpose is
// timeouts. Those places form an explicit allowlist; everything else is a
// violation.

import (
	"go/ast"
)

// forbiddenClockCalls are the time-package functions that observe or
// depend on real time. time.Duration arithmetic and constants stay legal
// everywhere — types are not clocks.
var forbiddenClockCalls = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTicker": true,
	"NewTimer":  true,
	"Sleep":     true,
}

// NoWallClockConfig configures the nowallclock analyzer.
type NoWallClockConfig struct {
	// Allow lists where wall-clock access is permitted. Entries are
	// either package patterns ("pga/internal/stats", "pga/cmd/...") or
	// package-qualified function names ("pga/internal/ga.Run"), matching
	// the enclosing function or method name regardless of receiver.
	Allow []string
}

// DefaultNoWallClockConfig returns the repository's production policy:
// timing is orchestration-and-observation only.
func DefaultNoWallClockConfig() NoWallClockConfig {
	return NoWallClockConfig{Allow: []string{
		// Command-line drivers and runnable examples time whole runs.
		"pga/cmd/...",
		"pga/examples/...",
		// Experiment harness and statistics report wall-clock results.
		"pga/internal/exp",
		"pga/internal/stats",
		// The supervision layer exists to impose deadlines and backoff.
		// RunStep and Restart are additionally allowlisted by name so the
		// clock taint stops at them: they are the vetted supervision entry
		// points the model steppers call per generation.
		"pga/internal/supervise",
		"pga/internal/supervise.RunStep",
		"pga/internal/supervise.Restart",
		// Run-orchestration entry points: they time Elapsed around the
		// (deterministic) evolution loop, never inside a step. engine.Loop
		// is the shared run-loop driver every runtime delegates to; the
		// async island wrappers additionally time the goroutine join.
		"pga/internal/engine.Loop",
		"pga/internal/hga.Run",
		"pga/internal/island.runParallelAsync",
		"pga/internal/island.runParallelAsyncSupervised",
		// The wire transport is the one place the repository touches real
		// I/O: dial/write deadlines, reconnect backoff and interruptible
		// sleeps are its job. The determinism contract stops at the wire —
		// everything the transport *carries* stays seeded-stream driven.
		"pga/internal/transport",
	}}
}

// NoWallClock builds the nowallclock analyzer with the default
// configuration.
func NoWallClock() *Analyzer { return NoWallClockWith(DefaultNoWallClockConfig()) }

// NoWallClockWith builds the nowallclock analyzer with cfg (test hook).
func NoWallClockWith(cfg NoWallClockConfig) *Analyzer {
	// Interprocedural part: clock taint computed once per Facts. Taint
	// flows through every module function — including package-allowlisted
	// helpers, which is exactly the laundering gap the summaries close —
	// but stops at functions allowlisted by qualified name: those are the
	// vetted orchestration entry points whose callers stay legitimate.
	var cachedFacts *Facts
	var taint map[*Node]bool
	return &Analyzer{
		Name: "nowallclock",
		Doc: "forbids time.Now/Since/timers/sleeps outside the orchestration-and-stats " +
			"allowlist; wall-clock reads inside generation-step, operator or fitness " +
			"code leak scheduling nondeterminism into the evolution trajectory — " +
			"including reads reached only through helper calls",
		Run: func(pass *Pass) {
			if allowedEverywhere(cfg.Allow, pass.PkgPath) {
				return
			}
			if pass.Facts != nil {
				if pass.Facts != cachedFacts {
					cachedFacts = pass.Facts
					sanctioned := func(n *Node) bool {
						return n.Decl != nil && n.Pkg != nil &&
							allowedFunc(cfg.Allow, n.Pkg.Path, n.Decl.Name.Name)
					}
					taint = pass.Facts.Taint(
						func(n *Node) bool { return pass.Facts.Direct(n).ReadsClock },
						sanctioned,
						map[EdgeKind]bool{EdgeCall: true, EdgeSpawn: true, EdgeRef: true},
					)
				}
				reportClockChains(pass, cfg, taint)
			}
			for _, file := range pass.Files {
				ast.Inspect(file, func(n ast.Node) bool {
					sel, ok := n.(*ast.SelectorExpr)
					if !ok || !forbiddenClockCalls[sel.Sel.Name] {
						return true
					}
					id, ok := sel.X.(*ast.Ident)
					if !ok {
						return true
					}
					pkg := usedPackage(pass.Info, id)
					if pkg == nil || pkg.Path() != "time" {
						return true
					}
					if fd := enclosingFunc(file, sel.Pos()); fd != nil &&
						allowedFunc(cfg.Allow, pass.PkgPath, fd.Name.Name) {
						return true
					}
					pass.Reportf(sel.Pos(), "nowallclock",
						"time.%s leaks wall-clock nondeterminism into an evolution path; "+
							"timing belongs in run orchestration or stats (see the nowallclock allowlist)",
						sel.Sel.Name)
					return true
				})
			}
		},
	}
}

// reportClockChains flags calls from unallowlisted functions into module
// functions whose call chains reach the wall clock. Direct time.* uses
// are handled by the local scan; this closes the helper-laundering gap
// (ga.Step → stats helper → time.Now).
func reportClockChains(pass *Pass, cfg NoWallClockConfig, taint map[*Node]bool) {
	for _, n := range pass.Facts.Graph.Nodes {
		if n.Pkg == nil || pass.Pkg == nil || n.Pkg.Types != pass.Pkg {
			continue
		}
		if fd := rootDecl(pass, n); fd != nil &&
			allowedFunc(cfg.Allow, pass.PkgPath, fd.Name.Name) {
			continue
		}
		for _, e := range n.Out {
			if taint[e.Callee] {
				pass.Reportf(e.Pos, "nowallclock",
					"call into %s, whose call chain observes the wall clock; evolution "+
						"paths must be schedule-independent (vetted orchestration entry "+
						"points belong on the nowallclock allowlist)", e.Callee.Name)
			}
		}
	}
}

// rootDecl returns the FuncDecl lexically enclosing a node (itself for
// declarations, the enclosing declaration for closures), or nil.
func rootDecl(pass *Pass, n *Node) *ast.FuncDecl {
	if n.Decl != nil {
		return n.Decl
	}
	for _, f := range pass.Files {
		if f.FileStart <= n.Pos() && n.Pos() <= f.FileEnd {
			return enclosingFunc(f, n.Pos())
		}
	}
	return nil
}

// allowedEverywhere reports whether a whole package is allowlisted.
func allowedEverywhere(allow []string, pkgPath string) bool {
	for _, entry := range allow {
		if !hasFuncQualifier(entry) && pathMatch(entry, pkgPath) {
			return true
		}
	}
	return false
}

// allowedFunc reports whether pkgPath.fn is allowlisted by a
// function-qualified entry.
func allowedFunc(allow []string, pkgPath, fn string) bool {
	for _, entry := range allow {
		if entry == pkgPath+"."+fn {
			return true
		}
	}
	return false
}

// hasFuncQualifier reports whether entry names a function rather than a
// package: a dot after the final slash.
func hasFuncQualifier(entry string) bool {
	last := entry
	if i := lastSlash(entry); i >= 0 {
		last = entry[i+1:]
	}
	for i := 0; i < len(last); i++ {
		if last[i] == '.' {
			// "..." wildcard is a path element, not a qualifier.
			return last[i:] != "..."
		}
	}
	return false
}

// lastSlash returns the index of the final '/' in s, or -1.
func lastSlash(s string) int {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == '/' {
			return i
		}
	}
	return -1
}
