package analysis

// Rule 14, drawparity: declared equivalence pairs must have identical
// symbolic draw shapes. The repo's engines freely substitute one member
// of a pair for the other (allocating Cross vs in-place CrossInto,
// Select vs SelectScratch, SUS vs SUSInto, the scalar vs batched
// evaluator path, the in-process island seed split vs the wire one), and
// the substitution is sound only when both members consume the same RNG
// draw sequence. The dynamic proof is one golden trace per operator; the
// static proof is shape equality, which also covers operators a trace
// does not exercise and catches a desync at review time instead of at
// golden-regeneration time.
//
// The declared pairs mirror the runtime registries in internal/core,
// internal/operators and internal/island (core.DrawPairs et al.);
// analysis stays import-decoupled from the product packages, and a sync
// test in cmd/pgalint asserts the two listings agree. Mismatches are
// reported at both members, in whichever package's pass owns each.
// Incomplete shapes (recursion, unresolved bodies) and missing nodes
// skip silently — optimistic like every other rule — except that a pair
// with exactly one member present is reported: it means a rename or
// deletion left a dangling declaration.

// DrawPairSpec names the two members of one equivalence pair by their
// qualified node names.
type DrawPairSpec struct {
	A, B string
}

// DrawParityConfig parameterizes drawparity.
type DrawParityConfig struct {
	Pairs []DrawPairSpec
}

// DefaultDrawParityConfig lists the repo's equivalence pairs. Keep in
// sync with the runtime registries (TestDrawPairRegistryMatchesAnalysis
// in cmd/pgalint enforces it).
func DefaultDrawParityConfig() DrawParityConfig {
	ops := "pga/internal/operators."
	var pairs []DrawPairSpec
	for _, c := range []string{
		"OnePoint", "TwoPoint", "KPoint", "Uniform", "Arithmetic", "BLX",
		"SBX", "OX", "PMX", "CX", "ERX", "UniformWord", "KPointWord",
	} {
		pairs = append(pairs, DrawPairSpec{A: ops + c + ".Cross", B: ops + c + ".CrossInto"})
	}
	pairs = append(pairs,
		DrawPairSpec{A: ops + "LinearRank.Select", B: ops + "LinearRank.SelectScratch"},
		DrawPairSpec{A: ops + "Truncation.Select", B: ops + "Truncation.SelectScratch"},
		DrawPairSpec{A: ops + "SUS", B: ops + "SUSInto"},
		DrawPairSpec{
			A: "pga/internal/core.SerialEvaluator.EvaluateAll",
			B: "pga/internal/core.SerialEvaluator.evaluateBatch",
		},
		DrawPairSpec{
			A: "pga/internal/island.newDemeStreams",
			B: "pga/internal/island.WireStreams",
		},
	)
	return DrawParityConfig{Pairs: pairs}
}

// DrawParityRule returns the drawparity analyzer with the default pairs.
func DrawParityRule() *Analyzer { return DrawParityWith(DefaultDrawParityConfig()) }

// DrawParityWith returns a drawparity analyzer for cfg.
func DrawParityWith(cfg DrawParityConfig) *Analyzer {
	return &Analyzer{
		Name: "drawparity",
		Doc: "requires declared equivalence pairs (allocating/in-place operators, " +
			"scalar/batch evaluation, island seed splits) to consume identical " +
			"symbolic RNG draw shapes",
		Run: func(pass *Pass) {
			if pass.Facts == nil {
				return
			}
			g := pass.Facts.Graph
			for _, p := range cfg.Pairs {
				na, nb := g.NodeByName(p.A), g.NodeByName(p.B)
				if na == nil && nb == nil {
					continue // pair not in the analyzed set: optimistic
				}
				if na == nil || nb == nil {
					present, missing := na, p.B
					if na == nil {
						present, missing = nb, p.A
					}
					if ownsNode(pass, present) {
						pass.Reportf(present.Decl.Name.Pos(), "drawparity",
							"equivalence pair member %s not found (declared partner of %s): renamed or deleted without updating the pair registry",
							missing, present.Name)
					}
					continue
				}
				sa, sb := pass.Facts.DrawShape(na), pass.Facts.DrawShape(nb)
				if sa == nil || sb == nil || sa.Incomplete || sb.Incomplete {
					continue
				}
				if sa.EqualTerms(sb) {
					continue
				}
				for _, m := range []struct {
					n     *Node
					mine  *DrawShape
					other *Node
					their *DrawShape
				}{{na, sa, nb, sb}, {nb, sb, na, sa}} {
					if ownsNode(pass, m.n) {
						pass.Reportf(m.n.Decl.Name.Pos(), "drawparity",
							"draw shape %s diverges from equivalence partner %s (shape %s): the pair no longer consumes identical RNG draw sequences",
							m.mine, m.other.Name, m.their)
					}
				}
			}
		},
	}
}

// ownsNode reports whether this pass's package owns n, so each member of
// a cross-package pair is reported exactly once, in its own package.
func ownsNode(pass *Pass, n *Node) bool {
	return n.Pkg != nil && n.Pkg.Types == pass.Pkg && n.Decl != nil
}
