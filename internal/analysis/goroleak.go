package analysis

// goroleak: every go statement must spawn a provably joinable function.
//
// A goroutine leaks when nothing outside it can ever unblock or observe
// its termination — the classic failure mode of worker pumps that outlive
// their owner. The rule accepts a spawn when the spawned function's
// propagated summary carries joinability evidence: it reaches (directly
// or through any chain of calls) a channel receive or range, a select, a
// WaitGroup.Done, or a close. All of these give the spawner (or the
// runtime structure around it) a handle on termination: transport's
// reader/writer pumps select on their done channel, supervise's heartbeat
// watchdog receives the step outcome, and wg.Done-joined workers are
// reaped by Wait.
//
// This subsumes the retired local-only ctxleak rule: ctxleak checked the
// same evidence but only inside the literal go func body, so a pump that
// delegated its select to a helper was flagged and a leak hidden behind a
// call was missed. goroleak reads the Joins bit off the interprocedural
// summary instead, which propagates over call and ref edges (never spawn
// edges — a child goroutine's select does not make its parent joinable).
// Legacy //pgalint:ignore ctxleak directives keep suppressing goroleak
// via the rule-alias table.
//
// Optimism: a go statement whose callee cannot be resolved produces no
// spawn edge, and unresolved callees are given the benefit of the doubt.

// GoroLeak builds the goroleak analyzer.
func GoroLeak() *Analyzer {
	return &Analyzer{
		Name: "goroleak",
		Doc: "requires every spawned goroutine to be provably joinable: its " +
			"interprocedural summary must reach a channel receive, select, " +
			"WaitGroup.Done or close, so something outside the goroutine can " +
			"unblock it or observe its termination (subsumes ctxleak)",
		Run: func(pass *Pass) {
			if pass.Facts == nil || pass.Pkg == nil {
				return
			}
			for _, n := range pass.Facts.Graph.Nodes {
				if n.Pkg == nil || n.Pkg.Types != pass.Pkg {
					continue
				}
				for _, e := range n.Out {
					if e.Kind != EdgeSpawn {
						continue
					}
					s := pass.Facts.Summary(e.Callee)
					if s == nil || s.Joins {
						continue
					}
					pass.Reportf(e.Pos, "goroleak",
						"goroutine %s has no provable termination path "+
							"(no channel receive, select, WaitGroup.Done or close "+
							"reachable from its body); join it via a WaitGroup or "+
							"give it a cancellation channel", e.Callee.Name)
				}
			}
		},
	}
}
