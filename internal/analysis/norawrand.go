package analysis

// norawrand: all randomness must flow through internal/rng.
//
// The survey's experiments replay bit-for-bit because every deme, worker
// and operator draws from its own seeded, splittable *rng.Source stream
// split deterministically from the master seed. One call into the
// globally-seeded math/rand (or, worse, crypto/rand) anywhere on an
// evolution path silently breaks that guarantee while every test still
// passes — exactly the class of regression a linter has to catch.

import (
	"go/ast"
	"strconv"
	"strings"
)

// forbiddenRandImports are the import paths norawrand rejects. math/rand
// and math/rand/v2 carry process-global, racy default sources;
// crypto/rand is nondeterministic by construction.
var forbiddenRandImports = map[string]string{
	"math/rand":    "process-global seeding breaks seeded replay",
	"math/rand/v2": "process-global seeding breaks seeded replay",
	"crypto/rand":  "nondeterministic by construction",
}

// NoRawRandConfig configures the norawrand analyzer.
type NoRawRandConfig struct {
	// ExemptPaths are import-path patterns (exact or "prefix/...") where
	// the forbidden imports are allowed. internal/rng itself is the only
	// default exemption: it is the one place allowed to own generator
	// internals.
	ExemptPaths []string
}

// DefaultNoRawRandConfig returns the repository's production policy.
func DefaultNoRawRandConfig() NoRawRandConfig {
	return NoRawRandConfig{ExemptPaths: []string{"pga/internal/rng"}}
}

// NoRawRand builds the norawrand analyzer with the default configuration.
func NoRawRand() *Analyzer { return NoRawRandWith(DefaultNoRawRandConfig()) }

// NoRawRandWith builds the norawrand analyzer with cfg (test hook).
func NoRawRandWith(cfg NoRawRandConfig) *Analyzer {
	// Interprocedural part: raw-rand taint seeds at direct uses in
	// non-exempt packages and flows up call chains. Exempt packages are
	// sanctioned wrappers (internal/rng owns generator internals), so
	// they neither seed nor carry taint.
	var cachedFacts *Facts
	var taint map[*Node]bool
	exempt := func(pkgPath string) bool {
		for _, pattern := range cfg.ExemptPaths {
			if pathMatch(pattern, pkgPath) {
				return true
			}
		}
		return false
	}
	return &Analyzer{
		Name: "norawrand",
		Doc: "forbids math/rand, math/rand/v2 and crypto/rand outside internal/rng; " +
			"all randomness must come from seeded, splittable *rng.Source streams " +
			"so runs replay bit-for-bit per seed — helper chains included",
		Run: func(pass *Pass) {
			if exempt(pass.PkgPath) {
				return
			}
			if pass.Facts != nil {
				if pass.Facts != cachedFacts {
					cachedFacts = pass.Facts
					taint = pass.Facts.Taint(
						func(n *Node) bool { return pass.Facts.Direct(n).RawRand },
						func(n *Node) bool { return n.Pkg == nil || exempt(n.Pkg.Path) },
						map[EdgeKind]bool{EdgeCall: true, EdgeSpawn: true, EdgeRef: true},
					)
				}
				for _, n := range pass.Facts.Graph.Nodes {
					if n.Pkg == nil || pass.Pkg == nil || n.Pkg.Types != pass.Pkg {
						continue
					}
					for _, e := range n.Out {
						// Same-package callees already carry their own
						// direct-use reports on the same screen.
						if taint[e.Callee] && e.Callee.Pkg.Path != pass.PkgPath {
							pass.Reportf(e.Pos, "norawrand",
								"call into %s, whose call chain draws from math/rand or "+
									"crypto/rand; route randomness through a seeded *rng.Source",
								e.Callee.Name)
						}
					}
				}
			}
			for _, file := range pass.Files {
				for _, imp := range file.Imports {
					path, err := strconv.Unquote(imp.Path.Value)
					if err != nil {
						continue
					}
					why, forbidden := forbiddenRandImports[path]
					if !forbidden {
						continue
					}
					pass.Reportf(imp.Pos(), "norawrand",
						"import of %q (%s); draw randomness from a seeded *rng.Source (internal/rng) instead",
						path, why)
					// Also flag each use so the offending call sites are
					// visible, not just the import line.
					reportRandUses(pass, file, imp)
				}
			}
		},
	}
}

// reportRandUses flags selector uses of the forbidden import (e.g.
// rand.New, rand.Intn) within file.
func reportRandUses(pass *Pass, file *ast.File, imp *ast.ImportSpec) {
	path, _ := strconv.Unquote(imp.Path.Value)
	ast.Inspect(file, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		if pkg := usedPackage(pass.Info, id); pkg != nil && pkg.Path() == path {
			pass.Reportf(sel.Pos(), "norawrand",
				"use of %s.%s; replace with the equivalent *rng.Source method",
				lastSegment(path), sel.Sel.Name)
		}
		return true
	})
}

// lastSegment returns the final element of an import path.
func lastSegment(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}
