package analysis

import "testing"

func TestPurityBad(t *testing.T) { checkRule(t, Purity(), "purity_bad.go") }
func TestPurityOk(t *testing.T)  { checkRule(t, Purity(), "purity_ok.go") }
