package analysis

import "testing"

func TestPurityBad(t *testing.T) { checkRule(t, Purity(), "purity_bad.go") }
func TestPurityOk(t *testing.T)  { checkRule(t, Purity(), "purity_ok.go") }

// TestPurityExemptList pins the Exempt mechanism: the memoising Evaluate
// in purity_exempt.go reports under the default config (its package has
// no exemption) and falls silent once listed.
func TestPurityExemptList(t *testing.T) {
	if diags := runFixture(t, Purity(), "purity_exempt.go"); len(diags) != 1 {
		t.Fatalf("unexempted memoised Evaluate: got %d findings, want 1: %v", len(diags), diags)
	}
	cfg := DefaultPurityConfig()
	cfg.Exempt = append(cfg.Exempt, "pga/internal/memo.Evaluate")
	if diags := runFixture(t, PurityWith(cfg), "purity_exempt.go"); len(diags) != 0 {
		t.Fatalf("Exempt entry did not silence the finding: %v", diags)
	}
}
