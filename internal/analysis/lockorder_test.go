package analysis

import "testing"

func TestLockOrder(t *testing.T) {
	for _, fixture := range []string{
		"lockorder_bad.go",
		"lockorder_ok.go",
		"lockorder_x.go",
	} {
		t.Run(fixture, func(t *testing.T) {
			checkRule(t, LockOrder(), fixture)
		})
	}
}

// TestLockOrderCycleIsUniquelyCaught pins the acceptance criterion that
// the seeded deadlock cycle is invisible to every other rule: running
// the full registry minus lockorder over the cycle fixture must report
// nothing at all.
func TestLockOrderCycleIsUniquelyCaught(t *testing.T) {
	var others []*Analyzer
	for _, a := range Registry() {
		if a.Name != "lockorder" {
			others = append(others, a)
		}
	}
	diags := RunAnalyzers("", fixtureGroupPkgs(t, "lockorder_bad.go"), others)
	for _, d := range diags {
		t.Errorf("rule %s also fires on the lockorder fixture: %s", d.Rule, d)
	}
	if got := runFixture(t, LockOrder(), "lockorder_bad.go"); len(got) == 0 {
		t.Fatal("lockorder itself reported nothing on its seeded fixture")
	}
}
