package analysis

import "testing"

func TestNoWallClock(t *testing.T) {
	tests := []struct {
		name    string
		fixture string
	}{
		{"flags clock reads in operator code", "nowallclock_bad.go"},
		{"silent in allowlisted Run orchestration", "nowallclock_ok.go"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			checkRule(t, NoWallClock(), tc.fixture)
		})
	}
}

func TestNoWallClockPackageAllowlist(t *testing.T) {
	// The violating file is legal wholesale in stats code: reporting
	// wall-clock results is that package's job.
	pkg := loadFixtureAs(t, "nowallclock_bad.go", "pga/internal/stats")
	diags := RunAnalyzers("", []*Package{pkg}, []*Analyzer{NoWallClock()})
	if len(diags) != 0 {
		t.Fatalf("allowlisted package still reported: %v", diags)
	}
}

func TestNoWallClockTransportAllowlist(t *testing.T) {
	// The wire transport is allowlisted wholesale: deadlines, backoff
	// and interruptible sleeps are real-I/O concerns, not simulation
	// clocks. The same clock reads under a sibling comm package (the
	// deterministic island runtime) must still be flagged.
	pkg := loadFixtureAs(t, "nowallclock_bad.go", "pga/internal/transport")
	if diags := RunAnalyzers("", []*Package{pkg}, []*Analyzer{NoWallClock()}); len(diags) != 0 {
		t.Fatalf("transport package still reported: %v", diags)
	}
	pkg = loadFixtureAs(t, "nowallclock_bad.go", "pga/internal/island")
	if diags := RunAnalyzers("", []*Package{pkg}, []*Analyzer{NoWallClock()}); len(diags) == 0 {
		t.Fatal("island package slipped through the clock rule")
	}
}

func TestNoWallClockFunctionAllowlistIsExact(t *testing.T) {
	// nowallclock_ok.go relies on the pga/internal/hga.Run entry; the same
	// file under a different package path must be flagged.
	pkg := loadFixtureAs(t, "nowallclock_ok.go", "pga/internal/operators")
	diags := RunAnalyzers("", []*Package{pkg}, []*Analyzer{NoWallClock()})
	if len(diags) != 2 { // time.Now + time.Since in Run
		t.Fatalf("want 2 findings outside the allowlisted package, got %d: %v", len(diags), diags)
	}
}
