package analysis

import "testing"

func TestNoWallClock(t *testing.T) {
	tests := []struct {
		name    string
		fixture string
	}{
		{"flags clock reads in operator code", "nowallclock_bad.go"},
		{"silent in allowlisted Run orchestration", "nowallclock_ok.go"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			checkRule(t, NoWallClock(), tc.fixture)
		})
	}
}

func TestNoWallClockPackageAllowlist(t *testing.T) {
	// The violating file is legal wholesale in stats code: reporting
	// wall-clock results is that package's job.
	pkg := loadFixtureAs(t, "nowallclock_bad.go", "pga/internal/stats")
	diags := RunAnalyzers("", []*Package{pkg}, []*Analyzer{NoWallClock()})
	if len(diags) != 0 {
		t.Fatalf("allowlisted package still reported: %v", diags)
	}
}

func TestNoWallClockFunctionAllowlistIsExact(t *testing.T) {
	// nowallclock_ok.go relies on the pga/internal/hga.Run entry; the same
	// file under a different package path must be flagged.
	pkg := loadFixtureAs(t, "nowallclock_ok.go", "pga/internal/operators")
	diags := RunAnalyzers("", []*Package{pkg}, []*Analyzer{NoWallClock()})
	if len(diags) != 2 { // time.Now + time.Since in Run
		t.Fatalf("want 2 findings outside the allowlisted package, got %d: %v", len(diags), diags)
	}
}
