package analysis

// Per-function effect summaries, computed bottom-up over the SCC
// condensation of the call graph. A summary answers, for one function
// body, the questions the interprocedural rules need without re-walking
// callees:
//
//   - effect bits: does running this function (or anything it reaches)
//     observe the wall clock, touch math/rand / crypto/rand, allocate on
//     the Clone/growing-append patterns, or write package-level state?
//   - parameter facts (unified indexing: receiver is index 0 when
//     present, then the declared parameters): which parameters' referents
//     may be mutated; which parameters are *rng.Source-like streams that
//     are drawn from on the calling goroutine (DrawsParam) or handed to a
//     spawned goroutine that draws (SpawnDrawsParam)?
//   - draw evidence with positions for vars in the body's own scope
//     (Draws / SpawnDraws) and flow-through facts for captured outer vars
//     (CapturedDraws / CapturedSpawnDraws / CapturedMutates)?
//   - channel endpoints: which channels the function may block sending on
//     (classified exactly like blockingsend: a send is non-blocking only
//     under a select with a default or escape case) and which it may
//     receive from. A channel is identified by the parameter carrying it,
//     or by the variable/struct-field object — the field-level
//     abstraction chantopo builds its topology on.
//   - concurrency facts: is the function joinable (Joins: it reaches a
//     channel receive, select, wg.Done or close — evidence a spawner can
//     unblock it), which mutexes it may acquire (Acquires, for lockorder's
//     interprocedural held-set product), which WaitGroups it Adds to
//     (WGAdds, for waitgroup's spawned-Add check), and which slices it
//     grows via append (Grows, for boundedres). These reuse the ChanFact
//     identity abstraction: a parameter index, or the var/field object.
//
// Direct facts cover the body excluding nested closures (each closure is
// its own node); propagation folds callee facts in along call-graph
// edges, substituting arguments for parameters at call sites. Spawn edges
// move draw facts into the Spawn* buckets and do not carry channel facts
// upward (a spawned goroutine's blocking send does not block its
// spawner); chantopo instantiates spawned bodies itself.
//
// Everything here is monotone boolean/bitset state over a finite graph,
// so iterating each SCC to fixpoint terminates.

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// maxTrackedParams bounds the parameter bitsets.
const maxTrackedParams = 64

// maxChanFacts bounds the channel-endpoint lists per summary.
const maxChanFacts = 64

// maxDrawSites bounds the recorded draw positions per variable.
const maxDrawSites = 16

// maxLockEdges bounds the same-body lock-order edges recorded per node.
const maxLockEdges = 64

// ChanFact is one channel endpoint a function may use.
type ChanFact struct {
	// Param is the unified parameter index carrying the channel, or -1.
	Param int
	// Obj identifies the channel when Param < 0: a local, package-level
	// or struct-field variable. Struct fields abstract over instances.
	Obj types.Object
	// Pos is the send (or receive) site, surviving propagation so
	// chantopo reports at the real statement.
	Pos token.Pos
}

// Summary holds the facts for one call-graph node.
type Summary struct {
	node   *Node
	params []*types.Var // unified receiver+params; nil entries for unnamed

	// Effect bits (after propagation: closed over everything reachable).
	ReadsClock   bool
	RawRand      bool
	Allocates    bool
	WritesGlobal bool

	// Parameter bitsets (unified indexing, capped at maxTrackedParams).
	MutatesParam    uint64
	DrawsParam      uint64
	SpawnDrawsParam uint64

	// Draw evidence for vars in this body's scope (params and locals).
	Draws      map[*types.Var][]token.Pos
	SpawnDraws map[*types.Var][]token.Pos

	// Flow-through facts about vars declared outside this body.
	CapturedDraws      map[*types.Var]bool
	CapturedSpawnDraws map[*types.Var]bool
	CapturedMutates    map[*types.Var]bool

	// Channel endpoints. Sends holds only may-block sends.
	Sends []ChanFact
	Recvs []ChanFact

	// Joins reports that the function reaches a blocking operation a
	// spawner can unblock from outside: a channel receive or range, a
	// select, a WaitGroup.Done, or a close. Propagated over call and ref
	// edges only — a goroutine's joinability cannot come from something
	// it merely spawns.
	Joins bool

	// Acquires lists the mutexes this function (or anything it calls) may
	// lock; lockorder crosses these with the caller's held set.
	Acquires []ChanFact

	// WGAdds lists WaitGroup counters this function (or its callees) may
	// Add to; waitgroup flags these when reached through a spawn edge.
	WGAdds []ChanFact

	// Grows lists slices grown by append without a reserving make;
	// boundedres flags field/global growth in hot packages.
	Grows []ChanFact

	// Direct-only facts (never propagated; shared across clone — the rules
	// read them via Facts.Direct):
	lockEvents []lockEvent                      // ordered acquire/release/return/panic trace
	lockEdges  []lockEdge                       // same-body nested acquisitions
	heldAtCall map[*ast.CallExpr][]types.Object // locks lexically held at each call site
	wgWaits    []ChanFact                       // WaitGroup.Wait sites
}

// lockEventKind enumerates the events of the lexical lock walk.
type lockEventKind int

const (
	evAcquire lockEventKind = iota
	evRelease
	evDeferRelease
	evReturn
	evPanic
)

// lockEvent is one entry in a body's ordered lock trace.
type lockEvent struct {
	kind lockEventKind
	obj  types.Object // lock identity for acquire/release; nil otherwise
	read bool         // RLock/RUnlock
	pos  token.Pos
}

// lockEdge records that to was acquired while from was held, at pos (the
// inner acquisition site).
type lockEdge struct {
	from, to types.Object
	pos      token.Pos
}

// ParamIndex returns v's unified parameter index in this summary, or -1.
func (s *Summary) ParamIndex(v *types.Var) int {
	for i, p := range s.params {
		if p != nil && p == v {
			return i
		}
	}
	return -1
}

// ParamVar returns the variable at unified index i, or nil.
func (s *Summary) ParamVar(i int) *types.Var {
	if i < 0 || i >= len(s.params) {
		return nil
	}
	return s.params[i]
}

// Facts bundles the call graph and summaries; one Facts value is computed
// per RunAnalyzers call and shared by every pass.
type Facts struct {
	// Graph is the module-wide call graph over the analyzed packages.
	Graph *Graph

	direct    map[*Node]*Summary
	summaries map[*Node]*Summary

	// drawShapes holds the symbolic RNG draw shapes (drawsym.go),
	// computed lazily on the first Facts.DrawShape call.
	drawShapes map[*Node]*DrawShape
}

// ComputeFacts builds the call graph and summaries for pkgs.
func ComputeFacts(pkgs []*Package) *Facts {
	g := BuildGraph(pkgs)
	f := &Facts{
		Graph:     g,
		direct:    make(map[*Node]*Summary, len(g.Nodes)),
		summaries: make(map[*Node]*Summary, len(g.Nodes)),
	}
	for _, n := range g.Nodes {
		f.direct[n] = computeDirect(n)
	}
	for _, n := range g.Nodes {
		f.summaries[n] = f.direct[n].clone()
	}
	// Bottom-up over the SCC condensation; loop each component to
	// fixpoint so mutual recursion converges.
	for _, scc := range g.SCCs() {
		for changed := true; changed; {
			changed = false
			for _, n := range scc {
				for _, e := range n.Out {
					if f.mergeEdge(f.summaries[n], f.summaries[e.Callee], e) {
						changed = true
					}
				}
			}
		}
	}
	return f
}

// Summary returns the propagated summary for n (nil-safe: nil for
// unknown nodes).
func (f *Facts) Summary(n *Node) *Summary { return f.summaries[n] }

// Direct returns the body-local (pre-propagation) summary for n.
func (f *Facts) Direct(n *Node) *Summary { return f.direct[n] }

// Taint computes a generic bottom-up reachability closure: a node is
// tainted when stop(n) is false and either seed(n) holds or some edge of
// an included kind leads to a tainted callee. The policy-aware retrofits
// (nowallclock, norawrand, hiddenalloc) each parameterize this with
// their own seeds and sanctioned-function stops.
func (f *Facts) Taint(seed, stop func(*Node) bool, kinds map[EdgeKind]bool) map[*Node]bool {
	taint := make(map[*Node]bool, len(f.Graph.Nodes))
	for _, scc := range f.Graph.SCCs() {
		for changed := true; changed; {
			changed = false
			for _, n := range scc {
				if taint[n] || stop(n) {
					continue
				}
				t := seed(n)
				if !t {
					for _, e := range n.Out {
						if kinds[e.Kind] && taint[e.Callee] {
							t = true
							break
						}
					}
				}
				if t {
					taint[n] = true
					changed = true
				}
			}
		}
	}
	return taint
}

// clone deep-copies a summary for use as the propagation seed.
func (s *Summary) clone() *Summary {
	c := *s
	c.Draws = clonePosMap(s.Draws)
	c.SpawnDraws = clonePosMap(s.SpawnDraws)
	c.CapturedDraws = cloneVarSet(s.CapturedDraws)
	c.CapturedSpawnDraws = cloneVarSet(s.CapturedSpawnDraws)
	c.CapturedMutates = cloneVarSet(s.CapturedMutates)
	c.Sends = append([]ChanFact(nil), s.Sends...)
	c.Recvs = append([]ChanFact(nil), s.Recvs...)
	c.Acquires = append([]ChanFact(nil), s.Acquires...)
	c.WGAdds = append([]ChanFact(nil), s.WGAdds...)
	c.Grows = append([]ChanFact(nil), s.Grows...)
	return &c
}

func clonePosMap(m map[*types.Var][]token.Pos) map[*types.Var][]token.Pos {
	out := make(map[*types.Var][]token.Pos, len(m))
	for k, v := range m {
		out[k] = append([]token.Pos(nil), v...)
	}
	return out
}

func cloneVarSet(m map[*types.Var]bool) map[*types.Var]bool {
	out := make(map[*types.Var]bool, len(m))
	for k := range m {
		out[k] = true
	}
	return out
}

// varClass classifies a variable relative to a node's body.
type varClass int

const (
	classParam varClass = iota
	classLocal
	classOuter
	classGlobal
)

// classOf classifies v relative to s's node: one of its unified params, a
// package-level var, a local of the body (nested closures' locals cannot
// lexically appear in facts that reach s), or an outer captured var.
func (s *Summary) classOf(v *types.Var) (int, varClass) {
	if i := s.ParamIndex(v); i >= 0 {
		return i, classParam
	}
	if isGlobalVar(v) {
		return -1, classGlobal
	}
	if v.Pos() >= s.node.Pos() && v.Pos() <= s.node.End() {
		return -1, classLocal
	}
	return -1, classOuter
}

// isGlobalVar reports whether v is declared at package scope.
func isGlobalVar(v *types.Var) bool {
	return !v.IsField() && v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

// addDrawPos records a draw site, deduplicated and bounded.
func addDrawPos(m *map[*types.Var][]token.Pos, v *types.Var, pos token.Pos) bool {
	if *m == nil {
		*m = map[*types.Var][]token.Pos{}
	}
	sites := (*m)[v]
	if len(sites) >= maxDrawSites {
		return false
	}
	for _, p := range sites {
		if p == pos {
			return false
		}
	}
	(*m)[v] = append(sites, pos)
	return true
}

// addVar records a var in a captured-fact set.
func addVar(m *map[*types.Var]bool, v *types.Var) bool {
	if *m == nil {
		*m = map[*types.Var]bool{}
	}
	if (*m)[v] {
		return false
	}
	(*m)[v] = true
	return true
}

// addChanFact appends a channel fact, deduplicated by endpoint identity
// and bounded.
func addChanFact(list *[]ChanFact, cf ChanFact) bool {
	if cf.Param < 0 && cf.Obj == nil {
		return false
	}
	if len(*list) >= maxChanFacts {
		return false
	}
	for _, have := range *list {
		if have.Param == cf.Param && have.Obj == cf.Obj && have.Pos == cf.Pos {
			return false
		}
	}
	*list = append(*list, cf)
	return true
}

// setBit sets bit i (when trackable) and reports change.
func setBit(mask *uint64, i int) bool {
	if i < 0 || i >= maxTrackedParams {
		return false
	}
	bit := uint64(1) << uint(i)
	if *mask&bit != 0 {
		return false
	}
	*mask |= bit
	return true
}

// drawFlavor distinguishes same-goroutine draws from spawned-goroutine
// draws during propagation.
type drawFlavor int

const (
	drawSync drawFlavor = iota
	drawSpawn
)

// recordDraw files draw evidence for v relative to dst. Draw facts track
// stream variables only: when substitution roots a callee's draw at a
// non-stream variable (a struct whose *field* holds the stream), the
// draw is recorded as a mutation of that variable instead — drawing a
// struct-held stream mutates the struct, but does not make the struct a
// stream shared across goroutines.
func recordDraw(dst *Summary, v *types.Var, pos token.Pos, flavor drawFlavor) bool {
	if !isRNGStream(v.Type()) {
		return recordMutation(dst, v, pos, flavor)
	}
	idx, class := dst.classOf(v)
	switch class {
	case classParam:
		changed := false
		if flavor == drawSpawn {
			changed = setBit(&dst.SpawnDrawsParam, idx)
			if addDrawPos(&dst.SpawnDraws, v, pos) {
				changed = true
			}
		} else {
			changed = setBit(&dst.DrawsParam, idx)
			if addDrawPos(&dst.Draws, v, pos) {
				changed = true
			}
		}
		return changed
	case classLocal:
		if flavor == drawSpawn {
			return addDrawPos(&dst.SpawnDraws, v, pos)
		}
		return addDrawPos(&dst.Draws, v, pos)
	case classOuter:
		if flavor == drawSpawn {
			return addVar(&dst.CapturedSpawnDraws, v)
		}
		return addVar(&dst.CapturedDraws, v)
	default: // classGlobal: drawing a package-level stream mutates it
		if !dst.WritesGlobal {
			dst.WritesGlobal = true
			return true
		}
		return false
	}
}

// recordMutation files mutation evidence for v relative to dst. Writes
// through an RNG-stream variable are reclassified as draws: rng.Source
// methods mutate their receiver by design, and the rules account for
// stream state under the draw facts, not the mutation facts.
func recordMutation(dst *Summary, v *types.Var, pos token.Pos, flavor drawFlavor) bool {
	if isRNGStream(v.Type()) {
		return recordDraw(dst, v, pos, flavor)
	}
	idx, class := dst.classOf(v)
	switch class {
	case classParam:
		return setBit(&dst.MutatesParam, idx)
	case classGlobal:
		if !dst.WritesGlobal {
			dst.WritesGlobal = true
			return true
		}
		return false
	case classOuter:
		return addVar(&dst.CapturedMutates, v)
	default:
		return false // caller-local mutation is invisible outside
	}
}

// mergeEdge folds src (the callee summary) into dst (the caller summary)
// along edge e, substituting call-site arguments for parameters. Returns
// whether dst changed.
func (f *Facts) mergeEdge(dst, src *Summary, e *Edge) bool {
	changed := false
	or := func(p *bool, v bool) {
		if v && !*p {
			*p = true
			changed = true
		}
	}
	// Effect bits flow through every edge kind: whenever and wherever the
	// callee runs, its effects happen on behalf of this function.
	or(&dst.ReadsClock, src.ReadsClock)
	or(&dst.RawRand, src.RawRand)
	or(&dst.Allocates, src.Allocates)
	or(&dst.WritesGlobal, src.WritesGlobal)

	spawn := e.Kind == EdgeSpawn
	flavorOf := func(base drawFlavor) drawFlavor {
		if spawn {
			return drawSpawn
		}
		return base
	}

	// Captured facts: the callee (a closure, or a chain ending in one)
	// touches vars declared outside itself; reclassify them against dst.
	for v := range src.CapturedDraws {
		if recordDraw(dst, v, e.Pos, flavorOf(drawSync)) {
			changed = true
		}
	}
	for v := range src.CapturedSpawnDraws {
		if recordDraw(dst, v, e.Pos, drawSpawn) {
			changed = true
		}
	}
	for v := range src.CapturedMutates {
		if recordMutation(dst, v, e.Pos, flavorOf(drawSync)) {
			changed = true
		}
	}

	// Parameter-indexed facts need a call site to bind arguments.
	if e.Site != nil {
		info := e.Caller.Pkg.Info
		for i := range src.params {
			bit := uint64(1) << uint(i)
			var arg ast.Expr
			resolved := false
			resolve := func() *types.Var {
				if !resolved {
					arg = calleeArg(e, src, i)
					resolved = true
				}
				if arg == nil {
					return nil
				}
				return rootVarOf(info, arg)
			}
			if src.MutatesParam&bit != 0 {
				if v := resolve(); v != nil && recordMutation(dst, v, e.Pos, flavorOf(drawSync)) {
					changed = true
				}
			}
			if src.DrawsParam&bit != 0 {
				if v := resolve(); v != nil && recordDraw(dst, v, e.Pos, flavorOf(drawSync)) {
					changed = true
				}
			}
			if src.SpawnDrawsParam&bit != 0 {
				if v := resolve(); v != nil && recordDraw(dst, v, e.Pos, drawSpawn) {
					changed = true
				}
			}
		}
	}

	// Channel facts do not cross spawn edges: a spawned goroutine's
	// blocking send cannot block its spawner. chantopo instantiates
	// spawned bodies at the go statement itself. The same holds for the
	// concurrency facts: a spawned goroutine's locks, Adds and appends
	// happen on its own stack, and joinability is never inherited from a
	// child goroutine.
	if !spawn {
		or(&dst.Joins, src.Joins)
		for _, cf := range src.Sends {
			if out, ok := f.substituteChan(dst, src, e, cf); ok && addChanFact(&dst.Sends, out) {
				changed = true
			}
		}
		for _, cf := range src.Recvs {
			if out, ok := f.substituteChan(dst, src, e, cf); ok && addChanFact(&dst.Recvs, out) {
				changed = true
			}
		}
		for _, cf := range src.Acquires {
			if out, ok := f.substituteRef(dst, src, e, cf); ok && addChanFact(&dst.Acquires, out) {
				changed = true
			}
		}
		for _, cf := range src.WGAdds {
			if out, ok := f.substituteRef(dst, src, e, cf); ok && addChanFact(&dst.WGAdds, out) {
				changed = true
			}
		}
		for _, cf := range src.Grows {
			if out, ok := f.substituteRef(dst, src, e, cf); ok && addChanFact(&dst.Grows, out) {
				changed = true
			}
		}
	}
	return changed
}

// substituteChan rebinds a callee channel fact into the caller's frame.
func (f *Facts) substituteChan(dst, src *Summary, e *Edge, cf ChanFact) (ChanFact, bool) {
	if cf.Param < 0 {
		return cf, true // concrete identity survives as-is
	}
	if e.Site == nil {
		return ChanFact{}, false // unbound parameter through a ref edge
	}
	arg := calleeArg(e, src, cf.Param)
	if arg == nil {
		return ChanFact{}, false
	}
	obj := chanIdentOf(e.Caller.Pkg.Info, arg)
	if obj == nil {
		return ChanFact{}, false
	}
	if v, ok := obj.(*types.Var); ok {
		if i := dst.ParamIndex(v); i >= 0 {
			return ChanFact{Param: i, Pos: cf.Pos}, true
		}
	}
	return ChanFact{Param: -1, Obj: obj, Pos: cf.Pos}, true
}

// substituteRef rebinds a lock/WaitGroup/slice fact into the caller's
// frame. Unlike channels these are usually passed by address (&s.mu,
// &b.items), so the argument is unwrapped through &, * and parens before
// resolving its identity.
func (f *Facts) substituteRef(dst, src *Summary, e *Edge, cf ChanFact) (ChanFact, bool) {
	if cf.Param < 0 {
		return cf, true // concrete identity survives as-is
	}
	if e.Site == nil {
		return ChanFact{}, false // unbound parameter through a ref edge
	}
	arg := calleeArg(e, src, cf.Param)
	if arg == nil {
		return ChanFact{}, false
	}
	obj := refIdentOf(e.Caller.Pkg.Info, arg)
	if obj == nil {
		return ChanFact{}, false
	}
	if v, ok := obj.(*types.Var); ok {
		if i := dst.ParamIndex(v); i >= 0 {
			return ChanFact{Param: i, Pos: cf.Pos}, true
		}
	}
	return ChanFact{Param: -1, Obj: obj, Pos: cf.Pos}, true
}

// refIdentOf resolves a by-reference expression (&s.mu, *dst, wg) to its
// identity object, sharing chanIdentOf's field-level abstraction.
func refIdentOf(info *types.Info, expr ast.Expr) types.Object {
	for {
		switch x := expr.(type) {
		case *ast.ParenExpr:
			expr = x.X
		case *ast.StarExpr:
			expr = x.X
		case *ast.UnaryExpr:
			if x.Op != token.AND {
				return nil
			}
			expr = x.X
		default:
			return chanIdentOf(info, expr)
		}
	}
}

// calleeArg returns the caller-side expression bound to the callee's
// unified parameter i at e's call site, or nil when it cannot be mapped
// (variadic overflow, method expressions with odd shapes, ...).
func calleeArg(e *Edge, callee *Summary, i int) ast.Expr {
	site := e.Site
	if site == nil {
		return nil
	}
	hasRecv := false
	if e.Callee.Obj != nil {
		if sig, ok := e.Callee.Obj.Type().(*types.Signature); ok && sig.Recv() != nil {
			hasRecv = true
		}
	}
	if hasRecv {
		sel, ok := unparen(site.Fun).(*ast.SelectorExpr)
		if !ok {
			return nil
		}
		// Method expression T.M(recv, args...): the receiver is Args[0].
		if info := e.Caller.Pkg.Info; info != nil {
			if tv, ok := info.Types[sel.X]; ok && tv.IsType() {
				if i < len(site.Args) {
					return site.Args[i]
				}
				return nil
			}
		}
		if i == 0 {
			return sel.X
		}
		i--
	}
	if i < len(site.Args) {
		return site.Args[i]
	}
	return nil
}

// rootVarOf climbs expr to its root variable: the object whose referent
// the expression reaches (through derefs, indexing, field selection and
// type assertions). Returns nil for expressions rooted in calls,
// literals or package names.
func rootVarOf(info *types.Info, expr ast.Expr) *types.Var {
	for {
		switch x := expr.(type) {
		case *ast.ParenExpr:
			expr = x.X
		case *ast.StarExpr:
			expr = x.X
		case *ast.UnaryExpr:
			if x.Op != token.AND {
				return nil
			}
			expr = x.X
		case *ast.IndexExpr:
			expr = x.X
		case *ast.SliceExpr:
			expr = x.X
		case *ast.SelectorExpr:
			// A qualified reference (pkg.Var) roots at the package var.
			if id, ok := x.X.(*ast.Ident); ok && usedPackage(info, id) != nil {
				if v, ok := info.Uses[x.Sel].(*types.Var); ok {
					return v
				}
				return nil
			}
			expr = x.X
		case *ast.TypeAssertExpr:
			expr = x.X
		case *ast.Ident:
			if info == nil {
				return nil
			}
			if v, ok := info.Uses[x].(*types.Var); ok {
				return v
			}
			if v, ok := info.Defs[x].(*types.Var); ok {
				return v
			}
			return nil
		default:
			return nil
		}
	}
}

// chanIdentOf resolves a channel expression to its identity object: the
// named variable or the struct field (field-level abstraction — all
// instances of a type share the field's endpoints; elements of a
// channel slice/array share the collection's identity).
func chanIdentOf(info *types.Info, expr ast.Expr) types.Object {
	for {
		switch x := expr.(type) {
		case *ast.ParenExpr:
			expr = x.X
		case *ast.IndexExpr:
			expr = x.X
		case *ast.Ident:
			if info == nil {
				return nil
			}
			if v, ok := info.Uses[x].(*types.Var); ok {
				return v
			}
			if v, ok := info.Defs[x].(*types.Var); ok {
				return v
			}
			return nil
		case *ast.SelectorExpr:
			if info != nil {
				if v, ok := info.Uses[x.Sel].(*types.Var); ok {
					return v
				}
			}
			return nil
		default:
			return nil
		}
	}
}

// computeDirect walks one node's body (excluding nested closures, which
// are their own nodes) and collects its local facts.
func computeDirect(n *Node) *Summary {
	s := &Summary{node: n, params: unifiedParams(n)}
	body := n.Body()
	if body == nil {
		return s
	}
	info := infoOf(n)
	presized := presizedVars(info, body)

	var stack []ast.Node
	ast.Inspect(body, func(node ast.Node) bool {
		if node == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if _, ok := node.(*ast.FuncLit); ok {
			// Nested closures are separate nodes; their facts arrive
			// through call-graph edges.
			return false
		}
		stack = append(stack, node)
		switch x := node.(type) {
		case *ast.SelectorExpr:
			directSelector(s, info, x)
		case *ast.CallExpr:
			directCall(s, info, x, presized)
			directConcurrency(s, info, x)
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				directWrite(s, info, lhs, x.Tok != token.ASSIGN && x.Tok != token.DEFINE)
			}
		case *ast.IncDecStmt:
			directWrite(s, info, x.X, true)
		case *ast.SendStmt:
			if classifySend(x, stack) != sendSafe {
				if cf, ok := chanFactOf(s, info, x.Chan, x.Arrow); ok {
					addChanFact(&s.Sends, cf)
				}
			}
		case *ast.SelectStmt:
			// A select is joinability evidence even when it only sends:
			// an escape case (or default) is the whole point of selecting.
			s.Joins = true
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				s.Joins = true
				if cf, ok := chanFactOf(s, info, x.X, x.Pos()); ok {
					addChanFact(&s.Recvs, cf)
				}
			}
		case *ast.RangeStmt:
			if info != nil {
				if t, ok := info.Types[x.X]; ok {
					if _, isChan := t.Type.Underlying().(*types.Chan); isChan {
						s.Joins = true
						if cf, ok := chanFactOf(s, info, x.X, x.Pos()); ok {
							addChanFact(&s.Recvs, cf)
						}
					}
				}
			}
		}
		return true
	})
	computeLockFacts(s, info, body)
	return s
}

// pop removes stack bookkeeping when Inspect prunes a subtree. (Inspect
// calls the callback with nil exactly once per true return, so returning
// false on FuncLit needs no pop: the nil call never comes.)
//
// directSelector records wall-clock and raw-rand references.
func directSelector(s *Summary, info *types.Info, sel *ast.SelectorExpr) {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return
	}
	pkg := usedPackage(info, id)
	if pkg == nil {
		return
	}
	if pkg.Path() == "time" && forbiddenClockCalls[sel.Sel.Name] {
		s.ReadsClock = true
	}
	if _, bad := forbiddenRandImports[pkg.Path()]; bad {
		s.RawRand = true
	}
}

// directCall records Clone/append allocation, RNG draws and the mutating
// builtins (copy, append-to-param).
func directCall(s *Summary, info *types.Info, call *ast.CallExpr, presized map[*types.Var]bool) {
	switch fun := unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if fun.Sel.Name == "Clone" && len(call.Args) == 0 {
			s.Allocates = true
		}
		// A method call on an RNG-stream variable is a draw (all Source
		// methods advance or expose stream state).
		if recv, ok := unparen(fun.X).(*ast.Ident); ok && info != nil {
			if v, ok := info.Uses[recv].(*types.Var); ok && isRNGStream(v.Type()) {
				recordDraw(s, v, call.Pos(), drawSync)
			}
		}
	case *ast.Ident:
		switch fun.Name {
		case "append":
			if len(call.Args) == 0 {
				return
			}
			root := rootVarOf(info, call.Args[0])
			if root == nil || !presized[root] {
				s.Allocates = true
			}
			if root != nil {
				recordMutation(s, root, call.Pos(), drawSync)
				if !presized[root] {
					recordGrow(s, info, call.Args[0], call.Pos())
				}
			}
		case "copy":
			if len(call.Args) == 2 {
				if root := rootVarOf(info, call.Args[0]); root != nil {
					recordMutation(s, root, call.Pos(), drawSync)
				}
			}
		}
	}
}

// directWrite records a write target: mutation is caller-visible only
// when the write goes through a reference (pointer, slice, map, interface
// holding a pointer); a plain rebind of a parameter or local is not.
func directWrite(s *Summary, info *types.Info, lhs ast.Expr, compound bool) {
	deref := false
	expr := lhs
climb:
	for {
		switch x := expr.(type) {
		case *ast.ParenExpr:
			expr = x.X
		case *ast.StarExpr:
			deref = true
			expr = x.X
		case *ast.IndexExpr:
			if refType(info, x.X) {
				deref = true
			}
			expr = x.X
		case *ast.SelectorExpr:
			if id, ok := x.X.(*ast.Ident); ok && usedPackage(info, id) != nil {
				if v, ok := info.Uses[x.Sel].(*types.Var); ok && isGlobalVar(v) {
					s.WritesGlobal = true
				}
				return
			}
			if refType(info, x.X) {
				deref = true
			}
			expr = x.X
		case *ast.TypeAssertExpr:
			if refType(info, x) {
				deref = true
			}
			expr = x.X
		case *ast.Ident:
			if x.Name == "_" || info == nil {
				return
			}
			v, ok := info.Uses[x].(*types.Var)
			if !ok {
				if v, ok = info.Defs[x].(*types.Var); !ok {
					return
				}
				return // a fresh definition mutates nothing pre-existing
			}
			_, class := s.classOf(v)
			switch {
			case class == classGlobal:
				s.WritesGlobal = true
			case deref:
				recordMutation(s, v, lhs.Pos(), drawSync)
			case class == classOuter:
				// Rebinding a captured var is visible to the enclosing
				// function (shared variable), though not to its callers;
				// recordMutation classifies that at the next level up.
				addVar(&s.CapturedMutates, v)
			}
			return
		default:
			break climb
		}
	}
	_ = compound
}

// refType reports whether expr's type passes writes through to shared
// storage: pointers, slices and maps.
func refType(info *types.Info, expr ast.Expr) bool {
	if info == nil {
		return false
	}
	tv, ok := info.Types[expr]
	if !ok || tv.Type == nil {
		return false
	}
	switch tv.Type.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map:
		return true
	}
	return false
}

// chanFactOf resolves a channel expression into a fact relative to s.
func chanFactOf(s *Summary, info *types.Info, expr ast.Expr, pos token.Pos) (ChanFact, bool) {
	obj := chanIdentOf(info, expr)
	if obj == nil {
		return ChanFact{}, false
	}
	if v, ok := obj.(*types.Var); ok {
		if i := s.ParamIndex(v); i >= 0 {
			return ChanFact{Param: i, Pos: pos}, true
		}
	}
	return ChanFact{Param: -1, Obj: obj, Pos: pos}, true
}

// unifiedParams lists receiver (when present) then parameters; unnamed
// or blank entries stay nil placeholders to keep indices aligned with
// call-site arguments.
func unifiedParams(n *Node) []*types.Var {
	info := infoOf(n)
	var fields []*ast.Field
	if n.Decl != nil {
		if n.Decl.Recv != nil {
			fields = append(fields, n.Decl.Recv.List...)
		}
		if n.Decl.Type.Params != nil {
			fields = append(fields, n.Decl.Type.Params.List...)
		}
	} else if n.Lit.Type.Params != nil {
		fields = append(fields, n.Lit.Type.Params.List...)
	}
	var out []*types.Var
	for _, f := range fields {
		if len(f.Names) == 0 {
			out = append(out, nil) // unnamed receiver/param
			continue
		}
		for _, name := range f.Names {
			var v *types.Var
			if info != nil && name.Name != "_" {
				v, _ = info.Defs[name].(*types.Var)
			}
			out = append(out, v)
		}
	}
	return out
}

// presizedVars collects vars assigned from make with an explicit
// capacity inside body (excluding nested closures): appends to those
// stay within reserved storage.
func presizedVars(info *types.Info, body *ast.BlockStmt) map[*types.Var]bool {
	out := map[*types.Var]bool{}
	if info == nil {
		return out
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok {
				continue
			}
			fn, ok := call.Fun.(*ast.Ident)
			if !ok || fn.Name != "make" || len(call.Args) < 3 {
				continue
			}
			if i < len(as.Lhs) {
				if v := rootVarOf(info, as.Lhs[i]); v != nil {
					out[v] = true
				}
			}
		}
		return true
	})
	return out
}

// directConcurrency records joinability evidence and WaitGroup facts for
// one call expression: close(ch) and wg.Done join, wg.Add/wg.Wait feed
// the waitgroup rule.
func directConcurrency(s *Summary, info *types.Info, call *ast.CallExpr) {
	if isBuiltinCloseCall(info, call) {
		s.Joins = true
		return
	}
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	switch sel.Sel.Name {
	case "Done", "Add", "Wait":
	default:
		return
	}
	if !isWaitGroupRecv(info, sel) {
		return
	}
	switch sel.Sel.Name {
	case "Done":
		s.Joins = true
	case "Add":
		if cf, ok := refFactOf(s, info, sel.X, call.Pos()); ok {
			addChanFact(&s.WGAdds, cf)
		}
	case "Wait":
		if cf, ok := refFactOf(s, info, sel.X, call.Pos()); ok {
			addChanFact(&s.wgWaits, cf)
		}
	}
}

// recordGrow files an unreserved append as a growth fact when its target
// is visible beyond the body: a parameter, struct field, package-level
// var, or captured outer var. Purely local growth is not a fact.
func recordGrow(s *Summary, info *types.Info, expr ast.Expr, pos token.Pos) {
	obj := refIdentOf(info, expr)
	if obj == nil {
		return
	}
	if v, ok := obj.(*types.Var); ok {
		idx, class := s.classOf(v)
		switch class {
		case classParam:
			addChanFact(&s.Grows, ChanFact{Param: idx, Pos: pos})
			return
		case classLocal:
			if !v.IsField() {
				return
			}
		}
	}
	addChanFact(&s.Grows, ChanFact{Param: -1, Obj: obj, Pos: pos})
}

// refFactOf resolves a by-reference expression into a fact relative to s
// (the &/* unwrapping counterpart of chanFactOf).
func refFactOf(s *Summary, info *types.Info, expr ast.Expr, pos token.Pos) (ChanFact, bool) {
	obj := refIdentOf(info, expr)
	if obj == nil {
		return ChanFact{}, false
	}
	if v, ok := obj.(*types.Var); ok {
		if i := s.ParamIndex(v); i >= 0 {
			return ChanFact{Param: i, Pos: pos}, true
		}
	}
	return ChanFact{Param: -1, Obj: obj, Pos: pos}, true
}

// isSyncType reports whether t (possibly behind a pointer) is the named
// sync.<name> type.
func isSyncType(t types.Type, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == "sync"
}

// isWaitGroupRecv reports whether sel's receiver is a sync.WaitGroup.
// Without type info it falls back to the wg/group naming convention.
func isWaitGroupRecv(info *types.Info, sel *ast.SelectorExpr) bool {
	if info != nil {
		if selection, ok := info.Selections[sel]; ok {
			return isSyncType(selection.Recv(), "WaitGroup")
		}
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && (id.Name == "wg" || id.Name == "group")
}

// isBuiltinCloseCall reports whether call is the builtin close.
func isBuiltinCloseCall(info *types.Info, call *ast.CallExpr) bool {
	id, ok := unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "close" {
		return false
	}
	if info != nil {
		if obj, ok := info.Uses[id]; ok {
			_, builtin := obj.(*types.Builtin)
			return builtin
		}
	}
	return true
}

// lockMethod classifies call as a sync.Mutex/RWMutex acquisition or
// release and returns the lock's identity object. Promoted methods of an
// embedded mutex identify the lock with the embedding value.
func lockMethod(info *types.Info, call *ast.CallExpr) (types.Object, string, bool) {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || len(call.Args) != 0 {
		return nil, "", false
	}
	name := sel.Sel.Name
	switch name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return nil, "", false
	}
	if info != nil {
		if selection, ok := info.Selections[sel]; ok {
			recv := selection.Recv()
			if !isSyncType(recv, "Mutex") && !isSyncType(recv, "RWMutex") {
				// Promoted or interface method: require the method itself
				// to belong to package sync (sync.Locker counts).
				fn, okf := info.Uses[sel.Sel].(*types.Func)
				if !okf || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
					return nil, "", false
				}
			}
			obj := refIdentOf(info, sel.X)
			if obj == nil {
				return nil, "", false
			}
			return obj, name, true
		}
	}
	// Degraded mode: accept the mu/lock naming convention.
	obj := refIdentOf(info, sel.X)
	if obj == nil || !lockishName(obj.Name()) {
		return nil, "", false
	}
	return obj, name, true
}

// lockishName reports whether a variable name follows the mutex naming
// convention — the degraded-mode stand-in for receiver types.
func lockishName(name string) bool {
	lower := strings.ToLower(name)
	return strings.Contains(lower, "mu") || strings.Contains(lower, "lock")
}

// computeLockFacts runs the lexical lock walk over body (excluding nested
// closures): it collects the ordered lock-event trace, the held set at
// every call site, the same-body lock-order edges, and the Acquires
// facts. The scan is lexical — an under-approximation around branches,
// which is the linter's usual optimism: it misses some paths but never
// invents a held lock.
func computeLockFacts(s *Summary, info *types.Info, body *ast.BlockStmt) {
	type callSite struct {
		call *ast.CallExpr
		pos  token.Pos
	}
	var events []lockEvent
	var calls []callSite
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		stack = append(stack, n)
		switch x := n.(type) {
		case *ast.ReturnStmt:
			events = append(events, lockEvent{kind: evReturn, pos: x.Pos()})
		case *ast.CallExpr:
			if id, ok := unparen(x.Fun).(*ast.Ident); ok && id.Name == "panic" {
				events = append(events, lockEvent{kind: evPanic, pos: x.Pos()})
				return true
			}
			obj, name, ok := lockMethod(info, x)
			if !ok {
				calls = append(calls, callSite{call: x, pos: x.Pos()})
				return true
			}
			switch name {
			case "Lock", "RLock":
				events = append(events, lockEvent{
					kind: evAcquire, obj: obj, read: name == "RLock", pos: x.Pos(),
				})
			case "Unlock", "RUnlock":
				kind := evRelease
				if len(stack) >= 2 {
					if _, deferred := stack[len(stack)-2].(*ast.DeferStmt); deferred {
						kind = evDeferRelease
					}
				}
				events = append(events, lockEvent{
					kind: kind, obj: obj, read: name == "RUnlock", pos: x.Pos(),
				})
			}
		}
		return true
	})
	if len(events) == 0 {
		return
	}
	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })
	sort.Slice(calls, func(i, j int) bool { return calls[i].pos < calls[j].pos })

	// Linear scan: maintain the held stack, record order edges, held sets
	// at call sites, and the acquisition facts.
	var held []types.Object
	recordHeld := func(cs callSite) {
		if len(held) == 0 {
			return
		}
		if s.heldAtCall == nil {
			s.heldAtCall = map[*ast.CallExpr][]types.Object{}
		}
		s.heldAtCall[cs.call] = append([]types.Object(nil), held...)
	}
	ci := 0
	for _, ev := range events {
		for ci < len(calls) && calls[ci].pos < ev.pos {
			recordHeld(calls[ci])
			ci++
		}
		switch ev.kind {
		case evAcquire:
			for _, h := range held {
				if len(s.lockEdges) < maxLockEdges {
					s.lockEdges = append(s.lockEdges, lockEdge{from: h, to: ev.obj, pos: ev.pos})
				}
			}
			held = append(held, ev.obj)
			if v, ok := ev.obj.(*types.Var); ok {
				if i := s.ParamIndex(v); i >= 0 {
					addChanFact(&s.Acquires, ChanFact{Param: i, Pos: ev.pos})
					continue
				}
			}
			addChanFact(&s.Acquires, ChanFact{Param: -1, Obj: ev.obj, Pos: ev.pos})
		case evRelease:
			for i := len(held) - 1; i >= 0; i-- {
				if held[i] == ev.obj {
					held = append(held[:i], held[i+1:]...)
					break
				}
			}
			// evDeferRelease keeps the lock held: a deferred unlock covers
			// the rest of the body, so nested acquisitions below it really
			// do happen under the lock.
		}
	}
	for ; ci < len(calls); ci++ {
		recordHeld(calls[ci])
	}
	s.lockEvents = events
}

// infoOf returns the node's package type info (possibly nil on hard
// type-check failure — all walkers tolerate that, per the degraded-mode
// loader contract).
func infoOf(n *Node) *types.Info {
	if n.Pkg == nil {
		return nil
	}
	return n.Pkg.Info
}
