package analysis

// hiddenalloc: generation hot paths must not allocate per birth.
//
// PR 3 rewrote the engines' generation steps around pooled, double-
// buffered populations so a steady-state step performs zero heap
// allocations (the ROADMAP's single-core performance north star: before
// the rewrite, GC pressure — not selection or crossover — dominated a
// step's wall time). That property is protected at runtime by the
// allocation-budget tests (perf_gate_test.go), but a budget test only
// covers the configurations it constructs. This rule is the static half
// of the gate: inside the named hot-path functions it flags the two
// allocation patterns the refactor eliminated —
//
//  1. Clone() calls: cloning an individual or genome per birth is
//     exactly the pattern the pooled CopyFrom/CrossInto machinery
//     replaced. One-time buffer construction (ensureBuffers) is not a
//     hot function and stays free to clone.
//  2. append to a slice that was not created in the same function by
//     make with an explicit capacity: such appends grow geometrically
//     and reallocate across births.
//
// False positives are suppressed the usual way with
// //pgalint:ignore hiddenalloc <justification>.

import (
	"go/ast"
)

// HiddenAllocConfig configures the hiddenalloc analyzer.
type HiddenAllocConfig struct {
	// Hot lists the generation hot-path functions, as package-qualified
	// names ("pga/internal/ga.Step") matching the enclosing function or
	// method name regardless of receiver. Closures inside a hot function
	// are covered too (they report under the enclosing declaration).
	Hot []string
	// Cold lists sanctioned allocating functions a hot path may call:
	// adaptive-copy and setup primitives that allocate only on first use
	// or shape mismatch and are steady-state allocation-free (the runtime
	// AllocsPerRun gates enforce that half). Cold functions neither
	// report nor propagate allocation taint to their callers.
	Cold []string
}

// DefaultHiddenAllocConfig returns the repository's production hot list:
// the per-generation step of every engine plus the in-place operator
// entry points they call.
func DefaultHiddenAllocConfig() HiddenAllocConfig {
	return HiddenAllocConfig{Hot: []string{
		// Sequential engines: one generation / PopSize births.
		"pga/internal/ga.Step",
		"pga/internal/ga.birth",
		// Cellular engine: one sweep / one cell update.
		"pga/internal/cellular.Step",
		"pga/internal/cellular.updateInPlace",
		"pga/internal/cellular.offspringInto",
		// In-place operator layer: called once or twice per birth.
		"pga/internal/operators.CrossInto",
		"pga/internal/operators.SelectScratch",
		"pga/internal/operators.SelectWith",
		"pga/internal/operators.SUSInto",
		// Batched evaluation seam: runs once per generation on the
		// engine goroutine, between births.
		"pga/internal/core.EvaluateAll",
		"pga/internal/core.evaluateBatch",
		"pga/internal/problems.EvaluateBatch",
	}, Cold: []string{
		// One-time pooled-buffer construction, guarded by a nil check.
		"pga/internal/ga.ensureBuffers",
		"pga/internal/cellular.ensureBuffers",
		// Batch-buffer construction: allocates only on first use or
		// population growth (capacity-guarded).
		"pga/internal/core.ensureBatchBuffers",
		// Adaptive copy: clones only on genome-shape mismatch (first use);
		// the steady state reuses existing storage (perf_gate_test.go
		// proves zero allocations per generation).
		"pga/internal/core.CopyGenome",
		"pga/internal/core.CopyFrom",
	}}
}

// HiddenAlloc builds the hiddenalloc analyzer with the default
// configuration.
func HiddenAlloc() *Analyzer { return HiddenAllocWith(DefaultHiddenAllocConfig()) }

// HiddenAllocWith builds the hiddenalloc analyzer with cfg (test hook).
func HiddenAllocWith(cfg HiddenAllocConfig) *Analyzer {
	var cachedFacts *Facts
	var taint map[*Node]bool
	return &Analyzer{
		Name: "hiddenalloc",
		Doc: "forbids per-birth allocation patterns (Clone calls, appends to slices " +
			"without a pre-sized capacity) inside the engines' generation hot paths; " +
			"the pooled double-buffer design keeps a steady-state step at zero heap " +
			"allocations and this rule keeps it that way",
		Run: func(pass *Pass) {
			if pass.Facts != nil && pass.Facts != cachedFacts {
				cachedFacts = pass.Facts
				// Spawn edges are excluded: the allocation budget measures
				// the generation goroutine, and spawning in a hot path is
				// its own (goroleak/perf-gate) problem.
				taint = pass.Facts.Taint(
					func(n *Node) bool { return pass.Facts.Direct(n).Allocates },
					func(n *Node) bool {
						return n.Decl != nil && n.Pkg != nil &&
							allowedFunc(cfg.Cold, n.Pkg.Path, n.Decl.Name.Name)
					},
					map[EdgeKind]bool{EdgeCall: true, EdgeRef: true},
				)
			}
			for _, file := range pass.Files {
				for _, decl := range file.Decls {
					fd, ok := decl.(*ast.FuncDecl)
					if !ok || fd.Body == nil {
						continue
					}
					if !allowedFunc(cfg.Hot, pass.PkgPath, fd.Name.Name) {
						continue
					}
					checkHotFunc(pass, fd)
					if pass.Facts != nil {
						checkHotCallees(pass, fd, taint)
					}
				}
			}
		},
	}
}

// checkHotCallees reports calls from a hot function (closures included)
// into module functions whose call chains allocate per invocation —
// the helper-laundering gap the local pattern scan cannot see.
func checkHotCallees(pass *Pass, fd *ast.FuncDecl, taint map[*Node]bool) {
	for _, n := range pass.Facts.Graph.Nodes {
		if n.Pkg == nil || pass.Pkg == nil || n.Pkg.Types != pass.Pkg {
			continue
		}
		if rd := rootDecl(pass, n); rd != fd {
			continue
		}
		for _, e := range n.Out {
			if !taint[e.Callee] || e.Kind == EdgeSpawn {
				continue
			}
			// Direct x.Clone() sites are already flagged by the local scan.
			if e.Site != nil {
				if sel, ok := unparen(e.Site.Fun).(*ast.SelectorExpr); ok &&
					sel.Sel.Name == "Clone" && len(e.Site.Args) == 0 {
					continue
				}
			}
			pass.Reportf(e.Pos, "hiddenalloc",
				"hot path %s calls %s, whose call chain allocates per invocation "+
					"(Clone or growing append); keep the chain allocation-free, or add "+
					"the callee to HiddenAllocConfig.Cold if it is setup-only",
				fd.Name.Name, e.Callee.Name)
		}
	}
}

// checkHotFunc reports the hidden-allocation patterns inside one hot
// function (closures included).
func checkHotFunc(pass *Pass, fd *ast.FuncDecl) {
	presized := presizedSlices(fd)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := call.Fun.(type) {
		case *ast.SelectorExpr:
			if fun.Sel.Name == "Clone" && len(call.Args) == 0 {
				pass.Reportf(call.Pos(), "hiddenalloc",
					"Clone() allocates per birth inside hot path %s; copy into a pooled "+
						"buffer instead (core.CopyGenome / Individual.CopyFrom / operators.CrossInto)",
					fd.Name.Name)
			}
		case *ast.Ident:
			if fun.Name != "append" || len(call.Args) == 0 {
				return true
			}
			if id, ok := call.Args[0].(*ast.Ident); ok && presized[id.Name] {
				return true
			}
			pass.Reportf(call.Pos(), "hiddenalloc",
				"append may reallocate per birth inside hot path %s; build the slice once "+
					"with make(T, len, cap) in this function, or reuse an engine-owned buffer",
				fd.Name.Name)
		}
		return true
	})
}

// presizedSlices collects the names assigned in fd from make calls with an
// explicit capacity (make(T, len, cap)) — appends to those stay within the
// reserved storage by construction, so they are not hidden allocations.
func presizedSlices(fd *ast.FuncDecl) map[string]bool {
	out := map[string]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok {
				continue
			}
			fn, ok := call.Fun.(*ast.Ident)
			if !ok || fn.Name != "make" || len(call.Args) < 3 {
				continue
			}
			if i < len(as.Lhs) {
				if id, ok := as.Lhs[i].(*ast.Ident); ok {
					out[id.Name] = true
				}
			}
		}
		return true
	})
	return out
}
