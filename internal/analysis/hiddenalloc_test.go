package analysis

import "testing"

func TestHiddenAlloc(t *testing.T) {
	tests := []struct {
		name    string
		fixture string
	}{
		{"flags clones and growing appends in hot paths", "hiddenalloc_bad.go"},
		{"silent on pooled buffers and setup code", "hiddenalloc_ok.go"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			checkRule(t, HiddenAlloc(), tc.fixture)
		})
	}
}

func TestHiddenAllocScopedToHotList(t *testing.T) {
	// The same violating file is silent under an import path whose
	// functions are not on the hot list: the rule gates the generation
	// step, not the whole module.
	pkg := loadFixtureAs(t, "hiddenalloc_bad.go", "pga/internal/stats")
	diags := RunAnalyzers("", []*Package{pkg}, []*Analyzer{HiddenAlloc()})
	if len(diags) != 0 {
		t.Fatalf("non-hot package still reported: %v", diags)
	}
}

func TestHiddenAllocCustomHotList(t *testing.T) {
	// warmPool is clean-by-default only because it is not hot; promoting
	// it via config must surface its clone and append.
	a := HiddenAllocWith(HiddenAllocConfig{Hot: []string{"pga/internal/ga.warmPool"}})
	diags := runFixture(t, a, "hiddenalloc_bad.go")
	if len(diags) != 2 {
		t.Fatalf("custom hot list: want 2 findings in warmPool, got %d: %v", len(diags), diags)
	}
}
