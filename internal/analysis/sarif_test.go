package analysis

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"sort"
	"testing"
)

// TestSARIFGolden locks the -sarif output format over the full fixture
// set, byte-for-byte. Regenerate with `go test -run SARIFGolden -update
// ./internal/analysis`.
func TestSARIFGolden(t *testing.T) {
	names := make([]string, 0, len(fixturePkgPaths))
	for n := range fixturePkgPaths {
		names = append(names, n)
	}
	sort.Strings(names)
	pkgs := make([]*Package, 0, len(names))
	for _, n := range names {
		pkgs = append(pkgs, loadFixture(t, n))
	}
	registry := Registry()
	diags := RunAnalyzers("", pkgs, registry)

	data, err := SARIF(diags, registry)
	if err != nil {
		t.Fatal(err)
	}
	data = append(data, '\n')

	golden := filepath.Join("testdata", "golden.sarif")
	if *update {
		if err := os.WriteFile(golden, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(data, want) {
		t.Errorf("SARIF output drifted from golden.\n-- got --\n%s\n-- want --\n%s", data, want)
	}

	// Shape checks a SARIF consumer relies on: version, one run, a rule
	// entry for every registered analyzer plus the ignore check, and
	// every result referencing a declared rule id.
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID string `json:"ruleId"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(data, &log); err != nil {
		t.Fatalf("SARIF output is not valid JSON: %v", err)
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("version %q runs %d, want 2.1.0 and exactly 1", log.Version, len(log.Runs))
	}
	ids := map[string]bool{}
	for _, r := range log.Runs[0].Tool.Driver.Rules {
		ids[r.ID] = true
	}
	if len(ids) != len(registry)+1 || !ids["ignore"] {
		t.Errorf("rule table has %d ids (want %d incl. ignore)", len(ids), len(registry)+1)
	}
	if len(log.Runs[0].Results) != len(diags) {
		t.Errorf("results %d, want %d", len(log.Runs[0].Results), len(diags))
	}
	for _, r := range log.Runs[0].Results {
		if !ids[r.RuleID] {
			t.Errorf("result references undeclared rule %q", r.RuleID)
		}
	}
}
