package analysis

import "testing"

func TestBlockingSend(t *testing.T) {
	tests := []struct {
		name    string
		fixture string
	}{
		{"flags bare and escapeless sends", "blockingsend_bad.go"},
		{"silent on default and escape selects", "blockingsend_ok.go"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			checkRule(t, BlockingSend(), tc.fixture)
		})
	}
}

func TestBlockingSendScopedToCommunicationPackages(t *testing.T) {
	// Pure-compute packages may use channels freely; the rule exists for
	// the inter-deme communication runtimes.
	pkg := loadFixtureAs(t, "blockingsend_bad.go", "pga/internal/genome")
	diags := RunAnalyzers("", []*Package{pkg}, []*Analyzer{BlockingSend()})
	if len(diags) != 0 {
		t.Fatalf("out-of-scope package still reported: %v", diags)
	}
}
