package analysis

import "testing"

func TestWaitGroup(t *testing.T) {
	for _, fixture := range []string{
		"waitgroup_bad.go",
		"waitgroup_ok.go",
		"waitgroup_x.go",
	} {
		t.Run(fixture, func(t *testing.T) {
			checkRule(t, WaitGroupMisuse(), fixture)
		})
	}
}
