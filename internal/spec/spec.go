// Package spec is the declarative run-specification layer: one
// serialisable RunSpec describes a run of any of the library's runtimes
// — problem, operators, model and model parameters, resilience plan,
// budget, seed — and Build constructs the runtime through the problem
// and operator registries. Every construction site (cmd/pgarun,
// cmd/pgabench, internal/exp, the examples) builds through this package
// instead of hand-wiring its own switch statements, and the same JSON
// document is the job contract a future pgad daemon will accept over
// the wire.
//
// Contracts:
//
//   - Strict parsing: unknown fields, malformed values and invalid
//     combinations are rejected with structured *Error values (field
//     path + reason), never a panic and never an opaque string.
//   - Draw-identity: a spec-built runtime consumes exactly the same RNG
//     draws as the equivalent hand-wired construction. Engine-level
//     zero values pass through to the runtime configs, whose own
//     defaulting (ga.Config.withDefaults etc.) stays the single source
//     of truth; the spec layer adds defaults only where the runtimes
//     have none (canonical per-genome-class operators, model selection,
//     budget). internal/equiv proves this by replaying golden-trace
//     scenarios through Build.
//   - Determinism: the package reads no wall clock and draws no random
//     numbers beyond a throwaway genome probe; reports serialise
//     without timing fields, so a sweep run twice yields byte-identical
//     JSON.
//
// See DESIGN.md §11 for the schema, the defaulting rules and the
// seed-derivation scheme for sweep cells.
package spec

import (
	"bytes"
	"encoding/json"

	"pga/internal/core"
	"pga/internal/genome"
	"pga/internal/problems"
	"pga/internal/rng"
	"pga/internal/sim"
)

// Model strings: the nine spec names covering the eight runtimes (the
// island runtime serves both plain and supervised islands; sequential
// baselines count as one family with two names).
const (
	ModelGenerational = "generational"
	ModelSteadyState  = "steadystate"
	ModelParallel     = "parallel"
	ModelMasterSlave  = "masterslave"
	ModelCellular     = "cellular"
	ModelIslands      = "islands"
	ModelP2P          = "p2p"
	ModelHGA          = "hga"
	ModelSIM          = "sim"
)

// Models lists the valid RunSpec.Model strings in presentation order.
func Models() []string {
	return []string{
		ModelGenerational, ModelSteadyState, ModelParallel, ModelMasterSlave,
		ModelCellular, ModelIslands, ModelP2P, ModelHGA, ModelSIM,
	}
}

// RunSpec is one complete run description. The zero value of every
// optional field selects the documented default; only Model and Problem
// are required. Exactly the model-specific section matching Model may
// be set (Islands for "islands", Farm for "masterslave", and so on) —
// a section for a different model is a validation error, so a spec
// cannot silently carry dead configuration.
type RunSpec struct {
	// Version is the schema version; 0 and 1 both mean version 1.
	Version int `json:"version,omitempty"`
	// Name is an optional label echoed into reports.
	Name string `json:"name,omitempty"`
	// Model selects the runtime; see Models.
	Model string `json:"model"`
	// Problem selects and sizes the benchmark.
	Problem ProblemSpec `json:"problem"`
	// Engine configures the evolution engine — the top-level engine of
	// the panmictic models, the per-deme engine of islands/p2p, the
	// per-deme operators of hga.
	Engine EngineSpec `json:"engine"`
	// Islands configures the island model (model "islands" only).
	Islands *IslandSpec `json:"islands,omitempty"`
	// Farm configures the evaluation farm (model "masterslave" only).
	Farm *FarmSpec `json:"farm,omitempty"`
	// P2P configures the gossip overlay (model "p2p" only).
	P2P *P2PSpec `json:"p2p,omitempty"`
	// HGA configures the hierarchy (model "hga" only).
	HGA *HGASpec `json:"hga,omitempty"`
	// SIM configures the specialized island model (model "sim" only).
	SIM *SIMSpec `json:"sim,omitempty"`
	// Budget sets the stop conditions.
	Budget BudgetSpec `json:"budget"`
	// Seed seeds the whole run; 0 is a valid seed.
	Seed uint64 `json:"seed"`
	// Replicates repeats the run with derived seeds; default 1.
	Replicates int `json:"replicates,omitempty"`
}

// ProblemSpec selects a benchmark problem from the registry
// (internal/problems; for model "sim" the multi-objective vocabulary is
// "zdt1" and "schaffer" instead).
type ProblemSpec struct {
	// Name is the registry key (problems.Keys).
	Name string `json:"name"`
	// Size is the problem size (bits / dimensions / items). Required
	// except for fixed-size problems (foxholes, schaffer).
	Size int `json:"size,omitempty"`
	// Seed overrides the instance seed of seeded problems (nk, ppeaks,
	// qap, ...); nil ties the instance to the run seed.
	Seed *uint64 `json:"seed,omitempty"`
}

// OperatorSpec names an operator from the vocabulary
// (operators.SpecKeys) with optional numeric parameters. The name
// "none" explicitly disables the crossover or mutation slot.
type OperatorSpec struct {
	Name   string             `json:"name"`
	Params map[string]float64 `json:"params,omitempty"`
}

// EngineSpec configures a sequential evolution engine. Zero values pass
// through to ga.Config / cellular.Config, whose defaulting is
// authoritative — except the operators, where the spec layer supplies
// the canonical per-genome-class pair when a slot is omitted (see
// DESIGN §11).
type EngineSpec struct {
	// Type selects the deme engine of islands/p2p runs: "generational"
	// (default), "steadystate" or "cellular". Must be empty for the
	// panmictic models, whose Model string already names the engine.
	Type string `json:"type,omitempty"`
	// Pop is the population size (per deme for islands/p2p/hga);
	// engine default 100.
	Pop int `json:"pop,omitempty"`
	// Selector, Crossover, Mutator name the operators. Omitted slots
	// default to Tournament(2) selection and the canonical
	// crossover/mutator of the problem's genome class; "none" disables
	// a slot.
	Selector  *OperatorSpec `json:"selector,omitempty"`
	Crossover *OperatorSpec `json:"crossover,omitempty"`
	Mutator   *OperatorSpec `json:"mutator,omitempty"`
	// CrossoverRate is the recombination probability; engine default 0.9.
	CrossoverRate float64 `json:"crossover_rate,omitempty"`
	// GenGap is the generational-gap fraction (generational engines
	// only); engine default 1.0.
	GenGap float64 `json:"gen_gap,omitempty"`
	// Elitism is the elite count (generational engines only); engine
	// default 1, -1 disables.
	Elitism int `json:"elitism,omitempty"`
	// Replace is the steady-state replacement policy: "worst" (default)
	// or "random". Steady-state engines only.
	Replace string `json:"replace,omitempty"`
	// Workers is the reproduction worker count of model "parallel";
	// default 4.
	Workers int `json:"workers,omitempty"`
	// Grid shapes a cellular engine; cellular engines only.
	Grid *GridSpec `json:"grid,omitempty"`
}

// GridSpec shapes a cellular engine's toroidal grid.
type GridSpec struct {
	// Rows, Cols give the grid shape; engine default 10×10.
	Rows int `json:"rows,omitempty"`
	Cols int `json:"cols,omitempty"`
	// Update is the cell-update schedule: "sync" (default), "ls",
	// "frs", "nrs" or "uc".
	Update string `json:"update,omitempty"`
	// Neighborhood is the mating neighbourhood: "l5" (default), "c9" or
	// "l9".
	Neighborhood string `json:"neighborhood,omitempty"`
}

// TopologySpec selects an island topology. In JSON it accepts a plain
// string shorthand ("ring") as well as the object form
// ({"kind": "torus", "rows": 2, "cols": 4}).
type TopologySpec struct {
	// Kind is "ring" (default), "biring", "star", "complete",
	// "hypercube", "isolated", "grid", "torus" or "random".
	Kind string `json:"kind,omitempty"`
	// Rows, Cols shape the "grid" and "torus" kinds (their product must
	// equal the deme count).
	Rows int `json:"rows,omitempty"`
	Cols int `json:"cols,omitempty"`
	// Degree is the "random" kind's regular degree; default 3.
	Degree int `json:"degree,omitempty"`
	// Seed seeds the "random" kind's wiring; 0 ties it to the run seed.
	Seed uint64 `json:"seed,omitempty"`
}

// UnmarshalJSON accepts both the string shorthand and the object form.
func (t *TopologySpec) UnmarshalJSON(data []byte) error {
	if len(data) > 0 && data[0] == '"' {
		var s string
		if err := json.Unmarshal(data, &s); err != nil {
			return err
		}
		*t = TopologySpec{Kind: s}
		return nil
	}
	type plain TopologySpec // drop the method to avoid recursion
	var p plain
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&p); err != nil {
		return err
	}
	*t = TopologySpec(p)
	return nil
}

// MigrationSpec configures island migration. Zero values pass through
// to migration.Policy.WithDefaults (count 1, best→worst, buffer 4).
type MigrationSpec struct {
	// Interval is the generations between exchanges; 0 disables
	// migration (isolated demes).
	Interval int `json:"interval,omitempty"`
	// Count is the migrants per link per exchange; policy default 1.
	Count int `json:"count,omitempty"`
	// Select picks emigrants: "best" (default), "random" or
	// "tournament".
	Select string `json:"select,omitempty"`
	// Replace integrates immigrants: "worst" (default),
	// "worst-if-better" or "random".
	Replace string `json:"replace,omitempty"`
	// Async selects buffered asynchronous exchange in parallel mode;
	// the default is synchronous (deterministic).
	Async bool `json:"async,omitempty"`
	// Buffer is the async channel capacity per link; policy default 4.
	Buffer int `json:"buffer,omitempty"`
}

// FaultSpec scripts one deterministic fault of a supervised island run.
type FaultSpec struct {
	// Kind is "panic" or "hang".
	Kind string `json:"kind"`
	// Deme and Gen are the injection coordinates.
	Deme int `json:"deme"`
	Gen  int `json:"gen"`
	// Times repeats a panic on consecutive attempts; default 1.
	Times int `json:"times,omitempty"`
	// HangMS is the hang duration in milliseconds ("hang" only);
	// default 50.
	HangMS int `json:"hang_ms,omitempty"`
}

// IslandSpec configures the island model.
type IslandSpec struct {
	// Demes is the island count; default 8.
	Demes int `json:"demes,omitempty"`
	// Topology is the inter-deme graph; default ring.
	Topology TopologySpec `json:"topology"`
	// Migration is the migration policy.
	Migration MigrationSpec `json:"migration"`
	// Mode is "sequential" (default: lockstep, fully deterministic) or
	// "parallel" (goroutine per deme).
	Mode string `json:"mode,omitempty"`
	// RewireEvery rewires a dynamic ("random") topology every N
	// migration epochs; 0 never rewires.
	RewireEvery int `json:"rewire_every,omitempty"`
	// Resilience enables deme supervision in parallel mode: "" or
	// "none" (unsupervised), "default" (checkpoint every 5, 3
	// restarts), "eager" (checkpoint every generation, 5 restarts).
	Resilience string `json:"resilience,omitempty"`
	// Faults injects deterministic failures into a supervised run.
	Faults []FaultSpec `json:"faults,omitempty"`
}

// FarmSpec configures the master–slave evaluation farm.
type FarmSpec struct {
	// Workers is the slave count; default 4.
	Workers int `json:"workers,omitempty"`
}

// P2PSpec configures the gossip overlay. Zero values pass through to
// p2p.Config (16 peers, view 4, gossip every 5, rejoin 0.5, floor 2).
type P2PSpec struct {
	Peers       int     `json:"peers,omitempty"`
	ViewSize    int     `json:"view,omitempty"`
	GossipEvery int     `json:"gossip_every,omitempty"`
	Churn       float64 `json:"churn,omitempty"`
	Rejoin      float64 `json:"rejoin,omitempty"`
	MinPeers    int     `json:"min_peers,omitempty"`
}

// HGASpec configures the hierarchical multi-fidelity model. Zero values
// pass through to hga.Config (layers {1,2,4}, interval 5).
type HGASpec struct {
	// Layers[l] is the deme count of layer l (layer 0 is the precise
	// top layer).
	Layers []int `json:"layers,omitempty"`
	// Levels maps layer → fidelity level; default min(layer, levels-1).
	Levels []int `json:"levels,omitempty"`
	// Interval is the generations between promotions.
	Interval int `json:"interval,omitempty"`
}

// SIMSpec configures the specialized island model. Zero values pass
// through to sim.Config (deme size 40, interval 5, archive 100).
type SIMSpec struct {
	// Scenario is the configuration number, 1–7; default 1.
	Scenario int `json:"scenario,omitempty"`
	// DemeSize is the population per island.
	DemeSize int `json:"deme_size,omitempty"`
	// Interval is the migration interval.
	Interval int `json:"interval,omitempty"`
	// ArchiveCap bounds the Pareto archive.
	ArchiveCap int `json:"archive_cap,omitempty"`
	// HVRef is the hypervolume reference point [f1, f2].
	HVRef []float64 `json:"hv_ref,omitempty"`
}

// BudgetSpec sets the stop conditions. With everything zero the run
// stops after the model's default generation budget (300; 60 for sim).
// Multiple set conditions compose as any-of.
type BudgetSpec struct {
	// Generations caps the generation count.
	Generations int `json:"generations,omitempty"`
	// Evaluations caps the fitness-evaluation count.
	Evaluations int64 `json:"evaluations,omitempty"`
	// Target stops at a fitness threshold (direction-aware).
	Target *float64 `json:"target,omitempty"`
	// TargetOptimum stops at the problem's known optimum.
	TargetOptimum bool `json:"target_optimum,omitempty"`
	// Stagnation stops after N non-improving generations.
	Stagnation int `json:"stagnation,omitempty"`
	// Cost is the evaluation-cost budget of model "hga" (precise-
	// evaluation units); default 2000.
	Cost float64 `json:"cost,omitempty"`
}

// Parse strictly decodes one RunSpec document and validates it. Unknown
// fields, type mismatches and semantic violations all come back as a
// structured *Error; Parse never panics on any input.
func Parse(data []byte) (*RunSpec, error) {
	var s RunSpec
	if err := strictUnmarshal(data, &s); err != nil {
		return nil, err
	}
	if verr := s.Validate(); verr != nil {
		return nil, verr
	}
	return &s, nil
}

// strictUnmarshal decodes JSON rejecting unknown fields, converting
// decoder errors into structured form.
func strictUnmarshal(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return asError(decodeError(err))
	}
	// Trailing garbage after the document is a malformed config too.
	if dec.More() {
		return errf("(document)", "trailing data after JSON document")
	}
	return nil
}

// decodeError converts an encoding/json error into a located *Error.
func decodeError(err error) *Error {
	if ute, ok := err.(*json.UnmarshalTypeError); ok {
		path := ute.Field
		if path == "" {
			path = "(document)"
		}
		return errf(path, "cannot decode %s into %s", ute.Value, ute.Type)
	}
	return errf("(document)", "%v", err)
}

// JSON serialises the spec in its canonical indented form.
func (s *RunSpec) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// genomeClassOf probes the problem's genome representation. The probe
// stream is throwaway: runtimes build their populations from their own
// seeded streams.
func genomeClassOf(p core.Problem) string {
	switch p.NewGenome(rng.New(0)).(type) {
	case *genome.BitString:
		return "bits"
	case *genome.RealVector:
		return "real"
	case *genome.IntVector:
		return "int"
	case *genome.Permutation:
		return "perm"
	}
	return ""
}

// fixedSizeProblems ignore ProblemSpec.Size.
var fixedSizeProblems = map[string]bool{"foxholes": true, "schaffer": true}

// simProblems is the multi-objective vocabulary of model "sim".
var simProblems = map[string]func(size int) sim.MultiObjective{
	"zdt1":     func(size int) sim.MultiObjective { return sim.ZDT1{Dim: size} },
	"schaffer": func(int) sim.MultiObjective { return sim.Schaffer{} },
}

// Instance materialises the problem the spec names, using defaultSeed
// for seed-parameterised instances unless the spec pins its own seed.
// Callers that only need to inspect the problem (its name, direction or
// known optimum) can use it without building a whole runtime.
func (p ProblemSpec) Instance(defaultSeed uint64) (core.Problem, *Error) {
	ps, err := problems.Lookup(p.Name)
	if err != nil {
		return nil, errf("problem.name", "unknown problem %q (known: %v)", p.Name, problems.Keys())
	}
	if p.Size < 1 && !fixedSizeProblems[p.Name] {
		return nil, errf("problem.size", "must be at least 1 for %q", p.Name)
	}
	if p.Size < 0 {
		return nil, errf("problem.size", "must not be negative")
	}
	seed := defaultSeed
	if p.Seed != nil {
		seed = *p.Seed
	}
	return ps.Make(p.Size, seed), nil
}

// problemInstance materialises the problem (single-objective models).
// The instance seed defaults to the run seed.
func (s *RunSpec) problemInstance() (core.Problem, *Error) {
	return s.Problem.Instance(s.Seed)
}

// simProblemInstance materialises the multi-objective problem of model
// "sim".
func (s *RunSpec) simProblemInstance() (sim.MultiObjective, *Error) {
	mk, ok := simProblems[s.Problem.Name]
	if !ok {
		return nil, errf("problem.name", "model %q needs a multi-objective problem: zdt1 or schaffer", ModelSIM)
	}
	if s.Problem.Size < 1 && !fixedSizeProblems[s.Problem.Name] {
		return nil, errf("problem.size", "must be at least 1 for %q", s.Problem.Name)
	}
	return mk(s.Problem.Size), nil
}
