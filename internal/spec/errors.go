package spec

import (
	"fmt"
	"strings"
)

// FieldError locates one validation failure. Path is the dotted JSON
// path of the offending field ("islands.migration.interval"); Reason is
// a human-readable explanation. Both serialise, so a daemon accepting
// specs over the wire (the pgad north-star) can return them verbatim.
type FieldError struct {
	Path   string `json:"path"`
	Reason string `json:"reason"`
}

// Error implements error.
func (e FieldError) Error() string { return e.Path + ": " + e.Reason }

// Error is the structured validation error of the spec layer: every
// problem found in one pass, each located by field path. Parse, Validate
// and Build never return unstructured fmt.Errorf strings — a malformed
// spec always yields an *Error (and never a panic; FuzzParse enforces
// this).
type Error struct {
	Fields []FieldError `json:"fields"`
}

// Error implements error.
func (e *Error) Error() string {
	switch len(e.Fields) {
	case 0:
		return "spec: invalid"
	case 1:
		return "spec: " + e.Fields[0].Error()
	}
	var b strings.Builder
	fmt.Fprintf(&b, "spec: %d errors:", len(e.Fields))
	for _, f := range e.Fields {
		b.WriteString("\n  " + f.Error())
	}
	return b.String()
}

// add appends one located failure.
func (e *Error) add(path, format string, args ...any) {
	e.Fields = append(e.Fields, FieldError{Path: path, Reason: fmt.Sprintf(format, args...)})
}

// or returns e when it holds failures and nil otherwise — the standard
// tail of a validation pass. Callers converting to the error interface
// must go through asError to avoid a non-nil interface around a nil
// pointer.
func (e *Error) or() *Error {
	if len(e.Fields) == 0 {
		return nil
	}
	return e
}

// asError converts a possibly-nil *Error to a clean error value.
func asError(e *Error) error {
	if e == nil {
		return nil
	}
	return e
}

// errf builds a single-field Error.
func errf(path, format string, args ...any) *Error {
	return &Error{Fields: []FieldError{{Path: path, Reason: fmt.Sprintf(format, args...)}}}
}
