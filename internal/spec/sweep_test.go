package spec

import (
	"encoding/json"
	"testing"
)

const sweepDocJSON = `{
  "name": "pop-by-interval",
  "base": {
    "model": "islands",
    "problem": {"name": "onemax", "size": 16},
    "engine": {"pop": 8},
    "islands": {"demes": 3, "migration": {"interval": 2}},
    "budget": {"generations": 3},
    "seed": 11
  },
  "sweep": {
    "engine.pop": [8, 12],
    "islands.migration.interval": [1, 2, 4]
  },
  "replicates": 2
}`

func TestParseFileSingle(t *testing.T) {
	f, err := ParseFile([]byte(`{"model":"generational","problem":{"name":"onemax","size":8},"seed":1}`))
	if err != nil {
		t.Fatal(err)
	}
	if f.Single == nil || f.Sweep != nil {
		t.Fatalf("single-run document misclassified: %+v", f)
	}
}

func TestParseFileSweep(t *testing.T) {
	f, err := ParseFile([]byte(sweepDocJSON))
	if err != nil {
		t.Fatal(err)
	}
	if f.Sweep == nil || f.Single != nil {
		t.Fatalf("sweep document misclassified: %+v", f)
	}
	if f.Name != "pop-by-interval" {
		t.Errorf("name = %q", f.Name)
	}
	// Axes sort lexically by path.
	if len(f.Sweep.Axes) != 2 || f.Sweep.Axes[0].Path != "engine.pop" || f.Sweep.Axes[1].Path != "islands.migration.interval" {
		t.Fatalf("axes: %+v", f.Sweep.Axes)
	}

	cells, cerr := f.Sweep.Cells()
	if cerr != nil {
		t.Fatal(cerr)
	}
	if len(cells) != 2*3*2 { // 2 pops × 3 intervals × 2 replicates
		t.Fatalf("got %d cells, want 12", len(cells))
	}
	// Row-major, last axis fastest: cell 0 = (pop 8, interval 1),
	// cell 1 = (pop 8, interval 2), ..., cell 3 = (pop 12, interval 1).
	if got := cells[0].Spec; got.Engine.Pop != 8 || got.Islands.Migration.Interval != 1 {
		t.Errorf("cell 0: pop=%d interval=%d", got.Engine.Pop, got.Islands.Migration.Interval)
	}
	if got := cells[2*2].Spec; got.Engine.Pop != 8 || got.Islands.Migration.Interval != 4 {
		t.Errorf("cell 2: pop=%d interval=%d", got.Engine.Pop, got.Islands.Migration.Interval)
	}
	if got := cells[3*2].Spec; got.Engine.Pop != 12 || got.Islands.Migration.Interval != 1 {
		t.Errorf("cell 3: pop=%d interval=%d", got.Engine.Pop, got.Islands.Migration.Interval)
	}

	// Seeds: cell 0 rep 0 keeps the base seed; all others derive and are
	// pairwise distinct.
	if cells[0].Spec.Seed != 11 {
		t.Errorf("cell 0 rep 0 seed = %d, want base 11", cells[0].Spec.Seed)
	}
	seen := map[uint64]bool{}
	for _, c := range cells {
		if seen[c.Spec.Seed] {
			t.Errorf("duplicate derived seed %d", c.Spec.Seed)
		}
		seen[c.Spec.Seed] = true
	}
	// Untouched base fields carry into every cell.
	for _, c := range cells {
		if c.Spec.Islands.Demes != 3 || c.Spec.Budget.Generations != 3 {
			t.Errorf("cell %d lost base fields: %+v", c.Index, c.Spec)
		}
	}
}

func TestDeriveSeed(t *testing.T) {
	if DeriveSeed(42, 0, 0) != 42 {
		t.Error("cell 0 replicate 0 must keep the base seed")
	}
	if DeriveSeed(42, 1, 0) == 42 || DeriveSeed(42, 0, 1) == 42 {
		t.Error("derived seeds must differ from the base")
	}
	if DeriveSeed(42, 1, 0) == DeriveSeed(42, 0, 1) {
		t.Error("cell and replicate must mix differently")
	}
	if DeriveSeed(42, 1, 0) != DeriveSeed(42, 1, 0) {
		t.Error("derivation must be deterministic")
	}
}

// TestSeedAxis checks sweeping the "seed" path pins each cell's seed to
// the swept value (replicates still derive from it).
func TestSeedAxis(t *testing.T) {
	doc := `{
	  "base": {"model":"generational","problem":{"name":"onemax","size":8},"engine":{"pop":6},"budget":{"generations":2},"seed":1},
	  "sweep": {"seed": [100, 200]},
	  "replicates": 2
	}`
	f, err := ParseFile([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	cells, cerr := f.Sweep.Cells()
	if cerr != nil {
		t.Fatal(cerr)
	}
	if len(cells) != 4 {
		t.Fatalf("got %d cells", len(cells))
	}
	if cells[0].Spec.Seed != 100 || cells[2].Spec.Seed != 200 {
		t.Errorf("replicate 0 seeds: %d, %d; want the swept values", cells[0].Spec.Seed, cells[2].Spec.Seed)
	}
	if cells[1].Spec.Seed != DeriveSeed(100, 0, 1) || cells[3].Spec.Seed != DeriveSeed(200, 0, 1) {
		t.Errorf("replicate 1 seeds must derive from the swept value")
	}
}

func TestRangeAxis(t *testing.T) {
	doc := `{
	  "base": {"model":"generational","problem":{"name":"onemax","size":8},"engine":{"pop":6},"budget":{"generations":2},"seed":1},
	  "sweep": {"engine.pop": {"from": 4, "to": 10, "step": 2}}
	}`
	f, err := ParseFile([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	var pops []int
	cells, _ := f.Sweep.Cells()
	for _, c := range cells {
		pops = append(pops, c.Spec.Engine.Pop)
	}
	want := []int{4, 6, 8, 10}
	if len(pops) != len(want) {
		t.Fatalf("pops %v, want %v", pops, want)
	}
	for i := range want {
		if pops[i] != want[i] {
			t.Fatalf("pops %v, want %v", pops, want)
		}
	}
}

func TestSweepErrors(t *testing.T) {
	cases := []struct {
		name string
		doc  string
		path string
	}{
		{"bad base", `{"base":{"model":"x","problem":{"name":"onemax","size":8}},"sweep":{"seed":[1]}}`, "base.model"},
		{"unknown sweep path", `{"base":{"model":"generational","problem":{"name":"onemax","size":8}},"sweep":{"engine.popsize":[4]}}`, "sweep(cell 0).(document)"},
		{"invalid cell", `{"base":{"model":"generational","problem":{"name":"onemax","size":8}},"sweep":{"engine.pop":[4,1]}}`, "sweep(cell 1).engine.pop"},
		{"empty axis", `{"base":{"model":"generational","problem":{"name":"onemax","size":8}},"sweep":{"engine.pop":[]}}`, "sweep.engine.pop"},
		{"bad range step", `{"base":{"model":"generational","problem":{"name":"onemax","size":8}},"sweep":{"engine.pop":{"from":2,"to":8,"step":0}}}`, "sweep.engine.pop.step"},
		{"negative replicates", `{"base":{"model":"generational","problem":{"name":"onemax","size":8}},"sweep":{"seed":[1]},"replicates":-1}`, "replicates"},
		{"unknown sweep key", `{"base":{"model":"generational","problem":{"name":"onemax","size":8}},"sweep":{"seed":[1]},"bogus":true}`, "(document)"},
		{"path through scalar", `{"base":{"model":"generational","problem":{"name":"onemax","size":8},"seed":3},"sweep":{"seed.low":[1]}}`, "sweep.seed.low"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseFile([]byte(tc.doc))
			if err == nil {
				t.Fatalf("ParseFile accepted %s", tc.doc)
			}
			if !hasPath(fieldPaths(t, err), tc.path) {
				t.Errorf("error paths %v do not mention %q", fieldPaths(t, err), tc.path)
			}
		})
	}
}

// TestSweepRunDeterminism runs a small two-axis sweep twice and requires
// byte-identical marshalled reports — the property the results file
// depends on.
func TestSweepRunDeterminism(t *testing.T) {
	doc := `{
	  "base": {"model":"generational","problem":{"name":"onemax","size":12},"engine":{"pop":6},"budget":{"generations":2},"seed":5},
	  "sweep": {"engine.pop": [6, 8]},
	  "replicates": 2
	}`
	runOnce := func() string {
		f, err := ParseFile([]byte(doc))
		if err != nil {
			t.Fatal(err)
		}
		reports, rerr := f.Sweep.Run(RunOpts{})
		if rerr != nil {
			t.Fatal(rerr)
		}
		if len(reports) != 4 {
			t.Fatalf("got %d reports", len(reports))
		}
		out, merr := json.Marshal(reports)
		if merr != nil {
			t.Fatal(merr)
		}
		return string(out)
	}
	if first, second := runOnce(), runOnce(); first != second {
		t.Errorf("sweep is not run-twice deterministic:\n%s\n%s", first, second)
	}
}

// TestSweepCellMetadata checks reports carry their cell coordinates and
// overrides.
func TestSweepCellMetadata(t *testing.T) {
	doc := `{
	  "base": {"model":"generational","problem":{"name":"onemax","size":8},"engine":{"pop":6},"budget":{"generations":1},"seed":5},
	  "sweep": {"engine.pop": [6, 8]}
	}`
	f, err := ParseFile([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	reports, rerr := f.Sweep.Run(RunOpts{})
	if rerr != nil {
		t.Fatal(rerr)
	}
	if reports[1].Cell != 1 || reports[1].Replicate != 0 {
		t.Errorf("report 1 coordinates: cell=%d rep=%d", reports[1].Cell, reports[1].Replicate)
	}
	if v, ok := reports[1].Overrides["engine.pop"]; !ok {
		t.Errorf("report 1 overrides missing the axis: %v", reports[1].Overrides)
	} else if n, ok := v.(json.Number); !ok || n.String() != "8" {
		t.Errorf("override value = %#v, want json.Number 8", v)
	}
}
