package spec

import (
	"encoding/json"
	"strings"
	"testing"
)

// mustParse parses or fails the test.
func mustParse(t *testing.T, doc string) *RunSpec {
	t.Helper()
	s, err := Parse([]byte(doc))
	if err != nil {
		t.Fatalf("Parse(%s): %v", doc, err)
	}
	return s
}

// fieldPaths extracts the sorted field paths of a structured error.
func fieldPaths(t *testing.T, err error) []string {
	t.Helper()
	se, ok := err.(*Error)
	if !ok {
		t.Fatalf("error is %T, want *spec.Error: %v", err, err)
	}
	if len(se.Fields) == 0 {
		t.Fatalf("structured error with no fields")
	}
	paths := make([]string, len(se.Fields))
	for i, f := range se.Fields {
		if f.Reason == "" {
			t.Errorf("field %q has empty reason", f.Path)
		}
		paths[i] = f.Path
	}
	return paths
}

// hasPath reports whether any reported field path starts with want.
func hasPath(paths []string, want string) bool {
	for _, p := range paths {
		if p == want || strings.HasPrefix(p, want+".") {
			return true
		}
	}
	return false
}

func TestParseMinimal(t *testing.T) {
	s := mustParse(t, `{"model":"generational","problem":{"name":"onemax","size":32},"seed":7}`)
	if s.Model != ModelGenerational || s.Problem.Name != "onemax" || s.Problem.Size != 32 || s.Seed != 7 {
		t.Fatalf("unexpected spec: %+v", s)
	}
}

func TestParseStructuredErrors(t *testing.T) {
	cases := []struct {
		name string
		doc  string
		path string // a field path the error must mention
	}{
		{"not json", `{`, "(document)"},
		{"trailing data", `{"model":"generational","problem":{"name":"onemax","size":8}} garbage`, "(document)"},
		{"unknown top-level field", `{"model":"generational","problem":{"name":"onemax","size":8},"bogus":1}`, "(document)"},
		{"type mismatch", `{"model":"generational","problem":{"name":"onemax","size":"eight"}}`, "problem.size"},
		{"unknown model", `{"model":"quantum","problem":{"name":"onemax","size":8}}`, "model"},
		{"unknown problem", `{"model":"generational","problem":{"name":"unobtanium","size":8}}`, "problem.name"},
		{"missing size", `{"model":"generational","problem":{"name":"onemax"}}`, "problem.size"},
		{"bad version", `{"version":9,"model":"generational","problem":{"name":"onemax","size":8}}`, "version"},
		{"negative replicates", `{"model":"generational","problem":{"name":"onemax","size":8},"replicates":-1}`, "replicates"},
		{"pop too small", `{"model":"generational","problem":{"name":"onemax","size":8},"engine":{"pop":1}}`, "engine.pop"},
		{"crossover rate range", `{"model":"generational","problem":{"name":"onemax","size":8},"engine":{"crossover_rate":1.5}}`, "engine.crossover_rate"},
		{"gen gap range", `{"model":"generational","problem":{"name":"onemax","size":8},"engine":{"gen_gap":-0.1}}`, "engine.gen_gap"},
		{"elitism vs pop", `{"model":"generational","problem":{"name":"onemax","size":8},"engine":{"pop":10,"elitism":10}}`, "engine.elitism"},
		{"unknown operator", `{"model":"generational","problem":{"name":"onemax","size":8},"engine":{"crossover":{"name":"mystery"}}}`, "engine.crossover.name"},
		{"operator wrong kind", `{"model":"generational","problem":{"name":"onemax","size":8},"engine":{"crossover":{"name":"tournament"}}}`, "engine.crossover.name"},
		{"operator wrong genome class", `{"model":"generational","problem":{"name":"sphere","size":4},"engine":{"mutator":{"name":"bitflip"}}}`, "engine.mutator.name"},
		{"undocumented param", `{"model":"generational","problem":{"name":"onemax","size":8},"engine":{"crossover":{"name":"uniform","params":{"sigma":0.5}}}}`, "engine.crossover.params.sigma"},
		{"selector cannot be none", `{"model":"generational","problem":{"name":"onemax","size":8},"engine":{"selector":{"name":"none"}}}`, "engine.selector.name"},
		{"deme type on panmictic model", `{"model":"generational","problem":{"name":"onemax","size":8},"engine":{"type":"steadystate"}}`, "engine.type"},
		{"replace on generational", `{"model":"generational","problem":{"name":"onemax","size":8},"engine":{"replace":"worst"}}`, "engine.replace"},
		{"workers outside parallel", `{"model":"generational","problem":{"name":"onemax","size":8},"engine":{"workers":4}}`, "engine.workers"},
		{"grid outside cellular", `{"model":"generational","problem":{"name":"onemax","size":8},"engine":{"grid":{"rows":4,"cols":4}}}`, "engine.grid"},
		{"cellular pop", `{"model":"cellular","problem":{"name":"onemax","size":8},"engine":{"pop":50}}`, "engine.pop"},
		{"cellular selector", `{"model":"cellular","problem":{"name":"onemax","size":8},"engine":{"selector":{"name":"tournament"}}}`, "engine.selector"},
		{"bad grid update", `{"model":"cellular","problem":{"name":"onemax","size":8},"engine":{"grid":{"update":"chaos"}}}`, "engine.grid.update"},
		{"section model mismatch", `{"model":"generational","problem":{"name":"onemax","size":8},"islands":{"demes":4}}`, "islands"},
		{"sim engine section", `{"model":"sim","problem":{"name":"zdt1","size":6},"engine":{"pop":20}}`, "engine"},
		{"sim problem vocabulary", `{"model":"sim","problem":{"name":"onemax","size":8}}`, "problem.name"},
		{"hga needs real benchmark", `{"model":"hga","problem":{"name":"onemax","size":8}}`, "problem.name"},
		{"hga generation budget", `{"model":"hga","problem":{"name":"sphere","size":4},"budget":{"generations":50}}`, "budget"},
		{"cost outside hga", `{"model":"generational","problem":{"name":"onemax","size":8},"budget":{"cost":100}}`, "budget.cost"},
		{"p2p budget", `{"model":"p2p","problem":{"name":"onemax","size":8},"budget":{"stagnation":5}}`, "budget"},
		{"target optimum unknown", `{"model":"generational","problem":{"name":"nk","size":10},"budget":{"target_optimum":true}}`, "budget.target_optimum"},
		{"bad topology kind", `{"model":"islands","problem":{"name":"onemax","size":8},"islands":{"topology":"moebius"}}`, "islands.topology.kind"},
		{"shape on ring", `{"model":"islands","problem":{"name":"onemax","size":8},"islands":{"topology":{"kind":"ring","rows":2}}}`, "islands.topology"},
		{"torus shape mismatch", `{"model":"islands","problem":{"name":"onemax","size":8},"islands":{"demes":6,"topology":{"kind":"torus","rows":2,"cols":4}}}`, "islands.topology"},
		{"hypercube demes", `{"model":"islands","problem":{"name":"onemax","size":8},"islands":{"demes":6,"topology":"hypercube"}}`, "islands.topology.kind"},
		{"random degree", `{"model":"islands","problem":{"name":"onemax","size":8},"islands":{"demes":4,"topology":{"kind":"random","degree":4}}}`, "islands.topology.degree"},
		{"rewire on static topology", `{"model":"islands","problem":{"name":"onemax","size":8},"islands":{"rewire_every":3}}`, "islands.rewire_every"},
		{"resilience needs parallel", `{"model":"islands","problem":{"name":"onemax","size":8},"islands":{"resilience":"default"}}`, "islands.resilience"},
		{"faults need resilience", `{"model":"islands","problem":{"name":"onemax","size":8},"islands":{"mode":"parallel","faults":[{"kind":"panic","deme":0,"gen":2}]}}`, "islands.faults"},
		{"fault deme range", `{"model":"islands","problem":{"name":"onemax","size":8},"islands":{"demes":4,"mode":"parallel","resilience":"default","faults":[{"kind":"panic","deme":7,"gen":2}]}}`, "islands.faults[0].deme"},
		{"hang with times", `{"model":"islands","problem":{"name":"onemax","size":8},"islands":{"mode":"parallel","resilience":"default","faults":[{"kind":"hang","deme":0,"gen":2,"times":2}]}}`, "islands.faults[0].times"},
		{"p2p single peer", `{"model":"p2p","problem":{"name":"onemax","size":8},"p2p":{"peers":1}}`, "p2p.peers"},
		{"p2p churn range", `{"model":"p2p","problem":{"name":"onemax","size":8},"p2p":{"churn":1.5}}`, "p2p.churn"},
		{"hga layer size", `{"model":"hga","problem":{"name":"sphere","size":4},"hga":{"layers":[1,0]}}`, "hga.layers[1]"},
		{"hga level count", `{"model":"hga","problem":{"name":"sphere","size":4},"hga":{"layers":[1,2],"levels":[0]}}`, "hga.levels"},
		{"sim scenario range", `{"model":"sim","problem":{"name":"zdt1","size":6},"sim":{"scenario":9}}`, "sim.scenario"},
		{"sim hv_ref shape", `{"model":"sim","problem":{"name":"zdt1","size":6},"sim":{"hv_ref":[1.0]}}`, "sim.hv_ref"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse([]byte(tc.doc))
			if err == nil {
				t.Fatalf("Parse accepted %s", tc.doc)
			}
			paths := fieldPaths(t, err)
			if !hasPath(paths, tc.path) {
				t.Errorf("error paths %v do not mention %q", paths, tc.path)
			}
		})
	}
}

// TestValidateCollectsAll checks that Validate reports every violation
// in one pass rather than stopping at the first.
func TestValidateCollectsAll(t *testing.T) {
	doc := `{"model":"generational","problem":{"name":"onemax","size":8},` +
		`"engine":{"pop":1,"crossover_rate":2,"gen_gap":-1},"replicates":-2}`
	_, err := Parse([]byte(doc))
	if err == nil {
		t.Fatal("Parse accepted invalid spec")
	}
	paths := fieldPaths(t, err)
	for _, want := range []string{"engine.pop", "engine.crossover_rate", "engine.gen_gap", "replicates"} {
		if !hasPath(paths, want) {
			t.Errorf("error paths %v missing %q", paths, want)
		}
	}
}

func TestErrorFormatting(t *testing.T) {
	one := &Error{Fields: []FieldError{{Path: "engine.pop", Reason: "too small"}}}
	if got := one.Error(); got != "spec: engine.pop: too small" {
		t.Errorf("single-field Error() = %q", got)
	}
	two := &Error{Fields: []FieldError{
		{Path: "a", Reason: "x"},
		{Path: "b", Reason: "y"},
	}}
	msg := two.Error()
	if !strings.Contains(msg, "a: x") || !strings.Contains(msg, "b: y") {
		t.Errorf("multi-field Error() = %q", msg)
	}
}

// TestJSONRoundTrip serialises representative specs and re-parses them,
// requiring a fixed point: Parse(JSON(s)) == s and the second JSON is
// byte-identical (canonical form).
func TestJSONRoundTrip(t *testing.T) {
	docs := []string{
		`{"model":"generational","problem":{"name":"onemax","size":64},"engine":{"pop":40,"selector":{"name":"tournament","params":{"k":3}},"crossover":{"name":"onepoint"},"mutator":{"name":"bitflip","params":{"p":0.02}},"crossover_rate":0.8,"gen_gap":0.5,"elitism":2},"budget":{"generations":50,"target_optimum":true},"seed":11}`,
		`{"model":"steadystate","problem":{"name":"knapsack","size":32,"seed":5},"engine":{"replace":"random"},"budget":{"evaluations":10000},"seed":3}`,
		`{"model":"cellular","problem":{"name":"onemax","size":32},"engine":{"grid":{"rows":6,"cols":6,"update":"ls","neighborhood":"c9"}},"seed":9}`,
		`{"model":"islands","problem":{"name":"sphere","size":6},"islands":{"demes":4,"topology":{"kind":"torus","rows":2,"cols":2},"migration":{"interval":5,"count":2,"select":"tournament","replace":"worst-if-better"}},"budget":{"generations":20},"seed":41}`,
		`{"model":"islands","problem":{"name":"onemax","size":24},"islands":{"demes":4,"mode":"parallel","resilience":"eager","faults":[{"kind":"panic","deme":1,"gen":3,"times":2}]},"budget":{"generations":10},"seed":5}`,
		`{"model":"p2p","problem":{"name":"onemax","size":16},"p2p":{"peers":8,"view":3,"gossip_every":4,"churn":0.1},"budget":{"generations":15},"seed":2}`,
		`{"model":"hga","problem":{"name":"rastrigin","size":4},"hga":{"layers":[1,2,4],"interval":5},"budget":{"cost":500},"seed":6}`,
		`{"model":"sim","problem":{"name":"zdt1","size":6},"sim":{"scenario":3,"deme_size":20,"hv_ref":[1.1,1.1]},"budget":{"generations":12},"seed":8}`,
	}
	for _, doc := range docs {
		s := mustParse(t, doc)
		out1, err := s.JSON()
		if err != nil {
			t.Fatalf("JSON(): %v", err)
		}
		s2, perr := Parse(out1)
		if perr != nil {
			t.Fatalf("re-Parse of canonical form failed: %v\n%s", perr, out1)
		}
		out2, err := s2.JSON()
		if err != nil {
			t.Fatalf("JSON() second pass: %v", err)
		}
		if string(out1) != string(out2) {
			t.Errorf("canonical JSON is not a fixed point:\nfirst:  %s\nsecond: %s", out1, out2)
		}
	}
}

// TestTopologyShorthand checks both JSON forms of TopologySpec.
func TestTopologyShorthand(t *testing.T) {
	s := mustParse(t, `{"model":"islands","problem":{"name":"onemax","size":8},"islands":{"topology":"biring"}}`)
	if s.Islands.Topology.Kind != "biring" {
		t.Errorf("string shorthand: kind = %q", s.Islands.Topology.Kind)
	}
	s = mustParse(t, `{"model":"islands","problem":{"name":"onemax","size":8},"islands":{"demes":6,"topology":{"kind":"grid","rows":2,"cols":3}}}`)
	tp := s.Islands.Topology
	if tp.Kind != "grid" || tp.Rows != 2 || tp.Cols != 3 {
		t.Errorf("object form: %+v", tp)
	}
	if _, err := Parse([]byte(`{"model":"islands","problem":{"name":"onemax","size":8},"islands":{"topology":{"kind":"ring","sides":5}}}`)); err == nil {
		t.Error("unknown topology field accepted")
	}
}

// TestProblemSeedOverride checks the instance-seed default and override.
func TestProblemSeedOverride(t *testing.T) {
	base := mustParse(t, `{"model":"generational","problem":{"name":"nk","size":12},"seed":7}`)
	over := mustParse(t, `{"model":"generational","problem":{"name":"nk","size":12,"seed":99},"seed":7}`)
	if base.Problem.Seed != nil {
		t.Error("unset problem seed should stay nil")
	}
	if over.Problem.Seed == nil || *over.Problem.Seed != 99 {
		t.Errorf("problem seed override lost: %+v", over.Problem)
	}
	// Round-trip keeps the distinction (omitempty on a *uint64).
	b, _ := base.JSON()
	if strings.Contains(string(b), `"seed": 0,`) && strings.Contains(string(b), `"problem"`) {
		s2 := mustParse(t, string(b))
		if s2.Problem.Seed != nil {
			t.Error("round-trip invented a problem seed")
		}
	}
	var raw map[string]json.RawMessage
	ob, _ := over.JSON()
	if err := json.Unmarshal(ob, &raw); err != nil {
		t.Fatal(err)
	}
}
