package spec

import (
	"pga/internal/core"
	"pga/internal/ga"
	"pga/internal/island"
	"pga/internal/sim"
)

// RunOpts tunes Built.Run.
type RunOpts struct {
	// OnStep fires after every generation of the engine models (live
	// progress displays). Island/p2p/hga/sim runs ignore it.
	OnStep func(core.Status)
	// Trace records the per-generation trace into the report.
	Trace bool
}

// Report is the deterministic run summary: everything a sweep result
// file carries per cell. It deliberately has no timing fields — wall
// clock is the one quantity that breaks run-twice byte-identity, so
// callers that want timings measure around Run themselves.
type Report struct {
	// Name, Model, Problem, Seed echo the spec.
	Name    string `json:"name,omitempty"`
	Model   string `json:"model"`
	Problem string `json:"problem"`
	Seed    uint64 `json:"seed"`
	// Cell and Replicate locate a sweep cell; Overrides is the cell's
	// axis assignment (single runs leave all three zero).
	Cell      int            `json:"cell,omitempty"`
	Replicate int            `json:"replicate,omitempty"`
	Overrides map[string]any `json:"overrides,omitempty"`

	// Core accounting (core.RunStats minus Elapsed).
	Best         float64           `json:"best"`
	Generations  int               `json:"generations"`
	Evaluations  int64             `json:"evaluations"`
	Solved       bool              `json:"solved,omitempty"`
	SolvedAtEval int64             `json:"solved_at_eval,omitempty"`
	SolvedAtGen  int               `json:"solved_at_gen,omitempty"`
	StopReason   string            `json:"stop,omitempty"`
	CacheHits    int64             `json:"cache_hits,omitempty"`
	CacheMisses  int64             `json:"cache_misses,omitempty"`
	Trace        []core.TracePoint `json:"trace,omitempty"`

	// Model extensions.
	Migrations  int64   `json:"migrations,omitempty"`   // islands
	Restarts    int64   `json:"restarts,omitempty"`     // supervised islands
	DeadDemes   []int   `json:"dead_demes,omitempty"`   // supervised islands
	Departures  int     `json:"departures,omitempty"`   // p2p
	Joins       int     `json:"joins,omitempty"`        // p2p
	AliveAtEnd  int     `json:"alive_at_end,omitempty"` // p2p
	Cost        float64 `json:"cost,omitempty"`         // hga
	CostAtSolve float64 `json:"cost_at_solve,omitempty"`
	Hypervolume float64 `json:"hypervolume,omitempty"` // sim
	ParetoSize  int     `json:"pareto_size,omitempty"` // sim
	Islands     int     `json:"islands,omitempty"`     // sim
}

// Run drives the built runtime to completion and renders the report.
// Sequential-mode and sync-parallel runs are deterministic: the same
// spec yields a byte-identical report JSON on every run.
func (b *Built) Run(opts RunOpts) *Report {
	rep := &Report{
		Name:    b.Spec.Name,
		Model:   b.Spec.Model,
		Problem: b.Spec.Problem.Name,
		Seed:    b.Spec.Seed,
	}
	switch {
	case b.Engine != nil:
		res := ga.Run(b.Engine, ga.RunOptions{Stop: b.Stop, Trace: opts.Trace, OnStep: opts.OnStep})
		rep.fill(&res.RunStats, opts.Trace)
		rep.CacheHits, rep.CacheMisses = res.CacheHits, res.CacheMisses
	case b.Islands != nil:
		var res *island.Result
		if b.islandMode == "parallel" {
			res = b.Islands.RunParallel(b.maxGens, opts.Trace)
		} else {
			res = b.Islands.RunSequential(b.Stop, opts.Trace)
		}
		rep.fill(&res.RunStats, opts.Trace)
		rep.Migrations = res.Migrations
		rep.Restarts = res.Restarts
		rep.DeadDemes = res.DeadDemes
	case b.P2P != nil:
		res := b.P2P.Run(b.maxGens)
		rep.fill(&res.RunStats, opts.Trace)
		rep.Departures, rep.Joins, rep.AliveAtEnd = res.Departures, res.Joins, res.AliveAtEnd
	case b.HGA != nil:
		res := b.HGA.Run(b.costBudget)
		rep.fill(&res.RunStats, opts.Trace)
		rep.Cost, rep.CostAtSolve = res.Cost, res.CostAtSolve
	case b.SIMConfig != nil:
		res := sim.Run(*b.SIMConfig)
		rep.fill(&res.RunStats, opts.Trace)
		rep.Hypervolume = res.Hypervolume
		rep.ParetoSize = res.Archive.Len()
		rep.Islands = res.Islands
	}
	return rep
}

// fill copies the shared accounting, excluding Elapsed.
func (r *Report) fill(st *core.RunStats, trace bool) {
	r.Best = st.BestFitness
	r.Generations = st.Generations
	r.Evaluations = st.Evaluations
	r.Solved = st.Solved
	r.SolvedAtEval = st.SolvedAtEval
	r.SolvedAtGen = st.SolvedAtGen
	r.StopReason = st.StopReason
	if trace {
		r.Trace = st.Trace
	}
}
