package spec

import (
	"encoding/json"
	"testing"

	"pga/internal/operators"
	"pga/internal/problems"
)

// smokeSpecs is one small runnable spec per model string.
var smokeSpecs = map[string]string{
	ModelGenerational: `{"model":"generational","problem":{"name":"onemax","size":16},"engine":{"pop":10},"budget":{"generations":4},"seed":1}`,
	ModelSteadyState:  `{"model":"steadystate","problem":{"name":"onemax","size":16},"engine":{"pop":10,"replace":"random"},"budget":{"generations":4},"seed":2}`,
	ModelParallel:     `{"model":"parallel","problem":{"name":"onemax","size":16},"engine":{"pop":10,"workers":2},"budget":{"generations":4},"seed":3}`,
	ModelMasterSlave:  `{"model":"masterslave","problem":{"name":"onemax","size":16},"engine":{"pop":10},"farm":{"workers":2},"budget":{"generations":4},"seed":4}`,
	ModelCellular:     `{"model":"cellular","problem":{"name":"onemax","size":16},"engine":{"grid":{"rows":3,"cols":3}},"budget":{"generations":4},"seed":5}`,
	ModelIslands:      `{"model":"islands","problem":{"name":"onemax","size":16},"engine":{"pop":8},"islands":{"demes":3,"migration":{"interval":2}},"budget":{"generations":4},"seed":6}`,
	ModelP2P:          `{"model":"p2p","problem":{"name":"onemax","size":16},"engine":{"pop":6},"p2p":{"peers":4,"view":2},"budget":{"generations":4},"seed":7}`,
	ModelHGA:          `{"model":"hga","problem":{"name":"sphere","size":4},"engine":{"pop":10},"hga":{"layers":[1,2]},"budget":{"cost":200},"seed":8}`,
	ModelSIM:          `{"model":"sim","problem":{"name":"zdt1","size":5},"sim":{"deme_size":10},"budget":{"generations":3},"seed":9}`,
}

// TestBuildAllModels builds and runs every model from a spec and checks
// the report carries the shared accounting plus the model's extension
// fields, and that running the same spec twice gives byte-identical
// report JSON.
func TestBuildAllModels(t *testing.T) {
	for _, model := range Models() {
		t.Run(model, func(t *testing.T) {
			doc := smokeSpecs[model]
			runOnce := func() []byte {
				s := mustParse(t, doc)
				b, err := Build(*s)
				if err != nil {
					t.Fatalf("Build: %v", err)
				}
				rep := b.Run(RunOpts{})
				if rep.Model != model {
					t.Errorf("report model %q, want %q", rep.Model, model)
				}
				if rep.Evaluations <= 0 {
					t.Errorf("report has no evaluations: %+v", rep)
				}
				out, merr := json.Marshal(rep)
				if merr != nil {
					t.Fatalf("marshal report: %v", merr)
				}
				return out
			}
			// Parallel-mode runtimes are exempt from byte-identity; every
			// smoke spec here runs a deterministic mode.
			first, second := runOnce(), runOnce()
			if string(first) != string(second) {
				t.Errorf("same spec, different reports:\n%s\n%s", first, second)
			}
		})
	}
}

// TestBuiltHandles checks Build sets exactly the handle its model needs.
func TestBuiltHandles(t *testing.T) {
	for _, model := range Models() {
		s := mustParse(t, smokeSpecs[model])
		b, err := Build(*s)
		if err != nil {
			t.Fatalf("%s: %v", model, err)
		}
		engine := b.Engine != nil
		switch model {
		case ModelGenerational, ModelSteadyState, ModelParallel, ModelCellular:
			if !engine || b.Islands != nil || b.P2P != nil || b.HGA != nil || b.SIMConfig != nil {
				t.Errorf("%s: wrong handles: %+v", model, b)
			}
		case ModelMasterSlave:
			if !engine || b.Farm == nil {
				t.Errorf("%s: engine=%v farm=%v", model, engine, b.Farm != nil)
			}
		case ModelIslands:
			if engine || b.Islands == nil {
				t.Errorf("%s: engine=%v islands=%v", model, engine, b.Islands != nil)
			}
		case ModelP2P:
			if engine || b.P2P == nil {
				t.Errorf("%s: engine=%v p2p=%v", model, engine, b.P2P != nil)
			}
		case ModelHGA:
			if engine || b.HGA == nil {
				t.Errorf("%s: engine=%v hga=%v", model, engine, b.HGA != nil)
			}
		case ModelSIM:
			if engine || b.SIMConfig == nil {
				t.Errorf("%s: engine=%v sim=%v", model, engine, b.SIMConfig != nil)
			}
		}
	}
}

// TestRegistryCompletenessProblems exercises every model × every
// registered problem key: each combination either builds or is rejected
// with a structured error — never a panic, never an opaque failure.
func TestRegistryCompletenessProblems(t *testing.T) {
	// Problems that only make sense at fixed or constrained sizes still
	// must build at some size; use a size that fits all of them.
	sizeFor := func(key string) int {
		if fixedSizeProblems[key] {
			return 0
		}
		return 12
	}
	keys := append([]string{}, problems.Keys()...)
	simKeys := []string{"zdt1", "schaffer"}
	for _, model := range Models() {
		for _, key := range append(keys, simKeys...) {
			t.Run(model+"/"+key, func(t *testing.T) {
				s := RunSpec{
					Model:   model,
					Problem: ProblemSpec{Name: key, Size: sizeFor(key)},
					Seed:    1,
				}
				// Give each model its minimal section so a rejection is
				// about the problem, not a missing knob.
				switch model {
				case ModelHGA:
					s.Budget = BudgetSpec{Cost: 50}
				default:
					s.Budget = BudgetSpec{Generations: 1}
				}
				switch model {
				case ModelCellular:
					s.Engine = EngineSpec{Grid: &GridSpec{Rows: 2, Cols: 2}}
				case ModelSIM:
					// engine must stay zero
				default:
					if model != ModelCellular {
						s.Engine = EngineSpec{Pop: 4}
					}
				}
				b, err := Build(s)
				if err != nil {
					se, ok := err.(*Error)
					if !ok || len(se.Fields) == 0 {
						t.Fatalf("rejection is not structured: %T %v", err, err)
					}
					// The rejection must be about the problem choice.
					if !hasPath(fieldPaths(t, err), "problem.name") && !hasPath(fieldPaths(t, err), "problem.size") {
						t.Errorf("unexpected rejection for %s/%s: %v", model, key, err)
					}
					return
				}
				if b == nil {
					t.Fatal("nil Built without error")
				}
				// Accepted combinations must agree with the vocabulary:
				// sim accepts only the multi-objective names, hga only the
				// real-valued benchmarks, everything else only registry keys.
				switch model {
				case ModelSIM:
					if _, ok := simProblems[key]; !ok {
						t.Errorf("sim accepted non-sim problem %q", key)
					}
				default:
					if _, lerr := problems.Lookup(key); lerr != nil {
						t.Errorf("%s accepted unregistered problem %q", model, key)
					}
					if model == ModelHGA && !isRealBenchmark(b.Problem) {
						t.Errorf("hga accepted non-real problem %q", key)
					}
				}
			})
		}
	}
}

// TestRegistryCompletenessOperators exercises every operator key in
// every slot of its kind against one problem per genome class: build or
// structured rejection, driven purely by the declared vocabulary.
func TestRegistryCompletenessOperators(t *testing.T) {
	// No registered problem uses an int-vector genome, so the classes
	// under test are the three the registry can reach.
	classProblems := map[string]ProblemSpec{
		"bits": {Name: "onemax", Size: 12},
		"real": {Name: "sphere", Size: 4},
		"perm": {Name: "qap", Size: 6},
	}
	slotFor := map[string]func(op *OperatorSpec) EngineSpec{
		operators.KindSelector:  func(op *OperatorSpec) EngineSpec { return EngineSpec{Pop: 4, Selector: op} },
		operators.KindCrossover: func(op *OperatorSpec) EngineSpec { return EngineSpec{Pop: 4, Crossover: op} },
		operators.KindMutator:   func(op *OperatorSpec) EngineSpec { return EngineSpec{Pop: 4, Mutator: op} },
	}
	for _, kind := range []string{operators.KindSelector, operators.KindCrossover, operators.KindMutator} {
		for _, key := range operators.SpecKeys(kind) {
			entry, ok := operators.LookupSpec(key)
			if !ok {
				t.Fatalf("SpecKeys lists %q but LookupSpec misses it", key)
			}
			for class, ps := range classProblems {
				t.Run(kind+"/"+key+"/"+class, func(t *testing.T) {
					s := RunSpec{
						Model:   ModelGenerational,
						Problem: ps,
						Engine:  slotFor[kind](&OperatorSpec{Name: key}),
						Budget:  BudgetSpec{Generations: 1},
						Seed:    1,
					}
					_, err := Build(s)
					compatible := len(entry.Genomes) == 0 || contains(entry.Genomes, class)
					if compatible && err != nil {
						t.Errorf("compatible operator rejected: %v", err)
					}
					if !compatible {
						if err == nil {
							t.Errorf("operator %q accepted for class %q outside its vocabulary %v", key, class, entry.Genomes)
						} else if _, ok := err.(*Error); !ok {
							t.Errorf("rejection is not structured: %T", err)
						}
					}
				})
			}
		}
	}
}

// TestStopReasonParity checks the single-condition unwrap: a budget with
// only a generation cap must stop with MaxGenerations' own reason, not
// an any-of wrapper's.
func TestStopReasonParity(t *testing.T) {
	s := mustParse(t, `{"model":"generational","problem":{"name":"onemax","size":8},"engine":{"pop":6},"budget":{"generations":3},"seed":1}`)
	b, err := Build(*s)
	if err != nil {
		t.Fatal(err)
	}
	rep := b.Run(RunOpts{})
	if rep.Generations != 3 {
		t.Errorf("ran %d generations, want 3", rep.Generations)
	}
	if rep.StopReason == "" {
		t.Error("no stop reason recorded")
	}
}

// TestBuildRejectsInvalid checks Build re-validates rather than
// trusting its caller (hand-constructed RunSpec values).
func TestBuildRejectsInvalid(t *testing.T) {
	_, err := Build(RunSpec{Model: "nope", Problem: ProblemSpec{Name: "onemax", Size: 8}})
	if err == nil {
		t.Fatal("Build accepted unknown model")
	}
	if _, ok := err.(*Error); !ok {
		t.Fatalf("Build error is %T, want *spec.Error", err)
	}
}
