package spec

import (
	"sort"

	"pga/internal/operators"
)

// engineContext names where an EngineSpec is being validated, which
// decides the set of meaningful fields.
type engineContext int

const (
	ctxGenerational engineContext = iota
	ctxSteadyState
	ctxParallel
	ctxCellular
	ctxHGA
)

// Validate checks the spec semantically and returns every violation at
// once as a structured *Error, or nil. It never panics: the point of
// the layer is that ga.Config.validate's panics (and friends) are
// unreachable from a validated spec.
func (s *RunSpec) Validate() *Error {
	e := &Error{}

	if s.Version < 0 || s.Version > 1 {
		e.add("version", "unsupported schema version %d (this library speaks version 1)", s.Version)
	}
	if s.Replicates < 0 {
		e.add("replicates", "must not be negative")
	}
	if !validModel(s.Model) {
		e.add("model", "unknown model %q (known: %v)", s.Model, Models())
		return e // everything below depends on the model
	}

	// Exactly the matching model section may be present.
	s.validateSections(e)

	// Problem + genome class.
	class := ""
	if s.Model == ModelSIM {
		if _, perr := s.simProblemInstance(); perr != nil {
			e.Fields = append(e.Fields, perr.Fields...)
		}
	} else {
		prob, perr := s.problemInstance()
		if perr != nil {
			e.Fields = append(e.Fields, perr.Fields...)
		} else {
			class = genomeClassOf(prob)
			if s.Model == ModelHGA && !isRealBenchmark(prob) {
				e.add("problem.name", "model %q needs a real-valued benchmark (sphere, rastrigin, ...)", ModelHGA)
			}
		}
	}

	s.validateEngine(e, class)
	s.validateBudget(e)

	switch s.Model {
	case ModelIslands:
		if s.Islands != nil {
			s.Islands.validate(e)
		}
	case ModelP2P:
		if s.P2P != nil {
			s.P2P.validate(e)
		}
	case ModelHGA:
		if s.HGA != nil {
			s.HGA.validate(e)
		}
	case ModelSIM:
		if s.SIM != nil {
			s.SIM.validate(e)
		}
	}

	return e.or()
}

func validModel(m string) bool {
	for _, k := range Models() {
		if m == k {
			return true
		}
	}
	return false
}

// validateSections rejects model sections that do not match the model.
func (s *RunSpec) validateSections(e *Error) {
	type section struct {
		name  string
		set   bool
		model string
	}
	for _, sec := range []section{
		{"islands", s.Islands != nil, ModelIslands},
		{"farm", s.Farm != nil, ModelMasterSlave},
		{"p2p", s.P2P != nil, ModelP2P},
		{"hga", s.HGA != nil, ModelHGA},
		{"sim", s.SIM != nil, ModelSIM},
	} {
		if sec.set && s.Model != sec.model {
			e.add(sec.name, "section is only valid for model %q (spec has model %q)", sec.model, s.Model)
		}
	}
	if s.Farm != nil && s.Farm.Workers < 0 {
		e.add("farm.workers", "must not be negative")
	}
}

// engineContextFor resolves which engine family the Engine section
// configures under the given model (and deme type for islands/p2p).
func (s *RunSpec) engineContextFor(e *Error) (engineContext, bool) {
	demeType := s.Engine.Type
	switch s.Model {
	case ModelIslands, ModelP2P:
		switch demeType {
		case "", "generational":
			return ctxGenerational, true
		case "steadystate":
			return ctxSteadyState, true
		case "cellular":
			return ctxCellular, true
		default:
			e.add("engine.type", "unknown deme engine %q (generational | steadystate | cellular)", demeType)
			return 0, false
		}
	case ModelSIM:
		if s.Engine != (EngineSpec{}) {
			e.add("engine", "model %q runs fixed internal sub-EAs; configure sim.* instead", ModelSIM)
		}
		return 0, false
	}
	if demeType != "" {
		e.add("engine.type", "only islands/p2p specs pick a deme engine; model %q implies the engine", s.Model)
	}
	switch s.Model {
	case ModelSteadyState:
		return ctxSteadyState, true
	case ModelCellular:
		return ctxCellular, true
	case ModelParallel:
		return ctxParallel, true
	case ModelHGA:
		return ctxHGA, true
	default: // generational, masterslave
		return ctxGenerational, true
	}
}

// validateEngine checks the Engine section against the model's engine
// family and the problem's genome class.
func (s *RunSpec) validateEngine(e *Error, class string) {
	ctx, ok := s.engineContextFor(e)
	if !ok {
		return
	}
	es := s.Engine

	// Field applicability.
	if ctx != ctxGenerational && ctx != ctxParallel {
		if es.GenGap != 0 {
			e.add("engine.gen_gap", "only generational engines take a generation gap")
		}
		if es.Elitism != 0 {
			e.add("engine.elitism", "only generational engines take elitism")
		}
	}
	if ctx != ctxSteadyState && es.Replace != "" {
		e.add("engine.replace", "only steady-state engines take a replacement policy")
	}
	if ctx != ctxParallel && es.Workers != 0 {
		e.add("engine.workers", "only model %q takes reproduction workers", ModelParallel)
	}
	if ctx != ctxCellular && es.Grid != nil {
		e.add("engine.grid", "only cellular engines take a grid")
	}
	if ctx == ctxCellular {
		if es.Pop != 0 {
			e.add("engine.pop", "cellular engines size their population as grid rows*cols; set engine.grid")
		}
		if es.Selector != nil {
			e.add("engine.selector", "cellular engines mate within the neighbourhood; no selector")
		}
		if es.Grid != nil {
			es.Grid.validate(e)
		}
	}
	if ctx == ctxHGA && es.CrossoverRate != 0 {
		e.add("engine.crossover_rate", "hga demes use the engine default rate")
	}

	// Numeric ranges (mirroring what ga.Config.validate would panic on).
	if es.Pop != 0 && es.Pop < 2 {
		e.add("engine.pop", "population must hold at least 2 individuals")
	}
	if es.CrossoverRate < 0 || es.CrossoverRate > 1 {
		e.add("engine.crossover_rate", "must be in [0,1]")
	}
	if es.GenGap < 0 || es.GenGap > 1 {
		e.add("engine.gen_gap", "must be in [0,1]")
	}
	effPop := es.Pop
	if effPop == 0 {
		effPop = 100 // the engine default, for the elitism bound only
	}
	if es.Elitism < -1 {
		e.add("engine.elitism", "must be -1 (disabled) or a non-negative elite count")
	} else if es.Elitism >= effPop {
		e.add("engine.elitism", "elite count %d must be below the population size %d", es.Elitism, effPop)
	}
	switch es.Replace {
	case "", "worst", "random":
	default:
		e.add("engine.replace", "unknown policy %q (worst | random)", es.Replace)
	}
	if es.Workers < 0 {
		e.add("engine.workers", "must not be negative")
	}

	// Operators.
	validateOperator(e, "engine.selector", es.Selector, operators.KindSelector, class, false)
	validateOperator(e, "engine.crossover", es.Crossover, operators.KindCrossover, class, true)
	validateOperator(e, "engine.mutator", es.Mutator, operators.KindMutator, class, true)
}

// validateOperator checks one operator slot: known key, right kind,
// documented params, compatible genome class. "none" is accepted for
// the optional slots (crossover, mutator).
func validateOperator(e *Error, path string, op *OperatorSpec, kind, class string, noneOK bool) {
	if op == nil {
		return
	}
	if op.Name == "none" {
		if !noneOK {
			e.add(path+".name", "%q cannot be disabled", kind)
		}
		if len(op.Params) > 0 {
			e.add(path+".params", `"none" takes no parameters`)
		}
		return
	}
	entry, ok := operators.LookupSpec(op.Name)
	if !ok {
		e.add(path+".name", "unknown operator %q (known %ss: %v)", op.Name, kind, operators.SpecKeys(kind))
		return
	}
	if entry.Kind != kind {
		e.add(path+".name", "%q is a %s, not a %s", op.Name, entry.Kind, kind)
		return
	}
	names := make([]string, 0, len(op.Params))
	for name := range op.Params {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if !entry.Accepts(name) {
			e.add(path+".params."+name, "operator %q does not take parameter %q", op.Name, name)
		}
	}
	if class != "" && len(entry.Genomes) > 0 && !contains(entry.Genomes, class) {
		e.add(path+".name", "operator %q works on %v genomes; the problem uses %q", op.Name, entry.Genomes, class)
	}
}

func contains(s []string, v string) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// validate checks a GridSpec.
func (g *GridSpec) validate(e *Error) {
	if g.Rows < 0 || g.Cols < 0 {
		e.add("engine.grid", "rows and cols must not be negative")
	}
	rows, cols := g.Rows, g.Cols
	if rows == 0 {
		rows = 10
	}
	if cols == 0 {
		cols = 10
	}
	if rows*cols < 2 {
		e.add("engine.grid", "grid must hold at least 2 cells")
	}
	switch g.Update {
	case "", "sync", "ls", "frs", "nrs", "uc":
	default:
		e.add("engine.grid.update", "unknown update policy %q (sync | ls | frs | nrs | uc)", g.Update)
	}
	switch g.Neighborhood {
	case "", "l5", "c9", "l9":
	default:
		e.add("engine.grid.neighborhood", "unknown neighbourhood %q (l5 | c9 | l9)", g.Neighborhood)
	}
}

// validate checks the island section.
func (is *IslandSpec) validate(e *Error) {
	if is.Demes < 0 {
		e.add("islands.demes", "must not be negative")
	}
	demes := is.Demes
	if demes == 0 {
		demes = 8
	}
	is.Topology.validate(e, demes)
	is.Migration.validate(e)
	switch is.Mode {
	case "", "sequential", "parallel":
	default:
		e.add("islands.mode", "unknown mode %q (sequential | parallel)", is.Mode)
	}
	if is.RewireEvery < 0 {
		e.add("islands.rewire_every", "must not be negative")
	}
	if is.RewireEvery > 0 && is.Topology.Kind != "random" {
		e.add("islands.rewire_every", "only the %q topology is dynamic", "random")
	}
	switch is.Resilience {
	case "", "none", "default", "eager":
	default:
		e.add("islands.resilience", "unknown preset %q (none | default | eager)", is.Resilience)
	}
	supervised := is.Resilience != "" && is.Resilience != "none"
	if supervised && is.Mode != "parallel" {
		e.add("islands.resilience", "supervision runs in parallel mode; set islands.mode to %q", "parallel")
	}
	for i, f := range is.Faults {
		f.validate(e, i, demes)
	}
	if len(is.Faults) > 0 && !supervised {
		e.add("islands.faults", "fault injection needs a resilience preset (default | eager)")
	}
}

// validate checks one fault coordinate.
func (f FaultSpec) validate(e *Error, i, demes int) {
	path := func(leaf string) string {
		return "islands.faults[" + itoa(i) + "]." + leaf
	}
	switch f.Kind {
	case "panic":
		if f.HangMS != 0 {
			e.add(path("hang_ms"), "only hang faults take a duration")
		}
	case "hang":
		if f.Times != 0 {
			e.add(path("times"), "only panic faults repeat")
		}
	default:
		e.add(path("kind"), "unknown fault kind %q (panic | hang)", f.Kind)
	}
	if f.Deme < 0 || f.Deme >= demes {
		e.add(path("deme"), "deme %d out of range [0,%d)", f.Deme, demes)
	}
	if f.Gen < 1 {
		e.add(path("gen"), "generation must be at least 1")
	}
	if f.Times < 0 {
		e.add(path("times"), "must not be negative")
	}
	if f.HangMS < 0 {
		e.add(path("hang_ms"), "must not be negative")
	}
}

// itoa is a tiny strconv.Itoa for error paths (avoids fmt in the hot
// validation loop for no reason other than symmetry; clarity wins).
func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [20]byte
	pos := len(buf)
	neg := i < 0
	if neg {
		i = -i
	}
	for i > 0 {
		pos--
		buf[pos] = byte('0' + i%10)
		i /= 10
	}
	if neg {
		pos--
		buf[pos] = '-'
	}
	return string(buf[pos:])
}

// validate checks a topology selection for a deme count.
func (t *TopologySpec) validate(e *Error, demes int) {
	switch t.Kind {
	case "", "ring", "biring", "star", "complete", "isolated":
		t.rejectShape(e)
	case "hypercube":
		t.rejectShape(e)
		if demes&(demes-1) != 0 {
			e.add("islands.topology.kind", "hypercube needs a power-of-two deme count (got %d)", demes)
		}
	case "grid", "torus":
		if t.Degree != 0 || t.Seed != 0 {
			e.add("islands.topology", "%q takes rows/cols, not degree/seed", t.Kind)
		}
		rows, cols := t.Rows, t.Cols
		if rows < 1 || cols < 1 {
			e.add("islands.topology", "%q needs explicit rows and cols", t.Kind)
		} else if rows*cols != demes {
			e.add("islands.topology", "rows*cols = %d must equal the deme count %d", rows*cols, demes)
		}
	case "random":
		if t.Rows != 0 || t.Cols != 0 {
			e.add("islands.topology", "%q takes degree/seed, not rows/cols", t.Kind)
		}
		deg := t.Degree
		if deg == 0 {
			deg = 3
		}
		if deg < 1 || deg >= demes {
			e.add("islands.topology.degree", "degree %d out of range [1,%d)", deg, demes)
		} else if deg*demes%2 != 0 {
			e.add("islands.topology.degree", "degree %d with %d demes has no regular graph (odd handshake sum)", deg, demes)
		}
	default:
		e.add("islands.topology.kind", "unknown topology %q (ring | biring | star | complete | hypercube | isolated | grid | torus | random)", t.Kind)
	}
}

// rejectShape flags shape parameters on shapeless topology kinds.
func (t *TopologySpec) rejectShape(e *Error) {
	if t.Rows != 0 || t.Cols != 0 || t.Degree != 0 || t.Seed != 0 {
		kind := t.Kind
		if kind == "" {
			kind = "ring"
		}
		e.add("islands.topology", "%q takes no shape parameters", kind)
	}
}

// validate checks the migration policy.
func (m *MigrationSpec) validate(e *Error) {
	if m.Interval < 0 {
		e.add("islands.migration.interval", "must not be negative")
	}
	if m.Count < 0 {
		e.add("islands.migration.count", "must not be negative")
	}
	if m.Buffer < 0 {
		e.add("islands.migration.buffer", "must not be negative")
	}
	switch m.Select {
	case "", "best", "random", "tournament":
	default:
		e.add("islands.migration.select", "unknown policy %q (best | random | tournament)", m.Select)
	}
	switch m.Replace {
	case "", "worst", "worst-if-better", "random":
	default:
		e.add("islands.migration.replace", "unknown policy %q (worst | worst-if-better | random)", m.Replace)
	}
}

// validate checks the p2p section.
func (p *P2PSpec) validate(e *Error) {
	if p.Peers < 0 {
		e.add("p2p.peers", "must not be negative")
	}
	if p.Peers == 1 {
		e.add("p2p.peers", "an overlay needs at least 2 peers")
	}
	if p.ViewSize < 0 {
		e.add("p2p.view", "must not be negative")
	}
	if p.GossipEvery < 0 {
		e.add("p2p.gossip_every", "must not be negative")
	}
	if p.Churn < 0 || p.Churn > 1 {
		e.add("p2p.churn", "must be a probability in [0,1]")
	}
	if p.Rejoin < 0 || p.Rejoin > 1 {
		e.add("p2p.rejoin", "must be a probability in [0,1]")
	}
	if p.MinPeers < 0 {
		e.add("p2p.min_peers", "must not be negative")
	}
}

// validate checks the hga section.
func (h *HGASpec) validate(e *Error) {
	for i, n := range h.Layers {
		if n < 1 {
			e.add("hga.layers["+itoa(i)+"]", "layer must hold at least 1 deme")
		}
	}
	if h.Levels != nil && len(h.Levels) != len(h.Layers) {
		e.add("hga.levels", "must have one entry per layer (%d layers, %d levels)", len(h.Layers), len(h.Levels))
	}
	for i, l := range h.Levels {
		if l < 0 {
			e.add("hga.levels["+itoa(i)+"]", "fidelity level must not be negative")
		}
	}
	if h.Interval < 0 {
		e.add("hga.interval", "must not be negative")
	}
}

// validate checks the sim section.
func (ss *SIMSpec) validate(e *Error) {
	if ss.Scenario < 0 || ss.Scenario > 7 {
		e.add("sim.scenario", "scenario %d out of range 1..7", ss.Scenario)
	}
	if ss.DemeSize < 0 {
		e.add("sim.deme_size", "must not be negative")
	}
	if ss.Interval < 0 {
		e.add("sim.interval", "must not be negative")
	}
	if ss.ArchiveCap < 0 {
		e.add("sim.archive_cap", "must not be negative")
	}
	if len(ss.HVRef) != 0 && len(ss.HVRef) != 2 {
		e.add("sim.hv_ref", "reference point is [f1, f2]")
	}
}

// validateBudget checks the stop-condition section against the model.
func (s *RunSpec) validateBudget(e *Error) {
	b := s.Budget
	if b.Generations < 0 {
		e.add("budget.generations", "must not be negative")
	}
	if b.Evaluations < 0 {
		e.add("budget.evaluations", "must not be negative")
	}
	if b.Stagnation < 0 {
		e.add("budget.stagnation", "must not be negative")
	}
	if b.Cost < 0 {
		e.add("budget.cost", "must not be negative")
	}
	if b.Cost != 0 && s.Model != ModelHGA {
		e.add("budget.cost", "only model %q runs on a cost budget", ModelHGA)
	}
	switch s.Model {
	case ModelHGA:
		if b.Generations != 0 || b.Evaluations != 0 || b.Target != nil || b.TargetOptimum || b.Stagnation != 0 {
			e.add("budget", "model %q runs on a cost budget; set budget.cost only", ModelHGA)
		}
	case ModelP2P, ModelSIM:
		if b.Evaluations != 0 || b.Target != nil || b.TargetOptimum || b.Stagnation != 0 {
			e.add("budget", "model %q supports only budget.generations", s.Model)
		}
	default:
		if b.TargetOptimum {
			if prob, perr := s.problemInstance(); perr == nil && !isTargetAware(prob) {
				e.add("budget.target_optimum", "problem %q has no known optimum", s.Problem.Name)
			}
		}
	}
	// Parallel-mode islands run on a plain generation cap.
	if s.Model == ModelIslands && s.Islands != nil && s.Islands.Mode == "parallel" {
		if b.Evaluations != 0 || b.Target != nil || b.TargetOptimum || b.Stagnation != 0 {
			e.add("budget", "parallel-mode islands support only budget.generations")
		}
	}
}
