package spec

import (
	"bytes"
	"encoding/json"
	"sort"
	"strings"
)

// Axis is one swept dimension: a dotted field path and the values it
// takes. Values may be any JSON value, including whole objects (an
// entire engine section, a topology object).
type Axis struct {
	Path   string `json:"path"`
	Values []any  `json:"values"`
}

// Sweep expands a base spec over axes into a deterministic run matrix.
// Cells enumerate row-major with the last axis fastest; each cell's
// seed derives from the base seed and the cell/replicate index (see
// DeriveSeed), except that sweeping the "seed" path itself pins the
// cell seed to the swept value.
type Sweep struct {
	Base       RunSpec
	Axes       []Axis
	Replicates int
}

// Cell is one expanded run of a sweep.
type Cell struct {
	// Index is the cell's position in the row-major matrix.
	Index int
	// Replicate is the repeat index within the cell.
	Replicate int
	// Spec is the fully validated cell spec (seed already derived).
	Spec RunSpec
	// Overrides is the cell's axis assignment, keyed by path.
	Overrides map[string]any
}

// File is one parsed config document: either a single run or a sweep.
type File struct {
	// Name labels the document (sweep form only; a single-run document
	// uses the RunSpec's own name).
	Name string
	// Single is set when the document is a plain RunSpec.
	Single *RunSpec
	// Sweep is set when the document is a sweep.
	Sweep *Sweep
}

// sweepDoc is the JSON shape of a sweep document.
type sweepDoc struct {
	Name       string                     `json:"name,omitempty"`
	Base       json.RawMessage            `json:"base"`
	Sweep      map[string]json.RawMessage `json:"sweep"`
	Replicates int                        `json:"replicates,omitempty"`
}

// rangeAxis is the {"from": a, "to": b, "step": s} axis shorthand.
type rangeAxis struct {
	From float64  `json:"from"`
	To   float64  `json:"to"`
	Step *float64 `json:"step,omitempty"`
}

// ParseFile strictly parses one config document — a plain RunSpec or a
// sweep ({"base": {...}, "sweep": {"path": [...]}, "replicates": N}) —
// and validates every cell it expands to. Like Parse it returns
// structured errors and never panics.
func ParseFile(data []byte) (*File, error) {
	var probe map[string]json.RawMessage
	if err := json.Unmarshal(data, &probe); err != nil {
		return nil, asError(decodeError(err))
	}
	if _, isSweep := probe["base"]; !isSweep {
		s, err := Parse(data)
		if err != nil {
			return nil, err
		}
		return &File{Single: s}, nil
	}

	var doc sweepDoc
	if err := strictUnmarshal(data, &doc); err != nil {
		return nil, err
	}
	base, err := Parse(doc.Base)
	if err != nil {
		return nil, prefixPaths(err, "base.")
	}
	if doc.Replicates < 0 {
		return nil, errf("replicates", "must not be negative")
	}

	// JSON map order is unspecified; sort axis paths so the run matrix
	// is deterministic for a given document.
	paths := make([]string, 0, len(doc.Sweep))
	for p := range doc.Sweep {
		paths = append(paths, p)
	}
	sort.Strings(paths)

	sw := &Sweep{Base: *base, Replicates: doc.Replicates}
	for _, p := range paths {
		values, aerr := parseAxisValues(p, doc.Sweep[p])
		if aerr != nil {
			return nil, aerr
		}
		sw.Axes = append(sw.Axes, Axis{Path: p, Values: values})
	}
	if _, cerr := sw.Cells(); cerr != nil {
		return nil, cerr
	}
	return &File{Name: doc.Name, Sweep: sw}, nil
}

// parseAxisValues decodes one axis: a JSON array of values or the
// range shorthand.
func parseAxisValues(path string, raw json.RawMessage) ([]any, error) {
	trimmed := bytes.TrimSpace(raw)
	if len(trimmed) == 0 {
		return nil, errf("sweep."+path, "axis has no values")
	}
	if trimmed[0] == '[' {
		var values []any
		if err := unmarshalNumbers(trimmed, &values); err != nil {
			return nil, errf("sweep."+path, "cannot decode axis values: %v", err)
		}
		if len(values) == 0 {
			return nil, errf("sweep."+path, "axis has no values")
		}
		return values, nil
	}
	if trimmed[0] == '{' {
		var r rangeAxis
		dec := json.NewDecoder(bytes.NewReader(trimmed))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&r); err != nil {
			return nil, errf("sweep."+path, `axis must be a value list or {"from","to","step"}: %v`, err)
		}
		step := 1.0
		if r.Step != nil {
			step = *r.Step
		}
		if step <= 0 {
			return nil, errf("sweep."+path+".step", "must be positive")
		}
		if r.To < r.From {
			return nil, errf("sweep."+path, "empty range: to %v below from %v", r.To, r.From)
		}
		var values []any
		// Integer-step ranges iterate exactly; fractional steps tolerate
		// float error up to half a step.
		for v := r.From; v <= r.To+step/2; v += step {
			values = append(values, v)
			if len(values) > 10000 {
				return nil, errf("sweep."+path, "range expands to over 10000 values")
			}
		}
		return values, nil
	}
	return nil, errf("sweep."+path, "axis must be a value list or a range object")
}

// unmarshalNumbers decodes preserving number precision (json.Number
// instead of float64), so large integer seeds survive the override
// round-trip exactly.
func unmarshalNumbers(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.UseNumber()
	return dec.Decode(v)
}

// prefixPaths rebases an *Error's field paths under a prefix.
func prefixPaths(err error, prefix string) error {
	se, ok := err.(*Error)
	if !ok {
		return err
	}
	out := &Error{Fields: make([]FieldError, len(se.Fields))}
	for i, f := range se.Fields {
		out.Fields[i] = FieldError{Path: prefix + f.Path, Reason: f.Reason}
	}
	return out
}

// splitmix64 is the seed-derivation mix (same constants as the rng
// package's stream splitting; reimplemented here because the spec
// layer derives seeds, not streams).
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// DeriveSeed derives the run seed of sweep cell `cell`, replicate
// `rep`, from the base seed. Cell 0 replicate 0 keeps the base seed
// verbatim, so a one-cell sweep reproduces the plain run exactly; every
// other coordinate chains SplitMix64 so nearby cells get decorrelated
// streams.
func DeriveSeed(base uint64, cell, rep int) uint64 {
	if cell == 0 && rep == 0 {
		return base
	}
	h := splitmix64(base ^ 0xD6E8FEB86659FD93)
	h = splitmix64(h ^ uint64(cell))
	h = splitmix64(h ^ uint64(rep))
	return h
}

// Cells expands the sweep into its validated run matrix.
func (s *Sweep) Cells() ([]Cell, *Error) {
	reps := s.Replicates
	if reps == 0 {
		reps = 1
	}
	dims := make([]int, len(s.Axes))
	total := 1
	for i, ax := range s.Axes {
		if len(ax.Values) == 0 {
			return nil, errf("sweep."+ax.Path, "axis has no values")
		}
		if strings.TrimSpace(ax.Path) == "" {
			return nil, errf("sweep", "axis has an empty path")
		}
		dims[i] = len(ax.Values)
		total *= dims[i]
		if total > 100000 {
			return nil, errf("sweep", "matrix expands to over 100000 cells")
		}
	}

	baseDoc, err := s.Base.JSON()
	if err != nil {
		return nil, errf("base", "cannot serialise base spec: %v", err)
	}

	var cells []Cell
	idx := make([]int, len(s.Axes))
	for cell := 0; cell < total; cell++ {
		overrides := map[string]any{}
		seedSwept := false
		var doc map[string]any
		if uerr := unmarshalNumbers(baseDoc, &doc); uerr != nil {
			return nil, errf("base", "cannot re-read base spec: %v", uerr)
		}
		for i, ax := range s.Axes {
			v := ax.Values[idx[i]]
			overrides[ax.Path] = v
			if ax.Path == "seed" {
				seedSwept = true
			}
			if serr := setPath(doc, ax.Path, v); serr != nil {
				return nil, serr
			}
		}
		cellJSON, merr := json.Marshal(doc)
		if merr != nil {
			return nil, errf("sweep", "cell %d does not serialise: %v", cell, merr)
		}
		cellSpec, perr := Parse(cellJSON)
		if perr != nil {
			pe, _ := prefixPaths(perr, "sweep(cell "+itoa(cell)+").").(*Error)
			return nil, pe
		}
		for rep := 0; rep < reps; rep++ {
			cs := *cellSpec
			if seedSwept {
				cs.Seed = DeriveSeed(cs.Seed, 0, rep)
			} else {
				cs.Seed = DeriveSeed(s.Base.Seed, cell, rep)
			}
			cells = append(cells, Cell{
				Index:     cell,
				Replicate: rep,
				Spec:      cs,
				Overrides: overrides,
			})
		}
		// Advance the odometer, last axis fastest.
		for i := len(idx) - 1; i >= 0; i-- {
			idx[i]++
			if idx[i] < dims[i] {
				break
			}
			idx[i] = 0
		}
	}
	return cells, nil
}

// setPath assigns v at the dotted path inside a JSON object tree,
// creating intermediate objects as needed. The subsequent strict
// re-Parse of the cell document catches paths that name no spec field.
func setPath(doc map[string]any, path string, v any) *Error {
	parts := strings.Split(path, ".")
	cur := doc
	for i, p := range parts[:len(parts)-1] {
		next, ok := cur[p]
		if !ok || next == nil {
			child := map[string]any{}
			cur[p] = child
			cur = child
			continue
		}
		child, ok := next.(map[string]any)
		if !ok {
			return errf("sweep."+path, "path segment %q is not an object", strings.Join(parts[:i+1], "."))
		}
		cur = child
	}
	cur[parts[len(parts)-1]] = v
	return nil
}

// Run expands and runs every cell in order, returning one report per
// cell×replicate. Deterministic for deterministic specs: the same
// sweep document yields byte-identical marshalled reports on every
// invocation.
func (s *Sweep) Run(opts RunOpts) ([]*Report, error) {
	cells, cerr := s.Cells()
	if cerr != nil {
		return nil, cerr
	}
	reports := make([]*Report, 0, len(cells))
	for _, c := range cells {
		b, berr := Build(c.Spec)
		if berr != nil {
			return reports, prefixPaths(berr, "sweep(cell "+itoa(c.Index)+").")
		}
		rep := b.Run(opts)
		rep.Cell = c.Index
		rep.Replicate = c.Replicate
		rep.Overrides = c.Overrides
		reports = append(reports, rep)
	}
	return reports, nil
}
