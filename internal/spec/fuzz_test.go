package spec

import "testing"

// FuzzParse feeds arbitrary bytes through both document parsers. The
// contract under test: never panic, and every rejection is a structured
// *Error with at least one located field.
func FuzzParse(f *testing.F) {
	seeds := []string{
		``,
		`{}`,
		`[]`,
		`null`,
		`{"model":"generational","problem":{"name":"onemax","size":8}}`,
		`{"model":"islands","problem":{"name":"onemax","size":8},"islands":{"demes":4,"topology":"torus"}}`,
		`{"model":"sim","problem":{"name":"zdt1","size":6}}`,
		`{"model":"hga","problem":{"name":"sphere","size":4},"budget":{"cost":100}}`,
		`{"base":{"model":"generational","problem":{"name":"onemax","size":8}},"sweep":{"engine.pop":[4,8]}}`,
		`{"base":{"model":"generational","problem":{"name":"onemax","size":8}},"sweep":{"seed":{"from":1,"to":3}}}`,
		`{"model":"generational","problem":{"name":"onemax","size":1e9}}`,
		`{"model":"generational","problem":{"name":"onemax","size":8},"seed":18446744073709551615}`,
		`{"model":"generational","problem":{"name":"onemax","size":8},"engine":{"crossover":{"name":"none"}}}`,
		`{"base":{},"sweep":{"..":[1]}}`,
		`{"base":{"model":"generational","problem":{"name":"onemax","size":8}},"sweep":{"problem":[{"name":"trap","size":12}]}}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if s, err := Parse(data); err != nil {
			requireStructured(t, err)
		} else if s == nil {
			t.Fatal("Parse returned nil spec and nil error")
		}
		if file, err := ParseFile(data); err != nil {
			requireStructured(t, err)
		} else if file == nil || (file.Single == nil && file.Sweep == nil) {
			t.Fatal("ParseFile returned an empty document without error")
		}
	})
}

func requireStructured(t *testing.T, err error) {
	t.Helper()
	se, ok := err.(*Error)
	if !ok {
		t.Fatalf("rejection is %T (%v), want *spec.Error", err, err)
	}
	if len(se.Fields) == 0 {
		t.Fatal("structured error with no fields")
	}
	for _, f := range se.Fields {
		if f.Path == "" || f.Reason == "" {
			t.Fatalf("field with empty path or reason: %+v", se.Fields)
		}
	}
	if se.Error() == "" {
		t.Fatal("empty error message")
	}
}
