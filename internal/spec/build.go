package spec

import (
	"time"

	"pga/internal/cellular"
	"pga/internal/core"
	"pga/internal/ga"
	"pga/internal/hga"
	"pga/internal/island"
	"pga/internal/masterslave"
	"pga/internal/migration"
	"pga/internal/operators"
	"pga/internal/p2p"
	"pga/internal/problems"
	"pga/internal/rng"
	"pga/internal/sim"
	"pga/internal/supervise"
	"pga/internal/topology"
)

// Default budgets of the spec layer (the runtimes have no stop-condition
// defaults of their own).
const (
	// DefaultGenerations caps runs whose budget sets nothing.
	DefaultGenerations = 300
	// DefaultSIMGenerations is sim's own per-island default, kept so a
	// sparse sim spec matches a sparse sim.Config.
	DefaultSIMGenerations = 60
	// DefaultHGACost is the hga cost budget when budget.cost is unset.
	DefaultHGACost = 2000
)

// Built is a validated spec materialised into a runtime. Exactly one of
// the runtime handles is non-nil (Engine covers the four panmictic
// models); Run drives whichever is set and renders a deterministic
// Report. The handles stay exported so callers with special needs (the
// equiv parity tests, experiments stepping engines by hand) can drive
// the runtime directly.
type Built struct {
	// Spec is the spec that was built (after validation).
	Spec RunSpec
	// Problem is the materialised problem (nil for model "sim", whose
	// problem is multi-objective).
	Problem core.Problem
	// Stop is the composed stop condition of the engine models; fresh
	// per Build because stagnation conditions are stateful.
	Stop core.StopCondition
	// Engine is the panmictic runtime (generational, steadystate,
	// parallel, masterslave, cellular).
	Engine ga.Engine
	// Farm is the evaluation farm behind a masterslave Engine.
	Farm *masterslave.Farm
	// Islands is the island runtime.
	Islands *island.Model
	// P2P is the gossip-overlay runtime.
	P2P *p2p.Network
	// HGA is the hierarchical runtime.
	HGA *hga.Model
	// SIMConfig is the sim runtime's config (sim.Run constructs and
	// runs in one call).
	SIMConfig *sim.Config

	maxGens    int
	costBudget float64
	islandMode string
}

// Build validates s and constructs its runtime. Engine-level zero
// values pass through to the runtime configs, so a spec-built runtime
// is draw-identical to the equivalent hand-wired construction.
func Build(s RunSpec) (*Built, error) {
	if verr := s.Validate(); verr != nil {
		return nil, verr
	}
	b := &Built{Spec: s, maxGens: s.maxGenerations()}

	if s.Model == ModelSIM {
		mo, _ := s.simProblemInstance()
		b.SIMConfig = s.simConfig(mo)
		return b, nil
	}

	prob, _ := s.problemInstance()
	b.Problem = prob
	b.Stop = s.buildStop(prob)
	class := genomeClassOf(prob)

	switch s.Model {
	case ModelGenerational:
		b.Engine = ga.NewGenerational(s.gaConfig(prob, class, rng.New(s.Seed)))
	case ModelSteadyState:
		b.Engine = ga.NewSteadyState(s.gaConfig(prob, class, rng.New(s.Seed)), s.Engine.Replace != "random")
	case ModelParallel:
		workers := s.Engine.Workers
		if workers == 0 {
			workers = 4
		}
		b.Engine = ga.NewParallelGenerational(s.gaConfig(prob, class, rng.New(s.Seed)), workers)
	case ModelMasterSlave:
		workers := 4
		if s.Farm != nil && s.Farm.Workers > 0 {
			workers = s.Farm.Workers
		}
		b.Farm = masterslave.NewFarm(s.Seed, masterslave.Uniform(workers))
		cfg := s.gaConfig(prob, class, rng.New(s.Seed))
		cfg.Evaluator = b.Farm
		b.Engine = ga.NewGenerational(cfg)
	case ModelCellular:
		b.Engine = cellular.New(s.cellularConfig(prob, class, rng.New(s.Seed)))
	case ModelIslands:
		b.Islands, b.islandMode = s.islandModel(prob, class)
	case ModelP2P:
		b.P2P = s.p2pNetwork(prob, class)
	case ModelHGA:
		b.HGA = s.hgaModel(prob, class)
		b.costBudget = s.Budget.Cost
		if b.costBudget == 0 {
			b.costBudget = DefaultHGACost
		}
	}
	return b, nil
}

// maxGenerations is the generation cap used by the maxGens-driven run
// modes (parallel islands, p2p, sim).
func (s *RunSpec) maxGenerations() int {
	if s.Budget.Generations > 0 {
		return s.Budget.Generations
	}
	if s.Model == ModelSIM {
		return DefaultSIMGenerations
	}
	return DefaultGenerations
}

// buildStop composes the stop condition from the budget. A single
// condition is returned unwrapped so its StopReason matches a
// hand-wired run exactly.
func (s *RunSpec) buildStop(prob core.Problem) core.StopCondition {
	var conds core.AnyOf
	conds = append(conds, core.MaxGenerations(s.maxGenerations()))
	if s.Budget.Evaluations > 0 {
		conds = append(conds, core.MaxEvaluations(s.Budget.Evaluations))
	}
	if s.Budget.Target != nil {
		conds = append(conds, core.TargetFitness{Target: *s.Budget.Target, Dir: prob.Direction()})
	}
	if s.Budget.TargetOptimum {
		ta := prob.(core.TargetAware) // validated
		conds = append(conds, core.TargetFitness{Target: ta.Optimum(), Dir: prob.Direction()})
	}
	if s.Budget.Stagnation > 0 {
		conds = append(conds, core.NewStagnation(s.Budget.Stagnation))
	}
	if len(conds) == 1 {
		return conds[0]
	}
	return conds
}

// resolveOperators materialises the three operator slots. An omitted
// selector passes nil through (the engine default, Tournament(2)); an
// omitted crossover/mutator takes the canonical pair of the genome
// class; "none" disables the slot.
func (s *RunSpec) resolveOperators(class string) (sel operators.Selector, xover operators.Crossover, mut operators.Mutator) {
	if op := s.Engine.Selector; op != nil {
		sel = buildOperator(op).(operators.Selector)
	}
	if op := s.Engine.Crossover; op != nil {
		if op.Name != "none" {
			xover = buildOperator(op).(operators.Crossover)
		}
	} else {
		xover = canonicalCrossover(class)
	}
	if op := s.Engine.Mutator; op != nil {
		if op.Name != "none" {
			mut = buildOperator(op).(operators.Mutator)
		}
	} else {
		mut = canonicalMutator(class)
	}
	return sel, xover, mut
}

// buildOperator materialises one validated operator spec.
func buildOperator(op *OperatorSpec) any {
	entry, _ := operators.LookupSpec(op.Name) // validated
	params := op.Params
	if params == nil {
		params = map[string]float64{}
	}
	return entry.Build(params)
}

// canonicalCrossover is the per-genome-class default crossover — the
// pairing cmd/pgarun has always used.
func canonicalCrossover(class string) operators.Crossover {
	switch class {
	case "real":
		return operators.SBX{}
	case "perm":
		return operators.OX{}
	default: // bits, int
		return operators.Uniform{}
	}
}

// canonicalMutator is the per-genome-class default mutator.
func canonicalMutator(class string) operators.Mutator {
	switch class {
	case "real":
		return operators.Polynomial{}
	case "perm":
		return operators.Inversion{}
	case "int":
		return operators.UniformReset{}
	default: // bits
		return operators.BitFlip{}
	}
}

// gaConfig assembles a ga.Config, passing spec zero values through so
// ga's own defaulting stays authoritative.
func (s *RunSpec) gaConfig(prob core.Problem, class string, r *rng.Source) ga.Config {
	sel, xover, mut := s.resolveOperators(class)
	return ga.Config{
		Problem:       prob,
		PopSize:       s.Engine.Pop,
		Selector:      sel,
		Crossover:     xover,
		CrossoverRate: s.Engine.CrossoverRate,
		Mutator:       mut,
		Elitism:       s.Engine.Elitism,
		GenGap:        s.Engine.GenGap,
		RNG:           r,
	}
}

// cellularConfig assembles a cellular.Config.
func (s *RunSpec) cellularConfig(prob core.Problem, class string, r *rng.Source) cellular.Config {
	_, xover, mut := s.resolveOperators(class)
	g := s.Engine.Grid
	if g == nil {
		g = &GridSpec{}
	}
	return cellular.Config{
		Problem:       prob,
		Rows:          g.Rows,
		Cols:          g.Cols,
		Neighborhood:  neighborhoodOf(g.Neighborhood),
		Update:        updateOf(g.Update),
		Crossover:     xover,
		CrossoverRate: s.Engine.CrossoverRate,
		Mutator:       mut,
		RNG:           r,
	}
}

func neighborhoodOf(name string) cellular.Neighborhood {
	switch name {
	case "c9":
		return cellular.Moore
	case "l9":
		return cellular.Linear9
	default: // "", l5
		return cellular.VonNeumann
	}
}

func updateOf(name string) cellular.UpdatePolicy {
	switch name {
	case "ls":
		return cellular.LineSweep
	case "frs":
		return cellular.FixedRandomSweep
	case "nrs":
		return cellular.NewRandomSweep
	case "uc":
		return cellular.UniformChoice
	default: // "", sync
		return cellular.Synchronous
	}
}

// demeEngineFactory builds the per-deme engine constructor of the
// islands and p2p models from the Engine section.
func (s *RunSpec) demeEngineFactory(prob core.Problem, class string) func(int, *rng.Source) ga.Engine {
	switch s.Engine.Type {
	case "steadystate":
		return func(_ int, r *rng.Source) ga.Engine {
			return ga.NewSteadyState(s.gaConfig(prob, class, r), s.Engine.Replace != "random")
		}
	case "cellular":
		return func(_ int, r *rng.Source) ga.Engine {
			return cellular.New(s.cellularConfig(prob, class, r))
		}
	default: // "", generational
		return func(_ int, r *rng.Source) ga.Engine {
			return ga.NewGenerational(s.gaConfig(prob, class, r))
		}
	}
}

// islandModel assembles the island runtime.
func (s *RunSpec) islandModel(prob core.Problem, class string) (*island.Model, string) {
	is := s.Islands
	if is == nil {
		is = &IslandSpec{}
	}
	demes := is.Demes
	if demes == 0 {
		demes = 8
	}
	mode := is.Mode
	if mode == "" {
		mode = "sequential"
	}
	m := island.New(island.Config{
		Topology:    s.buildTopology(is.Topology, demes),
		Policy:      buildPolicy(is.Migration),
		NewEngine:   s.demeEngineFactory(prob, class),
		RewireEvery: is.RewireEvery,
		Seed:        s.Seed,
		Resilience:  resiliencePreset(is.Resilience),
		Faults:      buildFaultPlan(is.Faults),
	})
	return m, mode
}

// buildTopology materialises a topology spec; the "random" kind's
// wiring seed defaults to the run seed.
func (s *RunSpec) buildTopology(t TopologySpec, demes int) topology.Topology {
	switch t.Kind {
	case "biring":
		return topology.BiRing(demes)
	case "star":
		return topology.Star(demes)
	case "complete":
		return topology.Complete(demes)
	case "hypercube":
		d := 0
		for 1<<uint(d) < demes {
			d++
		}
		return topology.Hypercube(d)
	case "isolated":
		return topology.Isolated(demes)
	case "grid":
		return topology.Grid(t.Rows, t.Cols)
	case "torus":
		return topology.Torus(t.Rows, t.Cols)
	case "random":
		deg := t.Degree
		if deg == 0 {
			deg = 3
		}
		seed := t.Seed
		if seed == 0 {
			seed = s.Seed
		}
		return topology.NewDynamic(func(ts uint64) topology.Topology {
			return topology.RandomRegular(demes, deg, ts)
		}, seed)
	default: // "", ring
		return topology.Ring(demes)
	}
}

// buildPolicy materialises a migration policy, passing zero values
// through to migration.Policy.WithDefaults.
func buildPolicy(m MigrationSpec) migration.Policy {
	p := migration.Policy{
		Interval: m.Interval,
		Count:    m.Count,
		Sync:     !m.Async,
		Buffer:   m.Buffer,
	}
	switch m.Select {
	case "random":
		p.Select = migration.SelectRandom{}
	case "tournament":
		p.Select = migration.SelectTournament{}
	}
	switch m.Replace {
	case "worst-if-better":
		p.Replace = migration.ReplaceWorstIfBetter{}
	case "random":
		p.Replace = migration.ReplaceRandom{}
	}
	return p
}

// resiliencePreset maps a preset name to a supervision config.
func resiliencePreset(name string) *supervise.Config {
	switch name {
	case "default":
		return &supervise.Config{}
	case "eager":
		return &supervise.Config{CheckpointEvery: 1, MaxRestarts: 5}
	default: // "", none
		return nil
	}
}

// buildFaultPlan materialises scripted faults.
func buildFaultPlan(faults []FaultSpec) *supervise.FaultPlan {
	if len(faults) == 0 {
		return nil
	}
	plan := supervise.NewFaultPlan()
	for _, f := range faults {
		switch f.Kind {
		case "panic":
			times := f.Times
			if times == 0 {
				times = 1
			}
			plan.PanicTimes(f.Deme, f.Gen, times)
		case "hang":
			ms := f.HangMS
			if ms == 0 {
				ms = 50
			}
			plan.HangAt(f.Deme, f.Gen, time.Duration(ms)*time.Millisecond)
		}
	}
	return plan
}

// p2pNetwork assembles the gossip overlay.
func (s *RunSpec) p2pNetwork(prob core.Problem, class string) *p2p.Network {
	ps := s.P2P
	if ps == nil {
		ps = &P2PSpec{}
	}
	return p2p.New(p2p.Config{
		Problem:     prob,
		Peers:       ps.Peers,
		NewEngine:   s.demeEngineFactory(prob, class),
		ViewSize:    ps.ViewSize,
		GossipEvery: ps.GossipEvery,
		ChurnRate:   ps.Churn,
		RejoinRate:  ps.Rejoin,
		MinPeers:    ps.MinPeers,
		Seed:        s.Seed,
	})
}

// hgaModel assembles the hierarchy over the quantized multi-fidelity
// wrapper of a real-valued benchmark.
func (s *RunSpec) hgaModel(prob core.Problem, class string) *hga.Model {
	rf := prob.(*problems.RealFunc) // validated
	hs := s.HGA
	if hs == nil {
		hs = &HGASpec{}
	}
	sel, xover, mut := s.resolveOperators(class)
	return hga.New(hga.Config{
		Problem:           hga.NewQuantized(rf),
		LayerSizes:        hs.Layers,
		LevelOf:           hs.Levels,
		DemeSize:          s.Engine.Pop,
		MigrationInterval: hs.Interval,
		Selector:          sel,
		Crossover:         xover,
		Mutator:           mut,
		Seed:              s.Seed,
	})
}

// simConfig assembles the specialized-island config.
func (s *RunSpec) simConfig(mo sim.MultiObjective) *sim.Config {
	ss := s.SIM
	if ss == nil {
		ss = &SIMSpec{}
	}
	scenario := ss.Scenario
	if scenario == 0 {
		scenario = 1
	}
	cfg := sim.Config{
		Problem:           mo,
		Scenario:          sim.Scenario(scenario),
		DemeSize:          ss.DemeSize,
		Generations:       s.maxGenerations(),
		MigrationInterval: ss.Interval,
		ArchiveCap:        ss.ArchiveCap,
		Seed:              s.Seed,
	}
	if len(ss.HVRef) == 2 {
		cfg.HVRef = [2]float64{ss.HVRef[0], ss.HVRef[1]}
	}
	return &cfg
}

// isRealBenchmark reports whether the problem is a real-valued
// benchmark usable as an hga multi-fidelity base.
func isRealBenchmark(p core.Problem) bool {
	_, ok := p.(*problems.RealFunc)
	return ok
}

// isTargetAware reports whether the problem has a known optimum.
func isTargetAware(p core.Problem) bool {
	_, ok := p.(core.TargetAware)
	return ok
}
