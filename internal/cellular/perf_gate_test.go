package cellular

// Allocation-budget perf gate for the cellular engine: a grid sweep must
// not allocate at steady state under any update policy (the candidate
// individuals, the synchronous shadow grid and the NRS order buffer are
// all pooled). See internal/ga/perf_gate_test.go for the rationale.

import (
	"fmt"
	"testing"

	"pga/internal/operators"
	"pga/internal/problems"
	"pga/internal/rng"
)

func gateEngine(update UpdatePolicy) *Engine {
	return New(Config{
		Problem:   problems.OneMax{N: 128},
		Rows:      10,
		Cols:      10,
		Update:    update,
		Crossover: operators.Uniform{},
		Mutator:   operators.BitFlip{},
		RNG:       rng.New(1),
	})
}

// TestAllocBudget gates one sweep per update policy at zero steady-state
// allocations.
func TestAllocBudget(t *testing.T) {
	for _, u := range []UpdatePolicy{Synchronous, LineSweep, FixedRandomSweep, NewRandomSweep, UniformChoice} {
		t.Run(u.String(), func(t *testing.T) {
			e := gateEngine(u)
			avg := testing.AllocsPerRun(20, e.Step)
			if avg > 0 {
				t.Errorf("%s sweep: %.1f allocs, budget 0", u, avg)
			}
		})
	}
}

// BenchmarkGenerationAllocs reports ns/op, B/op and allocs/op for one
// sweep per update policy.
func BenchmarkGenerationAllocs(b *testing.B) {
	for _, u := range []UpdatePolicy{Synchronous, LineSweep, NewRandomSweep} {
		b.Run(fmt.Sprintf("cellular/%s", u), func(b *testing.B) {
			e := gateEngine(u)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				e.Step()
			}
		})
	}
}
