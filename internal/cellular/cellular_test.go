package cellular

import (
	"testing"

	"pga/internal/core"
	"pga/internal/ga"
	"pga/internal/island"
	"pga/internal/migration"
	"pga/internal/operators"
	"pga/internal/problems"
	"pga/internal/rng"
	"pga/internal/topology"
)

func baseCfg(seed uint64) Config {
	return Config{
		Problem:   problems.OneMax{N: 48},
		Rows:      8,
		Cols:      8,
		Crossover: operators.Uniform{},
		Mutator:   operators.BitFlip{},
		RNG:       rng.New(seed),
	}
}

func TestCellularSolvesOneMax(t *testing.T) {
	e := New(baseCfg(1))
	res := ga.Run(e, ga.RunOptions{Stop: core.AnyOf{
		core.MaxGenerations(200),
		core.TargetFitness{Target: 48, Dir: core.Maximize},
	}})
	if !res.Solved {
		t.Fatalf("cellular GA failed onemax: best=%v", res.BestFitness)
	}
}

func TestCellularAllUpdatePoliciesRun(t *testing.T) {
	for _, u := range []UpdatePolicy{Synchronous, LineSweep, FixedRandomSweep, NewRandomSweep, UniformChoice} {
		cfg := baseCfg(2)
		cfg.Update = u
		e := New(cfg)
		before := e.Population().BestFitness(core.Maximize)
		for i := 0; i < 10; i++ {
			e.Step()
		}
		after := e.Population().BestFitness(core.Maximize)
		if after < before {
			t.Fatalf("%s: best regressed %v -> %v (replace-if-better violated)", u, before, after)
		}
		if e.Name() == "" {
			t.Fatal("empty name")
		}
	}
}

func TestCellularAllNeighborhoods(t *testing.T) {
	for _, nb := range []Neighborhood{VonNeumann, Moore, Linear9} {
		cfg := baseCfg(3)
		cfg.Neighborhood = nb
		e := New(cfg)
		e.Step()
		if e.Evaluations() == 0 {
			t.Fatalf("%s: no evaluations", nb)
		}
	}
}

func TestNeighborhoodShapes(t *testing.T) {
	cfg := baseCfg(4)
	cfg.Rows, cfg.Cols = 6, 6
	e := New(cfg)
	if got := len(e.neighborhood(0)); got != 4 {
		t.Fatalf("L5 neighbourhood size %d, want 4", got)
	}
	cfg.Neighborhood = Moore
	e = New(cfg)
	if got := len(e.neighborhood(7)); got != 8 {
		t.Fatalf("C9 neighbourhood size %d, want 8", got)
	}
	cfg.Neighborhood = Linear9
	e = New(cfg)
	if got := len(e.neighborhood(7)); got != 8 {
		t.Fatalf("L9 neighbourhood size %d, want 8", got)
	}
}

func TestNeighborhoodTorusWraps(t *testing.T) {
	cfg := baseCfg(5)
	cfg.Rows, cfg.Cols = 4, 4
	e := New(cfg)
	// Corner cell 0 wraps to row 3 and col 3.
	nbrs := e.neighborhood(0)
	want := map[int]bool{12: true, 4: true, 3: true, 1: true}
	for _, n := range nbrs {
		if !want[n] {
			t.Fatalf("unexpected neighbour %d of corner", n)
		}
	}
	if len(nbrs) != 4 {
		t.Fatalf("corner has %d neighbours", len(nbrs))
	}
}

func TestNeighborhoodTinyGridNoSelfNoDup(t *testing.T) {
	cfg := baseCfg(6)
	cfg.Rows, cfg.Cols = 2, 2
	cfg.Neighborhood = Moore
	e := New(cfg)
	for i := 0; i < 4; i++ {
		seen := map[int]bool{}
		for _, n := range e.neighborhood(i) {
			if n == i {
				t.Fatal("self in neighbourhood")
			}
			if seen[n] {
				t.Fatal("duplicate in neighbourhood")
			}
			seen[n] = true
		}
	}
}

func TestCellularDeterministic(t *testing.T) {
	run := func() float64 {
		e := New(baseCfg(7))
		for i := 0; i < 15; i++ {
			e.Step()
		}
		return e.Population().BestFitness(core.Maximize)
	}
	if run() != run() {
		t.Fatal("cellular engine not deterministic")
	}
}

func TestCellularEvaluationCount(t *testing.T) {
	cfg := baseCfg(8)
	e := New(cfg)
	init := e.Evaluations()
	if init != 64 {
		t.Fatalf("initial evals %d, want 64", init)
	}
	e.Step()
	if e.Evaluations() != 128 {
		t.Fatalf("after one sweep evals %d, want 128", e.Evaluations())
	}
}

func TestCellularValidation(t *testing.T) {
	for i, cfg := range []Config{
		{RNG: rng.New(1)},                // no problem
		{Problem: problems.OneMax{N: 8}}, // no rng
		{Problem: problems.OneMax{N: 8}, Rows: 1, Cols: 1, RNG: rng.New(1)}, // too small
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d did not panic", i)
				}
			}()
			New(cfg)
		}()
	}
}

func TestCellularInsideIslandModel(t *testing.T) {
	// Alba & Troya 2002: cellular GAs as island demes.
	m := island.New(island.Config{
		Topology: topology.Ring(2),
		Policy:   migration.Policy{Interval: 5, Count: 1},
		NewEngine: func(d int, r *rng.Source) ga.Engine {
			return New(Config{
				Problem: problems.OneMax{N: 32},
				Rows:    5, Cols: 5,
				Crossover: operators.Uniform{},
				Mutator:   operators.BitFlip{},
				RNG:       r,
			})
		},
		Seed: 9,
	})
	res := m.RunSequential(core.AnyOf{
		core.MaxGenerations(150),
		core.TargetFitness{Target: 32, Dir: core.Maximize},
	}, false)
	if !res.Solved {
		t.Fatalf("cellular islands failed: %v", res.BestFitness)
	}
}

func TestTakeoverSimInitialState(t *testing.T) {
	s := NewTakeoverSim(10, 10, VonNeumann, Synchronous, 1)
	if f := s.BestFraction(); f != 0.01 {
		t.Fatalf("initial best fraction %v, want 0.01", f)
	}
}

func TestTakeoverMonotone(t *testing.T) {
	for _, u := range []UpdatePolicy{Synchronous, LineSweep, FixedRandomSweep, NewRandomSweep, UniformChoice} {
		curve := TakeoverCurve(12, 12, VonNeumann, u, 3, 500)
		for i := 1; i < len(curve); i++ {
			if curve[i] < curve[i-1] {
				t.Fatalf("%s: takeover fraction regressed at sweep %d", u, i)
			}
		}
		if curve[len(curve)-1] != 1 {
			t.Fatalf("%s: takeover incomplete after 500 sweeps: %v", u, curve[len(curve)-1])
		}
	}
}

func TestTakeoverSyncSlowerThanAsync(t *testing.T) {
	// Giacobini 2003's headline qualitative result: asynchronous updates
	// have higher selection pressure (shorter takeover) than synchronous.
	const runs, maxSweeps = 10, 1000
	sync := TakeoverTime(16, 16, VonNeumann, Synchronous, runs, maxSweeps)
	ls := TakeoverTime(16, 16, VonNeumann, LineSweep, runs, maxSweeps)
	nrs := TakeoverTime(16, 16, VonNeumann, NewRandomSweep, runs, maxSweeps)
	if !(ls < sync) {
		t.Fatalf("line sweep (%v) not faster than synchronous (%v)", ls, sync)
	}
	if !(nrs < sync) {
		t.Fatalf("new random sweep (%v) not faster than synchronous (%v)", nrs, sync)
	}
}

func TestTakeoverGridSizeScales(t *testing.T) {
	small := TakeoverTime(8, 8, VonNeumann, Synchronous, 5, 1000)
	large := TakeoverTime(20, 20, VonNeumann, Synchronous, 5, 1000)
	if large <= small {
		t.Fatalf("takeover on larger grid (%v) not slower than smaller (%v)", large, small)
	}
}

func TestTakeoverSimValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for tiny grid")
		}
	}()
	NewTakeoverSim(1, 5, VonNeumann, Synchronous, 1)
}

func TestPolicyAndNeighborhoodStrings(t *testing.T) {
	for _, u := range []UpdatePolicy{Synchronous, LineSweep, FixedRandomSweep, NewRandomSweep, UniformChoice, UpdatePolicy(99)} {
		if u.String() == "" {
			t.Fatal("empty update policy name")
		}
	}
	for _, n := range []Neighborhood{VonNeumann, Moore, Linear9, Neighborhood(99)} {
		if n.String() == "" {
			t.Fatal("empty neighbourhood name")
		}
	}
}
