package cellular

import (
	"pga/internal/rng"
)

// TakeoverSim measures selection pressure in a cellular EA the way
// Giacobini, Alba & Tomassini (2003) did: selection and replacement only —
// no variation operators — starting from a grid where a single cell holds
// the best fitness, tracking how fast that fitness "takes over" the grid.
// Faster takeover = higher selection intensity; the asynchronous policies
// exhibit systematically higher pressure than the synchronous update,
// which is the result experiment E6 reproduces.
type TakeoverSim struct {
	rows, cols int
	fit        []float64
	neigh      Neighborhood
	update     UpdatePolicy
	rng        *rng.Source
	fixedOrder []int
	neighbors  [][]int
	sweeps     int
}

// NewTakeoverSim builds a rows×cols grid where every cell has fitness 0
// except the centre cell, which has fitness 1.
func NewTakeoverSim(rows, cols int, neigh Neighborhood, update UpdatePolicy, seed uint64) *TakeoverSim {
	if rows < 2 || cols < 2 {
		panic("cellular: takeover grid must be at least 2x2")
	}
	s := &TakeoverSim{
		rows: rows, cols: cols,
		fit:    make([]float64, rows*cols),
		neigh:  neigh,
		update: update,
		rng:    rng.New(seed),
	}
	s.fit[(rows/2)*cols+cols/2] = 1
	// Reuse the engine's neighbourhood geometry.
	e := &Engine{rows: rows, cols: cols, cfg: Config{Neighborhood: neigh}}
	s.neighbors = make([][]int, rows*cols)
	for i := range s.neighbors {
		s.neighbors[i] = e.neighborhood(i)
	}
	return s
}

// BestFraction returns the fraction of cells currently holding the best
// fitness.
func (s *TakeoverSim) BestFraction() float64 {
	n := 0
	for _, f := range s.fit {
		if f == 1 {
			n++
		}
	}
	return float64(n) / float64(len(s.fit))
}

// Sweeps returns the number of completed sweeps.
func (s *TakeoverSim) Sweeps() int { return s.sweeps }

// update1 applies the takeover rule to cell i against the given read
// buffer: binary tournament over the neighbourhood (centre included), the
// winner replaces the cell if strictly better.
func (s *TakeoverSim) update1(read []float64, write []float64, i int) {
	pool := s.neighbors[i]
	// Two uniform draws over neighbourhood ∪ {centre}.
	draw := func() float64 {
		k := s.rng.Intn(len(pool) + 1)
		if k == len(pool) {
			return read[i]
		}
		return read[pool[k]]
	}
	a, b := draw(), draw()
	winner := a
	if b > winner {
		winner = b
	}
	if winner > read[i] {
		write[i] = winner
	} else {
		write[i] = read[i]
	}
}

// Sweep advances the grid by one sweep under the configured policy.
func (s *TakeoverSim) Sweep() {
	n := s.rows * s.cols
	switch s.update {
	case Synchronous:
		next := make([]float64, n)
		for i := 0; i < n; i++ {
			s.update1(s.fit, next, i)
		}
		s.fit = next
	case LineSweep:
		for i := 0; i < n; i++ {
			s.update1(s.fit, s.fit, i)
		}
	case FixedRandomSweep:
		if s.fixedOrder == nil {
			s.fixedOrder = s.rng.Perm(n)
		}
		for _, i := range s.fixedOrder {
			s.update1(s.fit, s.fit, i)
		}
	case NewRandomSweep:
		for _, i := range s.rng.Perm(n) {
			s.update1(s.fit, s.fit, i)
		}
	case UniformChoice:
		for k := 0; k < n; k++ {
			i := s.rng.Intn(n)
			s.update1(s.fit, s.fit, i)
		}
	}
	s.sweeps++
}

// TakeoverCurve runs the simulation until full takeover or maxSweeps and
// returns the best-fraction after each sweep (index 0 = initial state).
func TakeoverCurve(rows, cols int, neigh Neighborhood, update UpdatePolicy, seed uint64, maxSweeps int) []float64 {
	s := NewTakeoverSim(rows, cols, neigh, update, seed)
	curve := []float64{s.BestFraction()}
	for i := 0; i < maxSweeps && s.BestFraction() < 1; i++ {
		s.Sweep()
		curve = append(curve, s.BestFraction())
	}
	return curve
}

// TakeoverTime returns the number of sweeps to full takeover (or maxSweeps
// if it never completes) averaged over runs different seeds.
func TakeoverTime(rows, cols int, neigh Neighborhood, update UpdatePolicy, runs, maxSweeps int) float64 {
	total := 0.0
	for s := 0; s < runs; s++ {
		curve := TakeoverCurve(rows, cols, neigh, update, uint64(s)+1, maxSweeps)
		total += float64(len(curve) - 1)
	}
	return total / float64(runs)
}
