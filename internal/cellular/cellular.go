// Package cellular implements the fine-grained (cellular) GA: one
// individual per cell of a 2-D toroidal grid, mating restricted to a small
// neighbourhood, with synchronous or asynchronous cell updates.
//
// This is the model of Manderick & Spiessens (1989) and Baluja (1993)
// reviewed in §2 of the survey, and the update policies are exactly the
// ones whose selection pressure Giacobini, Alba & Tomassini (2003)
// analysed: synchronous, line sweep (LS), fixed random sweep (FRS), new
// random sweep (NRS) and uniform choice (UC).
package cellular

import (
	"fmt"

	"pga/internal/core"
	"pga/internal/ga"
	"pga/internal/operators"
	"pga/internal/rng"
)

// Neighborhood names the mating neighbourhood shape.
type Neighborhood int

const (
	// VonNeumann is the L5 neighbourhood: N, S, E, W and the centre.
	VonNeumann Neighborhood = iota
	// Moore is the C9 neighbourhood: all 8 surrounding cells and the centre.
	Moore
	// Linear9 is the L9 neighbourhood: 2 cells in each axis direction and
	// the centre.
	Linear9
)

// String implements fmt.Stringer.
func (n Neighborhood) String() string {
	switch n {
	case VonNeumann:
		return "L5"
	case Moore:
		return "C9"
	case Linear9:
		return "L9"
	}
	return "unknown"
}

// UpdatePolicy names the cell-update schedule of one sweep.
type UpdatePolicy int

const (
	// Synchronous updates every cell from the previous sweep's grid.
	Synchronous UpdatePolicy = iota
	// LineSweep updates cells in row-major order, in place.
	LineSweep
	// FixedRandomSweep updates cells in a random order chosen once and
	// reused every sweep, in place.
	FixedRandomSweep
	// NewRandomSweep updates cells in a fresh random order each sweep,
	// in place.
	NewRandomSweep
	// UniformChoice updates n cells drawn uniformly with replacement per
	// sweep (some cells may update twice, some not at all), in place.
	UniformChoice
)

// String implements fmt.Stringer.
func (u UpdatePolicy) String() string {
	switch u {
	case Synchronous:
		return "sync"
	case LineSweep:
		return "LS"
	case FixedRandomSweep:
		return "FRS"
	case NewRandomSweep:
		return "NRS"
	case UniformChoice:
		return "UC"
	}
	return "unknown"
}

// Config configures a cellular GA.
type Config struct {
	// Problem is the optimisation problem (required).
	Problem core.Problem
	// Rows and Cols give the toroidal grid shape; population size is
	// Rows*Cols. Defaults 10×10.
	Rows, Cols int
	// Neighborhood is the mating neighbourhood; default VonNeumann (L5).
	Neighborhood Neighborhood
	// Update is the cell update schedule; default Synchronous.
	Update UpdatePolicy
	// Crossover recombines the centre with the neighbourhood mate; nil
	// copies the mate.
	Crossover operators.Crossover
	// CrossoverRate is the recombination probability; default 0.9.
	CrossoverRate float64
	// Mutator perturbs the offspring; nil disables mutation.
	Mutator operators.Mutator
	// RNG is the engine's random stream (required).
	RNG *rng.Source
}

// Engine is the cellular GA engine; it implements ga.Engine so cellular
// demes can run inside the island model (Alba & Troya 2002's cellular
// islands).
type Engine struct {
	cfg        Config
	pop        *core.Population
	rows, cols int
	dir        core.Direction
	evals      int64
	fixedOrder []int // FRS order, chosen on first use
	neighbors  [][]int

	// Pooled per-sweep state (see §8 of DESIGN.md): buf holds one
	// candidate slot per cell for synchronous sweeps, accepted records
	// which candidates won their cell, child is the rotating candidate of
	// the in-place policies, discard absorbs the unused second crossover
	// child and order is the NewRandomSweep permutation buffer.
	buf      []*core.Individual
	accepted []bool
	child    *core.Individual
	discard  *core.Individual
	order    []int
	scratch  operators.Scratch
}

var _ ga.Engine = (*Engine)(nil)

// New creates a cellular engine with a random, evaluated grid.
func New(cfg Config) *Engine {
	if cfg.Problem == nil {
		panic("cellular: Config.Problem is required")
	}
	if cfg.RNG == nil {
		panic("cellular: Config.RNG is required")
	}
	if cfg.Rows == 0 {
		cfg.Rows = 10
	}
	if cfg.Cols == 0 {
		cfg.Cols = 10
	}
	if cfg.Rows < 1 || cfg.Cols < 1 || cfg.Rows*cfg.Cols < 2 {
		panic("cellular: grid must hold at least 2 cells")
	}
	if cfg.CrossoverRate == 0 {
		cfg.CrossoverRate = 0.9
	}
	e := &Engine{cfg: cfg, rows: cfg.Rows, cols: cfg.Cols, dir: cfg.Problem.Direction()}
	n := cfg.Rows * cfg.Cols
	e.pop = core.NewPopulation(n)
	for i := 0; i < n; i++ {
		ind := core.NewIndividual(cfg.Problem.NewGenome(cfg.RNG))
		ind.Fitness = cfg.Problem.Evaluate(ind.Genome)
		ind.Evaluated = true
		e.evals++
		e.pop.Members = append(e.pop.Members, ind)
	}
	e.neighbors = make([][]int, n)
	for i := 0; i < n; i++ {
		e.neighbors[i] = e.neighborhood(i)
	}
	return e
}

// Name implements ga.Engine.
func (e *Engine) Name() string {
	return fmt.Sprintf("cellular(%dx%d,%s,%s)", e.rows, e.cols, e.cfg.Neighborhood, e.cfg.Update)
}

// Population implements ga.Engine.
func (e *Engine) Population() *core.Population { return e.pop }

// Problem implements ga.Engine.
func (e *Engine) Problem() core.Problem { return e.cfg.Problem }

// Evaluations implements ga.Engine.
func (e *Engine) Evaluations() int64 { return e.evals }

// Rows returns the grid height.
func (e *Engine) Rows() int { return e.rows }

// Cols returns the grid width.
func (e *Engine) Cols() int { return e.cols }

// neighborhood returns the cell indices of idx's mating pool, centre
// excluded (the centre is always the first parent).
func (e *Engine) neighborhood(idx int) []int {
	r, c := idx/e.cols, idx%e.cols
	wrap := func(rr, cc int) int {
		rr = (rr + e.rows) % e.rows
		cc = (cc + e.cols) % e.cols
		return rr*e.cols + cc
	}
	var offsets [][2]int
	switch e.cfg.Neighborhood {
	case Moore:
		offsets = [][2]int{{-1, -1}, {-1, 0}, {-1, 1}, {0, -1}, {0, 1}, {1, -1}, {1, 0}, {1, 1}}
	case Linear9:
		offsets = [][2]int{{-2, 0}, {-1, 0}, {1, 0}, {2, 0}, {0, -2}, {0, -1}, {0, 1}, {0, 2}}
	default: // VonNeumann
		offsets = [][2]int{{-1, 0}, {1, 0}, {0, -1}, {0, 1}}
	}
	out := make([]int, 0, len(offsets))
	seen := map[int]bool{idx: true} // tiny grids: drop wraps onto self/dups
	for _, o := range offsets {
		j := wrap(r+o[0], c+o[1])
		if !seen[j] {
			out = append(out, j)
			seen[j] = true
		}
	}
	return out
}

// ensureBuffers builds the pooled candidate slots on first use. Cloning
// the live members gives every slot a genome of the right concrete type
// and length so later sweeps copy in place.
func (e *Engine) ensureBuffers() {
	if e.child != nil {
		return
	}
	n := e.rows * e.cols
	e.child = e.pop.Members[0].Clone()
	e.discard = e.pop.Members[0].Clone()
	if e.cfg.Update == Synchronous {
		e.buf = make([]*core.Individual, n)
		for i := range e.buf {
			e.buf[i] = e.pop.Members[i].Clone()
		}
		e.accepted = make([]bool, n)
	}
	if e.cfg.Update == NewRandomSweep {
		e.order = make([]int, n)
	}
}

// Step implements ga.Engine: one sweep of Rows*Cols cell updates under the
// configured policy. Candidates are written into pooled buffers and
// pointer-swapped with the incumbents they beat, so a sweep is
// allocation-free at steady state; the RNG draw sequence matches the
// historical allocating implementation exactly.
func (e *Engine) Step() {
	n := e.rows * e.cols
	e.ensureBuffers()
	switch e.cfg.Update {
	case Synchronous:
		// All offspring computed against the old grid, then written at once.
		for i := 0; i < n; i++ {
			e.accepted[i] = e.offspringInto(i, e.buf[i])
		}
		for i := 0; i < n; i++ {
			if e.accepted[i] {
				// The evicted incumbent becomes the cell's buffer slot.
				e.pop.Members[i], e.buf[i] = e.buf[i], e.pop.Members[i]
			}
		}
	case LineSweep:
		for i := 0; i < n; i++ {
			e.updateInPlace(i)
		}
	case FixedRandomSweep:
		if e.fixedOrder == nil {
			e.fixedOrder = e.cfg.RNG.Perm(n)
		}
		for _, i := range e.fixedOrder {
			e.updateInPlace(i)
		}
	case NewRandomSweep:
		e.cfg.RNG.PermInto(e.order)
		for _, i := range e.order {
			e.updateInPlace(i)
		}
	case UniformChoice:
		for k := 0; k < n; k++ {
			e.updateInPlace(e.cfg.RNG.Intn(n))
		}
	}
}

// updateInPlace computes cell i's offspring against the live grid and
// installs it if accepted, recycling the evicted incumbent as the next
// candidate buffer.
func (e *Engine) updateInPlace(i int) {
	if e.offspringInto(i, e.child) {
		e.child = e.pop.Replace(i, e.child)
	}
}

// offspringInto produces cell i's candidate replacement in dst and reports
// whether it beats the incumbent (replace-if-better, the elitist rule of
// the cGA literature). On rejection dst simply holds garbage for the next
// attempt to overwrite.
func (e *Engine) offspringInto(i int, dst *core.Individual) bool {
	cfg := &e.cfg
	centre := e.pop.Members[i]
	// Binary tournament among the neighbours picks the mate.
	nbrs := e.neighbors[i]
	a := nbrs[cfg.RNG.Intn(len(nbrs))]
	b := nbrs[cfg.RNG.Intn(len(nbrs))]
	mate := e.pop.Members[a]
	if e.dir.Better(e.pop.Members[b].Fitness, mate.Fitness) {
		mate = e.pop.Members[b]
	}

	if cfg.Crossover != nil && cfg.RNG.Chance(cfg.CrossoverRate) {
		operators.CrossInto(cfg.Crossover, centre.Genome, mate.Genome, dst, e.discard, cfg.RNG, &e.scratch)
	} else {
		dst.Genome = core.CopyGenome(dst.Genome, mate.Genome)
	}
	if cfg.Mutator != nil {
		cfg.Mutator.Mutate(dst.Genome, cfg.RNG)
	}
	dst.Fitness = cfg.Problem.Evaluate(dst.Genome)
	dst.Evaluated = true
	e.evals++

	return e.dir.Better(dst.Fitness, centre.Fitness)
}
