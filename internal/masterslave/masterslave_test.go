package masterslave

import (
	"sync/atomic"
	"testing"

	"pga/internal/core"
	"pga/internal/ga"
	"pga/internal/genome"
	"pga/internal/operators"
	"pga/internal/problems"
	"pga/internal/rng"
)

// countingProblem wraps OneMax and counts concurrent-safe evaluations.
type countingProblem struct {
	inner core.Problem
	n     atomic.Int64
}

func (c *countingProblem) Name() string                        { return c.inner.Name() }
func (c *countingProblem) Direction() core.Direction           { return c.inner.Direction() }
func (c *countingProblem) NewGenome(r *rng.Source) core.Genome { return c.inner.NewGenome(r) }
func (c *countingProblem) Evaluate(g core.Genome) float64 {
	c.n.Add(1)
	return c.inner.Evaluate(g)
}

func freshPop(p core.Problem, n int, seed uint64) *core.Population {
	r := rng.New(seed)
	pop := core.NewPopulation(n)
	for i := 0; i < n; i++ {
		pop.Members = append(pop.Members, core.NewIndividual(p.NewGenome(r)))
	}
	return pop
}

func TestFarmEvaluatesEverything(t *testing.T) {
	p := &countingProblem{inner: problems.OneMax{N: 32}}
	f := NewFarm(1, Uniform(4))
	pop := freshPop(p, 50, 1)
	f.EvaluateAll(p, pop)
	for _, ind := range pop.Members {
		if !ind.Evaluated {
			t.Fatal("member left unevaluated")
		}
	}
	if f.Evaluations() != 50 {
		t.Fatalf("evals = %d, want 50", f.Evaluations())
	}
	if p.n.Load() != 50 {
		t.Fatalf("problem evaluated %d times", p.n.Load())
	}
}

func TestFarmSkipsAlreadyEvaluated(t *testing.T) {
	p := problems.OneMax{N: 8}
	f := NewFarm(2, Uniform(2))
	pop := freshPop(p, 10, 2)
	pop.Members[0].Fitness, pop.Members[0].Evaluated = 99, true
	f.EvaluateAll(p, pop)
	if pop.Members[0].Fitness != 99 {
		t.Fatal("re-evaluated an evaluated member")
	}
	if f.Evaluations() != 9 {
		t.Fatalf("evals = %d, want 9", f.Evaluations())
	}
}

func TestFarmFitnessCorrect(t *testing.T) {
	p := problems.OneMax{N: 64}
	f := NewFarm(3, Uniform(8))
	pop := freshPop(p, 40, 3)
	f.EvaluateAll(p, pop)
	for _, ind := range pop.Members {
		if ind.Fitness != p.Evaluate(ind.Genome) {
			t.Fatal("parallel fitness differs from direct evaluation")
		}
	}
}

func TestFarmWithTransientFailures(t *testing.T) {
	p := &countingProblem{inner: problems.OneMax{N: 32}}
	specs := []WorkerSpec{
		{Speed: 1, FailProb: 0.5}, // flaky but immortal
		{Speed: 1},
	}
	f := NewFarm(4, specs)
	pop := freshPop(p, 60, 4)
	f.EvaluateAll(p, pop)
	for _, ind := range pop.Members {
		if !ind.Evaluated {
			t.Fatal("failure handling lost a task")
		}
	}
	st := f.Stats()
	if st.Failures == 0 {
		t.Fatal("fault injection never fired at FailProb=0.5")
	}
	if st.Redispatched != st.Failures {
		t.Fatalf("redispatched %d != failures %d", st.Redispatched, st.Failures)
	}
	if st.Evaluations != 60 {
		t.Fatalf("evaluations %d", st.Evaluations)
	}
}

func TestFarmHardFailureKillsWorker(t *testing.T) {
	specs := []WorkerSpec{
		{Speed: 1, FailProb: 1.0, MaxFailures: 3}, // dies after 3 failures
		{Speed: 1},
	}
	f := NewFarm(5, specs)
	p := problems.OneMax{N: 16}
	pop := freshPop(p, 40, 5)
	f.EvaluateAll(p, pop)
	st := f.Stats()
	if st.DeadWorkers != 1 {
		t.Fatalf("dead workers = %d, want 1", st.DeadWorkers)
	}
	if st.TasksPerWorker[0] != 0 {
		t.Fatal("always-failing worker completed tasks")
	}
	for _, ind := range pop.Members {
		if !ind.Evaluated {
			t.Fatal("hard failure lost a task")
		}
	}
}

func TestFarmAllWorkersDeadMasterFallback(t *testing.T) {
	specs := []WorkerSpec{
		{FailProb: 1.0, MaxFailures: 1},
		{FailProb: 1.0, MaxFailures: 1},
	}
	f := NewFarm(6, specs)
	p := problems.OneMax{N: 16}
	pop := freshPop(p, 30, 6)
	f.EvaluateAll(p, pop) // must terminate and evaluate everything
	for _, ind := range pop.Members {
		if !ind.Evaluated {
			t.Fatal("master fallback did not complete the work")
		}
	}
	if f.Stats().DeadWorkers != 2 {
		t.Fatal("workers should both be dead")
	}
	// A second EvaluateAll goes straight to master fallback.
	pop2 := freshPop(p, 10, 7)
	f.EvaluateAll(p, pop2)
	for _, ind := range pop2.Members {
		if !ind.Evaluated {
			t.Fatal("second master-fallback run failed")
		}
	}
}

func TestFarmSelfSchedulingAdaptivity(t *testing.T) {
	// A dead-on-arrival worker takes no share; the healthy workers divide
	// the work — the adaptivity property (no static partitioning).
	specs := []WorkerSpec{
		{FailProb: 1.0, MaxFailures: 1},
		{Speed: 1},
		{Speed: 1},
	}
	f := NewFarm(7, specs)
	p := problems.OneMax{N: 16}
	pop := freshPop(p, 100, 8)
	f.EvaluateAll(p, pop)
	st := f.Stats()
	if st.TasksPerWorker[1]+st.TasksPerWorker[2] != 100 {
		t.Fatalf("healthy workers did %d + %d tasks, want 100 total",
			st.TasksPerWorker[1], st.TasksPerWorker[2])
	}
}

func TestMakespanModel(t *testing.T) {
	f := NewFarm(8, []WorkerSpec{{Speed: 1}, {Speed: 2}})
	// Simulate completed work by direct manipulation through EvaluateAll.
	p := problems.OneMax{N: 8}
	pop := freshPop(p, 90, 9)
	f.EvaluateAll(p, pop)
	st := f.Stats()
	total := st.TasksPerWorker[0] + st.TasksPerWorker[1]
	if total != 90 {
		t.Fatalf("total tasks %d", total)
	}
	ms := f.Makespan(1.0)
	// Makespan must be at least total/combined-speed and at most total.
	if ms < 30 || ms > 90 {
		t.Fatalf("makespan %v outside plausible [30,90]", ms)
	}
}

func TestFarmAsEvaluatorInsideGA(t *testing.T) {
	// Transparency: the generational GA runs unchanged on a parallel farm.
	farm := NewFarm(9, Uniform(4))
	e := ga.NewGenerational(ga.Config{
		Problem:   problems.OneMax{N: 48},
		PopSize:   40,
		Crossover: operators.Uniform{},
		Mutator:   operators.BitFlip{},
		Evaluator: farm,
		RNG:       rng.New(10),
	})
	res := ga.Run(e, ga.RunOptions{Stop: core.AnyOf{
		core.MaxGenerations(200),
		core.TargetFitness{Target: 48, Dir: core.Maximize},
	}})
	if !res.Solved {
		t.Fatalf("master-slave GA failed onemax: %v", res.BestFitness)
	}
	if farm.Evaluations() != res.Evaluations {
		t.Fatalf("farm evals %d != run evals %d", farm.Evaluations(), res.Evaluations)
	}
}

func TestFarmDeterministicFaultsPerSeed(t *testing.T) {
	// With a single worker, every task lands on its failure stream, so the
	// fault pattern is exactly reproducible per seed.
	run := func() int64 {
		f := NewFarm(42, []WorkerSpec{{FailProb: 0.3}})
		p := problems.OneMax{N: 8}
		pop := freshPop(p, 50, 11)
		f.EvaluateAll(p, pop)
		return f.Stats().Failures
	}
	a, b := run(), run()
	if a == 0 {
		t.Fatal("FailProb=0.3 produced no failures over 50+ attempts")
	}
	if a != b {
		t.Fatalf("same seed produced different fault patterns: %d vs %d", a, b)
	}
}

func TestNewFarmValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on empty worker list")
		}
	}()
	NewFarm(1, nil)
}

func TestUniformSpecs(t *testing.T) {
	specs := Uniform(5)
	if len(specs) != 5 {
		t.Fatal("wrong count")
	}
	for _, s := range specs {
		if s.Speed != 1 || s.FailProb != 0 || s.MaxFailures != 0 {
			t.Fatal("uniform spec not nominal")
		}
	}
}

func TestZeroSpeedNormalised(t *testing.T) {
	f := NewFarm(1, []WorkerSpec{{Speed: 0}})
	if f.specs[0].Speed != 1 {
		t.Fatal("zero speed not normalised to 1")
	}
}

// batchCountingProblem is OneMax with a BatchProblem seam and counters
// for both entry points, to pin which path the farm takes.
type batchCountingProblem struct {
	problems.OneMax
	scalar atomic.Int64
	batch  atomic.Int64
}

func (p *batchCountingProblem) Evaluate(g core.Genome) float64 {
	p.scalar.Add(1)
	return p.OneMax.Evaluate(g)
}

func (p *batchCountingProblem) EvaluateBatch(genomes []core.Genome, out []float64) {
	p.batch.Add(1)
	p.OneMax.EvaluateBatch(genomes, out)
}

func TestFarmBatchPathFaultFree(t *testing.T) {
	// Fault-free workers hand their whole slice to EvaluateBatch: one
	// batch call per worker, no scalar calls, identical fitness values.
	p := &batchCountingProblem{OneMax: problems.OneMax{N: 32}}
	f := NewFarm(1, Uniform(4))
	pop := freshPop(p, 40, 3)
	f.EvaluateAll(p, pop)

	if got := p.batch.Load(); got != 4 {
		t.Fatalf("batch calls = %d, want one per worker", got)
	}
	if p.scalar.Load() != 0 {
		t.Fatal("fault-free farm fell back to scalar Evaluate")
	}
	if f.Evaluations() != 40 {
		t.Fatalf("evals = %d, want 40", f.Evaluations())
	}
	for i, ind := range pop.Members {
		want := float64(ind.Genome.(*genome.BitString).OnesCount())
		if !ind.Evaluated || ind.Fitness != want {
			t.Fatalf("member %d: fitness %v, want %v", i, ind.Fitness, want)
		}
	}
}

func TestFarmBatchSkipsFaultyWorkers(t *testing.T) {
	// Workers with FailProb > 0 must stay on the per-task path: their
	// fault draws are part of the pinned reproducible scenarios.
	p := &batchCountingProblem{OneMax: problems.OneMax{N: 16}}
	specs := Uniform(2)
	specs[1].FailProb = 0.2
	f := NewFarm(7, specs)
	pop := freshPop(p, 30, 4)
	f.EvaluateAll(p, pop)

	if p.scalar.Load() == 0 {
		t.Fatal("faulty worker never took the scalar path")
	}
	for _, ind := range pop.Members {
		if !ind.Evaluated {
			t.Fatal("member left unevaluated")
		}
	}
}

func TestFarmBatchMatchesScalarFarm(t *testing.T) {
	// The batched farm must produce the same fitness assignment as a farm
	// whose problem has no batch seam.
	batched := freshPop(problems.OneMax{N: 64}, 50, 5)
	scalar := freshPop(problems.OneMax{N: 64}, 50, 5)

	NewFarm(1, Uniform(3)).EvaluateAll(problems.OneMax{N: 64}, batched)
	p := &countingProblem{inner: problems.OneMax{N: 64}} // wrapper hides the seam
	NewFarm(1, Uniform(3)).EvaluateAll(p, scalar)

	for i := range batched.Members {
		if batched.Members[i].Fitness != scalar.Members[i].Fitness {
			t.Fatalf("member %d: batched %v != scalar %v", i,
				batched.Members[i].Fitness, scalar.Members[i].Fitness)
		}
	}
}
