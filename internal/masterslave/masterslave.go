// Package masterslave implements the global (master–slave, centralized)
// parallel GA model: a single panmictic population whose fitness
// evaluations are farmed out to parallel workers.
//
// Gagné, Parizeau & Dubreuil (2003) — reviewed in §2 of the survey —
// argued this classic model beats islands on Beowulfs and heterogeneous
// workstation networks when the computing system offers *transparency,
// robustness and adaptivity*, and extended it to tolerate the *hard
// failures* of real networks. This package reproduces those three
// properties:
//
//   - transparency: the Farm is a drop-in core.Evaluator; the GA engine
//     does not know evaluations run in parallel;
//   - robustness: workers can fail per task and die permanently; failed
//     tasks are re-dispatched, and if every worker dies the master
//     evaluates the remainder itself, so EvaluateAll always completes;
//   - adaptivity: work is self-scheduled from a shared queue, so faster
//     workers automatically take more tasks (no static partitioning).
package masterslave

import (
	"sync"
	"sync/atomic"

	"pga/internal/core"
	"pga/internal/rng"
)

// WorkerSpec configures one slave.
type WorkerSpec struct {
	// Speed is the worker's relative throughput (1.0 = nominal); it only
	// affects the modelled makespan, not real execution.
	Speed float64
	// FailProb is the probability that any single task attempt fails on
	// this worker (a transient or fatal fault).
	FailProb float64
	// MaxFailures is the number of failures after which the worker dies
	// permanently (a hard failure); 0 means the worker never dies.
	MaxFailures int
}

// Uniform returns n identical fault-free workers of nominal speed.
func Uniform(n int) []WorkerSpec {
	specs := make([]WorkerSpec, n)
	for i := range specs {
		specs[i] = WorkerSpec{Speed: 1}
	}
	return specs
}

// Farm is a parallel fitness-evaluation farm implementing core.Evaluator.
type Farm struct {
	specs []WorkerSpec
	rngs  []*rng.Source

	evals    atomic.Int64
	attempts atomic.Int64
	failures atomic.Int64
	redisp   atomic.Int64

	mu        sync.Mutex
	tasksDone []int64 // per-worker successful tasks
	failCount []int   // per-worker failures so far
	dead      []bool
}

var _ core.Evaluator = (*Farm)(nil)

// NewFarm creates a farm with the given workers. Failure draws come from
// per-worker streams split from seed, so fault scenarios are reproducible.
func NewFarm(seed uint64, specs []WorkerSpec) *Farm {
	if len(specs) == 0 {
		panic("masterslave: at least one worker required")
	}
	master := rng.New(seed)
	f := &Farm{
		specs:     specs,
		rngs:      master.SplitN(len(specs)),
		tasksDone: make([]int64, len(specs)),
		failCount: make([]int, len(specs)),
		dead:      make([]bool, len(specs)),
	}
	for i, s := range specs {
		if s.Speed <= 0 {
			f.specs[i].Speed = 1
		}
	}
	return f
}

// Workers returns the number of configured workers.
func (f *Farm) Workers() int { return len(f.specs) }

// Evaluations implements core.Evaluator (successful evaluations only).
func (f *Farm) Evaluations() int64 { return f.evals.Load() }

// Stats is a snapshot of the farm's fault-tolerance counters.
type Stats struct {
	// Evaluations is the number of successful fitness evaluations.
	Evaluations int64
	// Attempts counts every task attempt including failed ones.
	Attempts int64
	// Failures counts failed attempts.
	Failures int64
	// Redispatched counts tasks that had to be re-queued after a failure.
	Redispatched int64
	// TasksPerWorker is each worker's successful task count.
	TasksPerWorker []int64
	// DeadWorkers is the number of permanently failed workers.
	DeadWorkers int
}

// Stats returns a snapshot of the farm counters.
func (f *Farm) Stats() Stats {
	f.mu.Lock()
	defer f.mu.Unlock()
	tpw := append([]int64(nil), f.tasksDone...)
	deadN := 0
	for _, d := range f.dead {
		if d {
			deadN++
		}
	}
	return Stats{
		Evaluations:    f.evals.Load(),
		Attempts:       f.attempts.Load(),
		Failures:       f.failures.Load(),
		Redispatched:   f.redisp.Load(),
		TasksPerWorker: tpw,
		DeadWorkers:    deadN,
	}
}

// Makespan returns the modelled wall-clock of the farm's work so far,
// assuming each successful task costs baseCost time units on a
// nominal-speed worker: the slowest worker's share dominates. This is how
// the fault-tolerance experiment reports "completion time" on a machine
// whose real core count cannot exhibit parallel speedup.
func (f *Farm) Makespan(baseCost float64) float64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	max := 0.0
	for i, n := range f.tasksDone {
		t := float64(n) * baseCost / f.specs[i].Speed
		if t > max {
			max = t
		}
	}
	return max
}

// aliveWorkers returns the indices of workers still alive.
func (f *Farm) aliveWorkers() []int {
	f.mu.Lock()
	defer f.mu.Unlock()
	var out []int
	for i, d := range f.dead {
		if !d {
			out = append(out, i)
		}
	}
	return out
}

// shares splits n tasks across the alive workers proportionally to their
// speeds (the master's adaptive load balancing); remainders go to the
// fastest workers first.
func (f *Farm) shares(n int, alive []int) []int {
	total := 0.0
	for _, w := range alive {
		total += f.specs[w].Speed
	}
	out := make([]int, len(alive))
	assigned := 0
	for k, w := range alive {
		out[k] = int(float64(n) * f.specs[w].Speed / total)
		assigned += out[k]
	}
	// Distribute the remainder in descending speed order.
	for assigned < n {
		best := 0
		for k := 1; k < len(alive); k++ {
			if f.specs[alive[k]].Speed > f.specs[alive[best]].Speed {
				best = k
			}
		}
		// Rotate the remainder across workers starting from the fastest.
		out[(best+assigned)%len(alive)]++
		assigned++
	}
	return out
}

// EvaluateAll implements core.Evaluator: each round it partitions the
// pending tasks across the alive workers proportionally to their speeds,
// runs the workers in parallel, re-queues failed tasks, and falls back to
// master-side evaluation if every worker has died. Task→worker assignment
// is deterministic, so fault scenarios are reproducible per seed.
func (f *Farm) EvaluateAll(p core.Problem, pop *core.Population) {
	pending := make([]int, 0, pop.Len())
	for i, ind := range pop.Members {
		if !ind.Evaluated {
			pending = append(pending, i)
		}
	}

	for len(pending) > 0 {
		alive := f.aliveWorkers()
		if len(alive) == 0 {
			// Robustness guarantee: the master itself finishes the job.
			for _, idx := range pending {
				ind := pop.Members[idx]
				ind.Fitness = p.Evaluate(ind.Genome)
				ind.Evaluated = true
				f.evals.Add(1)
				f.attempts.Add(1)
			}
			return
		}

		share := f.shares(len(pending), alive)
		failed := make([][]int, len(alive))
		var wg sync.WaitGroup
		off := 0
		for k, w := range alive {
			slice := pending[off : off+share[k]]
			off += share[k]
			wg.Add(1)
			go func(k, w int, slice []int) {
				defer wg.Done()
				failed[k] = f.worker(w, p, pop, slice)
			}(k, w, slice)
		}
		wg.Wait()

		pending = pending[:0]
		for _, fs := range failed {
			pending = append(pending, fs...)
			f.redisp.Add(int64(len(fs)))
		}
	}
}

// worker attempts every task in its slice, writing successful fitness
// values directly into the population (tasks are disjoint across workers).
// It returns the indices that failed. A worker that dies mid-slice reports
// the rest of its slice as failed without attempting it.
func (f *Farm) worker(w int, p core.Problem, pop *core.Population, slice []int) []int {
	spec := f.specs[w]
	r := f.rngs[w]
	// Fault-free workers draw nothing from their RNG stream, so a batch
	// problem can evaluate the whole slice in one call without perturbing
	// the reproducible fault scenarios of faulty configurations.
	if spec.FailProb == 0 {
		if bp, ok := p.(core.BatchProblem); ok {
			return f.workerBatch(w, bp, pop, slice)
		}
	}
	var failed []int
	for _, idx := range slice {
		f.mu.Lock()
		isDead := f.dead[w]
		f.mu.Unlock()
		if isDead {
			failed = append(failed, idx)
			continue
		}
		f.attempts.Add(1)
		if spec.FailProb > 0 && r.Chance(spec.FailProb) {
			f.failures.Add(1)
			f.mu.Lock()
			f.failCount[w]++
			if spec.MaxFailures > 0 && f.failCount[w] >= spec.MaxFailures {
				f.dead[w] = true
			}
			f.mu.Unlock()
			failed = append(failed, idx)
			continue
		}
		ind := pop.Members[idx]
		ind.Fitness = p.Evaluate(ind.Genome)
		ind.Evaluated = true
		f.evals.Add(1)
		f.mu.Lock()
		f.tasksDone[w]++
		f.mu.Unlock()
	}
	return failed
}

// workerBatch evaluates a fault-free worker's whole slice with one
// EvaluateBatch call (per-genome results are bit-identical to Evaluate
// by the BatchProblem contract, so the farm's output is unchanged).
func (f *Farm) workerBatch(w int, bp core.BatchProblem, pop *core.Population, slice []int) []int {
	if len(slice) == 0 {
		return nil
	}
	f.mu.Lock()
	isDead := f.dead[w]
	f.mu.Unlock()
	if isDead {
		// Mirror worker's per-task dead check: report the slice failed.
		return slice
	}
	genomes := make([]core.Genome, len(slice))
	out := make([]float64, len(slice))
	for k, idx := range slice {
		genomes[k] = pop.Members[idx].Genome
	}
	bp.EvaluateBatch(genomes, out)
	for k, idx := range slice {
		ind := pop.Members[idx]
		ind.Fitness = out[k]
		ind.Evaluated = true
	}
	n := int64(len(slice))
	f.attempts.Add(n)
	f.evals.Add(n)
	f.mu.Lock()
	f.tasksDone[w] += n
	f.mu.Unlock()
	return nil
}
