package stats

import (
	"math"
	"testing"

	"pga/internal/core"
	"pga/internal/genome"
	"pga/internal/rng"
)

func popOf(gs ...core.Genome) *core.Population {
	p := core.NewPopulation(len(gs))
	for _, g := range gs {
		ind := core.NewIndividual(g)
		ind.Evaluated = true
		p.Members = append(p.Members, ind)
	}
	return p
}

func TestDiversityEmptyAndSingleton(t *testing.T) {
	if Diversity(core.NewPopulation(0)) != 0 {
		t.Fatal("empty diversity not 0")
	}
	if Diversity(popOf(genome.NewBitString(8))) != 0 {
		t.Fatal("singleton diversity not 0")
	}
}

func TestBitDiversityConverged(t *testing.T) {
	a := genome.NewBitString(16)
	b := a.Clone()
	if d := Diversity(popOf(a, b, a.Clone(), b.Clone())); d != 0 {
		t.Fatalf("identical population diversity %v", d)
	}
}

func TestBitDiversityOpposite(t *testing.T) {
	a := genome.NewBitString(16)
	b := genome.NewBitString(16)
	for i := 0; i < b.Len(); i++ {
		b.Set(i, true)
	}
	// Two opposite strings: every pair disagrees everywhere → 1.0.
	if d := Diversity(popOf(a, b)); math.Abs(d-1) > 1e-12 {
		t.Fatalf("opposite-pair diversity %v, want 1", d)
	}
}

func TestBitDiversityRandomNearHalf(t *testing.T) {
	r := rng.New(1)
	pop := core.NewPopulation(50)
	for i := 0; i < 50; i++ {
		ind := core.NewIndividual(genome.RandomBitString(128, r))
		pop.Members = append(pop.Members, ind)
	}
	d := Diversity(pop)
	if d < 0.45 || d > 0.55 {
		t.Fatalf("random population diversity %v, want ≈0.5", d)
	}
}

func TestRealDiversity(t *testing.T) {
	same := genome.NewRealVector(4, -1, 1)
	if d := Diversity(popOf(same, same.Clone(), same.Clone())); d != 0 {
		t.Fatal("identical real population diversity not 0")
	}
	r := rng.New(2)
	pop := core.NewPopulation(50)
	for i := 0; i < 50; i++ {
		pop.Members = append(pop.Members, core.NewIndividual(genome.RandomRealVector(8, -1, 1, r)))
	}
	d := Diversity(pop)
	// Uniform on [-1,1]: std = 2/sqrt(12) ≈ 0.577; normalised by span 2 ≈ 0.289.
	if d < 0.2 || d > 0.4 {
		t.Fatalf("uniform real diversity %v, want ≈0.29", d)
	}
}

func TestPermDiversity(t *testing.T) {
	a := genome.IdentityPermutation(8)
	if d := Diversity(popOf(a, a.Clone())); d != 0 {
		t.Fatal("identical permutations diversity not 0")
	}
	r := rng.New(3)
	pop := core.NewPopulation(20)
	for i := 0; i < 20; i++ {
		pop.Members = append(pop.Members, core.NewIndividual(genome.RandomPermutation(12, r)))
	}
	d := Diversity(pop)
	if d < 0.7 { // random permutations disagree at ~(1 - 1/n) of positions
		t.Fatalf("random permutation diversity %v, want >0.7", d)
	}
}

func TestIntDiversity(t *testing.T) {
	same := genome.NewIntVector(6, 4)
	if d := Diversity(popOf(same, same.Clone(), same.Clone())); d != 0 {
		t.Fatal("identical int population diversity not 0")
	}
	r := rng.New(4)
	pop := core.NewPopulation(40)
	for i := 0; i < 40; i++ {
		pop.Members = append(pop.Members, core.NewIndividual(genome.RandomIntVector(10, 4, r)))
	}
	d := Diversity(pop)
	// Random card-4 genes: modal frequency ≈ 0.25–0.35 → diversity ≈ 0.65–0.75.
	if d < 0.55 || d > 0.8 {
		t.Fatalf("random int diversity %v", d)
	}
}

func TestDiversityDecreasesUnderSelection(t *testing.T) {
	// A converging GA's diversity must fall over time.
	r := rng.New(5)
	pop := core.NewPopulation(30)
	for i := 0; i < 30; i++ {
		pop.Members = append(pop.Members, core.NewIndividual(genome.RandomBitString(32, r)))
	}
	before := Diversity(pop)
	// Simulate convergence: replace half the population with copies of one.
	for i := 1; i < 15; i++ {
		pop.Members[i] = pop.Members[0].Clone()
	}
	after := Diversity(pop)
	if after >= before {
		t.Fatalf("diversity did not fall: %v -> %v", before, after)
	}
}

// TestBitDiversityMatchesHeterozygosityForm is the property test the
// bitDiversity comment points at: the pairwise XOR+popcount form must
// equal the per-locus heterozygosity form — Σ_l ones_l·(n−ones_l) pairs,
// scaled by 2/(n(n−1)L) — within float round-off, for odd lengths and
// population sizes alike.
func TestBitDiversityMatchesHeterozygosityForm(t *testing.T) {
	reference := func(pop *core.Population) float64 {
		n := pop.Len()
		length := pop.Members[0].Genome.Len()
		total := 0.0
		for l := 0; l < length; l++ {
			ones := 0
			for _, ind := range pop.Members {
				if ind.Genome.(*genome.BitString).Get(l) {
					ones++
				}
			}
			total += float64(ones) * float64(n-ones)
		}
		return 2 * total / (float64(n) * float64(n-1) * float64(length))
	}
	r := rng.New(6)
	for _, tc := range []struct{ n, length int }{
		{2, 1}, {3, 63}, {7, 64}, {10, 65}, {25, 130}, {40, 32},
	} {
		pop := core.NewPopulation(tc.n)
		for i := 0; i < tc.n; i++ {
			pop.Members = append(pop.Members, core.NewIndividual(genome.RandomBitString(tc.length, r)))
		}
		got, want := Diversity(pop), reference(pop)
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("n=%d L=%d: pairwise %v vs heterozygosity %v", tc.n, tc.length, got, want)
		}
	}
}
