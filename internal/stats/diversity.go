package stats

import (
	"math"

	"pga/internal/core"
	"pga/internal/genome"
)

// Diversity measures the genetic diversity of a population:
//
//   - bit strings: mean pairwise Hamming distance normalised by length
//     (0 = converged, 0.5 = random);
//   - real vectors: mean per-gene standard deviation normalised by the
//     gene's bound range;
//   - permutations: mean pairwise normalised positional disagreement;
//   - integer vectors: fraction of positions disagreeing with the modal
//     gene value.
//
// The survey's §1.2 lists "following various diversified search paths"
// among the gains of parallel GAs; the diversity ablation (A06) uses this
// to show structured populations hold diversity longer than panmictic
// ones. Returns 0 for empty or single-member populations.
func Diversity(pop *core.Population) float64 {
	if pop.Len() < 2 {
		return 0
	}
	switch pop.Members[0].Genome.(type) {
	case *genome.BitString:
		return bitDiversity(pop)
	case *genome.RealVector:
		return realDiversity(pop)
	case *genome.Permutation:
		return permDiversity(pop)
	case *genome.IntVector:
		return intDiversity(pop)
	default:
		return 0
	}
}

// bitDiversity computes the mean pairwise normalised Hamming distance
// directly on the packed words (XOR + popcount per word pair). The
// per-locus heterozygosity form this replaces — Σ_l 2·p·(1−p)·n/(n−1)/L
// — is the same quantity algebraically (each locus contributes its
// unordered disagreeing pairs, ones·(n−ones), to the integer sum below),
// and the property test in diversity_test.go holds the two within float
// round-off. The pair loop is O(n²·L/64) integer work with no float
// accumulation until the final division, vs O(n·L) bool loads before:
// the word layout wins for every population that fits a cache.
func bitDiversity(pop *core.Population) float64 {
	n := pop.Len()
	length := pop.Members[0].Genome.Len()
	if length == 0 {
		return 0
	}
	total := 0
	for i := 0; i < n; i++ {
		bi := pop.Members[i].Genome.(*genome.BitString)
		for j := i + 1; j < n; j++ {
			total += bi.Hamming(pop.Members[j].Genome.(*genome.BitString))
		}
	}
	return 2 * float64(total) / (float64(n) * float64(n-1) * float64(length))
}

func realDiversity(pop *core.Population) float64 {
	first := pop.Members[0].Genome.(*genome.RealVector)
	length := len(first.Genes)
	if length == 0 {
		return 0
	}
	n := float64(pop.Len())
	total := 0.0
	for l := 0; l < length; l++ {
		var sum, sumsq float64
		for _, ind := range pop.Members {
			g := ind.Genome.(*genome.RealVector).Genes[l]
			sum += g
			sumsq += g * g
		}
		mean := sum / n
		variance := sumsq/n - mean*mean
		if variance < 0 {
			variance = 0
		}
		span := first.Hi[l] - first.Lo[l]
		if span > 0 {
			total += math.Sqrt(variance) / span
		}
	}
	return total / float64(length)
}

func permDiversity(pop *core.Population) float64 {
	n := pop.Len()
	length := pop.Members[0].Genome.Len()
	if length == 0 {
		return 0
	}
	// Positional entropy proxy: fraction of pairs disagreeing per position.
	disagree := 0.0
	pairs := 0.0
	for i := 0; i < n; i++ {
		pi := pop.Members[i].Genome.(*genome.Permutation).Perm
		for j := i + 1; j < n; j++ {
			pj := pop.Members[j].Genome.(*genome.Permutation).Perm
			d := 0
			for k := 0; k < length; k++ {
				if pi[k] != pj[k] {
					d++
				}
			}
			disagree += float64(d) / float64(length)
			pairs++
		}
	}
	return disagree / pairs
}

func intDiversity(pop *core.Population) float64 {
	n := pop.Len()
	length := pop.Members[0].Genome.Len()
	if length == 0 {
		return 0
	}
	total := 0.0
	for l := 0; l < length; l++ {
		counts := map[int]int{}
		for _, ind := range pop.Members {
			counts[ind.Genome.(*genome.IntVector).Genes[l]]++
		}
		modal := 0
		for _, c := range counts {
			if c > modal {
				modal = c
			}
		}
		total += 1 - float64(modal)/float64(n)
	}
	return total / float64(length)
}
