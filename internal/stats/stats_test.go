package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{2, 4, 6, 8})
	if s.N != 4 || s.Mean != 5 || s.Min != 2 || s.Max != 8 || s.Median != 5 {
		t.Fatalf("summary wrong: %+v", s)
	}
	want := math.Sqrt(20.0 / 3.0) // sample std
	if math.Abs(s.Std-want) > 1e-12 {
		t.Fatalf("std %v, want %v", s.Std, want)
	}
}

func TestSummarizeOddMedian(t *testing.T) {
	s := Summarize([]float64{9, 1, 5})
	if s.Median != 5 {
		t.Fatalf("median %v", s.Median)
	}
}

func TestSummarizeEmptyAndSingleton(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 {
		t.Fatal("empty summary wrong")
	}
	s := Summarize([]float64{7})
	if s.N != 1 || s.Mean != 7 || s.Std != 0 || s.CI95() != 0 {
		t.Fatalf("singleton summary wrong: %+v", s)
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Summarize(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Summarize mutated its input")
	}
}

func TestCI95ShrinksWithN(t *testing.T) {
	small := Summarize([]float64{1, 2, 3, 4})
	var big []float64
	for i := 0; i < 16; i++ {
		big = append(big, []float64{1, 2, 3, 4}[i%4])
	}
	if Summarize(big).CI95() >= small.CI95() {
		t.Fatal("CI did not shrink with sample size")
	}
}

func TestHitRate(t *testing.T) {
	var h HitRate
	h.Record(true, 100)
	h.Record(false, 500)
	h.Record(true, 200)
	if h.Runs() != 3 || h.Hits() != 2 {
		t.Fatal("counts wrong")
	}
	if math.Abs(h.Rate()-2.0/3.0) > 1e-12 {
		t.Fatalf("rate %v", h.Rate())
	}
	if eff := h.Effort(); eff.Mean != 150 {
		t.Fatalf("effort mean %v", eff.Mean)
	}
	if h.String() == "" {
		t.Fatal("empty string")
	}
}

func TestHitRateEmpty(t *testing.T) {
	var h HitRate
	if h.Rate() != 0 {
		t.Fatal("empty rate not 0")
	}
	if !strings.Contains(h.String(), "0/0") {
		t.Fatalf("string %q", h.String())
	}
}

func TestLinearRegressionExact(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{1, 3, 5, 7} // y = 2x + 1
	slope, intercept := LinearRegression(xs, ys)
	if math.Abs(slope-2) > 1e-12 || math.Abs(intercept-1) > 1e-12 {
		t.Fatalf("fit (%v, %v)", slope, intercept)
	}
}

func TestLinearRegressionDegenerate(t *testing.T) {
	slope, intercept := LinearRegression(nil, nil)
	if slope != 0 || intercept != 0 {
		t.Fatal("empty regression not zero")
	}
	// All same x: slope 0, intercept = mean.
	slope, intercept = LinearRegression([]float64{2, 2}, []float64{1, 3})
	if slope != 0 || intercept != 2 {
		t.Fatalf("degenerate-x fit (%v, %v)", slope, intercept)
	}
}

func TestLinearRegressionPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	LinearRegression([]float64{1}, []float64{1, 2})
}

func TestLogisticFitRecoversCurve(t *testing.T) {
	// Generate a clean logistic and recover its growth rate.
	trueA, trueB := 99.0, 0.8
	var curve []float64
	for tt := 0; tt < 30; tt++ {
		curve = append(curve, 1/(1+trueA*math.Exp(-trueB*float64(tt))))
	}
	a, b := LogisticFit(curve)
	if math.Abs(b-trueB) > 0.01 || math.Abs(a-trueA)/trueA > 0.05 {
		t.Fatalf("fit a=%v b=%v, want a=%v b=%v", a, b, trueA, trueB)
	}
}

func TestLogisticFitFasterCurveHigherB(t *testing.T) {
	mk := func(b float64) []float64 {
		var c []float64
		for tt := 0; tt < 40; tt++ {
			c = append(c, 1/(1+50*math.Exp(-b*float64(tt))))
		}
		return c
	}
	_, bSlow := LogisticFit(mk(0.3))
	_, bFast := LogisticFit(mk(0.9))
	if bFast <= bSlow {
		t.Fatal("faster takeover did not yield larger growth rate")
	}
}

func TestLogisticFitDegenerate(t *testing.T) {
	a, b := LogisticFit([]float64{0, 1}) // nothing strictly inside (0,1)
	if a != 0 || b != 0 {
		t.Fatal("degenerate fit not zero")
	}
}

func TestHistogram(t *testing.T) {
	h := Histogram([]float64{0.1, 0.2, 0.9, 0.5, -5, 99}, 4, 0, 1)
	// 0.1, 0.2, -5(clamped) → bucket 0; 0.5 → bucket 2; 0.9, 99(clamped) → bucket 3.
	if h[0] != 3 || h[1] != 0 || h[2] != 1 || h[3] != 2 {
		t.Fatalf("histogram %v", h)
	}
	if got := Histogram(nil, 0, 0, 1); len(got) != 0 {
		t.Fatal("zero-bucket histogram wrong")
	}
}

func TestSparkline(t *testing.T) {
	s := Sparkline([]float64{0, 0.5, 1})
	if len([]rune(s)) != 3 {
		t.Fatalf("sparkline %q", s)
	}
	r := []rune(s)
	if r[0] != '▁' || r[2] != '█' {
		t.Fatalf("sparkline ends wrong: %q", s)
	}
	if Sparkline(nil) != "" {
		t.Fatal("empty sparkline not empty")
	}
	// Constant series renders lowest bar everywhere.
	for _, c := range Sparkline([]float64{2, 2, 2}) {
		if c != '▁' {
			t.Fatal("constant sparkline not flat")
		}
	}
}

func TestDownsample(t *testing.T) {
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i)
	}
	d := Downsample(xs, 10)
	if len(d) != 10 {
		t.Fatalf("downsampled to %d", len(d))
	}
	if d[0] != 0 || d[9] != 99 {
		t.Fatalf("endpoints lost: %v", d)
	}
	// Short inputs pass through.
	if got := Downsample(xs[:5], 10); len(got) != 5 {
		t.Fatal("short input modified")
	}
}

func TestSummarizeMeanWithinBounds(t *testing.T) {
	check := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e12 {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		s := Summarize(xs)
		return s.Mean >= s.Min-1e-9 && s.Mean <= s.Max+1e-9 &&
			s.Median >= s.Min && s.Median <= s.Max
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
