// Package stats provides the statistical helpers used by the experiment
// harness: summary statistics with confidence intervals, hit-rate
// (efficacy) tracking, logistic growth-curve fitting for takeover curves,
// and histogram utilities.
//
// "Efficacy" follows the survey's footnote 2: "a measure that calculates
// the number of hits in finding a solution of a problem."
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds the summary statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	Std    float64 // sample standard deviation (n-1)
	Min    float64
	Max    float64
	Median float64
}

// Summarize computes summary statistics; it returns a zero Summary for an
// empty sample.
func Summarize(xs []float64) Summary {
	n := len(xs)
	if n == 0 {
		return Summary{}
	}
	s := Summary{N: n, Min: xs[0], Max: xs[0]}
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(n)
	if n > 1 {
		ss := 0.0
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(n-1))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if n%2 == 1 {
		s.Median = sorted[n/2]
	} else {
		s.Median = (sorted[n/2-1] + sorted[n/2]) / 2
	}
	return s
}

// CI95 returns the half-width of the 95% confidence interval of the mean
// (normal approximation; adequate for the ≥20-run experiments here).
func (s Summary) CI95() float64 {
	if s.N < 2 {
		return 0
	}
	return 1.96 * s.Std / math.Sqrt(float64(s.N))
}

// String implements fmt.Stringer.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g ±%.3g std=%.3g [%.4g, %.4g]",
		s.N, s.Mean, s.CI95(), s.Std, s.Min, s.Max)
}

// HitRate is an efficacy accumulator: the fraction of runs that found the
// optimum, with the effort statistics of the successful runs.
type HitRate struct {
	runs    int
	hits    int
	efforts []float64 // evaluations-to-solution of successful runs
}

// Record adds one run's outcome.
func (h *HitRate) Record(solved bool, evaluations int64) {
	h.runs++
	if solved {
		h.hits++
		h.efforts = append(h.efforts, float64(evaluations))
	}
}

// Runs returns the number of recorded runs.
func (h *HitRate) Runs() int { return h.runs }

// Hits returns the number of successful runs.
func (h *HitRate) Hits() int { return h.hits }

// Rate returns hits/runs (0 for no runs).
func (h *HitRate) Rate() float64 {
	if h.runs == 0 {
		return 0
	}
	return float64(h.hits) / float64(h.runs)
}

// Effort returns the summary of evaluations-to-solution over successful
// runs (the standard "expected effort on success" report).
func (h *HitRate) Effort() Summary { return Summarize(h.efforts) }

// String implements fmt.Stringer.
func (h *HitRate) String() string {
	if h.hits == 0 {
		return fmt.Sprintf("%d/%d hits", h.hits, h.runs)
	}
	return fmt.Sprintf("%d/%d hits, effort %s", h.hits, h.runs, h.Effort())
}

// LogisticFit fits p(t) = 1 / (1 + a·e^(−b·t)) to a takeover curve by
// linear regression on the logit transform, returning (a, b). b is the
// growth rate — Giacobini's selection-intensity proxy: larger b = higher
// selection pressure.
func LogisticFit(curve []float64) (a, b float64) {
	// logit(p) = ln(p/(1-p)) = −ln a + b·t : linear in t.
	var xs, ys []float64
	for t, p := range curve {
		if p <= 0 || p >= 1 {
			continue // logit undefined at the extremes
		}
		xs = append(xs, float64(t))
		ys = append(ys, math.Log(p/(1-p)))
	}
	if len(xs) < 2 {
		return 0, 0
	}
	slope, intercept := LinearRegression(xs, ys)
	return math.Exp(-intercept), slope
}

// LinearRegression returns the least-squares slope and intercept of y on x.
// It panics if the slices differ in length.
func LinearRegression(xs, ys []float64) (slope, intercept float64) {
	if len(xs) != len(ys) {
		panic("stats: LinearRegression length mismatch")
	}
	n := float64(len(xs))
	if n == 0 {
		return 0, 0
	}
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0, sy / n
	}
	slope = (n*sxy - sx*sy) / den
	intercept = (sy - slope*sx) / n
	return
}

// Histogram counts xs into equal-width buckets over [min, max].
func Histogram(xs []float64, buckets int, min, max float64) []int {
	out := make([]int, buckets)
	if buckets == 0 || max <= min {
		return out
	}
	w := (max - min) / float64(buckets)
	for _, x := range xs {
		k := int((x - min) / w)
		if k < 0 {
			k = 0
		}
		if k >= buckets {
			k = buckets - 1
		}
		out[k]++
	}
	return out
}

// Sparkline renders a sequence as a compact unicode bar chart, used by the
// experiment harness to print curve shapes in tables.
func Sparkline(xs []float64) string {
	if len(xs) == 0 {
		return ""
	}
	bars := []rune("▁▂▃▄▅▆▇█")
	min, max := xs[0], xs[0]
	for _, x := range xs {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	out := make([]rune, len(xs))
	for i, x := range xs {
		k := 0
		if max > min {
			k = int((x - min) / (max - min) * float64(len(bars)-1))
		}
		out[i] = bars[k]
	}
	return string(out)
}

// Downsample reduces xs to at most n points by uniform striding (keeping
// the final point), for sparkline rendering of long traces.
func Downsample(xs []float64, n int) []float64 {
	if n <= 0 || len(xs) <= n {
		return xs
	}
	out := make([]float64, 0, n)
	step := float64(len(xs)-1) / float64(n-1)
	for i := 0; i < n; i++ {
		out = append(out, xs[int(float64(i)*step+0.5)])
	}
	return out
}
