// Package equiv pins the seeded evolution trajectories of every engine
// family as golden testdata. The zero-allocation hot-path rework (double
// buffering, in-place operators, per-engine scratch) is a pure
// mechanical-sympathy change: for a given seed it must consume the exact
// same RNG draws and produce bit-for-bit identical best-fitness traces.
// TestGoldenTraces is the proof; `pgalint -tracecover` audits this
// scenario table against the declared equivalence pairs and the operator
// registry, which is why the table lives in a non-test file and each
// scenario names the operators it exercises.
package equiv

import (
	"pga/internal/cellular"
	"pga/internal/core"
	"pga/internal/ga"
	"pga/internal/island"
	"pga/internal/migration"
	"pga/internal/operators"
	"pga/internal/problems"
	"pga/internal/rng"
	"pga/internal/topology"
)

// Trace is one scenario's recorded trajectory: the per-generation global
// best fitness plus the final evaluation count. Fitness values are
// stored as float64 in JSON, which round-trips exactly, so comparison is
// bit-for-bit.
type Trace struct {
	Best        []float64 `json:"best"`
	Evaluations int64     `json:"evaluations"`
}

// Scenario is one pinned configuration: a stable golden-file key, the
// operator type names its trajectory exercises (tracecover's coverage
// evidence), and the runner.
type Scenario struct {
	Name string
	Ops  []string
	Run  func() Trace
}

// gens is the pinned trajectory length of every scenario.
const gens = 20

// engineTrace runs eng for gens steps recording the best fitness after
// every step (including the initial population at index 0).
func engineTrace(eng ga.Engine) Trace {
	dir := eng.Problem().Direction()
	tr := Trace{Best: make([]float64, 0, gens+1)}
	tr.Best = append(tr.Best, eng.Population().BestFitness(dir))
	for g := 0; g < gens; g++ {
		eng.Step()
		tr.Best = append(tr.Best, eng.Population().BestFitness(dir))
	}
	tr.Evaluations = eng.Evaluations()
	return tr
}

// islandTrace runs an island model and converts its Trace to a trace.
func islandTrace(res *island.Result) Trace {
	tr := Trace{Best: make([]float64, 0, len(res.Trace))}
	for _, p := range res.Trace {
		tr.Best = append(tr.Best, p.Best)
	}
	tr.Evaluations = res.Evaluations
	return tr
}

// opNames renders operator values to their registry type names.
func opNames(ops ...any) []string {
	out := make([]string, 0, len(ops))
	for _, op := range ops {
		out = append(out, operators.OperatorTypeName(op))
	}
	return out
}

// withKPoint appends "KPoint" to a scenario's operator list: OnePoint
// and TwoPoint delegate their Cross/CrossInto to KPoint, so their
// trajectories exercise the KPoint pair too.
func withKPoint(ops []string) []string { return append(ops, "KPoint") }

// Scenarios enumerates every engine family and operator combination
// whose trajectory is pinned. Names are stable keys in the golden file.
func Scenarios() []Scenario {
	qap := problems.NewQAP(12, 7)
	return []Scenario{
		// Generational engine across representations and operators.
		{
			Name: "generational/onemax-1point-tournament",
			Ops:  withKPoint(opNames(operators.Tournament{}, operators.OnePoint{}, operators.BitFlip{})),
			Run: func() Trace {
				return engineTrace(ga.NewGenerational(ga.Config{
					Problem: problems.OneMax{N: 64}, PopSize: 40,
					Selector:  operators.Tournament{K: 2},
					Crossover: operators.OnePoint{}, Mutator: operators.BitFlip{},
					RNG: rng.New(11),
				}))
			},
		},
		{
			Name: "generational/onemax-uniform-gap-elitism",
			Ops:  opNames(operators.Tournament{}, operators.Uniform{}, operators.BitFlip{}),
			Run: func() Trace {
				return engineTrace(ga.NewGenerational(ga.Config{
					Problem: problems.OneMax{N: 64}, PopSize: 41, // odd: exercises the discarded-offspring path
					Selector:  operators.Tournament{K: 3},
					Crossover: operators.Uniform{}, Mutator: operators.BitFlip{},
					GenGap: 0.5, Elitism: 4,
					RNG: rng.New(12),
				}))
			},
		},
		{
			Name: "generational/onemax-2point-roulette",
			Ops:  withKPoint(opNames(operators.Roulette{}, operators.TwoPoint{}, operators.BitFlip{})),
			Run: func() Trace {
				return engineTrace(ga.NewGenerational(ga.Config{
					Problem: problems.OneMax{N: 48}, PopSize: 30,
					Selector:  operators.Roulette{},
					Crossover: operators.TwoPoint{}, Mutator: operators.BitFlip{},
					RNG: rng.New(13),
				}))
			},
		},
		{
			Name: "generational/sphere-sbx-polynomial",
			Ops:  opNames(operators.Tournament{}, operators.SBX{}, operators.Polynomial{}),
			Run: func() Trace {
				return engineTrace(ga.NewGenerational(ga.Config{
					Problem: problems.Sphere(8), PopSize: 30,
					Selector:  operators.Tournament{K: 3},
					Crossover: operators.SBX{}, Mutator: operators.Polynomial{},
					RNG: rng.New(14),
				}))
			},
		},
		{
			Name: "generational/sphere-blx-gauss-rank",
			Ops:  opNames(operators.LinearRank{}, operators.BLX{}, operators.Gaussian{}),
			Run: func() Trace {
				return engineTrace(ga.NewGenerational(ga.Config{
					Problem: problems.Sphere(6), PopSize: 24,
					Selector:  operators.LinearRank{},
					Crossover: operators.BLX{}, Mutator: operators.Gaussian{},
					RNG: rng.New(15),
				}))
			},
		},
		{
			Name: "generational/rastrigin-arith-reset-trunc",
			Ops:  opNames(operators.Truncation{}, operators.Arithmetic{}, operators.UniformReset{}),
			Run: func() Trace {
				return engineTrace(ga.NewGenerational(ga.Config{
					Problem: problems.Rastrigin(6), PopSize: 24,
					Selector:  operators.Truncation{},
					Crossover: operators.Arithmetic{}, Mutator: operators.UniformReset{},
					RNG: rng.New(16),
				}))
			},
		},
		{
			Name: "generational/qap-ox-inversion",
			Ops:  opNames(operators.Tournament{}, operators.OX{}, operators.Inversion{}),
			Run: func() Trace {
				return engineTrace(ga.NewGenerational(ga.Config{
					Problem: qap, PopSize: 30,
					Selector:  operators.Tournament{K: 2},
					Crossover: operators.OX{}, Mutator: operators.Inversion{},
					RNG: rng.New(17),
				}))
			},
		},
		{
			Name: "generational/qap-pmx-swap",
			Ops:  opNames(operators.Tournament{}, operators.PMX{}, operators.Swap{}),
			Run: func() Trace {
				return engineTrace(ga.NewGenerational(ga.Config{
					Problem: qap, PopSize: 30,
					Selector:  operators.Tournament{K: 2},
					Crossover: operators.PMX{}, Mutator: operators.Swap{},
					RNG: rng.New(18),
				}))
			},
		},
		{
			Name: "generational/qap-cx-scramble",
			Ops:  opNames(operators.Tournament{}, operators.CX{}, operators.Scramble{}),
			Run: func() Trace {
				return engineTrace(ga.NewGenerational(ga.Config{
					Problem: qap, PopSize: 30,
					Selector:  operators.Tournament{K: 2},
					Crossover: operators.CX{}, Mutator: operators.Scramble{},
					RNG: rng.New(19),
				}))
			},
		},
		{
			Name: "generational/qap-erx-insertion",
			Ops:  opNames(operators.Tournament{}, operators.ERX{}, operators.Insertion{}),
			Run: func() Trace {
				return engineTrace(ga.NewGenerational(ga.Config{
					Problem: qap, PopSize: 20,
					Selector:  operators.Tournament{K: 2},
					Crossover: operators.ERX{}, Mutator: operators.Insertion{},
					RNG: rng.New(20),
				}))
			},
		},
		// Pins the in-place ERX path (PR 4) under rank selection, whose
		// scratch-based ranking shares the same Scratch as the ERX
		// adjacency table.
		{
			Name: "generational/qap-erx-rank-swap",
			Ops:  opNames(operators.LinearRank{}, operators.ERX{}, operators.Swap{}),
			Run: func() Trace {
				return engineTrace(ga.NewGenerational(ga.Config{
					Problem: qap, PopSize: 24,
					Selector:  operators.LinearRank{},
					Crossover: operators.ERX{}, Mutator: operators.Swap{},
					RNG: rng.New(25),
				}))
			},
		},

		// Word-wise operators on the packed representation. These draw one
		// uint64 per 64-bit word rather than one decision per bit, so they
		// have their own pinned trajectories (intentionally different RNG
		// consumption from the bit-wise operators above).
		{
			Name: "generational/onemax-uniformword-blockflip",
			Ops:  opNames(operators.Tournament{}, operators.UniformWord{}, operators.BlockFlip{}),
			Run: func() Trace {
				return engineTrace(ga.NewGenerational(ga.Config{
					Problem: problems.OneMax{N: 96}, PopSize: 40,
					Selector:  operators.Tournament{K: 2},
					Crossover: operators.UniformWord{}, Mutator: operators.BlockFlip{},
					RNG: rng.New(51),
				}))
			},
		},
		{
			Name: "generational/onemax-kpointword-blockflip",
			Ops:  opNames(operators.Tournament{}, operators.KPointWord{}, operators.BlockFlip{}),
			Run: func() Trace {
				return engineTrace(ga.NewGenerational(ga.Config{
					Problem: problems.OneMax{N: 100}, PopSize: 40, // N % 64 != 0: tail-word path
					Selector:  operators.Tournament{K: 2},
					Crossover: operators.KPointWord{K: 2}, Mutator: operators.BlockFlip{K: 5},
					RNG: rng.New(52),
				}))
			},
		},
		{
			Name: "steadystate/royalroad-uniformword-blockflip",
			Ops:  opNames(operators.Tournament{}, operators.UniformWord{}, operators.BlockFlip{}),
			Run: func() Trace {
				return engineTrace(ga.NewSteadyState(ga.Config{
					Problem: problems.RoyalRoad{Blocks: 8, K: 8}, PopSize: 40,
					Selector:  operators.Tournament{K: 2},
					Crossover: operators.UniformWord{}, Mutator: operators.BlockFlip{},
					RNG: rng.New(53),
				}, true))
			},
		},
		{
			Name: "cellular/onemax-kpointword-sync-L5",
			Ops:  opNames(operators.KPointWord{}, operators.BlockFlip{}),
			Run: func() Trace {
				return engineTrace(cellular.New(cellular.Config{
					Problem: problems.OneMax{N: 72}, Rows: 6, Cols: 6,
					Crossover: operators.KPointWord{K: 1}, Mutator: operators.BlockFlip{},
					Update: cellular.Synchronous, Neighborhood: cellular.VonNeumann,
					RNG: rng.New(54),
				}))
			},
		},

		// Steady-state engine, both replacement policies.
		{
			Name: "steadystate/onemax-worst",
			Ops:  opNames(operators.Tournament{}, operators.Uniform{}, operators.BitFlip{}),
			Run: func() Trace {
				return engineTrace(ga.NewSteadyState(ga.Config{
					Problem: problems.OneMax{N: 64}, PopSize: 40,
					Selector:  operators.Tournament{K: 2},
					Crossover: operators.Uniform{}, Mutator: operators.BitFlip{},
					RNG: rng.New(21),
				}, true))
			},
		},
		{
			Name: "steadystate/onemax-random",
			Ops:  withKPoint(opNames(operators.Roulette{}, operators.OnePoint{}, operators.BitFlip{})),
			Run: func() Trace {
				return engineTrace(ga.NewSteadyState(ga.Config{
					Problem: problems.OneMax{N: 64}, PopSize: 40,
					Selector:  operators.Roulette{},
					Crossover: operators.OnePoint{}, Mutator: operators.BitFlip{},
					RNG: rng.New(22),
				}, false))
			},
		},
		{
			Name: "steadystate/sphere-worst",
			Ops:  opNames(operators.Tournament{}, operators.SBX{}, operators.Polynomial{}),
			Run: func() Trace {
				return engineTrace(ga.NewSteadyState(ga.Config{
					Problem: problems.Sphere(8), PopSize: 30,
					Selector:  operators.Tournament{K: 3},
					Crossover: operators.SBX{}, Mutator: operators.Polynomial{},
					RNG: rng.New(23),
				}, true))
			},
		},

		// Shared-memory parallel-reproduction engine: the trace must be
		// identical for any worker count with the same seed split, so pin
		// two counts.
		{
			Name: "parallel/onemax-4workers",
			Ops:  opNames(operators.Tournament{}, operators.Uniform{}, operators.BitFlip{}),
			Run: func() Trace {
				return engineTrace(ga.NewParallelGenerational(ga.Config{
					Problem: problems.OneMax{N: 64}, PopSize: 40,
					Selector:  operators.Tournament{K: 2},
					Crossover: operators.Uniform{}, Mutator: operators.BitFlip{},
					RNG: rng.New(24),
				}, 4))
			},
		},
		{
			Name: "parallel/onemax-1worker",
			Ops:  opNames(operators.Tournament{}, operators.Uniform{}, operators.BitFlip{}),
			Run: func() Trace {
				return engineTrace(ga.NewParallelGenerational(ga.Config{
					Problem: problems.OneMax{N: 64}, PopSize: 40,
					Selector:  operators.Tournament{K: 2},
					Crossover: operators.Uniform{}, Mutator: operators.BitFlip{},
					RNG: rng.New(24),
				}, 1))
			},
		},

		// Cellular engine: every update policy, all neighbourhoods.
		{
			Name: "cellular/onemax-sync-L5",
			Ops:  withKPoint(opNames(operators.OnePoint{}, operators.BitFlip{})),
			Run: func() Trace {
				return engineTrace(cellular.New(cellular.Config{
					Problem: problems.OneMax{N: 48}, Rows: 6, Cols: 6,
					Crossover: operators.OnePoint{}, Mutator: operators.BitFlip{},
					Update: cellular.Synchronous, Neighborhood: cellular.VonNeumann,
					RNG: rng.New(31),
				}))
			},
		},
		{
			Name: "cellular/onemax-ls-C9",
			Ops:  opNames(operators.Uniform{}, operators.BitFlip{}),
			Run: func() Trace {
				return engineTrace(cellular.New(cellular.Config{
					Problem: problems.OneMax{N: 48}, Rows: 6, Cols: 6,
					Crossover: operators.Uniform{}, Mutator: operators.BitFlip{},
					Update: cellular.LineSweep, Neighborhood: cellular.Moore,
					RNG: rng.New(32),
				}))
			},
		},
		{
			Name: "cellular/onemax-frs-L9",
			Ops:  withKPoint(opNames(operators.TwoPoint{}, operators.BitFlip{})),
			Run: func() Trace {
				return engineTrace(cellular.New(cellular.Config{
					Problem: problems.OneMax{N: 48}, Rows: 6, Cols: 6,
					Crossover: operators.TwoPoint{}, Mutator: operators.BitFlip{},
					Update: cellular.FixedRandomSweep, Neighborhood: cellular.Linear9,
					RNG: rng.New(33),
				}))
			},
		},
		{
			Name: "cellular/onemax-nrs-L5",
			Ops:  opNames(operators.Uniform{}, operators.BitFlip{}),
			Run: func() Trace {
				return engineTrace(cellular.New(cellular.Config{
					Problem: problems.OneMax{N: 48}, Rows: 6, Cols: 6,
					Crossover: operators.Uniform{}, Mutator: operators.BitFlip{},
					Update: cellular.NewRandomSweep, Neighborhood: cellular.VonNeumann,
					RNG: rng.New(34),
				}))
			},
		},
		{
			Name: "cellular/sphere-uc-L5",
			Ops:  opNames(operators.BLX{}, operators.Gaussian{}),
			Run: func() Trace {
				return engineTrace(cellular.New(cellular.Config{
					Problem: problems.Sphere(6), Rows: 6, Cols: 6,
					Crossover: operators.BLX{}, Mutator: operators.Gaussian{},
					Update: cellular.UniformChoice, Neighborhood: cellular.VonNeumann,
					RNG: rng.New(35),
				}))
			},
		},

		// Island model: lockstep-sequential and sync-parallel execution of
		// the same configuration must both replay (each mode is pinned
		// separately — their RNG usage is intentionally not compared).
		{
			Name: "islands/sequential-ring-generational",
			Ops:  opNames(operators.Tournament{}, operators.Uniform{}, operators.BitFlip{}),
			Run: func() Trace {
				m := island.New(island.Config{
					Topology: topology.Ring(4),
					Policy:   migration.Policy{Interval: 5, Count: 2},
					NewEngine: func(_ int, r *rng.Source) ga.Engine {
						return ga.NewGenerational(ga.Config{
							Problem: problems.OneMax{N: 64}, PopSize: 20,
							Selector:  operators.Tournament{K: 2},
							Crossover: operators.Uniform{}, Mutator: operators.BitFlip{},
							RNG: r,
						})
					},
					Seed: 41,
				})
				return islandTrace(m.RunSequential(core.MaxGenerations(gens), true))
			},
		},
		{
			Name: "islands/syncparallel-ring-generational",
			Ops:  opNames(operators.Tournament{}, operators.Uniform{}, operators.BitFlip{}),
			Run: func() Trace {
				m := island.New(island.Config{
					Topology: topology.Ring(4),
					Policy:   migration.Policy{Interval: 5, Count: 2, Sync: true},
					NewEngine: func(_ int, r *rng.Source) ga.Engine {
						return ga.NewGenerational(ga.Config{
							Problem: problems.OneMax{N: 64}, PopSize: 20,
							Selector:  operators.Tournament{K: 2},
							Crossover: operators.Uniform{}, Mutator: operators.BitFlip{},
							RNG: r,
						})
					},
					Seed: 41,
				})
				return islandTrace(m.RunParallel(gens, true))
			},
		},
		{
			Name: "islands/sequential-biring-steadystate",
			Ops:  opNames(operators.Tournament{}, operators.SBX{}, operators.Polynomial{}),
			Run: func() Trace {
				m := island.New(island.Config{
					Topology: topology.BiRing(3),
					Policy:   migration.Policy{Interval: 4, Count: 1},
					NewEngine: func(_ int, r *rng.Source) ga.Engine {
						return ga.NewSteadyState(ga.Config{
							Problem: problems.Sphere(6), PopSize: 16,
							Selector:  operators.Tournament{K: 2},
							Crossover: operators.SBX{}, Mutator: operators.Polynomial{},
							RNG: r,
						}, true)
					},
					Seed: 42,
				})
				return islandTrace(m.RunSequential(core.MaxGenerations(gens), true))
			},
		},
		{
			Name: "islands/sequential-ring-cellular",
			Ops:  opNames(operators.Uniform{}, operators.BitFlip{}),
			Run: func() Trace {
				m := island.New(island.Config{
					Topology: topology.Ring(3),
					Policy:   migration.Policy{Interval: 5, Count: 2},
					NewEngine: func(_ int, r *rng.Source) ga.Engine {
						return cellular.New(cellular.Config{
							Problem: problems.OneMax{N: 48}, Rows: 4, Cols: 4,
							Crossover: operators.Uniform{}, Mutator: operators.BitFlip{},
							Update: cellular.LineSweep,
							RNG:    r,
						})
					},
					Seed: 43,
				})
				return islandTrace(m.RunSequential(core.MaxGenerations(gens), true))
			},
		},
	}
}
