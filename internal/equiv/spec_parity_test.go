package equiv

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"pga/internal/core"
	"pga/internal/spec"
)

// specScenarios maps golden-trace scenario names to the RunSpec document
// that must rebuild the identical runtime. TestSpecBuildParity replays
// each through spec.Build and requires the trajectory to be bit-for-bit
// identical to the pinned golden trace — the draw-identity proof of the
// spec layer: going through Parse/Validate/Build consumes exactly the
// same RNG draws as the hand-wired construction in scenarios.go.
var specScenarios = map[string]string{
	"generational/onemax-1point-tournament": `{
		"model": "generational",
		"problem": {"name": "onemax", "size": 64},
		"engine": {
			"pop": 40,
			"selector": {"name": "tournament", "params": {"k": 2}},
			"crossover": {"name": "onepoint"},
			"mutator": {"name": "bitflip"}
		},
		"seed": 11
	}`,
	"generational/onemax-uniform-gap-elitism": `{
		"model": "generational",
		"problem": {"name": "onemax", "size": 64},
		"engine": {
			"pop": 41,
			"selector": {"name": "tournament", "params": {"k": 3}},
			"crossover": {"name": "uniform"},
			"mutator": {"name": "bitflip"},
			"gen_gap": 0.5,
			"elitism": 4
		},
		"seed": 12
	}`,
	"generational/qap-pmx-swap": `{
		"model": "generational",
		"problem": {"name": "qap", "size": 12, "seed": 7},
		"engine": {
			"pop": 30,
			"selector": {"name": "tournament", "params": {"k": 2}},
			"crossover": {"name": "pmx"},
			"mutator": {"name": "swap"}
		},
		"seed": 18
	}`,
	"steadystate/onemax-worst": `{
		"model": "steadystate",
		"problem": {"name": "onemax", "size": 64},
		"engine": {
			"pop": 40,
			"selector": {"name": "tournament", "params": {"k": 2}},
			"crossover": {"name": "uniform"},
			"mutator": {"name": "bitflip"}
		},
		"seed": 21
	}`,
	"steadystate/onemax-random": `{
		"model": "steadystate",
		"problem": {"name": "onemax", "size": 64},
		"engine": {
			"pop": 40,
			"selector": {"name": "roulette"},
			"crossover": {"name": "onepoint"},
			"mutator": {"name": "bitflip"},
			"replace": "random"
		},
		"seed": 22
	}`,
	"parallel/onemax-4workers": `{
		"model": "parallel",
		"problem": {"name": "onemax", "size": 64},
		"engine": {
			"pop": 40,
			"selector": {"name": "tournament", "params": {"k": 2}},
			"crossover": {"name": "uniform"},
			"mutator": {"name": "bitflip"},
			"workers": 4
		},
		"seed": 24
	}`,
	"cellular/onemax-ls-C9": `{
		"model": "cellular",
		"problem": {"name": "onemax", "size": 48},
		"engine": {
			"crossover": {"name": "uniform"},
			"mutator": {"name": "bitflip"},
			"grid": {"rows": 6, "cols": 6, "update": "ls", "neighborhood": "c9"}
		},
		"seed": 32
	}`,
	"islands/sequential-ring-generational": `{
		"model": "islands",
		"problem": {"name": "onemax", "size": 64},
		"engine": {
			"pop": 20,
			"selector": {"name": "tournament", "params": {"k": 2}},
			"crossover": {"name": "uniform"},
			"mutator": {"name": "bitflip"}
		},
		"islands": {
			"demes": 4,
			"topology": "ring",
			"migration": {"interval": 5, "count": 2}
		},
		"seed": 41
	}`,
	"islands/sequential-biring-steadystate": `{
		"model": "islands",
		"problem": {"name": "sphere", "size": 6},
		"engine": {
			"type": "steadystate",
			"pop": 16,
			"selector": {"name": "tournament", "params": {"k": 2}},
			"crossover": {"name": "sbx"},
			"mutator": {"name": "polynomial"}
		},
		"islands": {
			"demes": 3,
			"topology": "biring",
			"migration": {"interval": 4, "count": 1}
		},
		"seed": 42
	}`,
	"islands/sequential-ring-cellular": `{
		"model": "islands",
		"problem": {"name": "onemax", "size": 48},
		"engine": {
			"type": "cellular",
			"crossover": {"name": "uniform"},
			"mutator": {"name": "bitflip"},
			"grid": {"rows": 4, "cols": 4, "update": "ls"}
		},
		"islands": {
			"demes": 3,
			"topology": "ring",
			"migration": {"interval": 5, "count": 2}
		},
		"seed": 43
	}`,
}

// TestSpecBuildParity proves spec-built runtimes are draw-identical to
// the hand-wired golden scenarios.
func TestSpecBuildParity(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("testdata", goldenFile))
	if err != nil {
		t.Fatalf("read golden traces: %v", err)
	}
	var want map[string]Trace
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatalf("parse golden traces: %v", err)
	}

	if len(specScenarios) < 6 {
		t.Fatalf("parity suite covers %d scenarios, want at least 6", len(specScenarios))
	}
	for name, doc := range specScenarios {
		t.Run(name, func(t *testing.T) {
			golden, ok := want[name]
			if !ok {
				t.Fatalf("no golden trace for scenario %q", name)
			}
			s, perr := spec.Parse([]byte(doc))
			if perr != nil {
				t.Fatalf("Parse: %v", perr)
			}
			b, berr := spec.Build(*s)
			if berr != nil {
				t.Fatalf("Build: %v", berr)
			}
			var got Trace
			switch {
			case b.Engine != nil:
				got = engineTrace(b.Engine)
			case b.Islands != nil:
				got = islandTrace(b.Islands.RunSequential(core.MaxGenerations(gens), true))
			default:
				t.Fatalf("spec built neither an engine nor an island model")
			}
			if got.Evaluations != golden.Evaluations {
				t.Errorf("evaluations: spec-built %d, golden %d", got.Evaluations, golden.Evaluations)
			}
			if len(got.Best) != len(golden.Best) {
				t.Fatalf("trace length: spec-built %d, golden %d", len(got.Best), len(golden.Best))
			}
			for i := range got.Best {
				if got.Best[i] != golden.Best[i] {
					t.Fatalf("gen %d: spec-built best %v, golden %v — the spec layer changed the draw sequence", i, got.Best[i], golden.Best[i])
				}
			}
		})
	}
}
