package equiv

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"pga/internal/core"
	"pga/internal/ga"
	"pga/internal/operators"
	"pga/internal/problems"
	"pga/internal/rng"
)

var update = flag.Bool("update", false, "rewrite testdata golden traces")

const goldenFile = "golden_traces.json"

// TestGoldenTraces regenerates every scenario and compares it
// bit-for-bit against the pinned golden trajectory. The golden file was
// captured from the allocating implementation before the zero-allocation
// rework; regenerate (only when a trajectory change is intended and
// reviewed) with:
//
//	go test -run TestGoldenTraces -update ./internal/equiv
func TestGoldenTraces(t *testing.T) {
	got := map[string]Trace{}
	for _, sc := range Scenarios() {
		if _, dup := got[sc.Name]; dup {
			t.Fatalf("%s: duplicate scenario name", sc.Name)
		}
		got[sc.Name] = sc.Run()
	}

	path := filepath.Join("testdata", goldenFile)
	if *update {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		data = append(data, '\n')
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden traces (run with -update to create): %v", err)
	}
	var want map[string]Trace
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatalf("parse golden traces: %v", err)
	}

	for name, w := range want {
		g, ok := got[name]
		if !ok {
			t.Errorf("%s: scenario pinned in golden file but not generated", name)
			continue
		}
		if len(g.Best) != len(w.Best) {
			t.Errorf("%s: trace length %d, want %d", name, len(g.Best), len(w.Best))
			continue
		}
		for i := range w.Best {
			if g.Best[i] != w.Best[i] {
				t.Errorf("%s: generation %d best = %v, want %v (trajectory diverged)", name, i, g.Best[i], w.Best[i])
				break
			}
		}
		if g.Evaluations != w.Evaluations {
			t.Errorf("%s: evaluations = %d, want %d", name, g.Evaluations, w.Evaluations)
		}
	}
	for name := range got {
		if _, ok := want[name]; !ok {
			t.Errorf("%s: scenario not pinned in golden file (run with -update)", name)
		}
	}
}

// TestScenarioOpsAreRegistered guards the tracecover inputs: every
// operator name a scenario claims to exercise must exist in the operator
// registry, so coverage claims cannot rot through renames.
func TestScenarioOpsAreRegistered(t *testing.T) {
	known := map[string]bool{}
	for _, op := range operators.RegisteredOperators() {
		known[operators.OperatorTypeName(op)] = true
	}
	for _, sc := range Scenarios() {
		if len(sc.Ops) == 0 {
			t.Errorf("%s: scenario lists no operators", sc.Name)
		}
		for _, op := range sc.Ops {
			if !known[op] {
				t.Errorf("%s: claims unregistered operator %q", sc.Name, op)
			}
		}
	}
}

// TestStepDeterminism double-checks the cheap invariant directly: two
// engines built from the same seed stay identical step by step.
func TestStepDeterminism(t *testing.T) {
	build := func() ga.Engine {
		return ga.NewGenerational(ga.Config{
			Problem: problems.OneMax{N: 64}, PopSize: 30,
			Selector:  operators.Tournament{K: 2},
			Crossover: operators.Uniform{}, Mutator: operators.BitFlip{},
			RNG: rng.New(99),
		})
	}
	a, b := build(), build()
	for g := 0; g < 10; g++ {
		a.Step()
		b.Step()
		fa := a.Population().BestFitness(core.Maximize)
		fb := b.Population().BestFitness(core.Maximize)
		if fa != fb {
			t.Fatalf("generation %d: diverged (%v vs %v)", g, fa, fb)
		}
	}
}
