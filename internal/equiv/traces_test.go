// Package equiv pins the seeded evolution trajectories of every engine
// family as golden testdata. The zero-allocation hot-path rework (double
// buffering, in-place operators, per-engine scratch) is a pure
// mechanical-sympathy change: for a given seed it must consume the exact
// same RNG draws and produce bit-for-bit identical best-fitness traces.
// These tests are the proof. The golden file was captured from the
// allocating implementation before the rewrite; regenerate (only when a
// trajectory change is intended and reviewed) with:
//
//	go test -run TestGoldenTraces -update ./internal/equiv
package equiv

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"pga/internal/cellular"
	"pga/internal/core"
	"pga/internal/ga"
	"pga/internal/island"
	"pga/internal/migration"
	"pga/internal/operators"
	"pga/internal/problems"
	"pga/internal/rng"
	"pga/internal/topology"
)

var update = flag.Bool("update", false, "rewrite testdata golden traces")

// trace is one scenario's recorded trajectory: the per-generation global
// best fitness plus the final evaluation count. Fitness values are stored
// as float64 in JSON, which round-trips exactly, so comparison is
// bit-for-bit.
type trace struct {
	Best        []float64 `json:"best"`
	Evaluations int64     `json:"evaluations"`
}

const gens = 20

// engineTrace runs eng for gens steps recording the best fitness after
// every step (including the initial population at index 0).
func engineTrace(eng ga.Engine) trace {
	dir := eng.Problem().Direction()
	tr := trace{Best: make([]float64, 0, gens+1)}
	tr.Best = append(tr.Best, eng.Population().BestFitness(dir))
	for g := 0; g < gens; g++ {
		eng.Step()
		tr.Best = append(tr.Best, eng.Population().BestFitness(dir))
	}
	tr.Evaluations = eng.Evaluations()
	return tr
}

// islandTrace runs an island model and converts its Trace to a trace.
func islandTrace(res *island.Result) trace {
	tr := trace{Best: make([]float64, 0, len(res.Trace))}
	for _, p := range res.Trace {
		tr.Best = append(tr.Best, p.Best)
	}
	tr.Evaluations = res.Evaluations
	return tr
}

// scenarios enumerates every engine family and operator combination whose
// trajectory is pinned. Names are stable keys in the golden file.
func scenarios() map[string]func() trace {
	qap := problems.NewQAP(12, 7)
	return map[string]func() trace{
		// Generational engine across representations and operators.
		"generational/onemax-1point-tournament": func() trace {
			return engineTrace(ga.NewGenerational(ga.Config{
				Problem: problems.OneMax{N: 64}, PopSize: 40,
				Selector:  operators.Tournament{K: 2},
				Crossover: operators.OnePoint{}, Mutator: operators.BitFlip{},
				RNG: rng.New(11),
			}))
		},
		"generational/onemax-uniform-gap-elitism": func() trace {
			return engineTrace(ga.NewGenerational(ga.Config{
				Problem: problems.OneMax{N: 64}, PopSize: 41, // odd: exercises the discarded-offspring path
				Selector:  operators.Tournament{K: 3},
				Crossover: operators.Uniform{}, Mutator: operators.BitFlip{},
				GenGap: 0.5, Elitism: 4,
				RNG: rng.New(12),
			}))
		},
		"generational/onemax-2point-roulette": func() trace {
			return engineTrace(ga.NewGenerational(ga.Config{
				Problem: problems.OneMax{N: 48}, PopSize: 30,
				Selector:  operators.Roulette{},
				Crossover: operators.TwoPoint{}, Mutator: operators.BitFlip{},
				RNG: rng.New(13),
			}))
		},
		"generational/sphere-sbx-polynomial": func() trace {
			return engineTrace(ga.NewGenerational(ga.Config{
				Problem: problems.Sphere(8), PopSize: 30,
				Selector:  operators.Tournament{K: 3},
				Crossover: operators.SBX{}, Mutator: operators.Polynomial{},
				RNG: rng.New(14),
			}))
		},
		"generational/sphere-blx-gauss-rank": func() trace {
			return engineTrace(ga.NewGenerational(ga.Config{
				Problem: problems.Sphere(6), PopSize: 24,
				Selector:  operators.LinearRank{},
				Crossover: operators.BLX{}, Mutator: operators.Gaussian{},
				RNG: rng.New(15),
			}))
		},
		"generational/rastrigin-arith-reset-trunc": func() trace {
			return engineTrace(ga.NewGenerational(ga.Config{
				Problem: problems.Rastrigin(6), PopSize: 24,
				Selector:  operators.Truncation{},
				Crossover: operators.Arithmetic{}, Mutator: operators.UniformReset{},
				RNG: rng.New(16),
			}))
		},
		"generational/qap-ox-inversion": func() trace {
			return engineTrace(ga.NewGenerational(ga.Config{
				Problem: qap, PopSize: 30,
				Selector:  operators.Tournament{K: 2},
				Crossover: operators.OX{}, Mutator: operators.Inversion{},
				RNG: rng.New(17),
			}))
		},
		"generational/qap-pmx-swap": func() trace {
			return engineTrace(ga.NewGenerational(ga.Config{
				Problem: qap, PopSize: 30,
				Selector:  operators.Tournament{K: 2},
				Crossover: operators.PMX{}, Mutator: operators.Swap{},
				RNG: rng.New(18),
			}))
		},
		"generational/qap-cx-scramble": func() trace {
			return engineTrace(ga.NewGenerational(ga.Config{
				Problem: qap, PopSize: 30,
				Selector:  operators.Tournament{K: 2},
				Crossover: operators.CX{}, Mutator: operators.Scramble{},
				RNG: rng.New(19),
			}))
		},
		"generational/qap-erx-insertion": func() trace {
			return engineTrace(ga.NewGenerational(ga.Config{
				Problem: qap, PopSize: 20,
				Selector:  operators.Tournament{K: 2},
				Crossover: operators.ERX{}, Mutator: operators.Insertion{},
				RNG: rng.New(20),
			}))
		},
		// Pins the in-place ERX path (PR 4) under rank selection, whose
		// scratch-based ranking shares the same Scratch as the ERX
		// adjacency table.
		"generational/qap-erx-rank-swap": func() trace {
			return engineTrace(ga.NewGenerational(ga.Config{
				Problem: qap, PopSize: 24,
				Selector:  operators.LinearRank{},
				Crossover: operators.ERX{}, Mutator: operators.Swap{},
				RNG: rng.New(25),
			}))
		},

		// Word-wise operators on the packed representation. These draw one
		// uint64 per 64-bit word rather than one decision per bit, so they
		// have their own pinned trajectories (intentionally different RNG
		// consumption from the bit-wise operators above).
		"generational/onemax-uniformword-blockflip": func() trace {
			return engineTrace(ga.NewGenerational(ga.Config{
				Problem: problems.OneMax{N: 96}, PopSize: 40,
				Selector:  operators.Tournament{K: 2},
				Crossover: operators.UniformWord{}, Mutator: operators.BlockFlip{},
				RNG: rng.New(51),
			}))
		},
		"generational/onemax-kpointword-blockflip": func() trace {
			return engineTrace(ga.NewGenerational(ga.Config{
				Problem: problems.OneMax{N: 100}, PopSize: 40, // N % 64 != 0: tail-word path
				Selector:  operators.Tournament{K: 2},
				Crossover: operators.KPointWord{K: 2}, Mutator: operators.BlockFlip{K: 5},
				RNG: rng.New(52),
			}))
		},
		"steadystate/royalroad-uniformword-blockflip": func() trace {
			return engineTrace(ga.NewSteadyState(ga.Config{
				Problem: problems.RoyalRoad{Blocks: 8, K: 8}, PopSize: 40,
				Selector:  operators.Tournament{K: 2},
				Crossover: operators.UniformWord{}, Mutator: operators.BlockFlip{},
				RNG: rng.New(53),
			}, true))
		},
		"cellular/onemax-kpointword-sync-L5": func() trace {
			return engineTrace(cellular.New(cellular.Config{
				Problem: problems.OneMax{N: 72}, Rows: 6, Cols: 6,
				Crossover: operators.KPointWord{K: 1}, Mutator: operators.BlockFlip{},
				Update: cellular.Synchronous, Neighborhood: cellular.VonNeumann,
				RNG: rng.New(54),
			}))
		},

		// Steady-state engine, both replacement policies.
		"steadystate/onemax-worst": func() trace {
			return engineTrace(ga.NewSteadyState(ga.Config{
				Problem: problems.OneMax{N: 64}, PopSize: 40,
				Selector:  operators.Tournament{K: 2},
				Crossover: operators.Uniform{}, Mutator: operators.BitFlip{},
				RNG: rng.New(21),
			}, true))
		},
		"steadystate/onemax-random": func() trace {
			return engineTrace(ga.NewSteadyState(ga.Config{
				Problem: problems.OneMax{N: 64}, PopSize: 40,
				Selector:  operators.Roulette{},
				Crossover: operators.OnePoint{}, Mutator: operators.BitFlip{},
				RNG: rng.New(22),
			}, false))
		},
		"steadystate/sphere-worst": func() trace {
			return engineTrace(ga.NewSteadyState(ga.Config{
				Problem: problems.Sphere(8), PopSize: 30,
				Selector:  operators.Tournament{K: 3},
				Crossover: operators.SBX{}, Mutator: operators.Polynomial{},
				RNG: rng.New(23),
			}, true))
		},

		// Shared-memory parallel-reproduction engine: the trace must be
		// identical for any worker count with the same seed split, so pin
		// two counts.
		"parallel/onemax-4workers": func() trace {
			return engineTrace(ga.NewParallelGenerational(ga.Config{
				Problem: problems.OneMax{N: 64}, PopSize: 40,
				Selector:  operators.Tournament{K: 2},
				Crossover: operators.Uniform{}, Mutator: operators.BitFlip{},
				RNG: rng.New(24),
			}, 4))
		},
		"parallel/onemax-1worker": func() trace {
			return engineTrace(ga.NewParallelGenerational(ga.Config{
				Problem: problems.OneMax{N: 64}, PopSize: 40,
				Selector:  operators.Tournament{K: 2},
				Crossover: operators.Uniform{}, Mutator: operators.BitFlip{},
				RNG: rng.New(24),
			}, 1))
		},

		// Cellular engine: every update policy, all neighbourhoods.
		"cellular/onemax-sync-L5": func() trace {
			return engineTrace(cellular.New(cellular.Config{
				Problem: problems.OneMax{N: 48}, Rows: 6, Cols: 6,
				Crossover: operators.OnePoint{}, Mutator: operators.BitFlip{},
				Update: cellular.Synchronous, Neighborhood: cellular.VonNeumann,
				RNG: rng.New(31),
			}))
		},
		"cellular/onemax-ls-C9": func() trace {
			return engineTrace(cellular.New(cellular.Config{
				Problem: problems.OneMax{N: 48}, Rows: 6, Cols: 6,
				Crossover: operators.Uniform{}, Mutator: operators.BitFlip{},
				Update: cellular.LineSweep, Neighborhood: cellular.Moore,
				RNG: rng.New(32),
			}))
		},
		"cellular/onemax-frs-L9": func() trace {
			return engineTrace(cellular.New(cellular.Config{
				Problem: problems.OneMax{N: 48}, Rows: 6, Cols: 6,
				Crossover: operators.TwoPoint{}, Mutator: operators.BitFlip{},
				Update: cellular.FixedRandomSweep, Neighborhood: cellular.Linear9,
				RNG: rng.New(33),
			}))
		},
		"cellular/onemax-nrs-L5": func() trace {
			return engineTrace(cellular.New(cellular.Config{
				Problem: problems.OneMax{N: 48}, Rows: 6, Cols: 6,
				Crossover: operators.Uniform{}, Mutator: operators.BitFlip{},
				Update: cellular.NewRandomSweep, Neighborhood: cellular.VonNeumann,
				RNG: rng.New(34),
			}))
		},
		"cellular/sphere-uc-L5": func() trace {
			return engineTrace(cellular.New(cellular.Config{
				Problem: problems.Sphere(6), Rows: 6, Cols: 6,
				Crossover: operators.BLX{}, Mutator: operators.Gaussian{},
				Update: cellular.UniformChoice, Neighborhood: cellular.VonNeumann,
				RNG: rng.New(35),
			}))
		},

		// Island model: lockstep-sequential and sync-parallel execution of
		// the same configuration must both replay (and match each other's
		// RNG usage is intentionally not compared — each mode is pinned
		// separately).
		"islands/sequential-ring-generational": func() trace {
			m := island.New(island.Config{
				Topology: topology.Ring(4),
				Policy:   migration.Policy{Interval: 5, Count: 2},
				NewEngine: func(_ int, r *rng.Source) ga.Engine {
					return ga.NewGenerational(ga.Config{
						Problem: problems.OneMax{N: 64}, PopSize: 20,
						Selector:  operators.Tournament{K: 2},
						Crossover: operators.Uniform{}, Mutator: operators.BitFlip{},
						RNG: r,
					})
				},
				Seed: 41,
			})
			return islandTrace(m.RunSequential(core.MaxGenerations(gens), true))
		},
		"islands/syncparallel-ring-generational": func() trace {
			m := island.New(island.Config{
				Topology: topology.Ring(4),
				Policy:   migration.Policy{Interval: 5, Count: 2, Sync: true},
				NewEngine: func(_ int, r *rng.Source) ga.Engine {
					return ga.NewGenerational(ga.Config{
						Problem: problems.OneMax{N: 64}, PopSize: 20,
						Selector:  operators.Tournament{K: 2},
						Crossover: operators.Uniform{}, Mutator: operators.BitFlip{},
						RNG: r,
					})
				},
				Seed: 41,
			})
			return islandTrace(m.RunParallel(gens, true))
		},
		"islands/sequential-biring-steadystate": func() trace {
			m := island.New(island.Config{
				Topology: topology.BiRing(3),
				Policy:   migration.Policy{Interval: 4, Count: 1},
				NewEngine: func(_ int, r *rng.Source) ga.Engine {
					return ga.NewSteadyState(ga.Config{
						Problem: problems.Sphere(6), PopSize: 16,
						Selector:  operators.Tournament{K: 2},
						Crossover: operators.SBX{}, Mutator: operators.Polynomial{},
						RNG: r,
					}, true)
				},
				Seed: 42,
			})
			return islandTrace(m.RunSequential(core.MaxGenerations(gens), true))
		},
		"islands/sequential-ring-cellular": func() trace {
			m := island.New(island.Config{
				Topology: topology.Ring(3),
				Policy:   migration.Policy{Interval: 5, Count: 2},
				NewEngine: func(_ int, r *rng.Source) ga.Engine {
					return cellular.New(cellular.Config{
						Problem: problems.OneMax{N: 48}, Rows: 4, Cols: 4,
						Crossover: operators.Uniform{}, Mutator: operators.BitFlip{},
						Update: cellular.LineSweep,
						RNG:    r,
					})
				},
				Seed: 43,
			})
			return islandTrace(m.RunSequential(core.MaxGenerations(gens), true))
		},
	}
}

const goldenFile = "golden_traces.json"

// TestGoldenTraces regenerates every scenario and compares it bit-for-bit
// against the pinned golden trajectory.
func TestGoldenTraces(t *testing.T) {
	got := map[string]trace{}
	for name, run := range scenarios() {
		got[name] = run()
	}

	path := filepath.Join("testdata", goldenFile)
	if *update {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		data = append(data, '\n')
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden traces (run with -update to create): %v", err)
	}
	var want map[string]trace
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatalf("parse golden traces: %v", err)
	}

	for name, w := range want {
		g, ok := got[name]
		if !ok {
			t.Errorf("%s: scenario pinned in golden file but not generated", name)
			continue
		}
		if len(g.Best) != len(w.Best) {
			t.Errorf("%s: trace length %d, want %d", name, len(g.Best), len(w.Best))
			continue
		}
		for i := range w.Best {
			if g.Best[i] != w.Best[i] {
				t.Errorf("%s: generation %d best = %v, want %v (trajectory diverged)", name, i, g.Best[i], w.Best[i])
				break
			}
		}
		if g.Evaluations != w.Evaluations {
			t.Errorf("%s: evaluations = %d, want %d", name, g.Evaluations, w.Evaluations)
		}
	}
	for name := range got {
		if _, ok := want[name]; !ok {
			t.Errorf("%s: scenario not pinned in golden file (run with -update)", name)
		}
	}
}

// TestStepDeterminism double-checks the cheap invariant directly: two
// engines built from the same seed stay identical step by step.
func TestStepDeterminism(t *testing.T) {
	build := func() ga.Engine {
		return ga.NewGenerational(ga.Config{
			Problem: problems.OneMax{N: 64}, PopSize: 30,
			Selector:  operators.Tournament{K: 2},
			Crossover: operators.Uniform{}, Mutator: operators.BitFlip{},
			RNG: rng.New(99),
		})
	}
	a, b := build(), build()
	for g := 0; g < 10; g++ {
		a.Step()
		b.Step()
		fa := a.Population().BestFitness(core.Maximize)
		fb := b.Population().BestFitness(core.Maximize)
		if fa != fb {
			t.Fatalf("generation %d: diverged (%v vs %v)", g, fa, fb)
		}
	}
}
