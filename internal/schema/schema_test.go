package schema

import (
	"testing"

	"pga/internal/core"
	"pga/internal/ga"
	"pga/internal/genome"
	"pga/internal/operators"
	"pga/internal/problems"
	"pga/internal/rng"
)

func bits(s string) *genome.BitString {
	b := genome.NewBitString(len(s))
	for i, c := range s {
		b.Set(i, c == '1')
	}
	return b
}

func TestParseAndString(t *testing.T) {
	s := MustParse("1*0*")
	if s.String() != "1*0*" {
		t.Fatalf("round trip %q", s.String())
	}
	if _, err := Parse("1x0"); err == nil {
		t.Fatal("invalid char accepted")
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	MustParse("12")
}

func TestOrderAndDefiningLength(t *testing.T) {
	cases := []struct {
		s      string
		order  int
		deflen int
	}{
		{"****", 0, 0},
		{"1***", 1, 0},
		{"1**0", 2, 3},
		{"*10*", 2, 1},
		{"1111", 4, 3},
	}
	for _, c := range cases {
		s := MustParse(c.s)
		if s.Order() != c.order {
			t.Fatalf("%s order %d, want %d", c.s, s.Order(), c.order)
		}
		if s.DefiningLength() != c.deflen {
			t.Fatalf("%s deflen %d, want %d", c.s, s.DefiningLength(), c.deflen)
		}
	}
}

func TestMatches(t *testing.T) {
	s := MustParse("1*0")
	if !s.Matches(bits("110")) || !s.Matches(bits("100")) {
		t.Fatal("missed instance")
	}
	if s.Matches(bits("010")) || s.Matches(bits("111")) {
		t.Fatal("false positive")
	}
}

func TestMatchesPanicsOnLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	MustParse("1*").Matches(bits("100"))
}

func TestRandomSchema(t *testing.T) {
	r := rng.New(1)
	for order := 0; order <= 8; order++ {
		s := Random(8, order, r)
		if s.Order() != order {
			t.Fatalf("random schema order %d, want %d", s.Order(), order)
		}
		if s.Len() != 8 {
			t.Fatal("length wrong")
		}
	}
}

func TestRandomSchemaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Random(4, 5, rng.New(1))
}

func TestCountAndProportion(t *testing.T) {
	pop := core.NewPopulation(4)
	for _, s := range []string{"110", "100", "010", "111"} {
		ind := core.NewIndividual(bits(s))
		ind.Evaluated = true
		pop.Members = append(pop.Members, ind)
	}
	sc := MustParse("1**")
	if Count(pop, sc) != 3 {
		t.Fatalf("count %d", Count(pop, sc))
	}
	if Proportion(pop, sc) != 0.75 {
		t.Fatalf("proportion %v", Proportion(pop, sc))
	}
	if Proportion(core.NewPopulation(0), sc) != 0 {
		t.Fatal("empty proportion not 0")
	}
}

func TestTrackerGrowthUnderSelection(t *testing.T) {
	// Under a OneMax GA, the all-ones building-block schema 11** … must
	// grow in proportion (the schema theorem in action).
	sc := MustParse("11**************")
	tr := NewTracker(sc)
	e := ga.NewGenerational(ga.Config{
		Problem:   problems.OneMax{N: 16},
		PopSize:   60,
		Crossover: operators.Uniform{},
		Mutator:   operators.BitFlip{},
		RNG:       rng.New(5),
	})
	tr.Observe(e.Population())
	for g := 0; g < 20; g++ {
		e.Step()
		tr.Observe(e.Population())
	}
	if len(tr.History[0]) != 21 {
		t.Fatalf("history length %d", len(tr.History[0]))
	}
	first, last := tr.History[0][0], tr.History[0][20]
	if last <= first {
		t.Fatalf("fit schema did not grow: %v -> %v", first, last)
	}
	if tr.GrowthRate(0) <= 1 {
		t.Fatalf("growth rate %v not > 1", tr.GrowthRate(0))
	}
}

func TestGrowthRateUndefined(t *testing.T) {
	tr := NewTracker(MustParse("1"))
	if tr.GrowthRate(0) != 1 {
		t.Fatal("empty history growth not 1")
	}
	tr.History[0] = []float64{0, 0, 0}
	if tr.GrowthRate(0) != 1 {
		t.Fatal("all-zero history growth not 1")
	}
}

func TestCountSkipsNonBinary(t *testing.T) {
	pop := core.NewPopulation(1)
	ind := core.NewIndividual(genome.NewRealVector(3, 0, 1))
	pop.Members = append(pop.Members, ind)
	if Count(pop, MustParse("***")) != 0 {
		t.Fatal("counted a non-binary genome")
	}
}
