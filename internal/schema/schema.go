// Package schema implements schema analysis for binary-coded GAs: parsing,
// matching, order and defining length, and population-proportion tracking.
//
// Alba & Troya (2002) — reviewed in §2 of the survey — compared
// steady-state, generational and cellular GAs partly by their "schema
// processing rates"; experiment E5 uses this package to reproduce that
// comparison, and the classic schema-theorem quantities (order, defining
// length, proportion growth) are exposed for the ablation benches.
package schema

import (
	"fmt"
	"strings"

	"pga/internal/core"
	"pga/internal/genome"
	"pga/internal/rng"
)

// Wildcard marks a don't-care position in a schema.
const Wildcard int8 = -1

// Schema is a hyperplane of the binary search space: a pattern of fixed
// bits and wildcards.
type Schema struct {
	// Pattern holds 0, 1, or Wildcard per locus.
	Pattern []int8
}

// Parse builds a Schema from a string of '0', '1' and '*'.
func Parse(s string) (Schema, error) {
	p := make([]int8, len(s))
	for i, c := range s {
		switch c {
		case '0':
			p[i] = 0
		case '1':
			p[i] = 1
		case '*':
			p[i] = Wildcard
		default:
			return Schema{}, fmt.Errorf("schema: invalid character %q at %d", c, i)
		}
	}
	return Schema{Pattern: p}, nil
}

// MustParse is Parse that panics on error (for literals in tests and
// experiments).
func MustParse(s string) Schema {
	sc, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return sc
}

// String implements fmt.Stringer.
func (s Schema) String() string {
	var sb strings.Builder
	for _, p := range s.Pattern {
		switch p {
		case Wildcard:
			sb.WriteByte('*')
		case 0:
			sb.WriteByte('0')
		default:
			sb.WriteByte('1')
		}
	}
	return sb.String()
}

// Len returns the schema length.
func (s Schema) Len() int { return len(s.Pattern) }

// Order returns the number of fixed (non-wildcard) positions.
func (s Schema) Order() int {
	n := 0
	for _, p := range s.Pattern {
		if p != Wildcard {
			n++
		}
	}
	return n
}

// DefiningLength returns the distance between the outermost fixed
// positions (0 for order ≤ 1).
func (s Schema) DefiningLength() int {
	first, last := -1, -1
	for i, p := range s.Pattern {
		if p != Wildcard {
			if first == -1 {
				first = i
			}
			last = i
		}
	}
	if first == -1 || first == last {
		return 0
	}
	return last - first
}

// Matches reports whether b is an instance of the schema. It panics on
// length mismatch.
func (s Schema) Matches(b *genome.BitString) bool {
	if b.Len() != len(s.Pattern) {
		panic("schema: genome length mismatch")
	}
	for i, p := range s.Pattern {
		if p == Wildcard {
			continue
		}
		if (p == 1) != b.Get(i) {
			return false
		}
	}
	return true
}

// Random returns a schema of the given length with exactly order fixed
// positions, values drawn uniformly.
func Random(length, order int, r *rng.Source) Schema {
	if order > length {
		panic("schema: order exceeds length")
	}
	p := make([]int8, length)
	for i := range p {
		p[i] = Wildcard
	}
	for _, i := range r.Sample(length, order) {
		if r.Bool() {
			p[i] = 1
		} else {
			p[i] = 0
		}
	}
	return Schema{Pattern: p}
}

// Count returns the number of population members matching the schema
// (non-BitString genomes are skipped).
func Count(pop *core.Population, s Schema) int {
	n := 0
	for _, ind := range pop.Members {
		if b, ok := ind.Genome.(*genome.BitString); ok && s.Matches(b) {
			n++
		}
	}
	return n
}

// Proportion returns Count/pop.Len() (0 for an empty population).
func Proportion(pop *core.Population, s Schema) float64 {
	if pop.Len() == 0 {
		return 0
	}
	return float64(Count(pop, s)) / float64(pop.Len())
}

// Tracker records the population proportion of a set of schemata over
// generations, to compare schema processing rates between engines.
type Tracker struct {
	Schemata []Schema
	// History[k][g] is schema k's proportion at generation g.
	History [][]float64
}

// NewTracker creates a tracker for the given schemata.
func NewTracker(schemata ...Schema) *Tracker {
	return &Tracker{
		Schemata: schemata,
		History:  make([][]float64, len(schemata)),
	}
}

// Observe appends the current proportions of all tracked schemata.
func (t *Tracker) Observe(pop *core.Population) {
	for k, s := range t.Schemata {
		t.History[k] = append(t.History[k], Proportion(pop, s))
	}
}

// GrowthRate returns the mean per-generation multiplicative growth of
// schema k's proportion over the observed history, ignoring generations
// where the proportion was zero. Returns 1 when undefined.
func (t *Tracker) GrowthRate(k int) float64 {
	h := t.History[k]
	var ratios []float64
	for i := 1; i < len(h); i++ {
		if h[i-1] > 0 && h[i] > 0 {
			ratios = append(ratios, h[i]/h[i-1])
		}
	}
	if len(ratios) == 0 {
		return 1
	}
	sum := 0.0
	for _, r := range ratios {
		sum += r
	}
	return sum / float64(len(ratios))
}
