package migration

import (
	"testing"

	"pga/internal/core"
	"pga/internal/genome"
	"pga/internal/rng"
)

func pop(fs ...float64) *core.Population {
	p := core.NewPopulation(len(fs))
	for _, f := range fs {
		ind := core.NewIndividual(genome.NewBitString(4))
		ind.Fitness, ind.Evaluated = f, true
		p.Members = append(p.Members, ind)
	}
	return p
}

func fitnesses(p *core.Population) []float64 {
	out := make([]float64, p.Len())
	for i, ind := range p.Members {
		out[i] = ind.Fitness
	}
	return out
}

func TestSelectBest(t *testing.T) {
	p := pop(3, 9, 1, 7, 5)
	m := (SelectBest{}).Pick(p, core.Maximize, 2, rng.New(1))
	if len(m) != 2 || m[0].Fitness != 9 || m[1].Fitness != 7 {
		t.Fatalf("SelectBest picked %v %v", m[0].Fitness, m[1].Fitness)
	}
	// Minimize direction.
	m = (SelectBest{}).Pick(p, core.Minimize, 2, rng.New(1))
	if m[0].Fitness != 1 || m[1].Fitness != 3 {
		t.Fatalf("SelectBest(min) picked %v %v", m[0].Fitness, m[1].Fitness)
	}
}

func TestSelectBestClones(t *testing.T) {
	p := pop(1, 2)
	m := (SelectBest{}).Pick(p, core.Maximize, 1, rng.New(1))
	m[0].Genome.(*genome.BitString).Set(0, true)
	if p.Members[1].Genome.(*genome.BitString).Get(0) {
		t.Fatal("emigrant aliases population genome")
	}
}

func TestSelectBestCapsCount(t *testing.T) {
	p := pop(1, 2)
	m := (SelectBest{}).Pick(p, core.Maximize, 10, rng.New(1))
	if len(m) != 2 {
		t.Fatalf("picked %d from population of 2", len(m))
	}
}

func TestSelectRandomDistinct(t *testing.T) {
	p := pop(1, 2, 3, 4, 5)
	m := (SelectRandom{}).Pick(p, core.Maximize, 5, rng.New(2))
	seen := map[float64]bool{}
	for _, ind := range m {
		if seen[ind.Fitness] {
			t.Fatal("SelectRandom picked same individual twice")
		}
		seen[ind.Fitness] = true
	}
}

func TestSelectTournamentPrefersBetter(t *testing.T) {
	p := pop(1, 2, 3, 4, 100)
	r := rng.New(3)
	hits := 0
	for i := 0; i < 1000; i++ {
		m := (SelectTournament{K: 3}).Pick(p, core.Maximize, 1, r)
		if m[0].Fitness == 100 {
			hits++
		}
	}
	if hits < 400 {
		t.Fatalf("tournament migrant selection too weak: %d/1000 best", hits)
	}
	if (SelectTournament{}).k() != 3 {
		t.Fatal("default K wrong")
	}
}

func TestReplaceWorst(t *testing.T) {
	p := pop(5, 1, 9)
	in := []*core.Individual{{Fitness: 0.5, Evaluated: true, Genome: genome.NewBitString(4)}}
	n := (ReplaceWorst{}).Integrate(p, core.Maximize, in, rng.New(4))
	if n != 1 {
		t.Fatalf("accepted %d", n)
	}
	// Worst (fitness 1) replaced even by a worse migrant (0.5): unconditional.
	fs := fitnesses(p)
	if fs[1] != 0.5 {
		t.Fatalf("worst not replaced: %v", fs)
	}
}

func TestReplaceWorstIfBetter(t *testing.T) {
	p := pop(5, 1, 9)
	worse := []*core.Individual{{Fitness: 0.5, Evaluated: true, Genome: genome.NewBitString(4)}}
	if n := (ReplaceWorstIfBetter{}).Integrate(p, core.Maximize, worse, rng.New(5)); n != 0 {
		t.Fatalf("accepted a worse migrant: %d", n)
	}
	better := []*core.Individual{{Fitness: 2, Evaluated: true, Genome: genome.NewBitString(4)}}
	if n := (ReplaceWorstIfBetter{}).Integrate(p, core.Maximize, better, rng.New(5)); n != 1 {
		t.Fatal("rejected a better migrant")
	}
	if fitnesses(p)[1] != 2 {
		t.Fatalf("population after integrate: %v", fitnesses(p))
	}
}

func TestReplaceWorstIfBetterMinimize(t *testing.T) {
	p := pop(0.1, 0.9, 0.5)
	in := []*core.Individual{{Fitness: 0.2, Evaluated: true, Genome: genome.NewBitString(4)}}
	if n := (ReplaceWorstIfBetter{}).Integrate(p, core.Minimize, in, rng.New(6)); n != 1 {
		t.Fatal("rejected better (lower) migrant under minimize")
	}
	if fitnesses(p)[1] != 0.2 {
		t.Fatalf("population: %v", fitnesses(p))
	}
}

func TestReplaceRandomNeverEvictsBest(t *testing.T) {
	r := rng.New(7)
	for trial := 0; trial < 500; trial++ {
		p := pop(1, 2, 100)
		in := []*core.Individual{{Fitness: 3, Evaluated: true, Genome: genome.NewBitString(4)}}
		(ReplaceRandom{}).Integrate(p, core.Maximize, in, r)
		if p.BestFitness(core.Maximize) != 100 {
			t.Fatal("ReplaceRandom evicted the best individual")
		}
	}
}

func TestReplaceRandomTinyPopulation(t *testing.T) {
	p := pop(1)
	in := []*core.Individual{{Fitness: 3, Evaluated: true, Genome: genome.NewBitString(4)}}
	if n := (ReplaceRandom{}).Integrate(p, core.Maximize, in, rng.New(8)); n != 0 {
		t.Fatal("integrated into 1-member population")
	}
}

func TestMultipleMigrantsReplaceMultipleWorst(t *testing.T) {
	p := pop(10, 1, 2, 20)
	in := []*core.Individual{
		{Fitness: 15, Evaluated: true, Genome: genome.NewBitString(4)},
		{Fitness: 16, Evaluated: true, Genome: genome.NewBitString(4)},
	}
	(ReplaceWorst{}).Integrate(p, core.Maximize, in, rng.New(9))
	fs := fitnesses(p)
	// 1 and 2 replaced by 15 and 16.
	sum := 0.0
	for _, f := range fs {
		sum += f
	}
	if sum != 10+15+16+20 {
		t.Fatalf("population after 2 migrants: %v", fs)
	}
}

func TestPolicyDue(t *testing.T) {
	p := Policy{Interval: 5}
	if p.Due(0) || p.Due(4) || p.Due(6) {
		t.Fatal("Due fired off-schedule")
	}
	if !p.Due(5) || !p.Due(10) {
		t.Fatal("Due missed schedule")
	}
	if (Policy{Interval: 0}).Due(5) {
		t.Fatal("interval 0 must never be due")
	}
}

func TestPolicyWithDefaults(t *testing.T) {
	p := Policy{Interval: 4}.WithDefaults()
	if p.Select == nil || p.Replace == nil || p.Count != 1 || p.Buffer != 4 {
		t.Fatalf("defaults not applied: %+v", p)
	}
	// Existing values preserved.
	q := Policy{Interval: 4, Count: 3, Buffer: 9, Select: SelectRandom{}, Replace: ReplaceRandom{}}.WithDefaults()
	if q.Count != 3 || q.Buffer != 9 || q.Select.Name() != "random" || q.Replace.Name() != "random" {
		t.Fatal("defaults clobbered explicit values")
	}
}

func TestPolicyString(t *testing.T) {
	if (Policy{}).String() != "no-migration" {
		t.Fatal("no-migration string wrong")
	}
	s := Policy{Interval: 5, Count: 2, Sync: true}.String()
	if s == "" || s == "no-migration" {
		t.Fatalf("policy string = %q", s)
	}
}

func TestSelectorReplacerNames(t *testing.T) {
	for _, s := range []Selector{SelectBest{}, SelectRandom{}, SelectTournament{}} {
		if s.Name() == "" {
			t.Fatalf("%T empty name", s)
		}
	}
	for _, r := range []Replacer{ReplaceWorst{}, ReplaceWorstIfBetter{}, ReplaceRandom{}} {
		if r.Name() == "" {
			t.Fatalf("%T empty name", r)
		}
	}
}
