package migration

import (
	"testing"
	"testing/quick"

	"pga/internal/core"
	"pga/internal/genome"
	"pga/internal/rng"
)

// randomPop builds an evaluated random population of the given size.
func randomPop(n int, r *rng.Source) *core.Population {
	pop := core.NewPopulation(n)
	for i := 0; i < n; i++ {
		ind := core.NewIndividual(genome.RandomBitString(8, r))
		ind.Fitness = r.Range(0, 100)
		ind.Evaluated = true
		pop.Members = append(pop.Members, ind)
	}
	return pop
}

// TestSelectorsProperty: every selector returns at most the requested
// count, only evaluated clones, and never mutates the source population.
func TestSelectorsProperty(t *testing.T) {
	selectors := []Selector{SelectBest{}, SelectRandom{}, SelectTournament{K: 3}}
	check := func(seed uint16, size, count uint8) bool {
		n := int(size%20) + 1
		k := int(count % 25)
		r := rng.New(uint64(seed) + 11)
		for _, sel := range selectors {
			pop := randomPop(n, r)
			before := make([]float64, n)
			for i, ind := range pop.Members {
				before[i] = ind.Fitness
			}
			out := sel.Pick(pop, core.Maximize, k, r)
			want := k
			if want > n {
				want = n
			}
			if len(out) != want {
				return false
			}
			for _, m := range out {
				if !m.Evaluated {
					return false
				}
			}
			for i, ind := range pop.Members {
				if ind.Fitness != before[i] {
					return false // selector mutated the population
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestReplacersProperty: every replacer keeps the population size
// constant and never worsens the population best.
func TestReplacersProperty(t *testing.T) {
	replacers := []Replacer{ReplaceWorst{}, ReplaceWorstIfBetter{}, ReplaceRandom{}}
	check := func(seed uint16, size, count uint8) bool {
		n := int(size%20) + 2
		k := int(count%5) + 1
		r := rng.New(uint64(seed) + 13)
		for _, rep := range replacers {
			pop := randomPop(n, r)
			bestBefore := pop.BestFitness(core.Maximize)
			migrants := make([]*core.Individual, k)
			for i := range migrants {
				ind := core.NewIndividual(genome.RandomBitString(8, r))
				ind.Fitness = r.Range(0, 100)
				ind.Evaluated = true
				migrants[i] = ind
			}
			// The incoming best might beat the local best.
			incomingBest := bestBefore
			for _, m := range migrants {
				if m.Fitness > incomingBest {
					incomingBest = m.Fitness
				}
			}
			rep.Integrate(pop, core.Maximize, migrants, r)
			if pop.Len() != n {
				return false
			}
			after := pop.BestFitness(core.Maximize)
			// Best never falls below the pre-migration best except via
			// ReplaceWorst overwriting... ReplaceWorst targets the worst,
			// never the best, and ReplaceRandom skips the best, so the
			// population best can only stay or improve.
			if after < bestBefore-1e-12 {
				return false
			}
			if after > incomingBest+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
