// Package migration implements the migration policies of the island model:
// who emigrates, how many, how often, how immigrants are integrated, and
// whether the exchange is synchronous or asynchronous.
//
// The survey (§1.1) singles migration out as the defining new process of
// coarse-grained PGAs: "Migration has a huge impact on speed reaching the
// solution." Alba & Troya (2000) studied exactly the knobs modelled here —
// migration frequency and migrant selection in a ring of islands — and
// Alba & Troya (2001) the synchronous/asynchronous axis.
package migration

import (
	"fmt"

	"pga/internal/core"
	"pga/internal/rng"
)

// Selector picks the individuals that emigrate from a deme. Returned
// individuals are clones: emigration is by copy, as in the reviewed
// systems (the sender keeps its individuals).
type Selector interface {
	// Name identifies the policy in tables and logs.
	Name() string
	// Pick returns count cloned emigrants from pop.
	Pick(pop *core.Population, d core.Direction, count int, r *rng.Source) []*core.Individual
}

// SelectBest emigrates the deme's best individuals (the canonical policy).
type SelectBest struct{}

// Name implements Selector.
func (SelectBest) Name() string { return "best" }

// Pick implements Selector.
func (SelectBest) Pick(pop *core.Population, d core.Direction, count int, r *rng.Source) []*core.Individual {
	if count > pop.Len() {
		count = pop.Len()
	}
	// Partial selection sort of indices by fitness.
	idx := make([]int, pop.Len())
	for i := range idx {
		idx[i] = i
	}
	for i := 0; i < count; i++ {
		best := i
		for j := i + 1; j < len(idx); j++ {
			if d.Better(pop.Members[idx[j]].Fitness, pop.Members[idx[best]].Fitness) {
				best = j
			}
		}
		idx[i], idx[best] = idx[best], idx[i]
	}
	out := make([]*core.Individual, count)
	for i := 0; i < count; i++ {
		out[i] = pop.Members[idx[i]].Clone()
	}
	return out
}

// SelectRandom emigrates uniformly random individuals (the low-pressure
// policy of Alba & Troya's comparison).
type SelectRandom struct{}

// Name implements Selector.
func (SelectRandom) Name() string { return "random" }

// Pick implements Selector.
func (SelectRandom) Pick(pop *core.Population, d core.Direction, count int, r *rng.Source) []*core.Individual {
	if count > pop.Len() {
		count = pop.Len()
	}
	out := make([]*core.Individual, 0, count)
	for _, i := range r.Sample(pop.Len(), count) {
		out = append(out, pop.Members[i].Clone())
	}
	return out
}

// SelectTournament emigrates tournament winners — pressure between best
// and random.
type SelectTournament struct {
	// K is the tournament size; default 3.
	K int
}

// Name implements Selector.
func (s SelectTournament) Name() string { return fmt.Sprintf("tournament(%d)", s.k()) }

func (s SelectTournament) k() int {
	if s.K < 1 {
		return 3
	}
	return s.K
}

// Pick implements Selector.
func (s SelectTournament) Pick(pop *core.Population, d core.Direction, count int, r *rng.Source) []*core.Individual {
	if count > pop.Len() {
		count = pop.Len()
	}
	out := make([]*core.Individual, 0, count)
	for n := 0; n < count; n++ {
		best := r.Intn(pop.Len())
		for i := 1; i < s.k(); i++ {
			c := r.Intn(pop.Len())
			if d.Better(pop.Members[c].Fitness, pop.Members[best].Fitness) {
				best = c
			}
		}
		out = append(out, pop.Members[best].Clone())
	}
	return out
}

// CloneBatch returns a fresh deep copy of a migrant batch. Each
// neighbour (and each duplicate delivery on a faulty link) must receive
// its own clones: migrants enter the receiving population by reference,
// so sharing one batch across destinations would alias individuals
// between demes. Used by the island runtimes and the transport layer.
func CloneBatch(batch []*core.Individual) []*core.Individual {
	out := make([]*core.Individual, len(batch))
	for i, ind := range batch {
		out[i] = ind.Clone()
	}
	return out
}

// Replacer integrates immigrants into a deme's population.
type Replacer interface {
	// Name identifies the policy in tables and logs.
	Name() string
	// Integrate inserts migrants into pop, returning how many were
	// accepted. Implementations must not retain the migrants slice.
	Integrate(pop *core.Population, d core.Direction, migrants []*core.Individual, r *rng.Source) int
}

// ReplaceWorst replaces the deme's worst individuals unconditionally (the
// canonical policy).
type ReplaceWorst struct{}

// Name implements Replacer.
func (ReplaceWorst) Name() string { return "worst" }

// Integrate implements Replacer.
func (ReplaceWorst) Integrate(pop *core.Population, d core.Direction, migrants []*core.Individual, r *rng.Source) int {
	accepted := 0
	for _, m := range migrants {
		w := pop.Worst(d)
		if w < 0 {
			break
		}
		pop.Replace(w, m)
		accepted++
	}
	return accepted
}

// ReplaceWorstIfBetter replaces the worst individual only when the migrant
// improves on it (elitist acceptance).
type ReplaceWorstIfBetter struct{}

// Name implements Replacer.
func (ReplaceWorstIfBetter) Name() string { return "worst-if-better" }

// Integrate implements Replacer.
func (ReplaceWorstIfBetter) Integrate(pop *core.Population, d core.Direction, migrants []*core.Individual, r *rng.Source) int {
	accepted := 0
	for _, m := range migrants {
		w := pop.Worst(d)
		if w < 0 {
			break
		}
		if d.Better(m.Fitness, pop.Members[w].Fitness) {
			pop.Replace(w, m)
			accepted++
		}
	}
	return accepted
}

// ReplaceRandom replaces uniformly random individuals, but never the
// deme's current best (so migration cannot destroy local progress).
type ReplaceRandom struct{}

// Name implements Replacer.
func (ReplaceRandom) Name() string { return "random" }

// Integrate implements Replacer.
func (ReplaceRandom) Integrate(pop *core.Population, d core.Direction, migrants []*core.Individual, r *rng.Source) int {
	if pop.Len() < 2 {
		return 0
	}
	best := pop.Best(d)
	accepted := 0
	for _, m := range migrants {
		v := r.Intn(pop.Len())
		if v == best {
			v = (v + 1) % pop.Len()
		}
		pop.Replace(v, m)
		accepted++
	}
	return accepted
}

// Policy bundles the full migration configuration of an island run.
type Policy struct {
	// Interval is the number of generations between exchanges; 0 disables
	// migration entirely (isolated demes).
	Interval int
	// Count is the number of migrants sent to each neighbour per exchange.
	Count int
	// Select picks emigrants; default SelectBest.
	Select Selector
	// Replace integrates immigrants; default ReplaceWorst.
	Replace Replacer
	// Sync selects synchronous (barrier) migration; false means
	// asynchronous buffered exchange.
	Sync bool
	// Buffer is the capacity of each async migration channel (per link);
	// default 4. Ignored in sync mode.
	Buffer int
}

// WithDefaults returns a copy of p with nil fields filled in.
func (p Policy) WithDefaults() Policy {
	if p.Select == nil {
		p.Select = SelectBest{}
	}
	if p.Replace == nil {
		p.Replace = ReplaceWorst{}
	}
	if p.Count == 0 {
		p.Count = 1
	}
	if p.Buffer == 0 {
		p.Buffer = 4
	}
	return p
}

// Due reports whether an exchange is due after the given completed
// generation (1-based).
func (p Policy) Due(generation int) bool {
	return p.Interval > 0 && generation > 0 && generation%p.Interval == 0
}

// String implements fmt.Stringer.
func (p Policy) String() string {
	p = p.WithDefaults()
	mode := "async"
	if p.Sync {
		mode = "sync"
	}
	if p.Interval == 0 {
		return "no-migration"
	}
	return fmt.Sprintf("every %d gens, %d×%s→%s, %s",
		p.Interval, p.Count, p.Select.Name(), p.Replace.Name(), mode)
}
