package persist

import (
	"encoding/json"
	"testing"

	"pga/internal/core"
	"pga/internal/ga"
	"pga/internal/genome"
	"pga/internal/operators"
	"pga/internal/problems"
	"pga/internal/rng"
)

func TestPopulationRoundTripAllGenomeTypes(t *testing.T) {
	r := rng.New(1)
	pop := core.NewPopulation(4)
	for _, g := range []core.Genome{
		genome.RandomBitString(16, r),
		genome.RandomRealVector(5, -2, 3, r),
		genome.RandomIntVector(6, 4, r),
		genome.RandomPermutation(7, r),
	} {
		ind := core.NewIndividual(g)
		ind.Fitness = r.Float64()
		ind.Evaluated = true
		pop.Members = append(pop.Members, ind)
	}
	data, err := MarshalPopulation(pop)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalPopulation(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 4 {
		t.Fatalf("restored %d members", got.Len())
	}
	for i, ind := range got.Members {
		orig := pop.Members[i]
		if ind.Fitness != orig.Fitness || ind.Evaluated != orig.Evaluated {
			t.Fatalf("member %d metadata mismatch", i)
		}
		if ind.Genome.String() != orig.Genome.String() {
			t.Fatalf("member %d genome mismatch: %s vs %s", i, ind.Genome, orig.Genome)
		}
	}
	// Restored real vector keeps bounds.
	rv := got.Members[1].Genome.(*genome.RealVector)
	if rv.Lo[0] != -2 || rv.Hi[0] != 3 {
		t.Fatal("real vector bounds lost")
	}
}

func TestUnmarshalRejectsCorruptPermutation(t *testing.T) {
	bad := `{"members":[{"genome":{"type":"perm","perm":[0,0,1]},"fitness":0,"evaluated":true}]}`
	if _, err := UnmarshalPopulation([]byte(bad)); err == nil {
		t.Fatal("corrupt permutation accepted")
	}
}

func TestUnmarshalRejectsUnknownType(t *testing.T) {
	bad := `{"members":[{"genome":{"type":"quantum"},"fitness":0,"evaluated":true}]}`
	if _, err := UnmarshalPopulation([]byte(bad)); err == nil {
		t.Fatal("unknown genome type accepted")
	}
}

func TestUnmarshalRejectsBoundsMismatch(t *testing.T) {
	bad := `{"members":[{"genome":{"type":"real","genes":[1,2],"lo":[0],"hi":[5]},"fitness":0,"evaluated":true}]}`
	if _, err := UnmarshalPopulation([]byte(bad)); err == nil {
		t.Fatal("bounds mismatch accepted")
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	if _, err := UnmarshalPopulation([]byte("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := UnmarshalCheckpoint([]byte("{")); err == nil {
		t.Fatal("garbage checkpoint accepted")
	}
}

func TestRNGStateRoundTrip(t *testing.T) {
	r := rng.New(7)
	for i := 0; i < 100; i++ {
		r.Uint64()
	}
	st := r.State()
	want := make([]uint64, 20)
	for i := range want {
		want[i] = r.Uint64()
	}
	r2 := rng.New(999) // different stream entirely
	r2.SetState(st)
	for i := range want {
		if got := r2.Uint64(); got != want[i] {
			t.Fatalf("restored stream diverged at draw %d", i)
		}
	}
}

func TestSetStatePanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	rng.New(1).SetState([5]uint64{0, 0, 0, 0, 9})
}

// TestExactResume is the package's headline guarantee: checkpoint a run
// mid-flight, continue it, and separately restore the checkpoint into a
// fresh engine — both must produce bit-identical results.
func TestExactResume(t *testing.T) {
	mkEngine := func(r *rng.Source) *ga.Generational {
		return ga.NewGenerational(ga.Config{
			Problem:   problems.OneMax{N: 64},
			PopSize:   40,
			Crossover: operators.Uniform{},
			Mutator:   operators.BitFlip{},
			RNG:       r,
		})
	}

	// Original run: 10 steps, checkpoint, 10 more steps.
	r1 := rng.New(42)
	e1 := mkEngine(r1)
	for i := 0; i < 10; i++ {
		e1.Step()
	}
	cp, err := Capture(e1.Population(), r1, 10, e1.Evaluations())
	if err != nil {
		t.Fatal(err)
	}
	blob, err := cp.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		e1.Step()
	}
	wantBest := e1.Population().BestFitness(core.Maximize)
	wantMean := e1.Population().MeanFitness()

	// Resumed run: restore into a brand-new engine + stream.
	cp2, err := UnmarshalCheckpoint(blob)
	if err != nil {
		t.Fatal(err)
	}
	if cp2.Generation != 10 {
		t.Fatalf("checkpoint generation %d", cp2.Generation)
	}
	// Construct the engine first — engine construction consumes the stream
	// to build its (discarded) initial population — then load the
	// checkpointed state into the same stream.
	r2 := rng.New(0xDEAD)
	e2 := mkEngine(r2)
	pop, err := cp2.Restore(r2)
	if err != nil {
		t.Fatal(err)
	}
	e2.SetPopulation(pop)
	for i := 0; i < 10; i++ {
		e2.Step()
	}
	if got := e2.Population().BestFitness(core.Maximize); got != wantBest {
		t.Fatalf("resumed best %v != original %v", got, wantBest)
	}
	if got := e2.Population().MeanFitness(); got != wantMean {
		t.Fatalf("resumed mean %v != original %v", got, wantMean)
	}
}

// TestRestorePopulationForRestart pins the supervisor's restart path:
// RestorePopulation yields the checkpointed population — size, genomes,
// fitness and evaluated flags intact — without touching any RNG stream,
// because a restarted deme continues on a fresh split stream rather than
// replaying the checkpointed one (restoring it would deterministically
// reproduce the crash).
func TestRestorePopulationForRestart(t *testing.T) {
	r := rng.New(11)
	e := ga.NewGenerational(ga.Config{
		Problem:   problems.OneMax{N: 32},
		PopSize:   12,
		Crossover: operators.Uniform{},
		Mutator:   operators.BitFlip{},
		RNG:       r,
	})
	for i := 0; i < 5; i++ {
		e.Step()
	}
	cp, err := Capture(e.Population(), r, 5, e.Evaluations())
	if err != nil {
		t.Fatal(err)
	}
	wantBest := e.Population().BestFitness(core.Maximize)

	// The fresh stream a restarted deme would run on: RestorePopulation
	// must not advance or rewrite it.
	fresh := rng.New(777)
	before := fresh.State()
	pop, err := cp.RestorePopulation()
	if err != nil {
		t.Fatal(err)
	}
	if fresh.State() != before {
		t.Fatal("RestorePopulation touched an unrelated stream")
	}
	if pop.Len() != 12 {
		t.Fatalf("restored population size %d, want 12", pop.Len())
	}
	for i, ind := range pop.Members {
		if !ind.Evaluated {
			t.Fatalf("member %d lost its evaluated flag", i)
		}
	}
	if got := pop.BestFitness(core.Maximize); got != wantBest {
		t.Fatalf("restored best %v != checkpointed %v", got, wantBest)
	}

	// A replacement engine built on the fresh stream accepts the restored
	// population and advances: its stream moves, and the checkpointed
	// stream state is never replayed (first post-restart draws differ from
	// the crashed timeline's).
	e2 := ga.NewGenerational(ga.Config{
		Problem:   problems.OneMax{N: 32},
		PopSize:   12,
		Crossover: operators.Uniform{},
		Mutator:   operators.BitFlip{},
		RNG:       fresh,
	})
	e2.SetPopulation(pop)
	mid := fresh.State()
	e2.Step()
	if fresh.State() == mid {
		t.Fatal("restarted engine did not advance its stream")
	}
	if cp.RNGState == before {
		t.Fatal("fresh stream coincides with the checkpointed one")
	}
}

func TestSetPopulationValidation(t *testing.T) {
	e := ga.NewGenerational(ga.Config{
		Problem: problems.OneMax{N: 8}, PopSize: 10,
		Mutator: operators.BitFlip{}, RNG: rng.New(1),
	})
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("size mismatch accepted")
			}
		}()
		e.SetPopulation(core.NewPopulation(0))
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("unevaluated population accepted")
			}
		}()
		pop := core.NewPopulation(10)
		for i := 0; i < 10; i++ {
			pop.Members = append(pop.Members, core.NewIndividual(genome.NewBitString(8)))
		}
		e.SetPopulation(pop)
	}()
}

func TestCheckpointJSONStable(t *testing.T) {
	r := rng.New(3)
	pop := core.RandomPopulation(problems.OneMax{N: 8}, 3, r)
	cp, err := Capture(pop, r, 5, 24)
	if err != nil {
		t.Fatal(err)
	}
	blob, _ := cp.Marshal()
	var m map[string]json.RawMessage
	if err := json.Unmarshal(blob, &m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"population", "rngState", "generation", "evaluations"} {
		if _, ok := m[key]; !ok {
			t.Fatalf("checkpoint JSON missing %q", key)
		}
	}
}

// TestBitStringRoundTripBoundaryLengths pins the packed-layout boundary
// cases through the []bool wire format: lengths straddling the 64-bit
// word size, zero-length genomes, and the tail-mask invariant on the
// restored copy (a dirty tail would silently corrupt popcount fitness).
func TestBitStringRoundTripBoundaryLengths(t *testing.T) {
	r := rng.New(9)
	pop := core.NewPopulation(6)
	for _, n := range []int{0, 1, 63, 64, 65, 130} {
		ind := core.NewIndividual(genome.RandomBitString(n, r))
		ind.Fitness, ind.Evaluated = float64(n), true
		pop.Members = append(pop.Members, ind)
	}
	data, err := MarshalPopulation(pop)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalPopulation(data)
	if err != nil {
		t.Fatal(err)
	}
	for i, ind := range got.Members {
		w := pop.Members[i].Genome.(*genome.BitString)
		g := ind.Genome.(*genome.BitString)
		if !g.Equal(w) {
			t.Fatalf("member %d (len %d): bits changed in round trip", i, w.Len())
		}
		if g.N > 0 && g.Words[len(g.Words)-1]&^genome.TailMask(g.N) != 0 {
			t.Fatalf("member %d: restored genome has dirty tail bits", i)
		}
	}
}
