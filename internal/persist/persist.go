// Package persist implements checkpoint/restore of evolutionary state:
// populations (all four genome representations) and RNG streams serialise
// to JSON, so long runs survive process restarts — the feature GALOPPS
// (Table 1 of the survey) was known for among the classic parallel-GA
// libraries.
//
// A checkpoint is exact: restoring a population plus its engine's RNG
// state and continuing produces bit-identical results to the
// uninterrupted run (asserted by the package tests).
//
// Capture points are driven by the shared run loop: supervised island
// runs snapshot demes from an engine.Observer's OnGeneration hook
// (generation 0 included), so checkpoint cadence is a property of the
// loop, not of any one model's code.
package persist

import (
	"encoding/json"
	"fmt"

	"pga/internal/core"
	"pga/internal/genome"
	"pga/internal/rng"
)

// genomeRecord is the serialised form of any supported genome.
type genomeRecord struct {
	// Type discriminates the representation: "bits", "real", "int", "perm".
	Type string `json:"type"`

	Bits []bool `json:"bits,omitempty"`

	Genes []float64 `json:"genes,omitempty"`
	Lo    []float64 `json:"lo,omitempty"`
	Hi    []float64 `json:"hi,omitempty"`

	IntGenes []int `json:"intGenes,omitempty"`
	Card     int   `json:"card,omitempty"`

	Perm []int `json:"perm,omitempty"`
}

// individualRecord is the serialised form of one individual.
type individualRecord struct {
	Genome    genomeRecord `json:"genome"`
	Fitness   float64      `json:"fitness"`
	Evaluated bool         `json:"evaluated"`
}

// populationRecord is the serialised form of a population.
type populationRecord struct {
	Members []individualRecord `json:"members"`
}

// encodeGenome converts a genome to its record.
func encodeGenome(g core.Genome) (genomeRecord, error) {
	switch v := g.(type) {
	case *genome.BitString:
		// The wire format stays []bool: checkpoints written before the
		// packed-word layout load unchanged, and packed internals never
		// leak into persisted artifacts.
		return genomeRecord{Type: "bits", Bits: v.ToBools()}, nil
	case *genome.RealVector:
		return genomeRecord{Type: "real", Genes: v.Genes, Lo: v.Lo, Hi: v.Hi}, nil
	case *genome.IntVector:
		return genomeRecord{Type: "int", IntGenes: v.Genes, Card: v.Card}, nil
	case *genome.Permutation:
		return genomeRecord{Type: "perm", Perm: v.Perm}, nil
	default:
		return genomeRecord{}, fmt.Errorf("persist: unsupported genome type %T", g)
	}
}

// decodeGenome converts a record back to a genome.
func decodeGenome(rec genomeRecord) (core.Genome, error) {
	switch rec.Type {
	case "bits":
		return genome.BitStringFromBools(rec.Bits), nil
	case "real":
		if len(rec.Lo) != len(rec.Genes) || len(rec.Hi) != len(rec.Genes) {
			return nil, fmt.Errorf("persist: real genome bounds length mismatch")
		}
		return &genome.RealVector{Genes: rec.Genes, Lo: rec.Lo, Hi: rec.Hi}, nil
	case "int":
		return &genome.IntVector{Genes: rec.IntGenes, Card: rec.Card}, nil
	case "perm":
		p := &genome.Permutation{Perm: rec.Perm}
		if !p.Valid() {
			return nil, fmt.Errorf("persist: corrupt permutation genome")
		}
		return p, nil
	default:
		return nil, fmt.Errorf("persist: unknown genome type %q", rec.Type)
	}
}

// MarshalPopulation serialises a population to JSON.
func MarshalPopulation(pop *core.Population) ([]byte, error) {
	rec := populationRecord{Members: make([]individualRecord, 0, pop.Len())}
	for _, ind := range pop.Members {
		g, err := encodeGenome(ind.Genome)
		if err != nil {
			return nil, err
		}
		rec.Members = append(rec.Members, individualRecord{
			Genome: g, Fitness: ind.Fitness, Evaluated: ind.Evaluated,
		})
	}
	return json.Marshal(rec)
}

// UnmarshalPopulation restores a population from JSON.
func UnmarshalPopulation(data []byte) (*core.Population, error) {
	var rec populationRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	pop := core.NewPopulation(len(rec.Members))
	for _, ir := range rec.Members {
		g, err := decodeGenome(ir.Genome)
		if err != nil {
			return nil, err
		}
		pop.Members = append(pop.Members, &core.Individual{
			Genome: g, Fitness: ir.Fitness, Evaluated: ir.Evaluated,
		})
	}
	return pop, nil
}

// Checkpoint bundles a population with the RNG stream that drives its
// engine, capturing everything needed for exact resumption.
type Checkpoint struct {
	// Population is the serialised population.
	Population json.RawMessage `json:"population"`
	// RNGState is the engine stream's internal state.
	RNGState [5]uint64 `json:"rngState"`
	// Generation is the engine's step count at capture time (caller
	// bookkeeping; the library does not interpret it).
	Generation int `json:"generation"`
	// Evaluations at capture time (caller bookkeeping).
	Evaluations int64 `json:"evaluations"`
}

// Capture builds a checkpoint from a population and its engine RNG.
func Capture(pop *core.Population, r *rng.Source, generation int, evaluations int64) (*Checkpoint, error) {
	data, err := MarshalPopulation(pop)
	if err != nil {
		return nil, err
	}
	return &Checkpoint{
		Population:  data,
		RNGState:    r.State(),
		Generation:  generation,
		Evaluations: evaluations,
	}, nil
}

// Marshal serialises the checkpoint to JSON.
func (c *Checkpoint) Marshal() ([]byte, error) { return json.Marshal(c) }

// UnmarshalCheckpoint parses a serialised checkpoint.
func UnmarshalCheckpoint(data []byte) (*Checkpoint, error) {
	var c Checkpoint
	if err := json.Unmarshal(data, &c); err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	return &c, nil
}

// Restore returns the checkpoint's population and loads its RNG state
// into r (the stream the resumed engine must use).
func (c *Checkpoint) Restore(r *rng.Source) (*core.Population, error) {
	pop, err := c.RestorePopulation()
	if err != nil {
		return nil, err
	}
	r.SetState(c.RNGState)
	return pop, nil
}

// RestorePopulation returns the checkpoint's population without touching
// any RNG stream — the restart half of deme supervision
// (internal/supervise), which deliberately resumes a crashed deme on a
// *fresh* split stream: restoring the checkpointed stream would replay
// the exact draws that led to the crash. Each call deserialises a fresh
// copy, so one checkpoint can restart a deme any number of times.
func (c *Checkpoint) RestorePopulation() (*core.Population, error) {
	return UnmarshalPopulation(c.Population)
}
