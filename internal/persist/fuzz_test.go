package persist

import (
	"testing"

	"pga/internal/core"
	"pga/internal/problems"
	"pga/internal/rng"
)

// FuzzUnmarshalPopulation asserts the population decoder never panics and
// never returns a population containing invalid genomes, whatever bytes
// arrive (a checkpoint file read back from disk is untrusted input).
func FuzzUnmarshalPopulation(f *testing.F) {
	// Seed with a genuine checkpoint and a few near-misses.
	r := rng.New(1)
	pop := core.RandomPopulation(problems.OneMax{N: 8}, 3, r)
	good, _ := MarshalPopulation(pop)
	f.Add(good)
	f.Add([]byte(`{"members":[]}`))
	f.Add([]byte(`{"members":[{"genome":{"type":"perm","perm":[0,0]},"fitness":0,"evaluated":true}]}`))
	f.Add([]byte(`{"members":[{"genome":{"type":"real","genes":[1],"lo":[],"hi":[]},"fitness":0,"evaluated":true}]}`))
	f.Add([]byte(`garbage`))

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := UnmarshalPopulation(data)
		if err != nil {
			return
		}
		// Anything accepted must be internally consistent.
		for _, ind := range got.Members {
			if ind.Genome == nil {
				t.Fatal("accepted population with nil genome")
			}
			_ = ind.Genome.Len()
			_ = ind.Genome.String()
			_ = ind.Genome.Clone()
		}
	})
}

// FuzzUnmarshalCheckpoint asserts the checkpoint decoder never panics.
func FuzzUnmarshalCheckpoint(f *testing.F) {
	r := rng.New(2)
	pop := core.RandomPopulation(problems.OneMax{N: 8}, 2, r)
	cp, _ := Capture(pop, r, 1, 2)
	blob, _ := cp.Marshal()
	f.Add(blob)
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"rngState":[0,0,0,0,0]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := UnmarshalCheckpoint(data)
		if err != nil {
			return
		}
		// Restoring may fail (bad population) but must not panic, except
		// for the documented all-zero RNG state, which we screen out.
		if c.RNGState[0]|c.RNGState[1]|c.RNGState[2]|c.RNGState[3] == 0 {
			return
		}
		rr := rng.New(3)
		_, _ = c.Restore(rr)
	})
}
