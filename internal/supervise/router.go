package supervise

import (
	"sync"

	"pga/internal/topology"
)

// Router is a failure-aware view of an island topology. It implements
// topology.Topology, serving the base graph's neighbour lists until demes
// die; a dead deme is then healed *through*: its neighbours are routed
// around it to the nearest live demes along base-graph paths, so the
// migration graph keeps the connectivity the dead deme was providing
// instead of simply severing its links (a ring with one dead deme is
// still a ring of the survivors, not a chain).
//
// Router is safe for concurrent use: workers read neighbour lists while
// the supervisor marks failures.
type Router struct {
	mu   sync.RWMutex
	base topology.Topology
	dead []bool
	// adj caches the healed adjacency, rebuilt on every death.
	adj [][]int
}

// NewRouter wraps a base topology with all demes alive.
func NewRouter(base topology.Topology) *Router {
	r := &Router{
		base: base,
		dead: make([]bool, base.Size()),
	}
	r.rebuild()
	return r
}

var _ topology.Topology = (*Router)(nil)

// Name implements topology.Topology.
func (r *Router) Name() string { return "routed:" + r.base.Name() }

// Size implements topology.Topology.
func (r *Router) Size() int { return r.base.Size() }

// Neighbors implements topology.Topology: the healed neighbour list of
// deme i (empty when i is dead). The returned slice must not be modified.
func (r *Router) Neighbors(i int) []int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.adj[i]
}

// Alive reports whether deme i is still alive.
func (r *Router) Alive(i int) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return !r.dead[i]
}

// AliveCount returns the number of live demes.
func (r *Router) AliveCount() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	n := 0
	for _, d := range r.dead {
		if !d {
			n++
		}
	}
	return n
}

// Dead returns the dead deme indices in ascending order.
func (r *Router) Dead() []int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []int
	for i, d := range r.dead {
		if d {
			out = append(out, i)
		}
	}
	return out
}

// Refresh recomputes the healed adjacency from the base topology — call
// after a dynamic base topology has been rewired.
func (r *Router) Refresh() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.rebuild()
}

// MarkDead declares deme i dead and heals the graph around it.
func (r *Router) MarkDead(i int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.dead[i] {
		return
	}
	r.dead[i] = true
	r.rebuild()
}

// MarkAlive revives deme i and restores its base-graph links — the
// inverse of MarkDead, used by wire-mode islands when a partitioned or
// crashed peer reconnects: the healed detour routes are torn down and
// migration flows through the rejoined peer again. In-process
// supervision never revives (a dead deme's engine is gone for good);
// over a real network, "dead" is a reachability verdict that the next
// successful dial overturns.
func (r *Router) MarkAlive(i int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.dead[i] {
		return
	}
	r.dead[i] = false
	r.rebuild()
}

// rebuild recomputes the healed adjacency under r.mu: for each live deme,
// a BFS that traverses dead demes (and only dead demes) replaces every
// dead neighbour with the nearest live demes reachable through the dead
// region. Self-loops and duplicates are dropped.
func (r *Router) rebuild() {
	n := r.base.Size()
	adj := make([][]int, n)
	for i := 0; i < n; i++ {
		if r.dead[i] {
			adj[i] = nil
			continue
		}
		seen := make(map[int]bool, 8)
		var out []int
		queue := make([]int, 0, 8)
		for _, j := range r.base.Neighbors(i) {
			if seen[j] {
				continue
			}
			seen[j] = true
			queue = append(queue, j)
		}
		for len(queue) > 0 {
			j := queue[0]
			queue = queue[1:]
			if !r.dead[j] {
				if j != i {
					out = append(out, j)
				}
				continue
			}
			// j is dead: expand through it.
			for _, k := range r.base.Neighbors(j) {
				if !seen[k] {
					seen[k] = true
					queue = append(queue, k)
				}
			}
		}
		adj[i] = out
	}
	r.adj = adj
}
