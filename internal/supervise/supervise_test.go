package supervise

import (
	"sort"
	"testing"
	"time"

	"pga/internal/ga"
	"pga/internal/operators"
	"pga/internal/problems"
	"pga/internal/rng"
	"pga/internal/topology"
)

// testFactory returns a small OneMax engine factory.
func testFactory(bits, pop int) func(int, *rng.Source) ga.Engine {
	return func(deme int, r *rng.Source) ga.Engine {
		return ga.NewGenerational(ga.Config{
			Problem:   problems.OneMax{N: bits},
			PopSize:   pop,
			Crossover: operators.Uniform{},
			Mutator:   operators.BitFlip{},
			RNG:       r,
		})
	}
}

// newTestSupervisor builds a supervisor over a ring with attached deme
// streams and engines, returning both.
func newTestSupervisor(t *testing.T, cfg Config, plan *FaultPlan, demes int) (*Supervisor, []ga.Engine) {
	t.Helper()
	factory := testFactory(16, 8)
	master := rng.New(99)
	s := New(cfg, plan, topology.Ring(demes), factory, master.Split())
	engines := make([]ga.Engine, demes)
	for i := 0; i < demes; i++ {
		src := master.Split()
		s.Attach(i, src)
		engines[i] = factory(i, src)
	}
	return s, engines
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.WithDefaults()
	if c.CheckpointEvery != 5 || c.MaxRestarts != 3 || c.Backoff != time.Millisecond || c.MaxSendRetries != 3 {
		t.Fatalf("unexpected defaults: %+v", c)
	}
	// Explicit values survive.
	c = Config{CheckpointEvery: 2, MaxRestarts: 7}.WithDefaults()
	if c.CheckpointEvery != 2 || c.MaxRestarts != 7 {
		t.Fatalf("explicit values overridden: %+v", c)
	}
}

func TestFaultPlanTakeConsumesBudget(t *testing.T) {
	p := NewFaultPlan().PanicTimes(2, 5, 2)
	if f := p.take(2, 4); f != nil {
		t.Fatal("fault fired before its generation")
	}
	if f := p.take(1, 5); f != nil {
		t.Fatal("fault fired for the wrong deme")
	}
	if f := p.take(2, 5); f == nil || f.Kind != FaultPanic {
		t.Fatal("first trigger missing")
	}
	// Replays at or after Gen keep firing while the budget lasts.
	if f := p.take(2, 7); f == nil {
		t.Fatal("second trigger missing")
	}
	if f := p.take(2, 8); f != nil {
		t.Fatal("fault fired beyond its Times budget")
	}
}

func TestFaultPlanNilSafe(t *testing.T) {
	var p *FaultPlan
	if p.Len() != 0 {
		t.Fatal("nil plan has faults")
	}
	p.apply(0, 1) // must not panic
}

func TestRouterHealsRingAroundDeadDeme(t *testing.T) {
	r := NewRouter(topology.Ring(4)) // 0→1→2→3→0
	r.MarkDead(2)
	if got := r.Neighbors(1); len(got) != 1 || got[0] != 3 {
		t.Fatalf("deme 1 should route around dead 2 to 3, got %v", got)
	}
	if got := r.Neighbors(2); len(got) != 0 {
		t.Fatalf("dead deme still has neighbours: %v", got)
	}
	if r.Alive(2) || !r.Alive(1) || r.AliveCount() != 3 {
		t.Fatal("liveness bookkeeping wrong")
	}
	if d := r.Dead(); len(d) != 1 || d[0] != 2 {
		t.Fatalf("Dead() = %v", d)
	}
}

func TestRouterHealsThroughDeadRegions(t *testing.T) {
	// Ring of 5 with two adjacent deaths: 0→1→2→3→4→0, kill 1 and 2;
	// 0 must reach 3 through the dead region.
	r := NewRouter(topology.Ring(5))
	r.MarkDead(1)
	r.MarkDead(2)
	if got := r.Neighbors(0); len(got) != 1 || got[0] != 3 {
		t.Fatalf("deme 0 should heal through 1,2 to 3, got %v", got)
	}
}

func TestRouterStarHubDeath(t *testing.T) {
	// Star(4): hub 0 ↔ leaves 1..3. Killing the hub must reconnect the
	// leaves to each other (each leaf's only link was through 0).
	r := NewRouter(topology.Star(4))
	r.MarkDead(0)
	for leaf := 1; leaf <= 3; leaf++ {
		got := append([]int(nil), r.Neighbors(leaf)...)
		sort.Ints(got)
		want := []int{}
		for j := 1; j <= 3; j++ {
			if j != leaf {
				want = append(want, j)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("leaf %d healed neighbours %v, want %v", leaf, got, want)
		}
		for k := range want {
			if got[k] != want[k] {
				t.Fatalf("leaf %d healed neighbours %v, want %v", leaf, got, want)
			}
		}
	}
}

func TestRouterImplementsTopology(t *testing.T) {
	var _ topology.Topology = NewRouter(topology.Ring(3))
	r := NewRouter(topology.Ring(3))
	if r.Size() != 3 || r.Name() != "routed:ring" {
		t.Fatalf("Size/Name wrong: %d %q", r.Size(), r.Name())
	}
}

func TestRunStepRecoversPanic(t *testing.T) {
	plan := NewFaultPlan().PanicAt(0, 1)
	s, engines := newTestSupervisor(t, Config{Backoff: time.Microsecond}, plan, 2)
	out := s.RunStep(0, 1, engines[0])
	if out.Status != StepPanicked || out.Err == nil {
		t.Fatalf("panic not recovered: %+v", out)
	}
	// Unscripted demes step normally.
	if out := s.RunStep(1, 1, engines[1]); out.Status != StepOK {
		t.Fatalf("healthy step failed: %+v", out)
	}
}

func TestRunStepTimesOutOnHang(t *testing.T) {
	plan := NewFaultPlan().HangAt(0, 1, 200*time.Millisecond)
	s, engines := newTestSupervisor(t, Config{Heartbeat: 10 * time.Millisecond, Backoff: time.Microsecond}, plan, 1)
	startAt := time.Now()
	out := s.RunStep(0, 1, engines[0])
	if out.Status != StepTimedOut {
		t.Fatalf("hang not detected: %+v", out)
	}
	if time.Since(startAt) > 150*time.Millisecond {
		t.Fatal("RunStep waited for the hang instead of abandoning it")
	}
}

func TestRestartRestoresCheckpointOnFreshStream(t *testing.T) {
	s, engines := newTestSupervisor(t, Config{MaxRestarts: 2, Backoff: time.Microsecond}, nil, 1)
	e := engines[0]
	for i := 0; i < 3; i++ {
		e.Step()
	}
	wantBest := e.Population().BestFitness(problems.OneMax{N: 16}.Direction())
	if err := s.Checkpoint(0, e.Population(), 3, e.Evaluations()); err != nil {
		t.Fatal(err)
	}
	e.Step() // work that will be lost

	eng, frozen, ok := s.Restart(0, 4, FailurePanic, "boom")
	if !ok || eng == nil || frozen != nil {
		t.Fatalf("restart failed: ok=%v eng=%v frozen=%v", ok, eng, frozen)
	}
	pop := eng.Population()
	if pop.Len() != 8 {
		t.Fatalf("restored population size %d", pop.Len())
	}
	for _, ind := range pop.Members {
		if !ind.Evaluated {
			t.Fatal("restored member not evaluated")
		}
	}
	if got := pop.BestFitness(problems.OneMax{N: 16}.Direction()); got != wantBest {
		t.Fatalf("restored best %v != checkpointed best %v", got, wantBest)
	}
	if s.Restarts() != 1 || s.PanicsRecovered() != 1 {
		t.Fatalf("counters: restarts=%d panics=%d", s.Restarts(), s.PanicsRecovered())
	}
	if s.ResumeGen(0) != 3 {
		t.Fatalf("ResumeGen = %d", s.ResumeGen(0))
	}
	fails := s.Failures()
	if len(fails) != 1 || !fails[0].Restarted || fails[0].Kind != FailurePanic || fails[0].Gen != 4 {
		t.Fatalf("failure log wrong: %+v", fails)
	}
}

func TestRestartBudgetExhaustionKillsDeme(t *testing.T) {
	s, engines := newTestSupervisor(t, Config{MaxRestarts: 1, Backoff: time.Microsecond}, nil, 2)
	e := engines[0]
	if err := s.Checkpoint(0, e.Population(), 0, e.Evaluations()); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := s.Restart(0, 1, FailurePanic, "first"); !ok {
		t.Fatal("first restart should succeed")
	}
	eng, frozen, ok := s.Restart(0, 2, FailureTimeout, nil)
	if ok || eng != nil {
		t.Fatal("second restart should exhaust the budget")
	}
	if frozen == nil || frozen.Len() != 8 {
		t.Fatalf("dead deme should freeze its checkpoint, got %v", frozen)
	}
	if s.Router().Alive(0) {
		t.Fatal("dead deme not marked in router")
	}
	if s.HeartbeatTimeouts() != 1 {
		t.Fatalf("timeouts=%d", s.HeartbeatTimeouts())
	}
	fails := s.Failures()
	if len(fails) != 2 || fails[1].Restarted {
		t.Fatalf("failure log wrong: %+v", fails)
	}
	// Ring(2): deme 1's healed neighbours exclude the dead deme 0; with
	// only one live deme no links remain.
	if got := s.Router().Neighbors(1); len(got) != 0 {
		t.Fatalf("lone survivor should have no neighbours, got %v", got)
	}
}

func TestRetiredEvaluationsAccumulate(t *testing.T) {
	s, engines := newTestSupervisor(t, Config{MaxRestarts: 3, Backoff: time.Microsecond}, nil, 1)
	e := engines[0]
	evals := e.Evaluations()
	if err := s.Checkpoint(0, e.Population(), 0, evals); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := s.Restart(0, 1, FailurePanic, "x"); !ok {
		t.Fatal("restart failed")
	}
	if s.RetiredEvaluations() != evals {
		t.Fatalf("retired %d, want %d", s.RetiredEvaluations(), evals)
	}
}

func TestCheckpointDue(t *testing.T) {
	s, _ := newTestSupervisor(t, Config{CheckpointEvery: 4}, nil, 1)
	for _, tc := range []struct {
		gen  int
		want bool
	}{{1, false}, {4, true}, {6, false}, {8, true}} {
		if got := s.CheckpointDue(tc.gen); got != tc.want {
			t.Fatalf("CheckpointDue(%d) = %v", tc.gen, got)
		}
	}
}

func TestKindStrings(t *testing.T) {
	if FaultPanic.String() != "panic" || FaultHang.String() != "hang" {
		t.Fatal("FaultKind strings wrong")
	}
	if FailurePanic.String() != "panic" || FailureTimeout.String() != "timeout" {
		t.Fatal("FailureKind strings wrong")
	}
}
