package supervise

import (
	"fmt"
	"sync"
	"time"
)

// FaultKind enumerates the injectable failure modes of the deterministic
// fault harness.
type FaultKind int

const (
	// FaultPanic makes the deme's step panic (a crashing fitness
	// function or operator).
	FaultPanic FaultKind = iota
	// FaultHang stalls the deme's step for HangFor (a wedged evaluation,
	// a stuck NFS mount, a GC'd-to-death node) so the heartbeat deadline
	// fires.
	FaultHang
)

// String implements fmt.Stringer.
func (k FaultKind) String() string {
	if k == FaultHang {
		return "hang"
	}
	return "panic"
}

// Fault is one scripted failure: deme Deme misbehaves on its first Times
// step attempts at or after generation Gen. "At or after" plus the Times
// budget makes plans robust to checkpoint-rollback replays: a deme
// restarted from an earlier generation re-arms the fault only while the
// budget lasts, so "fail K times then heal" is expressible directly.
type Fault struct {
	// Deme is the target deme index.
	Deme int
	// Gen is the 1-based generation from which the fault is armed.
	Gen int
	// Kind selects panic or hang.
	Kind FaultKind
	// HangFor is the stall duration for FaultHang.
	HangFor time.Duration
	// Times is how many step attempts trigger before the fault heals;
	// 0 means once.
	Times int
}

// FaultPlan is a deterministic fault-injection script consumed by a
// Supervisor: the same plan against the same seeded run reproduces the
// same failure sequence, which is what makes robustness testable under
// -race (the Harada/Alba/Luque requirement that distributed-PGA claims
// hold under realistic, *repeatable* failures).
//
// A FaultPlan is safe for concurrent use and must not be shared between
// simultaneous runs (it consumes its trigger budgets).
type FaultPlan struct {
	mu        sync.Mutex
	faults    []Fault
	remaining []int
}

// NewFaultPlan returns an empty plan; chain PanicAt/HangAt/Add to script
// failures.
func NewFaultPlan() *FaultPlan { return &FaultPlan{} }

// Add appends a fault and returns the plan for chaining.
func (p *FaultPlan) Add(f Fault) *FaultPlan {
	p.mu.Lock()
	defer p.mu.Unlock()
	times := f.Times
	if times <= 0 {
		times = 1
	}
	p.faults = append(p.faults, f)
	p.remaining = append(p.remaining, times)
	return p
}

// PanicAt scripts a single panic of deme at generation gen.
func (p *FaultPlan) PanicAt(deme, gen int) *FaultPlan {
	return p.Add(Fault{Deme: deme, Gen: gen, Kind: FaultPanic})
}

// PanicTimes scripts k consecutive failing step attempts of deme starting
// at generation gen, after which the deme heals (the Gagné-style
// transient fault).
func (p *FaultPlan) PanicTimes(deme, gen, k int) *FaultPlan {
	return p.Add(Fault{Deme: deme, Gen: gen, Kind: FaultPanic, Times: k})
}

// HangAt scripts a single stall of deme at generation gen for d.
func (p *FaultPlan) HangAt(deme, gen int, d time.Duration) *FaultPlan {
	return p.Add(Fault{Deme: deme, Gen: gen, Kind: FaultHang, HangFor: d})
}

// Len returns the number of scripted faults.
func (p *FaultPlan) Len() int {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.faults)
}

// take consumes and returns the first armed fault matching (deme, gen),
// or nil. A fault is armed while gen >= Gen and its Times budget is
// unspent.
func (p *FaultPlan) take(deme, gen int) *Fault {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for i, f := range p.faults {
		if f.Deme == deme && gen >= f.Gen && p.remaining[i] > 0 {
			p.remaining[i]--
			out := f
			return &out
		}
	}
	return nil
}

// apply injects the scripted fault for (deme, gen), if any: a FaultPanic
// panics, a FaultHang sleeps. It is called inside the supervised step so
// panics are recovered and hangs trip the heartbeat deadline.
func (p *FaultPlan) apply(deme, gen int) {
	f := p.take(deme, gen)
	if f == nil {
		return
	}
	switch f.Kind {
	case FaultHang:
		time.Sleep(f.HangFor)
	default:
		panic(fmt.Sprintf("supervise: injected panic (deme %d, gen %d)", deme, gen))
	}
}
