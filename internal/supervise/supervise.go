// Package supervise is the robustness layer of the parallel island model:
// it wraps each deme goroutine of island.RunParallel in a supervisor that
// recovers panics, restarts crashed demes from periodic in-memory
// checkpoints, detects hung demes through per-generation heartbeats, and
// heals the migration topology around demes that are declared dead.
//
// The survey's §4 quotes Gagné, Parizeau & Dubreuil's three properties a
// distributed EC system must offer — transparency, robustness,
// adaptivity. The repository's master–slave farm (internal/masterslave)
// and virtual cluster (internal/cluster) model them; this package makes
// the real goroutine-per-deme runtime deliver them: a panicking fitness
// function costs one deme one checkpoint interval instead of the whole
// process, a wedged evaluation is detected and the deme replaced, and a
// deme that exhausts its restart budget is routed around rather than
// hanging the synchronisation barrier forever.
//
// Failure semantics. A restarted deme resumes from its last checkpoint on
// a *fresh* split RNG stream: restoring the checkpointed stream would
// deterministically replay the crash (same draws, same poisoned
// individual), so supervision deliberately trades bit-exact resumption —
// persist's headline guarantee, still available for clean shutdowns — for
// forward progress. Work a deme performed after its last checkpoint is
// lost and excluded from evaluation totals.
//
// Wiring. Supervision hangs off the shared run loop (internal/engine):
// the island steppers call RunStep/Restart per generation, checkpoints
// are taken from an engine.Observer's OnGeneration hook, a rewound
// restart is reported to the loop through StepInfo.Rewound/ResumeAt, and
// async dead-letter draining rides the OnDone hook.
//
// Everything is testable deterministically: FaultPlan scripts panics and
// hangs at exact (deme, generation) coordinates, so the package's own
// tests and experiment E15 run the same seeded workload with and without
// injected faults under -race.
package supervise

import (
	"sync"
	"sync/atomic"
	"time"

	"pga/internal/core"
	"pga/internal/ga"
	"pga/internal/persist"
	"pga/internal/rng"
	"pga/internal/topology"
)

// Config tunes the supervision layer. The zero value is usable; zero
// fields select the documented defaults via WithDefaults.
type Config struct {
	// CheckpointEvery is the number of generations between in-memory
	// checkpoints of each deme; default 5. Smaller values bound the work
	// lost to a crash at the price of more serialisation.
	CheckpointEvery int
	// MaxRestarts is the per-deme restart budget; when exhausted the
	// deme is declared dead and the topology healed around it.
	// Default 3; negative disables restarts entirely (the first failure
	// kills the deme).
	MaxRestarts int
	// Heartbeat is the per-generation deadline: a deme whose step does
	// not complete within it is declared hung, abandoned and restarted.
	// 0 disables hang detection (steps run inline, panics are still
	// recovered).
	Heartbeat time.Duration
	// Backoff is the delay before the first restart of a deme; it
	// doubles on every consecutive restart of the same deme (capped at
	// 64×). Default 1ms.
	Backoff time.Duration
	// MaxSendRetries bounds how many migration epochs an undeliverable
	// async migrant batch is retried before it is dead-lettered.
	// Default 3.
	MaxSendRetries int
}

// WithDefaults returns a copy of c with zero fields set to defaults.
func (c Config) WithDefaults() Config {
	if c.CheckpointEvery <= 0 {
		c.CheckpointEvery = 5
	}
	if c.MaxRestarts == 0 {
		c.MaxRestarts = 3
	}
	if c.Backoff <= 0 {
		c.Backoff = time.Millisecond
	}
	if c.MaxSendRetries <= 0 {
		c.MaxSendRetries = 3
	}
	return c
}

// FailureKind classifies a deme failure.
type FailureKind int

const (
	// FailurePanic is a recovered panic in the deme's step (fitness
	// function, operator, or injected fault).
	FailurePanic FailureKind = iota
	// FailureTimeout is a missed heartbeat: the step did not complete
	// within Config.Heartbeat.
	FailureTimeout
)

// String implements fmt.Stringer.
func (k FailureKind) String() string {
	if k == FailureTimeout {
		return "timeout"
	}
	return "panic"
}

// DemeFailure is the typed event a deme failure is converted into
// (instead of process death): what failed, when, why, and whether the
// supervisor restarted the deme or declared it dead.
type DemeFailure struct {
	// Deme is the failed deme.
	Deme int
	// Gen is the island generation whose step failed.
	Gen int
	// Kind is the failure class.
	Kind FailureKind
	// Err is the recovered panic value (nil for timeouts).
	Err any
	// Restarted reports whether the deme was restarted from its
	// checkpoint; false means the restart budget was exhausted and the
	// deme is dead.
	Restarted bool
}

// StepStatus is the outcome class of one supervised step attempt.
type StepStatus int

const (
	// StepOK: the step completed.
	StepOK StepStatus = iota
	// StepPanicked: the step panicked and was recovered.
	StepPanicked
	// StepTimedOut: the step missed the heartbeat deadline and was
	// abandoned (its goroutine is left to finish in the background; the
	// engine it was mutating must never be used again).
	StepTimedOut
)

// StepOutcome reports one supervised step attempt.
type StepOutcome struct {
	// Status is the outcome class.
	Status StepStatus
	// Err is the recovered panic value when Status is StepPanicked.
	Err any
}

// populationSetter is the restart half of checkpointing, implemented by
// the ga engines (see ga.Generational.SetPopulation).
type populationSetter interface {
	SetPopulation(*core.Population)
}

// demeState is the supervisor's bookkeeping for one deme, guarded by
// Supervisor.mu.
type demeState struct {
	// src is the RNG stream of the deme's *current* engine (replaced on
	// restart); checkpoints capture its state.
	src *rng.Source
	// cp is the last checkpoint.
	cp *persist.Checkpoint
	// restarts is the consumed restart budget.
	restarts int
	// dead marks an abandoned deme.
	dead bool
}

// Supervisor runs the demes of one island run under supervision. It is
// created per run (it accumulates counters and consumes the fault plan)
// and is safe for concurrent use by the deme worker goroutines.
type Supervisor struct {
	cfg       Config
	plan      *FaultPlan
	router    *Router
	newEngine func(deme int, r *rng.Source) ga.Engine

	mu         sync.Mutex
	restartSrc *rng.Source
	demes      []demeState
	failures   []DemeFailure

	restarts     atomic.Int64
	panics       atomic.Int64
	timeouts     atomic.Int64
	deadLettered atomic.Int64
	// retiredEvals accumulates the checkpointed evaluation counts of
	// replaced engines, so run totals survive engine swaps. Evaluations
	// a deme performed after its last checkpoint are lost work and are
	// deliberately not counted (counting them exactly would race the
	// abandoned goroutine still running the hung step).
	retiredEvals atomic.Int64
}

// New creates a supervisor for one run: cfg tuned with defaults, an
// optional fault plan, the base topology to heal, the deme engine
// factory used for restarts, and a private source from which every
// restarted deme's fresh stream is split.
func New(cfg Config, plan *FaultPlan, base topology.Topology, newEngine func(int, *rng.Source) ga.Engine, restartSrc *rng.Source) *Supervisor {
	return &Supervisor{
		cfg:        cfg.WithDefaults(),
		plan:       plan,
		router:     NewRouter(base),
		newEngine:  newEngine,
		restartSrc: restartSrc,
		demes:      make([]demeState, base.Size()),
	}
}

// Config returns the effective (defaulted) configuration.
func (s *Supervisor) Config() Config { return s.cfg }

// Router returns the failure-aware topology view.
func (s *Supervisor) Router() *Router { return s.router }

// Attach registers deme i's engine stream so checkpoints can capture it.
// Must be called once per deme before the run starts.
func (s *Supervisor) Attach(i int, src *rng.Source) {
	s.mu.Lock()
	s.demes[i].src = src
	s.mu.Unlock()
}

// Checkpoint snapshots deme i: population, current stream state, and
// caller bookkeeping. The population is serialised immediately, so later
// mutations by the engine never leak into the checkpoint.
func (s *Supervisor) Checkpoint(i int, pop *core.Population, gen int, evals int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	cp, err := persist.Capture(pop, s.demes[i].src, gen, evals)
	if err != nil {
		return err
	}
	s.demes[i].cp = cp
	return nil
}

// CheckpointDue reports whether generation gen is a checkpoint
// generation.
func (s *Supervisor) CheckpointDue(gen int) bool {
	return gen%s.cfg.CheckpointEvery == 0
}

// RunStep executes one supervised step of deme i at generation gen on e:
// scripted faults are injected, panics recovered, and — when a heartbeat
// deadline is configured — the step is abandoned if it overruns. After a
// StepTimedOut outcome the engine e must be discarded: the abandoned
// goroutine may still be mutating it.
func (s *Supervisor) RunStep(i, gen int, e ga.Engine) StepOutcome {
	step := func() (out StepOutcome) {
		defer func() {
			if r := recover(); r != nil {
				out = StepOutcome{Status: StepPanicked, Err: r}
			}
		}()
		s.plan.apply(i, gen)
		e.Step()
		return StepOutcome{Status: StepOK}
	}
	if s.cfg.Heartbeat <= 0 {
		return step()
	}
	ch := make(chan StepOutcome, 1) // buffered: an abandoned step never blocks
	// The one deliberately unsupervised goroutine in the library: a hung
	// step cannot be cancelled (Engine.Step takes no context), so the
	// supervisor abandons it on heartbeat timeout and the restart budget
	// bounds how many can accumulate. The send is provably non-blocking:
	// capacity-1 buffer, exactly one send per goroutine.
	//pgalint:ignore goroleak,blockingsend heartbeat-abandoned step; single send into cap-1 buffer
	go func() { ch <- step() }()
	timer := time.NewTimer(s.cfg.Heartbeat)
	defer timer.Stop()
	select {
	case out := <-ch:
		return out
	case <-timer.C:
		return StepOutcome{Status: StepTimedOut}
	}
}

// Restart handles a failed step of deme i at generation gen: it records
// the typed DemeFailure, and either restarts the deme — exponential
// backoff, a fresh engine on a fresh split stream, population restored
// from the last checkpoint — or, when the restart budget is exhausted,
// declares it dead and heals the topology around it.
//
// On restart it returns the replacement engine and the checkpoint's
// generation (the deme resumes after it). On death it returns
// (nil, pop, false) where pop is the last checkpointed population,
// frozen for final reporting.
func (s *Supervisor) Restart(i, gen int, kind FailureKind, cause any) (ga.Engine, *core.Population, bool) {
	switch kind {
	case FailureTimeout:
		s.timeouts.Add(1)
	default:
		s.panics.Add(1)
	}

	s.mu.Lock()
	d := &s.demes[i]
	if d.dead {
		// Already declared dead (defensive; callers stop stepping dead demes).
		s.mu.Unlock()
		return nil, nil, false
	}
	if d.cp == nil || d.restarts >= s.cfg.MaxRestarts {
		d.dead = true
		s.failures = append(s.failures, DemeFailure{Deme: i, Gen: gen, Kind: kind, Err: cause, Restarted: false})
		var frozen *core.Population
		if d.cp != nil {
			frozen, _ = d.cp.RestorePopulation()
			s.retiredEvals.Add(d.cp.Evaluations)
		}
		s.mu.Unlock()
		s.router.MarkDead(i)
		return nil, frozen, false
	}
	d.restarts++
	attempt := d.restarts
	cp := d.cp
	src := s.restartSrc.Split()
	d.src = src
	s.retiredEvals.Add(cp.Evaluations)
	s.failures = append(s.failures, DemeFailure{Deme: i, Gen: gen, Kind: kind, Err: cause, Restarted: true})
	s.mu.Unlock()
	s.restarts.Add(1)

	// Exponential backoff: Backoff × 2^(attempt-1), capped at 64×.
	shift := attempt - 1
	if shift > 6 {
		shift = 6
	}
	time.Sleep(s.cfg.Backoff << uint(shift))

	e := s.newEngine(i, src)
	pop, err := cp.RestorePopulation()
	if err == nil {
		if ps, ok := e.(populationSetter); ok {
			ps.SetPopulation(pop)
		}
		// Engines without SetPopulation (none in-tree today) restart
		// cold on their fresh random population.
	}
	return e, nil, true
}

// ResumeGen returns the generation of deme i's last checkpoint — where a
// restarted deme resumes its private generation counter (async mode; the
// sync barrier instead retries the current global generation).
func (s *Supervisor) ResumeGen(i int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.demes[i].cp == nil {
		return 0
	}
	return s.demes[i].cp.Generation
}

// DeadLetter counts n undeliverable migrant batches.
func (s *Supervisor) DeadLetter(n int64) { s.deadLettered.Add(n) }

// Restarts returns the number of deme restarts performed.
func (s *Supervisor) Restarts() int64 { return s.restarts.Load() }

// PanicsRecovered returns the number of recovered step panics.
func (s *Supervisor) PanicsRecovered() int64 { return s.panics.Load() }

// HeartbeatTimeouts returns the number of missed heartbeat deadlines.
func (s *Supervisor) HeartbeatTimeouts() int64 { return s.timeouts.Load() }

// DeadLettered returns the number of dead-lettered migrant batches.
func (s *Supervisor) DeadLettered() int64 { return s.deadLettered.Load() }

// RetiredEvaluations returns the checkpointed evaluation counts of all
// replaced engines (add to the live engines' totals for a run total).
func (s *Supervisor) RetiredEvaluations() int64 { return s.retiredEvals.Load() }

// Failures returns the recorded failure events in occurrence order.
func (s *Supervisor) Failures() []DemeFailure {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]DemeFailure(nil), s.failures...)
}
