// Package topology implements the inter-deme communication topologies the
// survey lists in §3.2: uni- and bi-directional rings, stars, 2-D grids
// (meshes), toruses, hypercubes, fully connected graphs and random regular
// graphs, plus an isolated (edgeless) topology and a dynamic rewiring
// wrapper.
//
// A topology is a directed graph over deme indices 0..N-1: Neighbors(i)
// lists the demes that deme i sends migrants to. Cantú-Paz (2000) — the
// survey's central theory reference — showed topology choice trades
// communication cost against convergence pressure; the experiment E14
// sweeps every type defined here.
package topology

import (
	"fmt"

	"pga/internal/rng"
)

// Topology is a directed communication graph over demes.
type Topology interface {
	// Name identifies the topology in tables and logs.
	Name() string
	// Size returns the number of demes.
	Size() int
	// Neighbors returns the demes that deme i sends migrants to. The
	// returned slice must not be modified.
	Neighbors(i int) []int
}

// static is the shared implementation: a precomputed adjacency list.
type static struct {
	name string
	adj  [][]int
}

func (s *static) Name() string          { return s.name }
func (s *static) Size() int             { return len(s.adj) }
func (s *static) Neighbors(i int) []int { return s.adj[i] }

// Isolated returns the edgeless topology: no migration at all (the
// "isolated demes" arm of Cantú-Paz's comparison).
func Isolated(n int) Topology {
	return &static{name: "isolated", adj: make([][]int, n)}
}

// Ring returns a unidirectional ring: deme i sends to (i+1) mod n.
func Ring(n int) Topology {
	adj := make([][]int, n)
	for i := range adj {
		adj[i] = []int{(i + 1) % n}
	}
	return &static{name: "ring", adj: adj}
}

// BiRing returns a bidirectional ring: deme i sends to both neighbours.
func BiRing(n int) Topology {
	adj := make([][]int, n)
	for i := range adj {
		adj[i] = []int{(i + 1) % n, (i + n - 1) % n}
	}
	return &static{name: "bi-ring", adj: adj}
}

// Star returns a star topology: deme 0 is the hub, connected
// bidirectionally to every leaf.
func Star(n int) Topology {
	adj := make([][]int, n)
	for i := 1; i < n; i++ {
		adj[0] = append(adj[0], i)
		adj[i] = []int{0}
	}
	return &static{name: "star", adj: adj}
}

// Complete returns the fully connected topology (Cantú-Paz's
// fastest-converging case).
func Complete(n int) Topology {
	adj := make([][]int, n)
	for i := range adj {
		for j := 0; j < n; j++ {
			if j != i {
				adj[i] = append(adj[i], j)
			}
		}
	}
	return &static{name: "complete", adj: adj}
}

// Grid returns a rows×cols 2-D mesh with 4-neighbourhood and no wraparound
// (the Intel-Paragon-style grid of §3.1).
func Grid(rows, cols int) Topology {
	n := rows * cols
	adj := make([][]int, n)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			i := r*cols + c
			if r > 0 {
				adj[i] = append(adj[i], (r-1)*cols+c)
			}
			if r < rows-1 {
				adj[i] = append(adj[i], (r+1)*cols+c)
			}
			if c > 0 {
				adj[i] = append(adj[i], r*cols+c-1)
			}
			if c < cols-1 {
				adj[i] = append(adj[i], r*cols+c+1)
			}
		}
	}
	return &static{name: fmt.Sprintf("grid(%dx%d)", rows, cols), adj: adj}
}

// Torus returns a rows×cols 2-D torus: a grid with wraparound links (the
// CRAY-T3D-style tore of §3.1).
func Torus(rows, cols int) Topology {
	n := rows * cols
	adj := make([][]int, n)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			i := r*cols + c
			up := ((r-1+rows)%rows)*cols + c
			down := ((r + 1) % rows) * cols
			down += c
			left := r*cols + (c-1+cols)%cols
			right := r*cols + (c+1)%cols
			adj[i] = appendUnique(adj[i], i, up, down, left, right)
		}
	}
	return &static{name: fmt.Sprintf("torus(%dx%d)", rows, cols), adj: adj}
}

// Hypercube returns a d-dimensional hypercube over 2^d demes (Belding's
// 1989 platform, §2).
func Hypercube(d int) Topology {
	n := 1 << uint(d)
	adj := make([][]int, n)
	for i := 0; i < n; i++ {
		for b := 0; b < d; b++ {
			adj[i] = append(adj[i], i^(1<<uint(b)))
		}
	}
	return &static{name: fmt.Sprintf("hypercube(%d)", d), adj: adj}
}

// RandomRegular returns a random topology where every deme sends to k
// distinct others (drawn deterministically from seed).
func RandomRegular(n, k int, seed uint64) Topology {
	if k >= n {
		panic("topology: RandomRegular requires k < n")
	}
	r := rng.New(seed)
	adj := make([][]int, n)
	for i := range adj {
		for _, j := range r.Sample(n-1, k) {
			if j >= i {
				j++
			}
			adj[i] = append(adj[i], j)
		}
	}
	return &static{name: fmt.Sprintf("random(%d)", k), adj: adj}
}

// appendUnique appends values not already present, dropping self-loops
// (handles torus self/dup links on 1- or 2-wide dimensions; self is the
// deme's own index).
func appendUnique(s []int, self int, vals ...int) []int {
	for _, v := range vals {
		if v == self {
			continue
		}
		dup := false
		for _, x := range s {
			if x == v {
				dup = true
				break
			}
		}
		if !dup {
			s = append(s, v)
		}
	}
	return s
}

// Dynamic wraps a topology generator so the graph is rewired on demand —
// the "dynamic topologies" option the survey mentions in §1.1.
type Dynamic struct {
	gen   func(seed uint64) Topology
	cur   Topology
	seed  uint64
	epoch uint64
}

// NewDynamic creates a dynamic topology from a generator (e.g. a closure
// over RandomRegular). The initial graph uses seed.
func NewDynamic(gen func(seed uint64) Topology, seed uint64) *Dynamic {
	return &Dynamic{gen: gen, cur: gen(seed), seed: seed}
}

// Name implements Topology.
func (d *Dynamic) Name() string { return "dynamic:" + d.cur.Name() }

// Size implements Topology.
func (d *Dynamic) Size() int { return d.cur.Size() }

// Neighbors implements Topology.
func (d *Dynamic) Neighbors(i int) []int { return d.cur.Neighbors(i) }

// Rewire regenerates the graph with a fresh derived seed.
func (d *Dynamic) Rewire() {
	d.epoch++
	d.cur = d.gen(d.seed + d.epoch*0x9e3779b97f4a7c15)
}

// Diameter returns the longest shortest-path (in hops) between any pair of
// demes, or -1 if the graph is not strongly connected.
func Diameter(t Topology) int {
	n := t.Size()
	max := 0
	for s := 0; s < n; s++ {
		dist := bfs(t, s)
		for _, d := range dist {
			if d < 0 {
				return -1
			}
			if d > max {
				max = d
			}
		}
	}
	return max
}

// Connected reports whether every deme can reach every other deme.
func Connected(t Topology) bool { return Diameter(t) >= 0 }

// bfs returns hop distances from s (-1 = unreachable).
func bfs(t Topology, s int) []int {
	n := t.Size()
	dist := make([]int, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[s] = 0
	queue := []int{s}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range t.Neighbors(u) {
			if dist[v] == -1 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// Validate checks structural invariants: neighbour indices in range, no
// self-loops, no duplicate edges. It returns a descriptive error.
func Validate(t Topology) error {
	n := t.Size()
	for i := 0; i < n; i++ {
		seen := map[int]bool{}
		for _, j := range t.Neighbors(i) {
			if j < 0 || j >= n {
				return fmt.Errorf("topology %s: deme %d has out-of-range neighbour %d", t.Name(), i, j)
			}
			if j == i {
				return fmt.Errorf("topology %s: deme %d has a self-loop", t.Name(), i)
			}
			if seen[j] {
				return fmt.Errorf("topology %s: deme %d lists neighbour %d twice", t.Name(), i, j)
			}
			seen[j] = true
		}
	}
	return nil
}
