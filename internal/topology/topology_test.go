package topology

import (
	"testing"
	"testing/quick"
)

func TestRing(t *testing.T) {
	r := Ring(5)
	if r.Size() != 5 {
		t.Fatal("size")
	}
	for i := 0; i < 5; i++ {
		ns := r.Neighbors(i)
		if len(ns) != 1 || ns[0] != (i+1)%5 {
			t.Fatalf("ring neighbor of %d = %v", i, ns)
		}
	}
	if err := Validate(r); err != nil {
		t.Fatal(err)
	}
	if d := Diameter(r); d != 4 {
		t.Fatalf("ring(5) diameter = %d, want 4", d)
	}
}

func TestBiRing(t *testing.T) {
	r := BiRing(6)
	for i := 0; i < 6; i++ {
		if len(r.Neighbors(i)) != 2 {
			t.Fatalf("bi-ring degree %d at %d", len(r.Neighbors(i)), i)
		}
	}
	if err := Validate(r); err != nil {
		t.Fatal(err)
	}
	if d := Diameter(r); d != 3 {
		t.Fatalf("bi-ring(6) diameter = %d, want 3", d)
	}
}

func TestStar(t *testing.T) {
	s := Star(7)
	if len(s.Neighbors(0)) != 6 {
		t.Fatal("hub degree wrong")
	}
	for i := 1; i < 7; i++ {
		ns := s.Neighbors(i)
		if len(ns) != 1 || ns[0] != 0 {
			t.Fatalf("leaf %d neighbors %v", i, ns)
		}
	}
	if err := Validate(s); err != nil {
		t.Fatal(err)
	}
	if d := Diameter(s); d != 2 {
		t.Fatalf("star diameter = %d, want 2", d)
	}
}

func TestComplete(t *testing.T) {
	c := Complete(5)
	for i := 0; i < 5; i++ {
		if len(c.Neighbors(i)) != 4 {
			t.Fatal("complete degree wrong")
		}
	}
	if err := Validate(c); err != nil {
		t.Fatal(err)
	}
	if d := Diameter(c); d != 1 {
		t.Fatalf("complete diameter = %d, want 1", d)
	}
}

func TestGrid(t *testing.T) {
	g := Grid(3, 4)
	if g.Size() != 12 {
		t.Fatal("size")
	}
	if err := Validate(g); err != nil {
		t.Fatal(err)
	}
	// Corner has 2 neighbours, centre has 4.
	if len(g.Neighbors(0)) != 2 {
		t.Fatalf("corner degree %d", len(g.Neighbors(0)))
	}
	if len(g.Neighbors(5)) != 4 { // row1 col1
		t.Fatalf("centre degree %d", len(g.Neighbors(5)))
	}
	if d := Diameter(g); d != 5 { // (3-1)+(4-1)
		t.Fatalf("grid(3x4) diameter = %d, want 5", d)
	}
}

func TestTorus(t *testing.T) {
	tr := Torus(4, 4)
	if err := Validate(tr); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		if len(tr.Neighbors(i)) != 4 {
			t.Fatalf("torus degree %d at %d", len(tr.Neighbors(i)), i)
		}
	}
	if d := Diameter(tr); d != 4 { // 2+2
		t.Fatalf("torus(4x4) diameter = %d, want 4", d)
	}
}

func TestTorusDegenerate(t *testing.T) {
	// 2-wide dimensions create duplicate links that must be deduplicated,
	// and 1-wide dimensions create self-loops that must be dropped.
	tr := Torus(2, 2)
	if err := Validate(tr); err != nil {
		t.Fatal(err)
	}
	tr1 := Torus(1, 4)
	if err := Validate(tr1); err != nil {
		t.Fatal(err)
	}
	if !Connected(tr1) {
		t.Fatal("1x4 torus should be connected")
	}
}

func TestHypercube(t *testing.T) {
	h := Hypercube(3)
	if h.Size() != 8 {
		t.Fatal("size")
	}
	if err := Validate(h); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if len(h.Neighbors(i)) != 3 {
			t.Fatal("hypercube degree wrong")
		}
	}
	if d := Diameter(h); d != 3 {
		t.Fatalf("hypercube(3) diameter = %d, want 3", d)
	}
}

func TestIsolated(t *testing.T) {
	iso := Isolated(4)
	for i := 0; i < 4; i++ {
		if len(iso.Neighbors(i)) != 0 {
			t.Fatal("isolated has edges")
		}
	}
	if Connected(iso) {
		t.Fatal("isolated reported connected")
	}
	if err := Validate(iso); err != nil {
		t.Fatal(err)
	}
}

func TestRandomRegular(t *testing.T) {
	rr := RandomRegular(10, 3, 42)
	if err := Validate(rr); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if len(rr.Neighbors(i)) != 3 {
			t.Fatalf("degree %d at %d", len(rr.Neighbors(i)), i)
		}
	}
	// Deterministic per seed.
	rr2 := RandomRegular(10, 3, 42)
	for i := 0; i < 10; i++ {
		a, b := rr.Neighbors(i), rr2.Neighbors(i)
		for j := range a {
			if a[j] != b[j] {
				t.Fatal("same seed produced different random topology")
			}
		}
	}
}

func TestRandomRegularPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for k >= n")
		}
	}()
	RandomRegular(3, 3, 1)
}

func TestDynamicRewire(t *testing.T) {
	d := NewDynamic(func(seed uint64) Topology { return RandomRegular(8, 2, seed) }, 1)
	if d.Size() != 8 {
		t.Fatal("size")
	}
	before := make([][]int, 8)
	for i := range before {
		before[i] = append([]int(nil), d.Neighbors(i)...)
	}
	d.Rewire()
	if err := Validate(d); err != nil {
		t.Fatal(err)
	}
	changed := false
	for i := range before {
		after := d.Neighbors(i)
		for j := range before[i] {
			if before[i][j] != after[j] {
				changed = true
			}
		}
	}
	if !changed {
		t.Fatal("Rewire changed nothing")
	}
	if d.Name() == "" {
		t.Fatal("empty name")
	}
}

func TestAllTopologiesConnectedAndValid(t *testing.T) {
	tops := []Topology{
		Ring(8), BiRing(8), Star(8), Complete(8),
		Grid(2, 4), Torus(2, 4), Hypercube(3), RandomRegular(8, 3, 7),
	}
	for _, tp := range tops {
		if err := Validate(tp); err != nil {
			t.Fatalf("%s: %v", tp.Name(), err)
		}
		if !Connected(tp) {
			t.Fatalf("%s not connected", tp.Name())
		}
	}
}

func TestDiameterOrdering(t *testing.T) {
	// Fundamental topology fact exploited by E14: at equal deme count,
	// complete < star <= hypercube <= bi-ring <= ring in diameter.
	n := 8
	dc := Diameter(Complete(n))
	ds := Diameter(Star(n))
	dh := Diameter(Hypercube(3))
	db := Diameter(BiRing(n))
	dr := Diameter(Ring(n))
	if !(dc < ds && ds <= dh && dh <= db && db <= dr) {
		t.Fatalf("diameter ordering violated: complete=%d star=%d hyper=%d biring=%d ring=%d",
			dc, ds, dh, db, dr)
	}
}

func TestValidatePropertyRandomSeeds(t *testing.T) {
	check := func(seed uint64, n8 uint8) bool {
		n := int(n8%14) + 3
		k := int(seed%3) + 1
		if k >= n {
			k = n - 1
		}
		return Validate(RandomRegular(n, k, seed)) == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
