package problems

import (
	"testing"

	"pga/internal/genome"
	"pga/internal/rng"
)

func TestQAPBasics(t *testing.T) {
	q := NewQAP(16, 1)
	r := rng.New(2)
	g := q.NewGenome(r)
	f := q.Evaluate(g)
	if f < 0 {
		t.Fatalf("negative QAP cost %v", f)
	}
	if q.Direction().String() != "minimize" || q.Name() == "" {
		t.Fatal("metadata wrong")
	}
}

func TestQAPDeterministicInstance(t *testing.T) {
	a, b := NewQAP(12, 7), NewQAP(12, 7)
	g := genome.IdentityPermutation(12)
	if a.Evaluate(g) != b.Evaluate(g) {
		t.Fatal("instance not seed-deterministic")
	}
}

func TestQAPSymmetricCost(t *testing.T) {
	// Reversing the permutation relabels locations but the grid distances
	// are symmetric only under the identity relabelling, so just check
	// that two different permutations give (almost surely) different costs
	// while re-evaluating the same one is stable.
	q := NewQAP(12, 3)
	r := rng.New(4)
	g1 := q.NewGenome(r)
	if q.Evaluate(g1) != q.Evaluate(g1) {
		t.Fatal("evaluation not pure")
	}
	diff := false
	for i := 0; i < 10; i++ {
		if q.Evaluate(q.NewGenome(r)) != q.Evaluate(g1) {
			diff = true
		}
	}
	if !diff {
		t.Fatal("all permutations cost the same (degenerate instance)")
	}
}

func TestQAPLocalSwapChangesCost(t *testing.T) {
	q := NewQAP(10, 5)
	r := rng.New(6)
	changed := false
	for trial := 0; trial < 10; trial++ {
		g := q.NewGenome(r).(*genome.Permutation)
		before := q.Evaluate(g)
		g.Perm[0], g.Perm[1] = g.Perm[1], g.Perm[0]
		if q.Evaluate(g) != before {
			changed = true
		}
	}
	if !changed {
		t.Fatal("swaps never change cost")
	}
}
