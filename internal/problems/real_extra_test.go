package problems

import (
	"math"
	"testing"

	"pga/internal/genome"
	"pga/internal/rng"
)

func TestStepFunction(t *testing.T) {
	p := Step(4)
	v := genome.NewRealVector(4, p.Lo, p.Hi)
	// All coordinates at -5.1 floor to -6 each.
	for i := range v.Genes {
		v.Genes[i] = -5.1
	}
	if got := p.Evaluate(v); got != -24 {
		t.Fatalf("step(-5.1⁴) = %v, want -24", got)
	}
	if !p.Solved(-24) || p.Solved(-23) {
		t.Fatal("Solved wrong")
	}
	// Plateau: small moves inside a cell change nothing.
	for i := range v.Genes {
		v.Genes[i] = 1.2
	}
	f1 := p.Evaluate(v)
	v.Genes[0] = 1.7
	if p.Evaluate(v) != f1 {
		t.Fatal("step not flat within a cell")
	}
}

func TestFoxholes(t *testing.T) {
	p := Foxholes()
	v := genome.NewRealVector(2, p.Lo, p.Hi)
	v.Genes[0], v.Genes[1] = -32, -32
	best := p.Evaluate(v)
	if math.Abs(best-0.998) > 0.01 {
		t.Fatalf("foxholes at (-32,-32) = %v, want ≈0.998", best)
	}
	if !p.Solved(best) {
		t.Fatal("global well not recognised")
	}
	// Another well (16, 16) is a local optimum with a worse value.
	v.Genes[0], v.Genes[1] = 16, 16
	local := p.Evaluate(v)
	if local <= best {
		t.Fatalf("well (16,16)=%v not worse than global %v", local, best)
	}
	// Far from any well the function is high (~500 scale).
	v.Genes[0], v.Genes[1] = -60, 60
	far := p.Evaluate(v)
	if far < 50 {
		t.Fatalf("far point suspiciously good: %v", far)
	}
	r := rng.New(1)
	for i := 0; i < 50; i++ {
		f := p.Evaluate(p.NewGenome(r))
		if math.IsNaN(f) || f < 0.9 {
			t.Fatalf("foxholes out of range: %v", f)
		}
	}
}
