package problems

import (
	"fmt"

	"pga/internal/core"
	"pga/internal/genome"
	"pga/internal/rng"
)

// QAP is the quadratic assignment problem — assign n facilities to n
// locations minimising Σ flow(i,j)·dist(π(i),π(j)) — the classic
// NP-complete permutation benchmark alongside TSP in the §4 problem list.
// The synthetic instance places locations on a grid and draws sparse
// random flows.
type QAP struct {
	n    int
	flow [][]float64
	dist [][]float64
}

// NewQAP creates an n-facility instance drawn from seed: locations on a
// √n×√n-ish grid with Manhattan distances, flows sparse uniform.
func NewQAP(n int, seed uint64) *QAP {
	r := rng.New(seed)
	q := &QAP{n: n}
	// Grid coordinates for locations.
	cols := 1
	for cols*cols < n {
		cols++
	}
	xs := make([]int, n)
	ys := make([]int, n)
	for i := 0; i < n; i++ {
		xs[i], ys[i] = i%cols, i/cols
	}
	q.dist = make([][]float64, n)
	q.flow = make([][]float64, n)
	for i := 0; i < n; i++ {
		q.dist[i] = make([]float64, n)
		q.flow[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			dx, dy := xs[i]-xs[j], ys[i]-ys[j]
			if dx < 0 {
				dx = -dx
			}
			if dy < 0 {
				dy = -dy
			}
			q.dist[i][j] = float64(dx + dy)
		}
	}
	// Sparse symmetric flows: ~25% of pairs carry traffic, plus a base
	// flow cycle so every facility matters (no degenerate don't-care
	// facilities).
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if r.Chance(0.25) {
				f := float64(r.Intn(10) + 1)
				q.flow[i][j] = f
				q.flow[j][i] = f
			}
		}
	}
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		if q.flow[i][j] == 0 {
			f := float64(r.Intn(5) + 1)
			q.flow[i][j] = f
			q.flow[j][i] = f
		}
	}
	return q
}

// Name implements core.Problem.
func (q *QAP) Name() string { return fmt.Sprintf("qap(%d)", q.n) }

// Direction implements core.Problem.
func (*QAP) Direction() core.Direction { return core.Minimize }

// NewGenome implements core.Problem: π maps facility → location.
func (q *QAP) NewGenome(r *rng.Source) core.Genome {
	return genome.RandomPermutation(q.n, r)
}

// Evaluate implements core.Problem.
func (q *QAP) Evaluate(g core.Genome) float64 {
	p := g.(*genome.Permutation).Perm
	total := 0.0
	for i := 0; i < q.n; i++ {
		fi := q.flow[i]
		for j := i + 1; j < q.n; j++ {
			if f := fi[j]; f != 0 {
				total += 2 * f * q.dist[p[i]][p[j]]
			}
		}
	}
	return total
}
