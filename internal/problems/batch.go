package problems

import (
	"pga/internal/core"
	"pga/internal/genome"
)

// Batched evaluation for the popcount-friendly binary landscapes: the
// evaluators walk each genome's packed words directly, amortising the
// per-call interface dispatch and bounds checks across the whole pending
// set. Both must return bit-identical fitness to their scalar Evaluate
// (core.BatchProblem's contract — the equiv golden traces hold either
// way, since SerialEvaluator auto-dispatches to the batch path).
var (
	_ core.BatchProblem = OneMax{}
	_ core.BatchProblem = RoyalRoad{}
)

// EvaluateBatch implements core.BatchProblem.
func (p OneMax) EvaluateBatch(genomes []core.Genome, out []float64) {
	for i, g := range genomes {
		out[i] = float64(g.(*genome.BitString).OnesCount())
	}
}

// EvaluateBatch implements core.BatchProblem.
func (p RoyalRoad) EvaluateBatch(genomes []core.Genome, out []float64) {
	for i, g := range genomes {
		b := g.(*genome.BitString)
		total := 0.0
		for blk := 0; blk < p.Blocks; blk++ {
			if b.OnesCountRange(blk*p.K, (blk+1)*p.K) == p.K {
				total += float64(p.K)
			}
		}
		out[i] = total
	}
}
