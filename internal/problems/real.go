package problems

import (
	"fmt"
	"math"

	"pga/internal/core"
	"pga/internal/genome"
	"pga/internal/rng"
)

// RealFunc is a real-valued minimisation benchmark defined by a closure
// over a gene slice, with homogeneous bounds. All the classic test
// functions of the parallel-GA literature (Mühlenbein, Schomisch & Born
// 1991 used Rastrigin, Schwefel and Griewank to show PGA function
// optimisation) are instances of this type.
type RealFunc struct {
	// Label names the function, e.g. "rastrigin".
	Label string
	// Dim is the dimensionality.
	Dim int
	// Lo and Hi bound every coordinate.
	Lo, Hi float64
	// F computes the objective value (minimised).
	F func(x []float64) float64
	// Opt is the known global minimum value.
	Opt float64
	// Tol is the tolerance within which the problem counts as solved.
	Tol float64
}

// Name implements core.Problem.
func (p *RealFunc) Name() string { return fmt.Sprintf("%s(%d)", p.Label, p.Dim) }

// Direction implements core.Problem.
func (*RealFunc) Direction() core.Direction { return core.Minimize }

// NewGenome implements core.Problem.
func (p *RealFunc) NewGenome(r *rng.Source) core.Genome {
	return genome.RandomRealVector(p.Dim, p.Lo, p.Hi, r)
}

// Evaluate implements core.Problem.
func (p *RealFunc) Evaluate(g core.Genome) float64 {
	return finite(p.F(g.(*genome.RealVector).Genes))
}

// Optimum implements core.TargetAware.
func (p *RealFunc) Optimum() float64 { return p.Opt }

// Solved implements core.TargetAware.
func (p *RealFunc) Solved(f float64) bool { return f <= p.Opt+p.Tol }

// Sphere returns the unimodal sphere function Σx² on [-5.12, 5.12]^dim.
func Sphere(dim int) *RealFunc {
	return &RealFunc{
		Label: "sphere", Dim: dim, Lo: -5.12, Hi: 5.12, Opt: 0, Tol: 1e-3,
		F: func(x []float64) float64 {
			s := 0.0
			for _, v := range x {
				s += v * v
			}
			return s
		},
	}
}

// Rastrigin returns the highly multimodal Rastrigin function on
// [-5.12, 5.12]^dim.
func Rastrigin(dim int) *RealFunc {
	return &RealFunc{
		Label: "rastrigin", Dim: dim, Lo: -5.12, Hi: 5.12, Opt: 0, Tol: 1e-2,
		F: func(x []float64) float64 {
			s := 10 * float64(len(x))
			for _, v := range x {
				s += v*v - 10*math.Cos(2*math.Pi*v)
			}
			return s
		},
	}
}

// Rosenbrock returns the banana-valley Rosenbrock function on [-2.048,
// 2.048]^dim (unimodal but ill-conditioned).
func Rosenbrock(dim int) *RealFunc {
	return &RealFunc{
		Label: "rosenbrock", Dim: dim, Lo: -2.048, Hi: 2.048, Opt: 0, Tol: 1e-2,
		F: func(x []float64) float64 {
			s := 0.0
			for i := 0; i+1 < len(x); i++ {
				a := x[i+1] - x[i]*x[i]
				b := 1 - x[i]
				s += 100*a*a + b*b
			}
			return s
		},
	}
}

// Ackley returns the Ackley function on [-32.768, 32.768]^dim.
func Ackley(dim int) *RealFunc {
	return &RealFunc{
		Label: "ackley", Dim: dim, Lo: -32.768, Hi: 32.768, Opt: 0, Tol: 1e-2,
		F: func(x []float64) float64 {
			n := float64(len(x))
			var sq, cs float64
			for _, v := range x {
				sq += v * v
				cs += math.Cos(2 * math.Pi * v)
			}
			return -20*math.Exp(-0.2*math.Sqrt(sq/n)) - math.Exp(cs/n) + 20 + math.E
		},
	}
}

// Griewank returns the Griewank function on [-600, 600]^dim.
func Griewank(dim int) *RealFunc {
	return &RealFunc{
		Label: "griewank", Dim: dim, Lo: -600, Hi: 600, Opt: 0, Tol: 1e-2,
		F: func(x []float64) float64 {
			sum := 0.0
			prod := 1.0
			for i, v := range x {
				sum += v * v / 4000
				prod *= math.Cos(v / math.Sqrt(float64(i+1)))
			}
			return sum - prod + 1
		},
	}
}

// Schwefel returns Schwefel's function on [-500, 500]^dim, whose global
// minimum (x_i = 420.9687) sits far from the second-best, defeating purely
// local search.
func Schwefel(dim int) *RealFunc {
	return &RealFunc{
		Label: "schwefel", Dim: dim, Lo: -500, Hi: 500, Opt: 0, Tol: 1.0,
		F: func(x []float64) float64 {
			s := 0.0
			for _, v := range x {
				s += v * math.Sin(math.Sqrt(math.Abs(v)))
			}
			return 418.9829*float64(len(x)) - s
		},
	}
}

// Step returns De Jong's step function F3 on [-5.12, 5.12]^dim: the sum
// of floors, a plateau landscape with no local gradient information.
// Minimum value is -6·dim (every coordinate in [-5.12, -5)... floor -6).
func Step(dim int) *RealFunc {
	return &RealFunc{
		Label: "step", Dim: dim, Lo: -5.12, Hi: 5.12, Opt: -6 * float64(dim), Tol: 0,
		F: func(x []float64) float64 {
			s := 0.0
			for _, v := range x {
				s += math.Floor(v)
			}
			return s
		},
	}
}

// Foxholes returns Shekel's foxholes (De Jong F5), the classic 2-D
// multimodal function with 25 narrow wells on [-65.536, 65.536]²; the
// global minimum (~0.998) sits in the well at (-32, -32).
func Foxholes() *RealFunc {
	var a [2][25]float64
	offsets := []float64{-32, -16, 0, 16, 32}
	for j := 0; j < 25; j++ {
		a[0][j] = offsets[j%5]
		a[1][j] = offsets[j/5]
	}
	return &RealFunc{
		Label: "foxholes", Dim: 2, Lo: -65.536, Hi: 65.536, Opt: 0.998, Tol: 0.01,
		F: func(x []float64) float64 {
			sum := 1.0 / 500.0
			for j := 0; j < 25; j++ {
				den := float64(j + 1)
				for i := 0; i < 2; i++ {
					d := x[i] - a[i][j]
					den += d * d * d * d * d * d
				}
				sum += 1 / den
			}
			return 1 / sum
		},
	}
}

// BinaryEncoded wraps a real-valued problem with a fixed-point binary
// encoding of BitsPerVar bits per coordinate (optionally Gray-coded).
// It turns any RealFunc into a binary-GA problem — the representation
// ablation of the classic literature.
type BinaryEncoded struct {
	// Inner is the wrapped real-valued problem.
	Inner *RealFunc
	// BitsPerVar is the number of bits encoding each coordinate.
	BitsPerVar int
	// Gray selects Gray decoding instead of plain binary.
	Gray bool
}

// Name implements core.Problem.
func (p *BinaryEncoded) Name() string {
	enc := "bin"
	if p.Gray {
		enc = "gray"
	}
	return fmt.Sprintf("%s-%s%d", p.Inner.Name(), enc, p.BitsPerVar)
}

// Direction implements core.Problem.
func (p *BinaryEncoded) Direction() core.Direction { return core.Minimize }

// NewGenome implements core.Problem.
func (p *BinaryEncoded) NewGenome(r *rng.Source) core.Genome {
	return genome.RandomBitString(p.Inner.Dim*p.BitsPerVar, r)
}

// Decode maps a bit string to the encoded coordinate vector.
func (p *BinaryEncoded) Decode(b *genome.BitString) []float64 {
	x := make([]float64, p.Inner.Dim)
	for i := range x {
		lo := i * p.BitsPerVar
		x[i] = b.DecodeReal(lo, lo+p.BitsPerVar, p.Inner.Lo, p.Inner.Hi, p.Gray)
	}
	return x
}

// Evaluate implements core.Problem.
func (p *BinaryEncoded) Evaluate(g core.Genome) float64 {
	return finite(p.Inner.F(p.Decode(g.(*genome.BitString))))
}

// Optimum implements core.TargetAware.
func (p *BinaryEncoded) Optimum() float64 { return p.Inner.Opt }

// Solved implements core.TargetAware. The quantisation of the encoding
// usually cannot hit the continuous optimum exactly, so the tolerance is
// scaled up relative to the inner problem.
func (p *BinaryEncoded) Solved(f float64) bool { return f <= p.Inner.Opt+10*p.Inner.Tol }
