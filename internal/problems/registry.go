package problems

import (
	"fmt"
	"sort"

	"pga/internal/core"
)

// Spec describes an instantiable benchmark problem for CLIs and the
// experiment harness.
type Spec struct {
	// Key is the registry lookup name.
	Key string
	// Class is the landscape class in Alba & Troya's vocabulary:
	// easy, deceptive, multimodal, np-complete or epistatic.
	Class string
	// Make builds an instance with the given size parameter and seed.
	// The meaning of size is problem specific (bits, dimensions, items).
	Make func(size int, seed uint64) core.Problem
}

// registry holds the built-in problem catalogue.
var registry = map[string]Spec{
	"onemax": {Key: "onemax", Class: "easy",
		Make: func(size int, _ uint64) core.Problem { return OneMax{N: size} }},
	"trap": {Key: "trap", Class: "deceptive",
		Make: func(size int, _ uint64) core.Problem { return DeceptiveTrap{Blocks: size / 4, K: 4} }},
	"mmdp": {Key: "mmdp", Class: "deceptive",
		Make: func(size int, _ uint64) core.Problem { return MMDP{Blocks: size / 6} }},
	"ppeaks": {Key: "ppeaks", Class: "multimodal",
		Make: func(size int, seed uint64) core.Problem { return NewPPeaks(20, size, seed) }},
	"royalroad": {Key: "royalroad", Class: "easy",
		Make: func(size int, _ uint64) core.Problem { return RoyalRoad{Blocks: size / 8, K: 8} }},
	"nk": {Key: "nk", Class: "epistatic",
		Make: func(size int, seed uint64) core.Problem { return NewNKLandscape(size, 4, seed) }},
	"subsetsum": {Key: "subsetsum", Class: "np-complete",
		Make: func(size int, seed uint64) core.Problem { return NewSubsetSum(size, seed) }},
	"knapsack": {Key: "knapsack", Class: "np-complete",
		Make: func(size int, seed uint64) core.Problem { return NewKnapsack(size, seed) }},
	"maxsat": {Key: "maxsat", Class: "np-complete",
		Make: func(size int, seed uint64) core.Problem { return NewMaxSAT(size, size*4, seed) }},
	"sphere": {Key: "sphere", Class: "easy",
		Make: func(size int, _ uint64) core.Problem { return Sphere(size) }},
	"rastrigin": {Key: "rastrigin", Class: "multimodal",
		Make: func(size int, _ uint64) core.Problem { return Rastrigin(size) }},
	"rosenbrock": {Key: "rosenbrock", Class: "epistatic",
		Make: func(size int, _ uint64) core.Problem { return Rosenbrock(size) }},
	"ackley": {Key: "ackley", Class: "multimodal",
		Make: func(size int, _ uint64) core.Problem { return Ackley(size) }},
	"griewank": {Key: "griewank", Class: "multimodal",
		Make: func(size int, _ uint64) core.Problem { return Griewank(size) }},
	"schwefel": {Key: "schwefel", Class: "multimodal",
		Make: func(size int, _ uint64) core.Problem { return Schwefel(size) }},
	"step": {Key: "step", Class: "easy",
		Make: func(size int, _ uint64) core.Problem { return Step(size) }},
	"foxholes": {Key: "foxholes", Class: "multimodal",
		Make: func(size int, _ uint64) core.Problem { return Foxholes() }},
	"qap": {Key: "qap", Class: "np-complete",
		Make: func(size int, seed uint64) core.Problem { return NewQAP(size, seed) }},
}

// Lookup returns the Spec registered under key.
func Lookup(key string) (Spec, error) {
	s, ok := registry[key]
	if !ok {
		return Spec{}, fmt.Errorf("problems: unknown problem %q (see problems.Keys())", key)
	}
	return s, nil
}

// Keys returns the sorted list of registered problem names.
func Keys() []string {
	out := make([]string, 0, len(registry))
	for k := range registry {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
