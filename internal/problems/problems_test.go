package problems

import (
	"math"
	"testing"

	"pga/internal/core"
	"pga/internal/genome"
	"pga/internal/rng"
)

// allOnes / allZeros helpers.
func allOnes(n int) *genome.BitString {
	b := genome.NewBitString(n)
	for i := 0; i < b.Len(); i++ {
		b.Set(i, true)
	}
	return b
}

func TestOneMax(t *testing.T) {
	p := OneMax{N: 10}
	if p.Evaluate(genome.NewBitString(10)) != 0 {
		t.Fatal("all-zeros not 0")
	}
	if p.Evaluate(allOnes(10)) != 10 {
		t.Fatal("all-ones not 10")
	}
	if !p.Solved(10) || p.Solved(9) {
		t.Fatal("Solved wrong")
	}
	if p.Direction() != core.Maximize {
		t.Fatal("direction wrong")
	}
}

func TestDeceptiveTrapValues(t *testing.T) {
	p := DeceptiveTrap{Blocks: 1, K: 4}
	cases := map[int]float64{0: 3, 1: 2, 2: 1, 3: 0, 4: 4}
	for ones, want := range cases {
		b := genome.NewBitString(4)
		for i := 0; i < ones; i++ {
			b.Set(i, true)
		}
		if got := p.Evaluate(b); got != want {
			t.Fatalf("trap(%d ones) = %v, want %v", ones, got, want)
		}
	}
}

func TestDeceptiveTrapIsDeceptive(t *testing.T) {
	// The basin of all-zeros must be larger than the basin of all-ones:
	// for unitation < K, fitness decreases as ones increase.
	p := DeceptiveTrap{Blocks: 1, K: 5}
	prev := math.Inf(1)
	for ones := 0; ones < 5; ones++ {
		b := genome.NewBitString(5)
		for i := 0; i < ones; i++ {
			b.Set(i, true)
		}
		f := p.Evaluate(b)
		if f >= prev {
			t.Fatal("trap not monotonically deceptive")
		}
		prev = f
	}
}

func TestDeceptiveTrapMultiBlock(t *testing.T) {
	p := DeceptiveTrap{Blocks: 3, K: 4}
	if got := p.Evaluate(allOnes(12)); got != 12 {
		t.Fatalf("3-block all-ones = %v", got)
	}
	if got := p.Evaluate(genome.NewBitString(12)); got != 9 {
		t.Fatalf("3-block all-zeros = %v, want 9", got)
	}
	if p.Optimum() != 12 {
		t.Fatal("optimum wrong")
	}
}

func TestMMDP(t *testing.T) {
	p := MMDP{Blocks: 2}
	if got := p.Evaluate(allOnes(12)); math.Abs(got-2) > 1e-12 {
		t.Fatalf("mmdp all-ones = %v", got)
	}
	if got := p.Evaluate(genome.NewBitString(12)); math.Abs(got-2) > 1e-12 {
		t.Fatalf("mmdp all-zeros = %v (both extremes are optima)", got)
	}
	// Unitation 3 is the deceptive attractor with value 0.640576 per block.
	b := genome.NewBitString(12)
	for _, i := range []int{0, 1, 2, 6, 7, 8} {
		b.Set(i, true)
	}
	if got := p.Evaluate(b); math.Abs(got-2*0.640576) > 1e-9 {
		t.Fatalf("mmdp unitation-3 = %v", got)
	}
	if !p.Solved(2) || p.Solved(1.9) {
		t.Fatal("Solved wrong")
	}
}

func TestPPeaks(t *testing.T) {
	p := NewPPeaks(5, 32, 7)
	// A peak itself must score 1.0.
	for _, peak := range p.peaks {
		if got := p.Evaluate(peak); got != 1.0 {
			t.Fatalf("peak scores %v", got)
		}
	}
	r := rng.New(1)
	g := p.NewGenome(r)
	f := p.Evaluate(g)
	if f <= 0 || f > 1 {
		t.Fatalf("p-peaks fitness out of (0,1]: %v", f)
	}
	if !p.Solved(1.0) || p.Solved(0.99) {
		t.Fatal("Solved wrong")
	}
}

func TestPPeaksDeterministicInstance(t *testing.T) {
	a := NewPPeaks(3, 16, 42)
	b := NewPPeaks(3, 16, 42)
	for i := range a.peaks {
		if !a.peaks[i].Equal(b.peaks[i]) {
			t.Fatal("same seed produced different P-PEAKS instances")
		}
	}
}

func TestRoyalRoad(t *testing.T) {
	p := RoyalRoad{Blocks: 4, K: 8}
	if got := p.Evaluate(genome.NewBitString(32)); got != 0 {
		t.Fatalf("empty royal road = %v", got)
	}
	if got := p.Evaluate(allOnes(32)); got != 32 {
		t.Fatalf("full royal road = %v", got)
	}
	// One complete block scores exactly K; a partial block scores 0.
	b := genome.NewBitString(32)
	for i := 0; i < 8; i++ {
		b.Set(i, true)
	}
	b.Set(9, true) // partial second block contributes nothing
	if got := p.Evaluate(b); got != 8 {
		t.Fatalf("one-block royal road = %v", got)
	}
}

func TestNKLandscape(t *testing.T) {
	p := NewNKLandscape(20, 3, 5)
	r := rng.New(2)
	for i := 0; i < 50; i++ {
		f := p.Evaluate(p.NewGenome(r))
		if f < 0 || f > 1 {
			t.Fatalf("nk fitness out of [0,1]: %v", f)
		}
	}
	// Same genome, same fitness (table lookup is pure).
	g := p.NewGenome(r)
	if p.Evaluate(g) != p.Evaluate(g) {
		t.Fatal("nk not deterministic")
	}
	// Same seed, same instance.
	q := NewNKLandscape(20, 3, 5)
	if p.Evaluate(g) != q.Evaluate(g) {
		t.Fatal("nk instance not seed-deterministic")
	}
}

func TestNKEpistasis(t *testing.T) {
	// Flipping one bit must change the contribution of all genes linked to
	// it — fitness change is generally not confined to one locus.
	p := NewNKLandscape(16, 2, 9)
	r := rng.New(3)
	g := p.NewGenome(r).(*genome.BitString)
	f0 := p.Evaluate(g)
	g.Flip(0)
	f1 := p.Evaluate(g)
	if f0 == f1 {
		t.Fatal("flipping a bit changed nothing (suspicious for NK)")
	}
}

func TestNKPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for k >= n")
		}
	}()
	NewNKLandscape(4, 4, 1)
}

func TestSubsetSumPerfectSolutionExists(t *testing.T) {
	p := NewSubsetSum(30, 11)
	// Brute-force greedy check is hard; instead verify evaluate semantics.
	b := genome.NewBitString(30)
	f := p.Evaluate(b) // empty subset → -target
	if f != -float64(p.Target()) {
		t.Fatalf("empty subset fitness %v, want %v", f, -float64(p.Target()))
	}
	if p.Solved(-1) || !p.Solved(0) {
		t.Fatal("Solved wrong")
	}
	if p.Direction() != core.Maximize {
		t.Fatal("direction wrong")
	}
}

func TestKnapsackPenalty(t *testing.T) {
	p := NewKnapsack(20, 13)
	empty := p.Evaluate(genome.NewBitString(20))
	if empty != 0 {
		t.Fatalf("empty knapsack = %v", empty)
	}
	full := p.Evaluate(allOnes(20))
	// Full load is overweight (capacity = half the total) → penalised below
	// the sum of values.
	sumv := 0.0
	for _, v := range p.values {
		sumv += v
	}
	if full >= sumv {
		t.Fatalf("overweight not penalised: %v >= %v", full, sumv)
	}
}

func TestMaxSAT(t *testing.T) {
	p := NewMaxSAT(20, 80, 17)
	r := rng.New(4)
	for i := 0; i < 50; i++ {
		f := p.Evaluate(p.NewGenome(r))
		if f < 0 || f > 1 {
			t.Fatalf("maxsat fitness out of range: %v", f)
		}
	}
	// A random assignment satisfies ~7/8 of random 3-clauses.
	sum := 0.0
	for i := 0; i < 200; i++ {
		sum += p.Evaluate(p.NewGenome(r))
	}
	if avg := sum / 200; avg < 0.8 || avg > 0.95 {
		t.Fatalf("maxsat random-assignment mean %v, want ≈0.875", avg)
	}
}

func TestRealFunctionsAtOptimum(t *testing.T) {
	cases := []struct {
		p   *RealFunc
		opt []float64
	}{
		{Sphere(4), []float64{0, 0, 0, 0}},
		{Rastrigin(4), []float64{0, 0, 0, 0}},
		{Rosenbrock(4), []float64{1, 1, 1, 1}},
		{Ackley(4), []float64{0, 0, 0, 0}},
		{Griewank(4), []float64{0, 0, 0, 0}},
		{Schwefel(4), []float64{420.9687, 420.9687, 420.9687, 420.9687}},
	}
	for _, c := range cases {
		v := genome.NewRealVector(c.p.Dim, c.p.Lo, c.p.Hi)
		copy(v.Genes, c.opt)
		f := c.p.Evaluate(v)
		if !c.p.Solved(f) {
			t.Fatalf("%s at optimum scores %v (tol %v), not solved", c.p.Name(), f, c.p.Tol)
		}
		if f < c.p.Opt-1e-6 {
			t.Fatalf("%s scores below declared optimum: %v < %v", c.p.Name(), f, c.p.Opt)
		}
	}
}

func TestRealFunctionsNonNegativeNearOptimum(t *testing.T) {
	r := rng.New(5)
	for _, p := range []*RealFunc{Sphere(6), Rastrigin(6), Rosenbrock(6), Ackley(6), Griewank(6)} {
		for i := 0; i < 100; i++ {
			f := p.Evaluate(p.NewGenome(r))
			if f < -1e-9 {
				t.Fatalf("%s produced negative value %v", p.Name(), f)
			}
		}
	}
}

func TestRealFunctionRandomWorseThanOptimum(t *testing.T) {
	r := rng.New(6)
	for _, p := range []*RealFunc{Sphere(10), Rastrigin(10), Schwefel(10)} {
		f := p.Evaluate(p.NewGenome(r))
		if p.Solved(f) {
			t.Fatalf("%s random point already solved: %v", p.Name(), f)
		}
	}
}

func TestBinaryEncodedDecode(t *testing.T) {
	inner := Sphere(2)
	enc := &BinaryEncoded{Inner: inner, BitsPerVar: 16}
	b := genome.NewBitString(32)
	x := enc.Decode(b)
	if x[0] != inner.Lo || x[1] != inner.Lo {
		t.Fatalf("all-zero decodes to %v, want lo bounds", x)
	}
	for i := 0; i < b.Len(); i++ {
		b.Set(i, true)
	}
	x = enc.Decode(b)
	if x[0] != inner.Hi || x[1] != inner.Hi {
		t.Fatalf("all-one decodes to %v, want hi bounds", x)
	}
}

func TestBinaryEncodedEvaluateMatchesInner(t *testing.T) {
	inner := Sphere(3)
	enc := &BinaryEncoded{Inner: inner, BitsPerVar: 20, Gray: true}
	r := rng.New(7)
	g := enc.NewGenome(r).(*genome.BitString)
	x := enc.Decode(g)
	v := genome.NewRealVector(3, inner.Lo, inner.Hi)
	copy(v.Genes, x)
	if math.Abs(enc.Evaluate(g)-inner.Evaluate(v)) > 1e-12 {
		t.Fatal("encoded evaluate differs from inner on decoded point")
	}
	if enc.Name() == "" || enc.Direction() != core.Minimize {
		t.Fatal("metadata wrong")
	}
}

func TestRegistryAllKeysInstantiate(t *testing.T) {
	r := rng.New(8)
	for _, key := range Keys() {
		spec, err := Lookup(key)
		if err != nil {
			t.Fatalf("Lookup(%q): %v", key, err)
		}
		size := 24
		if key == "mmdp" {
			size = 24 // divisible by 6
		}
		p := spec.Make(size, 1)
		g := p.NewGenome(r)
		f := p.Evaluate(g)
		if math.IsNaN(f) || math.IsInf(f, 0) {
			t.Fatalf("%s produced non-finite fitness", key)
		}
		if spec.Class == "" {
			t.Fatalf("%s has no class", key)
		}
	}
}

func TestRegistryUnknownKey(t *testing.T) {
	if _, err := Lookup("nope"); err == nil {
		t.Fatal("Lookup of unknown key succeeded")
	}
}

func TestFiniteGuard(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("finite(NaN) did not panic")
		}
	}()
	finite(math.NaN())
}

func TestProblemNamesNonEmpty(t *testing.T) {
	ps := []core.Problem{
		OneMax{N: 4}, DeceptiveTrap{Blocks: 1, K: 4}, MMDP{Blocks: 1},
		NewPPeaks(2, 8, 1), RoyalRoad{Blocks: 1, K: 8}, NewNKLandscape(8, 2, 1),
		NewSubsetSum(8, 1), NewKnapsack(8, 1), NewMaxSAT(8, 20, 1),
		Sphere(2), Rastrigin(2), Rosenbrock(2), Ackley(2), Griewank(2), Schwefel(2),
	}
	for _, p := range ps {
		if p.Name() == "" {
			t.Fatalf("%T has empty name", p)
		}
	}
}
