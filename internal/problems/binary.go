// Package problems implements the benchmark fitness functions used across
// the experiment suite.
//
// The set deliberately covers the problem spectrum Alba & Troya (2000) used
// to study migration policies — "easy, deceptive, multimodal, NP-Complete,
// and epistatic search landscapes" — plus the classic real-valued test
// functions of the parallel-GA literature (Mühlenbein 1991).
package problems

import (
	"fmt"
	"math"
	"math/bits"

	"pga/internal/core"
	"pga/internal/genome"
	"pga/internal/rng"
)

// OneMax is the "easy" landscape: fitness is the number of one-bits.
type OneMax struct {
	// N is the genome length in bits.
	N int
}

// Name implements core.Problem.
func (p OneMax) Name() string { return fmt.Sprintf("onemax(%d)", p.N) }

// Direction implements core.Problem.
func (OneMax) Direction() core.Direction { return core.Maximize }

// NewGenome implements core.Problem.
func (p OneMax) NewGenome(r *rng.Source) core.Genome { return genome.RandomBitString(p.N, r) }

// Evaluate implements core.Problem.
func (p OneMax) Evaluate(g core.Genome) float64 {
	return float64(g.(*genome.BitString).OnesCount())
}

// Optimum implements core.TargetAware.
func (p OneMax) Optimum() float64 { return float64(p.N) }

// Solved implements core.TargetAware.
func (p OneMax) Solved(f float64) bool { return f >= float64(p.N) }

// DeceptiveTrap is the "deceptive" landscape: the genome is split into
// blocks of K bits; each block scores K for all-ones but rewards movement
// toward all-zeros otherwise, so hill-climbing is pulled away from the
// optimum (Goldberg's trap function).
type DeceptiveTrap struct {
	// Blocks is the number of trap blocks.
	Blocks int
	// K is the block size (classically 4 or 5).
	K int
}

// Name implements core.Problem.
func (p DeceptiveTrap) Name() string { return fmt.Sprintf("trap(%dx%d)", p.Blocks, p.K) }

// Direction implements core.Problem.
func (DeceptiveTrap) Direction() core.Direction { return core.Maximize }

// NewGenome implements core.Problem.
func (p DeceptiveTrap) NewGenome(r *rng.Source) core.Genome {
	return genome.RandomBitString(p.Blocks*p.K, r)
}

// Evaluate implements core.Problem.
func (p DeceptiveTrap) Evaluate(g core.Genome) float64 {
	b := g.(*genome.BitString)
	total := 0.0
	for blk := 0; blk < p.Blocks; blk++ {
		ones := b.OnesCountRange(blk*p.K, (blk+1)*p.K)
		if ones == p.K {
			total += float64(p.K)
		} else {
			total += float64(p.K - 1 - ones)
		}
	}
	return total
}

// Optimum implements core.TargetAware.
func (p DeceptiveTrap) Optimum() float64 { return float64(p.Blocks * p.K) }

// Solved implements core.TargetAware.
func (p DeceptiveTrap) Solved(f float64) bool { return f >= p.Optimum() }

// MMDP is the Massively Multimodal Deceptive Problem: 6-bit blocks scored
// by a bimodal deceptive subfunction whose maxima are all-zeros and
// all-ones (unitation 0 or 6 → 1.0).
type MMDP struct {
	// Blocks is the number of 6-bit blocks.
	Blocks int
}

// mmdpScore maps block unitation (0..6) to its fitness contribution.
var mmdpScore = [7]float64{1.0, 0.0, 0.360384, 0.640576, 0.360384, 0.0, 1.0}

// Name implements core.Problem.
func (p MMDP) Name() string { return fmt.Sprintf("mmdp(%d)", p.Blocks) }

// Direction implements core.Problem.
func (MMDP) Direction() core.Direction { return core.Maximize }

// NewGenome implements core.Problem.
func (p MMDP) NewGenome(r *rng.Source) core.Genome {
	return genome.RandomBitString(p.Blocks*6, r)
}

// Evaluate implements core.Problem.
func (p MMDP) Evaluate(g core.Genome) float64 {
	b := g.(*genome.BitString)
	total := 0.0
	for blk := 0; blk < p.Blocks; blk++ {
		total += mmdpScore[b.OnesCountRange(blk*6, (blk+1)*6)]
	}
	return total
}

// Optimum implements core.TargetAware.
func (p MMDP) Optimum() float64 { return float64(p.Blocks) }

// Solved implements core.TargetAware.
func (p MMDP) Solved(f float64) bool { return f >= p.Optimum()-1e-9 }

// PPeaks is the P-PEAKS multimodal problem generator (De Jong): P random
// N-bit peaks; fitness is the maximum normalised closeness to any peak.
type PPeaks struct {
	peaks []*genome.BitString
	n     int
}

// NewPPeaks creates a P-PEAKS instance with p peaks of n bits drawn from
// seed.
func NewPPeaks(p, n int, seed uint64) *PPeaks {
	r := rng.New(seed)
	peaks := make([]*genome.BitString, p)
	for i := range peaks {
		peaks[i] = genome.RandomBitString(n, r)
	}
	return &PPeaks{peaks: peaks, n: n}
}

// Name implements core.Problem.
func (p *PPeaks) Name() string { return fmt.Sprintf("p-peaks(%dx%d)", len(p.peaks), p.n) }

// Direction implements core.Problem.
func (*PPeaks) Direction() core.Direction { return core.Maximize }

// NewGenome implements core.Problem.
func (p *PPeaks) NewGenome(r *rng.Source) core.Genome { return genome.RandomBitString(p.n, r) }

// Evaluate implements core.Problem.
func (p *PPeaks) Evaluate(g core.Genome) float64 {
	b := g.(*genome.BitString)
	best := 0
	for _, peak := range p.peaks {
		match := p.n - b.Hamming(peak)
		if match > best {
			best = match
		}
	}
	return float64(best) / float64(p.n)
}

// Optimum implements core.TargetAware.
func (*PPeaks) Optimum() float64 { return 1.0 }

// Solved implements core.TargetAware.
func (*PPeaks) Solved(f float64) bool { return f >= 1.0-1e-12 }

// RoyalRoad is Mitchell's Royal Road R1: the genome is divided into
// consecutive blocks; a block contributes its length only when entirely
// ones. Rewards building-block assembly — the schema-processing story the
// survey's §2 reviews.
type RoyalRoad struct {
	// Blocks is the number of blocks.
	Blocks int
	// K is the block length in bits (classically 8).
	K int
}

// Name implements core.Problem.
func (p RoyalRoad) Name() string { return fmt.Sprintf("royalroad(%dx%d)", p.Blocks, p.K) }

// Direction implements core.Problem.
func (RoyalRoad) Direction() core.Direction { return core.Maximize }

// NewGenome implements core.Problem.
func (p RoyalRoad) NewGenome(r *rng.Source) core.Genome {
	return genome.RandomBitString(p.Blocks*p.K, r)
}

// Evaluate implements core.Problem.
func (p RoyalRoad) Evaluate(g core.Genome) float64 {
	b := g.(*genome.BitString)
	total := 0.0
	for blk := 0; blk < p.Blocks; blk++ {
		if b.OnesCountRange(blk*p.K, (blk+1)*p.K) == p.K {
			total += float64(p.K)
		}
	}
	return total
}

// Optimum implements core.TargetAware.
func (p RoyalRoad) Optimum() float64 { return float64(p.Blocks * p.K) }

// Solved implements core.TargetAware.
func (p RoyalRoad) Solved(f float64) bool { return f >= p.Optimum() }

// NKLandscape is Kauffman's NK model — the "epistatic" landscape. Gene i's
// contribution depends on itself and K random other genes through a random
// contribution table.
type NKLandscape struct {
	n, k  int
	links [][]int     // links[i] = the K+1 loci feeding gene i's table
	table [][]float64 // table[i][pattern] = contribution
	// maxSeen tracks no global optimum: NK optima are NP-hard to find, so
	// the problem is not TargetAware.
}

// NewNKLandscape creates an NK instance with n genes, k epistatic links per
// gene, drawn from seed.
func NewNKLandscape(n, k int, seed uint64) *NKLandscape {
	if k >= n {
		panic("problems: NK requires k < n")
	}
	r := rng.New(seed)
	links := make([][]int, n)
	table := make([][]float64, n)
	for i := 0; i < n; i++ {
		links[i] = make([]int, 0, k+1)
		links[i] = append(links[i], i)
		// k distinct other loci.
		for _, j := range r.Sample(n-1, k) {
			if j >= i {
				j++
			}
			links[i] = append(links[i], j)
		}
		table[i] = make([]float64, 1<<uint(k+1))
		for p := range table[i] {
			table[i][p] = r.Float64()
		}
	}
	return &NKLandscape{n: n, k: k, links: links, table: table}
}

// Name implements core.Problem.
func (p *NKLandscape) Name() string { return fmt.Sprintf("nk(%d,%d)", p.n, p.k) }

// Direction implements core.Problem.
func (*NKLandscape) Direction() core.Direction { return core.Maximize }

// NewGenome implements core.Problem.
func (p *NKLandscape) NewGenome(r *rng.Source) core.Genome { return genome.RandomBitString(p.n, r) }

// Evaluate implements core.Problem.
func (p *NKLandscape) Evaluate(g core.Genome) float64 {
	b := g.(*genome.BitString)
	total := 0.0
	for i := 0; i < p.n; i++ {
		pattern := 0
		for _, j := range p.links[i] {
			pattern <<= 1
			if b.Get(j) {
				pattern |= 1
			}
		}
		total += p.table[i][pattern]
	}
	return total / float64(p.n)
}

// SubsetSum is the NP-complete landscape used by the DREAM project tests
// reviewed in §4: choose a subset of weights summing to a target. Fitness
// is -|sum−target| (maximised, optimum 0).
type SubsetSum struct {
	weights []int64
	target  int64
}

// NewSubsetSum creates an instance with n weights drawn from seed; a random
// half-size subset defines the target, so a perfect solution exists.
func NewSubsetSum(n int, seed uint64) *SubsetSum {
	r := rng.New(seed)
	w := make([]int64, n)
	for i := range w {
		w[i] = int64(r.Intn(10000) + 1)
	}
	var target int64
	for _, i := range r.Sample(n, n/2) {
		target += w[i]
	}
	return &SubsetSum{weights: w, target: target}
}

// Name implements core.Problem.
func (p *SubsetSum) Name() string { return fmt.Sprintf("subsetsum(%d)", len(p.weights)) }

// Direction implements core.Problem.
func (*SubsetSum) Direction() core.Direction { return core.Maximize }

// NewGenome implements core.Problem.
func (p *SubsetSum) NewGenome(r *rng.Source) core.Genome {
	return genome.RandomBitString(len(p.weights), r)
}

// Evaluate implements core.Problem.
func (p *SubsetSum) Evaluate(g core.Genome) float64 {
	b := g.(*genome.BitString)
	var sum int64
	for w, word := range b.Words {
		for ; word != 0; word &= word - 1 {
			sum += p.weights[w<<6|bits.TrailingZeros64(word)]
		}
	}
	d := sum - p.target
	if d < 0 {
		d = -d
	}
	return -float64(d)
}

// Optimum implements core.TargetAware.
func (*SubsetSum) Optimum() float64 { return 0 }

// Solved implements core.TargetAware.
func (*SubsetSum) Solved(f float64) bool { return f >= 0 }

// Target returns the instance's target sum (for reporting).
func (p *SubsetSum) Target() int64 { return p.target }

// Knapsack is the 0/1 knapsack with a penalty for overweight solutions.
type Knapsack struct {
	values, weights []float64
	capacity        float64
}

// NewKnapsack creates an n-item instance from seed with capacity equal to
// half the total weight (the standard hard regime).
func NewKnapsack(n int, seed uint64) *Knapsack {
	r := rng.New(seed)
	v := make([]float64, n)
	w := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		v[i] = float64(r.Intn(100) + 1)
		w[i] = float64(r.Intn(100) + 1)
		total += w[i]
	}
	return &Knapsack{values: v, weights: w, capacity: total / 2}
}

// Name implements core.Problem.
func (p *Knapsack) Name() string { return fmt.Sprintf("knapsack(%d)", len(p.values)) }

// Direction implements core.Problem.
func (*Knapsack) Direction() core.Direction { return core.Maximize }

// NewGenome implements core.Problem.
func (p *Knapsack) NewGenome(r *rng.Source) core.Genome {
	return genome.RandomBitString(len(p.values), r)
}

// Evaluate implements core.Problem. Overweight solutions are penalised
// proportionally to the excess (graded penalty keeps the landscape
// searchable).
func (p *Knapsack) Evaluate(g core.Genome) float64 {
	b := g.(*genome.BitString)
	var value, weight float64
	// Set-bit iteration ascends within each word, so the float summation
	// order matches the old per-bit loop exactly (bit-identical fitness).
	for w, word := range b.Words {
		for ; word != 0; word &= word - 1 {
			i := w<<6 | bits.TrailingZeros64(word)
			value += p.values[i]
			weight += p.weights[i]
		}
	}
	if weight > p.capacity {
		return value - 10*(weight-p.capacity)
	}
	return value
}

// Capacity returns the instance capacity (for reporting).
func (p *Knapsack) Capacity() float64 { return p.capacity }

// MaxSAT is a random 3-SAT maximisation instance: fitness is the fraction
// of satisfied clauses.
type MaxSAT struct {
	nvars   int
	clauses [][3]int // literal = var+1 or -(var+1)
}

// NewMaxSAT creates an instance with n variables and m random 3-literal
// clauses drawn from seed.
func NewMaxSAT(n, m int, seed uint64) *MaxSAT {
	r := rng.New(seed)
	cl := make([][3]int, m)
	for i := range cl {
		vars := r.Sample(n, 3)
		for j := 0; j < 3; j++ {
			lit := vars[j] + 1
			if r.Bool() {
				lit = -lit
			}
			cl[i][j] = lit
		}
	}
	return &MaxSAT{nvars: n, clauses: cl}
}

// Name implements core.Problem.
func (p *MaxSAT) Name() string { return fmt.Sprintf("maxsat(%d,%d)", p.nvars, len(p.clauses)) }

// Direction implements core.Problem.
func (*MaxSAT) Direction() core.Direction { return core.Maximize }

// NewGenome implements core.Problem.
func (p *MaxSAT) NewGenome(r *rng.Source) core.Genome {
	return genome.RandomBitString(p.nvars, r)
}

// Evaluate implements core.Problem.
func (p *MaxSAT) Evaluate(g core.Genome) float64 {
	b := g.(*genome.BitString)
	sat := 0
	for _, c := range p.clauses {
		for _, lit := range c {
			v := lit
			neg := false
			if v < 0 {
				v, neg = -v, true
			}
			if b.Get(v-1) != neg {
				sat++
				break
			}
		}
	}
	return float64(sat) / float64(len(p.clauses))
}

// sphereWarning guards against NaN leaking out of any Evaluate.
func finite(f float64) float64 {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		panic("problems: non-finite fitness")
	}
	return f
}
