package ga

import (
	"time"

	"pga/internal/core"
)

// RunOptions tunes Run's behaviour.
type RunOptions struct {
	// Stop terminates the run (required).
	Stop core.StopCondition
	// Trace enables per-step progress recording in the Result.
	Trace bool
	// OnStep, when non-nil, is called after every step with the current
	// status (hook for live displays and experiment instrumentation).
	OnStep func(core.Status)
}

// Run drives engine step by step until the stop condition fires and
// returns the run summary. It is the single sequential "run loop" used by
// baselines and by each island goroutine.
func Run(engine Engine, opts RunOptions) *core.Result {
	if opts.Stop == nil {
		panic("ga: RunOptions.Stop is required")
	}
	start := time.Now()
	dir := engine.Problem().Direction()
	ta, hasTarget := engine.Problem().(core.TargetAware)

	res := &core.Result{Problem: engine.Problem().Name()}
	best := dir.Worst()
	var bestInd *core.Individual
	record := func() bool {
		improved := false
		pop := engine.Population()
		if i := pop.Best(dir); i >= 0 && dir.Better(pop.Members[i].Fitness, best) {
			best = pop.Members[i].Fitness
			// Reuse one tracker individual instead of cloning on every
			// improving generation (improvements are frequent early on).
			if bestInd == nil {
				bestInd = pop.Members[i].Clone()
			} else {
				bestInd.CopyFrom(pop.Members[i])
			}
			improved = true
			if hasTarget && !res.Solved && ta.Solved(best) {
				res.Solved = true
				res.SolvedAtEval = engine.Evaluations()
			}
		}
		return improved
	}
	record() // initial population counts

	status := core.Status{
		Generation:  0,
		Evaluations: engine.Evaluations(),
		BestFitness: best,
		Improved:    true,
	}
	if opts.Trace {
		res.Trace = append(res.Trace, core.TracePoint{
			Generation: 0, Evaluations: status.Evaluations,
			Best: best, Mean: engine.Population().MeanFitness(),
		})
	}

	for !opts.Stop.Done(status) {
		engine.Step()
		status.Generation++
		status.Evaluations = engine.Evaluations()
		status.Improved = record()
		status.BestFitness = best
		if opts.Trace {
			res.Trace = append(res.Trace, core.TracePoint{
				Generation: status.Generation, Evaluations: status.Evaluations,
				Best: best, Mean: engine.Population().MeanFitness(),
			})
		}
		if opts.OnStep != nil {
			opts.OnStep(status)
		}
	}

	res.Best = bestInd
	res.BestFitness = best
	res.Generations = status.Generation
	res.Evaluations = status.Evaluations
	res.Elapsed = time.Since(start)
	if any, ok := opts.Stop.(core.AnyOf); ok {
		res.StopReason = any.FiredReason(status)
	} else {
		res.StopReason = opts.Stop.Reason()
	}
	return res
}
