package ga

import (
	"pga/internal/core"
	"pga/internal/engine"
)

// RunOptions tunes Run's behaviour.
type RunOptions struct {
	// Stop terminates the run (required).
	Stop core.StopCondition
	// Trace enables per-step progress recording in the Result.
	Trace bool
	// OnStep, when non-nil, is called after every step with the current
	// status (hook for live displays and experiment instrumentation).
	OnStep func(core.Status)
	// Observers receive the engine.Loop lifecycle hooks (OnGeneration /
	// OnMigration / OnRestart / OnDone) — the seam for observability
	// tooling. OnStep is a shorthand for a generation-only observer.
	Observers []engine.Observer
}

// stepper adapts an Engine to the shared run-loop driver: the engine's
// Step is the whole model-specific part of a panmictic run (this also
// covers cellular engines run standalone and engines evaluating through a
// master–slave farm — both implement Engine).
type stepper struct {
	e Engine
}

// Step implements engine.Stepper.
func (s stepper) Step(int) engine.StepInfo {
	s.e.Step()
	return engine.StepInfo{}
}

// Best implements engine.Stepper.
func (s stepper) Best() (*core.Individual, float64) {
	dir := s.e.Problem().Direction()
	pop := s.e.Population()
	if i := pop.Best(dir); i >= 0 {
		return pop.Members[i], pop.Members[i].Fitness
	}
	return nil, dir.Worst()
}

// Evaluations implements engine.Stepper.
func (s stepper) Evaluations() int64 { return s.e.Evaluations() }

// Direction implements engine.Stepper.
func (s stepper) Direction() core.Direction { return s.e.Problem().Direction() }

// MeanFitness implements engine.MeanReporter.
func (s stepper) MeanFitness() float64 { return s.e.Population().MeanFitness() }

// stepCallback adapts RunOptions.OnStep to the observer seam; the
// generation-0 hook is not forwarded (OnStep fires once per step).
type stepCallback func(core.Status)

// OnGeneration implements engine.Observer.
func (f stepCallback) OnGeneration(s core.Status) {
	if s.Generation > 0 {
		f(s)
	}
}

// OnMigration implements engine.Observer.
func (f stepCallback) OnMigration(int, int64) {}

// OnRestart implements engine.Observer.
func (f stepCallback) OnRestart(int, int64) {}

// OnDone implements engine.Observer.
func (f stepCallback) OnDone(*core.RunStats) {}

// Run drives engine step by step until the stop condition fires and
// returns the run summary. It is the single sequential "run loop" used by
// baselines and by each island goroutine; the actual loop is engine.Loop.
func Run(e Engine, opts RunOptions) *core.Result {
	if opts.Stop == nil {
		panic("ga: RunOptions.Stop is required")
	}
	res := &core.Result{Problem: e.Problem().Name()}
	ta, _ := e.Problem().(core.TargetAware)
	observers := opts.Observers
	if opts.OnStep != nil {
		observers = append(observers, stepCallback(opts.OnStep))
	}
	engine.Loop(stepper{e: e}, engine.Options{
		Stop:              opts.Stop,
		Target:            ta,
		InitialSolve:      true,
		Trace:             opts.Trace,
		InitialTracePoint: true,
		Observers:         observers,
	}, &res.RunStats)
	// Fitness memo-cache accounting rides the result, not the Observer
	// seam: a CachedProblem's counters are copied once, after the loop.
	if cr, ok := e.Problem().(core.CacheReporter); ok {
		res.CacheHits, res.CacheMisses = cr.CacheStats()
	}
	return res
}
