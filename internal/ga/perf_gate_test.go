package ga

// The allocation-budget perf gate for the sequential engines: the hot
// path of a generation step must not allocate at steady state (ROADMAP:
// "as fast as the hardware allows" — on the single-core reference setup
// GC pressure, not arithmetic, dominated a step before the pooled
// double-buffer rewrite). CI runs these tests on every push; a regression
// that reintroduces per-birth allocations fails the build rather than
// silently eating the speedup.
//
// testing.AllocsPerRun performs one warm-up call before measuring, which
// is what lets the engines build their pooled buffers lazily.

import (
	"testing"

	"pga/internal/core"
	"pga/internal/operators"
	"pga/internal/problems"
	"pga/internal/rng"
)

// allocGateCase is one engine configuration with its allocation budget
// (average allocations per Step, measured after warm-up).
type allocGateCase struct {
	name   string
	engine Engine
	budget float64
}

func allocGateCases() []allocGateCase {
	oneMax := func() Config {
		return Config{
			Problem:   problems.OneMax{N: 128},
			PopSize:   100,
			Crossover: operators.Uniform{},
			Mutator:   operators.BitFlip{},
			RNG:       rng.New(1),
		}
	}
	sphere := func() Config {
		return Config{
			Problem:   problems.Sphere(16),
			PopSize:   100,
			Crossover: operators.SBX{},
			Mutator:   operators.Gaussian{},
			RNG:       rng.New(1),
		}
	}
	// The permutation benchmark (QAP stands in for TSP): ERX was the last
	// crossover without an in-place variant, so this case gates the
	// scratch-based adjacency rewrite at zero allocations per step.
	qap := func() Config {
		return Config{
			Problem:   problems.NewQAP(16, 3),
			PopSize:   100,
			Crossover: operators.ERX{},
			Mutator:   operators.Swap{},
			RNG:       rng.New(1),
		}
	}
	// Word-wise operators on the packed bitset: the whole point of the
	// []uint64 layout is that word-granular crossover and mutation touch
	// no per-bit state, so they must be zero-alloc too. N % 64 != 0
	// keeps the tail-word masking on the measured path.
	wordOps := func() Config {
		return Config{
			Problem:   problems.OneMax{N: 150},
			PopSize:   100,
			Crossover: operators.KPointWord{K: 2},
			Mutator:   operators.BlockFlip{},
			RNG:       rng.New(1),
		}
	}
	gapCfg := oneMax()
	gapCfg.GenGap = 0.5
	gapCfg.Elitism = 4
	rankCfg := sphere()
	rankCfg.Selector = operators.LinearRank{}
	return []allocGateCase{
		{"generational/onemax", NewGenerational(oneMax()), 0},
		{"generational/onemax-wordops", NewGenerational(wordOps()), 0},
		{"steady-state/onemax-wordops", NewSteadyState(func() Config {
			c := wordOps()
			c.Crossover = operators.UniformWord{}
			return c
		}(), true), 0},
		{"generational/sphere", NewGenerational(sphere()), 0},
		{"generational/qap-erx", NewGenerational(qap()), 0},
		{"generational/gap+elitism", NewGenerational(gapCfg), 0},
		{"generational/rank-selection", NewGenerational(rankCfg), 0},
		{"steady-state/onemax", NewSteadyState(oneMax(), true), 0},
		{"steady-state/sphere", NewSteadyState(sphere(), false), 0},
		// The shared-memory engine pays a fixed per-step cost for its
		// worker goroutines (spawn + waitgroup), never per birth.
		{"parallel-generational/onemax", NewParallelGenerational(oneMax(), 4), 16},
	}
}

// TestAllocBudget is the perf gate: each engine's Step must stay within
// its allocation budget (zero for the sequential engines).
func TestAllocBudget(t *testing.T) {
	for _, tc := range allocGateCases() {
		t.Run(tc.name, func(t *testing.T) {
			avg := testing.AllocsPerRun(20, tc.engine.Step)
			if avg > tc.budget {
				t.Errorf("%s: %.1f allocs per Step, budget %.0f", tc.name, avg, tc.budget)
			}
		})
	}
}

// TestRunAllocBudget gates the Run loop's record path: with tracing off,
// driving an engine for 50 generations must allocate only the fixed
// run-level state (result, stop condition, one best-tracker individual),
// not per-generation clones.
func TestRunAllocBudget(t *testing.T) {
	e := NewGenerational(Config{
		Problem:   problems.OneMax{N: 128},
		PopSize:   100,
		Crossover: operators.Uniform{},
		Mutator:   operators.BitFlip{},
		RNG:       rng.New(1),
	})
	e.Step() // build pooled buffers outside the measured region
	avg := testing.AllocsPerRun(5, func() {
		Run(e, RunOptions{Stop: core.MaxGenerations(50)})
	})
	// ~10 fixed allocations per Run call (Result, trackers, interfaces);
	// 50 generations must not scale it.
	if avg > 20 {
		t.Errorf("Run(50 gens): %.1f allocs, budget 20 (per-generation allocation leak)", avg)
	}
}

// ---- per-engine micro-benchmarks of one generation step ----

// BenchmarkGenerationAllocs reports ns/op, B/op and allocs/op for one
// generation equivalent of every sequential engine; `make bench` records
// the numbers in BENCH_3.json.
func BenchmarkGenerationAllocs(b *testing.B) {
	for _, tc := range allocGateCases() {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				tc.engine.Step()
			}
		})
	}
}
