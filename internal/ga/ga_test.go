package ga

import (
	"testing"

	"pga/internal/core"
	"pga/internal/genome"
	"pga/internal/operators"
	"pga/internal/problems"
	"pga/internal/rng"
)

func baseConfig(seed uint64) Config {
	return Config{
		Problem:   problems.OneMax{N: 64},
		PopSize:   60,
		Selector:  operators.Tournament{K: 2},
		Crossover: operators.Uniform{},
		Mutator:   operators.BitFlip{},
		RNG:       rng.New(seed),
	}
}

func TestGenerationalSolvesOneMax(t *testing.T) {
	e := NewGenerational(baseConfig(1))
	res := Run(e, RunOptions{Stop: core.AnyOf{
		core.MaxGenerations(300),
		core.TargetFitness{Target: 64, Dir: core.Maximize},
	}})
	if !res.Solved {
		t.Fatalf("generational GA failed onemax: best=%v after %d gens", res.BestFitness, res.Generations)
	}
	if res.StopReason != "target fitness reached" {
		t.Fatalf("stop reason %q", res.StopReason)
	}
}

func TestSteadyStateSolvesOneMax(t *testing.T) {
	e := NewSteadyState(baseConfig(2), true)
	res := Run(e, RunOptions{Stop: core.AnyOf{
		core.MaxGenerations(300),
		core.TargetFitness{Target: 64, Dir: core.Maximize},
	}})
	if !res.Solved {
		t.Fatalf("steady-state GA failed onemax: best=%v", res.BestFitness)
	}
}

func TestGenerationalSolvesRealValued(t *testing.T) {
	cfg := Config{
		Problem:   problems.Sphere(8),
		PopSize:   80,
		Selector:  operators.Tournament{K: 3},
		Crossover: operators.SBX{},
		Mutator:   operators.Polynomial{},
		RNG:       rng.New(3),
	}
	e := NewGenerational(cfg)
	res := Run(e, RunOptions{Stop: core.AnyOf{
		core.MaxGenerations(400),
		core.TargetFitness{Target: 1e-3, Dir: core.Minimize},
	}})
	if res.BestFitness > 0.01 {
		t.Fatalf("sphere not minimised: %v", res.BestFitness)
	}
}

func TestGenerationalMonotoneBestWithElitism(t *testing.T) {
	e := NewGenerational(baseConfig(4))
	prev := e.Population().BestFitness(core.Maximize)
	for i := 0; i < 50; i++ {
		e.Step()
		cur := e.Population().BestFitness(core.Maximize)
		if cur < prev {
			t.Fatalf("best fitness regressed with elitism: %v -> %v", prev, cur)
		}
		prev = cur
	}
}

func TestGenerationalNoElitismAllowed(t *testing.T) {
	cfg := baseConfig(5)
	cfg.Elitism = -1 // explicit "no elitism"
	e := NewGenerational(cfg)
	for i := 0; i < 5; i++ {
		e.Step()
	}
	if e.Population().Len() != cfg.PopSize {
		t.Fatal("population size drifted")
	}
	if e.Name() != "generational" {
		t.Fatalf("name = %q", e.Name())
	}
}

func TestGenerationalGenGap(t *testing.T) {
	cfg := baseConfig(6)
	cfg.GenGap = 0.3
	e := NewGenerational(cfg)
	before := make(map[*core.Individual]bool)
	for _, ind := range e.Population().Members {
		before[ind] = true
	}
	e.Step()
	if e.Population().Len() != cfg.PopSize {
		t.Fatalf("gen-gap step changed population size to %d", e.Population().Len())
	}
	// With gap 0.3, roughly 70% of the next population are survivors
	// (clones, so pointer identity is lost; use fitness conservation of the
	// elite instead).
	if e.Name() != "generational(gap=0.3)" {
		t.Fatalf("name = %q", e.Name())
	}
}

func TestGenerationalPopulationSizeStable(t *testing.T) {
	for _, gap := range []float64{0.1, 0.5, 0.9, 1.0} {
		cfg := baseConfig(7)
		cfg.GenGap = gap
		e := NewGenerational(cfg)
		for i := 0; i < 10; i++ {
			e.Step()
			if e.Population().Len() != cfg.PopSize {
				t.Fatalf("gap=%v: size %d != %d", gap, e.Population().Len(), cfg.PopSize)
			}
		}
	}
}

func TestSteadyStateReplaceWorstNeverLosesBest(t *testing.T) {
	e := NewSteadyState(baseConfig(8), true)
	prev := e.Population().BestFitness(core.Maximize)
	for i := 0; i < 30; i++ {
		e.Step()
		cur := e.Population().BestFitness(core.Maximize)
		if cur < prev {
			t.Fatalf("steady-state lost best: %v -> %v", prev, cur)
		}
		prev = cur
	}
}

func TestSteadyStateReplaceRandomKeepsBestGuard(t *testing.T) {
	e := NewSteadyState(baseConfig(9), false)
	prev := e.Population().BestFitness(core.Maximize)
	for i := 0; i < 30; i++ {
		e.Step()
		cur := e.Population().BestFitness(core.Maximize)
		if cur < prev {
			t.Fatalf("replace-random lost the best individual: %v -> %v", prev, cur)
		}
		prev = cur
	}
	if e.Name() != "steady-state(random)" {
		t.Fatalf("name = %q", e.Name())
	}
}

func TestSteadyStateEvaluationsCount(t *testing.T) {
	cfg := baseConfig(10)
	e := NewSteadyState(cfg, true)
	if e.Evaluations() != int64(cfg.PopSize) {
		t.Fatalf("initial evals = %d, want %d", e.Evaluations(), cfg.PopSize)
	}
	e.Step()
	if e.Evaluations() != int64(2*cfg.PopSize) {
		t.Fatalf("after one step evals = %d, want %d", e.Evaluations(), 2*cfg.PopSize)
	}
}

func TestGenerationalEvaluationsGrowPerStep(t *testing.T) {
	cfg := baseConfig(11)
	e := NewGenerational(cfg)
	e0 := e.Evaluations()
	e.Step()
	grew := e.Evaluations() - e0
	// One full generation evaluates PopSize-Elitism fresh offspring.
	if grew != int64(cfg.PopSize-1) {
		t.Fatalf("step evaluated %d, want %d", grew, cfg.PopSize-1)
	}
}

func TestRunDeterministicWithSeed(t *testing.T) {
	run := func() float64 {
		e := NewGenerational(baseConfig(42))
		res := Run(e, RunOptions{Stop: core.MaxGenerations(30)})
		return res.BestFitness
	}
	if run() != run() {
		t.Fatal("same seed produced different results")
	}
}

func TestRunDifferentSeedsDiffer(t *testing.T) {
	res1 := Run(NewGenerational(baseConfig(1)), RunOptions{Stop: core.MaxGenerations(5), Trace: true})
	res2 := Run(NewGenerational(baseConfig(99)), RunOptions{Stop: core.MaxGenerations(5), Trace: true})
	same := true
	for i := range res1.Trace {
		if i < len(res2.Trace) && res1.Trace[i].Mean != res2.Trace[i].Mean {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical traces (suspicious)")
	}
}

func TestRunTrace(t *testing.T) {
	e := NewGenerational(baseConfig(12))
	res := Run(e, RunOptions{Stop: core.MaxGenerations(10), Trace: true})
	if len(res.Trace) != 11 { // initial sample + 10 steps
		t.Fatalf("trace has %d points, want 11", len(res.Trace))
	}
	for i := 1; i < len(res.Trace); i++ {
		if res.Trace[i].Best < res.Trace[i-1].Best {
			t.Fatal("trace best regressed despite elitism")
		}
		if res.Trace[i].Evaluations <= res.Trace[i-1].Evaluations {
			t.Fatal("trace evaluations not increasing")
		}
	}
}

func TestRunOnStepCallback(t *testing.T) {
	e := NewGenerational(baseConfig(13))
	calls := 0
	Run(e, RunOptions{Stop: core.MaxGenerations(7), OnStep: func(s core.Status) {
		calls++
		if s.Generation != calls {
			t.Fatalf("OnStep generation %d at call %d", s.Generation, calls)
		}
	}})
	if calls != 7 {
		t.Fatalf("OnStep called %d times, want 7", calls)
	}
}

func TestRunStagnationStops(t *testing.T) {
	cfg := baseConfig(14)
	cfg.Mutator = nil
	cfg.Crossover = nil // nothing can improve: pure copying
	e := NewGenerational(cfg)
	res := Run(e, RunOptions{Stop: core.AnyOf{
		core.MaxGenerations(1000),
		core.NewStagnation(5),
	}})
	if res.Generations >= 1000 {
		t.Fatal("stagnation never fired")
	}
	if res.StopReason != "stagnation" {
		t.Fatalf("stop reason %q", res.StopReason)
	}
}

func TestRunSolvedAtEval(t *testing.T) {
	e := NewGenerational(baseConfig(15))
	res := Run(e, RunOptions{Stop: core.AnyOf{
		core.MaxGenerations(500),
		core.TargetFitness{Target: 64, Dir: core.Maximize},
	}})
	if !res.Solved {
		t.Skip("run did not solve; cannot check SolvedAtEval")
	}
	if res.SolvedAtEval <= 0 || res.SolvedAtEval > res.Evaluations {
		t.Fatalf("SolvedAtEval=%d outside (0, %d]", res.SolvedAtEval, res.Evaluations)
	}
}

func TestRunPanicsWithoutStop(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Run without Stop did not panic")
		}
	}()
	Run(NewGenerational(baseConfig(16)), RunOptions{})
}

func TestConfigValidation(t *testing.T) {
	cases := []Config{
		{PopSize: 10, RNG: rng.New(1)},                                // no problem
		{Problem: problems.OneMax{N: 8}, PopSize: 10},                 // no rng
		{Problem: problems.OneMax{N: 8}, PopSize: 1, RNG: rng.New(1)}, // pop too small
		{Problem: problems.OneMax{N: 8}, PopSize: 10, RNG: rng.New(1), GenGap: 1.5},
		{Problem: problems.OneMax{N: 8}, PopSize: 10, RNG: rng.New(1), Elitism: 10},
	}
	for i, cfg := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d did not panic", i)
				}
			}()
			NewGenerational(cfg)
		}()
	}
}

func TestMutationOnlyEvolutionWorks(t *testing.T) {
	cfg := baseConfig(17)
	cfg.Crossover = nil
	e := NewGenerational(cfg)
	res := Run(e, RunOptions{Stop: core.MaxGenerations(100)})
	if res.BestFitness < 50 {
		t.Fatalf("mutation-only GA too weak: %v", res.BestFitness)
	}
}

func TestPermutationEngine(t *testing.T) {
	// Smoke test: a permutation problem runs end to end through the engine.
	tsp := tspStub{n: 12}
	cfg := Config{
		Problem:   tsp,
		PopSize:   40,
		Crossover: operators.OX{},
		Mutator:   operators.Inversion{},
		RNG:       rng.New(18),
	}
	e := NewGenerational(cfg)
	res := Run(e, RunOptions{Stop: core.MaxGenerations(50)})
	if res.Evaluations == 0 {
		t.Fatal("no evaluations")
	}
}

// tspStub is a minimal permutation problem: minimise the sum of position
// mismatches relative to identity order (trivially optimised by identity).
type tspStub struct{ n int }

func (p tspStub) Name() string              { return "perm-stub" }
func (p tspStub) Direction() core.Direction { return core.Minimize }
func (p tspStub) NewGenome(r *rng.Source) core.Genome {
	return genome.RandomPermutation(p.n, r)
}
func (p tspStub) Evaluate(g core.Genome) float64 {
	perm := g.(*genome.Permutation)
	miss := 0
	for i := 0; i < p.n; i++ {
		if perm.PositionOf(i) != i {
			miss++
		}
	}
	return float64(miss)
}

// TestRunCachedProblemStats pins the memo-cache plumbing: wrapping the
// problem in core.CachedProblem must leave the evolution trajectory
// bit-identical (cache hits return the memoised fitness, which entered
// the map from the same Evaluate) while the hit/miss counters surface on
// the result without touching the Observer seam.
func TestRunCachedProblemStats(t *testing.T) {
	run := func(wrap bool) *core.Result {
		cfg := baseConfig(77)
		if wrap {
			cfg.Problem = core.NewCachedProblem(cfg.Problem, 0)
		}
		e := NewSteadyState(cfg, true)
		return Run(e, RunOptions{Stop: core.MaxGenerations(200)})
	}
	plain := run(false)
	cached := run(true)

	if plain.BestFitness != cached.BestFitness || plain.Evaluations != cached.Evaluations {
		t.Fatalf("cache changed the run: best %v/%v evals %d/%d",
			plain.BestFitness, cached.BestFitness, plain.Evaluations, cached.Evaluations)
	}
	if plain.CacheHits != 0 || plain.CacheMisses != 0 {
		t.Fatal("unwrapped run reported cache stats")
	}
	if cached.CacheHits == 0 {
		t.Fatal("steady-state revisits produced no cache hits")
	}
	if cached.CacheHits+cached.CacheMisses != cached.Evaluations {
		t.Fatalf("hits+misses = %d, evaluations = %d (hashable genomes must all route through the cache)",
			cached.CacheHits+cached.CacheMisses, cached.Evaluations)
	}
}
