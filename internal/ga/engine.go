// Package ga implements the sequential genetic-algorithm engines of the
// library: the generational GA (with optional generation gap and elitism)
// and the steady-state GA.
//
// These are both the baseline of every parallel comparison in the
// experiment suite and the inner loop run inside each island deme — the
// "panmictic (steady-state or generational)" evolution schemes whose
// island-level comparison Alba & Troya (2002) carried out and the survey
// reviews in §2.
package ga

import (
	"fmt"
	"sort"

	"pga/internal/core"
	"pga/internal/operators"
	"pga/internal/rng"
)

// Engine is one evolving population that can be advanced step by step.
// A step is one "generation equivalent": a full generation for the
// generational engine, PopSize births for the steady-state engine, one
// grid sweep for the cellular engine (internal/cellular).
//
// The Population accessor exposes the live population so that migration
// (internal/island) can exchange individuals between steps.
type Engine interface {
	// Name identifies the engine configuration.
	Name() string
	// Step advances the population by one generation equivalent.
	Step()
	// Population returns the live population (mutable between steps).
	Population() *core.Population
	// Problem returns the problem being optimised.
	Problem() core.Problem
	// Evaluations returns the cumulative number of fitness evaluations.
	Evaluations() int64
}

// Config collects the knobs shared by the sequential engines. Zero values
// select canonical defaults (documented per field).
type Config struct {
	// Problem is the optimisation problem (required).
	Problem core.Problem
	// PopSize is the population size; default 100.
	PopSize int
	// Selector chooses parents; default Tournament{K: 2}.
	Selector operators.Selector
	// Crossover recombines parents; nil evolves by mutation only.
	Crossover operators.Crossover
	// CrossoverRate is the probability a selected pair is recombined
	// rather than copied; default 0.9.
	CrossoverRate float64
	// Mutator perturbs offspring; nil disables mutation.
	Mutator operators.Mutator
	// Elitism is the number of best individuals copied unchanged into the
	// next generation (generational engine only); default 1. Set to -1 for
	// no elitism.
	Elitism int
	// GenGap is the fraction of the population replaced each generation
	// (generational engine only); default 1.0 — Bethke (1976)'s
	// generational-gap GA is obtained with GenGap < 1.
	GenGap float64
	// ReplaceWorst selects steady-state replacement of the current worst
	// individual; when false a random individual is replaced
	// (steady-state engine only). Default true (set via NewSteadyState).
	ReplaceWorst bool
	// Evaluator performs fitness evaluations; default a SerialEvaluator.
	// The master–slave model plugs its parallel farm in here.
	Evaluator core.Evaluator
	// RNG is the engine's random stream (required; use rng.New or a
	// Split from a parent stream for parallel determinism).
	RNG *rng.Source
}

// withDefaults returns a copy of c with zero values replaced by defaults.
func (c Config) withDefaults() Config {
	if c.PopSize == 0 {
		c.PopSize = 100
	}
	if c.Selector == nil {
		c.Selector = operators.Tournament{K: 2}
	}
	if c.CrossoverRate == 0 {
		c.CrossoverRate = 0.9
	}
	if c.GenGap == 0 {
		c.GenGap = 1.0
	}
	if c.Elitism == 0 {
		c.Elitism = 1
	}
	if c.Elitism == -1 {
		c.Elitism = 0
	}
	if c.Evaluator == nil {
		c.Evaluator = &core.SerialEvaluator{}
	}
	return c
}

func (c Config) validate() {
	if c.Problem == nil {
		panic("ga: Config.Problem is required")
	}
	if c.RNG == nil {
		panic("ga: Config.RNG is required")
	}
	if c.PopSize < 2 {
		panic("ga: PopSize must be at least 2")
	}
	if c.GenGap < 0 || c.GenGap > 1 {
		panic("ga: GenGap must be in [0,1]")
	}
	if c.Elitism < 0 || c.Elitism >= c.PopSize {
		panic("ga: Elitism must be in [0, PopSize)")
	}
}

// bestSorter sorts an index buffer best → worst under a direction without
// allocating (sort.Stable over a pointer receiver, unlike sort.SliceStable,
// performs no per-call allocation; both are stable, so the ordering matches
// the historical rankedIndices helper exactly).
type bestSorter struct {
	idx []int
	pop *core.Population
	dir core.Direction
}

func (s *bestSorter) Len() int      { return len(s.idx) }
func (s *bestSorter) Swap(i, j int) { s.idx[i], s.idx[j] = s.idx[j], s.idx[i] }
func (s *bestSorter) Less(a, b int) bool {
	return s.dir.Better(s.pop.Members[s.idx[a]].Fitness, s.pop.Members[s.idx[b]].Fitness)
}

// rankedInto fills the sorter's reusable index buffer with population
// indices ordered best → worst under dir and returns it.
func rankedInto(s *bestSorter, pop *core.Population, dir core.Direction) []int {
	n := pop.Len()
	if cap(s.idx) < n {
		s.idx = make([]int, n)
	}
	s.idx = s.idx[:n]
	for i := range s.idx {
		s.idx[i] = i
	}
	s.pop, s.dir = pop, dir
	sort.Stable(s)
	s.pop = nil // do not pin the population between steps
	return s.idx
}

// Generational is the classic generational GA: each step builds a new
// population from selected, recombined and mutated offspring, preserving
// Elitism top individuals; with GenGap < 1 only that fraction of the
// population is replaced and the best survivors fill the remainder.
//
// The engine double-buffers generations: offspring are written into a
// pooled shadow population whose Members slice is swapped with the live one
// at the end of each step, so the steady-state cost of Step is zero heap
// allocations (see perf_gate_test.go).
type Generational struct {
	cfg Config
	pop *core.Population
	dir core.Direction

	// next is the pooled shadow generation; spare absorbs the discarded
	// second child when an odd number of births is needed (the RNG draws
	// for it still happen, exactly as in the allocating implementation).
	next    *core.Population
	spare   *core.Individual
	ranker  bestSorter
	scratch operators.Scratch
}

var _ Engine = (*Generational)(nil)

// NewGenerational creates a generational engine with a random, evaluated
// initial population.
func NewGenerational(cfg Config) *Generational {
	cfg = cfg.withDefaults()
	cfg.validate()
	e := &Generational{cfg: cfg, dir: cfg.Problem.Direction()}
	e.pop = core.NewPopulation(cfg.PopSize)
	for i := 0; i < cfg.PopSize; i++ {
		e.pop.Members = append(e.pop.Members, core.NewIndividual(cfg.Problem.NewGenome(cfg.RNG)))
	}
	cfg.Evaluator.EvaluateAll(cfg.Problem, e.pop)
	return e
}

// Name implements Engine.
func (e *Generational) Name() string {
	if e.cfg.GenGap < 1 {
		return fmt.Sprintf("generational(gap=%.2g)", e.cfg.GenGap)
	}
	return "generational"
}

// Population implements Engine.
func (e *Generational) Population() *core.Population { return e.pop }

// Problem implements Engine.
func (e *Generational) Problem() core.Problem { return e.cfg.Problem }

// Evaluations implements Engine.
func (e *Generational) Evaluations() int64 { return e.cfg.Evaluator.Evaluations() }

// SetPopulation replaces the engine's population — the restore half of
// checkpointing (see internal/persist). The population must match the
// configured size and be fully evaluated.
func (e *Generational) SetPopulation(pop *core.Population) {
	if pop.Len() != e.cfg.PopSize {
		panic("ga: SetPopulation size mismatch")
	}
	for _, ind := range pop.Members {
		if !ind.Evaluated {
			panic("ga: SetPopulation requires an evaluated population")
		}
	}
	e.pop = pop
	// Genome shapes may have changed; rebuild the pooled buffers lazily.
	e.next = nil
	e.spare = nil
}

// ensureBuffers builds the pooled shadow generation on first use (and
// after SetPopulation). Cloning the live members gives every slot a genome
// of the right concrete type and length so later steps copy in place.
func (e *Generational) ensureBuffers() {
	if e.next != nil {
		return
	}
	n := e.cfg.PopSize
	e.next = core.NewPopulation(n)
	for i := 0; i < n; i++ {
		e.next.Members = append(e.next.Members, e.pop.Members[i].Clone())
	}
	e.spare = e.pop.Members[0].Clone()
}

// Step implements Engine. The RNG draw sequence — selection, crossover
// chance, crossover, mutation, in birth order — is identical to the
// historical allocating implementation, so seeded runs are reproducible
// across library versions.
func (e *Generational) Step() {
	cfg := &e.cfg
	n := cfg.PopSize
	births := int(cfg.GenGap * float64(n))
	if births < 1 {
		births = 1
	}
	if births > n-cfg.Elitism {
		births = n - cfg.Elitism
	}
	e.ensureBuffers()

	// Offspring fill next.Members[Elitism : Elitism+births]; the dangling
	// second child of a final odd pair lands in the spare slot so its RNG
	// draws still happen.
	made := 0
	for made < births {
		i := operators.SelectWith(cfg.Selector, e.pop, e.dir, cfg.RNG, &e.scratch)
		j := operators.SelectWith(cfg.Selector, e.pop, e.dir, cfg.RNG, &e.scratch)
		pa, pb := e.pop.Members[i], e.pop.Members[j]
		c1 := e.next.Members[cfg.Elitism+made]
		c2 := e.spare
		if made+1 < births {
			c2 = e.next.Members[cfg.Elitism+made+1]
		}
		if cfg.Crossover != nil && cfg.RNG.Chance(cfg.CrossoverRate) {
			operators.CrossInto(cfg.Crossover, pa.Genome, pb.Genome, c1, c2, cfg.RNG, &e.scratch)
		} else {
			c1.Genome = core.CopyGenome(c1.Genome, pa.Genome)
			c2.Genome = core.CopyGenome(c2.Genome, pb.Genome)
		}
		if cfg.Mutator != nil {
			cfg.Mutator.Mutate(c1.Genome, cfg.RNG)
			cfg.Mutator.Mutate(c2.Genome, cfg.RNG)
		}
		c1.Evaluated = false
		c2.Evaluated = false
		made += 2
	}

	ranked := rankedInto(&e.ranker, e.pop, e.dir) // best → worst
	// Elites survive unchanged.
	for i := 0; i < cfg.Elitism; i++ {
		e.next.Members[i].CopyFrom(e.pop.Members[ranked[i]])
	}
	// GenGap < 1: the best non-elite survivors keep their slots.
	slot := cfg.Elitism + births
	for i := cfg.Elitism; slot < n && i < len(ranked); i++ {
		e.next.Members[slot].CopyFrom(e.pop.Members[ranked[i]])
		slot++
	}
	// Swap buffers. Swapping the Members slices (not the *Population
	// pointers) keeps Population() stable for callers that hold it across
	// steps, e.g. the island model's migration.
	e.pop.Members, e.next.Members = e.next.Members, e.pop.Members
	cfg.Evaluator.EvaluateAll(cfg.Problem, e.pop)
}

// SteadyState is the steady-state GA: each birth selects two parents,
// produces one child, and inserts it back into the population immediately,
// so good genes spread within a "generation". One Step performs PopSize
// births to stay comparable with a generational step.
type SteadyState struct {
	cfg Config
	pop *core.Population
	dir core.Direction
	// birthEvals counts evaluations performed directly by birth, which
	// bypass the Evaluator interface (one genome at a time).
	birthEvals int64

	// child is the pooled buffer the next offspring is written into; on a
	// successful insertion the evicted individual is recycled as the new
	// buffer, so births are allocation-free at steady state. discard
	// absorbs the unused second child of the crossover.
	child   *core.Individual
	discard *core.Individual
	scratch operators.Scratch
}

var _ Engine = (*SteadyState)(nil)

// NewSteadyState creates a steady-state engine with a random, evaluated
// initial population. Unless cfg.ReplaceWorst is set explicitly the
// canonical replace-worst policy is used.
func NewSteadyState(cfg Config, replaceWorst bool) *SteadyState {
	cfg.ReplaceWorst = replaceWorst
	cfg = cfg.withDefaults()
	cfg.validate()
	e := &SteadyState{cfg: cfg, dir: cfg.Problem.Direction()}
	e.pop = core.NewPopulation(cfg.PopSize)
	for i := 0; i < cfg.PopSize; i++ {
		e.pop.Members = append(e.pop.Members, core.NewIndividual(cfg.Problem.NewGenome(cfg.RNG)))
	}
	cfg.Evaluator.EvaluateAll(cfg.Problem, e.pop)
	return e
}

// Name implements Engine.
func (e *SteadyState) Name() string {
	if e.cfg.ReplaceWorst {
		return "steady-state(worst)"
	}
	return "steady-state(random)"
}

// Population implements Engine.
func (e *SteadyState) Population() *core.Population { return e.pop }

// Problem implements Engine.
func (e *SteadyState) Problem() core.Problem { return e.cfg.Problem }

// Evaluations implements Engine.
func (e *SteadyState) Evaluations() int64 { return e.cfg.Evaluator.Evaluations() + e.birthEvals }

// SetPopulation replaces the engine's population — the restore half of
// checkpointing (see internal/persist). The population must match the
// configured size and be fully evaluated.
func (e *SteadyState) SetPopulation(pop *core.Population) {
	if pop.Len() != e.cfg.PopSize {
		panic("ga: SetPopulation size mismatch")
	}
	for _, ind := range pop.Members {
		if !ind.Evaluated {
			panic("ga: SetPopulation requires an evaluated population")
		}
	}
	e.pop = pop
	// Genome shapes may have changed; rebuild the pooled buffers lazily.
	e.child = nil
	e.discard = nil
}

// ensureBuffers builds the pooled child buffers on first use (and after
// SetPopulation).
func (e *SteadyState) ensureBuffers() {
	if e.child != nil {
		return
	}
	e.child = e.pop.Members[0].Clone()
	e.discard = e.pop.Members[0].Clone()
}

// Step implements Engine: PopSize sequential births.
func (e *SteadyState) Step() {
	for b := 0; b < e.cfg.PopSize; b++ {
		e.birth()
	}
}

// birth produces and inserts one offspring. The RNG draw sequence —
// selection, crossover chance, crossover (both children drawn, second
// unused), mutation, victim choice — is identical to the historical
// allocating implementation.
func (e *SteadyState) birth() {
	cfg := &e.cfg
	e.ensureBuffers()
	i := operators.SelectWith(cfg.Selector, e.pop, e.dir, cfg.RNG, &e.scratch)
	j := operators.SelectWith(cfg.Selector, e.pop, e.dir, cfg.RNG, &e.scratch)
	pa, pb := e.pop.Members[i], e.pop.Members[j]
	ind := e.child
	if cfg.Crossover != nil && cfg.RNG.Chance(cfg.CrossoverRate) {
		operators.CrossInto(cfg.Crossover, pa.Genome, pb.Genome, ind, e.discard, cfg.RNG, &e.scratch)
	} else {
		ind.Genome = core.CopyGenome(ind.Genome, pa.Genome)
	}
	if cfg.Mutator != nil {
		cfg.Mutator.Mutate(ind.Genome, cfg.RNG)
	}
	ind.Fitness = cfg.Problem.Evaluate(ind.Genome)
	ind.Evaluated = true
	e.birthEvals++

	var victim int
	if cfg.ReplaceWorst {
		victim = e.pop.Worst(e.dir)
	} else {
		victim = cfg.RNG.Intn(e.pop.Len())
	}
	// Never replace the incumbent best with something worse: this is the
	// standard steady-state elitism guarantee. The rejected child stays in
	// the pooled buffer and is overwritten by the next birth.
	best := e.pop.Best(e.dir)
	if victim == best && !e.dir.BetterOrEqual(ind.Fitness, e.pop.Members[best].Fitness) {
		return
	}
	// Insert the child and recycle the evicted individual as the next
	// birth's buffer.
	e.child = e.pop.Replace(victim, ind)
}
