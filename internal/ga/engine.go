// Package ga implements the sequential genetic-algorithm engines of the
// library: the generational GA (with optional generation gap and elitism)
// and the steady-state GA.
//
// These are both the baseline of every parallel comparison in the
// experiment suite and the inner loop run inside each island deme — the
// "panmictic (steady-state or generational)" evolution schemes whose
// island-level comparison Alba & Troya (2002) carried out and the survey
// reviews in §2.
package ga

import (
	"fmt"
	"sort"

	"pga/internal/core"
	"pga/internal/operators"
	"pga/internal/rng"
)

// Engine is one evolving population that can be advanced step by step.
// A step is one "generation equivalent": a full generation for the
// generational engine, PopSize births for the steady-state engine, one
// grid sweep for the cellular engine (internal/cellular).
//
// The Population accessor exposes the live population so that migration
// (internal/island) can exchange individuals between steps.
type Engine interface {
	// Name identifies the engine configuration.
	Name() string
	// Step advances the population by one generation equivalent.
	Step()
	// Population returns the live population (mutable between steps).
	Population() *core.Population
	// Problem returns the problem being optimised.
	Problem() core.Problem
	// Evaluations returns the cumulative number of fitness evaluations.
	Evaluations() int64
}

// Config collects the knobs shared by the sequential engines. Zero values
// select canonical defaults (documented per field).
type Config struct {
	// Problem is the optimisation problem (required).
	Problem core.Problem
	// PopSize is the population size; default 100.
	PopSize int
	// Selector chooses parents; default Tournament{K: 2}.
	Selector operators.Selector
	// Crossover recombines parents; nil evolves by mutation only.
	Crossover operators.Crossover
	// CrossoverRate is the probability a selected pair is recombined
	// rather than copied; default 0.9.
	CrossoverRate float64
	// Mutator perturbs offspring; nil disables mutation.
	Mutator operators.Mutator
	// Elitism is the number of best individuals copied unchanged into the
	// next generation (generational engine only); default 1. Set to -1 for
	// no elitism.
	Elitism int
	// GenGap is the fraction of the population replaced each generation
	// (generational engine only); default 1.0 — Bethke (1976)'s
	// generational-gap GA is obtained with GenGap < 1.
	GenGap float64
	// ReplaceWorst selects steady-state replacement of the current worst
	// individual; when false a random individual is replaced
	// (steady-state engine only). Default true (set via NewSteadyState).
	ReplaceWorst bool
	// Evaluator performs fitness evaluations; default a SerialEvaluator.
	// The master–slave model plugs its parallel farm in here.
	Evaluator core.Evaluator
	// RNG is the engine's random stream (required; use rng.New or a
	// Split from a parent stream for parallel determinism).
	RNG *rng.Source
}

// withDefaults returns a copy of c with zero values replaced by defaults.
func (c Config) withDefaults() Config {
	if c.PopSize == 0 {
		c.PopSize = 100
	}
	if c.Selector == nil {
		c.Selector = operators.Tournament{K: 2}
	}
	if c.CrossoverRate == 0 {
		c.CrossoverRate = 0.9
	}
	if c.GenGap == 0 {
		c.GenGap = 1.0
	}
	if c.Elitism == 0 {
		c.Elitism = 1
	}
	if c.Elitism == -1 {
		c.Elitism = 0
	}
	if c.Evaluator == nil {
		c.Evaluator = &core.SerialEvaluator{}
	}
	return c
}

func (c Config) validate() {
	if c.Problem == nil {
		panic("ga: Config.Problem is required")
	}
	if c.RNG == nil {
		panic("ga: Config.RNG is required")
	}
	if c.PopSize < 2 {
		panic("ga: PopSize must be at least 2")
	}
	if c.GenGap < 0 || c.GenGap > 1 {
		panic("ga: GenGap must be in [0,1]")
	}
	if c.Elitism < 0 || c.Elitism >= c.PopSize {
		panic("ga: Elitism must be in [0, PopSize)")
	}
}

// rankedIndices returns population indices ordered best → worst under dir.
func rankedIndices(pop *core.Population, dir core.Direction) []int {
	idx := make([]int, pop.Len())
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return dir.Better(pop.Members[idx[a]].Fitness, pop.Members[idx[b]].Fitness)
	})
	return idx
}

// Generational is the classic generational GA: each step builds a new
// population from selected, recombined and mutated offspring, preserving
// Elitism top individuals; with GenGap < 1 only that fraction of the
// population is replaced and the best survivors fill the remainder.
type Generational struct {
	cfg Config
	pop *core.Population
	dir core.Direction
}

var _ Engine = (*Generational)(nil)

// NewGenerational creates a generational engine with a random, evaluated
// initial population.
func NewGenerational(cfg Config) *Generational {
	cfg = cfg.withDefaults()
	cfg.validate()
	e := &Generational{cfg: cfg, dir: cfg.Problem.Direction()}
	e.pop = core.NewPopulation(cfg.PopSize)
	for i := 0; i < cfg.PopSize; i++ {
		e.pop.Members = append(e.pop.Members, core.NewIndividual(cfg.Problem.NewGenome(cfg.RNG)))
	}
	cfg.Evaluator.EvaluateAll(cfg.Problem, e.pop)
	return e
}

// Name implements Engine.
func (e *Generational) Name() string {
	if e.cfg.GenGap < 1 {
		return fmt.Sprintf("generational(gap=%.2g)", e.cfg.GenGap)
	}
	return "generational"
}

// Population implements Engine.
func (e *Generational) Population() *core.Population { return e.pop }

// Problem implements Engine.
func (e *Generational) Problem() core.Problem { return e.cfg.Problem }

// Evaluations implements Engine.
func (e *Generational) Evaluations() int64 { return e.cfg.Evaluator.Evaluations() }

// SetPopulation replaces the engine's population — the restore half of
// checkpointing (see internal/persist). The population must match the
// configured size and be fully evaluated.
func (e *Generational) SetPopulation(pop *core.Population) {
	if pop.Len() != e.cfg.PopSize {
		panic("ga: SetPopulation size mismatch")
	}
	for _, ind := range pop.Members {
		if !ind.Evaluated {
			panic("ga: SetPopulation requires an evaluated population")
		}
	}
	e.pop = pop
}

// Step implements Engine.
func (e *Generational) Step() {
	cfg := &e.cfg
	n := cfg.PopSize
	births := int(cfg.GenGap * float64(n))
	if births < 1 {
		births = 1
	}
	if births > n-cfg.Elitism {
		births = n - cfg.Elitism
	}

	offspring := make([]*core.Individual, 0, births+1)
	for len(offspring) < births {
		i := cfg.Selector.Select(e.pop, e.dir, cfg.RNG)
		j := cfg.Selector.Select(e.pop, e.dir, cfg.RNG)
		var c1, c2 core.Genome
		if cfg.Crossover != nil && cfg.RNG.Chance(cfg.CrossoverRate) {
			c1, c2 = cfg.Crossover.Cross(e.pop.Members[i].Genome, e.pop.Members[j].Genome, cfg.RNG)
		} else {
			c1 = e.pop.Members[i].Genome.Clone()
			c2 = e.pop.Members[j].Genome.Clone()
		}
		for _, g := range []core.Genome{c1, c2} {
			if cfg.Mutator != nil {
				cfg.Mutator.Mutate(g, cfg.RNG)
			}
			offspring = append(offspring, core.NewIndividual(g))
		}
	}
	offspring = offspring[:births]

	ranked := rankedIndices(e.pop, e.dir) // best → worst
	next := core.NewPopulation(n)
	// Elites survive unchanged.
	for i := 0; i < cfg.Elitism; i++ {
		next.Members = append(next.Members, e.pop.Members[ranked[i]].Clone())
	}
	next.Members = append(next.Members, offspring...)
	// GenGap < 1: the best non-elite survivors keep their slots.
	for i := cfg.Elitism; next.Len() < n && i < len(ranked); i++ {
		next.Members = append(next.Members, e.pop.Members[ranked[i]].Clone())
	}
	e.pop = next
	cfg.Evaluator.EvaluateAll(cfg.Problem, e.pop)
}

// SteadyState is the steady-state GA: each birth selects two parents,
// produces one child, and inserts it back into the population immediately,
// so good genes spread within a "generation". One Step performs PopSize
// births to stay comparable with a generational step.
type SteadyState struct {
	cfg Config
	pop *core.Population
	dir core.Direction
	// birthEvals counts evaluations performed directly by birth, which
	// bypass the Evaluator interface (one genome at a time).
	birthEvals int64
}

var _ Engine = (*SteadyState)(nil)

// NewSteadyState creates a steady-state engine with a random, evaluated
// initial population. Unless cfg.ReplaceWorst is set explicitly the
// canonical replace-worst policy is used.
func NewSteadyState(cfg Config, replaceWorst bool) *SteadyState {
	cfg.ReplaceWorst = replaceWorst
	cfg = cfg.withDefaults()
	cfg.validate()
	e := &SteadyState{cfg: cfg, dir: cfg.Problem.Direction()}
	e.pop = core.NewPopulation(cfg.PopSize)
	for i := 0; i < cfg.PopSize; i++ {
		e.pop.Members = append(e.pop.Members, core.NewIndividual(cfg.Problem.NewGenome(cfg.RNG)))
	}
	cfg.Evaluator.EvaluateAll(cfg.Problem, e.pop)
	return e
}

// Name implements Engine.
func (e *SteadyState) Name() string {
	if e.cfg.ReplaceWorst {
		return "steady-state(worst)"
	}
	return "steady-state(random)"
}

// Population implements Engine.
func (e *SteadyState) Population() *core.Population { return e.pop }

// Problem implements Engine.
func (e *SteadyState) Problem() core.Problem { return e.cfg.Problem }

// Evaluations implements Engine.
func (e *SteadyState) Evaluations() int64 { return e.cfg.Evaluator.Evaluations() + e.birthEvals }

// SetPopulation replaces the engine's population — the restore half of
// checkpointing (see internal/persist). The population must match the
// configured size and be fully evaluated.
func (e *SteadyState) SetPopulation(pop *core.Population) {
	if pop.Len() != e.cfg.PopSize {
		panic("ga: SetPopulation size mismatch")
	}
	for _, ind := range pop.Members {
		if !ind.Evaluated {
			panic("ga: SetPopulation requires an evaluated population")
		}
	}
	e.pop = pop
}

// Step implements Engine: PopSize sequential births.
func (e *SteadyState) Step() {
	for b := 0; b < e.cfg.PopSize; b++ {
		e.birth()
	}
}

// birth produces and inserts one offspring.
func (e *SteadyState) birth() {
	cfg := &e.cfg
	i := cfg.Selector.Select(e.pop, e.dir, cfg.RNG)
	j := cfg.Selector.Select(e.pop, e.dir, cfg.RNG)
	var child core.Genome
	if cfg.Crossover != nil && cfg.RNG.Chance(cfg.CrossoverRate) {
		child, _ = cfg.Crossover.Cross(e.pop.Members[i].Genome, e.pop.Members[j].Genome, cfg.RNG)
	} else {
		child = e.pop.Members[i].Genome.Clone()
	}
	if cfg.Mutator != nil {
		cfg.Mutator.Mutate(child, cfg.RNG)
	}
	ind := core.NewIndividual(child)
	ind.Fitness = cfg.Problem.Evaluate(ind.Genome)
	ind.Evaluated = true
	e.birthEvals++

	var victim int
	if cfg.ReplaceWorst {
		victim = e.pop.Worst(e.dir)
	} else {
		victim = cfg.RNG.Intn(e.pop.Len())
	}
	// Never replace the incumbent best with something worse: this is the
	// standard steady-state elitism guarantee.
	best := e.pop.Best(e.dir)
	if victim == best && !e.dir.BetterOrEqual(ind.Fitness, e.pop.Members[best].Fitness) {
		return
	}
	e.pop.Replace(victim, ind)
}
