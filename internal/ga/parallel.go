package ga

import (
	"sync"

	"pga/internal/core"
	"pga/internal/rng"
)

// ParallelGenerational is the shared-memory global PGA of Bethke (1976)
// and Grefenstette's types 1–3 (survey §2): one panmictic population
// whose whole reproduction step — selection, crossover, mutation and
// evaluation — runs in parallel workers over shared memory, not just the
// fitness evaluations (contrast with the master–slave Farm, which
// parallelises evaluation only).
//
// Determinism: the generation's births are statically partitioned into
// contiguous blocks, one per worker, and each worker owns a private
// stream split from the engine seed at construction. Results are
// therefore identical regardless of goroutine scheduling or worker count
// changes between runs with the same (seed, workers) pair.
type ParallelGenerational struct {
	cfg     Config
	pop     *core.Population
	dir     core.Direction
	workers int
	streams []*rng.Source
	evals   int64
}

var _ Engine = (*ParallelGenerational)(nil)

// NewParallelGenerational creates the engine with the given worker count
// (minimum 1). cfg.Evaluator is ignored: evaluation happens inside the
// reproduction workers.
func NewParallelGenerational(cfg Config, workers int) *ParallelGenerational {
	cfg = cfg.withDefaults()
	cfg.validate()
	if workers < 1 {
		workers = 1
	}
	e := &ParallelGenerational{
		cfg:     cfg,
		dir:     cfg.Problem.Direction(),
		workers: workers,
		streams: cfg.RNG.SplitN(workers),
	}
	e.pop = core.NewPopulation(cfg.PopSize)
	for i := 0; i < cfg.PopSize; i++ {
		ind := core.NewIndividual(cfg.Problem.NewGenome(cfg.RNG))
		ind.Fitness = cfg.Problem.Evaluate(ind.Genome)
		ind.Evaluated = true
		e.evals++
		e.pop.Members = append(e.pop.Members, ind)
	}
	return e
}

// Name implements Engine.
func (e *ParallelGenerational) Name() string { return "parallel-generational" }

// Population implements Engine.
func (e *ParallelGenerational) Population() *core.Population { return e.pop }

// Problem implements Engine.
func (e *ParallelGenerational) Problem() core.Problem { return e.cfg.Problem }

// Evaluations implements Engine.
func (e *ParallelGenerational) Evaluations() int64 { return e.evals }

// Step implements Engine: one full generation produced in parallel.
// Workers read the previous population (immutable during the step) and
// write disjoint slices of the next one, so no locking is needed —
// exactly the shared-memory discipline of the early global PGAs.
func (e *ParallelGenerational) Step() {
	cfg := &e.cfg
	n := cfg.PopSize
	births := n - cfg.Elitism

	next := make([]*core.Individual, births)
	counts := make([]int64, e.workers)
	var wg sync.WaitGroup
	for w := 0; w < e.workers; w++ {
		lo := births * w / e.workers
		hi := births * (w + 1) / e.workers
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			r := e.streams[w]
			for i := lo; i < hi; i++ {
				a := cfg.Selector.Select(e.pop, e.dir, r)
				b := cfg.Selector.Select(e.pop, e.dir, r)
				var child core.Genome
				if cfg.Crossover != nil && r.Chance(cfg.CrossoverRate) {
					child, _ = cfg.Crossover.Cross(e.pop.Members[a].Genome, e.pop.Members[b].Genome, r)
				} else {
					child = e.pop.Members[a].Genome.Clone()
				}
				if cfg.Mutator != nil {
					cfg.Mutator.Mutate(child, r)
				}
				ind := core.NewIndividual(child)
				ind.Fitness = cfg.Problem.Evaluate(ind.Genome)
				ind.Evaluated = true
				next[i] = ind
				counts[w]++
			}
		}(w, lo, hi)
	}
	wg.Wait()
	for _, c := range counts {
		e.evals += c
	}

	newPop := core.NewPopulation(n)
	ranked := rankedIndices(e.pop, e.dir)
	for i := 0; i < cfg.Elitism; i++ {
		newPop.Members = append(newPop.Members, e.pop.Members[ranked[i]].Clone())
	}
	newPop.Members = append(newPop.Members, next...)
	e.pop = newPop
}
