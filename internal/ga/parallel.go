package ga

import (
	"sync"

	"pga/internal/core"
	"pga/internal/operators"
	"pga/internal/rng"
)

// ParallelGenerational is the shared-memory global PGA of Bethke (1976)
// and Grefenstette's types 1–3 (survey §2): one panmictic population
// whose whole reproduction step — selection, crossover, mutation and
// evaluation — runs in parallel workers over shared memory, not just the
// fitness evaluations (contrast with the master–slave Farm, which
// parallelises evaluation only).
//
// Determinism: the generation's births are statically partitioned into
// contiguous blocks, one per worker, and each worker owns a private
// stream split from the engine seed at construction. Results are
// therefore identical regardless of goroutine scheduling or worker count
// changes between runs with the same (seed, workers) pair.
type ParallelGenerational struct {
	cfg     Config
	pop     *core.Population
	dir     core.Direction
	workers int
	streams []*rng.Source
	evals   int64

	// Pooled per-step state: the shadow generation, one scratch and one
	// discarded-second-child buffer per worker (workers never share mutable
	// state), and the per-worker evaluation counters.
	next      *core.Population
	scratches []operators.Scratch
	discards  []*core.Individual
	counts    []int64
	ranker    bestSorter
}

var _ Engine = (*ParallelGenerational)(nil)

// NewParallelGenerational creates the engine with the given worker count
// (minimum 1). cfg.Evaluator is ignored: evaluation happens inside the
// reproduction workers.
func NewParallelGenerational(cfg Config, workers int) *ParallelGenerational {
	cfg = cfg.withDefaults()
	cfg.validate()
	if workers < 1 {
		workers = 1
	}
	e := &ParallelGenerational{
		cfg:     cfg,
		dir:     cfg.Problem.Direction(),
		workers: workers,
		streams: cfg.RNG.SplitN(workers),
	}
	e.pop = core.NewPopulation(cfg.PopSize)
	for i := 0; i < cfg.PopSize; i++ {
		ind := core.NewIndividual(cfg.Problem.NewGenome(cfg.RNG))
		ind.Fitness = cfg.Problem.Evaluate(ind.Genome)
		ind.Evaluated = true
		e.evals++
		e.pop.Members = append(e.pop.Members, ind)
	}
	return e
}

// Name implements Engine.
func (e *ParallelGenerational) Name() string { return "parallel-generational" }

// Population implements Engine.
func (e *ParallelGenerational) Population() *core.Population { return e.pop }

// Problem implements Engine.
func (e *ParallelGenerational) Problem() core.Problem { return e.cfg.Problem }

// Evaluations implements Engine.
func (e *ParallelGenerational) Evaluations() int64 { return e.evals }

// ensureBuffers builds the pooled shadow generation and per-worker scratch
// state on first use.
func (e *ParallelGenerational) ensureBuffers() {
	if e.next != nil {
		return
	}
	n := e.cfg.PopSize
	e.next = core.NewPopulation(n)
	for i := 0; i < n; i++ {
		e.next.Members = append(e.next.Members, e.pop.Members[i].Clone())
	}
	e.scratches = make([]operators.Scratch, e.workers)
	e.discards = make([]*core.Individual, e.workers)
	for w := range e.discards {
		e.discards[w] = e.pop.Members[0].Clone()
	}
	e.counts = make([]int64, e.workers)
}

// Step implements Engine: one full generation produced in parallel.
// Workers read the previous population (immutable during the step) and
// write disjoint slices of the next one, so no locking is needed —
// exactly the shared-memory discipline of the early global PGAs. Each
// worker draws from its private stream in the same order as the historical
// allocating implementation, so seeded runs are unchanged.
func (e *ParallelGenerational) Step() {
	cfg := &e.cfg
	n := cfg.PopSize
	births := n - cfg.Elitism
	e.ensureBuffers()

	// Offspring fill next.Members[Elitism : n], worker w owning the
	// contiguous block [Elitism+lo, Elitism+hi).
	var wg sync.WaitGroup
	for w := 0; w < e.workers; w++ {
		lo := births * w / e.workers
		hi := births * (w + 1) / e.workers
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			r := e.streams[w]
			scratch := &e.scratches[w]
			discard := e.discards[w]
			for i := lo; i < hi; i++ {
				a := operators.SelectWith(cfg.Selector, e.pop, e.dir, r, scratch)
				b := operators.SelectWith(cfg.Selector, e.pop, e.dir, r, scratch)
				pa, pb := e.pop.Members[a], e.pop.Members[b]
				child := e.next.Members[cfg.Elitism+i]
				if cfg.Crossover != nil && r.Chance(cfg.CrossoverRate) {
					operators.CrossInto(cfg.Crossover, pa.Genome, pb.Genome, child, discard, r, scratch)
				} else {
					child.Genome = core.CopyGenome(child.Genome, pa.Genome)
				}
				if cfg.Mutator != nil {
					cfg.Mutator.Mutate(child.Genome, r)
				}
				child.Fitness = cfg.Problem.Evaluate(child.Genome)
				child.Evaluated = true
				e.counts[w]++
			}
		}(w, lo, hi)
	}
	wg.Wait()
	for w, c := range e.counts {
		e.evals += c
		e.counts[w] = 0
	}

	ranked := rankedInto(&e.ranker, e.pop, e.dir)
	for i := 0; i < cfg.Elitism; i++ {
		e.next.Members[i].CopyFrom(e.pop.Members[ranked[i]])
	}
	// Swap buffers, keeping the *Population identity stable for callers
	// that hold Population() across steps.
	e.pop.Members, e.next.Members = e.next.Members, e.pop.Members
}
