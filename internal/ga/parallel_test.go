package ga

import (
	"testing"

	"pga/internal/core"
	"pga/internal/problems"
	"pga/internal/rng"
)

func TestParallelGenerationalSolvesOneMax(t *testing.T) {
	e := NewParallelGenerational(baseConfig(31), 4)
	res := Run(e, RunOptions{Stop: core.AnyOf{
		core.MaxGenerations(300),
		core.TargetFitness{Target: 64, Dir: core.Maximize},
	}})
	if !res.Solved {
		t.Fatalf("parallel generational failed: %v", res.BestFitness)
	}
}

func TestParallelGenerationalDeterministic(t *testing.T) {
	run := func() float64 {
		e := NewParallelGenerational(baseConfig(32), 4)
		for i := 0; i < 20; i++ {
			e.Step()
		}
		return e.Population().BestFitness(core.Maximize)
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("parallel engine not deterministic: %v vs %v", a, b)
	}
}

func TestParallelGenerationalWorkerCountChangesStream(t *testing.T) {
	// Different worker counts repartition the birth blocks and streams, so
	// results differ — but both must remain internally deterministic.
	run := func(workers int) float64 {
		e := NewParallelGenerational(baseConfig(33), workers)
		for i := 0; i < 10; i++ {
			e.Step()
		}
		return e.Population().MeanFitness()
	}
	if run(2) != run(2) || run(5) != run(5) {
		t.Fatal("per-worker-count determinism broken")
	}
}

func TestParallelGenerationalElitism(t *testing.T) {
	e := NewParallelGenerational(baseConfig(34), 3)
	prev := e.Population().BestFitness(core.Maximize)
	for i := 0; i < 30; i++ {
		e.Step()
		cur := e.Population().BestFitness(core.Maximize)
		if cur < prev {
			t.Fatalf("elitism violated: %v -> %v", prev, cur)
		}
		prev = cur
	}
}

func TestParallelGenerationalPopulationSizeStable(t *testing.T) {
	cfg := baseConfig(35)
	e := NewParallelGenerational(cfg, 7) // worker count not dividing births
	for i := 0; i < 10; i++ {
		e.Step()
		if e.Population().Len() != cfg.PopSize {
			t.Fatalf("size %d != %d", e.Population().Len(), cfg.PopSize)
		}
		for _, ind := range e.Population().Members {
			if !ind.Evaluated {
				t.Fatal("unevaluated member after parallel step")
			}
		}
	}
}

func TestParallelGenerationalEvaluationCount(t *testing.T) {
	cfg := baseConfig(36)
	e := NewParallelGenerational(cfg, 4)
	if e.Evaluations() != int64(cfg.PopSize) {
		t.Fatalf("initial evals %d", e.Evaluations())
	}
	e.Step()
	want := int64(cfg.PopSize + cfg.PopSize - 1) // elitism 1
	if e.Evaluations() != want {
		t.Fatalf("after step evals %d, want %d", e.Evaluations(), want)
	}
}

func TestParallelGenerationalSingleWorkerFloor(t *testing.T) {
	e := NewParallelGenerational(baseConfig(37), 0) // clamped to 1
	e.Step()
	if e.Population().Len() != 60 {
		t.Fatal("single-worker step broken")
	}
	if e.Name() == "" || e.Problem() == nil {
		t.Fatal("metadata missing")
	}
}

func TestParallelMatchesSequentialQuality(t *testing.T) {
	// Parallel reproduction is a different stream layout, not a different
	// algorithm: solution quality at equal budget should be comparable.
	seqBest, parBest := 0.0, 0.0
	const runs = 5
	for s := uint64(0); s < runs; s++ {
		cfg := Config{
			Problem:   problems.DeceptiveTrap{Blocks: 8, K: 4},
			PopSize:   50,
			Crossover: baseConfig(0).Crossover,
			Mutator:   baseConfig(0).Mutator,
			RNG:       rng.New(s * 13),
		}
		seq := NewGenerational(cfg)
		res := Run(seq, RunOptions{Stop: core.MaxGenerations(60)})
		seqBest += res.BestFitness

		cfg2 := cfg
		cfg2.RNG = rng.New(s * 13)
		par := NewParallelGenerational(cfg2, 4)
		res2 := Run(par, RunOptions{Stop: core.MaxGenerations(60)})
		parBest += res2.BestFitness
	}
	seqBest /= runs
	parBest /= runs
	if parBest < seqBest*0.9 {
		t.Fatalf("parallel reproduction much worse: %v vs %v", parBest, seqBest)
	}
}
