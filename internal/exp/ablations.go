package exp

import (
	"io"
	"strconv"

	"pga/internal/core"
	"pga/internal/ga"
	"pga/internal/operators"
	"pga/internal/problems"
	"pga/internal/rng"
	"pga/internal/spec"
	"pga/internal/stats"
)

// The A-series ablations probe the design choices DESIGN.md calls out:
// elitism, encoding (Gray vs plain binary), migrant integration policy
// and the async migration buffer capacity.

func init() {
	register(Experiment{
		ID:     "A01",
		Title:  "ablation: elitism on/off in the generational engine",
		Source: "design choice — steady-state elitism guarantee vs generational churn",
		Run:    runA01,
	})
	register(Experiment{
		ID:     "A02",
		Title:  "ablation: Gray-coded vs plain binary encoding of real functions",
		Source: "design choice — BinaryEncoded wrapper (classic representation debate)",
		Run:    runA02,
	})
	register(Experiment{
		ID:     "A03",
		Title:  "ablation: migrant integration policy",
		Source: "design choice — migration.Replacer variants",
		Run:    runA03,
	})
	register(Experiment{
		ID:     "A04",
		Title:  "ablation: async migration buffer capacity",
		Source: "design choice — bounded non-blocking channels drop on overflow",
		Run:    runA04,
	})
}

func runA01(w io.Writer, quick bool) {
	runs := scale(quick, 20, 4)
	bits := scale(quick, 64, 32)
	prob := problems.OneMax{N: bits}
	fprintf(w, "%-12s %-9s %-14s\n", "elitism", "hit-rate", "med-evals")
	for _, elit := range []int{-1, 1, 4} {
		var hit stats.HitRate
		for r := 0; r < runs; r++ {
			e := ga.NewGenerational(ga.Config{
				Problem: prob, PopSize: 50, Elitism: elit,
				Crossover: operators.Uniform{}, Mutator: operators.BitFlip{},
				RNG: rng.New(uint64(r)*19 + 3),
			})
			res := ga.Run(e, ga.RunOptions{Stop: core.AnyOf{
				core.MaxGenerations(scale(quick, 400, 100)),
				core.TargetFitness{Target: float64(bits), Dir: core.Maximize},
			}})
			hit.Record(res.Solved, res.SolvedAtEval)
		}
		label := "none"
		if elit > 0 {
			label = strconv.Itoa(elit)
		}
		med := 0.0
		if hit.Hits() > 0 {
			med = hit.Effort().Median
		}
		fprintf(w, "%-12s %-9s %-14.0f\n", label, rate(&hit), med)
	}
	fprintf(w, "\nshape check: no elitism loses the best individual to churn and needs more\n")
	fprintf(w, "effort; heavy elitism trades diversity for speed on this easy landscape.\n")
}

func runA02(w io.Writer, quick bool) {
	runs := scale(quick, 15, 3)
	gens := scale(quick, 200, 60)
	inner := problems.Rastrigin(6)
	fprintf(w, "%-10s %-14s  (binary-GA on %s, %d bits/var, mean best of %d runs)\n",
		"encoding", "mean-best", inner.Name(), 16, runs)
	for _, gray := range []bool{false, true} {
		enc := &problems.BinaryEncoded{Inner: inner, BitsPerVar: 16, Gray: gray}
		var finals []float64
		for r := 0; r < runs; r++ {
			e := ga.NewGenerational(ga.Config{
				Problem: enc, PopSize: 60,
				Crossover: operators.TwoPoint{}, Mutator: operators.BitFlip{},
				RNG: rng.New(uint64(r)*41 + 9),
			})
			res := ga.Run(e, ga.RunOptions{Stop: core.MaxGenerations(gens)})
			finals = append(finals, res.BestFitness)
		}
		name := "binary"
		if gray {
			name = "gray"
		}
		fprintf(w, "%-10s %-14.4f\n", name, stats.Summarize(finals).Mean)
	}
	fprintf(w, "\nshape check: Gray decoding removes Hamming cliffs, typically reaching lower\n")
	fprintf(w, "(better) values on continuous landscapes under the same bit-flip mutation.\n")
}

func runA03(w io.Writer, quick bool) {
	runs := scale(quick, 15, 3)
	maxGens := scale(quick, 200, 60)
	blocks := scale(quick, 10, 6)
	prob := spec.ProblemSpec{Name: "trap", Size: blocks * 4}
	policies := []struct {
		name string
		key  string
	}{
		{"replace-worst", "worst"},
		{"worst-if-better", "worst-if-better"},
		{"replace-random", "random"},
	}
	fprintf(w, "%-16s %-9s %-14s %-12s\n", "integration", "hit-rate", "med-evals", "mean-best")
	for _, p := range policies {
		hit, final := runIslandSetup(islandSetup{
			problem:   prob,
			engine:    demeEngineSpec(scale(quick, 20, 10)),
			demes:     8,
			migration: spec.MigrationSpec{Interval: 10, Count: 2, Replace: p.key},
			maxGens:   maxGens,
			runs:      runs,
		})
		med := 0.0
		if hit.Hits() > 0 {
			med = hit.Effort().Median
		}
		fprintf(w, "%-16s %-9s %-14.0f %-12.2f\n", p.name, rate(hit), med, final.Mean)
	}
	fprintf(w, "\nshape check: the three integration rules land close together here; replace-\n")
	fprintf(w, "random diffuses migrants more gently and keeps marginally more diversity.\n")
}

func runA04(w io.Writer, quick bool) {
	runs := scale(quick, 10, 3)
	maxGens := scale(quick, 300, 80)
	bits := scale(quick, 64, 32)
	fprintf(w, "%-8s %-9s %-14s %-12s\n", "buffer", "hit-rate", "med-evals", "migr-batches")
	for _, buf := range []int{1, 4, 16} {
		var hit stats.HitRate
		var migs []float64
		rs := spec.RunSpec{
			Model:   spec.ModelIslands,
			Problem: spec.ProblemSpec{Name: "onemax", Size: bits},
			Engine:  demeEngineSpec(scale(quick, 20, 10)),
			Islands: &spec.IslandSpec{
				Demes:     8,
				Mode:      "parallel",
				Migration: spec.MigrationSpec{Interval: 5, Count: 2, Async: true, Buffer: buf},
			},
			Budget: spec.BudgetSpec{Generations: maxGens},
		}
		for r := 0; r < runs; r++ {
			rs.Seed = uint64(r)*83 + 29
			rep := mustBuild(rs).Run(spec.RunOpts{})
			hit.Record(rep.Solved, rep.SolvedAtEval)
			migs = append(migs, float64(rep.Migrations))
		}
		med := 0.0
		if hit.Hits() > 0 {
			med = hit.Effort().Median
		}
		fprintf(w, "%-8d %-9s %-14.0f %-12.1f\n", buf, rate(&hit), med, stats.Summarize(migs).Mean)
	}
	fprintf(w, "\nshape check: tiny buffers drop some batches under scheduling skew but efficacy\n")
	fprintf(w, "is stable — bounded-staleness migration degrades gracefully.\n")
}
