package exp

import (
	"fmt"
	"io"

	"pga/internal/operators"
	"pga/internal/stats"
)

// A08 — Alba & Troya (2002) compared the selection pressure of evolution
// schemes; the underlying instrument is the panmictic takeover-time
// analysis of Goldberg & Deb. The reproduction measures takeover times
// and growth curves for the library's selectors, ordering them by
// intensity — the knob every experiment above turns implicitly.
func init() {
	register(Experiment{
		ID:     "A08",
		Title:  "ablation: selection intensity of panmictic selectors (takeover time)",
		Source: "Goldberg & Deb takeover analysis; Alba & Troya 2002 selection-pressure comparison",
		Run:    runA08,
	})
}

func runA08(w io.Writer, quick bool) {
	popSize := scale(quick, 128, 48)
	runs := scale(quick, 20, 5)
	maxGens := scale(quick, 2000, 400)

	selectors := []operators.Selector{
		operators.Random{},
		operators.Roulette{},
		operators.LinearRank{SP: 1.5},
		operators.LinearRank{SP: 2},
		operators.Tournament{K: 2},
		operators.Tournament{K: 5},
		operators.Truncation{Frac: 0.5},
		operators.Truncation{Frac: 0.2},
	}

	fprintf(w, "population %d, one initial best copy, selection only, %d runs/selector\n\n", popSize, runs)
	fprintf(w, "%-18s %-16s %s\n", "selector", "takeover-gens", "growth curve")
	for _, sel := range selectors {
		tt := TakeoverLabel(sel, popSize, runs, maxGens)
		curve := operators.TakeoverCurve(sel, popSize, maxGens, 99)
		fprintf(w, "%-18s %-16s %s\n", sel.Name(), tt, stats.Sparkline(stats.Downsample(curve, 40)))
	}
	fprintf(w, "\nshape check: drift-only random selection is an order of magnitude slower than\n")
	fprintf(w, "any pressured selector; tournament(2) ≈ rank(SP=2) (their classic equivalence);\n")
	fprintf(w, "pressure grows with tournament size and with shrinking truncation fraction.\n")
	fprintf(w, "This library's roulette is fitness-windowed, which normalises away the raw\n")
	fprintf(w, "scale and makes its pressure high — the scaling sensitivity that historically\n")
	fprintf(w, "motivated rank and tournament selection.\n")
}

// TakeoverLabel renders a takeover time, marking runs that hit the cap.
func TakeoverLabel(sel operators.Selector, popSize, runs, maxGens int) string {
	tt := operators.TakeoverTime(sel, popSize, runs, maxGens, 7)
	if tt >= float64(maxGens) {
		return "no takeover"
	}
	return fmt.Sprintf("%.1f", tt)
}
