package exp

import (
	"io"

	"pga/internal/cluster"
	"pga/internal/core"
	"pga/internal/ga"
	"pga/internal/masterslave"
	"pga/internal/operators"
	"pga/internal/problems"
	"pga/internal/rng"
	"pga/internal/stats"
)

// E7 — Gagné, Parizeau & Dubreuil (2003) argued the master–slave model
// beats islands on heterogeneous Beowulfs/workstation networks when hard
// failures occur, because a transparent, robust, adaptive master
// re-dispatches lost work while a dead island simply takes its
// subpopulation with it. The reproduction runs the real fault-injecting
// farm (worker deaths mid-run) and reports completion, redispatch
// overhead and solution quality, plus the modelled completion times of
// master–slave vs islands on the same crashing virtual cluster.
func init() {
	register(Experiment{
		ID:     "E07",
		Title:  "master–slave vs islands under heterogeneity and hard failures",
		Source: "Gagné et al. 2003 (survey §2): the master–slave architecture revisited",
		Run:    runE07,
	})
}

func runE07(w io.Writer, quick bool) {
	runs := scale(quick, 10, 3)
	maxGens := scale(quick, 200, 60)
	bits := scale(quick, 64, 32)
	prob := problems.OneMax{N: bits}
	popSize := scale(quick, 60, 30)
	workers := 8

	scenarios := []struct {
		name  string
		specs func() []masterslave.WorkerSpec
	}{
		{"healthy homogeneous", func() []masterslave.WorkerSpec {
			return masterslave.Uniform(workers)
		}},
		{"heterogeneous (speeds 0.25–2)", func() []masterslave.WorkerSpec {
			s := masterslave.Uniform(workers)
			for i := range s {
				s[i].Speed = 0.25 + 1.75*float64(i)/float64(workers-1)
			}
			return s
		}},
		{"2/8 workers die", func() []masterslave.WorkerSpec {
			s := masterslave.Uniform(workers)
			s[0] = masterslave.WorkerSpec{Speed: 1, FailProb: 0.2, MaxFailures: 3}
			s[1] = masterslave.WorkerSpec{Speed: 1, FailProb: 0.2, MaxFailures: 3}
			return s
		}},
		{"6/8 workers die", func() []masterslave.WorkerSpec {
			s := masterslave.Uniform(workers)
			for i := 0; i < 6; i++ {
				s[i] = masterslave.WorkerSpec{Speed: 1, FailProb: 0.5, MaxFailures: 2}
			}
			return s
		}},
	}

	fprintf(w, "master–slave farm, %d workers, onemax(%d), pop %d, %d runs/scenario\n\n", workers, bits, popSize, runs)
	fprintf(w, "%-32s %-9s %-12s %-12s %-10s %-12s\n",
		"scenario", "hit-rate", "med-evals", "redispatch", "dead", "makespan(s)")

	for _, sc := range scenarios {
		var hit stats.HitRate
		var redisp, dead, makespan []float64
		for r := 0; r < runs; r++ {
			farm := masterslave.NewFarm(uint64(r)*53+1, sc.specs())
			e := ga.NewGenerational(ga.Config{
				Problem:   prob,
				PopSize:   popSize,
				Crossover: operators.Uniform{},
				Mutator:   operators.BitFlip{},
				Evaluator: farm,
				RNG:       rng.New(uint64(r) * 71),
			})
			res := ga.Run(e, ga.RunOptions{Stop: core.AnyOf{
				core.MaxGenerations(maxGens),
				core.TargetFitness{Target: float64(bits), Dir: core.Maximize},
			}})
			hit.Record(res.Solved, res.SolvedAtEval)
			st := farm.Stats()
			redisp = append(redisp, float64(st.Redispatched))
			dead = append(dead, float64(st.DeadWorkers))
			makespan = append(makespan, farm.Makespan(1e-4))
		}
		med := 0.0
		if hit.Hits() > 0 {
			med = hit.Effort().Median
		}
		fprintf(w, "%-32s %-9s %-12.0f %-12.1f %-10.1f %-12.4f\n",
			sc.name, rate(&hit), med, stats.Summarize(redisp).Mean,
			stats.Summarize(dead).Mean, stats.Summarize(makespan).Mean)
	}

	// Modelled comparison on a crashing virtual cluster: master–slave
	// redistributes, islands lose the dead demes' work.
	fprintf(w, "\nmodelled completion on a virtual cluster where 2/8 nodes crash mid-run (GigE):\n")
	gens := 100
	nodes := cluster.UniformNodes(8)
	nodes[0].CrashAt = 0.05
	nodes[1].CrashAt = 0.05
	ms := cluster.MasterSlaveMakespan(nodes, cluster.GigabitEthernet, cluster.MasterSlaveProfile{
		Generations: gens, TasksPerGen: popSize, EvalCost: 1e-4, TaskBytes: 256,
	})
	isl := cluster.IslandMakespan(nodes, cluster.GigabitEthernet, cluster.IslandProfile{
		Generations: gens, EvalsPerGen: float64(popSize) / 8, EvalCost: 1e-4,
		MigrationInterval: 10, MessageBytes: 1024, Sync: true,
	})
	fprintf(w, "  master-slave: %.4fs — all %d×%d evaluations completed (work redistributed)\n", ms, gens, popSize)
	fprintf(w, "  islands:      %.4fs — finishes sooner but the 2 dead demes' subpopulations are lost\n", isl)
	fprintf(w, "\nshape check: the farm always completes (hit-rate unchanged by failures), paying\n")
	fprintf(w, "only redispatch overhead — Gagné's robustness argument for the master–slave model.\n")
}
