// Package exp implements the experiment harness: one runner per
// experiment in DESIGN.md's index (E1–E14 plus the A-series ablations),
// each regenerating the table/curve shape of a claim reviewed by the
// survey. cmd/pgabench drives the whole suite; bench_test.go exposes one
// testing.B benchmark per experiment.
package exp

import (
	"fmt"
	"io"
	"sort"

	"pga/internal/core"
	"pga/internal/ga"
	"pga/internal/operators"
	"pga/internal/rng"
	"pga/internal/spec"
	"pga/internal/stats"
)

// Experiment is one reproducible experiment.
type Experiment struct {
	// ID is the DESIGN.md identifier, e.g. "E2".
	ID string
	// Title is a one-line description.
	Title string
	// Source cites the surveyed claim being reproduced.
	Source string
	// Run executes the experiment and writes its table to w. quick
	// selects reduced sizes (for benchmarks and smoke tests).
	Run func(w io.Writer, quick bool)
}

// registry holds all experiments in presentation order.
var registry []Experiment

func register(e Experiment) { registry = append(registry, e) }

// All returns the experiments in order.
func All() []Experiment {
	out := append([]Experiment(nil), registry...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Lookup returns the experiment with the given ID.
func Lookup(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// ---- shared run helpers ----

// demeEngine returns an engine factory for an already-materialised
// problem instance — the same canonical deme engine as demeEngineSpec,
// for experiments whose problem is not in the registry vocabulary (or
// that wire island/p2p configs by hand for other reasons).
func demeEngine(p core.Problem, popSize int) func(int, *rng.Source) ga.Engine {
	return func(deme int, r *rng.Source) ga.Engine {
		return ga.NewGenerational(ga.Config{
			Problem:   p,
			PopSize:   popSize,
			Selector:  operators.Tournament{K: 2},
			Crossover: operators.TwoPoint{},
			Mutator:   operators.BitFlip{},
			RNG:       r,
		})
	}
}

// demeEngineSpec is the canonical deme engine of the island experiments
// (generational, tournament-2, two-point crossover, bit-flip mutation)
// in spec vocabulary.
func demeEngineSpec(popSize int) spec.EngineSpec {
	return spec.EngineSpec{
		Pop:       popSize,
		Selector:  &spec.OperatorSpec{Name: "tournament", Params: map[string]float64{"k": 2}},
		Crossover: &spec.OperatorSpec{Name: "twopoint"},
		Mutator:   &spec.OperatorSpec{Name: "bitflip"},
	}
}

// islandSetup bundles the knobs the island experiments sweep, expressed
// in the run-spec vocabulary; runIslandSetup expands it into one RunSpec
// per run.
type islandSetup struct {
	problem   spec.ProblemSpec
	engine    spec.EngineSpec
	demes     int
	topology  spec.TopologySpec
	migration spec.MigrationSpec
	maxGens   int
	runs      int
	baseSeed  uint64
}

// runIslandSetup executes the setup runs times (sequential deterministic
// mode) and accumulates efficacy/effort plus the mean final best fitness.
// Each run is one spec.Build — the experiments construct their runtimes
// through the same path as a pgarun config file.
func runIslandSetup(s islandSetup) (*stats.HitRate, stats.Summary) {
	rs := spec.RunSpec{
		Model:   spec.ModelIslands,
		Problem: s.problem,
		Engine:  s.engine,
		Islands: &spec.IslandSpec{Demes: s.demes, Topology: s.topology, Migration: s.migration},
		Budget:  spec.BudgetSpec{Generations: s.maxGens},
	}
	if prob, perr := s.problem.Instance(0); perr == nil {
		if _, ok := prob.(core.TargetAware); ok {
			rs.Budget.TargetOptimum = true
		}
	}
	var hit stats.HitRate
	var finals []float64
	for r := 0; r < s.runs; r++ {
		rs.Seed = s.baseSeed + uint64(r)*7919
		rep := mustBuild(rs).Run(spec.RunOpts{})
		hit.Record(rep.Solved, rep.SolvedAtEval)
		finals = append(finals, rep.Best)
	}
	return &hit, stats.Summarize(finals)
}

// mustBuild materialises a spec assembled by experiment code; the
// setups are static tables, so a validation failure is a programming
// error, not an input error.
func mustBuild(rs spec.RunSpec) *spec.Built {
	b, err := spec.Build(rs)
	if err != nil {
		panic(err)
	}
	return b
}

// fprintf is fmt.Fprintf with the error discarded (experiment output is
// best-effort console text).
func fprintf(w io.Writer, format string, args ...interface{}) {
	fmt.Fprintf(w, format, args...)
}

// header prints the experiment banner.
func header(w io.Writer, e Experiment) {
	fprintf(w, "\n=== %s: %s ===\n", e.ID, e.Title)
	fprintf(w, "    reproduces: %s\n\n", e.Source)
}

// scale returns full unless quick, then reduced.
func scale(quick bool, full, reduced int) int {
	if quick {
		return reduced
	}
	return full
}

// migrationEvery returns the canonical best→worst policy with the given
// interval and migrant count.
func migrationEvery(interval, count int) spec.MigrationSpec {
	return spec.MigrationSpec{Interval: interval, Count: count}
}

// rate formats a hit-rate as "17/20".
func rate(h *stats.HitRate) string {
	return fmt.Sprintf("%d/%d", h.Hits(), h.Runs())
}

// fixedSeed pins a problem-instance seed independent of the run seed.
func fixedSeed(v uint64) *uint64 { return &v }

// problemSpectrum returns the Alba & Troya problem classes at a size
// suited to island experiments, as registry specs. The seeded instances
// pin their seed so every run searches the same landscape.
func problemSpectrum(quick bool) []spec.ProblemSpec {
	bits := scale(quick, 48, 24)
	return []spec.ProblemSpec{
		{Name: "onemax", Size: bits},                            // easy
		{Name: "trap", Size: bits},                              // deceptive (bits/4 blocks of k=4)
		{Name: "ppeaks", Size: bits, Seed: fixedSeed(12345)},    // multimodal
		{Name: "subsetsum", Size: bits, Seed: fixedSeed(12345)}, // NP-complete
		{Name: "nk", Size: bits, Seed: fixedSeed(12345)},        // epistatic
	}
}
