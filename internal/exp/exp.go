// Package exp implements the experiment harness: one runner per
// experiment in DESIGN.md's index (E1–E14 plus the A-series ablations),
// each regenerating the table/curve shape of a claim reviewed by the
// survey. cmd/pgabench drives the whole suite; bench_test.go exposes one
// testing.B benchmark per experiment.
package exp

import (
	"fmt"
	"io"
	"sort"

	"pga/internal/core"
	"pga/internal/ga"
	"pga/internal/island"
	"pga/internal/migration"
	"pga/internal/operators"
	"pga/internal/problems"
	"pga/internal/rng"
	"pga/internal/stats"
	"pga/internal/topology"
)

// Experiment is one reproducible experiment.
type Experiment struct {
	// ID is the DESIGN.md identifier, e.g. "E2".
	ID string
	// Title is a one-line description.
	Title string
	// Source cites the surveyed claim being reproduced.
	Source string
	// Run executes the experiment and writes its table to w. quick
	// selects reduced sizes (for benchmarks and smoke tests).
	Run func(w io.Writer, quick bool)
}

// registry holds all experiments in presentation order.
var registry []Experiment

func register(e Experiment) { registry = append(registry, e) }

// All returns the experiments in order.
func All() []Experiment {
	out := append([]Experiment(nil), registry...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Lookup returns the experiment with the given ID.
func Lookup(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// ---- shared run helpers ----

// demeEngine returns an engine factory for a binary problem with the
// given per-deme population size.
func demeEngine(p core.Problem, popSize int) func(int, *rng.Source) ga.Engine {
	return func(deme int, r *rng.Source) ga.Engine {
		return ga.NewGenerational(ga.Config{
			Problem:   p,
			PopSize:   popSize,
			Selector:  operators.Tournament{K: 2},
			Crossover: operators.TwoPoint{},
			Mutator:   operators.BitFlip{},
			RNG:       r,
		})
	}
}

// islandSetup bundles the knobs the island experiments sweep.
type islandSetup struct {
	problem  core.Problem
	topo     func(n int) topology.Topology
	demes    int
	popSize  int // per deme
	policy   migration.Policy
	maxGens  int
	runs     int
	baseSeed uint64
}

// runIslandSetup executes the setup runs times (sequential deterministic
// mode) and accumulates efficacy/effort plus the mean final best fitness.
func runIslandSetup(s islandSetup) (*stats.HitRate, stats.Summary) {
	var hit stats.HitRate
	var finals []float64
	for r := 0; r < s.runs; r++ {
		m := island.New(island.Config{
			Topology:  s.topo(s.demes),
			Policy:    s.policy,
			NewEngine: demeEngine(s.problem, s.popSize),
			Seed:      s.baseSeed + uint64(r)*7919,
		})
		stop := core.StopCondition(core.MaxGenerations(s.maxGens))
		if ta, ok := s.problem.(core.TargetAware); ok {
			stop = core.AnyOf{
				core.MaxGenerations(s.maxGens),
				core.TargetFitness{Target: ta.Optimum(), Dir: s.problem.Direction()},
			}
		}
		res := m.RunSequential(stop, false)
		hit.Record(res.Solved, res.SolvedAtEval)
		finals = append(finals, res.BestFitness)
	}
	return &hit, stats.Summarize(finals)
}

// fprintf is fmt.Fprintf with the error discarded (experiment output is
// best-effort console text).
func fprintf(w io.Writer, format string, args ...interface{}) {
	fmt.Fprintf(w, format, args...)
}

// header prints the experiment banner.
func header(w io.Writer, e Experiment) {
	fprintf(w, "\n=== %s: %s ===\n", e.ID, e.Title)
	fprintf(w, "    reproduces: %s\n\n", e.Source)
}

// scale returns full unless quick, then reduced.
func scale(quick bool, full, reduced int) int {
	if quick {
		return reduced
	}
	return full
}

// migrationEvery returns the canonical best→worst policy with the given
// interval and migrant count.
func migrationEvery(interval, count int) migration.Policy {
	return migration.Policy{Interval: interval, Count: count}
}

// rate formats a hit-rate as "17/20".
func rate(h *stats.HitRate) string {
	return fmt.Sprintf("%d/%d", h.Hits(), h.Runs())
}

// problemSpectrum returns the Alba & Troya problem classes at a size
// suited to island experiments.
func problemSpectrum(quick bool) []core.Problem {
	bits := scale(quick, 48, 24)
	return []core.Problem{
		problems.OneMax{N: bits},                       // easy
		problems.DeceptiveTrap{Blocks: bits / 4, K: 4}, // deceptive
		problems.NewPPeaks(20, bits, 12345),            // multimodal
		problems.NewSubsetSum(bits, 12345),             // NP-complete
		problems.NewNKLandscape(bits, 4, 12345),        // epistatic
	}
}
