package exp

import (
	"io"

	"pga/internal/spec"
)

// E10 — Cantú-Paz (2000), the survey's central theory reference: isolated
// demes are impractical, migration improves quality and efficiency, fully
// connected topologies converge fastest, and accurate deme sizing matters
// (an intermediate deme count beats both one big panmictic population and
// many tiny demes at fixed total population). The reproduction sweeps
// connectivity and the deme-count/deme-size tradeoff on a deceptive
// landscape.
func init() {
	register(Experiment{
		ID:     "E10",
		Title:  "Cantú-Paz design rules: connectivity and deme sizing at fixed total population",
		Source: "Cantú-Paz 2000 (survey §2): rational design of fast and accurate PGAs",
		Run:    runE10,
	})
}

func runE10(w io.Writer, quick bool) {
	runs := scale(quick, 20, 4)
	maxGens := scale(quick, 500, 60)
	blocks := scale(quick, 10, 8)
	prob := spec.ProblemSpec{Name: "trap", Size: blocks * 4}
	inst, _ := prob.Instance(0)
	totalPop := scale(quick, 160, 64)

	fprintf(w, "part A — connectivity at 8 demes × %d (%s, %d runs/row)\n\n", totalPop/8, inst.Name(), runs)
	fprintf(w, "%-12s %-9s %-14s %-12s\n", "topology", "hit-rate", "med-evals", "mean-best")
	tops := []struct {
		name string
		kind string
		pol  int
	}{
		{"isolated", "isolated", 0},
		{"ring", "ring", 10},
		{"bi-ring", "biring", 10},
		{"complete", "complete", 10},
	}
	for _, tp := range tops {
		hit, final := runIslandSetup(islandSetup{
			problem:   prob,
			engine:    demeEngineSpec(totalPop / 8),
			demes:     8,
			topology:  spec.TopologySpec{Kind: tp.kind},
			migration: migrationEvery(tp.pol, 2),
			maxGens:   maxGens,
			runs:      runs,
		})
		med := 0.0
		if hit.Hits() > 0 {
			med = hit.Effort().Median
		}
		fprintf(w, "%-12s %-9s %-14.0f %-12.2f\n", tp.name, rate(hit), med, final.Mean)
	}

	fprintf(w, "\npart B — deme-count/deme-size tradeoff at total population %d (bi-ring, interval 10)\n\n", totalPop)
	fprintf(w, "%-14s %-9s %-14s %-12s\n", "demes×size", "hit-rate", "med-evals", "mean-best")
	for _, k := range []int{1, 2, 4, 8, 16} {
		if totalPop/k < 4 {
			continue
		}
		hit, final := runIslandSetup(islandSetup{
			problem:   prob,
			engine:    demeEngineSpec(totalPop / k),
			demes:     k,
			topology:  spec.TopologySpec{Kind: "biring"},
			migration: migrationEvery(10, 2),
			maxGens:   maxGens,
			runs:      runs,
		})
		med := 0.0
		if hit.Hits() > 0 {
			med = hit.Effort().Median
		}
		fprintf(w, "%2d × %-9d %-9s %-14.0f %-12.2f\n", k, totalPop/k, rate(hit), med, final.Mean)
	}
	fprintf(w, "\nshape check: isolated demes lose to any connected topology (impracticability of\n")
	fprintf(w, "isolation), and denser connectivity cuts the evaluations successful runs need.\n")
	fprintf(w, "In part B, splitting the fixed total population makes successful runs cheaper\n")
	fprintf(w, "while the hit rate degrades once demes shrink below the building-block supply\n")
	fprintf(w, "threshold — the quality/efficiency sizing tension Cantú-Paz formalised.\n")
}
