package exp

import (
	"io"

	"pga/internal/hga"
	"pga/internal/operators"
	"pga/internal/problems"
	"pga/internal/stats"
)

// E8 — Sefrioui & Périaux (2000): a hierarchical GA mixing cheap and
// precise fitness models reached the same nozzle-reconstruction quality
// as precise-only runs roughly three times faster. The reproduction runs
// the mixed 3-layer hierarchy and the precise-only control at a range of
// cost budgets and reports the quality reached per budget, plus the cost
// each needs to reach a common quality threshold.
func init() {
	register(Experiment{
		ID:     "E08",
		Title:  "hierarchical multi-fidelity GA vs precise-only at equal cost",
		Source: "Sefrioui & Périaux 2000 (survey §2): HGA three times faster at equal quality",
		Run:    runE08,
	})
}

func runE08(w io.Writer, quick bool) {
	runs := scale(quick, 10, 3)
	budgets := []float64{1000, 2000, 4000, 8000}
	if quick {
		budgets = []float64{800, 1600}
	}
	mf := hga.NewQuantized(problems.Rastrigin(8))

	build := func(seed uint64, preciseOnly bool) *hga.Model {
		cfg := hga.Config{
			Problem:   mf,
			DemeSize:  scale(quick, 30, 16),
			Crossover: operators.SBX{},
			Mutator:   operators.Polynomial{},
			Seed:      seed,
		}
		if preciseOnly {
			cfg.LevelOf = []int{0, 0, 0}
		}
		return hga.New(cfg)
	}

	fprintf(w, "3-layer hierarchy (1+2+4 demes) on %s, %d runs/cell; cells: mean best (precise model)\n\n", mf.Name(), runs)
	fprintf(w, "%-12s %-16s %-16s\n", "cost budget", "mixed levels", "precise-only")

	var mixedAt, preciseAt []float64 // quality at the largest budget
	for _, budget := range budgets {
		var mixed, precise []float64
		for r := 0; r < runs; r++ {
			mixed = append(mixed, build(uint64(r)*13+1, false).Run(budget).BestFitness)
			precise = append(precise, build(uint64(r)*13+1, true).Run(budget).BestFitness)
		}
		fprintf(w, "%-12.0f %-16.4f %-16.4f\n", budget,
			stats.Summarize(mixed).Mean, stats.Summarize(precise).Mean)
		mixedAt, preciseAt = mixed, precise
	}

	// Cost-to-common-quality: find the budget at which each variant first
	// reaches the precise-only large-budget quality.
	target := stats.Summarize(preciseAt).Mean
	_ = mixedAt
	costTo := func(preciseOnly bool) float64 {
		for _, budget := range []float64{250, 500, 1000, 2000, 4000, 8000, 16000} {
			var q []float64
			for r := 0; r < runs; r++ {
				q = append(q, build(uint64(r)*13+1, preciseOnly).Run(budget).BestFitness)
			}
			if stats.Summarize(q).Mean <= target {
				return budget
			}
		}
		return -1
	}
	cm := costTo(false)
	cp := costTo(true)
	fprintf(w, "\ncost to reach quality %.4f:  mixed=%.0f  precise-only=%.0f", target, cm, cp)
	if cm > 0 && cp > 0 {
		fprintf(w, "  (ratio %.1f×)", cp/cm)
	}
	fprintf(w, "\n\nshape check: the mixed hierarchy reaches the precise-only quality at a fraction\n")
	fprintf(w, "of the cost (Sefrioui & Périaux reported ≈3×; the exact factor depends on the\n")
	fprintf(w, "relative model costs, here 1 : 0.25 : 0.0625).\n")
}
