package exp

import (
	"io"

	"pga/internal/core"
	"pga/internal/spec"
	"pga/internal/stats"
)

// E11 — Cohoon et al. (1987) showed that punctuated equilibria transfers
// to parallel EAs: long stasis periods inside demes interrupted by bursts
// of evolutionary progress right after migration events. The reproduction
// traces the global best of an island run with a long migration interval
// and compares the improvement frequency in the generations just after a
// migration against the background rate.
func init() {
	register(Experiment{
		ID:     "E11",
		Title:  "punctuated equilibria: improvement bursts after migration",
		Source: "Cohoon et al. 1987 (survey §2): punctuated equilibria in parallel EAs",
		Run:    runE11,
	})
}

func runE11(w io.Writer, quick bool) {
	runs := scale(quick, 20, 5)
	interval := 25
	maxGens := scale(quick, 200, 100)
	blocks := scale(quick, 16, 8)
	prob := spec.ProblemSpec{Name: "trap", Size: blocks * 4}
	inst, _ := prob.Instance(0)

	// windowGens counts the generations considered "post-migration".
	const window = 3

	var postRate, baseRate float64
	var curves [][]float64
	rs := spec.RunSpec{
		Model:   spec.ModelIslands,
		Problem: prob,
		Engine:  demeEngineSpec(20),
		Islands: &spec.IslandSpec{Demes: 4, Migration: migrationEvery(interval, 2)},
		Budget:  spec.BudgetSpec{Generations: maxGens},
	}
	for r := 0; r < runs; r++ {
		rs.Seed = uint64(r)*61 + 7
		// Drive the island handle directly: the experiment needs the full
		// per-generation trace with generation numbers, a pure cap stop.
		res := mustBuild(rs).Islands.RunSequential(core.MaxGenerations(maxGens), true)
		var post, postImp, base, baseImp int
		bests := make([]float64, 0, len(res.Trace))
		for i := 1; i < len(res.Trace); i++ {
			improved := res.Trace[i].Best > res.Trace[i-1].Best
			g := res.Trace[i].Generation
			sinceMig := g % interval
			if g > interval && sinceMig >= 1 && sinceMig <= window {
				post++
				if improved {
					postImp++
				}
			} else if g > interval {
				base++
				if improved {
					baseImp++
				}
			}
			bests = append(bests, res.Trace[i].Best)
		}
		if post > 0 {
			postRate += float64(postImp) / float64(post)
		}
		if base > 0 {
			baseRate += float64(baseImp) / float64(base)
		}
		if r < 3 {
			curves = append(curves, bests)
		}
	}
	postRate /= float64(runs)
	baseRate /= float64(runs)

	fprintf(w, "ring of 4 islands, migration every %d generations, %s, %d runs\n\n", interval, inst.Name(), runs)
	for i, c := range curves {
		fprintf(w, "run %d best-fitness trace: %s\n", i+1, stats.Sparkline(stats.Downsample(c, 60)))
	}
	fprintf(w, "\nP(improvement | ≤%d gens after migration) = %.3f\n", window, postRate)
	fprintf(w, "P(improvement | otherwise)               = %.3f\n", baseRate)
	if baseRate > 0 {
		fprintf(w, "burst factor = %.2f×\n", postRate/baseRate)
	}
	fprintf(w, "\nshape check: improvements cluster right after migration events (burst factor\n")
	fprintf(w, "well above 1) — stasis punctuated by migration, Cohoon's transfer of the\n")
	fprintf(w, "punctuated-equilibria theory to parallel EAs.\n")
}
