package exp

import (
	"io"

	"pga/internal/core"
	"pga/internal/spec"
	"pga/internal/stats"
)

func init() {
	register(Experiment{
		ID:     "A05",
		Title:  "ablation: the population sizing problem (total size at fixed structure)",
		Source: "Konfršt & Lažanský 2002 [35] (survey refs): population sizing in (P)GAs; Cantú-Paz sizing theory",
		Run:    runA05,
	})
	register(Experiment{
		ID:     "A06",
		Title:  "ablation: diversity preservation — panmictic vs islands vs cellular",
		Source: "survey §1.2: 'following various diversified search paths' as a PGA gain",
		Run:    runA06,
	})
}

// runA05 sweeps the total population size of an 8-island ring on a
// deceptive problem: undersized populations can't supply the building
// blocks (low hit rate), oversized ones waste evaluations — the sizing
// problem the survey's author studied in [35, 36].
func runA05(w io.Writer, quick bool) {
	runs := scale(quick, 20, 4)
	maxGens := scale(quick, 500, 80)
	blocks := scale(quick, 10, 6)
	prob := spec.ProblemSpec{Name: "trap", Size: blocks * 4}
	inst, _ := prob.Instance(0)

	fprintf(w, "8-island ring on %s, %d runs/row; per-deme size sweep\n\n", inst.Name(), runs)
	fprintf(w, "%-12s %-9s %-14s %-14s\n", "total pop", "hit-rate", "med-evals", "mean-best")
	for _, perDeme := range []int{4, 8, 16, 32, 64} {
		hit, final := runIslandSetup(islandSetup{
			problem:   prob,
			engine:    demeEngineSpec(perDeme),
			demes:     8,
			migration: migrationEvery(10, 1),
			maxGens:   maxGens,
			runs:      runs,
		})
		med := 0.0
		if hit.Hits() > 0 {
			med = hit.Effort().Median
		}
		fprintf(w, "8 × %-8d %-9s %-14.0f %-14.2f\n", perDeme, rate(hit), med, final.Mean)
	}
	fprintf(w, "\nshape check: hit rate rises steeply with population size until the demes can\n")
	fprintf(w, "hold the building blocks, then flattens while effort keeps growing — the\n")
	fprintf(w, "accurate-sizing sweet spot of Cantú-Paz's theory and Konfršt's experiments.\n")
}

// runA06 traces population diversity over generations for a panmictic GA,
// an island model and a cellular GA of equal total size on the same
// problem.
func runA06(w io.Writer, quick bool) {
	gens := scale(quick, 80, 30)
	bits := scale(quick, 64, 32)
	prob := spec.ProblemSpec{Name: "trap", Size: bits}
	inst, _ := prob.Instance(0)
	seed := uint64(9)
	uniform := func() *spec.OperatorSpec { return &spec.OperatorSpec{Name: "uniform"} }
	bitflip := func() *spec.OperatorSpec { return &spec.OperatorSpec{Name: "bitflip"} }

	type tracer struct {
		name   string
		sample func() []float64 // diversity per generation
	}

	panmictic := func() []float64 {
		e := mustBuild(spec.RunSpec{
			Model:   spec.ModelGenerational,
			Problem: prob,
			Engine:  spec.EngineSpec{Pop: 64, Crossover: uniform(), Mutator: bitflip()},
			Seed:    seed,
		}).Engine
		var ds []float64
		for g := 0; g < gens; g++ {
			ds = append(ds, stats.Diversity(e.Population()))
			e.Step()
		}
		return ds
	}
	islands := func() []float64 {
		m := mustBuild(spec.RunSpec{
			Model:   spec.ModelIslands,
			Problem: prob,
			Engine:  demeEngineSpec(16),
			Islands: &spec.IslandSpec{Demes: 4, Migration: migrationEvery(10, 1)},
			Seed:    seed,
		}).Islands
		var ds []float64
		// Advance one generation per RunSequential call so diversity can be
		// sampled between generations (each call runs exactly one step).
		for g := 0; g < gens; g++ {
			all := core.NewPopulation(64)
			for _, e := range m.Engines() {
				all.Members = append(all.Members, e.Population().Members...)
			}
			ds = append(ds, stats.Diversity(all))
			m.RunSequential(core.MaxGenerations(1), false)
		}
		return ds
	}
	cell := func() []float64 {
		e := mustBuild(spec.RunSpec{
			Model:   spec.ModelCellular,
			Problem: prob,
			Engine:  spec.EngineSpec{Grid: &spec.GridSpec{Rows: 8, Cols: 8}, Crossover: uniform(), Mutator: bitflip()},
			Seed:    seed,
		}).Engine
		var ds []float64
		for g := 0; g < gens; g++ {
			ds = append(ds, stats.Diversity(e.Population()))
			e.Step()
		}
		return ds
	}

	fprintf(w, "population diversity over %d generations, 64 individuals total, %s\n\n", gens, inst.Name())
	halfLife := func(ds []float64) int {
		for g, d := range ds {
			if d < ds[0]/2 {
				return g
			}
		}
		return len(ds)
	}
	for _, tr := range []tracer{
		{"panmictic 1×64", panmictic},
		{"islands 4×16", islands},
		{"cellular 8×8", cell},
	} {
		ds := tr.sample()
		fprintf(w, "%-16s start=%.3f end=%.3f half-life=%-4d %s\n",
			tr.name, ds[0], ds[len(ds)-1], halfLife(ds), stats.Sparkline(stats.Downsample(ds, 50)))
	}
	fprintf(w, "\nshape check: the panmictic population decays fastest and ends with the least\n")
	fprintf(w, "diversity; the islands' separated gene pools and the cellular grid's local\n")
	fprintf(w, "mating both finish well above it — the 'diversified search paths' gain of §1.2.\n")
}
