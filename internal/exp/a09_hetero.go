package exp

import (
	"fmt"
	"io"

	"pga/internal/cluster"
)

// A09 — Alba, Nebro & Troya (2002, JPDC), reviewed in §4: a distributed
// PGA running simultaneously on heterogeneous machines and networks; the
// analysis shows how heterogeneity penalises synchronous islands (every
// barrier waits for the slowest machine) while asynchronous islands keep
// fast nodes productive. The reproduction models the same run profile on
// virtual clusters of increasing heterogeneity and reports the sync/async
// makespan gap on LAN- and WAN-class links.
func init() {
	register(Experiment{
		ID:     "A09",
		Title:  "heterogeneous clusters: the synchronous barrier tax (modelled)",
		Source: "Alba, Nebro & Troya 2002 (survey §4): heterogeneous computing and PGAs",
		Run:    runA09,
	})
}

func runA09(w io.Writer, quick bool) {
	profile := cluster.IslandProfile{
		Generations:       scale(quick, 200, 60),
		EvalsPerGen:       50,
		EvalCost:          1e-4,
		MigrationInterval: 10,
		MessageBytes:      1024,
	}

	// Load-fluctuation levels: non-dedicated workstations where each
	// generation's compute cost varies by up to the given fraction.
	levels := []struct {
		name   string
		jitter float64
	}{
		{"dedicated (no load)", 0},
		{"light load (±25%)", 0.25},
		{"busy (±50%)", 0.5},
		{"heavily shared (±100%)", 1.0},
	}
	// Homogeneous base speeds isolate the fluctuation effect: with mixed
	// base speeds the permanently slowest node dominates both modes and
	// masks the straggler variance (see rampNodes for the static case).
	nodes := cluster.UniformNodes(8)

	fprintf(w, "8 island nodes (nominal speed), %d generations, modelled makespans (s)\n\n", profile.Generations)
	fprintf(w, "%-24s %-26s %-26s\n", "workstation load", "GigE sync/async", "Internet sync/async")
	for _, lv := range levels {
		row := fmt.Sprintf("%-24s", lv.name)
		for _, link := range []cluster.LinkSpec{cluster.GigabitEthernet, cluster.Internet} {
			p := profile
			p.Sync = true
			syncT := cluster.IslandMakespanJittered(nodes, link, p, lv.jitter, 7)
			p.Sync = false
			asyncT := cluster.IslandMakespanJittered(nodes, link, p, lv.jitter, 7)
			row += fmt.Sprintf(" %-26s", fmt.Sprintf("%.3f / %.3f (%.2f×)", syncT, asyncT, syncT/asyncT))
		}
		fprintf(w, "%s\n", row)
	}
	fprintf(w, "\nshape check: with dedicated machines sync and async coincide (the barrier only\n")
	fprintf(w, "pays the migration message — visible on the high-latency Internet link). As\n")
	fprintf(w, "background load fluctuates, the synchronous barrier pays the per-generation\n")
	fprintf(w, "straggler maximum while async nodes pay only their own time, and the gap\n")
	fprintf(w, "widens with load — Alba's case for asynchronous PGAs on non-dedicated\n")
	fprintf(w, "heterogeneous LAN/WAN hardware.\n")
}

// rampNodes returns n nodes with speeds ramping linearly from slowest to 1.
func rampNodes(n int, slowest float64) []cluster.NodeSpec {
	out := make([]cluster.NodeSpec, n)
	for i := range out {
		out[i] = cluster.NodeSpec{Speed: slowest + (1-slowest)*float64(i)/float64(n-1)}
	}
	return out
}
