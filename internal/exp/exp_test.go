package exp

import (
	"bytes"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"A01", "A02", "A03", "A04", "A05", "A06", "A07", "A08", "A09",
		"E01", "E02", "E03", "E04", "E05", "E06", "E07",
		"E08", "E09", "E10", "E11", "E12", "E13", "E14", "E15",
	}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(all), len(want))
	}
	for i, id := range want {
		if all[i].ID != id {
			t.Fatalf("experiment %d = %s, want %s", i, all[i].ID, id)
		}
		if all[i].Title == "" || all[i].Source == "" || all[i].Run == nil {
			t.Fatalf("%s incomplete", id)
		}
	}
}

func TestLookup(t *testing.T) {
	if _, ok := Lookup("E02"); !ok {
		t.Fatal("E02 missing")
	}
	if _, ok := Lookup("E99"); ok {
		t.Fatal("E99 should not exist")
	}
}

// TestAllExperimentsRunQuick executes every experiment in quick mode and
// checks it produces non-trivial output without panicking. This is the
// suite's integration test: it exercises engines, islands, farm, cellular,
// HGA, SIM, cluster models and the apps end to end.
func TestAllExperimentsRunQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("quick experiment sweep skipped in -short mode")
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			e.Run(&buf, true)
			out := buf.String()
			if len(out) < 50 {
				t.Fatalf("%s produced only %d bytes of output", e.ID, len(out))
			}
			if strings.Contains(out, "NaN") {
				t.Fatalf("%s output contains NaN:\n%s", e.ID, out)
			}
		})
	}
}

func TestHeaderFormat(t *testing.T) {
	var buf bytes.Buffer
	e, _ := Lookup("E01")
	header(&buf, e)
	if !strings.Contains(buf.String(), "E01") || !strings.Contains(buf.String(), "reproduces") {
		t.Fatalf("header output %q", buf.String())
	}
}

func TestE01ContainsAllLibraries(t *testing.T) {
	var buf bytes.Buffer
	e, _ := Lookup("E01")
	e.Run(&buf, false)
	for _, lib := range []string{"DGENESIS", "GAlib", "GALOPPS", "PGAPack", "POOGAL", "ParadisEO", "pga (this library)"} {
		if !strings.Contains(buf.String(), lib) {
			t.Fatalf("Table 1 missing %s", lib)
		}
	}
}

func TestScale(t *testing.T) {
	if scale(true, 100, 10) != 10 || scale(false, 100, 10) != 100 {
		t.Fatal("scale wrong")
	}
}

func TestProblemSpectrumClasses(t *testing.T) {
	ps := problemSpectrum(true)
	if len(ps) != 5 {
		t.Fatalf("spectrum has %d problems, want 5", len(ps))
	}
}
