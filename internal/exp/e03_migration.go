package exp

import (
	"fmt"
	"io"

	"pga/internal/core"
	"pga/internal/spec"
)

// E3 — Alba & Troya (2000) studied how the migration policy (frequency
// and migrant selection) influences a ring of islands across easy,
// deceptive, multimodal, NP-complete and epistatic landscapes. The
// reproduction sweeps migration interval × migrant selection over the
// same five problem classes and reports efficacy (hit rate) and effort
// (median evaluations of successful runs), or the final best fitness for
// the problem without a known optimum (NK).
func init() {
	register(Experiment{
		ID:     "E03",
		Title:  "migration frequency × migrant selection across problem classes",
		Source: "Alba & Troya 2000 (survey §4): influence of the migration policy",
		Run:    runE03,
	})
}

func runE03(w io.Writer, quick bool) {
	runs := scale(quick, 20, 3)
	maxGens := scale(quick, 400, 60)
	demes := 8
	popSize := scale(quick, 20, 10)
	intervals := []int{0, 1, 5, 20, 50}

	fprintf(w, "ring of %d islands × %d individuals, %d runs/cell; cells: hit-rate (med-evals) or mean-best for NK\n\n",
		demes, popSize, runs)

	selectors := []string{"best", "random"}

	for _, prob := range problemSpectrum(quick) {
		inst, _ := prob.Instance(0)
		fprintf(w, "--- %s ---\n", inst.Name())
		fprintf(w, "%-10s", "interval")
		for _, s := range selectors {
			fprintf(w, " %-22s", "migrants="+s)
		}
		fprintf(w, "\n")
		_, hasTarget := inst.(core.TargetAware)
		for _, interval := range intervals {
			label := "isolated"
			if interval > 0 {
				label = fmt.Sprintf("%d", interval)
			}
			fprintf(w, "%-10s", label)
			for _, s := range selectors {
				hit, final := runIslandSetup(islandSetup{
					problem:   prob,
					engine:    demeEngineSpec(popSize),
					demes:     demes,
					migration: spec.MigrationSpec{Interval: interval, Count: 2, Select: s},
					maxGens:   maxGens,
					runs:      runs,
				})
				if hasTarget {
					cell := rate(hit)
					if hit.Hits() > 0 {
						cell += fmt.Sprintf(" (%.0f)", hit.Effort().Median)
					}
					fprintf(w, " %-22s", cell)
				} else {
					fprintf(w, " %-22s", fmt.Sprintf("%.4f", final.Mean))
				}
			}
			fprintf(w, "\n")
		}
		fprintf(w, "\n")
	}
	fprintf(w, "shape check: moderate intervals beat both extremes (every-generation migration\n")
	fprintf(w, "≈ panmixia, isolation starves demes); best-selection converges faster on easy\n")
	fprintf(w, "landscapes while random-selection preserves diversity on deceptive ones.\n")
}
