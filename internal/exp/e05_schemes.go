package exp

import (
	"io"

	"pga/internal/schema"
	"pga/internal/spec"
	"pga/internal/stats"
)

// E5 — Alba & Troya (2002) comparatively analysed steady-state,
// generational and cellular GAs as island demes: time complexity,
// selection pressure, schema processing rates, efficacy and efficiency.
// The reproduction runs a ring of islands whose demes use each scheme and
// reports efficacy/effort, plus the schema growth rate of a fit
// building-block schema measured on the standalone engines.
func init() {
	register(Experiment{
		ID:     "E05",
		Title:  "evolution schemes as island demes: generational vs steady-state vs cellular",
		Source: "Alba & Troya 2002 (survey §2): panmictic and structured evolution schemes",
		Run:    runE05,
	})
}

func runE05(w io.Writer, quick bool) {
	runs := scale(quick, 15, 3)
	maxGens := scale(quick, 500, 60)
	bits := scale(quick, 48, 24)
	demes := 4
	popSize := 25 // cellular uses 5×5

	prob := spec.ProblemSpec{Name: "trap", Size: bits}
	inst, _ := prob.Instance(0)
	twopoint := func() *spec.OperatorSpec { return &spec.OperatorSpec{Name: "twopoint"} }
	bitflip := func() *spec.OperatorSpec { return &spec.OperatorSpec{Name: "bitflip"} }

	// Each scheme as a deme-engine spec; engine.type doubles as the
	// standalone model name for the schema-growth measurement.
	schemes := []struct {
		name   string
		engine spec.EngineSpec
	}{
		{"generational", spec.EngineSpec{Pop: popSize, Crossover: twopoint(), Mutator: bitflip()}},
		{"steady-state", spec.EngineSpec{Type: "steadystate", Pop: popSize, Crossover: twopoint(), Mutator: bitflip()}},
		{"cellular", spec.EngineSpec{Type: "cellular", Grid: &spec.GridSpec{Rows: 5, Cols: 5}, Crossover: twopoint(), Mutator: bitflip()}},
	}

	fprintf(w, "ring of %d islands × %d individuals on %s, %d runs/scheme\n\n", demes, popSize, inst.Name(), runs)
	fprintf(w, "%-14s %-9s %-14s %-14s %-14s\n", "scheme", "hit-rate", "med-evals", "mean-best", "schema-growth")

	for _, sc := range schemes {
		var hit stats.HitRate
		var finals []float64
		rs := spec.RunSpec{
			Model:   spec.ModelIslands,
			Problem: prob,
			Engine:  sc.engine,
			Islands: &spec.IslandSpec{Demes: demes, Migration: migrationEvery(10, 2)},
			Budget:  spec.BudgetSpec{Generations: maxGens, TargetOptimum: true},
		}
		for r := 0; r < runs; r++ {
			rs.Seed = uint64(r) * 101
			rep := mustBuild(rs).Run(spec.RunOpts{})
			hit.Record(rep.Solved, rep.SolvedAtEval)
			finals = append(finals, rep.Best)
		}

		// Schema processing rate on the standalone engine: growth of the
		// first trap block's optimal schema 1111****…
		pattern := make([]byte, bits)
		for i := range pattern {
			pattern[i] = '*'
		}
		for i := 0; i < 4; i++ {
			pattern[i] = '1'
		}
		sch := schema.MustParse(string(pattern))
		standalone := spec.RunSpec{Model: spec.ModelGenerational, Problem: prob, Engine: sc.engine}
		if sc.engine.Type != "" {
			standalone.Model = sc.engine.Type
			standalone.Engine.Type = ""
		}
		growth := 0.0
		const schemaRuns = 5
		for r := 0; r < schemaRuns; r++ {
			standalone.Seed = uint64(r)*977 + 5
			e := mustBuild(standalone).Engine
			tr := schema.NewTracker(sch)
			tr.Observe(e.Population())
			for g := 0; g < 20; g++ {
				e.Step()
				tr.Observe(e.Population())
			}
			growth += tr.GrowthRate(0)
		}
		growth /= schemaRuns

		med := 0.0
		if hit.Hits() > 0 {
			med = hit.Effort().Median
		}
		fprintf(w, "%-14s %-9s %-14.0f %-14.2f %-14.3f\n",
			sc.name, rate(&hit), med, stats.Summarize(finals).Mean, growth)
	}
	fprintf(w, "\nshape check: steady-state shows the highest schema processing rate (selection\n")
	fprintf(w, "pressure) but over-converges on this deceptive landscape; the cellular scheme's\n")
	fprintf(w, "mating restriction is the most robust; generational sits between — the\n")
	fprintf(w, "pressure/robustness tradeoff of Alba & Troya's comparison. All schemes grow\n")
	fprintf(w, "fit schemata at a rate above 1 (the schema theorem).\n")
}
