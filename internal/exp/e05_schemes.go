package exp

import (
	"io"

	"pga/internal/cellular"
	"pga/internal/core"
	"pga/internal/ga"
	"pga/internal/island"
	"pga/internal/operators"
	"pga/internal/problems"
	"pga/internal/rng"
	"pga/internal/schema"
	"pga/internal/stats"
	"pga/internal/topology"
)

// E5 — Alba & Troya (2002) comparatively analysed steady-state,
// generational and cellular GAs as island demes: time complexity,
// selection pressure, schema processing rates, efficacy and efficiency.
// The reproduction runs a ring of islands whose demes use each scheme and
// reports efficacy/effort, plus the schema growth rate of a fit
// building-block schema measured on the standalone engines.
func init() {
	register(Experiment{
		ID:     "E05",
		Title:  "evolution schemes as island demes: generational vs steady-state vs cellular",
		Source: "Alba & Troya 2002 (survey §2): panmictic and structured evolution schemes",
		Run:    runE05,
	})
}

func runE05(w io.Writer, quick bool) {
	runs := scale(quick, 15, 3)
	maxGens := scale(quick, 500, 60)
	bits := scale(quick, 48, 24)
	demes := 4
	popSize := 25 // cellular uses 5×5

	prob := problems.DeceptiveTrap{Blocks: bits / 4, K: 4}

	schemes := []struct {
		name string
		mk   func(p core.Problem, r *rng.Source) ga.Engine
	}{
		{"generational", func(p core.Problem, r *rng.Source) ga.Engine {
			return ga.NewGenerational(ga.Config{Problem: p, PopSize: popSize,
				Crossover: operators.TwoPoint{}, Mutator: operators.BitFlip{}, RNG: r})
		}},
		{"steady-state", func(p core.Problem, r *rng.Source) ga.Engine {
			return ga.NewSteadyState(ga.Config{Problem: p, PopSize: popSize,
				Crossover: operators.TwoPoint{}, Mutator: operators.BitFlip{}, RNG: r}, true)
		}},
		{"cellular", func(p core.Problem, r *rng.Source) ga.Engine {
			return cellular.New(cellular.Config{Problem: p, Rows: 5, Cols: 5,
				Crossover: operators.TwoPoint{}, Mutator: operators.BitFlip{}, RNG: r})
		}},
	}

	fprintf(w, "ring of %d islands × %d individuals on %s, %d runs/scheme\n\n", demes, popSize, prob.Name(), runs)
	fprintf(w, "%-14s %-9s %-14s %-14s %-14s\n", "scheme", "hit-rate", "med-evals", "mean-best", "schema-growth")

	for _, sc := range schemes {
		var hit stats.HitRate
		var finals []float64
		for r := 0; r < runs; r++ {
			mk := sc.mk
			m := island.New(island.Config{
				Topology:  topology.Ring(demes),
				Policy:    migrationEvery(10, 2),
				NewEngine: func(d int, rr *rng.Source) ga.Engine { return mk(prob, rr) },
				Seed:      uint64(r) * 101,
			})
			res := m.RunSequential(core.AnyOf{
				core.MaxGenerations(maxGens),
				core.TargetFitness{Target: prob.Optimum(), Dir: core.Maximize},
			}, false)
			hit.Record(res.Solved, res.SolvedAtEval)
			finals = append(finals, res.BestFitness)
		}

		// Schema processing rate on the standalone engine: growth of the
		// first trap block's optimal schema 1111****…
		pattern := make([]byte, bits)
		for i := range pattern {
			pattern[i] = '*'
		}
		for i := 0; i < 4; i++ {
			pattern[i] = '1'
		}
		sch := schema.MustParse(string(pattern))
		growth := 0.0
		const schemaRuns = 5
		for r := 0; r < schemaRuns; r++ {
			e := sc.mk(prob, rng.New(uint64(r)*977+5))
			tr := schema.NewTracker(sch)
			tr.Observe(e.Population())
			for g := 0; g < 20; g++ {
				e.Step()
				tr.Observe(e.Population())
			}
			growth += tr.GrowthRate(0)
		}
		growth /= schemaRuns

		med := 0.0
		if hit.Hits() > 0 {
			med = hit.Effort().Median
		}
		fprintf(w, "%-14s %-9s %-14.0f %-14.2f %-14.3f\n",
			sc.name, rate(&hit), med, stats.Summarize(finals).Mean, growth)
	}
	fprintf(w, "\nshape check: steady-state shows the highest schema processing rate (selection\n")
	fprintf(w, "pressure) but over-converges on this deceptive landscape; the cellular scheme's\n")
	fprintf(w, "mating restriction is the most robust; generational sits between — the\n")
	fprintf(w, "pressure/robustness tradeoff of Alba & Troya's comparison. All schemes grow\n")
	fprintf(w, "fit schemata at a rate above 1 (the schema theorem).\n")
}
