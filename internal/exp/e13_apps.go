package exp

import (
	"io"

	"pga/internal/apps"
	"pga/internal/core"
	"pga/internal/ga"
	"pga/internal/island"
	"pga/internal/migration"
	"pga/internal/operators"
	"pga/internal/rng"
	"pga/internal/stats"
	"pga/internal/topology"
)

// E13 — the survey's §4 reviews PGA applications across numerical
// mathematics, computer science, finance and engineering. The
// reproduction runs every synthetic application workload with a
// sequential GA and an island PGA at the same evaluation budget and
// reports the quality each reaches — the "PGA gains not only time but
// also outcome" observation (e.g. Pereira 2003).
func init() {
	register(Experiment{
		ID:     "E13",
		Title:  "application workloads: sequential GA vs island PGA at equal budget",
		Source: "survey §4 applications (Sena, Kwok, Moser, Chalermwat/Fan, Kwon & Moon, Pereira, Solano, Olague, graph problems)",
		Run:    runE13,
	})
}

// appCase describes one application workload and its operators.
type appCase struct {
	name      string
	problem   core.Problem
	crossover operators.Crossover
	mutator   operators.Mutator
	better    string // reading aid: which direction is better
}

func e13Cases(quick bool) []appCase {
	n := scale(quick, 40, 16)
	return []appCase{
		{"TSP (circle, known opt)", apps.NewCircleTSP(n), operators.OX{}, operators.Inversion{}, "shorter"},
		{"TSP (clustered)", apps.NewClusteredTSP(n, 5, 99), operators.OX{}, operators.Inversion{}, "shorter"},
		{"task scheduling", apps.NewScheduling(scale(quick, 60, 24), 6, 99), operators.Uniform{}, operators.UniformReset{P: 0.05}, "shorter"},
		{"feature selection", apps.NewFeatureSelection(scale(quick, 32, 16), 5, 3, 15, 99), operators.Uniform{}, operators.BitFlip{}, "higher"},
		{"image registration", registration(quick), operators.BLX{}, operators.Gaussian{P: 0.5, Sigma: 0.3}, "higher"},
		{"stock prediction (MLP)", apps.NewStockPrediction(scale(quick, 300, 150), 5, 4, 99), operators.BLX{}, operators.Gaussian{P: 0.2, Sigma: 0.2}, "lower"},
		{"Doppler AR(2) fit", apps.NewSpectralEstimation(scale(quick, 400, 150), 99), operators.SBX{}, operators.Polynomial{}, "lower"},
		{"reactor core loading", apps.NewReactorCore(7, 3, 99), operators.TwoPoint{}, operators.UniformReset{P: 0.03}, "lower"},
		{"graph partitioning", apps.NewGraphPartition(scale(quick, 48, 24), 0.4, 0.04, 99), operators.Uniform{}, operators.BitFlip{}, "lower"},
		{"camera placement", apps.NewCameraPlacement(4, scale(quick, 40, 20), 99), operators.BLX{}, operators.Gaussian{P: 0.3, Sigma: 0.3}, "higher"},
	}
}

func registration(quick bool) core.Problem {
	ir := apps.NewImageRegistration(scale(quick, 32, 20), 99)
	ir.Downsample = 2
	return ir
}

func runE13(w io.Writer, quick bool) {
	runs := scale(quick, 5, 2)
	budget := int64(scale(quick, 12000, 3000))

	fprintf(w, "sequential GA (pop 64) vs 4-island ring PGA (4×16) at ≤%d evaluations, %d runs/cell\n\n", budget, runs)
	fprintf(w, "%-26s %-14s %-14s %-10s\n", "workload", "sequential", "island PGA", "better")

	for _, c := range e13Cases(quick) {
		var seqBest, parBest []float64
		for r := 0; r < runs; r++ {
			seed := uint64(r)*997 + 13
			// Sequential baseline.
			e := ga.NewGenerational(ga.Config{
				Problem: c.problem, PopSize: 64,
				Crossover: c.crossover, Mutator: c.mutator, RNG: rng.New(seed),
			})
			res := ga.Run(e, ga.RunOptions{Stop: core.MaxEvaluations(budget)})
			seqBest = append(seqBest, res.BestFitness)

			// Island PGA at the same budget.
			cc := c
			m := island.New(island.Config{
				Topology: topology.Ring(4),
				Policy:   migration.Policy{Interval: 10, Count: 2},
				NewEngine: func(d int, rr *rng.Source) ga.Engine {
					return ga.NewGenerational(ga.Config{
						Problem: cc.problem, PopSize: 16,
						Crossover: cc.crossover, Mutator: cc.mutator, RNG: rr,
					})
				},
				Seed: seed,
			})
			ires := m.RunSequential(core.MaxEvaluations(budget), false)
			parBest = append(parBest, ires.BestFitness)
		}
		fprintf(w, "%-26s %-14.4f %-14.4f %-10s\n",
			c.name, stats.Summarize(seqBest).Mean, stats.Summarize(parBest).Mean, c.better)
	}
	fprintf(w, "\nshape check: at equal evaluation budgets the island PGA matches or improves the\n")
	fprintf(w, "sequential outcome on the multimodal workloads — Pereira's 'gains not only in\n")
	fprintf(w, "computational time, but also in the optimization outcome'.\n")
}
