package exp

import (
	"io"

	"pga/internal/cluster"
	"pga/internal/spec"
)

// E12 — Rivera (2001) reviewed the scalability of parallel GAs. The
// reproduction measures strong scaling (fixed total population spread
// over more demes) and weak scaling (fixed per-deme population, so total
// work grows with the deme count) on the virtual cluster, reporting
// modelled time, speedup and efficiency up to 64 demes, driven by the
// real engines' measured evaluation counts.
func init() {
	register(Experiment{
		ID:     "E12",
		Title:  "strong and weak scaling of the island model (modelled wall-clock)",
		Source: "Rivera 2001 (survey §2): scalable parallel genetic algorithms",
		Run:    runE12,
	})
}

func runE12(w io.Writer, quick bool) {
	const evalCost = 1e-4
	runs := scale(quick, 10, 2)
	maxGens := scale(quick, 150, 50)
	bits := scale(quick, 48, 24)
	totalPop := scale(quick, 256, 64)
	prob := spec.ProblemSpec{Name: "onemax", Size: bits}
	demeCounts := []int{1, 2, 4, 8, 16, 32, 64}

	fprintf(w, "part A — strong scaling: total population %d split over k demes (ring, interval 10)\n", totalPop)
	fprintf(w, "all times are modelled on a virtual GigE cluster, one deme per node\n\n")
	fprintf(w, "%-6s %-12s %-12s %-12s %-10s\n", "k", "gens/deme", "mod-time(s)", "speedup", "efficiency")
	var baseTime float64
	for _, k := range demeCounts {
		if totalPop/k < 4 {
			continue
		}
		gens := measureGens(prob, k, totalPop/k, maxGens, runs)
		profile := cluster.IslandProfile{
			Generations: gens, EvalsPerGen: float64(totalPop / k), EvalCost: evalCost,
			MigrationInterval: 10, MessageBytes: 1024, Sync: true,
		}
		t := cluster.IslandMakespan(cluster.UniformNodes(k), cluster.GigabitEthernet, profile)
		if k == 1 {
			baseTime = t
		}
		sp := cluster.Speedup(baseTime, t)
		fprintf(w, "%-6d %-12d %-12.4f %-12.2f %-10.2f\n", k, gens, t, sp, cluster.Efficiency(sp, k))
	}

	fprintf(w, "\npart B — weak scaling: %d individuals per deme, k demes (total work grows with k)\n\n", 32)
	fprintf(w, "%-6s %-12s %-12s %-14s\n", "k", "gens/deme", "mod-time(s)", "scaled-eff.")
	var weakBase float64
	for _, k := range demeCounts {
		gens := measureGens(prob, k, 32, maxGens, runs)
		profile := cluster.IslandProfile{
			Generations: gens, EvalsPerGen: 32, EvalCost: evalCost,
			MigrationInterval: 10, MessageBytes: 1024, Sync: true,
		}
		t := cluster.IslandMakespan(cluster.UniformNodes(k), cluster.GigabitEthernet, profile)
		if k == 1 {
			weakBase = t
		}
		// Weak-scaling efficiency: T(1)/T(k) for k× the work on k nodes.
		fprintf(w, "%-6d %-12d %-12.4f %-14.2f\n", k, gens, t, weakBase/t)
	}
	fprintf(w, "\nshape check: strong-scaling efficiency stays high and decays gently with k as\n")
	fprintf(w, "the communication share grows; weak-scaling efficiency stays at or above 1 —\n")
	fprintf(w, "migration lets k cooperating demes finish in fewer generations than one deme\n")
	fprintf(w, "alone, the collaborative bonus behind Rivera's scalability review.\n")
}

// measureGens runs the real island model and returns the mean generations
// needed to solve (or the cap when unsolved).
func measureGens(prob spec.ProblemSpec, demes, popSize, maxGens, runs int) int {
	total := 0
	for r := 0; r < runs; r++ {
		hit, _ := runIslandSetup(islandSetup{
			problem:   prob,
			engine:    demeEngineSpec(popSize),
			demes:     demes,
			migration: migrationEvery(10, 1),
			maxGens:   maxGens,
			runs:      1,
			baseSeed:  uint64(r)*89 + 11,
		})
		if hit.Hits() > 0 {
			total += int(hit.Effort().Mean / float64(demes*popSize))
		} else {
			total += maxGens
		}
	}
	g := total / runs
	if g < 1 {
		g = 1
	}
	return g
}
