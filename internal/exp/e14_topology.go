package exp

import (
	"io"

	"pga/internal/spec"
	"pga/internal/topology"
)

// E14 — the survey (§1.1, §3.2) calls topology "a new dimension" of GAs
// and inventories the common graphs: rings, grids, toruses, hypercubes,
// stars, fully connected. The reproduction compares all of them (plus a
// random regular graph) at equal deme count and migration policy,
// reporting graph diameter alongside search performance — the
// communication-vs-convergence tradeoff of Cantú-Paz's topology study.
func init() {
	register(Experiment{
		ID:     "E14",
		Title:  "topology comparison at equal deme count",
		Source: "survey §1.1/§3.2 topology inventory; Cantú-Paz 2000 topology effects",
		Run:    runE14,
	})
}

func runE14(w io.Writer, quick bool) {
	runs := scale(quick, 20, 4)
	maxGens := scale(quick, 500, 60)
	blocks := scale(quick, 10, 8)
	prob := spec.ProblemSpec{Name: "trap", Size: blocks * 4}
	inst, _ := prob.Instance(0)
	demes := 8
	popSize := scale(quick, 20, 8)

	// mk builds the graph for diameter/link inspection; ts is the same
	// topology in spec vocabulary for the actual runs.
	tops := []struct {
		name string
		mk   func(n int) topology.Topology
		ts   spec.TopologySpec
	}{
		{"ring", topology.Ring, spec.TopologySpec{Kind: "ring"}},
		{"bi-ring", topology.BiRing, spec.TopologySpec{Kind: "biring"}},
		{"star", topology.Star, spec.TopologySpec{Kind: "star"}},
		{"grid 2x4", func(n int) topology.Topology { return topology.Grid(2, 4) }, spec.TopologySpec{Kind: "grid", Rows: 2, Cols: 4}},
		{"torus 2x4", func(n int) topology.Topology { return topology.Torus(2, 4) }, spec.TopologySpec{Kind: "torus", Rows: 2, Cols: 4}},
		{"hypercube", func(n int) topology.Topology { return topology.Hypercube(3) }, spec.TopologySpec{Kind: "hypercube"}},
		{"complete", topology.Complete, spec.TopologySpec{Kind: "complete"}},
		{"random k=3", func(n int) topology.Topology { return topology.RandomRegular(n, 3, 7) }, spec.TopologySpec{Kind: "random", Degree: 3, Seed: 7}},
	}

	fprintf(w, "%d demes × %d on %s, migration every 10 gens, %d runs/topology\n\n",
		demes, popSize, inst.Name(), runs)
	fprintf(w, "%-12s %-9s %-9s %-14s %-12s %-10s\n",
		"topology", "diameter", "hit-rate", "med-evals", "mean-best", "links")

	for _, tp := range tops {
		t := tp.mk(demes)
		links := 0
		for i := 0; i < t.Size(); i++ {
			links += len(t.Neighbors(i))
		}
		hit, final := runIslandSetup(islandSetup{
			problem:   prob,
			engine:    demeEngineSpec(popSize),
			demes:     demes,
			topology:  tp.ts,
			migration: migrationEvery(10, 2),
			maxGens:   maxGens,
			runs:      runs,
		})
		med := 0.0
		if hit.Hits() > 0 {
			med = hit.Effort().Median
		}
		fprintf(w, "%-12s %-9d %-9s %-14.0f %-12.2f %-10d\n",
			tp.name, topology.Diameter(t), rate(hit), med, final.Mean, links)
	}
	fprintf(w, "\nshape check: low-diameter graphs (complete, star, hypercube) spread good genes\n")
	fprintf(w, "fastest (fewer evaluations when they solve) but pay more links (communication);\n")
	fprintf(w, "sparse rings preserve diversity longest — the topology tradeoff the survey flags.\n")
}
