package exp

import (
	"io"

	"pga/internal/cellular"
	"pga/internal/stats"
)

// E6 — Giacobini, Alba & Tomassini (2003) characterised the selection
// pressure of asynchronous cellular EA update policies through takeover
// times and growth curves. The reproduction measures takeover time and
// the fitted logistic growth rate for the synchronous policy and the four
// asynchronous ones on a toroidal grid, printing the growth curves as
// sparklines.
func init() {
	register(Experiment{
		ID:     "E06",
		Title:  "selection pressure of cellular update policies (takeover time)",
		Source: "Giacobini et al. 2003 (survey §2): selection intensity in asynchronous cEAs",
		Run:    runE06,
	})
}

func runE06(w io.Writer, quick bool) {
	side := scale(quick, 32, 12)
	runs := scale(quick, 20, 5)
	maxSweeps := scale(quick, 3000, 800)

	policies := []cellular.UpdatePolicy{
		cellular.Synchronous,
		cellular.LineSweep,
		cellular.FixedRandomSweep,
		cellular.NewRandomSweep,
		cellular.UniformChoice,
	}

	fprintf(w, "%d×%d torus, L5 neighbourhood, binary tournament, %d runs/policy\n\n", side, side, runs)
	fprintf(w, "%-6s %-16s %-12s %s\n", "policy", "takeover-sweeps", "logistic-b", "growth curve")

	for _, pol := range policies {
		mean := cellular.TakeoverTime(side, side, cellular.VonNeumann, pol, runs, maxSweeps)
		curve := cellular.TakeoverCurve(side, side, cellular.VonNeumann, pol, 1, maxSweeps)
		_, b := stats.LogisticFit(curve)
		fprintf(w, "%-6s %-16.1f %-12.4f %s\n",
			pol, mean, b, stats.Sparkline(stats.Downsample(curve, 40)))
	}
	fprintf(w, "\nshape check: every asynchronous policy takes over faster than synchronous\n")
	fprintf(w, "(higher selection intensity), with uniform choice closest to synchronous and\n")
	fprintf(w, "line sweep the most aggressive — Giacobini's ordering.\n")
}
