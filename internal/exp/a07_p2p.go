package exp

import (
	"io"

	"pga/internal/p2p"
	"pga/internal/problems"
	"pga/internal/stats"
)

// A07 — the survey's §4 reviews DREAM/DRM (Arenas 2002, Jelasity 2002): a
// peer-to-peer evolutionary virtual machine over the open Internet, where
// nodes join and leave at will. The reproduction sweeps churn rates over
// the gossip overlay and reports efficacy and churn traffic — DREAM's
// robustness story: the epidemic overlay degrades gracefully.
func init() {
	register(Experiment{
		ID:     "A07",
		Title:  "DREAM-style P2P overlay: efficacy under node churn",
		Source: "Arenas 2002 / Jelasity 2002 (survey §4): distributed resource machine",
		Run:    runA07,
	})
}

func runA07(w io.Writer, quick bool) {
	runs := scale(quick, 10, 3)
	maxGens := scale(quick, 200, 60)
	bits := scale(quick, 64, 32)
	peers := scale(quick, 16, 8)

	fprintf(w, "%d peers × 12 individuals, gossip every 5 gens, onemax(%d), %d runs/row\n\n", peers, bits, runs)
	fprintf(w, "%-12s %-9s %-12s %-12s %-10s %-10s\n",
		"churn/gen", "hit-rate", "mean-best", "departures", "joins", "messages")

	for _, churn := range []float64{0, 0.01, 0.05, 0.10} {
		var hit stats.HitRate
		var finals, deps, joins, msgs []float64
		for r := 0; r < runs; r++ {
			cfg := p2p.Config{
				Problem:   problems.OneMax{N: bits},
				Peers:     peers,
				NewEngine: demeEngine(problems.OneMax{N: bits}, 12),
				ChurnRate: churn,
				Seed:      uint64(r)*271 + 5,
			}
			res := p2p.New(cfg).Run(maxGens)
			hit.Record(res.Solved, res.Evaluations)
			finals = append(finals, res.BestFitness)
			deps = append(deps, float64(res.Departures))
			joins = append(joins, float64(res.Joins))
			msgs = append(msgs, float64(res.Messages))
		}
		fprintf(w, "%-12.2f %-9s %-12.2f %-12.1f %-10.1f %-10.1f\n",
			churn, rate(&hit), stats.Summarize(finals).Mean,
			stats.Summarize(deps).Mean, stats.Summarize(joins).Mean, stats.Summarize(msgs).Mean)
	}
	fprintf(w, "\nshape check: efficacy holds at moderate churn and degrades gracefully as churn\n")
	fprintf(w, "grows — the epidemic overlay keeps spreading good genes while nodes come and\n")
	fprintf(w, "go, DREAM's robustness claim for Internet-scale evolutionary computation.\n")
}
