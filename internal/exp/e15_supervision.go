package exp

import (
	"io"
	"time"

	"pga/internal/island"
	"pga/internal/migration"
	"pga/internal/problems"
	"pga/internal/supervise"
	"pga/internal/topology"
)

// E15 — the survey's §4 adopts Gagné, Parizeau & Dubreuil's three
// properties a distributed EC system must offer — transparency,
// robustness, adaptivity — and E07 shows them for the master–slave farm.
// This experiment shows them for the island model itself: the same
// seeded parallel run executes fault-free, with injected transient
// faults (a deme panic and a deme hang), and with a permanently dying
// deme. Supervision converts each fault into a checkpoint restart or a
// healed topology, so every variant completes and solves; the table
// reports the recovery counters alongside solution quality.
func init() {
	register(Experiment{
		ID:     "E15",
		Title:  "island supervision under injected faults",
		Source: "survey §4: Gagné et al.'s robustness properties, applied to demes",
		Run:    runE15,
	})
}

func runE15(w io.Writer, quick bool) {
	runs := scale(quick, 5, 2)
	maxGens := scale(quick, 400, 200)
	bits := scale(quick, 64, 48)
	popSize := scale(quick, 30, 20)
	demes := 4
	heartbeat := 30 * time.Millisecond
	hang := 90 * time.Millisecond

	base := func(seed uint64, res *supervise.Config, plan *supervise.FaultPlan) *island.Model {
		return island.New(island.Config{
			Topology:   topology.Ring(demes),
			Policy:     migration.Policy{Interval: 5, Count: 2, Sync: true},
			NewEngine:  demeEngine(problems.OneMax{N: bits}, popSize),
			Seed:       seed,
			Resilience: res,
			Faults:     plan,
		})
	}
	resilient := func() *supervise.Config {
		return &supervise.Config{
			CheckpointEvery: 5,
			MaxRestarts:     4,
			Heartbeat:       heartbeat,
			Backoff:         time.Millisecond,
		}
	}

	scenarios := []struct {
		name string
		mk   func(seed uint64) *island.Model
	}{
		{"fault-free", func(seed uint64) *island.Model {
			return base(seed, resilient(), nil)
		}},
		{"transient: panic + hang", func(seed uint64) *island.Model {
			plan := supervise.NewFaultPlan().
				PanicAt(1, 6).
				HangAt(2, 9, hang)
			return base(seed, resilient(), plan)
		}},
		{"repeated panics (one deme)", func(seed uint64) *island.Model {
			plan := supervise.NewFaultPlan().PanicTimes(1, 4, 3)
			return base(seed, resilient(), plan)
		}},
		{"hard death: budget 0", func(seed uint64) *island.Model {
			res := resilient()
			res.MaxRestarts = -1 // first failure kills the deme
			return base(seed, res, supervise.NewFaultPlan().PanicAt(3, 8))
		}},
	}

	fprintf(w, "%d-deme ring, onemax(%d), pop %d/deme, parallel sync, checkpoint every 5,\n", demes, bits, popSize)
	fprintf(w, "heartbeat %v, injected hang %v, %d runs/scenario\n\n", heartbeat, hang, runs)
	fprintf(w, "%-28s %-9s %-10s %-9s %-9s %-9s %-6s %-10s\n",
		"scenario", "hit-rate", "med-gens", "restarts", "panics", "timeouts", "dead", "mean-best")

	for _, sc := range scenarios {
		var solvedRuns, gens int
		var restarts, panics, timeouts, dead int64
		var bestSum float64
		for r := 0; r < runs; r++ {
			res := sc.mk(uint64(r)*101+7).RunParallel(maxGens, false)
			if res.Solved {
				solvedRuns++
				gens += res.SolvedAtGen
			}
			restarts += res.Restarts
			panics += res.PanicsRecovered
			timeouts += res.HeartbeatTimeouts
			dead += int64(len(res.DeadDemes))
			bestSum += res.BestFitness
		}
		medGens := 0
		if solvedRuns > 0 {
			medGens = gens / solvedRuns
		}
		fprintf(w, "%-28s %d/%-7d %-10d %-9.1f %-9.1f %-9.1f %-6.1f %-10.2f\n",
			sc.name, solvedRuns, runs, medGens,
			float64(restarts)/float64(runs), float64(panics)/float64(runs),
			float64(timeouts)/float64(runs), float64(dead)/float64(runs),
			bestSum/float64(runs))
	}

	fprintf(w, "\nshape check: every scenario keeps solving — a panic costs one deme at most one\n")
	fprintf(w, "checkpoint interval, a hang is abandoned at the heartbeat deadline, and a dead\n")
	fprintf(w, "deme is frozen at its checkpoint while the ring heals around it. The run-level\n")
	fprintf(w, "hit-rate is unchanged by the injected faults — Gagné's robustness, deme edition.\n")
}
