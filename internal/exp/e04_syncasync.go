package exp

import (
	"io"

	"pga/internal/spec"
	"pga/internal/stats"
)

// E4 — Alba & Troya (2001) analysed synchronous vs asynchronous parallel
// distributed GAs, finding that asynchronism does not hurt solution
// quality and improves wall-clock on real clusters (no barrier stalls).
// The reproduction runs both modes with real goroutines per deme and
// channel migration, comparing efficacy, effort and real elapsed time
// (same machine, so the expected elapsed-time gap is small; the barrier
// structure is what's exercised).
func init() {
	register(Experiment{
		ID:     "E04",
		Title:  "synchronous vs asynchronous island migration (goroutines + channels)",
		Source: "Alba & Troya 2001 (survey §2): synchronism in the migration step",
		Run:    runE04,
	})
}

func runE04(w io.Writer, quick bool) {
	runs := scale(quick, 10, 3)
	maxGens := scale(quick, 300, 80)
	bits := scale(quick, 64, 32)
	demes := 8
	popSize := scale(quick, 20, 10)

	fprintf(w, "%d demes × %d on onemax(%d), %d parallel runs each (one goroutine per deme)\n\n",
		demes, popSize, bits, runs)
	fprintf(w, "%-8s %-9s %-14s %-14s %-12s\n", "mode", "hit-rate", "med-evals", "mean-best", "elapsed(ms)")

	for _, sync := range []bool{true, false} {
		var hit stats.HitRate
		var finals, elapsed []float64
		rs := spec.RunSpec{
			Model:   spec.ModelIslands,
			Problem: spec.ProblemSpec{Name: "onemax", Size: bits},
			Engine:  demeEngineSpec(popSize),
			Islands: &spec.IslandSpec{
				Demes:     demes,
				Mode:      "parallel",
				Migration: spec.MigrationSpec{Interval: 5, Count: 2, Async: !sync, Buffer: 4},
			},
			Budget: spec.BudgetSpec{Generations: maxGens},
		}
		for r := 0; r < runs; r++ {
			rs.Seed = uint64(r) * 31
			// The report layer drops wall-clock for determinism; drive the
			// built island model directly to time the barrier structure.
			res := mustBuild(rs).Islands.RunParallel(maxGens, false)
			hit.Record(res.Solved, res.SolvedAtEval)
			finals = append(finals, res.BestFitness)
			elapsed = append(elapsed, float64(res.Elapsed.Microseconds())/1000)
		}
		mode := "async"
		if sync {
			mode = "sync"
		}
		med := 0.0
		if hit.Hits() > 0 {
			med = hit.Effort().Median
		}
		fprintf(w, "%-8s %-9s %-14.0f %-14.2f %-12.2f\n",
			mode, rate(&hit), med, stats.Summarize(finals).Mean, stats.Summarize(elapsed).Mean)
	}
	fprintf(w, "\nshape check: async matches sync efficacy and quality — dropping the barrier\n")
	fprintf(w, "costs nothing, Alba & Troya's conclusion. The async effort number is lower\n")
	fprintf(w, "because free-running demes stop the moment one solves, counting only work\n")
	fprintf(w, "actually performed (on this single-core host the scheduler effectively runs\n")
	fprintf(w, "demes in bursts); sync forces every deme to the same generation.\n")
}
