package exp

import "io"

// Table 1 of the survey: parallel genetic libraries and their
// characteristics (name, native programming language, inter-process
// communication and operating system). This reproduction adds itself as
// row 8 — a Go library whose "communication library" is the language's
// own channels, exactly the niche the surveyed libraries filled with
// sockets/PVM/MPI.
func init() {
	register(Experiment{
		ID:     "E01",
		Title:  "Table 1 — parallel genetic libraries and their characteristics",
		Source: "survey §3.3, Table 1",
		Run: func(w io.Writer, quick bool) {
			type row struct{ n, name, lang, comm, os string }
			rows := []row{
				{"1", "DGENESIS", "C", "sockets", "UNIX"},
				{"2", "GAlib", "C++", "PVM", "UNIX"},
				{"3", "GALOPPS", "C/C++", "PVM", "UNIX"},
				{"4", "PGA", "C", "PVM", "Any"},
				{"5", "PGAPack", "C/C++", "MPI", "UNIX"},
				{"6", "POOGAL", "C++/Java", "MPI", "Any"},
				{"7", "ParadisEO", "C++", "MPI", "UNIX"},
				{"8", "pga (this library)", "Go", "channels", "Any"},
			}
			fprintf(w, "%-3s %-20s %-10s %-10s %-5s\n", "#", "Name", "Language", "Comm.", "OS")
			for _, r := range rows {
				fprintf(w, "%-3s %-20s %-10s %-10s %-5s\n", r.n, r.name, r.lang, r.comm, r.os)
			}
		},
	})
}
