package exp

import (
	"io"

	"pga/internal/sim"
	"pga/internal/stats"
)

// E9 — Xiao & Armstrong (2003) tested seven scenarios of their
// specialized island model, varying sub-EA count, specialisation and
// communication topology, on multi-objective problems. The reproduction
// runs all seven on ZDT1 and reports the tight-reference hypervolume
// (near-front coverage), archive size and evaluation count.
func init() {
	register(Experiment{
		ID:     "E09",
		Title:  "specialized island model: the seven scenarios on ZDT1",
		Source: "Xiao & Armstrong 2003 (survey §2): a specialized island model",
		Run:    runE09,
	})
}

func runE09(w io.Writer, quick bool) {
	runs := scale(quick, 10, 3)
	gens := scale(quick, 60, 20)
	demeSize := scale(quick, 30, 16)

	fprintf(w, "ZDT1(10), %d gens, deme %d, %d runs/scenario; hypervolume ref (1.1, 1.1): near-front coverage\n\n",
		gens, demeSize, runs)
	fprintf(w, "%-28s %-10s %-12s %-10s %-10s\n", "scenario", "islands", "hypervolume", "archive", "evals")

	for _, s := range sim.Scenarios() {
		var hv, arch, evals []float64
		islands := 0
		for r := 0; r < runs; r++ {
			res := sim.Run(sim.Config{
				Problem:     sim.ZDT1{Dim: 10},
				Scenario:    s,
				DemeSize:    demeSize,
				Generations: gens,
				HVRef:       [2]float64{1.1, 1.1},
				Seed:        uint64(r)*17 + 3,
			})
			hv = append(hv, res.Hypervolume)
			arch = append(arch, float64(res.Archive.Len()))
			evals = append(evals, float64(res.Evaluations))
			islands = res.Islands
		}
		fprintf(w, "%-28s %-10d %-12.4f %-10.1f %-10.0f\n",
			s, islands, stats.Summarize(hv).Mean, stats.Summarize(arch).Mean, stats.Summarize(evals).Mean)
	}
	fprintf(w, "\nshape check: communication beats isolation within each specialisation style\n")
	fprintf(w, "(S3>S2, S5/S7>S4), and the generalist-hub scenario S6 recovers most of the\n")
	fprintf(w, "front that isolated specialists miss — Xiao & Armstrong's comparison shape.\n")
}
