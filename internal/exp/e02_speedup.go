package exp

import (
	"io"

	"pga/internal/cluster"
	"pga/internal/spec"
)

// E2 — Alba & Troya (2001) reported linear and even super-linear speedup
// for parallel distributed GAs on clusters of workstations. The
// reproduction splits a fixed total population across k demes and
// measures:
//
//   - numerical speedup: evaluations-to-solution(1 deme) /
//     evaluations-to-solution(k demes) — the panmictic-vs-distributed
//     search-effort ratio where super-linearity genuinely appears on
//     deceptive/multimodal landscapes;
//   - modelled wall-clock speedup: the numerical effort mapped onto the
//     virtual cluster (one deme per node, Gigabit-class LAN) — labelled
//     "modelled" because the build host has one CPU core.
func init() {
	register(Experiment{
		ID:     "E02",
		Title:  "island speedup vs deme count (fixed total population)",
		Source: "Alba & Troya 2001 (survey §2): linear and super-linear speedup",
		Run:    runE02,
	})
}

func runE02(w io.Writer, quick bool) {
	totalPop := scale(quick, 160, 64)
	runs := scale(quick, 20, 4)
	maxGens := scale(quick, 800, 150)
	blocks := scale(quick, 10, 8)
	prob := spec.ProblemSpec{Name: "trap", Size: blocks * 4}
	inst, _ := prob.Instance(0)
	const evalCost = 1e-4 // seconds per evaluation at speed 1 (modelled)

	fprintf(w, "problem=%s  total population=%d  runs/point=%d  (wall-clock columns are modelled: virtual GigE cluster)\n\n",
		inst.Name(), totalPop, runs)
	fprintf(w, "%-6s %-9s %-14s %-12s %-12s %-12s %-10s\n",
		"demes", "hit-rate", "med-evals", "num-speedup", "mod-time(s)", "mod-speedup", "efficiency")

	var baseEffort float64
	var baseTime float64
	for _, k := range []int{1, 2, 4, 8, 16} {
		if totalPop/k < 4 {
			continue
		}
		hit, _ := runIslandSetup(islandSetup{
			problem:   prob,
			engine:    demeEngineSpec(totalPop / k),
			demes:     k,
			migration: migrationEvery(10, 2),
			maxGens:   maxGens,
			runs:      runs,
		})
		med := hit.Effort().Median
		if hit.Hits() == 0 {
			fprintf(w, "%-6d %-9s %-14s (no solved runs at this budget)\n", k, rate(hit), "-")
			continue
		}
		// Modelled wall-clock: per-deme generations ≈ effort/(k·popsize).
		gens := int(med / float64(totalPop))
		if gens < 1 {
			gens = 1
		}
		profile := cluster.IslandProfile{
			Generations:       gens,
			EvalsPerGen:       float64(totalPop / k),
			EvalCost:          evalCost,
			MigrationInterval: 10,
			MessageBytes:      1024,
			Sync:              true,
		}
		modTime := cluster.IslandMakespan(cluster.UniformNodes(k), cluster.GigabitEthernet, profile)
		if k == 1 {
			baseEffort = med
			baseTime = modTime
		}
		numSp := baseEffort / med
		modSp := cluster.Speedup(baseTime, modTime)
		fprintf(w, "%-6d %-9s %-14.0f %-12.2f %-12.4f %-12.2f %-10.2f\n",
			k, rate(hit), med, numSp, modTime, modSp, cluster.Efficiency(modSp, k))
	}
	fprintf(w, "\nshape check: modelled wall-clock speedup tracks k and turns SUPER-LINEAR exactly\n")
	fprintf(w, "where the evaluations ratio (num-speedup) exceeds 1 — the distributed algorithm\n")
	fprintf(w, "needs fewer total evaluations than the panmictic one at high deme counts, which\n")
	fprintf(w, "is how Alba & Troya's super-linear speedup arises. At low k the split can cost\n")
	fprintf(w, "evaluations (ratio < 1): parallelism pays off past the crossover.\n")
}
