package p2p

import (
	"testing"

	"pga/internal/ga"
	"pga/internal/operators"
	"pga/internal/problems"
	"pga/internal/rng"
)

func engineFactory(bits, pop int) func(int, *rng.Source) ga.Engine {
	return func(peer int, r *rng.Source) ga.Engine {
		return ga.NewGenerational(ga.Config{
			Problem:   problems.OneMax{N: bits},
			PopSize:   pop,
			Crossover: operators.Uniform{},
			Mutator:   operators.BitFlip{},
			RNG:       r,
		})
	}
}

func baseConfig(seed uint64) Config {
	return Config{
		Problem:   problems.OneMax{N: 48},
		Peers:     12,
		NewEngine: engineFactory(48, 12),
		Seed:      seed,
	}
}

func TestOverlaySolvesWithoutChurn(t *testing.T) {
	n := New(baseConfig(1))
	res := n.Run(200)
	if !res.Solved {
		t.Fatalf("overlay failed onemax: best=%v", res.BestFitness)
	}
	if res.Messages == 0 {
		t.Fatal("no migration messages")
	}
	if res.Departures != 0 || res.Joins != 0 {
		t.Fatal("churn events without churn")
	}
	if res.AliveAtEnd != 12 {
		t.Fatalf("peers died without churn: %d", res.AliveAtEnd)
	}
}

func TestOverlaySolvesUnderChurn(t *testing.T) {
	cfg := baseConfig(2)
	cfg.ChurnRate = 0.02
	cfg.RejoinRate = 0.5
	n := New(cfg)
	res := n.Run(300)
	if !res.Solved {
		t.Fatalf("overlay failed under churn: best=%v", res.BestFitness)
	}
	if res.Departures == 0 {
		t.Fatal("churn never fired at rate 0.02 over 300 gens")
	}
}

func TestOverlayRespectsMinPeers(t *testing.T) {
	cfg := baseConfig(3)
	cfg.ChurnRate = 0.9 // brutal churn
	cfg.RejoinRate = 0.05
	cfg.MinPeers = 3
	n := New(cfg)
	res := n.Run(50)
	if res.AliveAtEnd < 3 {
		t.Fatalf("alive peers %d below floor", res.AliveAtEnd)
	}
	if res.Departures == 0 || res.Joins == 0 {
		t.Fatalf("expected churn both ways: dep=%d joins=%d", res.Departures, res.Joins)
	}
}

func TestOverlayDeterministic(t *testing.T) {
	run := func() (float64, int, int) {
		cfg := baseConfig(4)
		cfg.ChurnRate = 0.05
		res := New(cfg).Run(60)
		return res.BestFitness, res.Departures, res.Messages
	}
	f1, d1, m1 := run()
	f2, d2, m2 := run()
	if f1 != f2 || d1 != d2 || m1 != m2 {
		t.Fatal("overlay not deterministic per seed")
	}
}

func TestViewsValid(t *testing.T) {
	n := New(baseConfig(5))
	n.Run(40)
	for i, p := range n.peers {
		if len(p.view) > n.cfg.ViewSize {
			t.Fatalf("peer %d view too large: %d", i, len(p.view))
		}
		seen := map[int]bool{}
		for _, v := range p.view {
			if v == i {
				t.Fatalf("peer %d has itself in view", i)
			}
			if v < 0 || v >= len(n.peers) {
				t.Fatalf("peer %d view contains invalid id %d", i, v)
			}
			if seen[v] {
				t.Fatalf("peer %d view contains duplicate %d", i, v)
			}
			seen[v] = true
		}
	}
}

func TestChurnDegradesGracefully(t *testing.T) {
	// The DREAM robustness story: moderate churn should not destroy
	// efficacy. Compare best fitness at a fixed budget.
	avg := func(churn float64) float64 {
		sum := 0.0
		for s := uint64(0); s < 5; s++ {
			cfg := baseConfig(100 + s)
			cfg.Problem = problems.OneMax{N: 64}
			cfg.NewEngine = engineFactory(64, 12)
			cfg.ChurnRate = churn
			res := New(cfg).Run(60)
			sum += res.BestFitness
		}
		return sum / 5
	}
	stable := avg(0)
	churny := avg(0.05)
	if churny < stable*0.9 {
		t.Fatalf("5%% churn collapsed quality: %v vs %v", churny, stable)
	}
}

func TestEvaluationsIncludeRetiredPeers(t *testing.T) {
	cfg := baseConfig(6)
	cfg.ChurnRate = 0.2
	cfg.RejoinRate = 0.9
	n := New(cfg)
	res := n.Run(40)
	// Evaluations must be at least the initial populations of all peers.
	if res.Evaluations < int64(12*12) {
		t.Fatalf("evaluations %d implausibly low", res.Evaluations)
	}
}

func TestValidation(t *testing.T) {
	for i, cfg := range []Config{
		{NewEngine: engineFactory(8, 4)}, // no problem
		{Problem: problems.OneMax{N: 8}}, // no factory
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d did not panic", i)
				}
			}()
			New(cfg)
		}()
	}
}

func TestHelpers(t *testing.T) {
	if got := dropValue([]int{1, 2, 3}, 2); len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("dropValue %v", got)
	}
	pool := mergeViews([]int{1, 2}, []int{2, 3}, 0, 4)
	if len(pool) != 5 { // 1,2,3,0,4
		t.Fatalf("mergeViews %v", pool)
	}
	r := rng.New(1)
	s := samplePool(pool, 3, 2, r)
	if len(s) != 3 {
		t.Fatalf("samplePool size %d", len(s))
	}
	for _, v := range s {
		if v == 2 {
			t.Fatal("samplePool returned self")
		}
	}
}
