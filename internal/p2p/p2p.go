// Package p2p implements a DREAM-style peer-to-peer evolutionary overlay:
// the survey's §4 reviews DREAM/DRM (Arenas 2002, Jelasity 2002) — a
// "virtual machine built from a large number of individual computers on
// the Internet" whose lowest layer is an epidemic (gossip) protocol over
// which island populations exchange individuals while nodes join and
// leave at will.
//
// This package reproduces that structure in-process and deterministically:
// peers hold small populations, discover each other through newscast-style
// random-view gossip, migrate individuals to random view members, and
// churn (leave/join) without any coordinator. The A07 experiment shows the
// overlay's efficacy degrading gracefully with churn — the robustness
// story of the DREAM project.
package p2p

import (
	"pga/internal/core"
	"pga/internal/engine"
	"pga/internal/ga"
	"pga/internal/rng"
)

// Config describes a P2P overlay run.
type Config struct {
	// Problem is the optimisation problem (required).
	Problem core.Problem
	// Peers is the initial number of peers; default 16.
	Peers int
	// NewEngine builds a peer's engine (required). Peers that rejoin
	// after churn receive a fresh engine.
	NewEngine func(peer int, r *rng.Source) ga.Engine
	// ViewSize is the gossip view length; default 4.
	ViewSize int
	// GossipEvery is the generations between gossip+migration rounds;
	// default 5.
	GossipEvery int
	// ChurnRate is each alive peer's per-generation probability of
	// leaving; 0 disables churn.
	ChurnRate float64
	// RejoinRate is each dead peer's per-generation probability of
	// rejoining with a fresh population; default 0.5 when churn is on.
	RejoinRate float64
	// MinPeers is the floor below which churn cannot push the overlay;
	// default 2.
	MinPeers int
	// Seed seeds the run.
	Seed uint64
}

// Result summarises an overlay run. The embedded core.RunStats holds the
// accounting common to every runtime; BestFitness is the best fitness
// seen across all peers and time (peers churn away, so the historical
// best can exceed every live population's), and Evaluations counts all
// peers including departed ones.
type Result struct {
	core.RunStats
	// Departures and Joins count churn events.
	Departures, Joins int
	// Messages counts migrant transfers.
	Messages int
	// AliveAtEnd is the number of alive peers at the end.
	AliveAtEnd int
}

// peer is one overlay node.
type peer struct {
	engine ga.Engine
	view   []int
	alive  bool
	rng    *rng.Source
	// evals accumulated by engines that have since been replaced.
	retiredEvals int64
}

// Network is an instantiated overlay.
type Network struct {
	cfg   Config
	peers []*peer
	dir   core.Direction
	rng   *rng.Source
}

// New builds the overlay with all peers alive and random initial views.
func New(cfg Config) *Network {
	if cfg.Problem == nil {
		panic("p2p: Config.Problem is required")
	}
	if cfg.NewEngine == nil {
		panic("p2p: Config.NewEngine is required")
	}
	if cfg.Peers == 0 {
		cfg.Peers = 16
	}
	if cfg.ViewSize == 0 {
		cfg.ViewSize = 4
	}
	if cfg.GossipEvery == 0 {
		cfg.GossipEvery = 5
	}
	if cfg.MinPeers == 0 {
		cfg.MinPeers = 2
	}
	if cfg.ChurnRate > 0 && cfg.RejoinRate == 0 {
		cfg.RejoinRate = 0.5
	}
	master := rng.New(cfg.Seed)
	n := &Network{cfg: cfg, dir: cfg.Problem.Direction(), rng: master.Split()}
	for i := 0; i < cfg.Peers; i++ {
		pr := master.Split()
		p := &peer{engine: cfg.NewEngine(i, pr), alive: true, rng: pr}
		n.peers = append(n.peers, p)
	}
	for i, p := range n.peers {
		p.view = n.randomView(i)
	}
	return n
}

// randomView draws ViewSize distinct peer ids ≠ self.
func (n *Network) randomView(self int) []int {
	k := n.cfg.ViewSize
	if k > len(n.peers)-1 {
		k = len(n.peers) - 1
	}
	view := make([]int, 0, k)
	for _, j := range n.rng.Sample(len(n.peers)-1, k) {
		if j >= self {
			j++
		}
		view = append(view, j)
	}
	return view
}

// aliveCount returns the number of alive peers.
func (n *Network) aliveCount() int {
	c := 0
	for _, p := range n.peers {
		if p.alive {
			c++
		}
	}
	return c
}

// netStepper is the overlay's engine.Stepper: one generation is
// evolution on every alive peer, churn, then (on gossip epochs) view
// exchange and migration. Best() scans the alive peers, so the loop's
// monotone tracking is what preserves the historical best across churn.
type netStepper struct {
	n   *Network
	res *Result
}

// Step implements engine.Stepper.
func (s *netStepper) Step(gen int) engine.StepInfo {
	n := s.n
	var info engine.StepInfo
	// 1. Evolution.
	for _, p := range n.peers {
		if p.alive {
			p.engine.Step()
		}
	}
	// 2. Churn: departures then rejoins, respecting the floor.
	if n.cfg.ChurnRate > 0 {
		for _, p := range n.peers {
			if p.alive && n.aliveCount() > n.cfg.MinPeers && n.rng.Chance(n.cfg.ChurnRate) {
				p.alive = false
				p.retiredEvals += p.engine.Evaluations()
				s.res.Departures++
			}
		}
		for i, p := range n.peers {
			if !p.alive && n.rng.Chance(n.cfg.RejoinRate) {
				pr := p.rng.Split()
				p.engine = n.cfg.NewEngine(i, pr)
				p.alive = true
				p.view = n.randomView(i)
				s.res.Joins++
			}
		}
	}
	// 3. Gossip + migration epoch.
	if gen%n.cfg.GossipEvery == 0 {
		n.gossip()
		sent := n.migrate()
		s.res.Messages += sent
		info.Migrations = int64(sent)
	}
	return info
}

// Best implements engine.Stepper: the best individual over alive peers.
func (s *netStepper) Best() (*core.Individual, float64) {
	n := s.n
	bestFit := n.dir.Worst()
	var best *core.Individual
	for _, p := range n.peers {
		if !p.alive {
			continue
		}
		pop := p.engine.Population()
		if j := pop.Best(n.dir); j >= 0 && n.dir.Better(pop.Members[j].Fitness, bestFit) {
			bestFit = pop.Members[j].Fitness
			best = pop.Members[j]
		}
	}
	return best, bestFit
}

// Evaluations implements engine.Stepper.
func (s *netStepper) Evaluations() int64 { return s.n.totalEvaluations() }

// Direction implements engine.Stepper.
func (s *netStepper) Direction() core.Direction { return s.n.dir }

// Run executes maxGens generations of the overlay and returns the result.
// The simulation is fully deterministic for a given Config.
func (n *Network) Run(maxGens int) *Result {
	res := &Result{}
	ta, _ := n.cfg.Problem.(core.TargetAware)
	engine.Loop(&netStepper{n: n, res: res}, engine.Options{
		Stop:         core.MaxGenerations(maxGens),
		Target:       ta,
		HaltOnSolve:  true,
		InitialSolve: true,
	}, &res.RunStats)
	res.AliveAtEnd = n.aliveCount()
	return res
}

// gossip refreshes views newscast-style: each alive peer contacts one
// random view member; the pair pool their views and each keeps a random
// ViewSize subset (dead contacts are simply dropped — failure detection
// by silence, as in epidemic protocols).
func (n *Network) gossip() {
	for i, p := range n.peers {
		if !p.alive || len(p.view) == 0 {
			continue
		}
		j := p.view[n.rng.Intn(len(p.view))]
		q := n.peers[j]
		if !q.alive {
			// Drop the dead contact and draw a random replacement.
			p.view = dropValue(p.view, j)
			p.view = append(p.view, n.randomView(i)[0])
			continue
		}
		pool := mergeViews(p.view, q.view, i, j)
		p.view = samplePool(pool, n.cfg.ViewSize, i, n.rng)
		q.view = samplePool(pool, n.cfg.ViewSize, j, n.rng)
	}
}

// migrate sends each alive peer's best individual to one random alive
// view member (replace-worst integration). Returns messages delivered.
func (n *Network) migrate() int {
	sent := 0
	for _, p := range n.peers {
		if !p.alive || len(p.view) == 0 {
			continue
		}
		j := p.view[n.rng.Intn(len(p.view))]
		q := n.peers[j]
		if !q.alive {
			continue // message to a departed node is lost
		}
		pop := p.engine.Population()
		b := pop.Best(n.dir)
		if b < 0 {
			continue
		}
		migrant := pop.Members[b].Clone()
		qpop := q.engine.Population()
		if w := qpop.Worst(n.dir); w >= 0 {
			qpop.Replace(w, migrant)
			sent++
		}
	}
	return sent
}

// totalEvaluations sums evaluations over live engines and retired ones.
func (n *Network) totalEvaluations() int64 {
	var t int64
	for _, p := range n.peers {
		t += p.retiredEvals
		if p.alive {
			t += p.engine.Evaluations()
		}
	}
	return t
}

// dropValue removes the first occurrence of v.
func dropValue(s []int, v int) []int {
	out := s[:0]
	for _, x := range s {
		if x != v {
			out = append(out, x)
		}
	}
	return out
}

// mergeViews pools two views plus both peer ids, deduplicated.
func mergeViews(a, b []int, ia, ib int) []int {
	seen := map[int]bool{}
	var pool []int
	add := func(v int) {
		if !seen[v] {
			seen[v] = true
			pool = append(pool, v)
		}
	}
	for _, v := range a {
		add(v)
	}
	for _, v := range b {
		add(v)
	}
	add(ia)
	add(ib)
	return pool
}

// samplePool draws up to k distinct values from pool, excluding self.
func samplePool(pool []int, k, self int, r *rng.Source) []int {
	var candidates []int
	for _, v := range pool {
		if v != self {
			candidates = append(candidates, v)
		}
	}
	if k > len(candidates) {
		k = len(candidates)
	}
	out := make([]int, 0, k)
	for _, idx := range r.Sample(len(candidates), k) {
		out = append(out, candidates[idx])
	}
	return out
}
