package cluster

import (
	"testing"

	"pga/internal/rng"
	"pga/internal/transport"
)

// TestLinkSpecFoldsIntoTransportFaults pins the shared-fault-model
// contract: a simulated link's loss/jitter preset folds into the
// transport.LinkFaults the wire-level Faulty injector draws from, with
// the same knob values and the same seeded draw sequence — a scenario
// tuned against the virtual cluster misbehaves identically on the
// real transport.
func TestLinkSpecFoldsIntoTransportFaults(t *testing.T) {
	f := Internet.Faults()
	if f.LossProb != Internet.LossProb || f.Jitter != Internet.Jitter {
		t.Fatalf("Faults() = %+v, want loss %g jitter %g", f, Internet.LossProb, Internet.Jitter)
	}
	if lan := GigabitEthernet.Faults(); lan.LossProb != 0 || lan.Jitter != 0 {
		t.Fatalf("lossless preset grew faults: %+v", lan)
	}

	// Same seed, same draw sequence: two independent replays of 200
	// rolls must agree fate for fate.
	a, b := rng.New(77), rng.New(77)
	for i := 0; i < 200; i++ {
		dropA, jitA := f.Roll(a)
		dropB, jitB := f.Roll(b)
		if dropA != dropB || jitA != jitB {
			t.Fatalf("roll %d diverged: (%v,%g) vs (%v,%g)", i, dropA, jitA, dropB, jitB)
		}
		if jitA < 0 || jitA >= Internet.Jitter+1e-12 {
			t.Fatalf("roll %d jitter %g outside [0,%g)", i, jitA, Internet.Jitter)
		}
	}

	// And the folded spec drives a deterministic wire-fault schedule.
	spec := transport.FaultsFromLink(f)
	if spec.Link != f {
		t.Fatalf("FaultsFromLink altered the model: %+v", spec.Link)
	}
}
