package cluster

// This file contains the analytic makespan models used by the modelled
// wall-clock experiments (E2, E7, E12, A9). They are deliberately simple,
// deterministic functions of the run profile measured on the real engines
// plus the virtual machine-room description; EXPERIMENTS.md labels every
// number derived from them as "modelled".

import "pga/internal/rng"

// IslandProfile is the computational profile of an island-model run, as
// measured on the real engines.
type IslandProfile struct {
	// Generations is the number of island generations each deme ran.
	Generations int
	// EvalsPerGen is the fitness evaluations per deme per generation.
	EvalsPerGen float64
	// EvalCost is the cost of one evaluation in seconds on a speed-1 node.
	EvalCost float64
	// MigrationInterval is the generations between exchanges (0 = never).
	MigrationInterval int
	// MessageBytes is the size of one migrant batch on the wire.
	MessageBytes float64
	// Sync selects barriered generations; async demes never wait.
	Sync bool
}

// genCost returns deme i's per-generation compute time.
func genCost(nodes []NodeSpec, p IslandProfile, i int) float64 {
	return p.EvalsPerGen * p.EvalCost / nodes[i].Speed
}

// IslandMakespan returns the modelled wall-clock of running the profile on
// the given nodes (one deme per node) over the given link.
//
// Sync mode: every generation ends with a barrier over the nodes still
// alive, and migration epochs add one message transfer to the barrier.
// Async mode: each surviving deme finishes independently; makespan is the
// slowest survivor (migration sends are non-blocking and do not extend the
// critical path).
func IslandMakespan(nodes []NodeSpec, link LinkSpec, p IslandProfile) float64 {
	if len(nodes) == 0 || p.Generations == 0 {
		return 0
	}
	if p.Sync {
		t := 0.0
		for g := 1; g <= p.Generations; g++ {
			slowest := 0.0
			for i := range nodes {
				if nodes[i].CrashAt != 0 && t >= nodes[i].CrashAt {
					continue // dead deme no longer participates in the barrier
				}
				if c := genCost(nodes, p, i); c > slowest {
					slowest = c
				}
			}
			t += slowest
			if p.MigrationInterval > 0 && g%p.MigrationInterval == 0 {
				t += link.TransferTime(p.MessageBytes)
			}
		}
		return t
	}
	// Async: per-deme independent completion.
	makespan := 0.0
	for i := range nodes {
		finish := float64(p.Generations) * genCost(nodes, p, i)
		if nodes[i].CrashAt != 0 && finish >= nodes[i].CrashAt {
			continue // deme died; it never finishes and drops out
		}
		if finish > makespan {
			makespan = finish
		}
	}
	return makespan
}

// IslandMakespanJittered is IslandMakespan for non-dedicated machines:
// every node's per-generation compute cost fluctuates by a uniform factor
// in [1, 1+jitter] (background load on shared workstations — the setting
// of Alba, Nebro & Troya 2002). With static speeds sync and async
// makespans coincide; under fluctuation the synchronous barrier pays the
// per-generation *maximum* across nodes (straggler tax) while each
// asynchronous node pays only its own sum. Deterministic per seed.
func IslandMakespanJittered(nodes []NodeSpec, link LinkSpec, p IslandProfile, jitter float64, seed uint64) float64 {
	if len(nodes) == 0 || p.Generations == 0 {
		return 0
	}
	r := rng.New(seed)
	finish := make([]float64, len(nodes))
	syncT := 0.0
	for g := 1; g <= p.Generations; g++ {
		slowest := 0.0
		for i := range nodes {
			c := genCost(nodes, p, i) * (1 + jitter*r.Float64())
			finish[i] += c
			if c > slowest {
				slowest = c
			}
		}
		syncT += slowest
		if p.MigrationInterval > 0 && g%p.MigrationInterval == 0 {
			syncT += link.TransferTime(p.MessageBytes)
		}
	}
	if p.Sync {
		return syncT
	}
	makespan := 0.0
	for _, f := range finish {
		if f > makespan {
			makespan = f
		}
	}
	return makespan
}

// SequentialMakespan returns the modelled wall-clock of the equivalent
// single-population run: all evaluations on one speed-1 node, no
// communication.
func SequentialMakespan(totalEvaluations int64, evalCost float64) float64 {
	return float64(totalEvaluations) * evalCost
}

// MasterSlaveProfile is the computational profile of a master–slave run.
type MasterSlaveProfile struct {
	// Generations is the number of generations evaluated.
	Generations int
	// TasksPerGen is the number of fitness evaluations per generation.
	TasksPerGen int
	// EvalCost is the cost of one evaluation in seconds on a speed-1 node.
	EvalCost float64
	// TaskBytes is the wire size of one task+result pair.
	TaskBytes float64
}

// MasterSlaveMakespan returns the modelled wall-clock of a master–slave
// run on the given worker nodes: each generation the master scatters tasks
// proportionally to the speeds of the workers alive at that time, waits
// for the slowest, and pays one scatter+gather transfer. Work assigned to
// a worker that crashes mid-generation is redone on the survivors within
// the same generation (the Gagné fault-handling model).
func MasterSlaveMakespan(workers []NodeSpec, link LinkSpec, p MasterSlaveProfile) float64 {
	if len(workers) == 0 || p.Generations == 0 {
		return 0
	}
	t := 0.0
	for g := 0; g < p.Generations; g++ {
		remaining := float64(p.TasksPerGen)
		// Retry rounds within the generation until all tasks done.
		for remaining > 0 {
			var alive []int
			totalSpeed := 0.0
			for i := range workers {
				if workers[i].CrashAt == 0 || t < workers[i].CrashAt {
					alive = append(alive, i)
					totalSpeed += workers[i].Speed
				}
			}
			if len(alive) == 0 {
				// Master evaluates the rest itself at speed 1.
				t += remaining * p.EvalCost
				remaining = 0
				break
			}
			// Scatter + gather communication.
			t += 2 * link.TransferTime(p.TaskBytes*remaining/float64(len(alive)))
			roundTime := remaining * p.EvalCost / totalSpeed
			// Does any worker crash during this round?
			crashT := 0.0
			crashed := false
			for _, i := range alive {
				if workers[i].CrashAt != 0 && t+roundTime > workers[i].CrashAt && workers[i].CrashAt > t {
					if !crashed || workers[i].CrashAt < crashT {
						crashT, crashed = workers[i].CrashAt, true
					}
				}
			}
			if !crashed {
				t += roundTime
				remaining = 0
				break
			}
			// Progress until the first crash, then redistribute what's left.
			elapsed := crashT - t
			doneWork := elapsed * totalSpeed / p.EvalCost
			if doneWork > remaining {
				doneWork = remaining
			}
			remaining -= doneWork
			t = crashT
		}
	}
	return t
}

// Speedup returns sequential/parallel time (the classic metric of §1.2's
// "gains from running genetic algorithms in the parallel way").
func Speedup(sequential, parallel float64) float64 {
	if parallel <= 0 {
		return 0
	}
	return sequential / parallel
}

// Efficiency returns speedup divided by processor count.
func Efficiency(speedup float64, processors int) float64 {
	if processors <= 0 {
		return 0
	}
	return speedup / float64(processors)
}
