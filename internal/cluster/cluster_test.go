package cluster

import (
	"math"
	"sort"
	"testing"
)

func TestSimOrdering(t *testing.T) {
	s := NewSim()
	var order []int
	s.Schedule(3, func() { order = append(order, 3) })
	s.Schedule(1, func() { order = append(order, 1) })
	s.Schedule(2, func() { order = append(order, 2) })
	end := s.Run()
	if end != 3 {
		t.Fatalf("end time %v", end)
	}
	if !sort.IntsAreSorted(order) || len(order) != 3 {
		t.Fatalf("events out of order: %v", order)
	}
}

func TestSimFIFOTieBreak(t *testing.T) {
	s := NewSim()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.Schedule(1, func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("equal-time events not FIFO: %v", order)
		}
	}
}

func TestSimNestedScheduling(t *testing.T) {
	s := NewSim()
	var times []float64
	s.Schedule(1, func() {
		times = append(times, s.Now())
		s.Schedule(2, func() { times = append(times, s.Now()) })
	})
	s.Run()
	if len(times) != 2 || times[0] != 1 || times[1] != 3 {
		t.Fatalf("nested times %v", times)
	}
}

func TestSimNegativeDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewSim().Schedule(-1, func() {})
}

func TestSimRunUntil(t *testing.T) {
	s := NewSim()
	fired := 0
	s.Schedule(1, func() { fired++ })
	s.Schedule(5, func() { fired++ })
	s.RunUntil(3)
	if fired != 1 || s.Now() != 3 || s.Pending() != 1 {
		t.Fatalf("RunUntil wrong: fired=%d now=%v pending=%d", fired, s.Now(), s.Pending())
	}
	s.Run()
	if fired != 2 || s.Now() != 5 {
		t.Fatal("completion after RunUntil wrong")
	}
	if s.Steps() != 2 {
		t.Fatalf("steps=%d", s.Steps())
	}
}

func TestComputeSerialisesPerNode(t *testing.T) {
	c := New(UniformNodes(2), LinkSpec{}, 1)
	var done []float64
	c.Compute(0, 2, func() { done = append(done, c.Sim.Now()) })
	c.Compute(0, 3, func() { done = append(done, c.Sim.Now()) })
	c.Compute(1, 1, func() { done = append(done, c.Sim.Now()) })
	c.Sim.Run()
	want := []float64{1, 2, 5}
	sort.Float64s(done)
	for i := range want {
		if done[i] != want[i] {
			t.Fatalf("completion times %v, want %v", done, want)
		}
	}
}

func TestComputeSpeedScaling(t *testing.T) {
	c := New([]NodeSpec{{Speed: 4}}, LinkSpec{}, 1)
	var finished float64
	c.Compute(0, 8, func() { finished = c.Sim.Now() })
	c.Sim.Run()
	if finished != 2 {
		t.Fatalf("speed-4 node took %v for 8 units, want 2", finished)
	}
}

func TestComputeCrashedNodeNeverCompletes(t *testing.T) {
	c := New([]NodeSpec{{Speed: 1, CrashAt: 5}}, LinkSpec{}, 1)
	completed := false
	c.Compute(0, 10, func() { completed = true })
	c.Sim.Run()
	if completed {
		t.Fatal("work completed after crash time")
	}
	// Work finishing before the crash completes normally.
	c2 := New([]NodeSpec{{Speed: 1, CrashAt: 5}}, LinkSpec{}, 1)
	ok := false
	c2.Compute(0, 3, func() { ok = true })
	c2.Sim.Run()
	if !ok {
		t.Fatal("work before crash did not complete")
	}
}

func TestSendLatencyAndBandwidth(t *testing.T) {
	link := LinkSpec{Latency: 1, BytesPerSec: 100}
	c := New(UniformNodes(2), link, 1)
	var arrival float64
	c.Send(0, 1, 200, func() { arrival = c.Sim.Now() })
	c.Sim.Run()
	if arrival != 3 { // 1 + 200/100
		t.Fatalf("arrival %v, want 3", arrival)
	}
	if c.MessagesSent() != 1 {
		t.Fatal("sent counter wrong")
	}
}

func TestSendLoss(t *testing.T) {
	link := LinkSpec{Latency: 0.001, LossProb: 1.0}
	c := New(UniformNodes(2), link, 2)
	delivered := false
	c.Send(0, 1, 10, func() { delivered = true })
	c.Sim.Run()
	if delivered {
		t.Fatal("message delivered despite LossProb=1")
	}
	if c.MessagesDropped() != 1 {
		t.Fatal("drop counter wrong")
	}
}

func TestSendJitterBounded(t *testing.T) {
	link := LinkSpec{Latency: 1, Jitter: 0.5}
	for seed := uint64(1); seed <= 20; seed++ {
		c := New(UniformNodes(2), link, seed)
		var arrival float64
		c.Send(0, 1, 0, func() { arrival = c.Sim.Now() })
		c.Sim.Run()
		if arrival < 1 || arrival > 1.5 {
			t.Fatalf("arrival %v outside [1,1.5]", arrival)
		}
	}
}

func TestSendToDeadReceiverDropped(t *testing.T) {
	c := New([]NodeSpec{{Speed: 1}, {Speed: 1, CrashAt: 0.5}}, LinkSpec{Latency: 1}, 3)
	delivered := false
	c.Send(0, 1, 0, func() { delivered = true })
	c.Sim.Run()
	if delivered {
		t.Fatal("delivered to a node dead at arrival time")
	}
}

func TestDeadSenderSendsNothing(t *testing.T) {
	c := New([]NodeSpec{{Speed: 1, CrashAt: 1}, {Speed: 1}}, LinkSpec{}, 4)
	c.Sim.Schedule(2, func() {
		c.Send(0, 1, 0, func() { t := 0; _ = t })
	})
	c.Sim.Run()
	if c.MessagesSent() != 0 {
		t.Fatal("dead sender sent a message")
	}
}

// TestDropAccountingSymmetric pins that every way a message can fail to
// arrive — dead sender, dead receiver, link loss — increments the dropped
// counter, so MessagesSent + MessagesDropped accounts for all traffic.
func TestDropAccountingSymmetric(t *testing.T) {
	// Dead sender: previously silently ignored, now counted as dropped.
	c := New([]NodeSpec{{Speed: 1, CrashAt: 1}, {Speed: 1}}, LinkSpec{}, 4)
	c.Sim.Schedule(2, func() {
		c.Send(0, 1, 0, func() { t.Error("dead sender's message delivered") })
	})
	c.Sim.Run()
	if c.MessagesSent() != 0 || c.MessagesDropped() != 1 {
		t.Fatalf("dead sender: sent=%d dropped=%d, want 0/1", c.MessagesSent(), c.MessagesDropped())
	}

	// Dead receiver.
	c = New([]NodeSpec{{Speed: 1}, {Speed: 1, CrashAt: 0.5}}, LinkSpec{Latency: 1}, 4)
	c.Send(0, 1, 0, func() { t.Error("dead receiver's message delivered") })
	c.Sim.Run()
	if c.MessagesSent() != 0 || c.MessagesDropped() != 1 {
		t.Fatalf("dead receiver: sent=%d dropped=%d, want 0/1", c.MessagesSent(), c.MessagesDropped())
	}

	// Link loss.
	c = New(UniformNodes(2), LinkSpec{LossProb: 1}, 4)
	c.Send(0, 1, 0, func() { t.Error("lost message delivered") })
	c.Sim.Run()
	if c.MessagesSent() != 0 || c.MessagesDropped() != 1 {
		t.Fatalf("link loss: sent=%d dropped=%d, want 0/1", c.MessagesSent(), c.MessagesDropped())
	}

	// Healthy path for contrast: sent counts, dropped does not.
	c = New(UniformNodes(2), LinkSpec{}, 4)
	c.Send(0, 1, 0, func() {})
	c.Sim.Run()
	if c.MessagesSent() != 1 || c.MessagesDropped() != 0 {
		t.Fatalf("healthy: sent=%d dropped=%d, want 1/0", c.MessagesSent(), c.MessagesDropped())
	}
}

func TestLinkPresetsSane(t *testing.T) {
	if Myrinet.TransferTime(1e6) >= GigabitEthernet.TransferTime(1e6) {
		t.Fatal("Myrinet not faster than GigE")
	}
	if GigabitEthernet.TransferTime(1e6) >= Internet.TransferTime(1e6) {
		t.Fatal("GigE not faster than Internet")
	}
}

func TestIslandMakespanSyncVsAsyncHeterogeneous(t *testing.T) {
	// On a heterogeneous cluster, sync islands pay the slowest node every
	// generation; async islands only pay it once overall — async must be
	// at least as fast, strictly faster with heterogeneity.
	nodes := []NodeSpec{{Speed: 1}, {Speed: 1}, {Speed: 0.25}}
	p := IslandProfile{Generations: 100, EvalsPerGen: 50, EvalCost: 1e-3, MigrationInterval: 10, MessageBytes: 1000}
	p.Sync = true
	syncT := IslandMakespan(nodes, GigabitEthernet, p)
	p.Sync = false
	asyncT := IslandMakespan(nodes, GigabitEthernet, p)
	// Both dominated by slowest node in this model, so equal here; on a
	// homogeneous cluster they differ only by migration cost.
	if asyncT > syncT {
		t.Fatalf("async (%v) slower than sync (%v)", asyncT, syncT)
	}
	if syncT-asyncT <= 0 {
		t.Fatalf("sync should pay migration barrier cost: sync=%v async=%v", syncT, asyncT)
	}
}

func TestIslandMakespanSpeedupShape(t *testing.T) {
	// Fixed total work split over k demes: near-linear modelled speedup
	// with slight degradation from migration cost.
	totalEvals := int64(100000)
	evalCost := 1e-4
	seq := SequentialMakespan(totalEvals, evalCost)
	prev := 0.0
	for _, k := range []int{2, 4, 8, 16} {
		p := IslandProfile{
			Generations:       100,
			EvalsPerGen:       float64(totalEvals) / float64(k) / 100,
			EvalCost:          evalCost,
			MigrationInterval: 10,
			MessageBytes:      1000,
			Sync:              true,
		}
		par := IslandMakespan(UniformNodes(k), GigabitEthernet, p)
		sp := Speedup(seq, par)
		if sp <= prev {
			t.Fatalf("speedup not increasing with demes: k=%d sp=%v prev=%v", k, sp, prev)
		}
		if sp > float64(k) {
			t.Fatalf("modelled speedup superlinear without cause: k=%d sp=%v", k, sp)
		}
		if Efficiency(sp, k) > 1 || Efficiency(sp, k) < 0.5 {
			t.Fatalf("efficiency implausible: k=%d eff=%v", k, Efficiency(sp, k))
		}
		prev = sp
	}
}

func TestIslandMakespanCrashDropsDeme(t *testing.T) {
	nodes := []NodeSpec{{Speed: 1}, {Speed: 1, CrashAt: 0.001}}
	p := IslandProfile{Generations: 10, EvalsPerGen: 100, EvalCost: 1e-3, Sync: true}
	withCrash := IslandMakespan(nodes, GigabitEthernet, p)
	healthy := IslandMakespan(UniformNodes(2), GigabitEthernet, p)
	if withCrash > healthy {
		t.Fatalf("dead deme should not extend sync barrier: %v > %v", withCrash, healthy)
	}
}

func TestMasterSlaveMakespanBasic(t *testing.T) {
	p := MasterSlaveProfile{Generations: 10, TasksPerGen: 100, EvalCost: 0.01, TaskBytes: 100}
	t1 := MasterSlaveMakespan(UniformNodes(1), GigabitEthernet, p)
	t4 := MasterSlaveMakespan(UniformNodes(4), GigabitEthernet, p)
	sp := Speedup(t1, t4)
	if sp < 3 || sp > 4 {
		t.Fatalf("4-worker speedup %v outside (3,4]", sp)
	}
}

func TestMasterSlaveMakespanCrashRecovery(t *testing.T) {
	p := MasterSlaveProfile{Generations: 5, TasksPerGen: 100, EvalCost: 0.01, TaskBytes: 100}
	healthy := MasterSlaveMakespan(UniformNodes(4), GigabitEthernet, p)
	// One worker dies early: run completes anyway, but slower.
	nodes := UniformNodes(4)
	nodes[3].CrashAt = 0.1
	withCrash := MasterSlaveMakespan(nodes, GigabitEthernet, p)
	if !(withCrash > healthy) {
		t.Fatalf("crash did not slow the run: %v vs %v", withCrash, healthy)
	}
	threeWorkers := MasterSlaveMakespan(UniformNodes(3), GigabitEthernet, p)
	if withCrash > threeWorkers*1.2 {
		t.Fatalf("crash recovery cost implausible: %v vs 3-worker %v", withCrash, threeWorkers)
	}
}

func TestMasterSlaveAllWorkersDeadMasterFallback(t *testing.T) {
	nodes := []NodeSpec{{Speed: 1, CrashAt: 1e-9}}
	p := MasterSlaveProfile{Generations: 2, TasksPerGen: 10, EvalCost: 0.01, TaskBytes: 10}
	got := MasterSlaveMakespan(nodes, GigabitEthernet, p)
	if math.Abs(got-0.2) > 0.05 { // 20 tasks * 0.01 on the master
		t.Fatalf("master fallback makespan %v, want ≈0.2", got)
	}
}

func TestSpeedupEfficiencyEdgeCases(t *testing.T) {
	if Speedup(1, 0) != 0 || Efficiency(4, 0) != 0 {
		t.Fatal("degenerate inputs should return 0")
	}
	if IslandMakespan(nil, LinkSpec{}, IslandProfile{Generations: 5}) != 0 {
		t.Fatal("empty cluster should cost 0")
	}
	if MasterSlaveMakespan(nil, LinkSpec{}, MasterSlaveProfile{Generations: 1}) != 0 {
		t.Fatal("empty worker set should cost 0")
	}
}

func TestClusterValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on empty cluster")
		}
	}()
	New(nil, LinkSpec{}, 1)
}

func TestComputePanicsOnBadNode(t *testing.T) {
	c := New(UniformNodes(1), LinkSpec{}, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	c.Compute(5, 1, func() {})
}
