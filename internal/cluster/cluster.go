package cluster

import (
	"fmt"

	"pga/internal/rng"
	"pga/internal/transport"
)

// NodeSpec describes one virtual machine in the cluster.
type NodeSpec struct {
	// Speed is the node's relative compute throughput (1.0 = nominal).
	Speed float64
	// CrashAt is the virtual time at which the node dies permanently;
	// 0 means it never crashes.
	CrashAt float64
}

// UniformNodes returns n nominal-speed, never-crashing nodes.
func UniformNodes(n int) []NodeSpec {
	out := make([]NodeSpec, n)
	for i := range out {
		out[i] = NodeSpec{Speed: 1}
	}
	return out
}

// LinkSpec describes the (uniform) interconnect, in the spirit of the
// survey's §3.1 network inventory: a LAN is high bandwidth/low latency, a
// WAN adds latency, jitter and loss.
type LinkSpec struct {
	// Latency is the per-message base delay (seconds).
	Latency float64
	// BytesPerSec is the link bandwidth; 0 means infinite.
	BytesPerSec float64
	// Jitter is the maximum extra uniform random delay per message.
	Jitter float64
	// LossProb is the probability a message is silently dropped.
	LossProb float64
}

// Common interconnect presets, loosely matching the survey's technology
// list (Myrinet, Gigabit Ethernet, Internet).
var (
	// Myrinet: ~10µs latency, ~2 GB/s (the cluster interconnect of §3.1).
	Myrinet = LinkSpec{Latency: 10e-6, BytesPerSec: 2e9}
	// GigabitEthernet: ~100µs latency, ~125 MB/s.
	GigabitEthernet = LinkSpec{Latency: 100e-6, BytesPerSec: 125e6}
	// Internet: ~50ms latency, ~1 MB/s, 10ms jitter, 1% loss (the
	// DREAM-style wide-area setting of §4).
	Internet = LinkSpec{Latency: 50e-3, BytesPerSec: 1e6, Jitter: 10e-3, LossProb: 0.01}
)

// Faults returns the link's stochastic loss/jitter model in the form
// shared with the real transport layer: the same transport.LinkFaults
// drives both this simulated cluster's Send and a transport.Faulty
// wrapper around real sockets, so a scenario tuned here injects the
// identical fault model on the wire (and, per seed, the identical draw
// sequence).
func (l LinkSpec) Faults() transport.LinkFaults {
	return transport.LinkFaults{LossProb: l.LossProb, Jitter: l.Jitter}
}

// TransferTime returns the modelled delay for size bytes, excluding jitter.
func (l LinkSpec) TransferTime(size float64) float64 {
	t := l.Latency
	if l.BytesPerSec > 0 {
		t += size / l.BytesPerSec
	}
	return t
}

// Cluster is a virtual machine room: nodes, a uniform interconnect and a
// shared virtual clock.
type Cluster struct {
	Sim   *Sim
	nodes []NodeSpec
	link  LinkSpec
	rng   *rng.Source

	// busyUntil tracks each node's earliest free time, so Compute calls
	// serialise per node like a real single-core worker.
	busyUntil []float64
	sent      int64
	dropped   int64
}

// New creates a cluster with the given nodes and uniform link, seeding the
// jitter/loss stream from seed.
func New(nodes []NodeSpec, link LinkSpec, seed uint64) *Cluster {
	if len(nodes) == 0 {
		panic("cluster: at least one node required")
	}
	c := &Cluster{
		Sim:       NewSim(),
		nodes:     append([]NodeSpec(nil), nodes...),
		link:      link,
		rng:       rng.New(seed),
		busyUntil: make([]float64, len(nodes)),
	}
	for i := range c.nodes {
		if c.nodes[i].Speed <= 0 {
			c.nodes[i].Speed = 1
		}
	}
	return c
}

// Nodes returns the node count.
func (c *Cluster) Nodes() int { return len(c.nodes) }

// Alive reports whether node i is alive at the current virtual time.
func (c *Cluster) Alive(i int) bool {
	return c.nodes[i].CrashAt == 0 || c.Sim.Now() < c.nodes[i].CrashAt
}

// MessagesSent returns the number of successfully delivered messages.
func (c *Cluster) MessagesSent() int64 { return c.sent }

// MessagesDropped returns the number of lost messages.
func (c *Cluster) MessagesDropped() int64 { return c.dropped }

// Compute schedules work units of compute on node i, invoking done at
// completion. Work on one node serialises; a node that crashes before the
// work completes never invokes done (the caller models the loss, exactly
// like a real dead machine).
func (c *Cluster) Compute(i int, work float64, done func()) {
	if i < 0 || i >= len(c.nodes) {
		panic(fmt.Sprintf("cluster: no node %d", i))
	}
	start := c.Sim.Now()
	if c.busyUntil[i] > start {
		start = c.busyUntil[i]
	}
	finish := start + work/c.nodes[i].Speed
	c.busyUntil[i] = finish
	crashAt := c.nodes[i].CrashAt
	c.Sim.Schedule(finish-c.Sim.Now(), func() {
		if crashAt != 0 && finish >= crashAt {
			return // node died mid-computation
		}
		done()
	})
}

// Send schedules delivery of a size-byte message from node from to node
// to. Delivery honours latency, bandwidth, jitter and loss; a dropped or
// dead-receiver message never invokes deliver.
func (c *Cluster) Send(from, to int, size float64, deliver func()) {
	if from < 0 || from >= len(c.nodes) || to < 0 || to >= len(c.nodes) {
		panic("cluster: Send endpoint out of range")
	}
	if !c.Alive(from) {
		// A dead sender's message is lost traffic just like a dropped or
		// dead-receiver one: count it so MessagesDropped reflects every
		// message that never arrived.
		c.dropped++
		return
	}
	// Loss and jitter are drawn from the fault model shared with the
	// real transport (transport.LinkFaults), replacing the drop logic
	// that used to be duplicated here: one model, one draw order, for
	// the simulated and the socket-backed paths alike.
	drop, jitter := c.link.Faults().Roll(c.rng)
	if drop {
		c.dropped++
		return
	}
	delay := c.link.TransferTime(size) + jitter
	arrival := c.Sim.Now() + delay
	crashAt := c.nodes[to].CrashAt
	c.Sim.Schedule(delay, func() {
		if crashAt != 0 && arrival >= crashAt {
			c.dropped++
			return // receiver is dead
		}
		c.sent++
		deliver()
	})
}
