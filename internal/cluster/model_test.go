package cluster

import "testing"

func TestJitteredZeroMatchesStatic(t *testing.T) {
	p := IslandProfile{Generations: 50, EvalsPerGen: 40, EvalCost: 1e-4, MigrationInterval: 10, MessageBytes: 512}
	nodes := UniformNodes(6)
	// The jittered model accumulates per generation while the static one
	// multiplies, so compare within floating-point tolerance.
	close := func(a, b float64) bool { d := a - b; return d < 1e-9 && d > -1e-9 }
	p.Sync = true
	if a, b := IslandMakespanJittered(nodes, GigabitEthernet, p, 0, 1), IslandMakespan(nodes, GigabitEthernet, p); !close(a, b) {
		t.Fatalf("zero-jitter sync %v != static %v", a, b)
	}
	p.Sync = false
	if a, b := IslandMakespanJittered(nodes, GigabitEthernet, p, 0, 1), IslandMakespan(nodes, GigabitEthernet, p); !close(a, b) {
		t.Fatalf("zero-jitter async %v != static %v", a, b)
	}
}

func TestJitteredSyncPaysStragglerTax(t *testing.T) {
	p := IslandProfile{Generations: 100, EvalsPerGen: 40, EvalCost: 1e-4}
	nodes := UniformNodes(8)
	p.Sync = true
	syncT := IslandMakespanJittered(nodes, GigabitEthernet, p, 0.5, 3)
	p.Sync = false
	asyncT := IslandMakespanJittered(nodes, GigabitEthernet, p, 0.5, 3)
	if syncT <= asyncT {
		t.Fatalf("no straggler tax under jitter: sync %v vs async %v", syncT, asyncT)
	}
	// The tax grows with jitter.
	p.Sync = true
	syncBig := IslandMakespanJittered(nodes, GigabitEthernet, p, 1.0, 3)
	p.Sync = false
	asyncBig := IslandMakespanJittered(nodes, GigabitEthernet, p, 1.0, 3)
	if syncBig/asyncBig <= syncT/asyncT {
		t.Fatalf("straggler tax did not grow with jitter: %v vs %v", syncBig/asyncBig, syncT/asyncT)
	}
}

func TestJitteredDeterministic(t *testing.T) {
	p := IslandProfile{Generations: 30, EvalsPerGen: 10, EvalCost: 1e-3, Sync: true}
	nodes := UniformNodes(4)
	a := IslandMakespanJittered(nodes, LinkSpec{}, p, 0.3, 9)
	b := IslandMakespanJittered(nodes, LinkSpec{}, p, 0.3, 9)
	if a != b {
		t.Fatal("jittered model not deterministic per seed")
	}
}

func TestJitteredEmpty(t *testing.T) {
	if IslandMakespanJittered(nil, LinkSpec{}, IslandProfile{Generations: 5}, 0.5, 1) != 0 {
		t.Fatal("empty cluster should cost 0")
	}
}
