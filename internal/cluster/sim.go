// Package cluster provides a simulated message-passing machine: a
// discrete-event simulator plus a virtual cluster of heterogeneous nodes
// and lossy links, and analytic makespan models layered on both.
//
// Why a simulation: the survey's quantitative parallel claims — linear and
// super-linear speedup on clusters of workstations (Alba & Troya 2001),
// master–slave superiority on heterogeneous Beowulfs with hard failures
// (Gagné 2003), scalability to many processors (Rivera 2001, Pelikan
// 2002) — were measured on multi-machine testbeds this reproduction does
// not have (the build host exposes a single CPU core). The virtual cluster
// exercises the same scheduling structure (compute, message latency,
// bandwidth, jitter, loss, node crashes) under a deterministic virtual
// clock, which is what the modelled wall-clock experiments report. The
// *algorithmic* speedup measurements (evaluations to solution) run for
// real on the actual engines; only wall-clock is modelled.
package cluster

import (
	"container/heap"
	"fmt"
)

// event is a scheduled action.
type event struct {
	time   float64
	seq    int64 // tie-breaker: FIFO among equal times
	action func()
}

// eventHeap is a min-heap ordered by (time, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Sim is a deterministic discrete-event simulator.
type Sim struct {
	now   float64
	queue eventHeap
	seq   int64
	steps int64
}

// NewSim returns an empty simulator at time 0.
func NewSim() *Sim { return &Sim{} }

// Now returns the current virtual time.
func (s *Sim) Now() float64 { return s.now }

// Steps returns the number of events executed so far.
func (s *Sim) Steps() int64 { return s.steps }

// Schedule queues action to run delay time units from now. Negative delays
// panic: virtual time cannot run backwards.
func (s *Sim) Schedule(delay float64, action func()) {
	if delay < 0 {
		panic(fmt.Sprintf("cluster: negative delay %v", delay))
	}
	s.seq++
	heap.Push(&s.queue, &event{time: s.now + delay, seq: s.seq, action: action})
}

// Run executes events until the queue is empty and returns the final time.
func (s *Sim) Run() float64 {
	for s.queue.Len() > 0 {
		e := heap.Pop(&s.queue).(*event)
		s.now = e.time
		s.steps++
		e.action()
	}
	return s.now
}

// RunUntil executes events with time <= t, then sets the clock to t.
func (s *Sim) RunUntil(t float64) {
	for s.queue.Len() > 0 && s.queue[0].time <= t {
		e := heap.Pop(&s.queue).(*event)
		s.now = e.time
		s.steps++
		e.action()
	}
	if t > s.now {
		s.now = t
	}
}

// Pending returns the number of queued events.
func (s *Sim) Pending() int { return s.queue.Len() }
